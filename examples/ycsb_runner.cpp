// YCSB runner: drive any index with any of the paper's workload mixes from
// the command line and print throughput + amplification, e.g.
//
//   ./build/examples/ycsb_runner cclbtree insert-intensive 48 500000
//   ./build/examples/ycsb_runner fptree scan-insert 24 100000
//
// Usage: ycsb_runner [index] [mix] [threads] [ops]
//   index:  cclbtree fptree lbtree pactree fastfair utree dptree flatstore lsmstore
//   mix:    insert-only insert-intensive read-intensive read-only scan-insert
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/bench/driver.h"

int main(int argc, char** argv) {
  using namespace cclbt;
  using namespace cclbt::bench;

  std::string index_name = argc > 1 ? argv[1] : "cclbtree";
  std::string mix_name = argc > 2 ? argv[2] : "insert-intensive";
  int threads = argc > 3 ? std::atoi(argv[3]) : 48;
  uint64_t ops = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 400'000;

  const YcsbMix* mix = nullptr;
  for (const YcsbMix& candidate : kYcsbMixes) {
    if (mix_name == candidate.name) {
      mix = &candidate;
    }
  }
  if (mix == nullptr) {
    std::fprintf(stderr, "unknown mix '%s'\n", mix_name.c_str());
    return 1;
  }

  RunConfig config;
  config.threads = threads;
  config.warm_keys = ops;
  config.ops = mix->scan_pct > 50 ? ops / 20 : ops;
  config.mix = mix;
  config.collect_latency = true;

  std::printf("index=%s mix=%s threads=%d warm=%llu ops=%llu\n", index_name.c_str(), mix->name,
              threads, (unsigned long long)config.warm_keys, (unsigned long long)config.ops);
  RunResult result = RunIndexWorkload(index_name, config);
  std::printf("throughput      : %.2f Mop/s (modeled, %.1f ms virtual)\n", result.mops,
              result.elapsed_virtual_ms);
  std::printf("amplification   : CLI %.2f   XBI %.2f\n", result.cli_amplification,
              result.xbi_amplification);
  std::printf("media traffic   : %.1f MB written, %.1f MB read\n",
              static_cast<double>(result.stats.media_write_bytes) / 1e6,
              static_cast<double>(result.stats.media_read_bytes) / 1e6);
  std::printf("latency (us)    : p50 %.2f  p90 %.2f  p99 %.2f  p99.9 %.2f\n",
              static_cast<double>(result.latency.Percentile(50)) / 1e3,
              static_cast<double>(result.latency.Percentile(90)) / 1e3,
              static_cast<double>(result.latency.Percentile(99)) / 1e3,
              static_cast<double>(result.latency.Percentile(99.9)) / 1e3);
  std::printf("footprint       : DRAM %.1f MB, PM %.1f MB\n",
              static_cast<double>(result.footprint.dram_bytes) / 1e6,
              static_cast<double>(result.footprint.pm_bytes) / 1e6);
  return 0;
}
