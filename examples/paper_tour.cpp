// A guided tour of the paper's three techniques, with the simulator's
// hardware counters printed after each step so you can watch the mechanisms
// work:
//   1. leaf-node centric buffering  (§3.2) — media writes per insert drop
//   2. write-conservative logging   (§3.3) — WAL entries per insert drop
//   3. locality-aware GC            (§3.4) — log reclaimed without random writes
//
// Run: ./build/examples/paper_tour
#include <cstdio>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/ccl_btree.h"

namespace {

using namespace cclbt;

struct Probe {
  pmsim::PmDevice& device;
  pmsim::StatsSnapshot last;

  explicit Probe(pmsim::PmDevice& dev) : device(dev), last(dev.stats().Snapshot()) {}

  void Report(const char* label, uint64_t ops) {
    device.DrainBuffers();
    auto now = device.stats().Snapshot();
    auto delta = now.Delta(last);
    last = now;
    std::printf("%-34s %8.2f media-B/op  %6.2f XPLine-writes/op\n", label,
                static_cast<double>(delta.media_write_bytes) / static_cast<double>(ops),
                static_cast<double>(delta.media_write_bytes) / 256.0 / static_cast<double>(ops));
  }
};

uint64_t InsertRandom(kvindex::KvIndex& index, uint64_t n, uint64_t salt) {
  Rng rng(salt);
  for (uint64_t i = 0; i < n; i++) {
    index.Upsert(Mix64(rng.Next()) | 1, i + 1);
  }
  return n;
}

}  // namespace

int main() {
  const uint64_t kOps = 100'000;
  std::printf("CCL-BTree paper tour — %llu random inserts per configuration\n\n",
              (unsigned long long)kOps);

  // --- Step 0: the problem. Direct random leaf writes (ablation "Base"). ----
  {
    kvindex::RuntimeOptions ro;
    ro.device.pool_bytes = 2ULL << 30;
    kvindex::Runtime rt(ro);
    core::TreeOptions opt;
    opt.buffering = false;
    opt.background_gc = false;
    core::CclBTree tree(rt, opt);
    pmsim::ThreadContext ctx(rt.device(), 0, 0);
    Probe probe(rt.device());
    InsertRandom(tree, kOps, 1);
    probe.Report("Base (direct leaf writes)", kOps);
  }

  // --- Step 1: leaf-node centric buffering (naive logging). ------------------
  {
    kvindex::RuntimeOptions ro;
    ro.device.pool_bytes = 2ULL << 30;
    kvindex::Runtime rt(ro);
    core::TreeOptions opt;
    opt.write_conservative_logging = false;
    opt.background_gc = false;
    core::CclBTree tree(rt, opt);
    pmsim::ThreadContext ctx(rt.device(), 0, 0);
    Probe probe(rt.device());
    InsertRandom(tree, kOps, 1);
    probe.Report("+BNode (buffering, naive WAL)", kOps);
    std::printf("%-34s %8llu entries in WAL (every insert logged)\n", "",
                (unsigned long long)(tree.log_live_bytes() / 24));
  }

  // --- Step 2: write-conservative logging. -----------------------------------
  {
    kvindex::RuntimeOptions ro;
    ro.device.pool_bytes = 2ULL << 30;
    kvindex::Runtime rt(ro);
    core::TreeOptions opt;  // full design
    opt.background_gc = false;
    core::CclBTree tree(rt, opt);
    pmsim::ThreadContext ctx(rt.device(), 0, 0);
    Probe probe(rt.device());
    InsertRandom(tree, kOps, 1);
    probe.Report("+WLog (skip trigger writes)", kOps);
    std::printf("%-34s %8llu entries in WAL (~N_batch/(N_batch+1) of inserts)\n", "",
                (unsigned long long)(tree.log_live_bytes() / 24));

    // --- Step 3: locality-aware GC. -------------------------------------------
    uint64_t before = tree.log_live_bytes();
    Probe gc_probe(rt.device());
    tree.RunGcOnce();
    rt.device().DrainBuffers();
    auto delta = rt.device().stats().Snapshot().Delta(gc_probe.last);
    std::printf("\nlocality-aware GC: log %llu KB -> %llu KB, media written during GC: %llu KB\n",
                (unsigned long long)(before / 1024),
                (unsigned long long)(tree.log_live_bytes() / 1024),
                (unsigned long long)(delta.media_write_bytes / 1024));
    std::printf("(sequential I-log copies only — no random leaf flush-back)\n");

    // --- And the safety net: crash + recovery. --------------------------------
    std::printf("\ncrash + recovery audit: ");
    Rng rng(1);  // replay the same key stream to know what must exist
    rt.device().Crash();
    std::string reopen_error;
    if (!rt.Reopen(&reopen_error)) {
      std::printf("reopen failed: %s\n", reopen_error.c_str());
      return 1;
    }
    auto recovered = std::make_unique<core::CclBTree>(rt, opt, kvindex::Lifecycle::kAttach);
    if (!recovered->Recover(rt, /*recovery_threads=*/1)) {
      std::printf("recovery failed\n");
      return 1;
    }
    uint64_t missing = 0;
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t key = Mix64(rng.Next()) | 1;
      uint64_t value = 0;
      if (!recovered->Lookup(key, &value)) {
        missing++;
      }
    }
    std::printf("%llu of %llu keys missing after power failure\n",
                (unsigned long long)missing, (unsigned long long)kOps);
  }
  return 0;
}
