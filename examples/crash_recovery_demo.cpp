// Crash-recovery demo: runs a write-heavy workload, power-fails the
// simulated PM device at an arbitrary point (torn cachelines included),
// recovers, and audits that every acknowledged write survived — the
// write-conservative-logging guarantee of §3.3.
//
// Usage: crash_recovery_demo [keys] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/ccl_btree.h"

int main(int argc, char** argv) {
  using namespace cclbt;

  uint64_t keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2024;

  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 2ULL << 30;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  options.background_gc = false;

  // Phase 1: random upserts and deletes; remember what was acknowledged.
  std::map<uint64_t, uint64_t> acknowledged;
  {
    core::CclBTree tree(runtime, options);
    pmsim::ThreadContext ctx(runtime.device(), 0, 0);
    Rng rng(seed);
    for (uint64_t i = 0; i < keys; i++) {
      uint64_t key = Mix64(rng.NextBounded(keys / 2) + 1) | 1;
      if (rng.NextBounded(10) < 8) {
        uint64_t value = rng.Next() | 1;
        tree.Upsert(key, value);
        acknowledged[key] = value;
      } else {
        tree.Remove(key);
        acknowledged.erase(key);
      }
      if (i == keys / 2) {
        tree.RunGcOnce();  // exercise log reclamation mid-run
      }
    }
    std::printf("pre-crash : %zu live keys, %llu buffer flushes, %llu splits, log %.1f KB\n",
                acknowledged.size(), (unsigned long long)tree.buffer_flushes(),
                (unsigned long long)tree.splits(),
                static_cast<double>(tree.log_live_bytes()) / 1024.0);
  }

  // Phase 2: power failure with torn unfenced lines.
  runtime.device().CrashTorn(seed ^ 0xdead);
  std::printf("power failure injected (torn unfenced cachelines)\n");

  // Phase 3: reattach to the surviving media, recover and audit.
  std::string reopen_error;
  if (!runtime.Reopen(&reopen_error)) {
    std::printf("reopen failed: %s\n", reopen_error.c_str());
    return 1;
  }
  auto tree = std::make_unique<core::CclBTree>(runtime, options, kvindex::Lifecycle::kAttach);
  if (!tree->Recover(runtime, /*recovery_threads=*/4)) {
    std::printf("recovery failed\n");
    return 1;
  }
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  uint64_t lost = 0;
  uint64_t stale = 0;
  for (const auto& [key, value] : acknowledged) {
    uint64_t got = 0;
    if (!tree->Lookup(key, &got)) {
      lost++;
    } else if (got != value) {
      stale++;
    }
  }
  std::printf("post-crash: lost=%llu stale=%llu of %zu acknowledged writes\n",
              (unsigned long long)lost, (unsigned long long)stale, acknowledged.size());
  std::printf("structural invariants: %s\n", tree->CheckInvariants() ? "OK" : "VIOLATED");
  return lost + stale == 0 ? 0 : 1;
}
