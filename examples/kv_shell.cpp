// Interactive KV shell over a CCL-BTree: a tiny REPL showing the public API
// plus the simulator's hardware counters.
//
//   $ ./build/examples/kv_shell
//   > put 10 100
//   > get 10
//   100
//   > scan 5 3
//   10=100 ...
//   > del 10
//   > stats
//   > crash        (power-fail + recover in place)
//   > quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/core/ccl_btree.h"

int main() {
  using namespace cclbt;

  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 1ULL << 30;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  auto tree = std::make_unique<core::CclBTree>(runtime, options);
  auto ctx = std::make_unique<pmsim::ThreadContext>(runtime.device(), 0, 0);

  std::printf("ccl-btree shell — commands: put <k> <v> | get <k> | del <k> | "
              "scan <k> <n> | stats | crash | quit\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "put") {
      uint64_t key = 0;
      uint64_t value = 0;
      if (in >> key >> value && key != 0 && value != 0) {
        tree->Upsert(key, value);
      } else {
        std::printf("usage: put <key!=0> <value!=0>\n");
      }
    } else if (cmd == "get") {
      uint64_t key = 0;
      in >> key;
      uint64_t value = 0;
      if (tree->Lookup(key, &value)) {
        std::printf("%llu\n", (unsigned long long)value);
      } else {
        std::printf("(nil)\n");
      }
    } else if (cmd == "del") {
      uint64_t key = 0;
      in >> key;
      tree->Remove(key);
    } else if (cmd == "scan") {
      uint64_t key = 0;
      size_t count = 10;
      in >> key >> count;
      std::vector<kvindex::KeyValue> out(count);
      size_t n = tree->Scan(key, count, out.data());
      for (size_t i = 0; i < n; i++) {
        std::printf("%llu=%llu ", (unsigned long long)out[i].key,
                    (unsigned long long)out[i].value);
      }
      std::printf("(%zu)\n", n);
    } else if (cmd == "stats") {
      auto stats = runtime.device().stats().Snapshot();
      auto footprint = tree->Footprint();
      std::printf("flushes=%llu fences=%llu media_write=%.1fKB media_read=%.1fKB\n",
                  (unsigned long long)stats.line_flushes, (unsigned long long)stats.fences,
                  static_cast<double>(stats.media_write_bytes) / 1024.0,
                  static_cast<double>(stats.media_read_bytes) / 1024.0);
      std::printf("buffer_flushes=%llu splits=%llu merges=%llu gc_rounds=%llu log=%.1fKB\n",
                  (unsigned long long)tree->buffer_flushes(), (unsigned long long)tree->splits(),
                  (unsigned long long)tree->merges(), (unsigned long long)tree->gc_rounds(),
                  static_cast<double>(tree->log_live_bytes()) / 1024.0);
      std::printf("DRAM=%.1fKB PM=%.1fKB invariants=%s\n",
                  static_cast<double>(footprint.dram_bytes) / 1024.0,
                  static_cast<double>(footprint.pm_bytes) / 1024.0,
                  tree->CheckInvariants() ? "OK" : "VIOLATED");
    } else if (cmd == "crash") {
      ctx.reset();
      tree.reset();
      runtime.device().Crash();
      std::string reopen_error;
      if (!runtime.Reopen(&reopen_error)) {
        std::printf("reopen failed: %s\n", reopen_error.c_str());
        return 1;
      }
      tree = std::make_unique<core::CclBTree>(runtime, options, kvindex::Lifecycle::kAttach);
      if (!tree->Recover(runtime, /*recovery_threads=*/1)) {
        std::printf("recovery failed\n");
        return 1;
      }
      ctx = std::make_unique<pmsim::ThreadContext>(runtime.device(), 0, 0);
      std::printf("crashed and recovered.\n");
    } else if (!cmd.empty()) {
      std::printf("unknown command '%s'\n", cmd.c_str());
    }
  }
  return 0;
}
