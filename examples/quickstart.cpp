// Quickstart: the smallest complete CCL-BTree program.
//
//   1. create a simulated PM device + runtime,
//   2. open a tree, insert / look up / scan / delete,
//   3. simulate a power failure and recover,
//   4. read the hardware-counter equivalents (CLI/XBI amplification).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/ccl_btree.h"

int main() {
  using namespace cclbt;

  // A 2-socket machine with 4 simulated DCPMM DIMMs per socket and 1 GB of
  // PM. The runtime owns the device, the PM pool and the ORDO clock.
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 1ULL << 30;
  kvindex::Runtime runtime(runtime_options);

  // Every thread that touches the tree needs a ThreadContext: it carries the
  // thread's NUMA socket, its worker id (for the per-thread WAL) and its
  // virtual clock.
  core::TreeOptions options;  // N_batch = 2, TH_log = 20%, locality-aware GC
  auto tree = std::make_unique<core::CclBTree>(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), /*socket=*/0, /*worker_id=*/0);

  // --- basic operations ------------------------------------------------------
  for (uint64_t k = 1; k <= 1000; k++) {
    tree->Upsert(k, k * 100);
  }
  uint64_t value = 0;
  bool found = tree->Lookup(500, &value);
  std::printf("lookup(500): found=%d value=%llu\n", found, (unsigned long long)value);

  kvindex::KeyValue range[10];
  size_t n = tree->Scan(495, 10, range);
  std::printf("scan(495, 10): ");
  for (size_t i = 0; i < n; i++) {
    std::printf("%llu ", (unsigned long long)range[i].key);
  }
  std::printf("\n");

  tree->Remove(500);
  std::printf("after remove: lookup(500)=%d\n", tree->Lookup(500, &value));

  // --- crash & recovery --------------------------------------------------------
  // Recently inserted KVs are still buffered in DRAM; they survive the crash
  // because every buffered write was WAL-logged first.
  tree->Upsert(2000, 42);
  tree.reset();               // drop the DRAM state (like a process kill)
  runtime.device().Crash();   // power failure: unflushed stores are gone

  // Reattach to the surviving media (validates the pool superblock), then
  // recover the tree from its persistent root.
  std::string reopen_error;
  if (!runtime.Reopen(&reopen_error)) {
    std::printf("reopen failed: %s\n", reopen_error.c_str());
    return 1;
  }
  auto recovered = std::make_unique<core::CclBTree>(runtime, options, kvindex::Lifecycle::kAttach);
  if (!recovered->Recover(runtime, /*recovery_threads=*/1)) {
    std::printf("recovery failed\n");
    return 1;
  }
  found = recovered->Lookup(2000, &value);
  std::printf("after crash+recovery: lookup(2000): found=%d value=%llu\n", found,
              (unsigned long long)value);
  std::printf("invariants hold: %d\n", recovered->CheckInvariants());

  // --- the paper's headline metric ----------------------------------------------
  runtime.device().DrainBuffers();
  auto stats = runtime.device().stats().Snapshot();
  std::printf("media writes: %.1f KB for %llu line flushes (XBI counters live in "
              "pmsim::Stats)\n",
              static_cast<double>(stats.media_write_bytes) / 1024.0,
              (unsigned long long)stats.line_flushes);
  return 0;
}
