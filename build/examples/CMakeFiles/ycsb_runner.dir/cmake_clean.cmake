file(REMOVE_RECURSE
  "CMakeFiles/ycsb_runner.dir/ycsb_runner.cpp.o"
  "CMakeFiles/ycsb_runner.dir/ycsb_runner.cpp.o.d"
  "ycsb_runner"
  "ycsb_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
