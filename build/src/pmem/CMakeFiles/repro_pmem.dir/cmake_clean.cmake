file(REMOVE_RECURSE
  "CMakeFiles/repro_pmem.dir/log_arena.cc.o"
  "CMakeFiles/repro_pmem.dir/log_arena.cc.o.d"
  "CMakeFiles/repro_pmem.dir/pool.cc.o"
  "CMakeFiles/repro_pmem.dir/pool.cc.o.d"
  "CMakeFiles/repro_pmem.dir/slab_allocator.cc.o"
  "CMakeFiles/repro_pmem.dir/slab_allocator.cc.o.d"
  "CMakeFiles/repro_pmem.dir/value_store.cc.o"
  "CMakeFiles/repro_pmem.dir/value_store.cc.o.d"
  "librepro_pmem.a"
  "librepro_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
