
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/log_arena.cc" "src/pmem/CMakeFiles/repro_pmem.dir/log_arena.cc.o" "gcc" "src/pmem/CMakeFiles/repro_pmem.dir/log_arena.cc.o.d"
  "/root/repo/src/pmem/pool.cc" "src/pmem/CMakeFiles/repro_pmem.dir/pool.cc.o" "gcc" "src/pmem/CMakeFiles/repro_pmem.dir/pool.cc.o.d"
  "/root/repo/src/pmem/slab_allocator.cc" "src/pmem/CMakeFiles/repro_pmem.dir/slab_allocator.cc.o" "gcc" "src/pmem/CMakeFiles/repro_pmem.dir/slab_allocator.cc.o.d"
  "/root/repo/src/pmem/value_store.cc" "src/pmem/CMakeFiles/repro_pmem.dir/value_store.cc.o" "gcc" "src/pmem/CMakeFiles/repro_pmem.dir/value_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmsim/CMakeFiles/repro_pmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
