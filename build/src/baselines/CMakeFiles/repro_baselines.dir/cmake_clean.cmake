file(REMOVE_RECURSE
  "CMakeFiles/repro_baselines.dir/dptree.cc.o"
  "CMakeFiles/repro_baselines.dir/dptree.cc.o.d"
  "CMakeFiles/repro_baselines.dir/fastfair.cc.o"
  "CMakeFiles/repro_baselines.dir/fastfair.cc.o.d"
  "CMakeFiles/repro_baselines.dir/flatstore.cc.o"
  "CMakeFiles/repro_baselines.dir/flatstore.cc.o.d"
  "CMakeFiles/repro_baselines.dir/leaf_tree.cc.o"
  "CMakeFiles/repro_baselines.dir/leaf_tree.cc.o.d"
  "CMakeFiles/repro_baselines.dir/lsmstore.cc.o"
  "CMakeFiles/repro_baselines.dir/lsmstore.cc.o.d"
  "CMakeFiles/repro_baselines.dir/utree.cc.o"
  "CMakeFiles/repro_baselines.dir/utree.cc.o.d"
  "librepro_baselines.a"
  "librepro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
