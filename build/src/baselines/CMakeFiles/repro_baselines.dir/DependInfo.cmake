
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dptree.cc" "src/baselines/CMakeFiles/repro_baselines.dir/dptree.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/dptree.cc.o.d"
  "/root/repo/src/baselines/fastfair.cc" "src/baselines/CMakeFiles/repro_baselines.dir/fastfair.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/fastfair.cc.o.d"
  "/root/repo/src/baselines/flatstore.cc" "src/baselines/CMakeFiles/repro_baselines.dir/flatstore.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/flatstore.cc.o.d"
  "/root/repo/src/baselines/leaf_tree.cc" "src/baselines/CMakeFiles/repro_baselines.dir/leaf_tree.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/leaf_tree.cc.o.d"
  "/root/repo/src/baselines/lsmstore.cc" "src/baselines/CMakeFiles/repro_baselines.dir/lsmstore.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/lsmstore.cc.o.d"
  "/root/repo/src/baselines/utree.cc" "src/baselines/CMakeFiles/repro_baselines.dir/utree.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/utree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_cclbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmsim/CMakeFiles/repro_pmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
