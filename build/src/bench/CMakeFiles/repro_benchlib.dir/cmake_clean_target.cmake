file(REMOVE_RECURSE
  "librepro_benchlib.a"
)
