# Empty compiler generated dependencies file for repro_benchlib.
# This may be replaced when dependencies are built.
