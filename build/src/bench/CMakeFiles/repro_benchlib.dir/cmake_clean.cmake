file(REMOVE_RECURSE
  "CMakeFiles/repro_benchlib.dir/driver.cc.o"
  "CMakeFiles/repro_benchlib.dir/driver.cc.o.d"
  "CMakeFiles/repro_benchlib.dir/index_factory.cc.o"
  "CMakeFiles/repro_benchlib.dir/index_factory.cc.o.d"
  "librepro_benchlib.a"
  "librepro_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
