file(REMOVE_RECURSE
  "CMakeFiles/repro_pmsim.dir/device.cc.o"
  "CMakeFiles/repro_pmsim.dir/device.cc.o.d"
  "CMakeFiles/repro_pmsim.dir/xpbuffer.cc.o"
  "CMakeFiles/repro_pmsim.dir/xpbuffer.cc.o.d"
  "librepro_pmsim.a"
  "librepro_pmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
