file(REMOVE_RECURSE
  "librepro_pmsim.a"
)
