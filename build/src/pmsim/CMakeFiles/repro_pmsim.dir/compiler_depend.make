# Empty compiler generated dependencies file for repro_pmsim.
# This may be replaced when dependencies are built.
