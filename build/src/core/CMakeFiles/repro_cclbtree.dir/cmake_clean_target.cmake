file(REMOVE_RECURSE
  "librepro_cclbtree.a"
)
