file(REMOVE_RECURSE
  "CMakeFiles/repro_cclbtree.dir/ccl_btree.cc.o"
  "CMakeFiles/repro_cclbtree.dir/ccl_btree.cc.o.d"
  "CMakeFiles/repro_cclbtree.dir/ccl_hash.cc.o"
  "CMakeFiles/repro_cclbtree.dir/ccl_hash.cc.o.d"
  "CMakeFiles/repro_cclbtree.dir/wal.cc.o"
  "CMakeFiles/repro_cclbtree.dir/wal.cc.o.d"
  "librepro_cclbtree.a"
  "librepro_cclbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cclbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
