# Empty dependencies file for repro_cclbtree.
# This may be replaced when dependencies are built.
