# Empty dependencies file for bench_fig15a_skew.
# This may be replaced when dependencies are built.
