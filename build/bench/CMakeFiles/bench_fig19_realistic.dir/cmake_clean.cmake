file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_realistic.dir/bench_fig19_realistic.cc.o"
  "CMakeFiles/bench_fig19_realistic.dir/bench_fig19_realistic.cc.o.d"
  "bench_fig19_realistic"
  "bench_fig19_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
