# Empty compiler generated dependencies file for bench_fig19_realistic.
# This may be replaced when dependencies are built.
