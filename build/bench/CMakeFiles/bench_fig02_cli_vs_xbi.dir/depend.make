# Empty dependencies file for bench_fig02_cli_vs_xbi.
# This may be replaced when dependencies are built.
