file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cli_vs_xbi.dir/bench_fig02_cli_vs_xbi.cc.o"
  "CMakeFiles/bench_fig02_cli_vs_xbi.dir/bench_fig02_cli_vs_xbi.cc.o.d"
  "bench_fig02_cli_vs_xbi"
  "bench_fig02_cli_vs_xbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cli_vs_xbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
