# Empty dependencies file for bench_tab2_thlog.
# This may be replaced when dependencies are built.
