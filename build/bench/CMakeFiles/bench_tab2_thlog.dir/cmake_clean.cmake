file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_thlog.dir/bench_tab2_thlog.cc.o"
  "CMakeFiles/bench_tab2_thlog.dir/bench_tab2_thlog.cc.o.d"
  "bench_tab2_thlog"
  "bench_tab2_thlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_thlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
