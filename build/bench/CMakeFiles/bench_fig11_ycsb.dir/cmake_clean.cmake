file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ycsb.dir/bench_fig11_ycsb.cc.o"
  "CMakeFiles/bench_fig11_ycsb.dir/bench_fig11_ycsb.cc.o.d"
  "bench_fig11_ycsb"
  "bench_fig11_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
