file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_logstructured.dir/bench_tab3_logstructured.cc.o"
  "CMakeFiles/bench_tab3_logstructured.dir/bench_tab3_logstructured.cc.o.d"
  "bench_tab3_logstructured"
  "bench_tab3_logstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_logstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
