# Empty dependencies file for bench_tab3_logstructured.
# This may be replaced when dependencies are built.
