file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_amplification_zipfian.dir/bench_fig04_amplification_zipfian.cc.o"
  "CMakeFiles/bench_fig04_amplification_zipfian.dir/bench_fig04_amplification_zipfian.cc.o.d"
  "bench_fig04_amplification_zipfian"
  "bench_fig04_amplification_zipfian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_amplification_zipfian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
