# Empty dependencies file for bench_fig04_amplification_zipfian.
# This may be replaced when dependencies are built.
