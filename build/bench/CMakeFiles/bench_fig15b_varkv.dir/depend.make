# Empty dependencies file for bench_fig15b_varkv.
# This may be replaced when dependencies are built.
