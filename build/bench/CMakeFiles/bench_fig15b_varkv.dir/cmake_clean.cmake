file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15b_varkv.dir/bench_fig15b_varkv.cc.o"
  "CMakeFiles/bench_fig15b_varkv.dir/bench_fig15b_varkv.cc.o.d"
  "bench_fig15b_varkv"
  "bench_fig15b_varkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b_varkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
