file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_amplification_uniform.dir/bench_fig03_amplification_uniform.cc.o"
  "CMakeFiles/bench_fig03_amplification_uniform.dir/bench_fig03_amplification_uniform.cc.o.d"
  "bench_fig03_amplification_uniform"
  "bench_fig03_amplification_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_amplification_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
