# Empty dependencies file for bench_fig03_amplification_uniform.
# This may be replaced when dependencies are built.
