file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_cxl_pagesize.dir/bench_extra_cxl_pagesize.cc.o"
  "CMakeFiles/bench_extra_cxl_pagesize.dir/bench_extra_cxl_pagesize.cc.o.d"
  "bench_extra_cxl_pagesize"
  "bench_extra_cxl_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_cxl_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
