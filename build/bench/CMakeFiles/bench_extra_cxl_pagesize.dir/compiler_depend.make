# Empty compiler generated dependencies file for bench_extra_cxl_pagesize.
# This may be replaced when dependencies are built.
