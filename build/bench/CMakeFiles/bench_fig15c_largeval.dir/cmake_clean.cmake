file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15c_largeval.dir/bench_fig15c_largeval.cc.o"
  "CMakeFiles/bench_fig15c_largeval.dir/bench_fig15c_largeval.cc.o.d"
  "bench_fig15c_largeval"
  "bench_fig15c_largeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15c_largeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
