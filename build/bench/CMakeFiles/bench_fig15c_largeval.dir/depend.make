# Empty dependencies file for bench_fig15c_largeval.
# This may be replaced when dependencies are built.
