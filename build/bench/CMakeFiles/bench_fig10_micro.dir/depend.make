# Empty dependencies file for bench_fig10_micro.
# This may be replaced when dependencies are built.
