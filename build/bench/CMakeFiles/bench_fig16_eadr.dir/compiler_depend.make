# Empty compiler generated dependencies file for bench_fig16_eadr.
# This may be replaced when dependencies are built.
