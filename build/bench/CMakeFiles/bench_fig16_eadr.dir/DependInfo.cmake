
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_eadr.cc" "bench/CMakeFiles/bench_fig16_eadr.dir/bench_fig16_eadr.cc.o" "gcc" "bench/CMakeFiles/bench_fig16_eadr.dir/bench_fig16_eadr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench/CMakeFiles/repro_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/repro_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/repro_cclbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/repro_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmsim/CMakeFiles/repro_pmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
