file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_eadr.dir/bench_fig16_eadr.cc.o"
  "CMakeFiles/bench_fig16_eadr.dir/bench_fig16_eadr.cc.o.d"
  "bench_fig16_eadr"
  "bench_fig16_eadr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_eadr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
