file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_nbatch.dir/bench_tab1_nbatch.cc.o"
  "CMakeFiles/bench_tab1_nbatch.dir/bench_tab1_nbatch.cc.o.d"
  "bench_tab1_nbatch"
  "bench_tab1_nbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_nbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
