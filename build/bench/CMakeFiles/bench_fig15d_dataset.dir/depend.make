# Empty dependencies file for bench_fig15d_dataset.
# This may be replaced when dependencies are built.
