file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gc.dir/bench_fig14_gc.cc.o"
  "CMakeFiles/bench_fig14_gc.dir/bench_fig14_gc.cc.o.d"
  "bench_fig14_gc"
  "bench_fig14_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
