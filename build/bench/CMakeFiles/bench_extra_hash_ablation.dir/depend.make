# Empty dependencies file for bench_extra_hash_ablation.
# This may be replaced when dependencies are built.
