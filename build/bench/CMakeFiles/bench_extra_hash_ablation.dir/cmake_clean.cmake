file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_hash_ablation.dir/bench_extra_hash_ablation.cc.o"
  "CMakeFiles/bench_extra_hash_ablation.dir/bench_extra_hash_ablation.cc.o.d"
  "bench_extra_hash_ablation"
  "bench_extra_hash_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_hash_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
