# Empty dependencies file for bench_extra_xpbuffer_size.
# This may be replaced when dependencies are built.
