file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_xpbuffer_size.dir/bench_extra_xpbuffer_size.cc.o"
  "CMakeFiles/bench_extra_xpbuffer_size.dir/bench_extra_xpbuffer_size.cc.o.d"
  "bench_extra_xpbuffer_size"
  "bench_extra_xpbuffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_xpbuffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
