# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmsim_test "/root/repo/build/tests/pmsim_test")
set_tests_properties(pmsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmem_test "/root/repo/build/tests/pmem_test")
set_tests_properties(pmem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dram_btree_test "/root/repo/build/tests/dram_btree_test")
set_tests_properties(dram_btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ccl_btree_test "/root/repo/build/tests/ccl_btree_test")
set_tests_properties(ccl_btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_conformance_test "/root/repo/build/tests/index_conformance_test")
set_tests_properties(index_conformance_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wal_test "/root/repo/build/tests/wal_test")
set_tests_properties(wal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(leaf_node_test "/root/repo/build/tests/leaf_node_test")
set_tests_properties(leaf_node_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scan_property_test "/root/repo/build/tests/scan_property_test")
set_tests_properties(scan_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ccl_fuzz_test "/root/repo/build/tests/ccl_fuzz_test")
set_tests_properties(ccl_fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(numa_eadr_test "/root/repo/build/tests/numa_eadr_test")
set_tests_properties(numa_eadr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ccl_hash_test "/root/repo/build/tests/ccl_hash_test")
set_tests_properties(ccl_hash_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmsim_queueing_test "/root/repo/build/tests/pmsim_queueing_test")
set_tests_properties(pmsim_queueing_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;repro_test;/root/repo/tests/CMakeLists.txt;0;")
