file(REMOVE_RECURSE
  "CMakeFiles/dram_btree_test.dir/dram_btree_test.cc.o"
  "CMakeFiles/dram_btree_test.dir/dram_btree_test.cc.o.d"
  "dram_btree_test"
  "dram_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
