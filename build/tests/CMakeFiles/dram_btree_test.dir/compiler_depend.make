# Empty compiler generated dependencies file for dram_btree_test.
# This may be replaced when dependencies are built.
