# Empty compiler generated dependencies file for ccl_fuzz_test.
# This may be replaced when dependencies are built.
