file(REMOVE_RECURSE
  "CMakeFiles/ccl_fuzz_test.dir/ccl_fuzz_test.cc.o"
  "CMakeFiles/ccl_fuzz_test.dir/ccl_fuzz_test.cc.o.d"
  "ccl_fuzz_test"
  "ccl_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
