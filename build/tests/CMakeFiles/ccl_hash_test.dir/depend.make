# Empty dependencies file for ccl_hash_test.
# This may be replaced when dependencies are built.
