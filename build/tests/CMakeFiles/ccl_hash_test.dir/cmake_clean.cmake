file(REMOVE_RECURSE
  "CMakeFiles/ccl_hash_test.dir/ccl_hash_test.cc.o"
  "CMakeFiles/ccl_hash_test.dir/ccl_hash_test.cc.o.d"
  "ccl_hash_test"
  "ccl_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
