# Empty dependencies file for numa_eadr_test.
# This may be replaced when dependencies are built.
