file(REMOVE_RECURSE
  "CMakeFiles/numa_eadr_test.dir/numa_eadr_test.cc.o"
  "CMakeFiles/numa_eadr_test.dir/numa_eadr_test.cc.o.d"
  "numa_eadr_test"
  "numa_eadr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_eadr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
