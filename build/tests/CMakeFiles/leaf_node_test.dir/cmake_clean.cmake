file(REMOVE_RECURSE
  "CMakeFiles/leaf_node_test.dir/leaf_node_test.cc.o"
  "CMakeFiles/leaf_node_test.dir/leaf_node_test.cc.o.d"
  "leaf_node_test"
  "leaf_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
