# Empty dependencies file for leaf_node_test.
# This may be replaced when dependencies are built.
