file(REMOVE_RECURSE
  "CMakeFiles/pmsim_queueing_test.dir/pmsim_queueing_test.cc.o"
  "CMakeFiles/pmsim_queueing_test.dir/pmsim_queueing_test.cc.o.d"
  "pmsim_queueing_test"
  "pmsim_queueing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmsim_queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
