# Empty dependencies file for pmsim_queueing_test.
# This may be replaced when dependencies are built.
