file(REMOVE_RECURSE
  "CMakeFiles/pmsim_test.dir/pmsim_test.cc.o"
  "CMakeFiles/pmsim_test.dir/pmsim_test.cc.o.d"
  "pmsim_test"
  "pmsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
