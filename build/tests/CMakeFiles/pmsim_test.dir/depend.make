# Empty dependencies file for pmsim_test.
# This may be replaced when dependencies are built.
