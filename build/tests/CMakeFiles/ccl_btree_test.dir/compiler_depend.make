# Empty compiler generated dependencies file for ccl_btree_test.
# This may be replaced when dependencies are built.
