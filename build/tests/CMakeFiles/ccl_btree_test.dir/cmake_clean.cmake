file(REMOVE_RECURSE
  "CMakeFiles/ccl_btree_test.dir/ccl_btree_test.cc.o"
  "CMakeFiles/ccl_btree_test.dir/ccl_btree_test.cc.o.d"
  "ccl_btree_test"
  "ccl_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
