// Figure 14: insert-throughput timeline under the three GC strategies
// (w/o GC, naive GC, locality-aware GC). The tree is populated and its
// buffers drained, then inserts run while throughput is sampled per window
// of operations; GC fires when the TH_log trigger is reached. Naive GC's
// random flush-back craters the insert rate; locality-aware GC barely
// registers.
//
// This binary prints the timeline as a table (a series does not fit the
// google-benchmark counter model).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ccl_btree.h"

namespace cclbt::bench {
namespace {

void RunTimeline(core::GcMode mode, const char* label, uint64_t scale) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 4ULL << 30;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions tree_options;
  tree_options.gc_mode = mode;
  // The bench paces GC explicitly at window edges via GcTick() so the
  // timeline is deterministic and GC cost lands between samples.
  tree_options.background_gc = false;
  core::CclBTree tree(runtime, tree_options);

  const int kThreads = 48;
  // Populate and drain all buffers (paper: "populate ... and clean all
  // buffer nodes").
  {
    pmsim::ThreadContext ctx(runtime.device(), 0, 0);
    for (uint64_t i = 0; i < scale; i++) {
      tree.Upsert(Mix64(i) | 1, i + 1);
    }
    tree.FlushAll();
  }
  runtime.device().ResetCosts();

  std::vector<std::unique_ptr<pmsim::ThreadContext>> ctxs;
  for (int w = 0; w < kThreads; w++) {
    ctxs.push_back(std::make_unique<pmsim::ThreadContext>(runtime.device(), 0, w));
  }
  pmsim::ThreadContext::SetCurrent(nullptr);

  const uint64_t kTotalOps = scale;
  const uint64_t kWindow = kTotalOps / 24;
  uint64_t done = 0;
  uint64_t window_start_vtime = 0;
  std::printf("%-14s %10s %10s %10s %8s\n", label, "t_ms", "Mops", "log_MB", "gc#");
  while (done < kTotalOps) {
    uint64_t window_end = std::min(kTotalOps, done + kWindow);
    uint64_t ops_in_window = window_end - done;
    while (done < window_end) {
      for (int w = 0; w < kThreads && done < window_end; w++) {
        pmsim::ThreadContext::SetCurrent(ctxs[static_cast<size_t>(w)].get());
        uint64_t i = scale + done;
        tree.Upsert(Mix64(i) | 1, i + 1);
        done++;
      }
    }
    // GC trigger check between windows (the paper's background thread; here
    // paced by the bench so the timeline is deterministic). GcTick() owns the
    // frontier fast-forward onto the tree's GC context, the kGc attribution
    // scope, and naive GC's stop-the-world clock raise (§3.4 / DESIGN.md §10).
    tree.GcTick();
    pmsim::ThreadContext::SetCurrent(nullptr);
    uint64_t vtime = runtime.device().MaxDimmBusyNs();
    for (auto& ctx : ctxs) {
      vtime = std::max(vtime, ctx->now_ns());
    }
    double window_ms = static_cast<double>(vtime - window_start_vtime) / 1e6;
    double mops = window_ms == 0 ? 0 : static_cast<double>(ops_in_window) / (window_ms * 1e3);
    std::printf("%-14s %10.2f %10.2f %10.2f %8lu\n", label,
                static_cast<double>(vtime) / 1e6, mops,
                static_cast<double>(tree.log_live_bytes()) / 1e6,
                static_cast<unsigned long>(tree.gc_rounds()));
    window_start_vtime = vtime;
  }
}

}  // namespace
}  // namespace cclbt::bench

int main() {
  uint64_t scale = cclbt::bench::BenchScale();
  cclbt::bench::RunTimeline(cclbt::core::GcMode::kNone, "w/o-GC", scale);
  cclbt::bench::RunTimeline(cclbt::core::GcMode::kLocalityAware, "locality-GC", scale);
  cclbt::bench::RunTimeline(cclbt::core::GcMode::kNaive, "naive-GC", scale);
  return 0;
}
