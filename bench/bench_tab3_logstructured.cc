// Table 3: CCL-BTree vs the log-structured stores (FlatStore reimplemented
// per its paper, RocksDB-PM stand-in). FlatStore wins raw inserts slightly;
// CCL-BTree dominates scans; the LSM loses everywhere.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  constexpr std::pair<const char*, OpType> kOps[] = {{"insert", OpType::kInsert},
                                                     {"search", OpType::kRead},
                                                     {"scan", OpType::kScan}};
  const std::vector<std::string> kIndexes = {"lsmstore", "flatstore", "cclbtree"};
  for (const std::string& name : kIndexes) {
    for (const auto& [op_name, op] : kOps) {
      std::string bench_name = std::string("tab3/") + name + "/" + op_name;
      OpType op_copy = op;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = op_copy == OpType::kScan ? scale / 20 : scale;
          config.op = op_copy;
          config.scan_len = 100;
          RunResult result = RunIndexWorkload(name, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
