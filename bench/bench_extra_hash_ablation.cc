// Extra extension experiment (paper §6, "Applicability to other indexes"):
// CCL-Hash — buffer nodes + write-conservative logging + locality-aware GC
// applied to a persistent hash table. Compares media write amplification and
// modeled insert throughput of the buffered design against direct bucket
// writes (the CCEH-style baseline arm).
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/ccl_hash.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (bool buffering : {false, true}) {
    for (bool conservative : {false, true}) {
      if (!buffering && conservative) {
        continue;  // meaningless combination
      }
      std::string bench_name = std::string("extra_hash/") +
                               (buffering ? (conservative ? "ccl-hash" : "ccl-hash-naivelog")
                                          : "unbuffered");
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 2ULL << 30;
          kvindex::Runtime runtime(runtime_options);
          core::CclHashTable::Options options;
          options.num_buckets = scale / 8;
          options.buffering = buffering;
          options.write_conservative_logging = conservative;
          core::CclHashTable table(runtime, options);

          // Interleaved virtual workers (same discipline as the driver).
          const int kThreads = 48;
          std::vector<std::unique_ptr<pmsim::ThreadContext>> ctxs;
          for (int w = 0; w < kThreads; w++) {
            ctxs.push_back(std::make_unique<pmsim::ThreadContext>(
                runtime.device(), runtime.SocketForWorker(w), w));
          }
          pmsim::ThreadContext::SetCurrent(nullptr);
          // Warm.
          uint64_t done = 0;
          while (done < scale) {
            for (int w = 0; w < kThreads && done < scale; w++, done++) {
              pmsim::ThreadContext::SetCurrent(ctxs[static_cast<size_t>(w)].get());
              table.Upsert(Mix64(done) | 1, done + 1);
            }
          }
          runtime.device().ResetCosts();
          auto before = runtime.device().stats().Snapshot();
          // Measure.
          done = 0;
          while (done < scale) {
            for (int w = 0; w < kThreads && done < scale; w++, done++) {
              pmsim::ThreadContext::SetCurrent(ctxs[static_cast<size_t>(w)].get());
              runtime.device().stats().AddUserBytes(16);
              table.Upsert(Mix64(scale + done) | 1, done + 1);
            }
          }
          pmsim::ThreadContext::SetCurrent(nullptr);
          uint64_t elapsed = runtime.device().MaxDimmBusyNs();
          for (auto& ctx : ctxs) {
            elapsed = std::max<uint64_t>(elapsed, ctx->now_ns());
          }
          auto delta = runtime.device().stats().Snapshot().Delta(before);
          state.counters["Mops"] =
              elapsed == 0 ? 0 : static_cast<double>(scale) * 1e3 / static_cast<double>(elapsed);
          state.counters["XBI"] = delta.XbiAmplification();
          state.counters["CLI"] = delta.CliAmplification();
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
