// Wall-clock microbenchmark for the pmsim hot path itself (not an index):
// FlushLine/Fence/ReadPm mixes at 1 and N OS threads, plus a PersistRange
// stress that exercises the pending-set dedup. Unlike every other bench in
// this directory, the reported metric IS host wall time: the simulator's
// virtual-time results are unaffected by this PR's optimizations by design,
// so wall throughput of the instrumentation layer is what we track here.
//
// Also counts heap allocations during each measured region via a global
// operator new/delete override, so "allocation-free hot path" is a number in
// the output rather than a claim in a doc.
//
// Usage: bench_pmsim_hotpath [output.json]   (default: BENCH_pmsim.json)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/pmsim/device.h"

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cclbt::pmsim {
namespace {

struct ScenarioResult {
  std::string name;
  int threads = 1;
  uint64_t ops = 0;
  double wall_ms = 0;
  double mops_wall = 0;
  uint64_t heap_allocs = 0;
};

DeviceConfig HotpathConfig() {
  DeviceConfig config;
  config.pool_bytes = 256 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 4;
  // Shadow-image upkeep is a memcpy, not instrumentation; keep it out of the
  // measurement so the XPBuffer/stats/pending path dominates.
  config.crash_tracking = false;
  return config;
}

// One worker's flush-heavy inner loop: random single-line flushes over a
// private region (mostly XPBuffer misses, the worst case), fence every 4th.
// `region_xplines` must be a power of two: the index is masked, not modulo'd,
// to keep the driver loop itself off the measurement.
void FlushHeavyWorker(PmDevice& device, ThreadContext& ctx, uint64_t region_base,
                      uint64_t region_xplines, uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < ops; i++) {
    uint64_t offset = region_base + (rng.Next() & (region_xplines - 1)) * kXplineBytes;
    device.FlushLine(ctx, device.base() + offset);
    if ((i & 3) == 3) {
      device.Fence(ctx);
    }
  }
  device.Fence(ctx);
}

template <typename Fn>
ScenarioResult Measure(const std::string& name, int threads, uint64_t ops, Fn&& body) {
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  body();
  auto stop = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_relaxed);
  ScenarioResult result;
  result.name = name;
  result.threads = threads;
  result.ops = ops;
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(stop - start).count();
  result.mops_wall = result.wall_ms <= 0 ? 0 : static_cast<double>(ops) / 1e3 / result.wall_ms;
  result.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  return result;
}

// Single-thread flush-heavy mix: the acceptance-criteria scenario.
ScenarioResult RunFlushHeavy1T() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kOps = 4'000'000;
  const uint64_t kRegionXplines = 1 << 16;
  // Warm: touch the region and let vectors/tables reach steady-state size.
  FlushHeavyWorker(device, ctx, 4096, kRegionXplines, 100'000, 1);
  return Measure("flush_heavy_1t", 1, kOps,
                 [&] { FlushHeavyWorker(device, ctx, 4096, kRegionXplines, kOps, 2); });
}

// N OS threads, each flushing a private region (all DIMMs shared). Threads
// and their contexts are created before the measured region so thread-spawn
// allocations do not pollute the hot-path allocation count.
ScenarioResult RunFlushHeavyNT() {
  unsigned hw = std::thread::hardware_concurrency();
  int threads = static_cast<int>(hw == 0 ? 4 : (hw > 8 ? 8 : hw));
  PmDevice device(HotpathConfig());
  const uint64_t kOpsPerThread = 1'000'000;
  const uint64_t kRegionXplines = 1 << 15;
  std::atomic<int> ready{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; w++) {
    workers.emplace_back([&, w] {
      ThreadContext ctx(device, 0, w);
      uint64_t region_base = 4096 + static_cast<uint64_t>(w) * (kRegionXplines * kXplineBytes);
      // Warm before signalling ready: steady-state table sizes, hot caches.
      FlushHeavyWorker(device, ctx, region_base, kRegionXplines, 50'000,
                       static_cast<uint64_t>(w) + 177);
      ready.fetch_add(1);
      while (!start.load(std::memory_order_acquire)) {
      }
      FlushHeavyWorker(device, ctx, region_base, kRegionXplines, kOpsPerThread,
                       static_cast<uint64_t>(w) + 77);
    });
  }
  while (ready.load() < threads) {
    std::this_thread::yield();
  }
  uint64_t total_ops = kOpsPerThread * static_cast<uint64_t>(threads);
  return Measure("flush_heavy_nt", threads, total_ops, [&] {
    start.store(true, std::memory_order_release);
    for (auto& t : workers) {
      t.join();
    }
  });
}

// 50/50 flush+fence / read mix on one thread.
ScenarioResult RunMixed1T() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kOps = 2'000'000;
  const uint64_t kRegionXplines = 1 << 16;
  auto body = [&](uint64_t ops, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < ops; i++) {
      uint64_t offset = 4096 + (rng.Next() & (kRegionXplines - 1)) * kXplineBytes;
      if ((i & 1) == 0) {
        device.FlushLine(ctx, device.base() + offset);
        device.Fence(ctx);
      } else {
        device.ReadPm(ctx, device.base() + offset, kCachelineBytes);
      }
    }
  };
  body(100'000, 5);  // warm
  return Measure("mixed_1t", 1, kOps, [&] { body(kOps, 6); });
}

// Large PersistRange calls: many pending lines per fence, which is quadratic
// if the pending-set dedup is a linear scan.
ScenarioResult RunLargePersist() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kRangeBytes = 256 << 10;  // 4096 lines per fence group
  const uint64_t kCalls = 400;
  const uint64_t kOps = kCalls * (kRangeBytes / kCachelineBytes);
  auto body = [&](uint64_t calls, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < calls; i++) {
      uint64_t offset = 4096 + (rng.Next() & 511) * kRangeBytes;
      device.PersistRange(ctx, device.base() + offset, kRangeBytes);
    }
  };
  body(20, 8);  // warm
  return Measure("large_persist_1t", 1, kOps, [&] { body(kCalls, 9); });
}

}  // namespace
}  // namespace cclbt::pmsim

int main(int argc, char** argv) {
  using cclbt::pmsim::ScenarioResult;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_pmsim.json";
  std::vector<ScenarioResult> results;
  results.push_back(cclbt::pmsim::RunFlushHeavy1T());
  results.push_back(cclbt::pmsim::RunFlushHeavyNT());
  results.push_back(cclbt::pmsim::RunMixed1T());
  results.push_back(cclbt::pmsim::RunLargePersist());

  for (const auto& r : results) {
    std::printf("%-18s threads=%d ops=%llu wall_ms=%.1f Mops(wall)=%.2f heap_allocs=%llu\n",
                r.name.c_str(), r.threads, static_cast<unsigned long long>(r.ops), r.wall_ms,
                r.mops_wall, static_cast<unsigned long long>(r.heap_allocs));
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"pmsim_hotpath\",\n  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); i++) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"threads\": %d, \"ops\": %llu, \"wall_ms\": %.3f, "
                 "\"mops_wall\": %.4f, \"heap_allocs_measured\": %llu}%s\n",
                 r.name.c_str(), r.threads, static_cast<unsigned long long>(r.ops), r.wall_ms,
                 r.mops_wall, static_cast<unsigned long long>(r.heap_allocs),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return 0;
}
