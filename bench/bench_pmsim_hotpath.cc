// Wall-clock microbenchmark for the pmsim hot path and the whole-tree query
// paths. Unlike every other bench in this directory, the reported metric IS
// host wall time: virtual-time results are unaffected by these CPU-side
// optimizations by design, so wall throughput is what we track here.
//
// Two scenario families:
//   * pmsim instrumentation layer: FlushLine/Fence/ReadPm mixes at 1 and N
//     OS threads, plus a PersistRange stress (pending-set dedup).
//   * whole-tree CCL-BTree operations: point lookup (hit/miss), upsert,
//     short scans, at 1 thread and N OS threads. Each read scenario is
//     paired with a "_scalarlock" A/B baseline — SIMD forced to the scalar
//     fallback (simd::ForceLevel) and the inner index's optimistic descent
//     replaced by its shared_mutex path (set_locked_inner_reads) — under an
//     otherwise identical harness. Scenarios report the median of
//     kTreeReps reps.
//
// Also counts heap allocations during each measured region via a global
// operator new/delete override, so "allocation-free hot path" is a number in
// the output rather than a claim in a doc. Steady-state CCL-BTree lookups
// and upserts are *asserted* allocation-free (the binary fails otherwise).
//
// Usage: bench_pmsim_hotpath [output.json]   (default: BENCH_pmsim.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/ccl_btree.h"
#include "src/pmsim/device.h"

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

// The replacement operators pair new/new[] with malloc and delete/delete[]
// with free by design; GCC's heuristic flags the cross-family pairing when
// it inlines both sides into one caller.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace cclbt::pmsim {
namespace {

struct ScenarioResult {
  std::string name;
  int threads = 1;
  uint64_t ops = 0;
  double wall_ms = 0;
  double mops_wall = 0;
  uint64_t heap_allocs = 0;
};

DeviceConfig HotpathConfig() {
  DeviceConfig config;
  config.pool_bytes = 256 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 4;
  // Shadow-image upkeep is a memcpy, not instrumentation; keep it out of the
  // measurement so the XPBuffer/stats/pending path dominates.
  config.crash_tracking = false;
  return config;
}

// One worker's flush-heavy inner loop: random single-line flushes over a
// private region (mostly XPBuffer misses, the worst case), fence every 4th.
// `region_xplines` must be a power of two: the index is masked, not modulo'd,
// to keep the driver loop itself off the measurement.
void FlushHeavyWorker(PmDevice& device, ThreadContext& ctx, uint64_t region_base,
                      uint64_t region_xplines, uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < ops; i++) {
    uint64_t offset = region_base + (rng.Next() & (region_xplines - 1)) * kXplineBytes;
    device.FlushLine(ctx, device.base() + offset);
    if ((i & 3) == 3) {
      device.Fence(ctx);
    }
  }
  device.Fence(ctx);
}

template <typename Fn>
ScenarioResult Measure(const std::string& name, int threads, uint64_t ops, Fn&& body) {
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  body();
  auto stop = std::chrono::steady_clock::now();
  g_count_allocs.store(false, std::memory_order_relaxed);
  ScenarioResult result;
  result.name = name;
  result.threads = threads;
  result.ops = ops;
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(stop - start).count();
  result.mops_wall = result.wall_ms <= 0 ? 0 : static_cast<double>(ops) / 1e3 / result.wall_ms;
  result.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  return result;
}

// Single-thread flush-heavy mix: the acceptance-criteria scenario.
ScenarioResult RunFlushHeavy1T() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kOps = 4'000'000;
  const uint64_t kRegionXplines = 1 << 16;
  // Warm: touch the region and let vectors/tables reach steady-state size.
  FlushHeavyWorker(device, ctx, 4096, kRegionXplines, 100'000, 1);
  return Measure("flush_heavy_1t", 1, kOps,
                 [&] { FlushHeavyWorker(device, ctx, 4096, kRegionXplines, kOps, 2); });
}

// N OS threads, each flushing a private region (all DIMMs shared). Threads
// and their contexts are created before the measured region so thread-spawn
// allocations do not pollute the hot-path allocation count.
ScenarioResult RunFlushHeavyNT() {
  unsigned hw = std::thread::hardware_concurrency();
  int threads = static_cast<int>(hw == 0 ? 4 : (hw > 8 ? 8 : hw));
  PmDevice device(HotpathConfig());
  const uint64_t kOpsPerThread = 1'000'000;
  const uint64_t kRegionXplines = 1 << 15;
  std::atomic<int> ready{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; w++) {
    workers.emplace_back([&, w] {
      ThreadContext ctx(device, 0, w);
      uint64_t region_base = 4096 + static_cast<uint64_t>(w) * (kRegionXplines * kXplineBytes);
      // Warm before signalling ready: steady-state table sizes, hot caches.
      FlushHeavyWorker(device, ctx, region_base, kRegionXplines, 50'000,
                       static_cast<uint64_t>(w) + 177);
      ready.fetch_add(1);
      while (!start.load(std::memory_order_acquire)) {
      }
      FlushHeavyWorker(device, ctx, region_base, kRegionXplines, kOpsPerThread,
                       static_cast<uint64_t>(w) + 77);
    });
  }
  while (ready.load() < threads) {
    std::this_thread::yield();
  }
  uint64_t total_ops = kOpsPerThread * static_cast<uint64_t>(threads);
  return Measure("flush_heavy_nt", threads, total_ops, [&] {
    start.store(true, std::memory_order_release);
    for (auto& t : workers) {
      t.join();
    }
  });
}

// 50/50 flush+fence / read mix on one thread.
ScenarioResult RunMixed1T() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kOps = 2'000'000;
  const uint64_t kRegionXplines = 1 << 16;
  auto body = [&](uint64_t ops, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < ops; i++) {
      uint64_t offset = 4096 + (rng.Next() & (kRegionXplines - 1)) * kXplineBytes;
      if ((i & 1) == 0) {
        device.FlushLine(ctx, device.base() + offset);
        device.Fence(ctx);
      } else {
        device.ReadPm(ctx, device.base() + offset, kCachelineBytes);
      }
    }
  };
  body(100'000, 5);  // warm
  return Measure("mixed_1t", 1, kOps, [&] { body(kOps, 6); });
}

// Large PersistRange calls: many pending lines per fence, which is quadratic
// if the pending-set dedup is a linear scan.
ScenarioResult RunLargePersist() {
  PmDevice device(HotpathConfig());
  ThreadContext ctx(device, 0, 0);
  const uint64_t kRangeBytes = 256 << 10;  // 4096 lines per fence group
  const uint64_t kCalls = 400;
  const uint64_t kOps = kCalls * (kRangeBytes / kCachelineBytes);
  auto body = [&](uint64_t calls, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < calls; i++) {
      uint64_t offset = 4096 + (rng.Next() & 511) * kRangeBytes;
      device.PersistRange(ctx, device.base() + offset, kRangeBytes);
    }
  };
  body(20, 8);  // warm
  return Measure("large_persist_1t", 1, kOps, [&] { body(kCalls, 9); });
}

// --- whole-tree scenarios ----------------------------------------------------
// Wall-clock cost of complete CCL-BTree operations: DRAM inner descent +
// buffer-node probe + PM leaf probe (plus WAL/flush on upserts). The pmsim
// virtual-time charges still run — they are part of every real execution of
// these paths — so this measures the end-to-end engine, not a stripped copy.

constexpr int kTreeReps = 5;
constexpr int kTreeReadThreads = 4;

uint64_t TreeScale() {
  // CCL_BENCH_SCALE (used by CI to shrink runs) caps the keyspace.
  const char* env = std::getenv("CCL_BENCH_SCALE");
  uint64_t scale = 400'000;
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v > 0) {
      scale = static_cast<uint64_t>(v);
    }
  }
  return scale < 10'000 ? 10'000 : scale;
}

uint64_t TreeKey(uint64_t i) { return cclbt::Mix64(i) | 1; }  // bijective, nonzero

// Median-of-reps wrapper: runs `body` kTreeReps times and keeps the median
// wall time; heap_allocs reports the *max* across reps so the zero-alloc
// assertions cover every rep, not just the median one.
template <typename Fn>
ScenarioResult MeasureMedian(const std::string& name, int threads, uint64_t ops, Fn&& body) {
  std::vector<ScenarioResult> reps;
  for (int rep = 0; rep < kTreeReps; rep++) {
    reps.push_back(Measure(name, threads, ops, body));
  }
  std::sort(reps.begin(), reps.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) { return a.wall_ms < b.wall_ms; });
  ScenarioResult median = reps[reps.size() / 2];
  for (const auto& r : reps) {
    median.heap_allocs = std::max(median.heap_allocs, r.heap_allocs);
  }
  return median;
}

// Pins the A/B configuration for one scenario: baseline = scalar SIMD +
// shared_mutex inner reads; full = detected SIMD + optimistic descent.
struct TreeAbConfig {
  core::CclBTree* tree;
  void Baseline() const {
    simd::ForceLevel(simd::Level::kScalar);
    tree->set_locked_inner_reads(true);
  }
  void Full() const {
    simd::ClearForce();
    tree->set_locked_inner_reads(false);
  }
};

struct TreeFixture {
  std::unique_ptr<kvindex::Runtime> runtime;
  std::unique_ptr<core::CclBTree> tree;
  uint64_t scale = 0;

  TreeFixture() {
    scale = TreeScale();
    kvindex::RuntimeOptions runtime_options;
    runtime_options.device.pool_bytes = 2ULL << 30;
    runtime_options.device.num_sockets = 1;
    runtime_options.device.crash_tracking = false;
    runtime = std::make_unique<kvindex::Runtime>(runtime_options);
    core::TreeOptions tree_options;
    // GC off: wall-clock scenarios must not interleave GC rounds (the GC
    // schedule is exercised — and frozen — by the virtual-time benches).
    tree_options.background_gc = false;
    tree = std::make_unique<core::CclBTree>(*runtime, tree_options);
    pmsim::ThreadContext ctx(runtime->device(), 0, 0);
    for (uint64_t i = 0; i < scale; i++) {
      tree->Upsert(TreeKey(i), i + 1);
    }
    tree->FlushAll();
  }
};

// `hit`: probe present keys (buffer/read-cache + leaf fingerprint path);
// otherwise probe the disjoint key range [scale, 2*scale) (miss path:
// fingerprint filter rejects, no KV line touched on most probes).
void LookupWorker(core::CclBTree& tree, uint64_t scale, bool hit, uint64_t ops, uint64_t seed,
                  std::atomic<uint64_t>& sink) {
  Rng rng(seed);
  uint64_t found = 0;
  uint64_t acc = 0;
  for (uint64_t i = 0; i < ops; i++) {
    uint64_t idx = rng.NextBounded(scale) + (hit ? 0 : scale);
    uint64_t value = 0;
    if (tree.Lookup(TreeKey(idx), &value)) {
      found++;
      acc ^= value;
    }
  }
  sink.fetch_add(found + acc, std::memory_order_relaxed);
}

ScenarioResult RunTreeLookup1T(TreeFixture& fx, bool hit, bool baseline) {
  TreeAbConfig ab{fx.tree.get()};
  baseline ? ab.Baseline() : ab.Full();
  pmsim::ThreadContext ctx(fx.runtime->device(), 0, 0);
  const uint64_t kOps = fx.scale;
  std::atomic<uint64_t> sink{0};
  LookupWorker(*fx.tree, fx.scale, hit, kOps / 10, 11, sink);  // warm
  std::string name = std::string("ccl_lookup_") + (hit ? "hit" : "miss") + "_1t" +
                     (baseline ? "_scalarlock" : "");
  ScenarioResult result = MeasureMedian(name, 1, kOps, [&] {
    LookupWorker(*fx.tree, fx.scale, hit, kOps, 13, sink);
  });
  ab.Full();
  return result;
}

ScenarioResult RunTreeLookupNT(TreeFixture& fx, bool baseline) {
  TreeAbConfig ab{fx.tree.get()};
  baseline ? ab.Baseline() : ab.Full();
  const uint64_t kOpsPerThread = fx.scale / 2;
  std::atomic<uint64_t> sink{0};
  std::string name = std::string("ccl_lookup_hit_") + std::to_string(kTreeReadThreads) + "t" +
                     (baseline ? "_scalarlock" : "");
  // Unlike the 1T scenarios, each rep pays thread spawn inside the measured
  // region; spawn cost is identical across the A/B pair, and the median damps
  // scheduler noise. Contexts live in the workers (per-thread clocks).
  ScenarioResult result =
      MeasureMedian(name, kTreeReadThreads, kOpsPerThread * kTreeReadThreads, [&] {
        std::vector<std::thread> workers;
        for (int w = 0; w < kTreeReadThreads; w++) {
          workers.emplace_back([&fx, &sink, kOpsPerThread, w] {
            pmsim::ThreadContext ctx(fx.runtime->device(), 0, w);
            LookupWorker(*fx.tree, fx.scale, /*hit=*/true, kOpsPerThread,
                         static_cast<uint64_t>(w) + 31, sink);
          });
        }
        for (auto& t : workers) {
          t.join();
        }
      });
  ab.Full();
  return result;
}

ScenarioResult RunTreeUpsert1T(TreeFixture& fx) {
  TreeAbConfig ab{fx.tree.get()};
  ab.Full();
  pmsim::ThreadContext ctx(fx.runtime->device(), 0, 0);
  const uint64_t kOps = fx.scale / 2;
  // Steady state: overwrite existing keys, so batches apply in place (no
  // splits, no new buffer nodes) — the allocation-free regime the WAL chunk
  // list is pre-sized for.
  auto body = [&](uint64_t ops, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < ops; i++) {
      uint64_t idx = rng.NextBounded(fx.scale);
      fx.tree->Upsert(TreeKey(idx), idx + 7);
    }
  };
  body(kOps / 10, 17);  // warm
  return MeasureMedian("ccl_upsert_1t", 1, kOps, [&] { body(kOps, 19); });
}

ScenarioResult RunTreeScan1T(TreeFixture& fx) {
  TreeAbConfig ab{fx.tree.get()};
  ab.Full();
  pmsim::ThreadContext ctx(fx.runtime->device(), 0, 0);
  constexpr size_t kScanLen = 100;
  const uint64_t kScans = fx.scale / 50;
  std::vector<kvindex::KeyValue> out(kScanLen);
  std::atomic<uint64_t> sink{0};
  auto body = [&](uint64_t scans, uint64_t seed) {
    Rng rng(seed);
    uint64_t acc = 0;
    for (uint64_t i = 0; i < scans; i++) {
      acc += fx.tree->Scan(TreeKey(rng.NextBounded(fx.scale)), kScanLen, out.data());
    }
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  body(kScans / 10, 23);  // warm
  return MeasureMedian("ccl_scan_1t", 1, kScans * kScanLen, [&] { body(kScans, 29); });
}

}  // namespace
}  // namespace cclbt::pmsim

int main(int argc, char** argv) {
  using cclbt::pmsim::ScenarioResult;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_pmsim.json";
  std::vector<ScenarioResult> results;
  results.push_back(cclbt::pmsim::RunFlushHeavy1T());
  results.push_back(cclbt::pmsim::RunFlushHeavyNT());
  results.push_back(cclbt::pmsim::RunMixed1T());
  results.push_back(cclbt::pmsim::RunLargePersist());

  {
    cclbt::pmsim::TreeFixture fx;
    results.push_back(cclbt::pmsim::RunTreeLookup1T(fx, /*hit=*/true, /*baseline=*/false));
    results.push_back(cclbt::pmsim::RunTreeLookup1T(fx, /*hit=*/true, /*baseline=*/true));
    results.push_back(cclbt::pmsim::RunTreeLookup1T(fx, /*hit=*/false, /*baseline=*/false));
    results.push_back(cclbt::pmsim::RunTreeLookup1T(fx, /*hit=*/false, /*baseline=*/true));
    results.push_back(cclbt::pmsim::RunTreeLookupNT(fx, /*baseline=*/false));
    results.push_back(cclbt::pmsim::RunTreeLookupNT(fx, /*baseline=*/true));
    results.push_back(cclbt::pmsim::RunTreeScan1T(fx));
    results.push_back(cclbt::pmsim::RunTreeUpsert1T(fx));
  }

  // Hard gates, not advisory numbers:
  //  * steady-state tree lookups and upserts must be allocation-free
  //    (max over reps; see the WAL chunk-list reserve in src/core/wal.h);
  //  * A/B speedup of the full configuration over scalar+shared_mutex.
  int status = 0;
  for (const auto& r : results) {
    bool must_be_alloc_free = r.name == "ccl_lookup_hit_1t" || r.name == "ccl_lookup_miss_1t" ||
                              r.name == "ccl_upsert_1t";
    if (must_be_alloc_free && r.heap_allocs != 0) {
      std::fprintf(stderr, "FAIL: %s allocated %llu times in a measured rep (expected 0)\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.heap_allocs));
      status = 1;
    }
  }
  auto find_result = [&](const std::string& name) -> const ScenarioResult* {
    for (const auto& r : results) {
      if (r.name == name) {
        return &r;
      }
    }
    return nullptr;
  };
  for (const char* base : {"ccl_lookup_hit_1t", "ccl_lookup_miss_1t"}) {
    const ScenarioResult* full = find_result(base);
    const ScenarioResult* ab = find_result(std::string(base) + "_scalarlock");
    if (full != nullptr && ab != nullptr && full->wall_ms > 0) {
      std::printf("A/B %-20s speedup=%.2fx (%.1f ms -> %.1f ms, median of reps)\n", base,
                  ab->wall_ms / full->wall_ms, ab->wall_ms, full->wall_ms);
    }
  }

  for (const auto& r : results) {
    std::printf("%-18s threads=%d ops=%llu wall_ms=%.1f Mops(wall)=%.2f heap_allocs=%llu\n",
                r.name.c_str(), r.threads, static_cast<unsigned long long>(r.ops), r.wall_ms,
                r.mops_wall, static_cast<unsigned long long>(r.heap_allocs));
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"pmsim_hotpath\",\n  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); i++) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"threads\": %d, \"ops\": %llu, \"wall_ms\": %.3f, "
                 "\"mops_wall\": %.4f, \"heap_allocs_measured\": %llu}%s\n",
                 r.name.c_str(), r.threads, static_cast<unsigned long long>(r.ops), r.wall_ms,
                 r.mops_wall, static_cast<unsigned long long>(r.heap_allocs),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return status;
}
