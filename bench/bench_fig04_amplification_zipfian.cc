// Figure 4: same as Figure 3 under a Zipfian (theta = 0.9) distribution —
// skew lowers everyone's amplification (hot lines combine in the XPBuffer),
// but CCL-BTree still leads because buffered hot keys absorb updates in
// DRAM.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  const std::vector<std::string> kIndexes = {"fptree",  "fastfair", "dptree",  "utree",
                                             "lbtree",  "pactree",  "flatstore", "cclbtree"};
  for (const std::string& name : kIndexes) {
    benchmark::RegisterBenchmark(("fig04/" + name).c_str(), [=](benchmark::State& state) {
      for (auto _ : state) {
        RunConfig config;
        config.threads = 48;
        config.warm_keys = scale;
        config.ops = scale;
        config.op = OpType::kInsert;
        config.dist = KeyDistribution::kZipfian;
        config.zipf_theta = 0.9;
        RunResult result = RunIndexWorkload(name, config);
        SetCommonCounters(state, result);
        state.counters["exec_ms"] = result.elapsed_virtual_ms;
      }
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
