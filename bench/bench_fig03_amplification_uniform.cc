// Figure 3: CLI- and XBI-amplification plus execution time of every index
// under a uniform upsert workload at 48 threads (warm half the keys, then
// upsert the rest — the paper's 50 M + 50 M protocol, scaled).
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  const std::vector<std::string> kIndexes = {"fptree",  "fastfair", "dptree",  "utree",
                                             "lbtree",  "pactree",  "flatstore", "cclbtree"};
  for (const std::string& name : kIndexes) {
    benchmark::RegisterBenchmark(("fig03/" + name).c_str(), [=](benchmark::State& state) {
      for (auto _ : state) {
        RunConfig config;
        config.threads = 48;
        config.warm_keys = scale;
        config.ops = scale;
        config.op = OpType::kInsert;
        config.dist = KeyDistribution::kUniform;
        RunResult result = RunIndexWorkload(name, config);
        SetCommonCounters(state, result);
        state.counters["exec_ms"] = result.elapsed_virtual_ms;
      }
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
