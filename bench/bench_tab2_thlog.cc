// Table 2: sensitivity of the GC trigger threshold TH_log (10%..35%):
// insert throughput stays flat (locality-aware GC is cheap) while the peak
// log size tracks the threshold.
#include <string>

#include "bench/bench_common.h"
#include "src/core/ccl_btree.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (int th_log : {10, 15, 20, 25, 30, 35}) {
    std::string bench_name = "tab2/thlog:" + std::to_string(th_log);
    benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
      for (auto _ : state) {
        kvindex::RuntimeOptions runtime_options;
        runtime_options.device.pool_bytes = 2ULL << 30;
        kvindex::Runtime runtime(runtime_options);
        core::TreeOptions tree_options;
        tree_options.th_log_pct = th_log;
        tree_options.background_gc = true;  // GC must run live for this table
        core::CclBTree tree(runtime, tree_options);

        RunConfig config;
        config.threads = 48;
        config.warm_keys = scale;
        config.ops = scale;
        config.op = OpType::kInsert;
        RunResult result = RunWorkload(runtime, tree, config);

        state.counters["insert_Mops"] = result.mops;
        state.counters["peak_log_MB"] = static_cast<double>(tree.log_peak_bytes()) / 1e6;
        state.counters["gc_rounds"] = static_cast<double>(tree.gc_rounds());
      }
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
