// Figure 16: eADR mode — flush instructions removed (persistence is free),
// but implicit CPU-cache evictions reach the XPBuffer in arbitrary order,
// destroying XPLine locality. CCL-BTree still leads (batched leaf writes
// keep locality), and — the paper's counter-intuitive observation — overall
// throughput is LOWER than ADR-with-explicit-flushes for locality-aware
// designs.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  // The eADR persistence-domain backend (DESIGN.md §14); crash tracking off —
  // this is a perf run only.
  BackendSpec spec;
  spec.name = "eadr";
  spec.backend = pmsim::MediaBackend::kEadr;
  spec.crash_tracking = false;
  for (const std::string& name : TreeIndexNames()) {
    for (int threads : {1, 24, 48, 72, 96}) {
      std::string bench_name = "fig16/" + name + "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 2ULL << 30;
          ApplyBackendSpec(spec, runtime_options.device);
          kvindex::Runtime runtime(runtime_options);
          auto index = MakeIndex(name, runtime, {});
          RunConfig config;
          config.threads = threads;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          RunResult result = RunWorkload(runtime, *index, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
