// Figure 15(a): skew sensitivity — 50% lookup / 50% upsert over warmed keys
// with the Zipfian coefficient swept from 0.5 to 0.99 at 48 threads.
// CCL-BTree gains with skew (hot keys are absorbed by buffer nodes).
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

// 50% read / 50% update (remainder of the mix percentages maps to update).
constexpr YcsbMix kLookupUpsert{"lookup-upsert", 0, 50, 0};

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (double theta : {0.5, 0.6, 0.7, 0.8, 0.9, 0.99}) {
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name =
          "fig15a/" + name + "/theta:" + std::to_string(theta).substr(0, 4);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.mix = &kLookupUpsert;
          config.dist = KeyDistribution::kZipfian;
          config.zipf_theta = theta;
          RunResult result = RunIndexWorkload(name, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
