// Figure 15(c): large values (64-512 B, 8 B keys) at 96 threads. Values live
// out-of-band; the tree stores indirection pointers. The relative advantage
// of CCL-BTree shrinks as value bytes dominate the media traffic, but the
// pointer flushes still benefit from batching.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (size_t value_bytes : {64, 128, 256, 512}) {
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name = "fig15c/" + name + "/value:" + std::to_string(value_bytes);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 96;
          config.warm_keys = scale / 2;
          config.ops = scale / 2;
          config.op = OpType::kInsert;
          config.value_bytes = value_bytes;
          RunResult result = RunIndexWorkload(name, config, {}, 4ULL << 30);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
