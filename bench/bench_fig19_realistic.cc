// Figure 19: insert throughput at 96 threads on four realistic key
// distributions standing in for the SOSD datasets (amzn / osm / wiki /
// facebook; see src/common/keyspace.h for the distribution rationale).
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/keyspace.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  static std::vector<std::vector<uint64_t>> datasets;  // keep alive across runs
  datasets.reserve(4);  // no reallocation: registered lambdas hold pointers
  for (SosdDataset which : {SosdDataset::kAmzn, SosdDataset::kOsm, SosdDataset::kWiki,
                            SosdDataset::kFacebook}) {
    datasets.push_back(BuildSosdLikeDataset(which, scale * 2));
    const std::vector<uint64_t>* keys = &datasets.back();
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name = std::string("fig19/") + SosdDatasetName(which) + "/" + name;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 96;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          config.preset_keys = keys;
          RunResult result = RunIndexWorkload(name, config, {}, 4ULL << 30);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
