// Figure 15(d): dataset-size sweep at 96 threads (the paper's 100 M..1000 M
// keys, scaled). CCL-BTree's throughput should stay flat with dataset size;
// everyone else stays bandwidth-bound at their own level.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (uint64_t mult : {1, 2, 5, 10}) {
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name = "fig15d/" + name + "/keys:" + std::to_string(scale * mult);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 96;
          config.warm_keys = scale * mult / 2;
          config.ops = scale * mult / 2;
          config.op = OpType::kInsert;
          RunResult result = RunIndexWorkload(name, config, {}, 8ULL << 30);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
