// Figure 13: contribution of each CCL-BTree technique.
//   Base   — no buffering, no logging (direct leaf writes)
//   +BNode — leaf-node centric buffering with naive (log-everything) WAL
//   +WLog  — buffering with write-conservative logging (full design)
// Reports per-op throughput for all five operations (13a) and the
// XBI-amplification split into leaf vs WAL media traffic (13b).
#include <string>

#include "bench/bench_common.h"
#include "src/pmsim/config.h"

namespace cclbt::bench {
namespace {

struct Variant {
  const char* name;
  bool buffering;
  bool conservative;
};

void RegisterAll() {
  uint64_t scale = BenchScale();
  constexpr Variant kVariants[] = {{"Base", false, false},
                                   {"+BNode", true, false},
                                   {"+WLog", true, true}};
  constexpr std::pair<const char*, OpType> kOps[] = {{"insert", OpType::kInsert},
                                                     {"update", OpType::kUpdate},
                                                     {"delete", OpType::kDelete},
                                                     {"search", OpType::kRead},
                                                     {"scan", OpType::kScan}};
  for (const auto& variant : kVariants) {
    for (const auto& [op_name, op] : kOps) {
      std::string bench_name = std::string("fig13/") + variant.name + "/" + op_name;
      bool buffering = variant.buffering;
      bool conservative = variant.conservative;
      OpType op_copy = op;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = op_copy == OpType::kScan ? scale / 20 : scale;
          config.op = op_copy;
          IndexConfig index_config;
          index_config.tree.buffering = buffering;
          index_config.tree.write_conservative_logging = conservative;
          RunResult result = RunIndexWorkload("cclbtree", config, index_config);
          SetCommonCounters(state, result);
          // 13(b): attribute media writes to leaves vs WALs.
          uint64_t user = result.stats.user_bytes;
          if (user == 0) {
            user = ~0ULL;  // read-only phase: report 0 amplification
          }
          state.counters["XBI_leaf"] =
              static_cast<double>(
                  result.stats.media_writes_by_tag[static_cast<int>(pmsim::StreamTag::kLeaf)]) *
              256.0 / static_cast<double>(user);
          state.counters["XBI_wal"] =
              static_cast<double>(
                  result.stats.media_writes_by_tag[static_cast<int>(pmsim::StreamTag::kLog)]) *
              256.0 / static_cast<double>(user);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
