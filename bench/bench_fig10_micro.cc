// Figure 10: the micro-benchmark grid — insert / update / delete / search /
// scan throughput of every persistent B+-tree, sweeping the thread count.
// CCL-BTree should keep scaling past the point where the others' random
// XPLine writes exhaust PM bandwidth.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

struct OpSpec {
  const char* name;
  OpType op;
};

void RegisterAll() {
  uint64_t scale = BenchScale();
  constexpr OpSpec kOps[] = {{"insert", OpType::kInsert},
                             {"update", OpType::kUpdate},
                             {"delete", OpType::kDelete},
                             {"search", OpType::kRead},
                             {"scan", OpType::kScan}};
  for (const auto& spec : kOps) {
    for (const std::string& name : TreeIndexNames()) {
      for (int threads : {1, 24, 48, 72, 96}) {
        std::string bench_name =
            std::string("fig10/") + spec.name + "/" + name + "/threads:" + std::to_string(threads);
        OpType op = spec.op;
        benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
          for (auto _ : state) {
            RunConfig config;
            config.threads = threads;
            config.warm_keys = scale;
            config.ops = op == OpType::kScan ? scale / 20 : scale;
            config.op = op;
            config.scan_len = 100;
            RunResult result = RunIndexWorkload(name, config);
            SetCommonCounters(state, result);
          }
        })->Iterations(1)->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
