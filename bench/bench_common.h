// Shared plumbing for the per-figure/table benchmark binaries.
//
// Every binary registers its sweep as google-benchmark instances (one row
// per configuration) and reports the modeled metrics as counters:
//   Mops    modeled throughput (virtual time; see DESIGN.md §1)
//   XBI     XBI-amplification (media bytes / user bytes)
//   CLI     CLI-amplification (XPBuffer bytes / user bytes)
// plus experiment-specific counters. Wall time shown by the harness is the
// host execution time and is NOT the reported metric.
//
// Scaling: the paper uses 50 M warm + 50 M op datasets; binaries default to
// a laptop-friendly scale and honor CCL_BENCH_SCALE (number of measured ops;
// warm keys scale with it) so the full-size runs remain possible.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/bench/driver.h"
#include "src/pmsim/media_model.h"
#include "src/trace/component.h"

namespace cclbt::bench {

// A named persistence-domain configuration for backend-parameterized benches
// (DESIGN.md §14): the MediaBackend plus the unit/buffer geometry that
// defines it. Applied to a DeviceConfig before Runtime construction.
struct BackendSpec {
  std::string name;  // row segment, e.g. "adr", "eadr", "cxl4096"
  pmsim::MediaBackend backend = pmsim::MediaBackend::kAdrOptane;
  size_t unit_bytes = 0;    // media-unit override (0 = DeviceConfig default)
  size_t buffer_bytes = 0;  // buffer-capacity override (0 = default)
  bool cxl_volatile_buffer = false;
  bool crash_tracking = true;
};

inline void ApplyBackendSpec(const BackendSpec& spec, pmsim::DeviceConfig& device) {
  device.backend = spec.backend;
  if (spec.unit_bytes != 0) {
    device.xpline_bytes = spec.unit_bytes;
  }
  if (spec.buffer_bytes != 0) {
    device.xpbuffer_bytes = spec.buffer_bytes;
  }
  device.cxl_volatile_buffer = spec.cxl_volatile_buffer;
  device.crash_tracking = spec.crash_tracking;
}

// The backend sweep for bench_backend_matrix: the ADR/Optane baseline, the
// flush-free eADR domain, and page-granular CXL-mem at 1 KB and 4 KB units
// (buffer capacity held at 64 media units, as in bench_extra_cxl_pagesize).
inline std::vector<BackendSpec> MatrixBackends() {
  std::vector<BackendSpec> specs;
  specs.push_back({"adr", pmsim::MediaBackend::kAdrOptane, 0, 0, false, true});
  specs.push_back({"eadr", pmsim::MediaBackend::kEadr, 0, 0, false, true});
  specs.push_back({"cxl1024", pmsim::MediaBackend::kCxlMem, 1024, 64 * 1024, false, true});
  specs.push_back({"cxl4096", pmsim::MediaBackend::kCxlMem, 4096, 64 * 4096, false, true});
  return specs;
}

inline uint64_t BenchScale(uint64_t default_ops = 400'000) {
  const char* env = std::getenv("CCL_BENCH_SCALE");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) {
      return v;
    }
  }
  return default_ops;
}

inline void SetCommonCounters(benchmark::State& state, const RunResult& result) {
  state.counters["Mops"] = result.mops;
  state.counters["XBI"] = result.xbi_amplification;
  state.counters["CLI"] = result.cli_amplification;
  state.counters["virt_ms"] = result.elapsed_virtual_ms;
  // Per-component media-write attribution (pmtrace scopes), nonzero only so
  // benches that exercise few components stay uncluttered.
  for (int c = 0; c < trace::kNumComponents; c++) {
    uint64_t bytes = result.stats.media_write_bytes_by_component[c];
    if (bytes != 0) {
      std::string key = std::string("mwB_") +
                        trace::ComponentName(static_cast<trace::Component>(c));
      state.counters[key] = static_cast<double>(bytes);
    }
  }
}

inline void SetLatencyCounters(benchmark::State& state, const RunResult& result) {
  state.counters["p50_us"] = static_cast<double>(result.latency.Percentile(50)) / 1e3;
  state.counters["p90_us"] = static_cast<double>(result.latency.Percentile(90)) / 1e3;
  state.counters["p99_us"] = static_cast<double>(result.latency.Percentile(99)) / 1e3;
  state.counters["p999_us"] = static_cast<double>(result.latency.Percentile(99.9)) / 1e3;
  state.counters["min_us"] = static_cast<double>(result.latency.Min()) / 1e3;
}

// Per-component latency percentiles (requires collect_component_latency).
// Only components that recorded ops are reported; the histogram records, for
// each op, the virtual time spent under that component's trace scope.
inline void SetComponentLatencyCounters(benchmark::State& state, const RunResult& result) {
  for (int c = 0; c < trace::kNumComponents; c++) {
    const metrics::Histogram& h = result.component_latency[static_cast<size_t>(c)];
    if (h.Count() == 0) {
      continue;
    }
    std::string comp = trace::ComponentName(static_cast<trace::Component>(c));
    state.counters[comp + "_p50_us"] = static_cast<double>(h.Percentile(50)) / 1e3;
    state.counters[comp + "_p99_us"] = static_cast<double>(h.Percentile(99)) / 1e3;
    state.counters[comp + "_p999_us"] = static_cast<double>(h.Percentile(99.9)) / 1e3;
  }
}

// Runs the workload once inside the benchmark state loop.
template <typename Fn>
void RunOnce(benchmark::State& state, Fn&& fn) {
  for (auto _ : state) {
    fn(state);
  }
}

}  // namespace cclbt::bench

#endif  // BENCH_BENCH_COMMON_H_
