// Figure 11: YCSB-style macro workloads (insert-only, insert-intensive,
// read-intensive, read-only, scan-insert), sweeping the thread count.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (const YcsbMix* mix : {&kYcsbInsertOnly, &kYcsbInsertIntensive, &kYcsbReadIntensive,
                             &kYcsbReadOnly, &kYcsbScanInsert}) {
    for (const std::string& name : TreeIndexNames()) {
      for (int threads : {1, 24, 48, 72, 96}) {
        std::string bench_name = std::string("fig11/") + mix->name + "/" + name +
                                 "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
          for (auto _ : state) {
            RunConfig config;
            config.threads = threads;
            config.warm_keys = scale;
            // Scan-heavy mixes do far fewer (but much bigger) ops.
            config.ops = mix->scan_pct > 50 ? scale / 20 : scale;
            config.mix = mix;
            config.scan_len = 100;
            RunResult result = RunIndexWorkload(name, config);
            SetCommonCounters(state, result);
          }
        })->Iterations(1)->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
