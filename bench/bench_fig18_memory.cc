// Figure 18: DRAM and PM consumption of every index after bulk-loading,
// sweeping the value size (8-512 B; larger values go out-of-band through
// indirection pointers). Pure-PM indexes (FAST&FAIR, PACTree) report ~zero
// DRAM; µTree's per-KV DRAM index rivals its PM usage; CCL-BTree's buffer
// nodes add a bounded DRAM fraction.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (size_t value_bytes : {8, 32, 128, 512}) {
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name = "fig18/" + name + "/value:" + std::to_string(value_bytes);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          config.value_bytes = value_bytes;
          RunResult result = RunIndexWorkload(name, config, {}, 8ULL << 30);
          state.counters["DRAM_MB"] = static_cast<double>(result.footprint.dram_bytes) / 1e6;
          state.counters["PM_MB"] = static_cast<double>(result.footprint.pm_bytes) / 1e6;
          state.counters["dram_pct"] =
              100.0 * static_cast<double>(result.footprint.dram_bytes) /
              static_cast<double>(result.footprint.dram_bytes + result.footprint.pm_bytes);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
