// Figure 5: range-query throughput with 48 threads while varying the scan
// size from 50 to 400 KVs. FlatStore collapses (random log reads per KV);
// the B+-trees stay fast because adjacent keys share leaves.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  const std::vector<std::string> kIndexes = {"cclbtree", "lbtree",  "fptree", "fastfair",
                                             "pactree",  "dptree",  "utree",  "flatstore"};
  for (const std::string& name : kIndexes) {
    for (size_t scan_len : {50, 100, 200, 400}) {
      std::string bench_name = "fig05/" + name + "/scan:" + std::to_string(scan_len);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = 2 * scale;  // scan over a populated index
          config.ops = scale / 20;
          config.op = OpType::kScan;
          config.scan_len = scan_len;
          RunResult result = RunIndexWorkload(name, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
