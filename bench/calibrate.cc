// Calibration probe (not a paper experiment): prints insert/search/scan
// throughput and amplification for every index at 48 threads so the cost
// model can be sanity-checked against the paper's Figures 3/10 shapes.
#include <cstdio>

#include "src/bench/driver.h"

using namespace cclbt;
using namespace cclbt::bench;

int main(int argc, char** argv) {
  uint64_t scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  std::printf("%-12s %10s %8s %8s %8s %8s %10s %9s %8s %10s %12s %12s\n", "index", "insertMops", "CLI",
              "XBI", "mW/op", "mR/op", "searchMops", "s_mR/op", "s_hit%", "scanMops", "ins w/b ms", "scan w/b ms");
  for (const auto& name : AllIndexNames()) {
    RunConfig config;
    config.threads = 48;
    config.warm_keys = scale;
    config.ops = scale;
    config.op = OpType::kInsert;
    RunResult insert = RunIndexWorkload(name, config);

    RunConfig read_config = config;
    read_config.op = OpType::kRead;
    RunResult read = RunIndexWorkload(name, read_config);

    RunConfig scan_config = config;
    scan_config.op = OpType::kScan;
    scan_config.ops = scale / 20;
    scan_config.scan_len = 100;
    RunResult scan = RunIndexWorkload(name, scan_config);

    double ops = static_cast<double>(scale);
    std::printf("%-12s %10.2f %8.2f %8.2f %8.2f %8.2f %10.2f %9.2f %8.1f %10.3f %7.1f/%-7.1f %7.1f/%-7.1f\n",
                name.c_str(), insert.mops, insert.cli_amplification, insert.xbi_amplification,
                static_cast<double>(insert.stats.media_write_bytes) / 256 / ops,
                static_cast<double>(insert.stats.media_read_bytes) / 256 / ops, read.mops,
                static_cast<double>(read.stats.media_read_bytes) / 256 / ops,
                100.0 * static_cast<double>(read.stats.pm_read_hits) /
                    static_cast<double>(read.stats.pm_reads == 0 ? 1 : read.stats.pm_reads),
                scan.mops, insert.max_worker_vtime_ms, insert.max_dimm_busy_ms, scan.max_worker_vtime_ms, scan.max_dimm_busy_ms);
    std::fflush(stdout);
  }
  return 0;
}
