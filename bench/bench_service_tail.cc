// Tail latency of the sharded KV service under open-loop load (DESIGN.md
// §15). Closed-loop benches (fig10-12) measure service time only; this
// harness drives a Poisson (and one bursty) arrival process through
// admission control, per-shard bounded queues and group-commit batching, so
// an op's latency includes the queueing delay that XPBuffer-induced media
// stalls inflate near saturation.
//
// Each row first probes the configuration's saturation capacity (a
// closed-loop run on a fresh runtime), then offers load_pct% of that
// capacity open-loop on another fresh runtime: 50% (below saturation — tails
// track service time), 100% (at saturation — queues start to build), 200%
// (beyond — admission control sheds the excess and tails of *admitted*
// requests stay bounded by the queue depth). Rows sweep 2 and 4 shards,
// pinned round-robin across the device's 2 sockets by
// Runtime::SocketForWorker.
//
// Every reported counter is virtual-time/count data: rows are bit-identical
// run-to-run and participate in the run_benches.sh determinism diff and the
// bench_gate baseline.
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/metrics/metrics.h"
#include "src/service/service.h"

namespace cclbt::bench {
namespace {

using service::ArrivalProcess;
using service::OpenLoopConfig;
using service::ServiceConfig;
using service::ServiceResult;
using service::ShardedKvService;

ServiceConfig MakeServiceConfig(int shards) {
  ServiceConfig config;
  config.shards = shards;
  config.queue_capacity = 64;
  config.batch_ops = 8;  // 4x the tree's default nbatch: full buffer-node slots
  config.label = "service_tail_s" + std::to_string(shards);
  return config;
}

OpenLoopConfig MakeWorkload(uint64_t scale, double offered_mops) {
  OpenLoopConfig w;
  w.ops = scale;
  w.warm_keys = scale / 2;
  w.offered_mops = offered_mops;
  w.mix = &kYcsbInsertIntensive;
  w.seed = 42;
  return w;
}

std::unique_ptr<kvindex::Runtime> MakeRuntime() {
  kvindex::RuntimeOptions options;  // default device: 2 sockets, 4 DIMMs each
  return std::make_unique<kvindex::Runtime>(options);
}

// Saturation throughput of this shard count: closed-loop (arrivals always
// available), on a runtime discarded afterwards so the probe leaves no state
// behind. Deterministic, so re-probing per row keeps rows independent under
// benchmark filters.
double ProbeCapacityMops(int shards, uint64_t scale) {
  auto runtime = MakeRuntime();
  ShardedKvService probe(*runtime, MakeServiceConfig(shards));
  OpenLoopConfig w = MakeWorkload(scale, /*offered_mops=*/0);
  probe.Warm(w);
  return probe.Run(w).achieved_mops;
}

void SetServiceCounters(benchmark::State& state, const ServiceResult& result) {
  state.counters["Mops"] = result.achieved_mops;
  state.counters["offered_Mops"] = result.offered_mops;
  state.counters["shed_rate"] = result.shed_rate;
  state.counters["virt_ms"] = result.elapsed_virtual_ms;
  state.counters["XBI"] = result.xbi_amplification;
  state.counters["CLI"] = result.cli_amplification;
  state.counters["epochs"] = static_cast<double>(result.epochs.size());
  // Queueing + service latency (virtual) per op kind, arrival -> ack.
  const metrics::MetricsSnapshot& m = result.metrics_snapshot;
  struct KindRow {
    metrics::OpKind kind;
    const char* name;
  };
  for (const KindRow& k : {KindRow{metrics::OpKind::kUpsert, "upsert"},
                           KindRow{metrics::OpKind::kLookup, "lookup"}}) {
    const metrics::Histogram& h = m.virt(k.kind);
    if (h.Count() == 0) {
      continue;
    }
    std::string p = k.name;
    state.counters[p + "_p50_us"] = static_cast<double>(h.Percentile(50)) / 1e3;
    state.counters[p + "_p99_us"] = static_cast<double>(h.Percentile(99)) / 1e3;
    state.counters[p + "_p999_us"] = static_cast<double>(h.Percentile(99.9)) / 1e3;
  }
  // Socket-pinning check: distinct sockets the shards landed on (2 on the
  // default 2-socket device for every shard count >= 2).
  uint64_t socket_mask = 0;
  uint64_t max_depth = 0;
  for (const service::ShardStats& s : result.shards) {
    socket_mask |= 1ULL << s.socket;
    max_depth = std::max(max_depth, s.max_queue_depth);
  }
  state.counters["sockets"] = static_cast<double>(__builtin_popcountll(socket_mask));
  state.counters["max_qdepth"] = static_cast<double>(max_depth);
}

void RunRow(benchmark::State& state, int shards, int load_pct, ArrivalProcess process,
            uint64_t scale) {
  for (auto _ : state) {
    double capacity = ProbeCapacityMops(shards, scale);
    auto runtime = MakeRuntime();
    ShardedKvService svc(*runtime, MakeServiceConfig(shards));
    OpenLoopConfig w =
        MakeWorkload(scale, capacity * static_cast<double>(load_pct) / 100.0);
    w.process = process;
    svc.Warm(w);
    ServiceResult result = svc.Run(w);
    state.counters["capacity_Mops"] = capacity;
    SetServiceCounters(state, result);
  }
}

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (int shards : {2, 4}) {
    for (int load_pct : {50, 100, 200}) {
      std::string name = "service_tail/shards" + std::to_string(shards) + "/poisson/load" +
                         std::to_string(load_pct);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
        RunRow(state, shards, load_pct, ArrivalProcess::kPoisson, scale);
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  // One bursty row: same mean load as poisson/load100 but arriving in 4x
  // on/off bursts — the flash-crowd case the admission watermark absorbs.
  benchmark::RegisterBenchmark(
      "service_tail/shards2/burst/load100",
      [=](benchmark::State& state) {
        RunRow(state, 2, 100, ArrivalProcess::kBurst, scale);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
