// Extra extension experiment (paper §6, "Applicability to other PM
// devices"): future CXL-based devices (Samsung Memory-Semantic SSD, KIOXIA
// XL-FLASH) have internal buffers whose media unit is a flash page (4 KB)
// rather than a 256 B XPLine — an even larger cacheline/media mismatch. The
// paper argues CCL-BTree's techniques transfer; this bench tests that claim
// by sweeping the simulated media unit from 256 B to 4 KB and comparing the
// per-unit write amplification of CCL-BTree vs an unbuffered leaf tree.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (size_t unit : {256, 1024, 4096}) {
    const std::vector<std::string> kIndexes = {"fptree", "cclbtree"};
    for (const std::string& name : kIndexes) {
      std::string bench_name = "extra_cxl/" + name + "/unit:" + std::to_string(unit);
      // The CXL-mem backend with its persistent write-combining buffer
      // (DESIGN.md §14): page-granular media units, buffer capacity held at
      // 64 media units so the sweep isolates the unit-size effect.
      BackendSpec spec;
      spec.name = "cxl" + std::to_string(unit);
      spec.backend = pmsim::MediaBackend::kCxlMem;
      spec.unit_bytes = unit;
      spec.buffer_bytes = 64 * unit;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 2ULL << 30;
          ApplyBackendSpec(spec, runtime_options.device);
          kvindex::Runtime runtime(runtime_options);
          auto index = MakeIndex(name, runtime, {});
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          RunResult result = RunWorkload(runtime, *index, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
