// Figure 12: latency distribution (min / p50 / p90 / p99 / p99.9) of insert
// and search at 48 threads. DPTree's buffer gives low median insert latency
// but its merge produces extreme tails; CCL-BTree's low XBI keeps the p99.9
// down because writers rarely stall on a saturated WPQ.
//
// pmtrace extension: per-op latency is additionally broken down by trace
// component (wal / leaf / inner / buffernode / gc / ...), reported as
// <comp>_p50_us / _p99_us / _p999_us counters. The breakdown shows *where*
// the tail comes from (e.g. buffer-node flushes vs WAL appends).
//
// Latency collection goes through the metrics registry (src/metrics): the
// driver records every op into per-op-kind virtual/wall histograms and
// RunResult::latency is their merged view — the same single histogram
// implementation that backs .pmmetrics epoch percentiles.
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (const char* op_name : {"insert", "search"}) {
    OpType op = std::string(op_name) == "insert" ? OpType::kInsert : OpType::kRead;
    for (const std::string& name : TreeIndexNames()) {
      std::string bench_name = std::string("fig12/") + op_name + "/" + name;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = op;
          config.collect_latency = true;
          config.collect_component_latency = true;
          RunResult result = RunIndexWorkload(name, config);
          SetCommonCounters(state, result);
          SetLatencyCounters(state, result);
          SetComponentLatencyCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
