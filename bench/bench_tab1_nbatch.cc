// Table 1: sensitivity of N_batch (buffered KVs per buffer node, 1..5) at 48
// threads — insert/search throughput, media writes, DRAM hits, and DRAM/PM
// usage. Larger batches cut media writes and raise DRAM hit rates at the
// cost of buffer-node memory.
#include <string>

#include "bench/bench_common.h"
#include "src/core/ccl_btree.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (int nbatch = 1; nbatch <= 5; nbatch++) {
    std::string bench_name = "tab1/nbatch:" + std::to_string(nbatch);
    benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
      for (auto _ : state) {
        kvindex::RuntimeOptions runtime_options;
        runtime_options.device.pool_bytes = 2ULL << 30;
        kvindex::Runtime runtime(runtime_options);
        core::TreeOptions tree_options;
        tree_options.nbatch = nbatch;
        core::CclBTree tree(runtime, tree_options);

        RunConfig insert_config;
        insert_config.threads = 48;
        insert_config.warm_keys = scale;
        insert_config.ops = scale;
        insert_config.op = OpType::kInsert;
        RunResult insert = RunWorkload(runtime, tree, insert_config);

        uint64_t hits_before = tree.dram_hits();
        RunConfig search_config = insert_config;
        search_config.warm_keys = 0;  // index is already populated
        search_config.op = OpType::kRead;
        // Reads target the measured insert range.
        search_config.warm_keys = scale;
        RunResult search = RunWorkload(runtime, tree, search_config);

        state.counters["insert_Mops"] = insert.mops;
        state.counters["media_write_MB"] =
            static_cast<double>(insert.stats.media_write_bytes) / 1e6;
        state.counters["search_Mops"] = search.mops;
        state.counters["dram_hits_K"] =
            static_cast<double>(tree.dram_hits() - hits_before) / 1e3;
        auto footprint = tree.Footprint();
        state.counters["DRAM_MB"] = static_cast<double>(footprint.dram_bytes) / 1e6;
        state.counters["PM_MB"] = static_cast<double>(footprint.pm_bytes) / 1e6;
        state.counters["XBI"] = insert.xbi_amplification;
      }
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
