// Figure 2: the motivating microbenchmark. (a) fixes the number of XPLine
// flushes and raises cacheline flushes per write; (b) fixes cacheline
// flushes and raises XPLine flushes per write. On real DCPMM execution time
// converges across (a)'s configurations as threads saturate the bandwidth,
// but grows linearly with (b)'s XPLine count — XBI, not CLI, bounds
// performance. The bench drives the simulator directly (no index).
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/pmsim/device.h"

namespace cclbt::bench {
namespace {

// Each worker performs `writes` operations; an operation touches `lines`
// cachelines spread over `xplines` distinct random XPLines, then fences.
double RunRawFlushWorkload(int threads, int lines, int xplines, uint64_t writes_per_thread) {
  pmsim::DeviceConfig config;
  config.pool_bytes = 1ULL << 30;
  pmsim::PmDevice device(config);
  std::vector<std::unique_ptr<pmsim::ThreadContext>> ctxs;
  std::vector<Rng> rngs;
  for (int w = 0; w < threads; w++) {
    ctxs.push_back(std::make_unique<pmsim::ThreadContext>(device, w < 48 ? 0 : 1, w));
    rngs.emplace_back(static_cast<uint64_t>(w) + 7);
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
  const uint64_t kRegionXplines = (config.pool_bytes / 2) / pmsim::kXplineBytes - 16;
  std::vector<uint64_t> remaining(static_cast<size_t>(threads), writes_per_thread);
  bool any = true;
  while (any) {
    any = false;
    for (int w = 0; w < threads; w++) {
      auto& left = remaining[static_cast<size_t>(w)];
      if (left == 0) {
        continue;
      }
      any = true;
      pmsim::ThreadContext& ctx = *ctxs[static_cast<size_t>(w)];
      pmsim::ThreadContext::SetCurrent(&ctx);
      // One write: `lines` flushes spread across `xplines` random XPLines.
      for (int x = 0; x < xplines; x++) {
        uint64_t xpline = rngs[static_cast<size_t>(w)].NextBounded(kRegionXplines) + 16;
        uint64_t base = xpline * pmsim::kXplineBytes;
        int lines_here = std::max(1, lines / xplines);
        for (int l = 0; l < lines_here; l++) {
          device.FlushLine(ctx, device.base() + base + static_cast<uint64_t>(l) * 64);
        }
      }
      device.Fence(ctx);
      left--;
    }
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
  uint64_t elapsed = device.MaxDimmBusyNs();
  for (auto& ctx : ctxs) {
    elapsed = std::max(elapsed, ctx->now_ns());
  }
  return static_cast<double>(elapsed) / 1e6;  // modeled ms
}

void RegisterAll() {
  uint64_t writes = BenchScale(100'000) / 2;
  for (int threads : {1, 12, 24, 36, 48}) {
    // (a) N cacheline flushes into ONE XPLine per write.
    for (int lines : {1, 2, 3, 4}) {
      std::string name = "fig02a/cachelines:" + std::to_string(lines) +
                         "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          double ms = RunRawFlushWorkload(threads, lines, 1, writes / static_cast<uint64_t>(threads));
          state.counters["exec_ms"] = ms;
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    // (b) 4 cacheline flushes spread over N XPLines per write.
    for (int xplines : {1, 2, 3, 4}) {
      std::string name =
          "fig02b/xplines:" + std::to_string(xplines) + "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          double ms =
              RunRawFlushWorkload(threads, 4, xplines, writes / static_cast<uint64_t>(threads));
          state.counters["exec_ms"] = ms;
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
