// Figure 15(b): variable-size KVs (keys and values 8-128 B, stored through
// 8 B indirection pointers, paper §4.4 Opt. 3) — insert throughput across
// thread counts. All indexes slow down (pointer chasing); CCL-BTree keeps
// its lead because indirection-pointer writes still batch in buffer nodes.
// The paper excludes DPTree and PACTree here (their artifacts crash); we
// match the line-up.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  const std::vector<std::string> kIndexes = {"cclbtree", "fptree", "fastfair", "lbtree", "utree"};
  for (const std::string& name : kIndexes) {
    for (int threads : {1, 24, 48, 72, 96}) {
      std::string bench_name = "fig15b/" + name + "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          RunConfig config;
          config.threads = threads;
          config.warm_keys = scale / 2;
          config.ops = scale / 2;
          config.op = OpType::kInsert;
          // Average of the paper's 8-128 B random sizes.
          config.key_bytes = 64;
          config.value_bytes = 64;
          RunResult result = RunIndexWorkload(name, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
