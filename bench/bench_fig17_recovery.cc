// Figure 17: failure-recovery time of CCL-BTree vs dataset size, with 24 and
// 48 recovery threads. Recovery = rebuild DRAM layers from the leaf list +
// parallel WAL replay + timestamp reset; time grows linearly with data and
// scales with threads.
#include <algorithm>
#include <chrono>
#include <string>

#include "bench/bench_common.h"
#include "src/core/ccl_btree.h"
#include "src/metrics/metrics.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (uint64_t mult : {1, 2, 5}) {
    for (int threads : {24, 48}) {
      uint64_t keys = scale * mult;
      std::string bench_name =
          "fig17/keys:" + std::to_string(keys) + "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 8ULL << 30;
          kvindex::Runtime runtime(runtime_options);
          core::TreeOptions tree_options;
          tree_options.background_gc = false;
          {
            core::CclBTree tree(runtime, tree_options);
            RunConfig config;
            config.threads = 48;
            config.warm_keys = keys;
            config.ops = 0;
            RunResult ignored = RunWorkload(runtime, tree, config);
            (void)ignored;
          }
          runtime.device().Crash();
          std::string reopen_error;
          if (!runtime.Reopen(&reopen_error)) {
            state.SkipWithError(("reopen failed: " + reopen_error).c_str());
            return;
          }
          runtime.device().ResetCosts();
          auto wall0 = std::chrono::steady_clock::now();
          IndexConfig index_config;
          index_config.tree = tree_options;
          auto tree = RecoverIndex("cclbtree", runtime, index_config, threads);
          auto wall1 = std::chrono::steady_clock::now();
          if (tree == nullptr) {
            state.SkipWithError("recovery failed");
            return;
          }
          // Registry view of recovery latency (metrics::OpKind::kRecover);
          // no-op unless the gate is on (e.g. CCL_METRICS set).
          metrics::RecordOp(
              metrics::OpKind::kRecover, tree->last_recovery_modeled_ns(),
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
                      .count()));
          // Modeled recovery time: serial rebuild walk + slowest replay
          // worker, floored by the outstanding media work.
          state.counters["recovery_ms"] =
              static_cast<double>(std::max(tree->last_recovery_modeled_ns(),
                                           runtime.device().MaxDimmBusyNs())) /
              1e6;
          state.counters["wall_ms"] =
              std::chrono::duration<double, std::milli>(wall1 - wall0).count();
          state.counters["keys"] = static_cast<double>(keys);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
