// Backend matrix (DESIGN.md §14): the full index suite under every
// persistence-domain backend in one sweep — ADR/Optane (explicit flushes,
// 256 B XPLines), eADR (flush-free, modeled CPU-cache evictions), and
// page-granular CXL-mem (1 KB / 4 KB media units). One deterministic row per
// backend × index pair; XBI/CLI across rows show how each design's write
// amplification moves with the persistence domain, the paper's §6
// transferability claim in a single artifact (BENCH_backend_matrix.json).
#include <string>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (const BackendSpec& spec : MatrixBackends()) {
    for (const std::string& name : AllIndexNames()) {
      std::string bench_name = "backend_matrix/" + spec.name + "/" + name;
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 2ULL << 30;
          ApplyBackendSpec(spec, runtime_options.device);
          kvindex::Runtime runtime(runtime_options);
          auto index = MakeIndex(name, runtime, {});
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          RunResult result = RunWorkload(runtime, *index, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
