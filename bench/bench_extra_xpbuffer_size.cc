// Extra ablation (not in the paper): XPBuffer-capacity sensitivity. With a
// larger write-combining buffer, random flush streams combine better and the
// XBI gap between CCL-BTree and an unbuffered design narrows — validating
// that the simulator's XBI numbers come from the buffer model, not from an
// unrelated constant.
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cclbt::bench {
namespace {

void RegisterAll() {
  uint64_t scale = BenchScale();
  for (size_t xpbuffer_kb : {4, 16, 64, 256}) {
    const std::vector<std::string> kIndexes = {"fptree", "cclbtree"};
    for (const std::string& name : kIndexes) {
      std::string bench_name =
          "extra_xpbuf/" + name + "/kb:" + std::to_string(xpbuffer_kb);
      benchmark::RegisterBenchmark(bench_name.c_str(), [=](benchmark::State& state) {
        for (auto _ : state) {
          kvindex::RuntimeOptions runtime_options;
          runtime_options.device.pool_bytes = 2ULL << 30;
          runtime_options.device.xpbuffer_bytes = xpbuffer_kb * 1024;
          kvindex::Runtime runtime(runtime_options);
          auto index = MakeIndex(name, runtime, {});
          RunConfig config;
          config.threads = 48;
          config.warm_keys = scale;
          config.ops = scale;
          config.op = OpType::kInsert;
          RunResult result = RunWorkload(runtime, *index, config);
          SetCommonCounters(state, result);
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace cclbt::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  cclbt::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
