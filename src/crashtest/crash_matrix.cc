#include "src/crashtest/crash_matrix.h"

#include <cstdio>
#include <memory>

#include "src/bench/index_factory.h"
#include "src/common/rng.h"
#include "src/core/ccl_btree.h"
#include "src/crashtest/oracle.h"
#include "src/kvindex/runtime.h"
#include "src/pmsim/crash_injector.h"

namespace cclbt::crashtest {

namespace {

struct Op {
  uint64_t key;
  uint64_t value;
  bool remove;
};

// The workload is materialized up front so every point replays byte-identical
// operations (the injector aborts at a different prefix each time).
std::vector<Op> BuildOps(const MatrixConfig& config) {
  Rng rng(Mix64(config.seed ^ 0xc4a541ULL));
  std::vector<Op> ops;
  ops.reserve(config.ops);
  for (uint64_t i = 0; i < config.ops; i++) {
    Op op;
    // Keys must be nonzero (FAST&FAIR reserves 0 as the low sentinel).
    op.key = Mix64(rng.NextBounded(config.key_space) + 1) | 1;
    op.remove = rng.NextBounded(10) >= 8;  // 20% removes
    op.value = rng.Next() | 1;
    ops.push_back(op);
  }
  return ops;
}

kvindex::RuntimeOptions RuntimeOptionsFor(const MatrixConfig& config) {
  kvindex::RuntimeOptions options;
  // Single socket/DIMM: the matrix measures correctness, not NUMA effects,
  // and a small pool keeps the per-point Crash() shadow copy cheap.
  options.device.pool_bytes = config.pool_bytes;
  options.device.num_sockets = 1;
  options.device.dimms_per_socket = 1;
  options.device.backend = config.backend;
  if (config.media_unit_bytes != 0) {
    options.device.xpline_bytes = config.media_unit_bytes;
    // Keep buffer capacity at 64 media units, as in the CXL page sweep.
    options.device.xpbuffer_bytes = 64 * config.media_unit_bytes;
  }
  options.device.cxl_volatile_buffer = config.cxl_volatile_buffer;
  return options;
}

bench::IndexConfig IndexConfigFor(const MatrixConfig& config) {
  bench::IndexConfig index_config;
  // Deterministic GC scheduling (DESIGN.md §10) keeps fence counts a pure
  // function of the op stream even with background GC on, so the matrix can
  // crash inside GC's own flush/fence stream instead of disabling it.
  index_config.tree.background_gc = config.background_gc;
  index_config.tree.gc_scheduling = core::GcScheduling::kDeterministic;
  index_config.tree.th_log_pct = config.th_log_pct;
  index_config.tree.gc_quantum_ops = config.gc_quantum_ops;
  index_config.tree.max_workers = 2 + config.recovery_threads;
  return index_config;
}

void ApplyOp(kvindex::KvIndex& index, DurabilityOracle& oracle, const Op& op) {
  if (op.remove) {
    oracle.StartRemove(op.key);
    index.Remove(op.key);
  } else {
    oracle.StartUpsert(op.key, op.value);
    index.Upsert(op.key, op.value);
  }
  oracle.AckLast();
}

struct Probe {
  uint64_t total_fences = 0;
  bool recoverable = false;
  bool tolerates_torn = false;
  uint64_t gc_rounds = 0;
  std::vector<GcWindow> gc_windows;
};

// Runs the workload to completion with a count-only injector: yields the
// fence range the schedules cover, the index's declared capabilities, and
// the fence windows of every GC round (per-point replays are byte-identical
// up to their crash fence, so the probe's windows locate GC activity in
// every replay too).
Probe ProbeWorkload(const MatrixConfig& config, const std::vector<Op>& ops) {
  Probe probe;
  kvindex::Runtime runtime(RuntimeOptionsFor(config));
  auto index = bench::MakeIndex(config.index, runtime, IndexConfigFor(config));
  probe.recoverable = index->recoverable();
  probe.tolerates_torn = index->tolerates_torn_crash();
  pmsim::CrashInjector injector;
  DurabilityOracle oracle;
  {
    pmsim::ThreadContext ctx(runtime.device(), /*socket=*/0, /*worker_id=*/0);
    runtime.device().SetCrashInjector(&injector);
    injector.Arm(/*fence_target=*/0);  // count-only
    for (const Op& op : ops) {
      ApplyOp(*index, oracle, op);
    }
    runtime.device().SetCrashInjector(nullptr);
  }
  probe.total_fences = injector.fences_observed();
  if (auto* tree = dynamic_cast<core::CclBTree*>(index.get())) {
    probe.gc_rounds = tree->gc_rounds();
    for (const core::CclBTree::GcFenceWindow& window : tree->gc_fence_windows()) {
      probe.gc_windows.push_back({window.first_fence, window.last_fence});
    }
  }
  return probe;
}

struct PointOutcome {
  bool fired = false;
  bool reopen_ok = false;
  bool recover_ok = false;
  std::string reopen_error;
  DurabilityOracle::Report report;
};

PointOutcome RunPoint(const MatrixConfig& config, const std::vector<Op>& ops,
                      const CrashPoint& point) {
  PointOutcome outcome;
  kvindex::Runtime runtime(RuntimeOptionsFor(config));
  auto index = bench::MakeIndex(config.index, runtime, IndexConfigFor(config));
  pmsim::CrashInjector injector;
  DurabilityOracle oracle;
  {
    pmsim::ThreadContext ctx(runtime.device(), /*socket=*/0, /*worker_id=*/0);
    // Armed only after index creation, so fence targets count from the start
    // of the workload — matching the probe run.
    runtime.device().SetCrashInjector(&injector);
    injector.Arm(point.fence_target,
                 point.torn ? pmsim::CrashInjector::Mode::kTorn
                            : pmsim::CrashInjector::Mode::kClean,
                 point.torn_seed);
    try {
      for (const Op& op : ops) {
        ApplyOp(*index, oracle, op);
      }
    } catch (const pmsim::CrashPointReached&) {
      outcome.fired = true;
    }
    runtime.device().SetCrashInjector(nullptr);
    if (outcome.fired) {
      // Settle the media while this worker context is still alive: the torn
      // lottery runs over the context's pending (unfenced) lines.
      if (point.torn) {
        runtime.device().CrashTorn(point.torn_seed);
      } else {
        runtime.device().Crash();
      }
    }
  }
  if (!outcome.fired) {
    return outcome;  // target beyond the workload's fence range
  }
  index.reset();  // discard the aborted instance's DRAM state
  outcome.reopen_ok = runtime.Reopen(&outcome.reopen_error);
  if (!outcome.reopen_ok) {
    return outcome;
  }
  auto recovered =
      bench::RecoverIndex(config.index, runtime, IndexConfigFor(config), config.recovery_threads);
  outcome.recover_ok = recovered != nullptr;
  if (!outcome.recover_ok) {
    return outcome;
  }
  pmsim::ThreadContext ctx(runtime.device(), /*socket=*/0, /*worker_id=*/0);
  outcome.report = oracle.Verify(*recovered, config.max_diagnostics);
  return outcome;
}

}  // namespace

std::vector<CrashPoint> BuildSchedule(const MatrixConfig& config, uint64_t total_fences,
                                      bool torn_allowed,
                                      const std::vector<GcWindow>& gc_windows) {
  std::vector<CrashPoint> points;
  auto add = [&](uint64_t target) {
    if (target == 0 || target > total_fences) {
      return;
    }
    CrashPoint point;
    point.fence_target = target;
    if (torn_allowed && points.size() % 2 == 1) {
      point.torn = true;
      point.torn_seed = Mix64(config.seed ^ target ^ 0x70421ULL);
    }
    points.push_back(point);
  };
  if (config.nth != 0) {
    for (uint64_t target = config.nth; target <= total_fences; target += config.nth) {
      add(target);
    }
  }
  if (config.random_points != 0) {
    Rng rng(Mix64(config.seed ^ 0x5eedc0deULL));
    for (uint64_t i = 0; i < config.random_points; i++) {
      add(rng.NextBounded(total_fences) + 1);
    }
  }
  if (config.window_len != 0 && total_fences != 0) {
    uint64_t start = config.window_start;
    if (start == 0) {
      start = total_fences > config.window_len ? (total_fences - config.window_len) / 2 + 1 : 1;
    }
    for (uint64_t i = 0; i < config.window_len; i++) {
      add(start + i);
    }
  }
  if (config.gc_stride != 0) {
    for (const GcWindow& window : gc_windows) {
      for (uint64_t target = window.first_fence; target <= window.last_fence;
           target += config.gc_stride) {
        add(target);
      }
    }
  }
  return points;
}

MatrixResult RunCrashMatrix(const MatrixConfig& config) {
  MatrixResult result;
  const std::vector<Op> ops = BuildOps(config);
  Probe probe = ProbeWorkload(config, ops);
  result.index_recoverable = probe.recoverable;
  result.total_fences = probe.total_fences;
  result.gc_rounds_probe = probe.gc_rounds;
  if (!probe.recoverable) {
    result.diagnostics.push_back(config.index + " declares not_recoverable; no points run");
    return result;
  }
  bool torn_allowed = config.torn && probe.tolerates_torn;
  auto in_gc_window = [&probe](uint64_t fence) {
    for (const GcWindow& window : probe.gc_windows) {
      if (fence >= window.first_fence && fence <= window.last_fence) {
        return true;
      }
    }
    return false;
  };

  for (const CrashPoint& point :
       BuildSchedule(config, probe.total_fences, torn_allowed, probe.gc_windows)) {
    PointOutcome outcome = RunPoint(config, ops, point);
    if (!outcome.fired) {
      continue;
    }
    result.crash_points++;
    if (in_gc_window(point.fence_target)) {
      result.gc_window_points++;
    }
    if (point.torn) {
      result.torn_crashes++;
    } else {
      result.clean_crashes++;
    }
    result.digest = Mix64(result.digest ^ point.fence_target);
    result.digest = Mix64(result.digest ^ (point.torn ? point.torn_seed : 0x11ULL));
    if (!outcome.reopen_ok) {
      result.reopen_failures++;
      if (static_cast<int>(result.diagnostics.size()) < config.max_diagnostics) {
        result.diagnostics.push_back("reopen failed @fence " +
                                     std::to_string(point.fence_target) + ": " +
                                     outcome.reopen_error);
      }
      continue;
    }
    if (!outcome.recover_ok) {
      result.recover_failures++;
      if (static_cast<int>(result.diagnostics.size()) < config.max_diagnostics) {
        result.diagnostics.push_back("recover failed @fence " +
                                     std::to_string(point.fence_target));
      }
      continue;
    }
    result.keys_checked += outcome.report.keys_checked;
    result.lost += outcome.report.lost;
    result.stale += outcome.report.stale;
    result.garbage += outcome.report.garbage;
    result.digest = Mix64(result.digest ^ outcome.report.observation_digest);
    for (const std::string& diag : outcome.report.diagnostics) {
      if (static_cast<int>(result.diagnostics.size()) >= config.max_diagnostics) {
        break;
      }
      result.diagnostics.push_back("@fence " + std::to_string(point.fence_target) +
                                   (point.torn ? " (torn) " : " ") + diag);
    }
  }
  return result;
}

}  // namespace cclbt::crashtest
