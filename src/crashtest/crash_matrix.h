// Systematic crash-point enumeration (DESIGN.md §9).
//
// A matrix run takes one recoverable index and one deterministic
// single-worker workload, probes how many fences the uninterrupted workload
// executes, derives a crash schedule from the seed (every-Nth, seeded-random
// and exhaustive-window points over the fence range, plus points inside the
// fence windows of the probe's background-GC rounds), and then, for every
// scheduled point, replays the workload in a fresh Runtime with a
// pmsim::CrashInjector armed at that fence. The injected crash aborts the
// workload mid-operation; the harness settles the media with
// PmDevice::Crash() or CrashTorn(seed), reopens the pool
// (Runtime::Reopen), recovers the index (bench::RecoverIndex) and verifies
// the durability oracle's invariants.
//
// Everything — workload, schedules, torn seeds, oracle verdicts — is a pure
// function of MatrixConfig, so a matrix run is exactly reproducible from its
// seed (the pmsim virtual-time model is deterministic for one worker).
#ifndef SRC_CRASHTEST_CRASH_MATRIX_H_
#define SRC_CRASHTEST_CRASH_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/pmsim/config.h"

namespace cclbt::crashtest {

// One scheduled crash point: fire at the `fence_target`-th fence (1-based)
// after the injector is armed, i.e. counted from the start of the workload.
struct CrashPoint {
  uint64_t fence_target = 0;
  bool torn = false;
  uint64_t torn_seed = 0;
};

struct MatrixConfig {
  std::string index = "cclbtree";  // factory name; must be recoverable
  // Drives the workload keys/values/op-mix AND every schedule/torn seed.
  uint64_t seed = 1;
  uint64_t ops = 2500;
  uint64_t key_space = 800;
  // every-Nth schedule: a crash point at every multiple of `nth` fences
  // (0 disables the schedule).
  uint64_t nth = 0;
  // seeded-random schedule: `random_points` uniform draws over [1, fences].
  uint64_t random_points = 0;
  // exhaustive-window schedule: every fence in
  // [window_start, window_start + window_len); window_start 0 centres the
  // window on the workload.
  uint64_t window_start = 0;
  uint64_t window_len = 0;
  // Make every second scheduled point a torn crash (CrashTorn) — only
  // honoured when the index declares tolerates_torn_crash().
  bool torn = false;
  // --- background-GC coverage (cclbtree, DESIGN.md §10) --------------------
  // The matrix runs the tree with background GC enabled under deterministic
  // scheduling, so GC rounds land at fence counts that are a pure function
  // of the op stream and crash points can hit GC's own flush/fence stream —
  // including the relocate-then-free window of the locality-aware GC.
  bool background_gc = true;
  int th_log_pct = 6;      // low trigger so GC fires within small workloads
  int gc_quantum_ops = 16;  // tight quantum for the same reason
  // gc-window schedule: a crash point at every gc_stride-th fence inside
  // each GC round's fence window observed in the probe run (0 disables).
  uint64_t gc_stride = 2;
  size_t pool_bytes = 32ULL << 20;  // small pool keeps per-point Crash() cheap
  int recovery_threads = 1;
  int max_diagnostics = 8;
  // Persistence-domain backend of every per-point Runtime (DESIGN.md §14).
  // kAuto resolves to ADR unless CCL_BACKEND overrides; kEadr shrinks the
  // crash window to nothing (acked stores are durable at the cacheline),
  // kCxlMem widens it to a media page.
  pmsim::MediaBackend backend = pmsim::MediaBackend::kAuto;
  // CXL geometry for backend == kCxlMem (0 = DeviceConfig defaults).
  size_t media_unit_bytes = 0;
  bool cxl_volatile_buffer = false;
};

// Fence-count window [first_fence, last_fence] (1-based, inclusive) of one
// completed GC round, as observed by the probe run's injector.
struct GcWindow {
  uint64_t first_fence = 0;
  uint64_t last_fence = 0;
};

struct MatrixResult {
  bool index_recoverable = false;
  uint64_t total_fences = 0;  // fences in the uninterrupted workload (probe)
  uint64_t gc_rounds_probe = 0;  // GC rounds the uninterrupted workload ran
  uint64_t crash_points = 0;  // points that actually fired
  uint64_t gc_window_points = 0;  // fired points inside GC fence windows
  uint64_t clean_crashes = 0;
  uint64_t torn_crashes = 0;
  uint64_t reopen_failures = 0;
  uint64_t recover_failures = 0;
  // Oracle totals across all points.
  uint64_t keys_checked = 0;
  uint64_t lost = 0;
  uint64_t stale = 0;
  uint64_t garbage = 0;
  // Order-sensitive fold over every (crash point, oracle observation): equal
  // between two runs iff the same points fired with the same verdicts.
  uint64_t digest = 0;
  std::vector<std::string> diagnostics;
  bool ok() const {
    return index_recoverable && lost == 0 && stale == 0 && garbage == 0 &&
           reopen_failures == 0 && recover_failures == 0;
  }
};

// Deterministic schedule enumeration (exposed for tests). `torn_allowed`
// folds in the index's tolerates_torn_crash capability; `gc_windows` (from
// the probe run) feeds the gc-window schedule.
std::vector<CrashPoint> BuildSchedule(const MatrixConfig& config, uint64_t total_fences,
                                      bool torn_allowed,
                                      const std::vector<GcWindow>& gc_windows = {});

// Probe + full sweep. Each crash point runs in its own fresh Runtime.
MatrixResult RunCrashMatrix(const MatrixConfig& config);

}  // namespace cclbt::crashtest

#endif  // SRC_CRASHTEST_CRASH_MATRIX_H_
