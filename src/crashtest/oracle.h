// Durability oracle for crash injection (DESIGN.md §9).
//
// The oracle shadows a single-worker workload: before each index operation
// the caller registers it as in-flight (StartUpsert/StartRemove); when the
// call returns — meaning every fence the operation needed has executed, so
// the ADR model guarantees its persistence — the caller promotes it to
// acknowledged (AckLast). An injected crash leaves at most one operation
// in flight.
//
// After crash + Runtime::Reopen + Recover, Verify() checks the recovered
// index against the acked state, per touched key:
//   * lost     — an acked KV is missing, or an acked remove resurrected an
//                earlier value (durably-acked state must never be lost);
//   * stale    — the key reads as some *earlier* acked/written value instead
//                of the latest acked one (a lost update);
//   * garbage  — the key reads as a value never written to it at all (the
//                invariant torn lines must never break: old or new, never
//                garbage);
//   * the in-flight key may legally read as either its pre-crash acked state
//     or the in-flight state (old-or-new).
// A report with all three counters zero means the crash was survived.
#ifndef SRC_CRASHTEST_ORACLE_H_
#define SRC_CRASHTEST_ORACLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/kvindex/kv_index.h"

namespace cclbt::crashtest {

class DurabilityOracle {
 public:
  void StartUpsert(uint64_t key, uint64_t value) {
    in_flight_ = InFlight{true, false, key, value};
    written_[key].insert(value);
  }
  void StartRemove(uint64_t key) { in_flight_ = InFlight{true, true, key, 0}; }
  // The operation registered by the last Start* returned: it is durably
  // acknowledged from here on.
  void AckLast() {
    if (!in_flight_.active) {
      return;
    }
    KeyState& state = acked_[in_flight_.key];
    state.present = !in_flight_.remove;
    state.value = in_flight_.value;
    in_flight_.active = false;
  }

  struct Report {
    uint64_t keys_checked = 0;
    uint64_t lost = 0;
    uint64_t stale = 0;
    uint64_t garbage = 0;
    // Order-insensitive fold of (key, found, value) over every checked key;
    // two runs of the same workload+crash point must produce the same value
    // (the crash-matrix determinism check folds these).
    uint64_t observation_digest = 0;
    // Human-readable description of the first few failures.
    std::vector<std::string> diagnostics;
    bool ok() const { return lost == 0 && stale == 0 && garbage == 0; }
  };

  // Looks up every touched key in `index` (the caller must hold a live
  // pmsim::ThreadContext) and classifies each observation.
  Report Verify(kvindex::KvIndex& index, int max_diagnostics = 8) const;

 private:
  struct KeyState {
    bool present = false;
    uint64_t value = 0;
  };
  struct InFlight {
    bool active = false;
    bool remove = false;
    uint64_t key = 0;
    uint64_t value = 0;
  };

  std::unordered_map<uint64_t, KeyState> acked_;
  // Every value ever written per key, acked or not: distinguishes stale
  // reads (lost updates) from outright garbage.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> written_;
  InFlight in_flight_;
};

}  // namespace cclbt::crashtest

#endif  // SRC_CRASHTEST_ORACLE_H_
