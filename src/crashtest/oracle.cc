#include "src/crashtest/oracle.h"

#include <cstdio>

#include "src/common/rng.h"

namespace cclbt::crashtest {

namespace {

// Commutative fold so the digest is independent of map iteration order.
uint64_t ObservationHash(uint64_t key, bool found, uint64_t value) {
  uint64_t h = Mix64(key ^ 0x0b5e7a110e5ULL);
  h = Mix64(h ^ (found ? value : 0xdeadULL));
  return h;
}

void AddDiagnostic(DurabilityOracle::Report& report, int max_diagnostics, const char* kind,
                   uint64_t key, bool found, uint64_t got, bool want_present, uint64_t want) {
  if (static_cast<int>(report.diagnostics.size()) >= max_diagnostics) {
    return;
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: key=%llu observed=%s(0x%llx) acked=%s(0x%llx)", kind,
                static_cast<unsigned long long>(key), found ? "present" : "absent",
                static_cast<unsigned long long>(found ? got : 0),
                want_present ? "present" : "absent", static_cast<unsigned long long>(want));
  report.diagnostics.emplace_back(buf);
}

}  // namespace

DurabilityOracle::Report DurabilityOracle::Verify(kvindex::KvIndex& index,
                                                  int max_diagnostics) const {
  Report report;
  // Touched keys = keys with a write history, plus keys only ever removed.
  std::unordered_set<uint64_t> touched;
  for (const auto& [key, values] : written_) {
    (void)values;
    touched.insert(key);
  }
  for (const auto& [key, state] : acked_) {
    (void)state;
    touched.insert(key);
  }
  if (in_flight_.active) {
    touched.insert(in_flight_.key);
  }

  for (uint64_t key : touched) {
    report.keys_checked++;
    uint64_t got = 0;
    bool found = index.Lookup(key, &got);
    report.observation_digest += ObservationHash(key, found, got);

    auto acked_it = acked_.find(key);
    bool want_present = acked_it != acked_.end() && acked_it->second.present;
    uint64_t want = want_present ? acked_it->second.value : 0;
    bool is_in_flight = in_flight_.active && in_flight_.key == key;

    if (found) {
      if (want_present && got == want) {
        continue;  // exactly the acked state
      }
      if (is_in_flight && !in_flight_.remove && got == in_flight_.value) {
        continue;  // the in-flight upsert applied (new state) — legal
      }
      auto written_it = written_.find(key);
      bool ever_written = written_it != written_.end() && written_it->second.count(got) != 0;
      if (ever_written) {
        // A real value for this key, but not the latest acked one: either a
        // lost update (acked state rolled back) or an acked remove that
        // resurrected an earlier value.
        if (want_present) {
          report.stale++;
          AddDiagnostic(report, max_diagnostics, "stale", key, found, got, want_present, want);
        } else {
          report.lost++;
          AddDiagnostic(report, max_diagnostics, "resurrected", key, found, got, want_present,
                        want);
        }
      } else {
        report.garbage++;
        AddDiagnostic(report, max_diagnostics, "garbage", key, found, got, want_present, want);
      }
      continue;
    }

    // Key absent from the recovered index.
    if (!want_present) {
      continue;  // acked-absent (or never acked) — consistent
    }
    if (is_in_flight && in_flight_.remove) {
      continue;  // the in-flight remove applied (new state) — legal
    }
    report.lost++;
    AddDiagnostic(report, max_diagnostics, "lost", key, found, got, want_present, want);
  }
  return report;
}

}  // namespace cclbt::crashtest
