#include "src/common/keyspace.h"

#include <algorithm>
#include <unordered_set>

namespace cclbt {

KeyStream::KeyStream(KeyDistribution dist, uint64_t space, double theta, uint64_t seed)
    : dist_(dist), space_(space), zipf_(space == 0 ? 1 : space, theta, seed) {}

uint64_t KeyStream::Key(uint64_t i) {
  switch (dist_) {
    case KeyDistribution::kSequential:
      return i + 1;  // Avoid key 0, which some indexes reserve as a sentinel.
    case KeyDistribution::kUniform:
      // Bijective scramble of the dense rank: no collisions, random layout.
      return Mix64(i % space_) | 1ULL;
    case KeyDistribution::kZipfian:
      return Mix64(zipf_.NextRank()) | 1ULL;
  }
  return 0;
}

namespace {

std::vector<uint64_t> Dedup(std::vector<uint64_t> keys) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size() * 2);
  std::vector<uint64_t> out;
  out.reserve(keys.size());
  for (uint64_t k : keys) {
    if (seen.insert(k).second) {
      out.push_back(k);
    }
  }
  return out;
}

}  // namespace

std::vector<uint64_t> BuildSosdLikeDataset(SosdDataset which, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  switch (which) {
    case SosdDataset::kAmzn: {
      // Popularity-clustered ids: runs of adjacent ids (books by the same
      // publisher block) separated by Zipf-sized gaps.
      ZipfianGenerator gap(1 << 20, 0.8, seed);
      uint64_t cur = 1;
      while (keys.size() < n) {
        uint64_t run = 1 + rng.NextBounded(16);
        for (uint64_t i = 0; i < run && keys.size() < n; i++) {
          keys.push_back(cur++);
        }
        cur += 16 + gap.NextRank();
      }
      break;
    }
    case SosdDataset::kOsm: {
      // Hilbert-ish cell ids: near-uniform 64-bit values with short spatial
      // runs (cells along a way share high bits).
      while (keys.size() < n) {
        uint64_t base = rng.Next() & ~0xffULL;
        uint64_t run = 1 + rng.NextBounded(6);
        for (uint64_t i = 0; i < run && keys.size() < n; i++) {
          keys.push_back(base + i * 4 + 1);
        }
      }
      break;
    }
    case SosdDataset::kWiki: {
      // Edit timestamps: monotone with bursts (many edits in the same second
      // get adjacent values).
      uint64_t t = 1'500'000'000ULL;
      while (keys.size() < n) {
        t += 1 + rng.NextBounded(3);
        uint64_t burst = 1 + rng.NextBounded(4);
        for (uint64_t i = 0; i < burst && keys.size() < n; i++) {
          keys.push_back(t * 1000 + i);
        }
      }
      break;
    }
    case SosdDataset::kFacebook: {
      // Randomly sampled user ids from a sparse space: effectively uniform.
      for (size_t i = 0; i < n; i++) {
        keys.push_back(rng.Next() | 1ULL);
      }
      break;
    }
  }
  keys = Dedup(std::move(keys));
  while (keys.size() < n) {
    keys.push_back(rng.Next() | 1ULL);  // Top up after dedup (rare).
  }
  keys.resize(n);
  // Insertion order is random for all four datasets (SOSD inserts shuffled).
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  return keys;
}

const char* SosdDatasetName(SosdDataset which) {
  switch (which) {
    case SosdDataset::kAmzn:
      return "amzn";
    case SosdDataset::kOsm:
      return "osm";
    case SosdDataset::kWiki:
      return "wiki";
    case SosdDataset::kFacebook:
      return "facebook";
  }
  return "?";
}

}  // namespace cclbt
