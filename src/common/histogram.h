// Log-bucketed latency histogram with percentile queries, used for the
// paper's Figure 12 latency-distribution analysis. Buckets grow
// geometrically so the histogram covers nanoseconds to seconds with bounded
// relative error (~3%) and O(1) recording.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace cclbt {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t value_ns);

  // Merge another histogram (e.g. per-thread histograms at the end of a run).
  void Merge(const LatencyHistogram& other);

  // Value at percentile p in [0, 100]. Returns the upper bound of the bucket
  // containing the requested rank; 0 for an empty histogram.
  uint64_t Percentile(double p) const;

  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return count_ == 0 ? 0 : max_; }
  uint64_t Count() const { return count_; }
  double Mean() const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace cclbt

#endif  // SRC_COMMON_HISTOGRAM_H_
