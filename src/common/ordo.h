// ORDO-style timestamping (Kashyap et al., EuroSys'18), as used by the paper
// (§3.3) to order log entries across sockets whose hardware clocks have a
// constant skew. A timestamp read on socket A is only comparable with one
// from socket B after widening by the measured maximum inter-socket offset
// (the "ORDO boundary").
//
// On real hardware the clock is rdtsc; here we read a monotonic clock and add
// a configurable per-socket skew so tests can exercise the comparison logic
// the way a multi-socket machine would.
#ifndef SRC_COMMON_ORDO_H_
#define SRC_COMMON_ORDO_H_

#include <atomic>
#include <cstdint>

namespace cclbt {

class OrdoClock {
 public:
  // `boundary_ns` is the maximum cross-socket clock offset. 0 means perfectly
  // synchronized clocks (single socket).
  explicit OrdoClock(uint64_t boundary_ns = 0) : boundary_ns_(boundary_ns) {}

  // Strictly monotonic per process; sockets may observe skewed values.
  uint64_t Now(int socket = 0) const {
    uint64_t t = counter_.fetch_add(1, std::memory_order_relaxed);
    // Model a constant per-socket offset below the ORDO boundary.
    return t + static_cast<uint64_t>(socket) * (boundary_ns_ / 4);
  }

  // ORDO's cmp: returns +1 if a is definitely after b, -1 if definitely
  // before, 0 if within the uncertainty window (caller must treat as
  // concurrent).
  int Compare(uint64_t a, uint64_t b) const {
    if (a > b + boundary_ns_) {
      return 1;
    }
    if (b > a + boundary_ns_) {
      return -1;
    }
    return 0;
  }

  // A timestamp guaranteed to compare as "after" every timestamp issued so
  // far (new_time in ORDO): read the clock and push past the boundary plus
  // the worst-case per-socket skew, so Compare() leaves the uncertainty
  // window.
  uint64_t NowAfterBoundary(int socket = 0) const { return Now(socket) + 2 * boundary_ns_; }

  uint64_t boundary_ns() const { return boundary_ns_; }

 private:
  uint64_t boundary_ns_;
  mutable std::atomic<uint64_t> counter_{1};
};

}  // namespace cclbt

#endif  // SRC_COMMON_ORDO_H_
