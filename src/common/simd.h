// Runtime-dispatched SIMD primitives for the index hot paths (DESIGN.md §12).
//
// This header is the ONLY sanctioned home for SIMD intrinsics outside
// src/pmsim/ (tools/lint_pm_api.py rule R5 enforces this). It provides a
// small set of data-parallel probe primitives used by the leaf/buffer-node
// search paths of CCL-BTree and the FPTree/LBTree baselines, plus the
// branchless separator search of the DRAM inner index:
//
//   FpMatch16        16-byte fingerprint compare against a validity bitmap
//   KeyMatchStride2  u64 key compare over {key,value} pairs (16 B stride)
//   CountLess[Eq]    branchless lower/upper bound over contiguous u64 keys
//   MinKeyStride2    branchless min-key over {key,value} pairs + bitmap
//
// Every primitive has an always-compiled scalar fallback (the only path on
// non-x86 builds) and SSE2/AVX2 variants selected once at startup via
// __builtin_cpu_supports. The CCL_SIMD environment variable overrides
// detection: "off"/"scalar" forces the fallback (CI runs tier-1 this way so
// the scalar path stays exercised), "sse2"/"avx2" cap the level. Tests and
// benches can pin a level in-process with ForceLevel (A/B medians in
// bench_pmsim_hotpath compare forced-scalar against the detected level).
//
// Contract: for identical inputs every variant returns identical results —
// tests/simd_test.cc asserts this property over randomized bitmaps,
// duplicate fingerprints, fence entries and all occupancy levels, so query
// results cannot depend on the host's ISA. None of these primitives touch
// simulated PM accounting; they are pure CPU-side search.
#ifndef SRC_COMMON_SIMD_H_
#define SRC_COMMON_SIMD_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define CCL_SIMD_X86 1
#include <immintrin.h>
#else
#define CCL_SIMD_X86 0
#endif

namespace cclbt::simd {

// True when this build is ThreadSanitizer-instrumented. SIMD loads are plain
// (non-atomic) reads; call sites that probe memory written concurrently
// through std::atomic (DRAM inner nodes, buffer-node slots) take the scalar
// atomic-load path under TSan so the optimistic-read protocol stays visible
// to the race checker instead of hidden behind vector loads.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif
#else
inline constexpr bool kTsanBuild = false;
#endif

enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

inline Level MaxSupportedLevel() {
#if CCL_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) {
    return Level::kSse2;
  }
#endif
  return Level::kScalar;
}

// CCL_SIMD override parsing, exposed for unit tests. Unrecognized values
// fall back to auto-detection (returns -1).
inline int ParseLevelOverride(const char* value) {
  if (value == nullptr) {
    return -1;
  }
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0 ||
      std::strcmp(value, "0") == 0) {
    return static_cast<int>(Level::kScalar);
  }
  if (std::strcmp(value, "sse2") == 0) {
    return static_cast<int>(Level::kSse2);
  }
  if (std::strcmp(value, "avx2") == 0) {
    return static_cast<int>(Level::kAvx2);
  }
  return -1;
}

namespace detail {
// -1 = no in-process override; otherwise the forced Level.
inline std::atomic<int> g_forced_level{-1};

inline Level DetectLevel() {
  Level max = MaxSupportedLevel();
  int override_level = ParseLevelOverride(std::getenv("CCL_SIMD"));
  if (override_level >= 0 && override_level < static_cast<int>(max)) {
    return static_cast<Level>(override_level);
  }
  if (override_level >= 0) {
    return max;  // cannot force above hardware support
  }
  return max;
}
}  // namespace detail

inline Level ActiveLevel() {
  int forced = detail::g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Level>(forced);
  }
  static const Level detected = detail::DetectLevel();
  return detected;
}

// Pins the dispatch level in-process (clamped to hardware support); used by
// tests to exercise every path and by the bench A/B harness. ClearForce
// returns to env/auto detection.
inline void ForceLevel(Level level) {
  Level max = MaxSupportedLevel();
  if (static_cast<int>(level) > static_cast<int>(max)) {
    level = max;
  }
  detail::g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
inline void ClearForce() { detail::g_forced_level.store(-1, std::memory_order_relaxed); }

// One spin-wait hint (x86 PAUSE). Lives here because simd.h is the one file
// allowed to use raw _mm_* intrinsics; spin loops (BufferNode::Lock, the
// inner index's optimistic retry) pause a few times before yielding so an
// uncontended conflict never costs a syscall.
inline void CpuRelax() {
#if CCL_SIMD_X86
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);  // compiler barrier
#endif
}

// --- scalar reference implementations ---------------------------------------
// Always compiled; the property tests compare every SIMD variant against
// these bit-for-bit.

// Bitmask of slots i (bit i set in `valid`) with fps[i] == fp. `fps` must be
// 16 readable bytes; bits >= 16 of `valid` must be zero.
inline uint32_t FpMatch16Scalar(const uint8_t* fps, uint8_t fp, uint32_t valid) {
  uint32_t out = 0;
  for (uint32_t bits = valid; bits != 0; bits &= bits - 1) {
    int slot = __builtin_ctz(bits);
    if (fps[slot] == fp) {
      out |= 1u << slot;
    }
  }
  return out;
}

// Bitmask of slots i (bit i set in `valid`, i < nslots) with base[2*i] ==
// key. Matches {key,value}-pair layouts: PmLeaf::kvs, BufferNode slots.
inline uint32_t KeyMatchStride2Scalar(const uint64_t* base, int nslots, uint64_t key,
                                      uint32_t valid) {
  uint32_t out = 0;
  for (int slot = 0; slot < nslots; slot++) {
    if (((valid >> slot) & 1) && base[2 * slot] == key) {
      out |= 1u << slot;
    }
  }
  return out;
}

// Number of keys[i] < key (i < n): the lower_bound index when keys is
// sorted. Tolerates unsorted input (optimistic readers may race a shift);
// the result is always in [0, n].
inline int CountLessScalar(const uint64_t* keys, int n, uint64_t key) {
  int count = 0;
  for (int i = 0; i < n; i++) {
    count += keys[i] < key ? 1 : 0;
  }
  return count;
}

// Number of keys[i] <= key (i < n): the upper_bound index when sorted.
inline int CountLessEqScalar(const uint64_t* keys, int n, uint64_t key) {
  int count = 0;
  for (int i = 0; i < n; i++) {
    count += keys[i] <= key ? 1 : 0;
  }
  return count;
}

// Minimum of base[2*i] over slots i set in `valid`; ~0ULL when valid == 0.
inline uint64_t MinKeyStride2Scalar(const uint64_t* base, uint32_t valid) {
  uint64_t min_key = ~0ULL;
  for (uint32_t bits = valid; bits != 0; bits &= bits - 1) {
    int slot = __builtin_ctz(bits);
    uint64_t key = base[2 * slot];
    min_key = key < min_key ? key : min_key;
  }
  return min_key;
}

#if CCL_SIMD_X86
// --- SSE2 variants -----------------------------------------------------------
// SSE2 is baseline on x86_64, so these need no target attribute.

inline uint32_t FpMatch16Sse2(const uint8_t* fps, uint8_t fp, uint32_t valid) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(fps));
  __m128i eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(fp)));
  return static_cast<uint32_t>(_mm_movemask_epi8(eq)) & valid;
}

inline uint32_t KeyMatchStride2Sse2(const uint64_t* base, int nslots, uint64_t key,
                                    uint32_t valid) {
  // SSE2 has no 64-bit compare: compare 32-bit halves and require both.
  __m128i target = _mm_set1_epi64x(static_cast<long long>(key));
  uint32_t out = 0;
  int slot = 0;
  for (; slot + 2 <= nslots; slot += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + 2 * slot));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + 2 * slot + 2));
    __m128i keys = _mm_unpacklo_epi64(a, b);  // [key_slot, key_slot+1]
    uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi32(keys, target)));
    out |= ((mask & 0x00FFu) == 0x00FFu ? 1u : 0u) << slot;
    out |= ((mask & 0xFF00u) == 0xFF00u ? 1u : 0u) << (slot + 1);
  }
  if (slot < nslots && base[2 * slot] == key) {
    out |= 1u << slot;
  }
  return out & valid;
}

// --- AVX2 variants -----------------------------------------------------------
// Compiled with a per-function target attribute so the translation unit
// itself needs no -mavx2; never called unless CPUID reports AVX2.

__attribute__((target("avx2"))) inline uint32_t KeyMatchStride2Avx2(const uint64_t* base,
                                                                    int nslots, uint64_t key,
                                                                    uint32_t valid) {
  __m256i target = _mm256_set1_epi64x(static_cast<long long>(key));
  uint32_t out = 0;
  int slot = 0;
  for (; slot + 2 <= nslots; slot += 2) {  // one 32 B load covers two slots
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 2 * slot));
    uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, target))));
    out |= (mask & 1u) << slot;            // lane 0 = key of `slot`
    out |= ((mask >> 2) & 1u) << (slot + 1);  // lane 2 = key of `slot`+1
  }
  if (slot < nslots && base[2 * slot] == key) {
    out |= 1u << slot;
  }
  return out & valid;
}

__attribute__((target("avx2"))) inline int CountLessEqAvx2(const uint64_t* keys, int n,
                                                           uint64_t key) {
  // Unsigned compare via the sign-bias trick: x <=u k  <=>  !((x^S) >s (k^S)).
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  __m256i kb = _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), bias);
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
                                 bias);
    uint32_t gt =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, kb))));
    count += 4 - __builtin_popcount(gt);
  }
  for (; i < n; i++) {
    count += keys[i] <= key ? 1 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) inline int CountLessAvx2(const uint64_t* keys, int n,
                                                         uint64_t key) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  __m256i kb = _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), bias);
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
                                 bias);
    uint32_t lt =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(kb, v))));
    count += __builtin_popcount(lt);
  }
  for (; i < n; i++) {
    count += keys[i] < key ? 1 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) inline uint64_t MinKeyStride2Avx2(const uint64_t* base,
                                                                  int nslots, uint32_t valid) {
  // Per-pair lane masks: index = validity bits of {slot 2p, slot 2p+1};
  // lanes 1/3 (the values) are never taken.
  const __m256i kPairMask[4] = {
      _mm256_set_epi64x(0, 0, 0, 0),
      _mm256_set_epi64x(0, 0, 0, -1),
      _mm256_set_epi64x(0, -1, 0, 0),
      _mm256_set_epi64x(0, -1, 0, -1),
  };
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  __m256i acc = ones;  // unsigned max
  int slot = 0;
  for (int pair = 0; slot + 2 <= nslots; pair++, slot += 2) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 2 * slot));
    __m256i masked = _mm256_blendv_epi8(ones, v, kPairMask[(valid >> slot) & 3]);
    __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(acc, bias), _mm256_xor_si256(masked, bias));
    acc = _mm256_blendv_epi8(acc, masked, gt);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t min_key = lanes[0] < lanes[2] ? lanes[0] : lanes[2];
  // (lanes 1/3 are UINT64_MAX by construction.)
  if (slot < nslots && ((valid >> slot) & 1)) {
    uint64_t key = base[2 * slot];
    min_key = key < min_key ? key : min_key;
  }
  return min_key;
}
#endif  // CCL_SIMD_X86

// --- dispatched entry points --------------------------------------------------

inline uint32_t FpMatch16(const uint8_t* fps, uint8_t fp, uint32_t valid) {
#if CCL_SIMD_X86
  if (ActiveLevel() != Level::kScalar) {
    return FpMatch16Sse2(fps, fp, valid);  // 16 B: SSE2 already saturates
  }
#endif
  return FpMatch16Scalar(fps, fp, valid);
}

inline uint32_t KeyMatchStride2(const uint64_t* base, int nslots, uint64_t key, uint32_t valid) {
#if CCL_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2:
      return KeyMatchStride2Avx2(base, nslots, key, valid);
    case Level::kSse2:
      return KeyMatchStride2Sse2(base, nslots, key, valid);
    case Level::kScalar:
      break;
  }
#endif
  return KeyMatchStride2Scalar(base, nslots, key, valid);
}

inline int CountLess(const uint64_t* keys, int n, uint64_t key) {
#if CCL_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return CountLessAvx2(keys, n, key);
  }
#endif
  return CountLessScalar(keys, n, key);
}

inline int CountLessEq(const uint64_t* keys, int n, uint64_t key) {
#if CCL_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return CountLessEqAvx2(keys, n, key);
  }
#endif
  return CountLessEqScalar(keys, n, key);
}

inline uint64_t MinKeyStride2(const uint64_t* base, int nslots, uint32_t valid) {
#if CCL_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return MinKeyStride2Avx2(base, nslots, valid);
  }
#endif
  (void)nslots;
  return MinKeyStride2Scalar(base, valid);
}

}  // namespace cclbt::simd

#endif  // SRC_COMMON_SIMD_H_
