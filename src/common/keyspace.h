// Key-stream generators for the benchmark harness.
//
// * Uniform / Zipfian streams over a dense logical key space, scrambled so
//   logically-adjacent keys land in unrelated leaves (the paper's uniform and
//   Zipfian micro-benchmarks).
// * SOSD-like synthetic datasets standing in for the four realistic datasets
//   of Figure 19 (amzn / osm / wiki / facebook). The real datasets are large
//   downloads; what matters for insert throughput is the key distribution
//   *shape* (clustering, monotonicity, tail), which these generators imitate.
#ifndef SRC_COMMON_KEYSPACE_H_
#define SRC_COMMON_KEYSPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipfian.h"

namespace cclbt {

enum class KeyDistribution {
  kUniform,     // scrambled dense ranks
  kZipfian,     // scrambled Zipfian ranks
  kSequential,  // monotonically increasing
};

// Produces the i-th key of a deterministic stream. All threads can generate
// disjoint slices without coordination.
class KeyStream {
 public:
  // `space` is the number of distinct keys; Zipfian `theta` ignored otherwise.
  KeyStream(KeyDistribution dist, uint64_t space, double theta = 0.9, uint64_t seed = 7);

  // Key for stream position i (uniform/sequential are stateless; Zipfian uses
  // the internal generator so call sites should consume sequentially).
  uint64_t Key(uint64_t i);

  KeyDistribution distribution() const { return dist_; }
  uint64_t space() const { return space_; }

 private:
  KeyDistribution dist_;
  uint64_t space_;
  ZipfianGenerator zipf_;
};

enum class SosdDataset { kAmzn, kOsm, kWiki, kFacebook };

// Builds an in-memory synthetic key set mimicking the named SOSD dataset:
//   amzn:     book ids — clustered blocks with popularity-skewed gaps
//   osm:      cell ids — near-uniform over 64 bits with spatial runs
//   wiki:     edit timestamps — monotone with bursty duplicates-adjacent keys
//   facebook: user ids — uniform samples from a sparse id space
// Keys are deduplicated and shuffled into insertion order.
std::vector<uint64_t> BuildSosdLikeDataset(SosdDataset which, size_t n, uint64_t seed = 42);

const char* SosdDatasetName(SosdDataset which);

}  // namespace cclbt

#endif  // SRC_COMMON_KEYSPACE_H_
