#include "src/common/zipfian.h"

#include <cmath>

namespace cclbt {

namespace {
// Computing zeta(n, theta) exactly is O(n); for the large n used in benches we
// cap the exact sum and extrapolate with the integral approximation, which is
// the standard YCSB trick (they incrementally maintain zetan; we precompute).
constexpr uint64_t kExactZetaLimit = 1 << 22;
}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  uint64_t exact = n < kExactZetaLimit ? n : kExactZetaLimit;
  double sum = 0.0;
  for (uint64_t i = 0; i < exact; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  if (n > exact) {
    // Integral tail: sum_{i=exact+1..n} i^-theta ~ (n^(1-theta) - exact^(1-theta)) / (1-theta).
    double one_minus = 1.0 - theta;
    sum += (std::pow(static_cast<double>(n), one_minus) -
            std::pow(static_cast<double>(exact), one_minus)) /
           one_minus;
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(Zeta(n, theta)),
      eta_(0.0),
      zeta2theta_(Zeta(2, theta)),
      rng_(seed) {
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::NextRank() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                    std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace cclbt
