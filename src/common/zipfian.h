// YCSB-compatible Zipfian generator (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases"). Produces ranks in [0, n) with
// P(rank=k) proportional to 1/(k+1)^theta, then scrambles the rank so hot
// keys are spread over the key space, as the YCSB ScrambledZipfian does.
#ifndef SRC_COMMON_ZIPFIAN_H_
#define SRC_COMMON_ZIPFIAN_H_

#include <cstdint>

#include "src/common/rng.h"

namespace cclbt {

class ZipfianGenerator {
 public:
  // `theta` is the skew coefficient (the paper uses 0.9 and sweeps 0.5-0.99).
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1);

  // Next rank in [0, n), Zipf-distributed (rank 0 is the hottest).
  uint64_t NextRank();

  // Rank scrambled over [0, n) so that hot items are not adjacent.
  uint64_t NextScrambled() { return Scramble(NextRank()); }

  uint64_t Scramble(uint64_t rank) const { return Mix64(rank ^ 0xc6a4a7935bd1e995ULL) % n_; }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

}  // namespace cclbt

#endif  // SRC_COMMON_ZIPFIAN_H_
