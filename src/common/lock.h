// The repo's lock layer: every mutex, spinlock and seqlock in src/ lives
// behind the wrappers in this file (lint rule R7 enforces it). Two things
// ride on that single chokepoint:
//
//  * Static discipline — Clang Thread Safety Analysis. The wrappers are
//    CAPABILITY-annotated and the macros below (GUARDED_BY, REQUIRES,
//    ACQUIRE, ...) let code name which lock protects which field, turning
//    the locking convention into a -Wthread-safety -Werror build invariant
//    (tools/ci.sh `thread-safety` step; clang-only, the macros expand to
//    nothing under gcc).
//
//  * Runtime discipline — lockcheck (src/pmsim/lockcheck.h, DESIGN.md §16).
//    Every wrapper reports acquire/release/seq-read events through the
//    observer hook below. With no observer installed (the default) each lock
//    operation pays exactly one relaxed atomic load and a never-taken branch
//    to a cold outlined call; the wrappers never call into pmsim and never touch virtual
//    time, so enabling or disabling lockcheck cannot perturb any
//    virtual-time metric (the determinism contract, DESIGN.md §10).
//
// This header depends only on the standard library and src/common/simd.h
// (CpuRelax); pmsim installs the observer, src/common never links it.
#ifndef SRC_COMMON_LOCK_H_
#define SRC_COMMON_LOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "src/common/simd.h"

// --- Clang Thread Safety Analysis macros -------------------------------------
// Abseil-style spellings. Only clang implements the attributes; under gcc the
// macros expand to nothing so annotated code builds warning-free everywhere.
#if defined(__clang__)
#define CCLBT_TSA(x) __attribute__((x))
#else
#define CCLBT_TSA(x)  // not supported by this compiler
#endif

#define CAPABILITY(x) CCLBT_TSA(capability(x))
#define SCOPED_CAPABILITY CCLBT_TSA(scoped_lockable)
#define GUARDED_BY(x) CCLBT_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) CCLBT_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CCLBT_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CCLBT_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) CCLBT_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) CCLBT_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CCLBT_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) CCLBT_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CCLBT_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) CCLBT_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) CCLBT_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) CCLBT_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) CCLBT_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) CCLBT_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CCLBT_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) CCLBT_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS CCLBT_TSA(no_thread_safety_analysis)

// Keeps the (almost always dead) observer-notify paths out of the inlined
// lock fast paths: with no observer installed, a lock op costs one relaxed
// load and a never-taken branch to a cold outlined call.
#if defined(__GNUC__) || defined(__clang__)
#define CCLBT_NOINLINE_COLD __attribute__((noinline, cold))
#else
#define CCLBT_NOINLINE_COLD
#endif

namespace cclbt::sync {

// --- observer hook -----------------------------------------------------------

enum class LockKind : uint8_t {
  kMutex = 0,
  kSharedMutex = 1,
  kSpin = 2,
  kSeqLock = 3,
};

// Receives every lock event in the process while installed. Implemented by
// pmsim's lockcheck; wrappers call it with the lock's address (identity), its
// static name (diagnostics) and what happened. Implementations must not call
// back into any sync:: lock operation from these hooks.
class LockObserver {
 public:
  // `exclusive` is false for shared (reader) holds of a SharedMutex.
  // `trylock` marks a non-blocking acquisition (cannot deadlock, so the
  // lock-order graph ignores it).
  virtual void OnLockAcquire(const void* lock, const char* name, LockKind kind,
                             bool exclusive, bool trylock) = 0;
  virtual void OnLockRelease(const void* lock, const char* name, LockKind kind,
                             bool exclusive) = 0;
  // Optimistic seqlock read sections: Begin fires once an even (unlocked)
  // snapshot is obtained, Retire on the matching validate.
  virtual void OnSeqReadBegin(const void* lock, const char* name) = 0;
  virtual void OnSeqReadRetire(const void* lock, const char* name, bool validated) = 0;

 protected:
  ~LockObserver() = default;
};

namespace internal {
// The process-wide observer slot. Inline so the whole layer stays
// header-only: src/common gains no link dependency on the checker.
inline std::atomic<LockObserver*> g_observer{nullptr};
}  // namespace internal

inline LockObserver* observer() {
  return internal::g_observer.load(std::memory_order_acquire);
}
// Hot-path gate: a relaxed null test only. The wrappers' notify helpers
// re-read the slot through observer() (acquire) before dereferencing, so an
// installer's prior writes are visible to the first notified operation.
inline bool ObserverInstalled() {
  return internal::g_observer.load(std::memory_order_relaxed) != nullptr;
}
// Single-owner install: fails (returns false) if another observer is live.
inline bool InstallObserver(LockObserver* obs) {
  LockObserver* expected = nullptr;
  return internal::g_observer.compare_exchange_strong(expected, obs,
                                                      std::memory_order_acq_rel);
}
// Removes `obs` if it is the installed observer (no-op otherwise).
inline void RemoveObserver(LockObserver* obs) {
  LockObserver* expected = obs;
  internal::g_observer.compare_exchange_strong(expected, nullptr,
                                               std::memory_order_acq_rel);
}

// --- Mutex -------------------------------------------------------------------

// std::mutex with a capability annotation, a diagnostic name and observer
// events. Satisfies BasicLockable/Lockable, so std::unique_lock and
// std::condition_variable_any compose with it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/false);
    }
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/true);
    }
    return true;
  }
  void unlock() RELEASE() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease();
    }
    mu_.unlock();
  }

  const char* name() const { return name_; }

 private:
  CCLBT_NOINLINE_COLD void NotifyAcquire(bool trylock) {
    if (LockObserver* obs = observer()) {
      obs->OnLockAcquire(this, name_, LockKind::kMutex, /*exclusive=*/true,
                         trylock);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyRelease() {
    if (LockObserver* obs = observer()) {
      obs->OnLockRelease(this, name_, LockKind::kMutex, /*exclusive=*/true);
    }
  }

  std::mutex mu_;
  const char* name_ = "mutex";
};

// --- SharedMutex -------------------------------------------------------------

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*exclusive=*/true, /*trylock=*/false);
    }
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*exclusive=*/true, /*trylock=*/true);
    }
    return true;
  }
  void unlock() RELEASE() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease(/*exclusive=*/true);
    }
    mu_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    mu_.lock_shared();
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*exclusive=*/false, /*trylock=*/false);
    }
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) {
      return false;
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*exclusive=*/false, /*trylock=*/true);
    }
    return true;
  }
  void unlock_shared() RELEASE_SHARED() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease(/*exclusive=*/false);
    }
    mu_.unlock_shared();
  }

  const char* name() const { return name_; }

 private:
  CCLBT_NOINLINE_COLD void NotifyAcquire(bool exclusive, bool trylock) {
    if (LockObserver* obs = observer()) {
      obs->OnLockAcquire(this, name_, LockKind::kSharedMutex, exclusive, trylock);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyRelease(bool exclusive) {
    if (LockObserver* obs = observer()) {
      obs->OnLockRelease(this, name_, LockKind::kSharedMutex, exclusive);
    }
  }

  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
};

// --- TtasSpinLock ------------------------------------------------------------

// Test-and-test-and-set spinlock (the per-DIMM XPBuffer lock, the trace ring
// lock). Critical sections are a few dozen nanoseconds and sharding keeps
// real contention low, so the uncontended exchange beats a std::mutex; under
// contention it backs off to yield instead of burning the core.
class CAPABILITY("spinlock") TtasSpinLock {
 public:
  TtasSpinLock() = default;
  explicit TtasSpinLock(const char* name) : name_(name) {}

  TtasSpinLock(const TtasSpinLock&) = delete;
  TtasSpinLock& operator=(const TtasSpinLock&) = delete;

  void lock() ACQUIRE() {
    int spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      do {
        if (++spins > 256) {
          std::this_thread::yield();
          spins = 0;
        }
      } while (locked_.load(std::memory_order_relaxed));
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/false);
    }
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (locked_.load(std::memory_order_relaxed) ||
        locked_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/true);
    }
    return true;
  }
  void unlock() RELEASE() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease();
    }
    locked_.store(false, std::memory_order_release);
  }

  const char* name() const { return name_; }

 private:
  CCLBT_NOINLINE_COLD void NotifyAcquire(bool trylock) {
    if (LockObserver* obs = observer()) {
      obs->OnLockAcquire(this, name_, LockKind::kSpin, /*exclusive=*/true,
                         trylock);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyRelease() {
    if (LockObserver* obs = observer()) {
      obs->OnLockRelease(this, name_, LockKind::kSpin, /*exclusive=*/true);
    }
  }

  std::atomic<bool> locked_{false};
  const char* name_ = "spinlock";
};

// --- SeqLock -----------------------------------------------------------------

// The repo's optimistic version lock (paper §4.4 Optimization 2): an even
// version means unlocked; writers make it odd, readers snapshot an even
// version, read optimistically and revalidate. Two writer flavours share the
// one counter:
//
//  * CAS writers (BufferNode, baseline leaf handles): TryLock/Lock/Unlock —
//    the version word *is* the mutual exclusion.
//  * Externally serialized writers (DramBTree): WriteBegin/WriteEnd bump the
//    version with plain stores; callers hold a separate exclusive lock, the
//    version only fences out optimistic readers.
//
// Readers never hold the capability — ReadBegin/ReadValidate sections are
// reported to the observer as their own event kind, and seqlock-guarded data
// is deliberately NOT annotated GUARDED_BY (optimistic reads would be
// static-analysis violations by construction). Writer-side helpers carry
// REQUIRES(lock) instead; see DESIGN.md §16.
class CAPABILITY("seqlock") SeqLock {
 public:
  SeqLock() = default;
  explicit SeqLock(const char* name) : name_(name) {}

  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  // --- CAS writer side -------------------------------------------------------
  bool TryLock() TRY_ACQUIRE(true) {
    if (!TryLockRaw()) {
      return false;
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/true);
    }
    return true;
  }
  void Lock() ACQUIRE() {
    // Short PAUSE phase first: per-node conflicts are usually a few hundred
    // cycles long, and an immediate yield costs a syscall on every conflict
    // at low thread counts. Benches oversubscribe OS threads, so after the
    // pause budget a preempted lock holder still gets the CPU via yield.
    for (int spins = 0; !TryLockRaw(); spins++) {
      if (spins < kSpinsBeforeYield) {
        simd::CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/false);
    }
  }
  void Unlock() RELEASE() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease();
    }
    version_.fetch_add(1, std::memory_order_release);
  }

  // --- externally serialized writer side ------------------------------------
  // Caller must already hold the structure's exclusive lock; these only make
  // the version odd/even around the mutation so optimistic readers retry.
  void WriteBegin() ACQUIRE() {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    if (ObserverInstalled()) [[unlikely]] {
      NotifyAcquire(/*trylock=*/false);
    }
  }
  void WriteEnd() RELEASE() {
    if (ObserverInstalled()) [[unlikely]] {
      NotifyRelease();
    }
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  // --- reader side -----------------------------------------------------------
  // Spin-waits for an even (unlocked) version. Every snapshot must be retired
  // by exactly one ReadValidate.
  uint64_t ReadBegin() const {
    uint64_t v;
    for (int spins = 0;
         ((v = version_.load(std::memory_order_acquire)) & 1) != 0; spins++) {
      if (spins < kSpinsBeforeYield) {
        simd::CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
    if (ObserverInstalled()) [[unlikely]] {
      NotifyReadBegin();
    }
    return v;
  }
  // Non-waiting variant: may return an odd snapshot, which the caller must
  // discard (it opens no read section; only even snapshots need a validate).
  uint64_t ReadBeginNoWait() const {
    uint64_t v = version_.load(std::memory_order_acquire);
    if ((v & 1) == 0) {
      if (ObserverInstalled()) [[unlikely]] {
        NotifyReadBegin();
      }
    }
    return v;
  }
  bool ReadValidate(uint64_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    bool ok = version_.load(std::memory_order_acquire) == snapshot;
    if (ObserverInstalled()) [[unlikely]] {
      NotifyReadRetire(ok);
    }
    return ok;
  }

  // Raw version word (structure dumps / assertions only).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  const char* name() const { return name_; }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  CCLBT_NOINLINE_COLD void NotifyAcquire(bool trylock) {
    if (LockObserver* obs = observer()) {
      obs->OnLockAcquire(this, name_, LockKind::kSeqLock, /*exclusive=*/true,
                         trylock);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyRelease() {
    if (LockObserver* obs = observer()) {
      obs->OnLockRelease(this, name_, LockKind::kSeqLock, /*exclusive=*/true);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyReadBegin() const {
    if (LockObserver* obs = observer()) {
      obs->OnSeqReadBegin(this, name_);
    }
  }
  CCLBT_NOINLINE_COLD void NotifyReadRetire(bool validated) const {
    if (LockObserver* obs = observer()) {
      obs->OnSeqReadRetire(this, name_, validated);
    }
  }

  bool TryLockRaw() {
    uint64_t v = version_.load(std::memory_order_acquire);
    if ((v & 1) != 0) {
      return false;
    }
    return version_.compare_exchange_weak(v, v + 1, std::memory_order_acquire);
  }

  std::atomic<uint64_t> version_{0};
  const char* name_ = "seqlock";
};

// --- scoped guards -----------------------------------------------------------
// std::lock_guard / std::shared_lock carry no thread-safety annotations in
// libstdc++, so call sites use these SCOPED_CAPABILITY guards instead — the
// analysis then sees the acquire/release pair.

// Exclusive guard for Mutex, SharedMutex or TtasSpinLock.
template <typename M>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& mu_;
};

// Shared (reader) guard for SharedMutex.
template <typename M>
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(M& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~SharedLockGuard() RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  M& mu_;
};

// Non-blocking guard; check owns() before touching guarded state. The
// conditional hold is outside what the static analysis can model, so the
// guard is analysis-opaque — pair it with locks that serialize control flow
// (e.g. "is a GC round already running?") rather than guard annotated data.
template <typename M>
class TryLockGuard {
 public:
  explicit TryLockGuard(M& mu) NO_THREAD_SAFETY_ANALYSIS : mu_(mu),
                                                           owns_(mu.try_lock()) {}
  ~TryLockGuard() NO_THREAD_SAFETY_ANALYSIS {
    if (owns_) {
      mu_.unlock();
    }
  }

  TryLockGuard(const TryLockGuard&) = delete;
  TryLockGuard& operator=(const TryLockGuard&) = delete;

  bool owns() const { return owns_; }

 private:
  M& mu_;
  bool owns_;
};

}  // namespace cclbt::sync

#endif  // SRC_COMMON_LOCK_H_
