#include "src/common/histogram.h"

#include <algorithm>
#include <bit>

namespace cclbt {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(uint64_t value) {
  if (value < (1ULL << kSubBucketBits)) {
    return static_cast<int>(value);  // Exact buckets for small values.
  }
  int log2 = 63 - std::countl_zero(value);
  int shift = log2 - kSubBucketBits;
  uint64_t sub = (value >> shift) - (1ULL << kSubBucketBits);
  int bucket = ((shift + 1) << kSubBucketBits) + static_cast<int>(sub);
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<uint64_t>(bucket);
  }
  int shift = (bucket >> kSubBucketBits) - 1;
  uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBucketBits) - 1));
  return (((1ULL << kSubBucketBits) + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min_;
  }
  auto rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  rank = std::min(rank, count_ - 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i];
    if (seen > rank) {
      return std::min(std::max(BucketUpperBound(i), min_), max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

}  // namespace cclbt
