// YCSB-style workload mixes (Cooper et al., SoCC'10) matching the five
// uniform workloads of the paper's §5.2: insert-only, insert-intensive
// (75% insert / 25% read), read-intensive (25% / 75%), read-only, and
// scan-insert (95% scan / 5% insert).
#ifndef SRC_COMMON_YCSB_H_
#define SRC_COMMON_YCSB_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"

namespace cclbt {

enum class OpType : uint8_t { kInsert, kRead, kUpdate, kDelete, kScan };

struct YcsbMix {
  const char* name;
  int insert_pct;
  int read_pct;
  int scan_pct;
  // update/delete fill the remainder (unused by the paper's five mixes).
};

inline constexpr YcsbMix kYcsbInsertOnly{"insert-only", 100, 0, 0};
inline constexpr YcsbMix kYcsbInsertIntensive{"insert-intensive", 75, 25, 0};
inline constexpr YcsbMix kYcsbReadIntensive{"read-intensive", 25, 75, 0};
inline constexpr YcsbMix kYcsbReadOnly{"read-only", 0, 100, 0};
inline constexpr YcsbMix kYcsbScanInsert{"scan-insert", 5, 0, 95};

inline constexpr YcsbMix kYcsbMixes[] = {kYcsbInsertOnly, kYcsbInsertIntensive,
                                         kYcsbReadIntensive, kYcsbReadOnly, kYcsbScanInsert};

// Draws the next operation type for a mix.
class YcsbOpPicker {
 public:
  YcsbOpPicker(const YcsbMix& mix, uint64_t seed) : mix_(mix), rng_(seed) {}

  OpType Next() {
    auto roll = static_cast<int>(rng_.NextBounded(100));
    if (roll < mix_.insert_pct) {
      return OpType::kInsert;
    }
    if (roll < mix_.insert_pct + mix_.read_pct) {
      return OpType::kRead;
    }
    if (roll < mix_.insert_pct + mix_.read_pct + mix_.scan_pct) {
      return OpType::kScan;
    }
    return OpType::kUpdate;
  }

 private:
  YcsbMix mix_;
  Rng rng_;
};

}  // namespace cclbt

#endif  // SRC_COMMON_YCSB_H_
