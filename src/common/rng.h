// Deterministic pseudo-random number generation used across workload
// generators and tests. We avoid <random> engines in hot paths: benchmark
// key streams must be cheap and bit-for-bit reproducible across platforms.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace cclbt {

// SplitMix64: used for seeding and key scrambling. Passes BigCrush when used
// as a one-shot mixer; period 2^64.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// One-shot 64-bit mixer (Stafford variant 13). Bijective: distinct inputs map
// to distinct outputs, which matters when scrambling dense key ranges into
// "random" keys without collisions.
constexpr uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**-style generator; small state, fast, good statistical quality
// for workload generation (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Unbiased enough for benchmarking (modulo bias is
  // < 2^-32 for bounds below 2^32).
  uint64_t NextBounded(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cclbt

#endif  // SRC_COMMON_RNG_H_
