// 1-byte key fingerprints as used by FPTree and by the paper's leaf-node
// header (§4.1): comparing the fingerprint of a probe key against the 14
// per-slot fingerprints filters non-matching slots with one cacheline read.
#ifndef SRC_COMMON_FINGERPRINT_H_
#define SRC_COMMON_FINGERPRINT_H_

#include <cstdint>

#include "src/common/rng.h"

namespace cclbt {

inline uint8_t Fingerprint8(uint64_t key) {
  // Mix so that low-entropy keys (sequential integers) still spread over the
  // byte; take the top byte of the mixed value.
  return static_cast<uint8_t>(Mix64(key) >> 56);
}

}  // namespace cclbt

#endif  // SRC_COMMON_FINGERPRINT_H_
