#include "src/core/ccl_hash.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"

namespace cclbt::core {

namespace {
uint32_t LineOfSlot(int slot) { return static_cast<uint32_t>((32 + 16 * slot) / 64); }
}  // namespace

CclHashTable::CclHashTable(kvindex::Runtime& runtime, const Options& options)
    : rt_(runtime), options_(options) {
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);

  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kLeafBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  overflow_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  log_arena_ = pmem::LogArena::Create(rt_.pool());
  wals_ = std::make_unique<WalSet>(*log_arena_, options_.max_workers);

  size_t directory_bytes = options_.num_buckets * kLeafBytes;
  buckets_ = static_cast<PmLeaf*>(
      rt_.pool().AllocateRaw(directory_bytes, 0, pmsim::StreamTag::kLeaf));
  assert(buckets_ != nullptr && "PM exhausted for bucket directory");
  std::memset(static_cast<void*>(buckets_), 0, directory_bytes);
  {
    // Persist the zeroed directory header lines lazily: a fresh bucket with
    // bitmap 0 is already its persistent state under Crash() only if flushed.
    // Formatting persist — content-equal to a fresh pool's zeroes by design.
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    for (size_t b = 0; b < options_.num_buckets; b++) {
      pmsim::FlushLine(Bucket(b));
    }
  }
  pmsim::Fence();

  auto* root = static_cast<TableRoot*>(
      rt_.pool().AllocateRaw(sizeof(TableRoot), 0, pmsim::StreamTag::kOther));
  assert(root != nullptr);
  root->magic = kHashMagic;
  root->num_buckets = options_.num_buckets;
  root->directory_offset = rt_.pool().ToOffset(buckets_);
  root->slab_registry_offset = overflow_slab_->registry_offset();
  root->arena_registry_offset = log_arena_->registry_offset();
  pmsim::Persist(root, sizeof(TableRoot));
  rt_.pool().SetAppRoot(kAppRootSlot, rt_.pool().ToOffset(root));

  directory_.resize(options_.num_buckets, nullptr);
  for (size_t b = 0; b < options_.num_buckets; b++) {
    directory_[b] = BufferNode::New(Bucket(b), options_.nbatch);
  }
}

CclHashTable::CclHashTable(kvindex::Runtime& runtime, const Options& options, bool /*recover*/)
    : rt_(runtime), options_(options) {
  uint64_t root_offset = rt_.pool().GetAppRoot(kAppRootSlot);
  assert(root_offset != 0 && "no hash table to recover");
  auto* root = static_cast<TableRoot*>(rt_.pool().ToAddr(root_offset));
  assert(root->magic == kHashMagic);
  options_.num_buckets = root->num_buckets;

  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kLeafBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  overflow_slab_ =
      pmem::SlabAllocator::Open(rt_.pool(), root->slab_registry_offset, slab_options);
  log_arena_ = pmem::LogArena::Open(rt_.pool(), root->arena_registry_offset);
  wals_ = std::make_unique<WalSet>(*log_arena_, options_.max_workers);
  buckets_ = static_cast<PmLeaf*>(rt_.pool().ToAddr(root->directory_offset));
  directory_.resize(options_.num_buckets, nullptr);
  for (size_t b = 0; b < options_.num_buckets; b++) {
    directory_[b] = BufferNode::New(Bucket(b), options_.nbatch);
  }
}

std::unique_ptr<CclHashTable> CclHashTable::Recover(kvindex::Runtime& runtime,
                                                    const Options& options) {
  auto table =
      std::unique_ptr<CclHashTable>(new CclHashTable(runtime, options, /*recover=*/true));
  pmsim::ThreadContext boot_ctx(runtime.device(), 0, 0);
  // Overflow buckets are live iff reachable from some directory bucket.
  std::unordered_set<uint64_t> reachable;
  for (size_t b = 0; b < table->options_.num_buckets; b++) {
    uint64_t next = table->Bucket(b)->next_offset();
    while (next != 0) {
      reachable.insert(next);
      table->overflow_buckets_.fetch_add(1, std::memory_order_relaxed);
      next = static_cast<PmLeaf*>(runtime.pool().ToAddr(next))->next_offset();
    }
  }
  table->overflow_slab_->Recover([&runtime, &reachable](const void* slot) {
    return reachable.contains(runtime.pool().ToOffset(slot));
  });
  table->ReplayLogs();
  return table;
}

CclHashTable::~CclHashTable() {
  for (BufferNode* bn : directory_) {
    BufferNode::Delete(bn);
  }
}

void CclHashTable::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  BufferNode* bn = directory_[BucketIndex(key)];
  bn->Lock();
  if (!options_.buffering) {
    kvindex::KeyValue kv{key, value};
    BatchInsertBucket(bn, &kv, 1, rt_.ordo().Now(ctx->socket()));
    bn->Unlock();
    return;
  }
  BufferSlot* slots = bn->slots();
  int pos = bn->pos();
  int nbatch = bn->nbatch();
  uint32_t epoch = global_epoch_.load(std::memory_order_acquire);

  int current_match = -1;
  int stale_match = -1;
  for (int i = 0; i < nbatch; i++) {
    if (slots[i].key.load(std::memory_order_relaxed) == key) {
      (i < pos ? current_match : stale_match) = i;
    }
  }
  if (current_match >= 0) {
    uint64_t ts = rt_.ordo().Now(ctx->socket());
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged);
    (void)logged;
    slots[current_match].value.store(value, std::memory_order_release);
    bn->SetEpochBit(current_match, epoch);
    bn->Unlock();
    return;
  }
  if (pos < nbatch) {
    uint64_t ts = rt_.ordo().Now(ctx->socket());
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged);
    (void)logged;
    if (stale_match >= 0 && stale_match != pos) {
      slots[stale_match].key.store(slots[pos].key.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
      slots[stale_match].value.store(slots[pos].value.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
    }
    slots[pos].key.store(key, std::memory_order_relaxed);
    slots[pos].value.store(value, std::memory_order_release);
    bn->SetEpochBit(pos, epoch);
    bn->set_pos(pos + 1);
    bn->Unlock();
    return;
  }
  // Trigger write: flush buffered KVs + this one in one bucket batch;
  // write-conservative logging skips the WAL entry (§3.3).
  uint64_t ts = rt_.ordo().Now(ctx->socket());
  if (!options_.write_conservative_logging) {
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged);
    (void)logged;
  }
  kvindex::KeyValue extra{key, value};
  FlushBuffer(bn, &extra, ts);
  bn->Unlock();
}

void CclHashTable::FlushBuffer(BufferNode* bn, const kvindex::KeyValue* extra, uint64_t ts) {
  BufferSlot* slots = bn->slots();
  int pos = bn->pos();
  kvindex::KeyValue batch[8];
  for (int i = 0; i < pos; i++) {
    batch[i] = {slots[i].key.load(std::memory_order_relaxed),
                slots[i].value.load(std::memory_order_relaxed)};
  }
  int n = pos;
  if (extra != nullptr) {
    batch[n++] = *extra;
  }
  BatchInsertBucket(bn, batch, n, ts);
  buffer_flushes_.fetch_add(1, std::memory_order_relaxed);
  bn->set_pos(0);
  if (extra != nullptr) {
    for (int i = 1; i < bn->nbatch(); i++) {
      if (slots[i].key.load(std::memory_order_relaxed) == extra->key) {
        slots[i].key.store(0, std::memory_order_relaxed);
        slots[i].value.store(0, std::memory_order_relaxed);
      }
    }
    slots[0].key.store(extra->key, std::memory_order_relaxed);
    slots[0].value.store(extra->value, std::memory_order_release);
  }
}

void CclHashTable::BatchInsertBucket(BufferNode* bn, kvindex::KeyValue* kvs, int n, uint64_t ts,
                                     bool update_ts) {
  PmLeaf* bucket = bn->leaf();
  for (int i = 0; i < n; i++) {
    const kvindex::KeyValue& kv = kvs[i];
    // Walk the bucket chain looking for the key; remember the first bucket
    // with a free slot for inserts.
    PmLeaf* node = bucket;
    PmLeaf* free_bucket = nullptr;
    int free_slot = -1;
    PmLeaf* found_bucket = nullptr;
    int found_slot = -1;
    PmLeaf* tail = node;
    while (node != nullptr) {
      pmsim::ReadPm(node, 64);
      int slot = node->FindSlot(kv.key);
      if (slot >= 0) {
        found_bucket = node;
        found_slot = slot;
        break;
      }
      if (free_bucket == nullptr) {
        int candidate = node->FreeSlot();
        if (candidate >= 0) {
          free_bucket = node;
          free_slot = candidate;
        }
      }
      tail = node;
      uint64_t next = node->next_offset();
      node = next == 0 ? nullptr : static_cast<PmLeaf*>(rt_.pool().ToAddr(next));
    }
    if (kv.value == kTombstone) {
      if (found_bucket != nullptr) {
        // Hash recovery recomputes routes from key hashes, so (unlike the
        // tree) the minimum key needs no fence: clear the bit outright.
        found_bucket->meta.store(
            MakeMeta(found_bucket->bitmap() & ~(1ULL << found_slot),
                     found_bucket->next_offset()),
            std::memory_order_release);
        if (update_ts) {
          found_bucket->timestamp = ts;
        }
        pmsim::FlushLine(found_bucket);
        pmsim::Fence();
      }
      continue;
    }
    if (found_bucket != nullptr) {
      found_bucket->kvs[found_slot].value = kv.value;
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(found_bucket) +
                       LineOfSlot(found_slot) * 64);
      if (update_ts) {
        found_bucket->timestamp = ts;
        pmsim::FlushLine(found_bucket);
      }
      pmsim::Fence();
      continue;
    }
    if (free_bucket == nullptr) {
      // Chain a fresh overflow bucket (CCEH-stash style).
      pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
      auto* fresh = static_cast<PmLeaf*>(overflow_slab_->Allocate(ctx->socket()));
      assert(fresh != nullptr && "PM exhausted");
      std::memset(static_cast<void*>(fresh), 0, kLeafBytes);
      {
        // Formatting persist of the zeroed overflow bucket before it is
        // linked; clean-line flushes on a fresh slab slot are intentional.
        pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
        pmsim::Persist(fresh, kLeafBytes);
      }
      tail->meta.store(MakeMeta(tail->bitmap(), rt_.pool().ToOffset(fresh)),
                       std::memory_order_release);
      pmsim::FlushLine(tail);
      pmsim::Fence();
      overflow_buckets_.fetch_add(1, std::memory_order_relaxed);
      free_bucket = fresh;
      free_slot = 0;
    }
    free_bucket->kvs[free_slot] = kv;
    free_bucket->fingerprints[free_slot] = Fingerprint8(kv.key);
    pmsim::FlushLine(reinterpret_cast<const std::byte*>(free_bucket) + LineOfSlot(free_slot) * 64);
    pmsim::Fence();
    if (update_ts) {
      free_bucket->timestamp = ts;
    }
    free_bucket->meta.store(
        MakeMeta(free_bucket->bitmap() | (1ULL << free_slot), free_bucket->next_offset()),
        std::memory_order_release);
    pmsim::FlushLine(free_bucket);
    pmsim::Fence();
  }
}

bool CclHashTable::Lookup(uint64_t key, uint64_t* value_out) {
  BufferNode* bn = directory_[BucketIndex(key)];
  for (;;) {
    uint64_t snapshot = bn->ReadBegin();
    if (options_.buffering) {
      BufferSlot* slots = bn->slots();
      for (int i = 0; i < bn->nbatch(); i++) {
        if (slots[i].key.load(std::memory_order_acquire) == key) {
          uint64_t value = slots[i].value.load(std::memory_order_acquire);
          if (!bn->ReadValidate(snapshot)) {
            break;
          }
          if (value == kTombstone) {
            return false;
          }
          *value_out = value;
          return true;
        }
      }
      if (!bn->ReadValidate(snapshot)) {
        continue;
      }
    }
    PmLeaf* node = bn->leaf();
    while (node != nullptr) {
      pmsim::ReadPm(node, kLeafBytes);
      int slot = node->FindSlot(key);
      if (slot >= 0) {
        uint64_t value = node->kvs[slot].value;
        if (!bn->ReadValidate(snapshot)) {
          break;  // retry from the top
        }
        *value_out = value;
        return true;
      }
      uint64_t next = node->next_offset();
      node = next == 0 ? nullptr : static_cast<PmLeaf*>(rt_.pool().ToAddr(next));
    }
    if (bn->ReadValidate(snapshot)) {
      return false;
    }
  }
}

bool CclHashTable::Remove(uint64_t key) {
  Upsert(key, kTombstone);
  return true;
}

void CclHashTable::RunGcOnce() {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  uint32_t old_epoch = global_epoch_.load(std::memory_order_acquire);
  uint32_t new_epoch = old_epoch ^ 1u;
  global_epoch_.store(new_epoch, std::memory_order_release);
  for (BufferNode* bn : directory_) {
    bn->Lock();
    BufferSlot* slots = bn->slots();
    int pos = bn->pos();
    for (int i = 0; i < pos; i++) {
      if (bn->EpochBit(i) == old_epoch) {
        uint64_t ts = rt_.ordo().Now(ctx->socket());
        bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(new_epoch),
                                    slots[i].key.load(std::memory_order_relaxed),
                                    slots[i].value.load(std::memory_order_relaxed), ts);
        assert(logged);
        (void)logged;
        bn->SetEpochBit(i, new_epoch);
      }
    }
    bn->Unlock();
  }
  wals_->ReleaseEpoch(static_cast<int>(old_epoch));
}

void CclHashTable::ReplayLogs() {
  // Collect all valid entries, sort by timestamp, apply where newer than the
  // bucket chain's flush timestamp. Per-bucket timestamps follow the same
  // discipline as tree leaves; routing is exact (hash of the key).
  std::vector<LogEntry> entries;
  WalSet::ScanAll(*log_arena_, [&entries](const LogEntry& entry) { entries.push_back(entry); });
  std::sort(entries.begin(), entries.end(),
            [](const LogEntry& a, const LogEntry& b) { return a.timestamp() < b.timestamp(); });
  for (const LogEntry& entry : entries) {
    BufferNode* bn = directory_[BucketIndex(entry.key)];
    // Conservative filter: the head bucket's timestamp lags flushes that
    // landed only in overflow buckets, so some already-flushed entries are
    // re-applied — harmless, the application below is idempotent.
    if (entry.timestamp() <= bn->leaf()->timestamp) {
      continue;
    }
    kvindex::KeyValue kv{entry.key, entry.value};
    BatchInsertBucket(bn, &kv, 1, entry.timestamp(), /*update_ts=*/false);
  }
  // All chunks are dead after replay. Recovery owns the image; the
  // free-marker writes into pre-crash workers' headers are not lock-protected.
  pmsim::LockCheckExpect reclaim_expect(pmsim::LockCheckClass::kUnlockedWrite);
  log_arena_->ResetVolatile();
  log_arena_->ForEachChunk([this](void* mem) {
    auto* header = reinterpret_cast<LogChunkHeader*>(mem);
    if (header->magic == kLogChunkMagic && header->state == kChunkActive) {
      header->state = kChunkFree;
      pmsim::Persist(&header->state, sizeof(header->state));
    }
    log_arena_->FreeChunk(mem);
  });
  // Reset bucket timestamps (same rationale as tree recovery).
  bool flushed = false;
  for (size_t b = 0; b < options_.num_buckets; b++) {
    if (Bucket(b)->timestamp != 0) {
      Bucket(b)->timestamp = 0;
      pmsim::FlushLine(Bucket(b));
      flushed = true;
    }
  }
  if (flushed) {
    pmsim::Fence();
  }
}

}  // namespace cclbt::core
