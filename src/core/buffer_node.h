// DRAM buffer node (paper §3.2, Figure 7(a)): one per leaf, sitting between
// the last-level inner nodes and the PM leaf. Serves two purposes: merging
// writes so they flush to the leaf's XPLine in one batch, and caching the
// most recent KVs for reads.
//
// The paper compresses {leaf pointer, version lock, epoch bitmap, position}
// into an 8 B header plus N_batch KV slots; we keep the fields addressable
// (slots are atomics so optimistic readers are race-free) and account DRAM
// consumption at the paper's packed size (see CclBTree::Footprint).
#ifndef SRC_CORE_BUFFER_NODE_H_
#define SRC_CORE_BUFFER_NODE_H_

#include <atomic>
#include <cstdint>
#include <new>

#include "src/common/lock.h"
#include "src/core/leaf_node.h"

namespace cclbt::core {

// Tombstone value: a delete is an upsert of value 0 (paper §4.2).
inline constexpr uint64_t kTombstone = 0;

struct BufferSlot {
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> value{0};
};

static_assert(sizeof(BufferSlot) == 16, "SIMD slot probe assumes 16 B {key,value} stride");

class BufferNode {
 public:
  BufferNode(PmLeaf* leaf, int nbatch) : leaf_(leaf), nbatch_(nbatch) {}

  // --- version lock (paper §4.4 Optimization 2) ----------------------------
  // Even version == unlocked. Writers CAS even -> odd; readers snapshot an
  // even version, read optimistically, and revalidate. The PM leaf shares
  // this lock ("the leaf nodes share the version number of their
  // corresponding buffer nodes").
  bool TryLock() TRY_ACQUIRE(version_) { return version_.TryLock(); }
  void Lock() ACQUIRE(version_) { version_.Lock(); }
  void Unlock() RELEASE(version_) { version_.Unlock(); }

  uint64_t ReadBegin() const { return version_.ReadBegin(); }
  bool ReadValidate(uint64_t snapshot) const { return version_.ReadValidate(snapshot); }

  // The underlying capability, for REQUIRES(bn->version_lock()) annotations
  // on helpers that mutate the node/leaf under the writer latch.
  sync::SeqLock& version_lock() const RETURN_CAPABILITY(version_) { return version_; }

  // --- fields ---------------------------------------------------------------
  PmLeaf* leaf() const { return leaf_; }
  int nbatch() const { return nbatch_; }

  // Separator key this node is registered under in the inner index.
  uint64_t sep() const { return sep_; }
  void set_sep(uint64_t sep) { sep_ = sep; }

  // Snapshot of the leaf's pre-crash timestamp, used only while a recovery
  // replay is in progress (see CclBTree::ReplayLogs); 0 otherwise.
  uint64_t recovery_orig_ts() const { return recovery_orig_ts_; }
  void set_recovery_orig_ts(uint64_t ts) { recovery_orig_ts_ = ts; }

  int pos() const { return pos_.load(std::memory_order_acquire); }
  void set_pos(int p) { pos_.store(p, std::memory_order_release); }

  uint32_t epoch_bits() const { return epoch_bits_.load(std::memory_order_acquire); }
  void SetEpochBit(int slot, uint32_t epoch) {
    uint32_t bits = epoch_bits_.load(std::memory_order_relaxed);
    uint32_t updated = (bits & ~(1u << slot)) | (epoch << slot);
    epoch_bits_.store(updated, std::memory_order_release);
  }
  uint32_t EpochBit(int slot) const { return (epoch_bits() >> slot) & 1; }

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  void MarkDead() { dead_.store(true, std::memory_order_release); }

  BufferSlot* slots() { return slots_; }
  const BufferSlot* slots() const { return slots_; }

  // Allocation: slots trail the object (nbatch is fixed per tree).
  static BufferNode* New(PmLeaf* leaf, int nbatch) {
    void* mem =
        ::operator new(sizeof(BufferNode) + sizeof(BufferSlot) * static_cast<size_t>(nbatch));
    auto* node = new (mem) BufferNode(leaf, nbatch);
    for (int i = 0; i < nbatch; i++) {
      new (&node->slots_[i]) BufferSlot();
    }
    return node;
  }
  static void Delete(BufferNode* node) {
    node->~BufferNode();
    ::operator delete(node);
  }

  // DRAM bytes the paper's packed layout would use for this node.
  static uint64_t PackedBytes(int nbatch) { return 8 + 16 * static_cast<uint64_t>(nbatch); }

 private:
  // Shared with the PM leaf; slots_ stay optimistically readable, so they are
  // deliberately not GUARDED_BY (see the SeqLock contract in common/lock.h).
  mutable sync::SeqLock version_{"bn.version"};
  PmLeaf* leaf_;
  int nbatch_;
  uint64_t sep_ = 0;
  uint64_t recovery_orig_ts_ = 0;
  std::atomic<int> pos_{0};
  std::atomic<uint32_t> epoch_bits_{0};
  std::atomic<bool> dead_{false};
  BufferSlot slots_[];  // nbatch entries
};

}  // namespace cclbt::core

#endif  // SRC_CORE_BUFFER_NODE_H_
