#include "src/core/wal.h"

#include <cassert>
#include <cstring>

#include "src/metrics/metrics.h"
#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::core {

namespace {
constexpr size_t kEntriesPerChunk =
    (pmem::kLogChunkBytes - sizeof(LogChunkHeader)) / sizeof(LogEntry);
}  // namespace

uint8_t EntryChecksum(uint64_t key, uint64_t value) {
  uint64_t x = key * 0x9e3779b97f4a7c15ULL + value;
  x ^= x >> 32;
  x ^= x >> 16;
  x ^= x >> 8;
  return static_cast<uint8_t>(x);
}

uint64_t MakeTsWord(uint32_t generation, uint64_t timestamp, uint64_t key, uint64_t value) {
  auto tag = static_cast<uint8_t>(generation) ^ EntryChecksum(key, value);
  return (static_cast<uint64_t>(tag) << 56) | (timestamp & kTsMask);
}

bool EntryValid(const LogEntry& entry, uint32_t generation) {
  auto tag = static_cast<uint8_t>(entry.ts_word >> 56);
  auto expected = static_cast<uint8_t>(generation) ^ EntryChecksum(entry.key, entry.value);
  return tag == expected && entry.timestamp() != 0;
}

// WAL traffic attributes to kWal — unless the append/activate/release runs
// inside a GC round (TraceScope(kGc) active), in which case GC keeps the
// attribution: fig14's cost model charges GC-driven I-log appends and chunk
// recycling to the GC component, not to foreground logging.
static trace::Component WalComponent() {
  return trace::CurrentComponent() == trace::Component::kGc ? trace::Component::kGc
                                                            : trace::Component::kWal;
}

ThreadWal::~ThreadWal() = default;

bool ThreadWal::ActivateChunk(int epoch) {
  trace::TraceScope scope(WalComponent());
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  void* mem = arena_->AllocChunk(ctx->socket());
  if (mem == nullptr) {
    return false;
  }
  auto* base = static_cast<std::byte*>(mem);
  auto* header = reinterpret_cast<LogChunkHeader*>(base);
  header->magic = kLogChunkMagic;
  header->generation++;
  header->state = kChunkActive;
  header->owner_worker = static_cast<uint32_t>(worker_id_);
  header->epoch = static_cast<uint32_t>(epoch);
  pmsim::Persist(header, sizeof(LogChunkHeader));
  chunks_[epoch].push_back(base);
  active_[epoch] = ActiveChunk{base, sizeof(LogChunkHeader), header->generation};
  return true;
}

bool ThreadWal::Append(int epoch, uint64_t key, uint64_t value, uint64_t timestamp) {
  trace::TraceScope scope(WalComponent());
  trace::Emit(trace::EventType::kWalAppend, static_cast<uint64_t>(epoch));
  ActiveChunk& chunk = active_[epoch];
  if (chunk.base == nullptr ||
      chunk.cursor + sizeof(LogEntry) > pmem::kLogChunkBytes) {
    if (!ActivateChunk(epoch)) {
      return false;
    }
  }
  ActiveChunk& active = active_[epoch];
  auto* entry = reinterpret_cast<LogEntry*>(active.base + active.cursor);
  entry->key = key;
  entry->value = value;
  entry->ts_word = MakeTsWord(active.generation, timestamp, key, value);
  {
    // Log appends write fresh bytes at a monotonically advancing cursor, so a
    // clean-line report here is always a content coincidence: a recycled chunk
    // can still hold a byte-identical entry from a prior generation at this
    // offset (e.g. repeated tombstones of one key at equal ordo timestamps).
    pmsim::PmCheckExpect append_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(entry, sizeof(LogEntry));
  }
  active.cursor += sizeof(LogEntry);
  appended_bytes_[epoch] += sizeof(LogEntry);
  return true;
}

uint64_t ThreadWal::ReleaseEpoch(int epoch) {
  trace::TraceScope scope(WalComponent());
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  // The GC context writes the free marker into headers that foreground
  // workers wrote at activation. The epoch protocol synchronizes this (no
  // appends land in the old epoch once every bn latch has cycled after the
  // flip), but lockcheck cannot see epochs — only locks — so the second-party
  // header write would read as an unlocked write.
  pmsim::LockCheckExpect release_expect(pmsim::LockCheckClass::kUnlockedWrite);
  for (std::byte* base : chunks_[epoch]) {
    auto* header = reinterpret_cast<LogChunkHeader*>(base);
    header->state = kChunkFree;
    pmsim::Persist(&header->state, sizeof(header->state));
    arena_->FreeChunk(base);
  }
  chunks_[epoch].clear();
  active_[epoch] = ActiveChunk{};
  uint64_t released = appended_bytes_[epoch];
  appended_bytes_[epoch] = 0;
  return released;
}

WalSet::WalSet(pmem::LogArena& arena, int max_workers) : arena_(&arena) {
  wals_.reserve(static_cast<size_t>(max_workers));
  for (int i = 0; i < max_workers; i++) {
    wals_.push_back(std::make_unique<ThreadWal>(arena, i));
  }
}

bool WalSet::Append(int worker_id, int epoch, uint64_t key, uint64_t value, uint64_t timestamp) {
  assert(worker_id >= 0 && static_cast<size_t>(worker_id) < wals_.size());
  if (!wals_[static_cast<size_t>(worker_id)]->Append(epoch, key, value, timestamp)) {
    return false;
  }
  metrics::Add(metrics::Counter::kWalAppendBytes, sizeof(LogEntry));
  uint64_t live =
      live_bytes_.fetch_add(sizeof(LogEntry), std::memory_order_relaxed) + sizeof(LogEntry);
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  return true;
}

void WalSet::ReleaseEpoch(int epoch) {
  uint64_t released = 0;
  for (auto& wal : wals_) {
    released += wal->ReleaseEpoch(epoch);
  }
  metrics::Add(metrics::Counter::kWalReleaseBytes, released);
  live_bytes_.fetch_sub(released, std::memory_order_relaxed);
}

void WalSet::ScanAll(pmem::LogArena& arena, const std::function<void(const LogEntry&)>& fn) {
  // Recovery reads every worker's chunks with no lock; the pre-crash owners
  // are gone and replay order is fixed by timestamps, not locks. Without the
  // scope these reads would demote still-live lines out of their
  // single-writer exemption and later owner writes would intersect to empty.
  pmsim::LockCheckExpect scan_expect(pmsim::LockCheckClass::kLocksetEmpty);
  arena.ForEachChunk([&fn](void* mem) {
    auto* base = static_cast<std::byte*>(mem);
    const auto* header = reinterpret_cast<const LogChunkHeader*>(base);
    if (header->magic != kLogChunkMagic || header->state != kChunkActive) {
      return;
    }
    pmsim::ReadPm(header, sizeof(LogChunkHeader));
    const auto* entries = reinterpret_cast<const LogEntry*>(base + sizeof(LogChunkHeader));
    size_t consumed = 0;
    for (size_t i = 0; i < kEntriesPerChunk; i++) {
      if (!EntryValid(entries[i], header->generation)) {
        break;  // End of this chunk's valid prefix.
      }
      fn(entries[i]);
      consumed++;
    }
    // Replay reads are sequential; charge one pass over the consumed prefix.
    pmsim::ReadPm(entries, (consumed + 1) * sizeof(LogEntry));
  });
}

}  // namespace cclbt::core
