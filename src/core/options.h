// Tunables of CCL-BTree. Defaults match the paper (§3.2: N_batch = 2,
// §3.4: TH_log = 20%, one GC thread).
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <cstdint>

namespace cclbt::core {

enum class GcMode {
  kNone,           // never reclaim (paper Figure 14 "w/o GC")
  kNaive,          // stop-the-world flush-to-leaves (Figure 14 "naive GC")
  kLocalityAware,  // B-log/I-log epoch flip (the paper's design, §3.4)
};

struct TreeOptions {
  // Number of KV slots per buffer node (paper N_batch).
  int nbatch = 2;
  // GC trigger: run when log bytes exceed th_log_pct% of leaf bytes.
  int th_log_pct = 20;
  GcMode gc_mode = GcMode::kLocalityAware;
  // Ablation switches (paper Figure 13):
  //   buffering=false                        -> "Base"
  //   buffering=true, conservative=false     -> "+BNode" (naive logging)
  //   buffering=true, conservative=true      -> "+WLog"  (full design)
  bool buffering = true;
  bool write_conservative_logging = true;
  // Start the background GC thread (benches may drive GC manually instead).
  bool background_gc = true;
  // Parallelism of one locality-aware GC round (paper §5.1: "we set the
  // default number of GC threads for CCL-BTree to 1"). Each GC worker scans
  // a partition of the buffer nodes and appends to its own I-log.
  int gc_threads = 1;
  // Maximum worker ids (threads) the per-thread WAL array supports. The top
  // `gc_threads` ids are reserved for GC workers.
  int max_workers = 136;
};

}  // namespace cclbt::core

#endif  // SRC_CORE_OPTIONS_H_
