// Tunables of CCL-BTree. Defaults match the paper (§3.2: N_batch = 2,
// §3.4: TH_log = 20%, one GC thread).
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <cstdint>

namespace cclbt::core {

enum class GcMode {
  kNone,           // never reclaim (paper Figure 14 "w/o GC")
  kNaive,          // stop-the-world flush-to-leaves (Figure 14 "naive GC")
  kLocalityAware,  // B-log/I-log epoch flip (the paper's design, §3.4)
};

// How background GC is scheduled (DESIGN.md §10).
enum class GcScheduling {
  // GC is a virtual-time participant: trigger checks run cooperatively at
  // deterministic points in the simulated timeline (every gc_quantum_ops-th
  // upsert, plus explicit GcTick() calls), and the round's PM traffic is
  // charged to a dedicated ThreadContext whose clock starts at the frontier
  // of all live worker clocks. Fully deterministic under the sequential
  // bench driver and the crash matrix.
  kDeterministic,
  // Legacy escape hatch: a free-running OS thread paced by a condition
  // variable. GC work lands at OS-scheduler-dependent points, so
  // virtual-time metrics are NOT reproducible run to run. Kept for
  // real-concurrency stress (the TSan preset exercises it).
  kOsThread,
};

struct TreeOptions {
  // Number of KV slots per buffer node (paper N_batch).
  int nbatch = 2;
  // GC trigger: run when log bytes exceed th_log_pct% of leaf bytes.
  int th_log_pct = 20;
  GcMode gc_mode = GcMode::kLocalityAware;
  // Ablation switches (paper Figure 13):
  //   buffering=false                        -> "Base"
  //   buffering=true, conservative=false     -> "+BNode" (naive logging)
  //   buffering=true, conservative=true      -> "+WLog"  (full design)
  bool buffering = true;
  bool write_conservative_logging = true;
  // Run GC automatically when the trigger fires (benches may drive GC
  // manually instead). Scheduling is controlled by gc_scheduling.
  bool background_gc = true;
  GcScheduling gc_scheduling = GcScheduling::kDeterministic;
  // Deterministic scheduling: check the GC trigger every gc_quantum_ops-th
  // upsert (the cooperative quantum). Smaller values react faster to log
  // growth at the price of more trigger checks on the write path.
  int gc_quantum_ops = 64;
  // Parallelism of one locality-aware GC round (paper §5.1: "we set the
  // default number of GC threads for CCL-BTree to 1"). Each GC worker scans
  // a partition of the buffer nodes and appends to its own I-log.
  int gc_threads = 1;
  // Maximum worker ids (threads) the per-thread WAL array supports. The top
  // `gc_threads` ids are reserved for GC workers.
  int max_workers = 136;
  // Pool app-root slot holding this tree's persistent root record. Multiple
  // trees can coexist in one pool (the sharded service gives each shard its
  // own tree) as long as each uses a distinct slot; slot 1 is conventionally
  // CCL-Hash's (pmem::kNumAppRoots slots total).
  int root_slot = 0;
};

}  // namespace cclbt::core

#endif  // SRC_CORE_OPTIONS_H_
