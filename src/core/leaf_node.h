// Persistent leaf node of CCL-BTree (paper §4.1, Figure 7(b)).
//
// Each leaf is exactly 256 B — one XPLine — so a batch flush of buffered KVs
// touches a single XPLine. Layout:
//
//   [ meta: 8 B ]  14-bit validity bitmap + 48-bit next pointer, packed into
//                  one word so split/merge can commit linkage + visibility
//                  with a single atomic 8 B store (paper §4.2).
//   [ timestamp: 8 B ]  flush timestamp for failure recovery (§3.3).
//   [ fingerprints: 14 x 1 B ]  per-slot key hashes (FPTree-style filter).
//   [ padding: 2 B ]
//   [ kvs: 14 x 16 B ]  unsorted KV slots.
#ifndef SRC_CORE_LEAF_NODE_H_
#define SRC_CORE_LEAF_NODE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/fingerprint.h"
#include "src/common/simd.h"
#include "src/kvindex/kv_index.h"

namespace cclbt::core {

inline constexpr int kLeafSlots = 14;
inline constexpr uint64_t kLeafBytes = 256;

// meta word: bits [0,14) validity bitmap, bits [14,62) next-leaf pool offset
// divided by 256 (leaves are 256 B aligned), bits [62,64) spare.
inline constexpr uint64_t kBitmapMask = (1ULL << kLeafSlots) - 1;

inline uint64_t MetaBitmap(uint64_t meta) { return meta & kBitmapMask; }
inline uint64_t MetaNextOffset(uint64_t meta) { return ((meta >> 14) & ((1ULL << 48) - 1)) << 8; }
inline uint64_t MakeMeta(uint64_t bitmap, uint64_t next_offset) {
  return (bitmap & kBitmapMask) | (((next_offset >> 8) & ((1ULL << 48) - 1)) << 14);
}

struct alignas(kLeafBytes) PmLeaf {
  std::atomic<uint64_t> meta;
  uint64_t timestamp;
  uint8_t fingerprints[kLeafSlots];
  uint8_t padding[2];
  kvindex::KeyValue kvs[kLeafSlots];

  uint64_t bitmap() const { return MetaBitmap(meta.load(std::memory_order_acquire)); }
  uint64_t next_offset() const { return MetaNextOffset(meta.load(std::memory_order_acquire)); }

  bool SlotValid(int slot) const { return (bitmap() >> slot) & 1; }
  int ValidCount() const { return __builtin_popcountll(bitmap()); }

  // Valid slots holding a live value. A valid slot with value 0 is a *fence
  // entry*: a tombstoned key kept in place because it is (or was) the leaf's
  // minimum — removing it would break the min-key == low-bound property that
  // failure recovery relies on for routing WAL entries (see
  // CclBTree::BatchInsertLeaf).
  int LiveCount() const {
    int live = 0;
    for (uint64_t bits = bitmap(); bits != 0; bits &= bits - 1) {
      if (kvs[__builtin_ctzll(bits)].value != 0) {
        live++;
      }
    }
    return live;
  }

  // Slot holding `key`, or -1. Fingerprint-filtered scan of the unsorted
  // slots (the filter plus bitmap live in the header cacheline, §4.3). The
  // fingerprint filter is one 16 B SIMD compare (fingerprints + padding are
  // 16 contiguous bytes); only fingerprint hits touch the KV lines.
  int FindSlot(uint64_t key) const {
    uint32_t bits = static_cast<uint32_t>(bitmap());
    uint8_t fp = Fingerprint8(key);
    for (uint32_t cand = simd::FpMatch16(fingerprints, fp, bits); cand != 0; cand &= cand - 1) {
      int slot = __builtin_ctz(cand);
      if (kvs[slot].key == key) {
        return slot;
      }
    }
    return -1;
  }

  // First invalid slot, or -1 if full.
  int FreeSlot() const {
    uint64_t bits = bitmap();
    if (bits == kBitmapMask) {
      return -1;
    }
    return __builtin_ctzll(~bits & kBitmapMask);
  }

  // Smallest valid key; `found`=false for an empty leaf. Branchless SIMD min
  // over the unsorted slots (scalar fallback iterates set bits only). A key
  // of ~0ULL in a non-empty leaf is reported found — kvindex keys never take
  // that value (they are PM pool offsets / user keys below 2^62).
  uint64_t MinKey(bool* found) const {
    uint32_t bits = static_cast<uint32_t>(bitmap());
    if (bits == 0) {
      *found = false;
      return ~0ULL;
    }
    *found = true;
    return simd::MinKeyStride2(reinterpret_cast<const uint64_t*>(kvs), kLeafSlots, bits);
  }
};

static_assert(sizeof(PmLeaf) == kLeafBytes, "leaf must be exactly one XPLine");
static_assert(sizeof(kvindex::KeyValue) == 16 && offsetof(kvindex::KeyValue, key) == 0,
              "SIMD probes assume {key,value} pairs at 16 B stride");
static_assert(offsetof(PmLeaf, kvs) - offsetof(PmLeaf, fingerprints) >= 16,
              "FpMatch16 reads 16 B starting at fingerprints");

}  // namespace cclbt::core

#endif  // SRC_CORE_LEAF_NODE_H_
