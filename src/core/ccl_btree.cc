#include "src/core/ccl_btree.h"

#include <algorithm>
#include <cstdio>
#include <cassert>
#include <cstring>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/common/simd.h"
#include "src/metrics/metrics.h"
#include "src/pmsim/crash_injector.h"
#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::core {

namespace {

// Leaf cacheline geometry: line 0 holds the header plus slots 0-1; slots 2-5,
// 6-9, 10-13 occupy lines 1-3.
uint32_t LineOfSlot(int slot) {
  return static_cast<uint32_t>((32 + 16 * slot) / 64);
}

int FindSlotWithBitmap(const PmLeaf* leaf, uint64_t bitmap, uint64_t key) {
  uint8_t fp = Fingerprint8(key);
  for (uint32_t cand = simd::FpMatch16(leaf->fingerprints, fp, static_cast<uint32_t>(bitmap));
       cand != 0; cand &= cand - 1) {
    int slot = __builtin_ctz(cand);
    if (leaf->kvs[slot].key == key) {
      return slot;
    }
  }
  return -1;
}

// Bitmask of buffer slots whose key equals `key`. The slots are atomics
// mutated under the node's version lock; the SIMD probe reads them with
// plain vector loads — exactly the optimistic race the version-validation
// protocol accounts for. Under TSan the scalar loop keeps each access a
// relaxed atomic load so the race checker sees the protocol, not the
// vector shortcut.
uint32_t BufferKeyMatch(const BufferSlot* slots, int nbatch, uint64_t key) {
  if constexpr (simd::kTsanBuild) {
    uint32_t out = 0;
    for (int i = 0; i < nbatch; i++) {
      if (slots[i].key.load(std::memory_order_relaxed) == key) {
        out |= 1u << i;
      }
    }
    return out;
  } else {
    return simd::KeyMatchStride2(reinterpret_cast<const uint64_t*>(slots), nbatch, key,
                                 (1u << nbatch) - 1);
  }
}

}  // namespace

CclBTree::CclBTree(kvindex::Runtime& runtime, const TreeOptions& options,
                   kvindex::Lifecycle lifecycle)
    : rt_(runtime), options_(options), lifecycle_(lifecycle) {
  assert(options_.nbatch >= 1 && options_.nbatch <= 6);
  if (lifecycle_ == kvindex::Lifecycle::kAttach) {
    // Binding to the persistent image is deferred to Recover(), which
    // validates the root record instead of asserting on it.
    return;
  }
  pmsim::ThreadContext boot_ctx(rt_.device(), /*socket=*/0, /*worker_id=*/0);

  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kLeafBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  leaf_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  log_arena_ = pmem::LogArena::Create(rt_.pool());
  wals_ = std::make_unique<WalSet>(*log_arena_, options_.max_workers);

  head_leaf_ = AllocLeaf(/*socket=*/0);
  assert(head_leaf_ != nullptr);
  std::memset(static_cast<void*>(head_leaf_), 0, kLeafBytes);
  {
    // Formatting persist: the empty head leaf must be durable even though a
    // fresh pool already holds zeroes (a reused slot would not).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(head_leaf_, kLeafBytes);
  }

  auto* root = static_cast<TreeRoot*>(
      rt_.pool().AllocateRaw(sizeof(TreeRoot), 0, pmsim::StreamTag::kOther));
  assert(root != nullptr);
  root->magic = kTreeMagic;
  root->head_leaf_offset = LeafOffset(head_leaf_);
  root->slab_registry_offset = leaf_slab_->registry_offset();
  root->arena_registry_offset = log_arena_->registry_offset();
  pmsim::Persist(root, sizeof(TreeRoot));
  rt_.pool().SetAppRoot(options_.root_slot, rt_.pool().ToOffset(root));

  BufferNode* head_bn = NewBufferNode(head_leaf_, /*sep=*/0, /*recovery_ts=*/0);
  inner_.Insert(0, head_bn);

  InitGc();
}

bool CclBTree::Recover(kvindex::Runtime& runtime, int recovery_threads) {
  assert(&runtime == &rt_ && "Recover must use the runtime the tree was constructed with");
  (void)runtime;
  if (lifecycle_ != kvindex::Lifecycle::kAttach || recovered_) {
    return false;
  }
  uint64_t root_offset = rt_.pool().GetAppRoot(options_.root_slot);
  if (root_offset == 0) {
    return false;  // the pool was never formatted with a tree
  }
  auto* root = static_cast<TreeRoot*>(rt_.pool().ToAddr(root_offset));
  if (root->magic != kTreeMagic) {
    return false;
  }

  pmsim::ThreadContext boot_ctx(rt_.device(), /*socket=*/0, /*worker_id=*/0);
  uint64_t boot_start = boot_ctx.now_ns();
  pmsim::ReadPm(root, sizeof(TreeRoot));

  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kLeafBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  leaf_slab_ = pmem::SlabAllocator::Open(rt_.pool(), root->slab_registry_offset, slab_options);
  log_arena_ = pmem::LogArena::Open(rt_.pool(), root->arena_registry_offset);
  wals_ = std::make_unique<WalSet>(*log_arena_, options_.max_workers);
  head_leaf_ = LeafAt(root->head_leaf_offset);

  RebuildFromLeafList();
  ReplayLogs(recovery_threads);
  ResetLeafTimestamps();
  // Modeled recovery duration: the serial work on this thread (leaf-list
  // walk, chunk reclaim, timestamp reset) plus the slowest replay worker.
  last_recovery_modeled_ns_.store(
      boot_ctx.now_ns() - boot_start + replay_max_vtime_ns_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  recovered_ = true;
  // GC may only start now: every earlier return leaves the instance without
  // GC state, so a failed recovery destructs without joining anything.
  InitGc();
  return true;
}

CclBTree::~CclBTree() {
  StopBackgroundGc();
  sync::LockGuard<sync::Mutex> guard(all_bns_mu_);
  for (BufferNode* bn : all_bns_) {
    BufferNode::Delete(bn);
  }
}

// --- helpers -----------------------------------------------------------------

PmLeaf* CclBTree::AllocLeaf(int socket) {
  return static_cast<PmLeaf*>(leaf_slab_->Allocate(socket));
}

BufferNode* CclBTree::NewBufferNode(PmLeaf* leaf, uint64_t sep, uint64_t recovery_ts) {
  BufferNode* bn = BufferNode::New(leaf, options_.nbatch);
  bn->set_sep(sep);
  bn->set_recovery_orig_ts(recovery_ts);
  {
    sync::LockGuard<sync::Mutex> guard(all_bns_mu_);
    all_bns_.push_back(bn);
  }
  live_bn_count_.fetch_add(1, std::memory_order_relaxed);
  return bn;
}

uint64_t CclBTree::LeafOffset(const PmLeaf* leaf) const { return rt_.pool().ToOffset(leaf); }

PmLeaf* CclBTree::LeafAt(uint64_t offset) const {
  return static_cast<PmLeaf*>(rt_.pool().ToAddr(offset));
}

void CclBTree::ChargeDram(uint64_t accesses) const {
  pmsim::AdvanceCpu(accesses * rt_.device().config().cost.dram_access_ns);
}

// --- write path ----------------------------------------------------------------

BufferNode* CclBTree::RouteAndLock(uint64_t key) {
  trace::TraceScope scope(trace::Component::kInner);
  for (;;) {
    bool found = false;
    BufferNode* bn = inner_.RouteFloor(key, &found);
    assert(found && "sentinel separator 0 must exist");
    if (!bn->TryLock()) {
      std::this_thread::yield();
      continue;
    }
    // Re-validate under the lock: the node may have died (merge) or split
    // away the range containing `key` between routing and locking.
    if (bn->dead() || inner_.RouteFloor(key) != bn) {
      bn->Unlock();
      continue;
    }
    return bn;
  }
}

void CclBTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0 && "key 0 is reserved for the head sentinel separator");
  if (options_.gc_mode == GcMode::kNaive) {
    sync::SharedLockGuard<sync::SharedMutex> gate(naive_gate_);
    UpsertInternal(key, value);
  } else {
    UpsertInternal(key, value);
  }
  // Cooperative GC quantum, outside the naive gate (NaiveGc takes it
  // exclusively; scheduling from inside the shared section would deadlock).
  if (options_.background_gc && options_.gc_mode != GcMode::kNone) {
    if (options_.gc_scheduling == GcScheduling::kDeterministic) {
      uint64_t n = gc_op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.gc_quantum_ops > 0 &&
          n % static_cast<uint64_t>(options_.gc_quantum_ops) == 0) {
        GcTick();
      }
    } else {
      NotifyGcThreadIfTriggered();
    }
  }
}

void CclBTree::UpsertInternal(uint64_t key, uint64_t value) {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  ChargeDram(8);  // inner-index descent

  if (!options_.buffering) {
    // Ablation "Base": write straight to the PM leaf, FPTree-style. The
    // leaf's bitmap-commit makes the single-KV insert crash-consistent
    // without any WAL.
    BufferNode* bn = RouteAndLock(key);
    kvindex::KeyValue kv{key, value};
    BatchInsertLeaf(bn, &kv, 1, rt_.ordo().Now(ctx->socket()));
    uint64_t sep = bn->sep();
    bool underflow = value == kTombstone && bn->leaf()->LiveCount() < kLeafSlots / 2 && sep != 0;
    bn->Unlock();
    if (underflow) {
      TryMergeLeft(sep);
    }
    return;
  }

  BufferNode* bn = RouteAndLock(key);
  BufferSlot* slots = bn->slots();
  int pos = bn->pos();
  int nbatch = bn->nbatch();
  // The global epoch must be read inside the critical section: the GC flips
  // it and then visits every buffer node under its lock, so any slot tagged
  // with the old epoch here is guaranteed to be seen by the GC scan (§3.4).
  uint32_t epoch = global_epoch_.load(std::memory_order_acquire);

  // One SIMD probe over the {key,value} slots; a key appears at most once in
  // the buffer (see the stale-eviction below), so first-match == only-match.
  uint32_t match = BufferKeyMatch(slots, nbatch, key);
  uint32_t current_bits = match & ((1u << pos) - 1);
  uint32_t stale_bits = match & ~((1u << pos) - 1);
  int current_match = current_bits != 0 ? __builtin_ctz(current_bits) : -1;
  int stale_match = stale_bits != 0 ? __builtin_ctz(stale_bits) : -1;
  ChargeDram(static_cast<uint64_t>(nbatch));

  if (current_match >= 0) {
    // Update of a KV still buffered: overwrite in place. Logged always (it
    // never triggers a flush).
    uint64_t ts = rt_.ordo().Now(ctx->socket());
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged && "log arena exhausted");
    (void)logged;
    slots[current_match].value.store(value, std::memory_order_release);
    bn->SetEpochBit(current_match, epoch);
    bn->Unlock();
    metrics::Add(metrics::Counter::kBufferAbsorbs);
    return;
  }

  if (pos < nbatch) {
    // Non-trigger write: append the WAL entry first, then fill the slot
    // (§3.3 — the log is the recovery source for buffered KVs).
    uint64_t ts = rt_.ordo().Now(ctx->socket());
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged && "log arena exhausted");
    (void)logged;
    if (stale_match >= 0 && stale_match != pos) {
      // Evict the stale cached copy of this key into the slot we are about
      // to consume, so no key ever appears twice in the buffer.
      slots[stale_match].key.store(slots[pos].key.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
      slots[stale_match].value.store(slots[pos].value.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
    }
    slots[pos].key.store(key, std::memory_order_relaxed);
    slots[pos].value.store(value, std::memory_order_release);
    bn->SetEpochBit(pos, epoch);
    bn->set_pos(pos + 1);
    bn->Unlock();
    metrics::Add(metrics::Counter::kBufferAbsorbs);
    return;
  }

  // Trigger write: the buffer is full — flush everything plus this KV in one
  // XPLine batch. Write-conservative logging skips the WAL entry because the
  // KV becomes durable via the leaf flush itself (§3.3).
  uint64_t ts = rt_.ordo().Now(ctx->socket());
  if (!options_.write_conservative_logging) {
    bool logged = wals_->Append(ctx->worker_id(), static_cast<int>(epoch), key, value, ts);
    assert(logged && "log arena exhausted");
    (void)logged;
  }
  kvindex::KeyValue extra{key, value};
  FlushBuffer(bn, &extra, ts);
  uint64_t sep = bn->sep();
  bool underflow = bn->leaf()->LiveCount() < kLeafSlots / 2 && sep != 0;
  bn->Unlock();
  if (underflow) {
    TryMergeLeft(sep);
  }
}

bool CclBTree::Remove(uint64_t key) {
  Upsert(key, kTombstone);
  return true;
}

void CclBTree::FlushBuffer(BufferNode* bn, const kvindex::KeyValue* extra, uint64_t ts) {
  trace::TraceScope scope(trace::Component::kBufferNode);
  BufferSlot* slots = bn->slots();
  int pos = bn->pos();
  kvindex::KeyValue batch[8];
  assert(pos + (extra != nullptr ? 1 : 0) <= 8);
  for (int i = 0; i < pos; i++) {
    batch[i].key = slots[i].key.load(std::memory_order_relaxed);
    batch[i].value = slots[i].value.load(std::memory_order_relaxed);
  }
  int n = pos;
  if (extra != nullptr) {
    batch[n++] = *extra;
  }
  trace::Emit(trace::EventType::kBufferFlush, static_cast<uint64_t>(n));
  metrics::Add(metrics::Counter::kBufferFlushes);
  metrics::Add(metrics::Counter::kBufferFlushEntries, static_cast<uint64_t>(n));
  BatchInsertLeaf(bn, batch, n, ts);
  buffer_flushes_.fetch_add(1, std::memory_order_relaxed);
  // The slots keep serving reads as a cache (§3.2: "even when the buffered
  // KVs are flushed to the leaf nodes, they are still reserved in the buffer
  // nodes until overwritten"). A slot is only a valid cache entry while it
  // mirrors this leaf: a split inside the batch moves upper-range keys to a
  // new leaf, and a later merge could make such out-of-range slots reachable
  // again with stale values — so revalidate every slot against the leaf and
  // blank the ones that no longer mirror it.
  bn->set_pos(0);
  if (extra != nullptr) {
    slots[0].key.store(extra->key, std::memory_order_relaxed);
    slots[0].value.store(extra->value, std::memory_order_release);
  }
  PmLeaf* leaf = bn->leaf();
  for (int i = 0; i < bn->nbatch(); i++) {
    uint64_t cached_key = slots[i].key.load(std::memory_order_relaxed);
    if (cached_key == 0) {
      continue;
    }
    int slot = leaf->FindSlot(cached_key);
    uint64_t leaf_value = slot >= 0 ? leaf->kvs[slot].value : kTombstone;
    uint64_t cached_value = slots[i].value.load(std::memory_order_relaxed);
    if (slot < 0 && cached_value == kTombstone) {
      continue;  // cached tombstone of an absent key still mirrors the leaf
    }
    if (slot < 0 || leaf_value != cached_value) {
      slots[i].key.store(0, std::memory_order_relaxed);
      slots[i].value.store(0, std::memory_order_relaxed);
    }
  }
}

void CclBTree::BatchInsertLeaf(BufferNode* bn, kvindex::KeyValue* kvs, int n, uint64_t ts,
                               bool update_ts) {
  trace::TraceScope scope(trace::Component::kLeaf);
  PmLeaf* leaf = bn->leaf();
  // The writer reads the header (bitmap + fingerprints) before modifying.
  pmsim::ReadPm(leaf, 64);
  uint64_t bitmap = leaf->bitmap();

  // Dry pass: how many fresh slots does this batch need?
  int need = 0;
  for (int i = 0; i < n; i++) {
    if (kvs[i].value == kTombstone) {
      continue;
    }
    if (FindSlotWithBitmap(leaf, bitmap, kvs[i].key) < 0) {
      need++;
    }
  }
  int free_slots = kLeafSlots - __builtin_popcountll(bitmap);
  if (need > free_slots) {
    // Logless split (§4.2), then dispatch the batch across the two halves.
    BufferNode* right_bn = SplitLeaf(bn);  // returned locked
    uint64_t split_key = right_bn->sep();
    kvindex::KeyValue left_kvs[8];
    kvindex::KeyValue right_kvs[8];
    int nl = 0;
    int nr = 0;
    for (int i = 0; i < n; i++) {
      if (kvs[i].key < split_key) {
        left_kvs[nl++] = kvs[i];
      } else {
        right_kvs[nr++] = kvs[i];
      }
    }
    if (nl > 0) {
      BatchInsertLeaf(bn, left_kvs, nl, ts, update_ts);
    }
    if (nr > 0) {
      BatchInsertLeaf(right_bn, right_kvs, nr, ts, update_ts);
    }
    right_bn->Unlock();
    return;
  }

  // Step 1 (paper §4.2): write the entries into the data region, recording
  // the modified cachelines.
  uint32_t dirty_lines = 0;
  bool header_changed = false;
  // Set when a store knowingly rewrites bytes equal to the line's current
  // content (re-deleting a fence entry, re-upserting an unchanged KV): the
  // line may then be byte-identical to its durable image, and the step-2
  // flush — kept unconditional because the flush schedule is part of the
  // published figures — would be reported by pmcheck as a clean-line flush.
  bool identical_rewrite = false;
  for (int i = 0; i < n; i++) {
    const kvindex::KeyValue& kv = kvs[i];
    int slot = FindSlotWithBitmap(leaf, bitmap, kv.key);
    if (kv.value == kTombstone) {
      if (slot >= 0) {
        // Deleting the leaf's minimum key would raise the recovery-time
        // separator (min key) above the runtime separator (split key) and
        // misroute WAL replay. Keep such keys as fence entries: valid slot,
        // value 0, invisible to lookups and scans.
        uint64_t min_key = simd::MinKeyStride2(reinterpret_cast<const uint64_t*>(leaf->kvs),
                                               kLeafSlots, static_cast<uint32_t>(bitmap));
        if (leaf->kvs[slot].key == min_key) {
          identical_rewrite |= leaf->kvs[slot].value == kTombstone;
          leaf->kvs[slot].value = kTombstone;
          dirty_lines |= 1u << LineOfSlot(slot);
        } else {
          bitmap &= ~(1ULL << slot);
          header_changed = true;
        }
      }
      continue;
    }
    if (slot >= 0) {
      identical_rewrite |= leaf->kvs[slot].value == kv.value;
      leaf->kvs[slot].value = kv.value;  // in-place update, 8 B atomic width
      dirty_lines |= 1u << LineOfSlot(slot);
      continue;
    }
    int free = __builtin_ctzll(~bitmap & kBitmapMask);
    identical_rewrite |= leaf->kvs[free].key == kv.key && leaf->kvs[free].value == kv.value;
    leaf->kvs[free] = kv;
    leaf->fingerprints[free] = Fingerprint8(kv.key);
    bitmap |= 1ULL << free;
    dirty_lines |= 1u << LineOfSlot(free);
    header_changed = true;
  }

  // Step 2: persist the modified data cachelines with one fence.
  auto* lines = reinterpret_cast<const std::byte*>(leaf);
  bool flushed_any = false;
  {
    std::optional<pmsim::PmCheckExpect> rewrite_expect;
    if (identical_rewrite) {
      rewrite_expect.emplace(pmsim::PmCheckClass::kRedundantFlush);
    }
    for (uint32_t line = 1; line < 4; line++) {  // header line is flushed in step 3
      if ((dirty_lines >> line) & 1) {
        pmsim::FlushLine(lines + line * 64);
        flushed_any = true;
      }
    }
  }
  if (flushed_any) {
    pmsim::Fence();
  }

  // Step 3: commit — update timestamp then publish the new bitmap with one
  // atomic meta store, persist the header line. Nothing in this batch is
  // visible before the meta line lands (§4.2).
  if (update_ts) {
    leaf->timestamp = ts;
  }
  uint64_t next_offset = leaf->next_offset();
  leaf->meta.store(MakeMeta(bitmap, next_offset), std::memory_order_release);
  pmsim::FlushLine(leaf);
  pmsim::Fence();

  (void)header_changed;
}

BufferNode* CclBTree::SplitLeaf(BufferNode* bn) {
  trace::TraceScope scope(trace::Component::kLeaf);
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  PmLeaf* leaf = bn->leaf();
  uint64_t bitmap = leaf->bitmap();
  int valid = __builtin_popcountll(bitmap);
  assert(valid > 1 && "cannot split a leaf with fewer than two keys");

  // Median split key over the (unsorted) valid entries.
  uint64_t keys[16];
  int n = 0;
  for (uint64_t bits = bitmap; bits != 0; bits &= bits - 1) {
    keys[n++] = leaf->kvs[__builtin_ctzll(bits)].key;
  }
  std::sort(keys, keys + n);
  uint64_t split_key = keys[n / 2];
  ChargeDram(static_cast<uint64_t>(n) * 4);

  // Build the new right leaf: compact copy of entries >= split_key.
  PmLeaf* new_leaf = AllocLeaf(ctx->socket());
  assert(new_leaf != nullptr && "PM exhausted");
  std::memset(static_cast<void*>(new_leaf), 0, kLeafBytes);
  uint64_t new_bitmap = 0;
  uint64_t old_bitmap = bitmap;
  int out = 0;
  for (uint64_t bits = bitmap; bits != 0; bits &= bits - 1) {
    int slot = __builtin_ctzll(bits);
    if (leaf->kvs[slot].key >= split_key) {
      new_leaf->kvs[out] = leaf->kvs[slot];
      new_leaf->fingerprints[out] = leaf->fingerprints[slot];
      new_bitmap |= 1ULL << out;
      old_bitmap &= ~(1ULL << slot);
      out++;
    }
  }
  new_leaf->timestamp = leaf->timestamp;
  new_leaf->meta.store(MakeMeta(new_bitmap, leaf->next_offset()), std::memory_order_release);
  // Persist the entire new leaf with a single fence; it is unreachable until
  // the old leaf's meta word lands, so no log is needed (§4.2). The tail
  // lines of a fresh slab slot are all-zero and content-equal to media, which
  // pmcheck flags as clean-line flushes; the whole-leaf persist is kept
  // regardless so the split's flush count — and every published virtual-time
  // figure — matches the paper's batch-persist description.
  {
    pmsim::PmCheckExpect split_expect(pmsim::PmCheckClass::kRedundantFlush);
    for (int line = 0; line < 4; line++) {
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(new_leaf) + line * 64);
    }
  }
  pmsim::Fence();

  // Atomically shrink the old leaf and link the new one: one 8 B meta store
  // carries both the reduced bitmap and the new next pointer. The timestamp
  // must NOT advance here: the split commit lands before the flush batch is
  // dispatched into the two halves, and a crash in that window would leave a
  // durable timestamp covering WAL entries that never reached a leaf —
  // recovery replay would skip them (found by the crash-injection matrix).
  // Each half's BatchInsertLeaf publishes the flush timestamp atomically
  // with its own data commit instead.
  leaf->meta.store(MakeMeta(old_bitmap, LeafOffset(new_leaf)), std::memory_order_release);
  pmsim::FlushLine(leaf);
  pmsim::Fence();

  // Publish the DRAM side: new buffer node + separator.
  BufferNode* right_bn = NewBufferNode(new_leaf, split_key, bn->recovery_orig_ts());
  right_bn->Lock();  // returned locked; caller dispatches pending KVs
  inner_.Insert(split_key, right_bn);
  splits_.fetch_add(1, std::memory_order_relaxed);
  trace::Emit(trace::EventType::kLeafSplit, split_key);
  return right_bn;
}

void CclBTree::TryMergeLeft(uint64_t sep) {
  trace::TraceScope scope(trace::Component::kLeaf);
  assert(sep != 0);
  for (;;) {
    bool found = false;
    BufferNode* left = inner_.RouteFloor(sep - 1, &found);
    if (!found) {
      return;
    }
    BufferNode* right = nullptr;
    if (!inner_.Get(sep, &right)) {
      return;  // Already merged away.
    }
    if (left == right) {
      return;
    }
    // Lock in key order (left separator < right separator): no deadlock.
    if (!left->TryLock()) {
      std::this_thread::yield();
      continue;
    }
    if (left->dead() || inner_.RouteFloor(sep - 1) != left) {
      left->Unlock();
      continue;
    }
    if (!right->TryLock()) {
      left->Unlock();
      continue;
    }
    if (right->dead()) {
      right->Unlock();
      left->Unlock();
      return;
    }
    // The merge commit below raises the left leaf's timestamp to cover the
    // right leaf's flushed entries. Any *unflushed* left-buffer entry has a
    // smaller timestamp and would be skipped by the recovery replay filter,
    // so drain the left buffer first (its flush timestamp is globally fresh).
    if (left->pos() > 0) {
      pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
      FlushBuffer(left, nullptr, rt_.ordo().Now(ctx->socket()));
    }
    PmLeaf* left_leaf = left->leaf();
    PmLeaf* right_leaf = right->leaf();
    // Conditions (paper §4.2): right still underutilized, physically adjacent
    // (the left-buffer flush above may have split the left leaf, which the
    // adjacency check detects), right's buffer drained, and the union fits.
    int left_valid = left_leaf->ValidCount();
    int right_live = right_leaf->LiveCount();
    if (LeafOffset(right_leaf) != left_leaf->next_offset() || right->pos() != 0 ||
        right_leaf->LiveCount() >= kLeafSlots / 2 || left_valid + right_live > kLeafSlots) {
      right->Unlock();
      left->Unlock();
      return;
    }

    // Move the right leaf's live entries into free slots of the left leaf
    // (fence entries — tombstoned boundary keys — die with the right leaf).
    pmsim::ReadPm(right_leaf, kLeafBytes);
    uint64_t left_bitmap = left_leaf->bitmap();
    uint64_t right_bitmap = right_leaf->bitmap();
    uint32_t dirty_lines = 0;
    for (uint64_t bits = right_bitmap; bits != 0; bits &= bits - 1) {
      int slot = __builtin_ctzll(bits);
      if (right_leaf->kvs[slot].value == kTombstone) {
        continue;
      }
      int free = __builtin_ctzll(~left_bitmap & kBitmapMask);
      left_leaf->kvs[free] = right_leaf->kvs[slot];
      left_leaf->fingerprints[free] = right_leaf->fingerprints[slot];
      left_bitmap |= 1ULL << free;
      dirty_lines |= 1u << LineOfSlot(free);
    }
    bool flushed_any = false;
    {
      // A merge often reunites entries that an earlier split moved out of this
      // very leaf: ctz slot choice puts them back into the slots they came
      // from, so a data line can be byte-identical to its durable image. The
      // merge cannot diff against media, and the flush schedule is part of
      // the published figures — annotate instead of skipping.
      pmsim::PmCheckExpect merge_expect(pmsim::PmCheckClass::kRedundantFlush);
      for (uint32_t line = 1; line < 4; line++) {
        if ((dirty_lines >> line) & 1) {
          pmsim::FlushLine(reinterpret_cast<const std::byte*>(left_leaf) + line * 64);
          flushed_any = true;
        }
      }
    }
    if (flushed_any) {
      pmsim::Fence();
    }
    // Single 8 B commit: validates the moved entries in the left leaf AND
    // detaches the right leaf from the linked list (§4.2).
    left_leaf->timestamp = std::max(left_leaf->timestamp, right_leaf->timestamp);
    left_leaf->meta.store(MakeMeta(left_bitmap, right_leaf->next_offset()),
                          std::memory_order_release);
    pmsim::FlushLine(left_leaf);
    pmsim::Fence();

    inner_.Remove(sep);
    right->MarkDead();
    live_bn_count_.fetch_sub(1, std::memory_order_relaxed);
    leaf_slab_->Free(right_leaf);
    merges_.fetch_add(1, std::memory_order_relaxed);
    trace::Emit(trace::EventType::kLeafMerge, sep);
    right->Unlock();
    left->Unlock();
    return;
  }
}

// --- read path ------------------------------------------------------------------

bool CclBTree::Lookup(uint64_t key, uint64_t* value_out) {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  for (;;) {
    ChargeDram(8);  // inner-index descent
    bool found = false;
    BufferNode* bn = inner_.RouteFloor(key, &found);
    if (!found) {
      return false;
    }
    uint64_t snapshot = bn->ReadBegin();
    if (bn->dead() || inner_.RouteFloor(key) != bn) {
      continue;
    }
    // Start the PM leaf's header line (bitmap + fingerprints) toward the
    // cache now: on a buffer miss the probe below needs it immediately.
    __builtin_prefetch(bn->leaf());
    if (options_.buffering) {
      // Buffer first: slots [0,pos) hold the newest unflushed values, slots
      // [pos,nbatch) mirror flushed leaf state (§3.2/§4.3).
      BufferSlot* slots = bn->slots();
      int nbatch = bn->nbatch();
      ChargeDram(static_cast<uint64_t>(nbatch));
      uint32_t match = BufferKeyMatch(slots, nbatch, key);
      if (match != 0) {
        uint64_t value = slots[__builtin_ctz(match)].value.load(std::memory_order_acquire);
        if (!bn->ReadValidate(snapshot)) {
          continue;  // Retry from routing.
        }
        dram_hits_.fetch_add(1, std::memory_order_relaxed);
        if (value == kTombstone) {
          return false;
        }
        *value_out = value;
        return true;
      }
      if (!bn->ReadValidate(snapshot)) {
        continue;
      }
    }
    // Miss in the buffer: one XPLine read from the PM leaf, filtered by the
    // header's bitmap + fingerprints.
    PmLeaf* leaf = bn->leaf();
    pmsim::ReadPm(leaf, kLeafBytes);
    int slot = leaf->FindSlot(key);
    uint64_t value = slot >= 0 ? leaf->kvs[slot].value : 0;
    if (!bn->ReadValidate(snapshot)) {
      continue;
    }
    if (slot < 0 || value == kTombstone) {
      return false;  // absent, or a fence entry (tombstoned boundary key)
    }
    *value_out = value;
    return true;
  }
}

size_t CclBTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  assert(pmsim::ThreadContext::Current() != nullptr);
  size_t produced = 0;
  uint64_t cursor = start_key;
  std::vector<kvindex::KeyValue> window;
  window.reserve(kLeafSlots + 8);
  for (;;) {
    if (produced >= count) {
      break;
    }
    bool found = false;
    BufferNode* bn = inner_.RouteFloor(cursor, &found);
    if (!found) {
      break;
    }
    uint64_t next_sep = 0;
    BufferNode* next_bn = nullptr;
    bool have_next = inner_.NextEntry(cursor, &next_sep, &next_bn);

    // Optimistically snapshot the buffer node + leaf.
    window.clear();
    uint64_t snapshot = bn->ReadBegin();
    if (bn->dead()) {
      continue;  // Re-route: the separator map has changed.
    }
    PmLeaf leaf_copy;
    std::memcpy(static_cast<void*>(&leaf_copy), static_cast<const void*>(bn->leaf()), kLeafBytes);
    pmsim::ReadPm(bn->leaf(), kLeafBytes);
    int pos = bn->pos();
    int nbatch = bn->nbatch();
    kvindex::KeyValue buffered[8];
    for (int i = 0; i < pos; i++) {
      buffered[i].key = bn->slots()[i].key.load(std::memory_order_acquire);
      buffered[i].value = bn->slots()[i].value.load(std::memory_order_acquire);
    }
    if (!bn->ReadValidate(snapshot)) {
      continue;
    }

    // Merge: leaf entries, overlaid by the newest buffered values (§4.3 —
    // "retain the entries stored in the buffer nodes since [they] always
    // store the latest versions").
    for (uint64_t bits = MetaBitmap(leaf_copy.meta.load(std::memory_order_relaxed)); bits != 0;
         bits &= bits - 1) {
      window.push_back(leaf_copy.kvs[__builtin_ctzll(bits)]);
    }
    for (int i = 0; i < pos; i++) {
      bool replaced = false;
      for (auto& entry : window) {
        if (entry.key == buffered[i].key) {
          entry.value = buffered[i].value;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        window.push_back(buffered[i]);
      }
    }
    std::sort(window.begin(), window.end(),
              [](const kvindex::KeyValue& a, const kvindex::KeyValue& b) { return a.key < b.key; });
    ChargeDram(window.size() * 6 + static_cast<uint64_t>(nbatch));

    for (const auto& entry : window) {
      if (entry.key < cursor || entry.value == kTombstone) {
        continue;
      }
      if (have_next && entry.key >= next_sep) {
        break;  // Belongs to a later window (keys moved by a racing split).
      }
      out[produced++] = entry;
      if (produced >= count) {
        break;
      }
    }
    if (!have_next) {
      break;
    }
    cursor = next_sep;
  }
  return produced;
}

// --- GC ----------------------------------------------------------------------------

bool CclBTree::GcTriggerReached() const {
  uint64_t leaves = leaf_bytes();
  if (leaves == 0) {
    return false;
  }
  uint64_t live = wals_->live_bytes();
  if (live * 100 <= leaves * static_cast<uint64_t>(options_.th_log_pct)) {
    return false;
  }
  // Hysteresis: a GC round cannot shrink the log below the still-buffered
  // entries (its floor). Without re-arming only after the log has grown well
  // past the previous floor, a buffer-heavy tree whose floor sits above
  // TH_log would garbage-collect in a busy loop.
  return live >= 2 * post_gc_live_bytes_.load(std::memory_order_relaxed);
}

void CclBTree::InitGc() {
  if (options_.gc_mode == GcMode::kNone) {
    return;
  }
  if (options_.background_gc && options_.gc_scheduling == GcScheduling::kOsThread) {
    // Legacy escape hatch: a real OS thread, for concurrency stress only.
    gc_thread_ = std::thread([this] { GcThreadBody(); });
    return;
  }
  // Deterministic participant: a tree-owned context that all GC PM traffic
  // is charged to, whether rounds come from the cooperative quantum or from
  // explicit GcTick() callers (benches, crash matrix). Constructed with no
  // thread-local current installed so the context is bound to no OS thread
  // and carries no dangling `previous_` restore target.
  pmsim::ThreadContext* saved = pmsim::ThreadContext::Current();
  pmsim::ThreadContext::SetCurrent(nullptr);
  gc_ctx_ = std::make_unique<pmsim::ThreadContext>(rt_.device(), /*socket=*/0,
                                                   /*worker_id=*/options_.max_workers - 1);
  pmsim::ThreadContext::SetCurrent(saved);
}

void CclBTree::StopBackgroundGc() {
  {
    sync::LockGuard<sync::Mutex> guard(gc_cv_mu_);
    stop_gc_.store(true, std::memory_order_release);
  }
  gc_cv_.notify_all();
  if (gc_thread_.joinable()) {
    gc_thread_.join();
  }
}

void CclBTree::NotifyGcThreadIfTriggered() {
  if (!gc_thread_.joinable() || !GcTriggerReached()) {
    return;
  }
  // The empty critical section pairs with the predicate re-check inside
  // GcThreadBody's wait: either the waiter sees the trigger, or it is parked
  // inside wait() when this notify lands — no lost wakeup either way.
  { sync::LockGuard<sync::Mutex> guard(gc_cv_mu_); }
  gc_cv_.notify_one();
}

void CclBTree::GcThreadBody() {
  pmsim::ThreadContext gc_ctx(rt_.device(), /*socket=*/0,
                              /*worker_id=*/options_.max_workers - 1);
  std::unique_lock<sync::Mutex> lock(gc_cv_mu_);
  while (!stop_gc_.load(std::memory_order_acquire)) {
    gc_cv_.wait(lock, [this] {
      return stop_gc_.load(std::memory_order_acquire) || GcTriggerReached();
    });
    if (stop_gc_.load(std::memory_order_acquire)) {
      break;
    }
    lock.unlock();
    RunGcOnce();
    lock.lock();
  }
}

bool CclBTree::GcTick() {
  if (gc_ctx_ == nullptr || options_.gc_mode == GcMode::kNone || !GcTriggerReached()) {
    return false;
  }
  sync::TryLockGuard<sync::Mutex> tick(gc_tick_mu_);
  if (!tick.owns()) {
    return false;  // another worker is mid-round; it covers this trigger
  }
  if (!GcTriggerReached()) {
    return false;  // the round that just finished already cleared it
  }
  // Fast-forward the GC context to the frontier of every live clock: the
  // round happens "now" in the simulated timeline, after the work that
  // tripped the trigger, not at whatever stale time the last round ended.
  gc_ctx_->ResetClock(std::max(gc_ctx_->now_ns(), rt_.device().MaxContextClockNs()));
  pmsim::ThreadContext* saved = pmsim::ThreadContext::Current();
  // A crash injector may abort the round mid-stream (CrashPointReached):
  // restore the caller's context on every exit path.
  struct Restore {
    pmsim::ThreadContext* saved;
    ~Restore() { pmsim::ThreadContext::SetCurrent(saved); }
  } restore{saved};
  pmsim::ThreadContext::SetCurrent(gc_ctx_.get());
  RunGcOnce();
  if (options_.gc_mode == GcMode::kNaive) {
    // Stop-the-world: every worker resumes only after the barrier ends.
    rt_.device().RaiseContextClocks(gc_ctx_->now_ns());
  }
  return true;
}

std::vector<CclBTree::GcFenceWindow> CclBTree::gc_fence_windows() const {
  sync::LockGuard<sync::Mutex> guard(gc_windows_mu_);
  return gc_fence_windows_;
}

void CclBTree::SampleGauges(std::vector<std::pair<std::string, uint64_t>>* out) const {
  out->emplace_back("gc_rounds", gc_rounds());
  out->emplace_back("log_live_bytes", log_live_bytes());
  out->emplace_back("log_peak_bytes", log_peak_bytes());
  out->emplace_back("leaf_bytes", leaf_bytes());
  out->emplace_back("buffer_flushes", buffer_flushes());
  out->emplace_back("splits", splits());
  out->emplace_back("merges", merges());
  out->emplace_back("dram_hits", dram_hits());
  // Value-store health: allocation growth plus the bytes orphaned by
  // restarts (Runtime::Reopen region leak) — pmctl top/series watch the
  // latter grow across repeated crash-recover cycles.
  out->emplace_back("valuestore_bytes", rt_.values().allocated_bytes());
  out->emplace_back("valuestore_leaked_bytes", rt_.values().leaked_bytes());
}

void CclBTree::RunGcOnce() {
  if (options_.gc_mode == GcMode::kNone) {
    return;
  }
  // With a crash injector installed (crash-matrix runs only), record this
  // round's fence window so the matrix can schedule points that land inside
  // GC's own flush/fence stream.
  pmsim::CrashInjector* injector = rt_.device().crash_injector();
  const uint64_t first_fence = injector != nullptr ? injector->fences_observed() + 1 : 0;
  trace::TraceScope scope(trace::Component::kGc);
  trace::Emit(trace::EventType::kGcBegin, wals_->live_bytes());
  switch (options_.gc_mode) {
    case GcMode::kNone:
      break;
    case GcMode::kNaive:
      NaiveGc();
      break;
    case GcMode::kLocalityAware:
      LocalityAwareGc();
      break;
  }
  trace::Emit(trace::EventType::kGcEnd, wals_->live_bytes());
  if (injector != nullptr) {
    uint64_t last_fence = injector->fences_observed();
    if (last_fence >= first_fence) {
      sync::LockGuard<sync::Mutex> guard(gc_windows_mu_);
      gc_fence_windows_.push_back({first_fence, last_fence});
    }
  }
}

std::vector<BufferNode*> CclBTree::CollectBufferNodes() const {
  std::vector<BufferNode*> bns;
  bns.reserve(static_cast<size_t>(live_bn_count_.load(std::memory_order_relaxed)) + 16);
  inner_.ForEachFrom(0, [&bns](uint64_t /*sep*/, BufferNode* bn) {
    bns.push_back(bn);
    return true;
  });
  return bns;
}

void CclBTree::NaiveGc() {
  // Paper §3.4 "Naive GC": stop foreground buffering/logging with a global
  // lock, flush every buffer node's pending KVs to its (random) leaf, then
  // recycle all log chunks.
  sync::LockGuard<sync::SharedMutex> gate(naive_gate_);
  for (BufferNode* bn : CollectBufferNodes()) {
    bn->Lock();
    if (!bn->dead() && bn->pos() > 0) {
      FlushBuffer(bn, nullptr, rt_.ordo().Now(pmsim::ThreadContext::Current()->socket()));
    }
    bn->Unlock();
  }
  wals_->ReleaseEpoch(0);
  wals_->ReleaseEpoch(1);
  post_gc_live_bytes_.store(wals_->live_bytes(), std::memory_order_relaxed);
  gc_rounds_.fetch_add(1, std::memory_order_relaxed);
  metrics::Add(metrics::Counter::kGcRounds);
}

void CclBTree::LocalityAwareGc() {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  // Flip the global epoch: appends from now on go to the I-log (§3.4).
  uint32_t old_epoch = global_epoch_.load(std::memory_order_acquire);
  uint32_t new_epoch = old_epoch ^ 1u;
  global_epoch_.store(new_epoch, std::memory_order_release);

  // Copy every still-buffered KV tagged with the old epoch into the I-log —
  // sequential appends, never a random leaf write. The copy gets a fresh
  // timestamp, which is safe: the slot holds the newest value for its key
  // and every later update will receive a still-larger timestamp.
  std::vector<BufferNode*> bns = CollectBufferNodes();
  auto scan_partition = [this, &bns, old_epoch, new_epoch](size_t begin, size_t end) {
    // Helper threads don't inherit the caller's scope: re-enter kGc here so
    // their WAL appends attribute as GC-driven I-log traffic.
    trace::TraceScope scope(trace::Component::kGc);
    pmsim::ThreadContext* gc_ctx = pmsim::ThreadContext::Current();
    for (size_t b = begin; b < end; b++) {
      BufferNode* bn = bns[b];
      bn->Lock();
      if (!bn->dead()) {
        BufferSlot* slots = bn->slots();
        int pos = bn->pos();
        for (int i = 0; i < pos; i++) {
          if (bn->EpochBit(i) == old_epoch) {
            uint64_t ts = rt_.ordo().Now(gc_ctx->socket());
            bool logged = wals_->Append(gc_ctx->worker_id(), static_cast<int>(new_epoch),
                                        slots[i].key.load(std::memory_order_relaxed),
                                        slots[i].value.load(std::memory_order_relaxed), ts);
            assert(logged && "log arena exhausted during GC");
            (void)logged;
            bn->SetEpochBit(i, new_epoch);
          }
        }
      }
      bn->Unlock();
    }
  };
  int gc_threads = std::max(1, options_.gc_threads);
  if (gc_threads == 1 || bns.size() < 1024) {
    scan_partition(0, bns.size());
  } else {
    // Each helper gets its own WAL (reserved worker-id range) and I-logs to
    // its local socket.
    std::vector<std::thread> helpers;
    size_t per = (bns.size() + static_cast<size_t>(gc_threads) - 1) /
                 static_cast<size_t>(gc_threads);
    for (int t = 0; t < gc_threads; t++) {
      size_t begin = static_cast<size_t>(t) * per;
      size_t end = std::min(bns.size(), begin + per);
      if (begin >= end) {
        break;
      }
      helpers.emplace_back([this, &scan_partition, begin, end, t] {
        pmsim::ThreadContext helper_ctx(rt_.device(), t % rt_.device().config().num_sockets,
                                        options_.max_workers - 1 - t);
        scan_partition(begin, end);
      });
    }
    for (auto& helper : helpers) {
      helper.join();
    }
  }
  // Every buffered-but-unflushed KV now lives in the I-log (either copied
  // above or logged there by foreground threads after the flip): the old
  // B-logs are dead and all their chunks return to the free list.
  wals_->ReleaseEpoch(static_cast<int>(old_epoch));
  post_gc_live_bytes_.store(wals_->live_bytes(), std::memory_order_relaxed);
  gc_rounds_.fetch_add(1, std::memory_order_relaxed);
  metrics::Add(metrics::Counter::kGcRounds);
}

void CclBTree::FlushAll() {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  for (BufferNode* bn : CollectBufferNodes()) {
    bn->Lock();
    if (!bn->dead() && bn->pos() > 0) {
      FlushBuffer(bn, nullptr, rt_.ordo().Now(ctx->socket()));
    }
    bn->Unlock();
  }
}

// --- recovery ---------------------------------------------------------------------

void CclBTree::RebuildFromLeafList() {
  std::unordered_set<uint64_t> reachable;
  // Head sentinel.
  reachable.insert(LeafOffset(head_leaf_));
  BufferNode* head_bn = NewBufferNode(head_leaf_, 0, head_leaf_->timestamp);
  inner_.Insert(0, head_bn);

  PmLeaf* prev = head_leaf_;
  uint64_t next_offset = head_leaf_->next_offset();
  uint64_t prev_min = 0;
  while (next_offset != 0) {
    PmLeaf* leaf = LeafAt(next_offset);
    pmsim::ReadPm(leaf, kLeafBytes);
    bool has_min = false;
    uint64_t min_key = leaf->MinKey(&has_min);
    if (!has_min) {
      // Empty leaf: unlink and let the slab reclaim it (it stays invisible).
      prev->meta.store(MakeMeta(prev->bitmap(), leaf->next_offset()), std::memory_order_release);
      pmsim::FlushLine(prev);
      pmsim::Fence();
      next_offset = leaf->next_offset();
      continue;
    }
    assert(min_key > prev_min && "leaf list must be ordered");
    prev_min = min_key;
    reachable.insert(next_offset);
    BufferNode* bn = NewBufferNode(leaf, min_key, leaf->timestamp);
    inner_.Insert(min_key, bn);
    prev = leaf;
    next_offset = leaf->next_offset();
  }
  leaf_slab_->Recover([this, &reachable](const void* slot) {
    return reachable.contains(rt_.pool().ToOffset(slot));
  });
}

void CclBTree::ReplayLogs(int threads) {
  assert(threads >= 1);
  // Phase 1: gather the chunks, then scan them (parallel by chunk),
  // bucketing entries by key hash so each key is replayed by one thread in
  // timestamp order.
  std::vector<std::byte*> chunks;
  log_arena_->ForEachChunk([&chunks](void* mem) { chunks.push_back(static_cast<std::byte*>(mem)); });

  auto buckets = std::vector<std::vector<LogEntry>>(static_cast<size_t>(threads));
  sync::Mutex buckets_mu{"tree.replay_buckets"};

  auto record_vtime = [this](const pmsim::ThreadContext& ctx) {
    uint64_t now = ctx.now_ns();
    uint64_t seen = replay_max_vtime_ns_.load(std::memory_order_relaxed);
    while (now > seen &&
           !replay_max_vtime_ns_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  };
  auto scan_worker = [&](int worker) {
    pmsim::ThreadContext ctx(rt_.device(), rt_.SocketForWorker(worker), worker);
    // Lockless reads of the pre-crash workers' chunks; replay ordering comes
    // from timestamps, not locks (same exemption as WalSet::ScanAll).
    pmsim::LockCheckExpect scan_expect(pmsim::LockCheckClass::kLocksetEmpty);
    std::vector<std::vector<LogEntry>> local(static_cast<size_t>(threads));
    for (size_t c = static_cast<size_t>(worker); c < chunks.size();
         c += static_cast<size_t>(threads)) {
      std::byte* base = chunks[c];
      const auto* header = reinterpret_cast<const LogChunkHeader*>(base);
      if (header->magic != kLogChunkMagic || header->state != kChunkActive) {
        continue;
      }
      pmsim::ReadPm(header, sizeof(LogChunkHeader));
      const auto* entries = reinterpret_cast<const LogEntry*>(base + sizeof(LogChunkHeader));
      size_t max_entries = (pmem::kLogChunkBytes - sizeof(LogChunkHeader)) / sizeof(LogEntry);
      size_t consumed = 0;
      for (size_t i = 0; i < max_entries; i++) {
        if (!EntryValid(entries[i], header->generation)) {
          break;
        }
        size_t bucket = Mix64(entries[i].key) % static_cast<uint64_t>(threads);
        local[bucket].push_back(entries[i]);
        consumed++;
      }
      pmsim::ReadPm(entries, (consumed + 1) * sizeof(LogEntry));
    }
    {
      sync::LockGuard<sync::Mutex> guard(buckets_mu);
      for (int b = 0; b < threads; b++) {
        auto& bucket = buckets[static_cast<size_t>(b)];
        bucket.insert(bucket.end(), local[static_cast<size_t>(b)].begin(),
                      local[static_cast<size_t>(b)].end());
      }
    }
    record_vtime(ctx);
  };

  // Phase 2: apply each bucket in timestamp order. Entries are filtered
  // against the leaf's *pre-crash* timestamp snapshot (recovery_orig_ts):
  // an entry newer than the last flush was buffered in DRAM and lost, so it
  // is re-applied straight to the leaf. Replay is idempotent — a crash during
  // recovery leaves the logs in place and the snapshot unchanged (leaf
  // timestamps are only reset after the logs are reclaimed).
  auto apply_worker = [&](int worker) {
    pmsim::ThreadContext ctx(rt_.device(), rt_.SocketForWorker(worker), worker);
    auto& bucket = buckets[static_cast<size_t>(worker)];
    std::sort(bucket.begin(), bucket.end(), [](const LogEntry& a, const LogEntry& b) {
      return a.timestamp() < b.timestamp();
    });
    for (const LogEntry& entry : bucket) {
      BufferNode* bn = RouteAndLock(entry.key);
      if (entry.timestamp() > bn->recovery_orig_ts()) {
        kvindex::KeyValue kv{entry.key, entry.value};
        BatchInsertLeaf(bn, &kv, 1, /*ts=*/0, /*update_ts=*/false);
      }
      bn->Unlock();
    }
    record_vtime(ctx);
  };

  if (threads == 1) {
    scan_worker(0);
    apply_worker(0);
  } else {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; t++) {
      workers.emplace_back(scan_worker, t);
    }
    for (auto& worker : workers) {
      worker.join();
    }
    workers.clear();
    for (int t = 0; t < threads; t++) {
      workers.emplace_back(apply_worker, t);
    }
    for (auto& worker : workers) {
      worker.join();
    }
  }

  // Phase 3: every log chunk is now dead — reclaim them all. The free-marker
  // writes land in headers the pre-crash workers wrote; recovery owns the
  // whole image, which lockcheck cannot express as a lock.
  pmsim::LockCheckExpect reclaim_expect(pmsim::LockCheckClass::kUnlockedWrite);
  log_arena_->ResetVolatile();
  log_arena_->ForEachChunk([this](void* mem) {
    auto* header = reinterpret_cast<LogChunkHeader*>(mem);
    if (header->magic == kLogChunkMagic && header->state == kChunkActive) {
      header->state = kChunkFree;
      pmsim::Persist(&header->state, sizeof(header->state));
    }
    log_arena_->FreeChunk(mem);
  });
  // Clear the replay filter snapshots.
  for (BufferNode* bn : CollectBufferNodes()) {
    bn->set_recovery_orig_ts(0);
  }
}

void CclBTree::ResetLeafTimestamps() {
  PmLeaf* leaf = head_leaf_;
  bool flushed_any = false;
  while (leaf != nullptr) {
    if (leaf->timestamp != 0) {
      leaf->timestamp = 0;
      pmsim::FlushLine(leaf);
      flushed_any = true;
    }
    uint64_t next = leaf->next_offset();
    leaf = next == 0 ? nullptr : LeafAt(next);
  }
  if (flushed_any) {
    pmsim::Fence();
  }
}

// --- introspection ---------------------------------------------------------------

kvindex::MemoryFootprint CclBTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  footprint.dram_bytes =
      inner_.MemoryBytes() +
      live_bn_count_.load(std::memory_order_relaxed) * BufferNode::PackedBytes(options_.nbatch);
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

void CclBTree::DumpKeyState(uint64_t key) const {
  bool found = false;
  BufferNode* bn = inner_.RouteFloor(key, &found);
  if (!found) {
    std::fprintf(stderr, "[dump] no route for key %llu\n", (unsigned long long)key);
    return;
  }
  std::fprintf(stderr, "[dump] key=%llu bn=%p sep=%llu pos=%d dead=%d\n", (unsigned long long)key,
               static_cast<void*>(bn), (unsigned long long)bn->sep(), bn->pos(), bn->dead());
  for (int i = 0; i < bn->nbatch(); i++) {
    std::fprintf(stderr, "[dump]   slot[%d] key=%llu value=%llu epoch=%u\n", i,
                 (unsigned long long)bn->slots()[i].key.load(),
                 (unsigned long long)bn->slots()[i].value.load(), bn->EpochBit(i));
  }
  const PmLeaf* leaf = bn->leaf();
  std::fprintf(stderr, "[dump]   leaf=%llu ts=%llu bitmap=%llx\n",
               (unsigned long long)LeafOffset(leaf), (unsigned long long)leaf->timestamp,
               (unsigned long long)leaf->bitmap());
  for (int slot = 0; slot < kLeafSlots; slot++) {
    if (leaf->SlotValid(slot)) {
      std::fprintf(stderr, "[dump]   leaf_slot[%d] key=%llu value=%llu fp=%u (want_fp=%u)\n", slot,
                   (unsigned long long)leaf->kvs[slot].key,
                   (unsigned long long)leaf->kvs[slot].value, leaf->fingerprints[slot],
                   Fingerprint8(leaf->kvs[slot].key));
    }
  }
}

bool CclBTree::CheckInvariants() const {
  const PmLeaf* leaf = head_leaf_;
  uint64_t prev_max = 0;
  bool first = true;
  while (leaf != nullptr) {
    uint64_t bits = leaf->bitmap();
    uint64_t local_min = ~0ULL;
    uint64_t local_max = 0;
    for (uint64_t walk = bits; walk != 0; walk &= walk - 1) {
      int slot = __builtin_ctzll(walk);
      uint64_t key = leaf->kvs[slot].key;
      if (leaf->fingerprints[slot] != Fingerprint8(key)) {
        return false;
      }
      local_min = std::min(local_min, key);
      local_max = std::max(local_max, key);
    }
    if (bits != 0) {
      if (!first && local_min <= prev_max) {
        return false;  // Inter-leaf ordering violated.
      }
      prev_max = local_max;
      first = false;
    }
    uint64_t next = leaf->next_offset();
    leaf = next == 0 ? nullptr : LeafAt(next);
  }
  return true;
}

}  // namespace cclbt::core
