// Per-thread write-ahead logs (paper §3.3).
//
// Each worker owns a private WAL for scalability; a WAL is a chain of 4 MB
// log chunks drawn from the shared pmem::LogArena (with its global free
// list). A log entry is 24 B: a 16 B KV plus an 8 B timestamp word. Because
// entries are appended sequentially, ~10.7 entries share an XPLine and the
// XPBuffer merges them into one media write — this is the "additional
// XBI-amplification caused by logging" term (24/256) of §3.5.
//
// Epochs: every WAL keeps two logs, selected by the tree's global epoch bit.
// Entries written before a GC flip land in the B-log, entries written during
// GC land in the I-log (§3.4); the GC frees all B-log chunks at the end of a
// round.
//
// Entry validity without zeroing recycled chunks: the chunk header carries a
// generation counter bumped on every (re)activation, and each entry's
// timestamp word embeds an 8-bit tag = generation ^ checksum(kv). Replay
// scans a chunk's entries in order and stops at the first tag mismatch, so
// stale entries from a previous use of the chunk — or an entry torn by a
// crash — are never replayed.
#ifndef SRC_CORE_WAL_H_
#define SRC_CORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/pmem/log_arena.h"
#include "src/pmsim/device.h"

namespace cclbt::core {

inline constexpr uint64_t kLogChunkMagic = 0x10C41B7ULL;
inline constexpr uint64_t kTsMask = (1ULL << 56) - 1;

struct LogEntry {
  uint64_t key;
  uint64_t value;
  uint64_t ts_word;  // [tag:8][timestamp:56]

  uint64_t timestamp() const { return ts_word & kTsMask; }
};
static_assert(sizeof(LogEntry) == 24);

struct LogChunkHeader {
  uint64_t magic;
  uint32_t generation;
  uint32_t state;  // 0 = free, 1 = active
  uint32_t owner_worker;
  uint32_t epoch;
  uint8_t padding[40];
};
static_assert(sizeof(LogChunkHeader) == 64);

inline constexpr uint32_t kChunkFree = 0;
inline constexpr uint32_t kChunkActive = 1;

// 8-bit content checksum folded into the tag so a torn entry (crash between
// the KV lines and the timestamp line persisting) fails validation.
uint8_t EntryChecksum(uint64_t key, uint64_t value);
uint64_t MakeTsWord(uint32_t generation, uint64_t timestamp, uint64_t key, uint64_t value);
bool EntryValid(const LogEntry& entry, uint32_t generation);

// One worker's WAL. Not thread-safe: exactly one thread appends (that is the
// point of per-thread logs).
class ThreadWal {
 public:
  ThreadWal(pmem::LogArena& arena, int worker_id) : arena_(&arena), worker_id_(worker_id) {
    // Pre-size the chunk lists so a chunk activation on the hot append path
    // never reallocates: steady-state upserts are asserted allocation-free
    // by bench_pmsim_hotpath. 64 chunks = 256 MB of log per epoch per
    // worker, far beyond any workload here; past that push_back grows as
    // usual.
    chunks_[0].reserve(kChunkListReserve);
    chunks_[1].reserve(kChunkListReserve);
  }
  ~ThreadWal();

  ThreadWal(const ThreadWal&) = delete;
  ThreadWal& operator=(const ThreadWal&) = delete;

  // Appends and persists one entry to the `epoch` log. Returns false when
  // the arena is exhausted.
  bool Append(int epoch, uint64_t key, uint64_t value, uint64_t timestamp);

  // Releases every chunk of the `epoch` log back to the arena (persisting the
  // free markers). Returns the number of payload bytes released.
  uint64_t ReleaseEpoch(int epoch);

  uint64_t appended_bytes(int epoch) const { return appended_bytes_[epoch]; }

 private:
  static constexpr size_t kChunkListReserve = 64;

  struct ActiveChunk {
    std::byte* base = nullptr;
    size_t cursor = 0;  // next append offset (past the header)
    uint32_t generation = 0;
  };

  bool ActivateChunk(int epoch);

  pmem::LogArena* arena_;
  int worker_id_;
  std::vector<std::byte*> chunks_[2];
  ActiveChunk active_[2];
  uint64_t appended_bytes_[2] = {0, 0};
};

// The set of per-worker WALs plus global byte accounting for the GC trigger.
class WalSet {
 public:
  WalSet(pmem::LogArena& arena, int max_workers);

  // Appends on behalf of `worker_id`; updates the global log-size counter.
  bool Append(int worker_id, int epoch, uint64_t key, uint64_t value, uint64_t timestamp);

  // Frees the `epoch` log of every worker (end of a GC round).
  void ReleaseEpoch(int epoch);

  uint64_t live_bytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  // High-water mark of live log bytes (paper Table 2's "peak log size").
  uint64_t peak_bytes() const { return peak_bytes_.load(std::memory_order_relaxed); }

  // Recovery: scans every arena chunk and invokes `fn` for each valid entry
  // of each active chunk.
  static void ScanAll(pmem::LogArena& arena, const std::function<void(const LogEntry&)>& fn);

 private:
  pmem::LogArena* arena_;
  std::vector<std::unique_ptr<ThreadWal>> wals_;
  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
};

}  // namespace cclbt::core

#endif  // SRC_CORE_WAL_H_
