// CCL-BTree: crash-consistent locality-aware B+-tree (the paper's
// contribution). See DESIGN.md for the module map.
//
// Structure (paper Figure 6):
//   inner nodes   DRAM  kvindex::DramBTree separators -> BufferNode*
//   buffer nodes  DRAM  N_batch write-merging slots + read cache (§3.2)
//   leaf nodes    PM    256 B, unsorted, ordered between leaves (§4.1)
//   WALs          PM    per-thread, write-conservative (§3.3)
//   GC            background, locality-aware B-log/I-log flip (§3.4)
#ifndef SRC_CORE_CCL_BTREE_H_
#define SRC_CORE_CCL_BTREE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/lock.h"
#include "src/core/buffer_node.h"
#include "src/core/leaf_node.h"
#include "src/core/options.h"
#include "src/core/wal.h"
#include "src/kvindex/dram_btree.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::core {

class CclBTree : public kvindex::KvIndex {
 public:
  // Formats a fresh tree in the runtime's pool (Lifecycle::kCreate), or
  // binds to an existing persistent tree after Runtime::Reopen()
  // (Lifecycle::kAttach) — an attached tree must complete Recover() before
  // any operation.
  CclBTree(kvindex::Runtime& runtime, const TreeOptions& options,
           kvindex::Lifecycle lifecycle = kvindex::Lifecycle::kCreate);

  ~CclBTree() override;

  CclBTree(const CclBTree&) = delete;
  CclBTree& operator=(const CclBTree&) = delete;

  // --- kvindex::KvIndex -----------------------------------------------------
  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;  // tombstone upsert (§4.2)
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "CCL-BTree"; }
  kvindex::MemoryFootprint Footprint() const override;
  void FlushAll() override;

  // --- persistence lifecycle (paper §3.3, DESIGN.md §9) ----------------------
  bool recoverable() const override { return true; }
  // Torn fence groups are safe: WAL entries carry a generation^checksum tag
  // that rejects partially persisted entries, and leaf batches persist data
  // lines before the header line that publishes them.
  bool tolerates_torn_crash() const override { return true; }
  // Failure recovery: rebuilds the DRAM layers from the persistent leaf
  // list, replays WALs, resets leaf timestamps, reclaims unreachable leaves
  // and log chunks. `recovery_threads` parallelizes the log scan/replay
  // phase (paper Figure 17). Only valid once, on a kAttach instance; returns
  // false if the pool holds no valid tree root.
  bool Recover(kvindex::Runtime& runtime, int recovery_threads) override;

  // --- GC (paper §3.4, scheduling DESIGN.md §10) -----------------------------
  // One full GC round in the caller's thread (benches drive this directly;
  // the background scheduler calls it when the TH_log trigger fires).
  void RunGcOnce();
  bool GcTriggerReached() const;
  // Deterministic virtual-time GC step: if the trigger has fired, runs one
  // round on the tree-owned GC context, fast-forwarded to the frontier of
  // all live worker clocks. Called automatically every gc_quantum_ops-th
  // upsert when background_gc is on in kDeterministic scheduling; drivers,
  // benches and the crash matrix may also call it directly at virtual-time
  // epochs. Returns true if a round ran. No-op in GcMode::kNone and while
  // another thread is mid-round.
  bool GcTick() override;
  // Fence-count windows [first, last] (1-based, inclusive) of completed GC
  // rounds, recorded only while a pmsim::CrashInjector is installed. The
  // crash matrix schedules points inside these windows to crash mid-GC.
  struct GcFenceWindow {
    uint64_t first_fence = 0;
    uint64_t last_fence = 0;
  };
  std::vector<GcFenceWindow> gc_fence_windows() const;

  // --- introspection ----------------------------------------------------------
  uint64_t log_live_bytes() const { return wals_->live_bytes(); }
  uint64_t log_peak_bytes() const { return wals_->peak_bytes(); }
  uint64_t leaf_bytes() const { return leaf_slab_->allocated_slots() * kLeafBytes; }
  uint64_t dram_hits() const { return dram_hits_.load(std::memory_order_relaxed); }
  uint64_t buffer_flushes() const { return buffer_flushes_.load(std::memory_order_relaxed); }
  uint64_t splits() const { return splits_.load(std::memory_order_relaxed); }
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }
  uint64_t gc_rounds() const { return gc_rounds_.load(std::memory_order_relaxed); }
  // Virtual clock of the deterministic GC context (0 when GC runs on the
  // legacy OS thread or gc_mode is kNone). Benches fold this into the run's
  // modeled elapsed time.
  uint64_t gc_vtime_ns() const { return gc_ctx_ ? gc_ctx_->now_ns() : 0; }
  // Modeled duration of the last Recover() call: serial rebuild walk plus
  // the slowest parallel replay worker (paper Figure 17).
  uint64_t last_recovery_modeled_ns() const override {
    return last_recovery_modeled_ns_.load(std::memory_order_relaxed);
  }
  const TreeOptions& options() const { return options_; }

  // Metrics epoch gauges (kv_index.h contract): GC round count and log
  // backlog, buffer churn, structural counters — all reads of existing
  // relaxed counters/accessors, no pmsim traffic.
  void SampleGauges(std::vector<std::pair<std::string, uint64_t>>* out) const override;

  // Bench A/B knob: route inner-index reads through the shared_mutex instead
  // of the optimistic version-validated descent (the pre-optimization
  // behavior). Semantically neutral; wall-clock only.
  void set_locked_inner_reads(bool locked) { inner_.set_locked_reads(locked); }

  // Walks the persistent leaf list and verifies structural invariants
  // (ordering between leaves, bitmap/fingerprint agreement). Test hook.
  bool CheckInvariants() const;

  // Prints the buffer-node and leaf state covering `key` to stderr. Debug
  // aid for tests; not thread-safe with concurrent writers.
  void DumpKeyState(uint64_t key) const;

 private:
  struct TreeRoot {  // persistent root record (pool app-root slot
                     // TreeOptions::root_slot, default 0)
    uint64_t magic;
    uint64_t head_leaf_offset;
    uint64_t slab_registry_offset;
    uint64_t arena_registry_offset;
  };
  static constexpr uint64_t kTreeMagic = 0xCC1B7123ULL;

  // --- write path -------------------------------------------------------------
  void UpsertInternal(uint64_t key, uint64_t value);
  // Routes to the covering buffer node and acquires its version lock,
  // retrying on concurrent splits/merges.
  BufferNode* RouteAndLock(uint64_t key);
  // Flushes all buffered KVs plus `extra` into the leaf in one batch
  // (bn locked). `ts` stamps the leaf.
  void FlushBuffer(BufferNode* bn, const kvindex::KeyValue* extra, uint64_t ts);
  // Applies `n` KVs to bn's leaf: in-place updates, tombstones, new slots;
  // splits when full. Persists data lines then the header (bn locked).
  // When update_ts is false the leaf timestamp is preserved (recovery replay).
  void BatchInsertLeaf(BufferNode* bn, kvindex::KeyValue* kvs, int n, uint64_t ts,
                       bool update_ts = true);
  // Logless split (paper §4.2); returns the new right-hand buffer node.
  BufferNode* SplitLeaf(BufferNode* bn);
  // Merge bn's underutilized leaf into its left sibling if possible
  // (paper §4.2). Called with bn *unlocked*; takes locks in key order.
  void TryMergeLeft(uint64_t sep);

  // --- GC internals ------------------------------------------------------------
  // Starts the configured GC scheduler. Called exactly once per instance,
  // only after the tree is fully initialized (end of the kCreate constructor
  // or after recovered_ is set in Recover()) — no code path may start GC on
  // a tree whose recovery is unsettled.
  void InitGc();
  // Stops and joins the legacy OS GC thread if one is running. Idempotent.
  void StopBackgroundGc();
  // Post-op hook in kOsThread scheduling: wakes the GC thread when the
  // trigger is reached (it otherwise blocks on gc_cv_ instead of polling).
  void NotifyGcThreadIfTriggered();
  void GcThreadBody();
  void NaiveGc();
  void LocalityAwareGc();
  // Collects live buffer nodes in key order (brief shared-lock windows).
  std::vector<BufferNode*> CollectBufferNodes() const;

  // --- recovery internals --------------------------------------------------------
  void RebuildFromLeafList();
  void ReplayLogs(int threads);
  void ResetLeafTimestamps();

  // --- helpers ----------------------------------------------------------------
  PmLeaf* AllocLeaf(int socket);
  BufferNode* NewBufferNode(PmLeaf* leaf, uint64_t sep, uint64_t recovery_ts);
  uint64_t LeafOffset(const PmLeaf* leaf) const;
  PmLeaf* LeafAt(uint64_t offset) const;
  void ChargeDram(uint64_t accesses) const;

  kvindex::Runtime& rt_;
  TreeOptions options_;
  kvindex::Lifecycle lifecycle_;
  bool recovered_ = false;

  std::unique_ptr<pmem::SlabAllocator> leaf_slab_;
  std::unique_ptr<pmem::LogArena> log_arena_;
  std::unique_ptr<WalSet> wals_;

  kvindex::DramBTree<BufferNode*> inner_;
  PmLeaf* head_leaf_ = nullptr;

  std::atomic<uint32_t> global_epoch_{0};
  // Gate used only by the naive GC baseline: upserts shared, GC exclusive.
  sync::SharedMutex naive_gate_{"tree.naive_gate"};

  // All buffer nodes ever created (owned; freed in the destructor — dead
  // nodes stay allocated so optimistic readers never touch freed memory).
  mutable sync::Mutex all_bns_mu_{"tree.all_bns"};
  std::vector<BufferNode*> all_bns_ GUARDED_BY(all_bns_mu_);
  std::atomic<uint64_t> live_bn_count_{0};

  std::atomic<uint64_t> dram_hits_{0};
  std::atomic<uint64_t> buffer_flushes_{0};
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> gc_rounds_{0};
  // Live log bytes right after the last GC round (hysteresis floor).
  std::atomic<uint64_t> post_gc_live_bytes_{0};
  std::atomic<uint64_t> last_recovery_modeled_ns_{0};
  std::atomic<uint64_t> replay_max_vtime_ns_{0};

  // --- GC scheduling state (DESIGN.md §10) ------------------------------------
  // Deterministic scheduling: the tree-owned context all GC PM traffic is
  // charged to (fig14's GC cost model), serialized by gc_tick_mu_.
  std::unique_ptr<pmsim::ThreadContext> gc_ctx_;
  sync::Mutex gc_tick_mu_{"tree.gc_tick"};
  // Upserts since creation; every gc_quantum_ops-th one checks the trigger.
  std::atomic<uint64_t> gc_op_counter_{0};
  // Completed GC rounds as fence-count windows; recorded only while a crash
  // injector is installed (crash-matrix runs), so the hot path never locks.
  mutable sync::Mutex gc_windows_mu_{"tree.gc_windows"};
  std::vector<GcFenceWindow> gc_fence_windows_ GUARDED_BY(gc_windows_mu_);
  // Legacy kOsThread scheduling: trigger-signalled worker (no timed polling).
  std::atomic<bool> stop_gc_{false};
  sync::Mutex gc_cv_mu_{"tree.gc_cv"};
  // _any: sync::Mutex is BasicLockable but is not std::mutex.
  std::condition_variable_any gc_cv_;
  std::thread gc_thread_;
};

}  // namespace cclbt::core

#endif  // SRC_CORE_CCL_BTREE_H_
