// CCL-Hash: the paper's §6 extension sketch, implemented. "In the persistent
// hash tables (e.g., CCEH, CLevel), we can introduce a buffer node for one
// or multiple buckets to batch the updates to them, and use the
// write-conservative logging and locality-aware GC to ensure crash
// consistency with reduced write amplification."
//
// Structure:
//   directory     DRAM   fixed array of buffer nodes, one per bucket
//   buckets       PM     256 B (one XPLine), same layout as a tree leaf
//                        (bitmap + fingerprints + timestamp + 14 unsorted
//                        KV slots); overflow buckets chain via the next
//                        pointer (CCEH-stash style)
//   WALs          PM     per-thread, write-conservative (trigger writes are
//                        not logged)
//   GC            locality-aware B-log/I-log epoch flip
//
// Compared with the tree, recovery is *simpler*: an entry's bucket is
// recomputed from its key hash, so there is no separator-routing subtlety
// (no fence entries needed). The table has a fixed bucket count (resizing à
// la CLevel is out of scope for this prototype).
#ifndef SRC_CORE_CCL_HASH_H_
#define SRC_CORE_CCL_HASH_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/buffer_node.h"
#include "src/core/leaf_node.h"
#include "src/core/wal.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::core {

class CclHashTable {
 public:
  struct Options {
    size_t num_buckets = 1 << 16;  // fixed; choose ~keys/10 for ~70% load
    int nbatch = 2;
    bool write_conservative_logging = true;
    // false = unbuffered baseline (direct bucket writes, no WAL needed):
    // the ablation arm of bench_extra_hash_ablation.
    bool buffering = true;
    int max_workers = 136;
  };

  // Formats a fresh table in the runtime's pool (app-root slot 1).
  CclHashTable(kvindex::Runtime& runtime, const Options& options);
  // Re-attaches after a crash: rebuilds buffer nodes, replays WALs.
  static std::unique_ptr<CclHashTable> Recover(kvindex::Runtime& runtime, const Options& options);

  ~CclHashTable();

  CclHashTable(const CclHashTable&) = delete;
  CclHashTable& operator=(const CclHashTable&) = delete;

  void Upsert(uint64_t key, uint64_t value);
  bool Lookup(uint64_t key, uint64_t* value_out);
  bool Remove(uint64_t key);  // tombstone upsert

  // Locality-aware GC round (epoch flip + I-log copy of unflushed entries).
  void RunGcOnce();

  uint64_t log_live_bytes() const { return wals_->live_bytes(); }
  uint64_t buffer_flushes() const { return buffer_flushes_.load(std::memory_order_relaxed); }
  uint64_t overflow_buckets() const { return overflow_buckets_.load(std::memory_order_relaxed); }

 private:
  struct TableRoot {  // persistent (app-root slot 1)
    uint64_t magic;
    uint64_t num_buckets;
    uint64_t directory_offset;  // array of num_buckets PmLeaf buckets
    uint64_t slab_registry_offset;
    uint64_t arena_registry_offset;
  };
  static constexpr uint64_t kHashMagic = 0xCC1AA54ULL;
  static constexpr int kAppRootSlot = 1;

  CclHashTable(kvindex::Runtime& runtime, const Options& options, bool recover_tag);

  size_t BucketIndex(uint64_t key) const { return Mix64(key * 3 + 1) % options_.num_buckets; }
  PmLeaf* Bucket(size_t index) const { return buckets_ + index; }

  // Applies a batch to a bucket chain under the buffer node's lock:
  // in-place updates, tombstone bit-clears, appends; allocates overflow
  // buckets when the chain is full.
  void BatchInsertBucket(BufferNode* bn, kvindex::KeyValue* kvs, int n, uint64_t ts,
                         bool update_ts = true);
  void FlushBuffer(BufferNode* bn, const kvindex::KeyValue* extra, uint64_t ts);
  void ReplayLogs();

  kvindex::Runtime& rt_;
  Options options_;
  std::unique_ptr<pmem::SlabAllocator> overflow_slab_;
  std::unique_ptr<pmem::LogArena> log_arena_;
  std::unique_ptr<WalSet> wals_;

  PmLeaf* buckets_ = nullptr;  // contiguous PM array
  std::vector<BufferNode*> directory_;

  std::atomic<uint32_t> global_epoch_{0};
  std::atomic<uint64_t> buffer_flushes_{0};
  std::atomic<uint64_t> overflow_buckets_{0};
};

}  // namespace cclbt::core

#endif  // SRC_CORE_CCL_HASH_H_
