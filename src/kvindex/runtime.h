// Shared runtime for all indexes: the simulated device, the PM pool, the
// out-of-band value store and the ORDO clock. One Runtime per experiment so
// every index under comparison sees identical hardware.
#ifndef SRC_KVINDEX_RUNTIME_H_
#define SRC_KVINDEX_RUNTIME_H_

#include <memory>
#include <string>

#include "src/common/ordo.h"
#include "src/pmem/log_arena.h"
#include "src/pmem/pool.h"
#include "src/pmem/value_store.h"
#include "src/pmsim/device.h"

namespace cclbt::kvindex {

struct RuntimeOptions {
  pmsim::DeviceConfig device;
  // Cross-socket clock skew bound for ORDO timestamps.
  uint64_t ordo_boundary_ns = 0;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeOptions& options)
      : options_(options), device_(options.device), ordo_(options.ordo_boundary_ns) {
    // Pool formatting needs a thread context for its persist calls.
    pmsim::ThreadContext boot_ctx(device_, /*socket=*/0);
    pool_ = pmem::PmPool::Create(device_);
    values_ = std::make_unique<pmem::ValueStore>(*pool_);
  }

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Simulated machine restart: re-attaches to the surviving device media via
  // PmPool::Open (superblock validation included) instead of reformatting.
  // Typically called after PmDevice::Crash()/CrashTorn(). On validation
  // failure returns false, fills `error_out` with the structured diagnostic
  // message, and leaves the previous pool/value-store handles in place.
  bool Reopen(std::string* error_out = nullptr) {
    pmsim::ThreadContext boot_ctx(device_, /*socket=*/0);
    pmem::PoolOpenError error;
    auto pool = pmem::PmPool::Open(device_, &error);
    if (pool == nullptr) {
      if (error_out != nullptr) {
        *error_out = error.message;
      }
      return false;
    }
    pool_ = std::move(pool);
    // The value store's volatile region cursors restart; blobs referenced by
    // surviving indirection handles stay readable through pool offsets, at
    // the cost of leaking the unused remainder of pre-crash regions (bounded
    // by one region per socket per restart). The leak is counted: the dying
    // store's unused reservation carries into the new store's leaked_bytes()
    // so repeated crash-recover cycles show monotone growth in the
    // value-store gauges (pmctl top/series) instead of vanishing silently.
    uint64_t leaked = values_->leaked_bytes() + values_->unused_reserved_bytes();
    values_ = std::make_unique<pmem::ValueStore>(*pool_, leaked);
    return true;
  }

  pmsim::PmDevice& device() { return device_; }
  // Resolved persistence-domain backend of the device (DESIGN.md §14); the
  // options' kAuto has been resolved by device construction.
  pmsim::MediaBackend media_backend() const { return device_.config().backend; }
  pmem::PmPool& pool() { return *pool_; }
  pmem::ValueStore& values() { return *values_; }
  OrdoClock& ordo() { return ordo_; }
  const RuntimeOptions& options() const { return options_; }

  // Socket for a worker index. With an explicit threads_per_socket (or
  // DeviceConfig::cores_per_socket), fill socket 0's cores first, then
  // socket 1 — mirroring the paper's pthread_setaffinity_np pinning on a
  // 2x48-way box. When neither is given (0), place workers round-robin
  // across sockets so small-worker-count runs still exercise the configured
  // topology instead of piling every worker onto socket 0 behind a 48-core
  // fill threshold they never cross.
  int SocketForWorker(int worker, int threads_per_socket = 0) const {
    int num_sockets = device_.config().num_sockets;
    if (threads_per_socket <= 0) {
      threads_per_socket = device_.config().cores_per_socket;
    }
    if (threads_per_socket <= 0) {
      return worker % num_sockets;
    }
    return (worker / threads_per_socket) % num_sockets;
  }

 private:
  RuntimeOptions options_;
  pmsim::PmDevice device_;
  OrdoClock ordo_;
  std::unique_ptr<pmem::PmPool> pool_;
  std::unique_ptr<pmem::ValueStore> values_;
};

}  // namespace cclbt::kvindex

#endif  // SRC_KVINDEX_RUNTIME_H_
