// Abstract interface implemented by CCL-BTree and every baseline index so
// the benchmark harness, YCSB driver and amplification probes are shared.
//
// Threading contract: all operations may be called concurrently from worker
// threads; each worker must hold a live pmsim::ThreadContext (the harness
// sets this up). Keys and values are 8 B words; variable-size KVs use
// pmem::ValueStore indirection handles as words (paper §4.4 Opt. 3).
#ifndef SRC_KVINDEX_KV_INDEX_H_
#define SRC_KVINDEX_KV_INDEX_H_

#include <cstddef>
#include <cstdint>

namespace cclbt::kvindex {

struct KeyValue {
  uint64_t key;
  uint64_t value;
};

struct MemoryFootprint {
  uint64_t dram_bytes = 0;
  uint64_t pm_bytes = 0;
};

class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Insert or update (the paper implements both as upsert, §4.2).
  virtual void Upsert(uint64_t key, uint64_t value) = 0;

  // Point lookup; returns false if absent.
  virtual bool Lookup(uint64_t key, uint64_t* value_out) = 0;

  // Delete; returns false if absent. Indexes that cannot detect absence
  // cheaply may return true unconditionally (noted per implementation).
  virtual bool Remove(uint64_t key) = 0;

  // Range query: up to `count` entries with key >= start_key in ascending
  // key order. Returns the number written to `out`.
  virtual size_t Scan(uint64_t start_key, size_t count, KeyValue* out) = 0;

  virtual const char* name() const = 0;

  // DRAM / PM space accounting for the paper's Figure 18.
  virtual MemoryFootprint Footprint() const = 0;

  // Hook called once after warm-up so indexes with deferred work (e.g.
  // DPTree's buffer merge) can reach a steady state before measurement.
  virtual void FlushAll() {}
};

}  // namespace cclbt::kvindex

#endif  // SRC_KVINDEX_KV_INDEX_H_
