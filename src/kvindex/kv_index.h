// Abstract interface implemented by CCL-BTree and every baseline index so
// the benchmark harness, YCSB driver and amplification probes are shared.
//
// Threading contract: all operations may be called concurrently from worker
// threads; each worker must hold a live pmsim::ThreadContext (the harness
// sets this up). Keys and values are 8 B words; variable-size KVs use
// pmem::ValueStore indirection handles as words (paper §4.4 Opt. 3).
#ifndef SRC_KVINDEX_KV_INDEX_H_
#define SRC_KVINDEX_KV_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cclbt::kvindex {

class Runtime;

// Persistence lifecycle of an index instance (DESIGN.md §9). kCreate formats
// fresh persistent state; kAttach binds to state that already exists on the
// device (after Runtime::Reopen) and requires a successful Recover() before
// any operation.
enum class Lifecycle { kCreate, kAttach };

struct KeyValue {
  uint64_t key;
  uint64_t value;
};

struct MemoryFootprint {
  uint64_t dram_bytes = 0;
  uint64_t pm_bytes = 0;
};

class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Insert or update (the paper implements both as upsert, §4.2).
  virtual void Upsert(uint64_t key, uint64_t value) = 0;

  // Point lookup; returns false if absent.
  virtual bool Lookup(uint64_t key, uint64_t* value_out) = 0;

  // Delete; returns false if absent. Indexes that cannot detect absence
  // cheaply may return true unconditionally (noted per implementation).
  virtual bool Remove(uint64_t key) = 0;

  // Range query: up to `count` entries with key >= start_key in ascending
  // key order. Returns the number written to `out`.
  virtual size_t Scan(uint64_t start_key, size_t count, KeyValue* out) = 0;

  virtual const char* name() const = 0;

  // DRAM / PM space accounting for the paper's Figure 18.
  virtual MemoryFootprint Footprint() const = 0;

  // Hook called once after warm-up so indexes with deferred work (e.g.
  // DPTree's buffer merge) can reach a steady state before measurement.
  virtual void FlushAll() {}

  // Deterministic-GC hook (DESIGN.md §10): an index with a schedulable
  // background reclaimer checks its trigger here and runs at most one round
  // at this virtual-time point, charging the work to its own context.
  // Returns true if a round ran. Drivers call it at virtual-time epochs;
  // indexes without background work keep the no-op default.
  virtual bool GcTick() { return false; }

  // Observability hook: append (name, value) gauge samples describing the
  // index's current internal state (GC backlog, buffer churn, structural
  // counters). Pulled by the bench driver at virtual-time epoch boundaries —
  // implementations must only read existing counters/accessors, never touch
  // pmsim state, so sampling cannot perturb the flush schedule. Gauges are
  // cumulative values; consumers window them by differencing consecutive
  // samples. Indexes with nothing to report keep the no-op default.
  virtual void SampleGauges(std::vector<std::pair<std::string, uint64_t>>* out) const {
    (void)out;
  }

  // --- persistence lifecycle (DESIGN.md §9) --------------------------------
  // An index is `recoverable` when it can be constructed with
  // Lifecycle::kAttach after Runtime::Reopen() and rebuild its DRAM state
  // from the surviving media via Recover(). Baselines whose layout cannot
  // support this declare it honestly (the default) and are skipped — never
  // faked — by crash tooling.
  virtual bool recoverable() const { return false; }
  // True when recovery additionally tolerates torn fence groups
  // (PmDevice::CrashTorn): any half-persisted line must read as old or new
  // state, never act as garbage (e.g. CCL-BTree's checksum-tagged WAL
  // entries). Recoverable-but-not-torn-tolerant is a valid honest answer.
  virtual bool tolerates_torn_crash() const { return false; }
  // Rebuilds DRAM state from the persistent image. Only meaningful on a
  // kAttach instance; returns false if the index is not recoverable, was not
  // attach-constructed, or the persistent root is missing/invalid.
  virtual bool Recover(Runtime& runtime, int recovery_threads) {
    (void)runtime;
    (void)recovery_threads;
    return false;
  }
  // Modeled virtual-time cost of the last successful Recover() (Fig. 17).
  virtual uint64_t last_recovery_modeled_ns() const { return 0; }
};

}  // namespace cclbt::kvindex

#endif  // SRC_KVINDEX_KV_INDEX_H_
