// DRAM-resident B+-tree used as the inner-node layer ("the query indexes of
// inserted keys", paper §4.1) by CCL-BTree and by the DRAM-inner baselines.
//
// Semantics: an ordered map from 64-bit separator keys to a pointer-sized
// payload, with *floor* routing — RouteFloor(k) returns the payload of the
// greatest separator <= k, which is how a B+-tree directs a key to the leaf
// whose range contains it.
//
// Concurrency: structural operations (separator insert/remove on split/merge)
// are rare relative to routing, so the tree uses a readers-writer lock:
// routing and iteration take it shared, structure changes take it exclusive.
// This substitutes for FAST&FAIR's lock-free inner search (DESIGN.md §6);
// reported performance comes from the virtual-time model, which is agnostic
// to the DRAM synchronization scheme.
#ifndef SRC_KVINDEX_DRAM_BTREE_H_
#define SRC_KVINDEX_DRAM_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace cclbt::kvindex {

template <typename V>
class DramBTree {
 public:
  static constexpr int kFanout = 64;   // children per inner node
  static constexpr int kLeafCap = 64;  // entries per leaf node

  DramBTree() { root_ = NewLeaf(); }

  ~DramBTree() {
    for (Node* node : all_nodes_) {
      if (node->is_leaf) {
        delete static_cast<LeafNode*>(node);
      } else {
        delete static_cast<InnerNode*>(node);
      }
    }
  }

  DramBTree(const DramBTree&) = delete;
  DramBTree& operator=(const DramBTree&) = delete;

  // Inserts separator `key` -> `value`. Keys are unique; inserting an
  // existing key overwrites its payload.
  void Insert(uint64_t key, V value) {
    std::unique_lock<std::shared_mutex> guard(mu_);
    InsertLocked(key, value);
  }

  // Removes a separator. Returns false if absent.
  bool Remove(uint64_t key) {
    std::unique_lock<std::shared_mutex> guard(mu_);
    return RemoveLocked(key);
  }

  // Payload of the greatest separator <= key; `found`=false if the tree has
  // no separator <= key (possible only before the caller seeds a sentinel).
  V RouteFloor(uint64_t key, bool* found = nullptr) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    const LeafNode* leaf;
    int pos;
    if (!FloorEntryLocked(key, &leaf, &pos)) {
      if (found != nullptr) {
        *found = false;
      }
      return V{};
    }
    if (found != nullptr) {
      *found = true;
    }
    return leaf->values[pos];
  }

  // Like RouteFloor, but also reports the separator key itself.
  bool RouteFloorEntry(uint64_t key, uint64_t* sep_out, V* value_out) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    const LeafNode* leaf;
    int pos;
    if (!FloorEntryLocked(key, &leaf, &pos)) {
      return false;
    }
    *sep_out = leaf->keys[pos];
    *value_out = leaf->values[pos];
    return true;
  }

  // Smallest separator strictly greater than `key`; false if none.
  bool NextEntry(uint64_t key, uint64_t* next_key, V* next_value) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    const LeafNode* leaf = DescendToLeaf(key);
    int pos = UpperBound(leaf->keys, leaf->count, key);
    while (leaf != nullptr && pos >= leaf->count) {
      leaf = leaf->next;
      pos = 0;
    }
    if (leaf == nullptr) {
      return false;
    }
    *next_key = leaf->keys[pos];
    *next_value = leaf->values[pos];
    return true;
  }

  // Exact lookup of a separator.
  bool Get(uint64_t key, V* value) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    const LeafNode* leaf = DescendToLeaf(key);
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) {
      *value = leaf->values[pos];
      return true;
    }
    return false;
  }

  // Visits entries in ascending key order starting from the greatest
  // separator <= start_key (so the covering range is included). `fn` returns
  // false to stop. Holds the shared lock for the duration: callers that do
  // slow work per entry should use NextEntry stepping instead.
  template <typename Fn>
  void ForEachFrom(uint64_t start_key, Fn&& fn) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    const LeafNode* leaf;
    int pos;
    if (!FloorEntryLocked(start_key, &leaf, &pos)) {
      // No separator <= start_key: begin from the smallest entry instead.
      leaf = DescendToLeaf(0);
      pos = 0;
    }
    while (leaf != nullptr) {
      for (; pos < leaf->count; pos++) {
        if (!fn(leaf->keys[pos], leaf->values[pos])) {
          return;
        }
      }
      leaf = leaf->next;
      pos = 0;
    }
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    return size_;
  }

  // Approximate DRAM footprint (nodes only).
  uint64_t MemoryBytes() const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    return inner_count_ * sizeof(InnerNode) + leaf_count_ * sizeof(LeafNode);
  }

  int height() const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    int h = 1;
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const InnerNode*>(node)->children[0];
      h++;
    }
    return h;
  }

 private:
  struct Node {
    bool is_leaf;
    int count = 0;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct LeafNode : Node {
    LeafNode() : Node(true) {}
    uint64_t keys[kLeafCap];
    V values[kLeafCap];
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
  };

  struct InnerNode : Node {
    InnerNode() : Node(false) {}
    // children[i] covers keys in [keys[i-1], keys[i]); children[0] covers
    // everything below keys[0]. count == number of keys.
    uint64_t keys[kFanout - 1];
    Node* children[kFanout];
  };

  static int LowerBound(const uint64_t* keys, int n, uint64_t key) {
    return static_cast<int>(std::lower_bound(keys, keys + n, key) - keys);
  }
  static int UpperBound(const uint64_t* keys, int n, uint64_t key) {
    return static_cast<int>(std::upper_bound(keys, keys + n, key) - keys);
  }

  LeafNode* NewLeaf() {
    auto* leaf = new LeafNode();
    all_nodes_.push_back(leaf);
    leaf_count_++;
    return leaf;
  }
  InnerNode* NewInner() {
    auto* inner = new InnerNode();
    all_nodes_.push_back(inner);
    inner_count_++;
    return inner;
  }

  const LeafNode* DescendToLeaf(uint64_t key) const {
    const Node* node = root_;
    while (!node->is_leaf) {
      const auto* inner = static_cast<const InnerNode*>(node);
      node = inner->children[UpperBound(inner->keys, inner->count, key)];
    }
    return static_cast<const LeafNode*>(node);
  }

  // Locates the greatest separator <= key. Handles the cases where the
  // routed leaf's minimum exceeds `key` (its original minimum was removed)
  // or the leaf is empty, by walking the doubly-linked leaf list leftward.
  // Caller holds mu_ (shared or exclusive).
  bool FloorEntryLocked(uint64_t key, const LeafNode** leaf_out, int* pos_out) const {
    const LeafNode* leaf = DescendToLeaf(key);
    int pos = UpperBound(leaf->keys, leaf->count, key) - 1;
    while (pos < 0) {
      leaf = leaf->prev;
      if (leaf == nullptr) {
        return false;
      }
      pos = leaf->count - 1;
    }
    *leaf_out = leaf;
    *pos_out = pos;
    return true;
  }

  LeafNode* DescendToLeafMut(uint64_t key, std::vector<InnerNode*>* path,
                             std::vector<int>* slots) {
    Node* node = root_;
    while (!node->is_leaf) {
      auto* inner = static_cast<InnerNode*>(node);
      int slot = UpperBound(inner->keys, inner->count, key);
      path->push_back(inner);
      slots->push_back(slot);
      node = inner->children[slot];
    }
    return static_cast<LeafNode*>(node);
  }

  void InsertLocked(uint64_t key, V value) {
    std::vector<InnerNode*> path;
    std::vector<int> slots;
    LeafNode* leaf = DescendToLeafMut(key, &path, &slots);
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) {
      leaf->values[pos] = value;
      return;
    }
    if (leaf->count < kLeafCap) {
      std::copy_backward(leaf->keys + pos, leaf->keys + leaf->count,
                         leaf->keys + leaf->count + 1);
      std::copy_backward(leaf->values + pos, leaf->values + leaf->count,
                         leaf->values + leaf->count + 1);
      leaf->keys[pos] = key;
      leaf->values[pos] = value;
      leaf->count++;
      size_++;
      return;
    }
    // Split the leaf, then insert into the proper half.
    LeafNode* right = NewLeaf();
    int mid = leaf->count / 2;
    right->count = leaf->count - mid;
    std::copy(leaf->keys + mid, leaf->keys + leaf->count, right->keys);
    std::copy(leaf->values + mid, leaf->values + leaf->count, right->values);
    leaf->count = mid;
    right->next = leaf->next;
    right->prev = leaf;
    if (right->next != nullptr) {
      right->next->prev = right;
    }
    leaf->next = right;
    uint64_t sep = right->keys[0];
    LeafNode* target = key < sep ? leaf : right;
    int tpos = LowerBound(target->keys, target->count, key);
    std::copy_backward(target->keys + tpos, target->keys + target->count,
                       target->keys + target->count + 1);
    std::copy_backward(target->values + tpos, target->values + target->count,
                       target->values + target->count + 1);
    target->keys[tpos] = key;
    target->values[tpos] = value;
    target->count++;
    size_++;
    PropagateSplit(path, slots, sep, right);
  }

  void PropagateSplit(std::vector<InnerNode*>& path, std::vector<int>& slots, uint64_t sep,
                      Node* right) {
    while (!path.empty()) {
      InnerNode* parent = path.back();
      int slot = slots.back();
      path.pop_back();
      slots.pop_back();
      if (parent->count < kFanout - 1) {
        std::copy_backward(parent->keys + slot, parent->keys + parent->count,
                           parent->keys + parent->count + 1);
        std::copy_backward(parent->children + slot + 1, parent->children + parent->count + 1,
                           parent->children + parent->count + 2);
        parent->keys[slot] = sep;
        parent->children[slot + 1] = right;
        parent->count++;
        return;
      }
      // Split the inner node. Insert (sep,right) into a temporary layout.
      uint64_t keys[kFanout];
      Node* children[kFanout + 1];
      std::copy(parent->keys, parent->keys + parent->count, keys);
      std::copy(parent->children, parent->children + parent->count + 1, children);
      std::copy_backward(keys + slot, keys + parent->count, keys + parent->count + 1);
      std::copy_backward(children + slot + 1, children + parent->count + 1,
                         children + parent->count + 2);
      keys[slot] = sep;
      children[slot + 1] = right;
      int total = parent->count + 1;  // keys in temp
      int mid = total / 2;            // keys[mid] moves up
      InnerNode* right_inner = NewInner();
      parent->count = mid;
      std::copy(keys, keys + mid, parent->keys);
      std::copy(children, children + mid + 1, parent->children);
      right_inner->count = total - mid - 1;
      std::copy(keys + mid + 1, keys + total, right_inner->keys);
      std::copy(children + mid + 1, children + total + 1, right_inner->children);
      sep = keys[mid];
      right = right_inner;
    }
    // Split reached the root: grow the tree.
    InnerNode* new_root = NewInner();
    new_root->count = 1;
    new_root->keys[0] = sep;
    new_root->children[0] = root_;
    new_root->children[1] = right;
    root_ = new_root;
  }

  bool RemoveLocked(uint64_t key) {
    // Underflow rebalancing is deliberately omitted: separators are removed
    // only on leaf merges, which are rare, and an underfull DRAM node costs
    // memory, not correctness. Leaves are never unlinked so iteration stays
    // valid.
    std::vector<InnerNode*> path;
    std::vector<int> slots;
    LeafNode* leaf = DescendToLeafMut(key, &path, &slots);
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos >= leaf->count || leaf->keys[pos] != key) {
      return false;
    }
    std::copy(leaf->keys + pos + 1, leaf->keys + leaf->count, leaf->keys + pos);
    std::copy(leaf->values + pos + 1, leaf->values + leaf->count, leaf->values + pos);
    leaf->count--;
    size_--;
    return true;
  }

  mutable std::shared_mutex mu_;
  Node* root_;
  size_t size_ = 0;
  uint64_t inner_count_ = 0;
  uint64_t leaf_count_ = 0;
  std::vector<Node*> all_nodes_;
};

}  // namespace cclbt::kvindex

#endif  // SRC_KVINDEX_DRAM_BTREE_H_
