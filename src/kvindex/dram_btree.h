// DRAM-resident B+-tree used as the inner-node layer ("the query indexes of
// inserted keys", paper §4.1) by CCL-BTree and by the DRAM-inner baselines.
//
// Semantics: an ordered map from 64-bit separator keys to a pointer-sized
// payload, with *floor* routing — RouteFloor(k) returns the payload of the
// greatest separator <= k, which is how a B+-tree directs a key to the leaf
// whose range contains it.
//
// Concurrency (DESIGN.md §12): the read path is lock-free. Structural
// operations (separator insert/remove on split/merge) are rare relative to
// routing, so writers serialize on an exclusive lock and bump a global
// seqlock version around every mutation; readers descend optimistically
// without any shared-state write, then validate the version — on a change
// (or a torn pointer read) they retry, and after a bounded number of
// attempts fall back to a shared lock. This replaces the previous global
// std::shared_mutex read path, whose per-descent atomic RMW capped
// multi-thread read scaling. Safety relies on two standing invariants:
// nodes are never freed before the tree itself (all_nodes_), so a stale
// pointer always targets a live node; and all descent-visible fields are
// std::atomic, so torn reads cannot fabricate out-of-thin-air values — at
// worst a reader computes a stale result and the version check rejects it.
//
// This substitutes for FAST&FAIR's lock-free inner search (DESIGN.md §6);
// virtual-time metrics are agnostic to the DRAM synchronization scheme.
#ifndef SRC_KVINDEX_DRAM_BTREE_H_
#define SRC_KVINDEX_DRAM_BTREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/lock.h"
#include "src/common/simd.h"

namespace cclbt::kvindex {

template <typename V>
class DramBTree {
 public:
  static constexpr int kFanout = 64;   // children per inner node
  static constexpr int kLeafCap = 64;  // entries per leaf node

  DramBTree() { root_.store(NewLeaf(), std::memory_order_release); }

  ~DramBTree() {
    for (Node* node : all_nodes_) {
      if (node->is_leaf) {
        delete static_cast<LeafNode*>(node);
      } else {
        delete static_cast<InnerNode*>(node);
      }
    }
  }

  DramBTree(const DramBTree&) = delete;
  DramBTree& operator=(const DramBTree&) = delete;

  // Forces every read through the shared-lock path (the pre-optimistic
  // behavior). Bench-only knob: the A/B baseline in bench_pmsim_hotpath
  // measures the global-lock read path against the optimistic one.
  void set_locked_reads(bool locked) {
    locked_reads_.store(locked, std::memory_order_relaxed);
  }

  // Inserts separator `key` -> `value`. Keys are unique; inserting an
  // existing key overwrites its payload.
  void Insert(uint64_t key, V value) {
    sync::LockGuard<sync::SharedMutex> guard(mu_);
    WriterSection section(this);
    InsertLocked(key, value);
  }

  // Removes a separator. Returns false if absent.
  bool Remove(uint64_t key) {
    sync::LockGuard<sync::SharedMutex> guard(mu_);
    WriterSection section(this);
    return RemoveLocked(key);
  }

  // Payload of the greatest separator <= key; `found`=false if the tree has
  // no separator <= key (possible only before the caller seeds a sentinel).
  V RouteFloor(uint64_t key, bool* found = nullptr) const {
    uint64_t sep = 0;
    V value{};
    bool has = false;
    ReadSnapshot([&] { return FloorEntryImpl(key, &sep, &value, &has); });
    if (found != nullptr) {
      *found = has;
    }
    return has ? value : V{};
  }

  // Like RouteFloor, but also reports the separator key itself.
  bool RouteFloorEntry(uint64_t key, uint64_t* sep_out, V* value_out) const {
    uint64_t sep = 0;
    V value{};
    bool has = false;
    ReadSnapshot([&] { return FloorEntryImpl(key, &sep, &value, &has); });
    if (!has) {
      return false;
    }
    *sep_out = sep;
    *value_out = value;
    return true;
  }

  // Smallest separator strictly greater than `key`; false if none.
  bool NextEntry(uint64_t key, uint64_t* next_key, V* next_value) const {
    uint64_t nk = 0;
    V nv{};
    bool has = false;
    ReadSnapshot([&] {
      const LeafNode* leaf = DescendToLeaf(key);
      if (leaf == nullptr) {
        return false;  // torn pointer read; retry
      }
      int n = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
      int pos = UpperBoundProbe(leaf->keys, n, key);
      while (leaf != nullptr && pos >= n) {
        leaf = leaf->next.load(std::memory_order_acquire);
        pos = 0;
        n = leaf == nullptr ? 0 : ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
      }
      if (leaf == nullptr) {
        has = false;
        return true;
      }
      nk = leaf->keys[pos].load(std::memory_order_relaxed);
      nv = leaf->values[pos].load(std::memory_order_relaxed);
      has = true;
      return true;
    });
    if (!has) {
      return false;
    }
    *next_key = nk;
    *next_value = nv;
    return true;
  }

  // Exact lookup of a separator.
  bool Get(uint64_t key, V* value) const {
    V out{};
    bool has = false;
    ReadSnapshot([&] {
      const LeafNode* leaf = DescendToLeaf(key);
      if (leaf == nullptr) {
        return false;
      }
      int n = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
      int pos = LowerBoundProbe(leaf->keys, n, key);
      has = pos < n && leaf->keys[pos].load(std::memory_order_relaxed) == key;
      if (has) {
        out = leaf->values[pos].load(std::memory_order_relaxed);
      }
      return true;
    });
    if (!has) {
      return false;
    }
    *value = out;
    return true;
  }

  // Visits entries in ascending key order starting from the greatest
  // separator <= start_key (so the covering range is included). `fn` returns
  // false to stop. Holds the shared lock for the duration (iteration is a
  // rare GC/debug path): callers that do slow work per entry should use
  // NextEntry stepping instead.
  template <typename Fn>
  void ForEachFrom(uint64_t start_key, Fn&& fn) const {
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    const LeafNode* leaf;
    int pos;
    if (!FloorPosLocked(start_key, &leaf, &pos)) {
      // No separator <= start_key: begin from the smallest entry instead.
      leaf = DescendToLeaf(0);
      pos = 0;
    }
    while (leaf != nullptr) {
      int n = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
      for (; pos < n; pos++) {
        if (!fn(leaf->keys[pos].load(std::memory_order_relaxed),
                leaf->values[pos].load(std::memory_order_relaxed))) {
          return;
        }
      }
      leaf = leaf->next.load(std::memory_order_acquire);
      pos = 0;
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Approximate DRAM footprint (nodes only).
  uint64_t MemoryBytes() const {
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    return inner_count_ * sizeof(InnerNode) + leaf_count_ * sizeof(LeafNode);
  }

  int height() const {
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    int h = 1;
    const Node* node = root_.load(std::memory_order_acquire);
    while (!node->is_leaf) {
      node = static_cast<const InnerNode*>(node)->children[0].load(std::memory_order_acquire);
      h++;
    }
    return h;
  }

 private:
  static constexpr int kOptimisticAttempts = 16;

  struct Node {
    const bool is_leaf;
    std::atomic<int> count{0};
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  // Atomic arrays are value-initialized: an optimistic reader racing a
  // writer may load a slot the writer has not filled yet; it must read a
  // defined value (0 / nullptr) so the version check — not the load — is
  // what rejects the attempt.
  struct LeafNode : Node {
    LeafNode() : Node(true) {}
    std::atomic<uint64_t> keys[kLeafCap] = {};
    std::atomic<V> values[kLeafCap] = {};
    std::atomic<LeafNode*> next{nullptr};
    std::atomic<LeafNode*> prev{nullptr};
  };

  struct InnerNode : Node {
    InnerNode() : Node(false) {}
    // children[i] covers keys in [keys[i-1], keys[i]); children[0] covers
    // everything below keys[0]. count == number of keys.
    std::atomic<uint64_t> keys[kFanout - 1] = {};
    std::atomic<Node*> children[kFanout] = {};
  };

  static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t) &&
                    std::atomic<uint64_t>::is_always_lock_free,
                "SIMD separator search reinterprets the atomic key array");
  static_assert(std::atomic<V>::is_always_lock_free, "payloads must be lock-free atomics");

  // Writers already hold mu_ exclusively; the version bump makes them
  // visible to optimistic readers (SeqLock's externally-serialized writer
  // side: WriteBegin makes the version odd with a release fence before any
  // mutation, WriteEnd's release store publishes the mutations).
  struct SCOPED_CAPABILITY WriterSection {
    explicit WriterSection(DramBTree* tree) ACQUIRE(tree->version_) : lock_(tree->version_) {
      lock_.WriteBegin();
    }
    ~WriterSection() RELEASE() { lock_.WriteEnd(); }
    sync::SeqLock& lock_;
  };

  // Runs `body` optimistically: body returns false if it hit a torn read
  // (null child) and must be retried. A completed body is accepted only if
  // the version is unchanged and even. After kOptimisticAttempts the reader
  // falls back to the shared lock (writers are exclusive, so under the lock
  // the body always completes and the result is consistent by construction).
  template <typename Body>
  void ReadSnapshot(Body&& body) const {
    if (!locked_reads_.load(std::memory_order_relaxed)) {
      for (int attempt = 0; attempt < kOptimisticAttempts; attempt++) {
        uint64_t v = version_.ReadBeginNoWait();
        if ((v & 1) == 0) {
          bool complete = body();
          // Retire the section unconditionally: every even snapshot opened a
          // read section and owes the observer exactly one validate.
          bool unchanged = version_.ReadValidate(v);
          if (complete && unchanged) {
            return;
          }
        }
        simd::CpuRelax();
      }
    }
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    bool complete = body();
    assert(complete);
    (void)complete;
  }

  static int ClampCount(int count, int cap) {
    return count < 0 ? 0 : (count > cap ? cap : count);
  }

  static void PrefetchNode(const Node* node) {
    if (node != nullptr) {
      const char* p = reinterpret_cast<const char*>(node);
      __builtin_prefetch(p);       // header + first keys
      __builtin_prefetch(p + 64);  // separator array body
      __builtin_prefetch(p + 128);
    }
  }

  // Branchless separator search over the (possibly racing) atomic key
  // array. Under TSan the SIMD reinterpret would hide these reads from the
  // race checker, so the instrumented build uses per-element atomic loads.
  static int UpperBoundProbe(const std::atomic<uint64_t>* keys, int n, uint64_t key) {
    if constexpr (simd::kTsanBuild) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        count += keys[i].load(std::memory_order_relaxed) <= key ? 1 : 0;
      }
      return count;
    } else {
      return simd::CountLessEq(reinterpret_cast<const uint64_t*>(keys), n, key);
    }
  }
  static int LowerBoundProbe(const std::atomic<uint64_t>* keys, int n, uint64_t key) {
    if constexpr (simd::kTsanBuild) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        count += keys[i].load(std::memory_order_relaxed) < key ? 1 : 0;
      }
      return count;
    } else {
      return simd::CountLess(reinterpret_cast<const uint64_t*>(keys), n, key);
    }
  }

  // Sorted binary search for the writer path (exclusive lock held, array is
  // consistent).
  static int LowerBoundLocked(const std::atomic<uint64_t>* keys, int n, uint64_t key) {
    int lo = 0;
    int hi = n;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (keys[mid].load(std::memory_order_relaxed) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  static int UpperBoundLocked(const std::atomic<uint64_t>* keys, int n, uint64_t key) {
    int lo = 0;
    int hi = n;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (keys[mid].load(std::memory_order_relaxed) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  LeafNode* NewLeaf() {
    auto* leaf = new LeafNode();
    all_nodes_.push_back(leaf);
    leaf_count_++;
    return leaf;
  }
  InnerNode* NewInner() {
    auto* inner = new InnerNode();
    all_nodes_.push_back(inner);
    inner_count_++;
    return inner;
  }

  // Descends to the leaf covering `key`. Safe both optimistically (may
  // return nullptr on a torn child read — caller retries) and under either
  // lock. Child nodes are prefetched as soon as the pointer is known so the
  // next level's header and separator lines are in flight during the hop.
  const LeafNode* DescendToLeaf(uint64_t key) const {
    const Node* node = root_.load(std::memory_order_acquire);
    while (node != nullptr && !node->is_leaf) {
      const auto* inner = static_cast<const InnerNode*>(node);
      int n = ClampCount(inner->count.load(std::memory_order_relaxed), kFanout - 1);
      int slot = UpperBoundProbe(inner->keys, n, key);
      const Node* child = inner->children[slot].load(std::memory_order_acquire);
      PrefetchNode(child);
      node = child;
    }
    return static_cast<const LeafNode*>(node);
  }

  // Locates the greatest separator <= key. Handles the cases where the
  // routed leaf's minimum exceeds `key` (its original minimum was removed)
  // or the leaf is empty, by walking the doubly-linked leaf list leftward.
  // Returns false on a torn read (optimistic callers retry); reports
  // `*has`=false when no separator <= key exists.
  bool FloorEntryImpl(uint64_t key, uint64_t* sep, V* value, bool* has) const {
    const LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) {
      return false;
    }
    int n = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
    int pos = UpperBoundProbe(leaf->keys, n, key) - 1;
    while (pos < 0) {
      leaf = leaf->prev.load(std::memory_order_acquire);
      if (leaf == nullptr) {
        *has = false;
        return true;
      }
      pos = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap) - 1;
    }
    *sep = leaf->keys[pos].load(std::memory_order_relaxed);
    *value = leaf->values[pos].load(std::memory_order_relaxed);
    *has = true;
    return true;
  }

  // Locked-path floor position (ForEachFrom needs the leaf/pos cursor, not
  // just the entry). Caller holds mu_.
  bool FloorPosLocked(uint64_t key, const LeafNode** leaf_out, int* pos_out) const {
    const LeafNode* leaf = DescendToLeaf(key);
    int n = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap);
    int pos = UpperBoundLocked(leaf->keys, n, key) - 1;
    while (pos < 0) {
      leaf = leaf->prev.load(std::memory_order_acquire);
      if (leaf == nullptr) {
        return false;
      }
      pos = ClampCount(leaf->count.load(std::memory_order_relaxed), kLeafCap) - 1;
    }
    *leaf_out = leaf;
    *pos_out = pos;
    return true;
  }

  // Root-to-leaf write path. Fixed capacity so split/merge maintenance never
  // heap-allocates (steady-state upserts are asserted allocation-free by
  // bench_pmsim_hotpath even across leaf merges): splits halve nodes, so
  // every inner level holds >= kFanout/2 children and 24 levels cover far
  // more than 2^64 keys.
  struct MutPath {
    static constexpr int kMaxDepth = 24;
    InnerNode* nodes[kMaxDepth];
    int slots[kMaxDepth];
    int depth = 0;
  };

  LeafNode* DescendToLeafMut(uint64_t key, MutPath* path) {
    Node* node = root_.load(std::memory_order_relaxed);
    while (!node->is_leaf) {
      auto* inner = static_cast<InnerNode*>(node);
      int slot = UpperBoundLocked(inner->keys, inner->count.load(std::memory_order_relaxed), key);
      assert(path->depth < MutPath::kMaxDepth);
      path->nodes[path->depth] = inner;
      path->slots[path->depth] = slot;
      path->depth++;
      node = inner->children[slot].load(std::memory_order_relaxed);
    }
    return static_cast<LeafNode*>(node);
  }

  // Shifts [from, count) one slot right. Descending order so a racing
  // optimistic reader sees duplicated, never fabricated, entries.
  template <typename T>
  static void ShiftRight(std::atomic<T>* arr, int from, int count) {
    for (int i = count; i > from; i--) {
      arr[i].store(arr[i - 1].load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
  }
  template <typename T>
  static void ShiftLeft(std::atomic<T>* arr, int from, int count) {
    for (int i = from; i + 1 < count; i++) {
      arr[i].store(arr[i + 1].load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
  }

  void InsertLocked(uint64_t key, V value) {
    MutPath path;
    LeafNode* leaf = DescendToLeafMut(key, &path);
    int count = leaf->count.load(std::memory_order_relaxed);
    int pos = LowerBoundLocked(leaf->keys, count, key);
    if (pos < count && leaf->keys[pos].load(std::memory_order_relaxed) == key) {
      leaf->values[pos].store(value, std::memory_order_relaxed);
      return;
    }
    if (count < kLeafCap) {
      ShiftRight(leaf->keys, pos, count);
      ShiftRight(leaf->values, pos, count);
      leaf->keys[pos].store(key, std::memory_order_relaxed);
      leaf->values[pos].store(value, std::memory_order_relaxed);
      leaf->count.store(count + 1, std::memory_order_relaxed);
      size_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Split the leaf, then insert into the proper half.
    LeafNode* right = NewLeaf();
    int mid = count / 2;
    for (int i = mid; i < count; i++) {
      right->keys[i - mid].store(leaf->keys[i].load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
      right->values[i - mid].store(leaf->values[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
    }
    right->count.store(count - mid, std::memory_order_relaxed);
    leaf->count.store(mid, std::memory_order_relaxed);
    LeafNode* old_next = leaf->next.load(std::memory_order_relaxed);
    right->next.store(old_next, std::memory_order_relaxed);
    right->prev.store(leaf, std::memory_order_relaxed);
    if (old_next != nullptr) {
      old_next->prev.store(right, std::memory_order_release);
    }
    leaf->next.store(right, std::memory_order_release);
    uint64_t sep = right->keys[0].load(std::memory_order_relaxed);
    LeafNode* target = key < sep ? leaf : right;
    int tcount = target->count.load(std::memory_order_relaxed);
    int tpos = LowerBoundLocked(target->keys, tcount, key);
    ShiftRight(target->keys, tpos, tcount);
    ShiftRight(target->values, tpos, tcount);
    target->keys[tpos].store(key, std::memory_order_relaxed);
    target->values[tpos].store(value, std::memory_order_relaxed);
    target->count.store(tcount + 1, std::memory_order_relaxed);
    size_.fetch_add(1, std::memory_order_relaxed);
    PropagateSplit(path, sep, right);
  }

  void PropagateSplit(MutPath& path, uint64_t sep, Node* right) {
    while (path.depth > 0) {
      path.depth--;
      InnerNode* parent = path.nodes[path.depth];
      int slot = path.slots[path.depth];
      int count = parent->count.load(std::memory_order_relaxed);
      if (count < kFanout - 1) {
        ShiftRight(parent->keys, slot, count);
        for (int i = count + 1; i > slot + 1; i--) {
          parent->children[i].store(parent->children[i - 1].load(std::memory_order_relaxed),
                                    std::memory_order_release);
        }
        parent->keys[slot].store(sep, std::memory_order_relaxed);
        parent->children[slot + 1].store(right, std::memory_order_release);
        parent->count.store(count + 1, std::memory_order_relaxed);
        return;
      }
      // Split the inner node. Insert (sep,right) into a temporary layout.
      uint64_t keys[kFanout];
      Node* children[kFanout + 1];
      for (int i = 0; i < count; i++) {
        keys[i] = parent->keys[i].load(std::memory_order_relaxed);
      }
      for (int i = 0; i <= count; i++) {
        children[i] = parent->children[i].load(std::memory_order_relaxed);
      }
      for (int i = count; i > slot; i--) {
        keys[i] = keys[i - 1];
      }
      for (int i = count + 1; i > slot + 1; i--) {
        children[i] = children[i - 1];
      }
      keys[slot] = sep;
      children[slot + 1] = right;
      int total = count + 1;  // keys in temp
      int mid = total / 2;    // keys[mid] moves up
      InnerNode* right_inner = NewInner();
      for (int i = 0; i < mid; i++) {
        parent->keys[i].store(keys[i], std::memory_order_relaxed);
      }
      for (int i = 0; i <= mid; i++) {
        parent->children[i].store(children[i], std::memory_order_release);
      }
      parent->count.store(mid, std::memory_order_relaxed);
      right_inner->count.store(total - mid - 1, std::memory_order_relaxed);
      for (int i = mid + 1; i < total; i++) {
        right_inner->keys[i - mid - 1].store(keys[i], std::memory_order_relaxed);
      }
      for (int i = mid + 1; i <= total; i++) {
        right_inner->children[i - mid - 1].store(children[i], std::memory_order_release);
      }
      sep = keys[mid];
      right = right_inner;
    }
    // Split reached the root: grow the tree.
    InnerNode* new_root = NewInner();
    new_root->count.store(1, std::memory_order_relaxed);
    new_root->keys[0].store(sep, std::memory_order_relaxed);
    new_root->children[0].store(root_.load(std::memory_order_relaxed), std::memory_order_release);
    new_root->children[1].store(right, std::memory_order_release);
    root_.store(new_root, std::memory_order_release);
  }

  bool RemoveLocked(uint64_t key) {
    // Underflow rebalancing is deliberately omitted: separators are removed
    // only on leaf merges, which are rare, and an underfull DRAM node costs
    // memory, not correctness. Leaves are never unlinked so iteration stays
    // valid.
    MutPath path;
    LeafNode* leaf = DescendToLeafMut(key, &path);
    int count = leaf->count.load(std::memory_order_relaxed);
    int pos = LowerBoundLocked(leaf->keys, count, key);
    if (pos >= count || leaf->keys[pos].load(std::memory_order_relaxed) != key) {
      return false;
    }
    ShiftLeft(leaf->keys, pos, count);
    ShiftLeft(leaf->values, pos, count);
    leaf->count.store(count - 1, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  mutable sync::SharedMutex mu_{"inner.mu"};
  mutable sync::SeqLock version_{"inner.seq"};
  std::atomic<bool> locked_reads_{false};
  // Node fields and the bookkeeping below are read by optimistic descents
  // (and written once in the constructor), so they stay un-GUARDED_BY — the
  // seqlock validate, not the lock discipline, is what makes reads sound.
  std::atomic<Node*> root_{nullptr};
  std::atomic<size_t> size_{0};
  uint64_t inner_count_ = 0;
  uint64_t leaf_count_ = 0;
  std::vector<Node*> all_nodes_;
};

}  // namespace cclbt::kvindex

#endif  // SRC_KVINDEX_DRAM_BTREE_H_
