// 4 MB log-chunk arena with a global free list (paper §3.3: "Each WAL
// consists of multiple 4 MB log chunks. CCL-BTree maintains a free log list
// to manage the recycled log chunks. When a new log chunk is needed, it is
// first retrieved from the free list. If the free list is empty, a new log
// chunk is allocated.").
//
// The arena persists only the registry of chunks it ever carved from the
// pool; whether a chunk currently holds live log data is recorded in the
// chunk's own persistent header, which the WAL layer owns (see
// src/core/wal.h). After a crash the WAL re-scans all registered chunks.
#ifndef SRC_PMEM_LOG_ARENA_H_
#define SRC_PMEM_LOG_ARENA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/lock.h"
#include "src/pmem/pool.h"

namespace cclbt::pmem {

inline constexpr size_t kLogChunkBytes = 4 * 1024 * 1024;

class LogArena {
 public:
  static std::unique_ptr<LogArena> Create(PmPool& pool, size_t max_chunks = 4096);
  static std::unique_ptr<LogArena> Open(PmPool& pool, uint64_t registry_offset,
                                        size_t max_chunks = 4096);

  LogArena(const LogArena&) = delete;
  LogArena& operator=(const LogArena&) = delete;

  // Pops a recycled chunk from the free list, or carves a new one from
  // `socket`'s region (NUMA-friendly logging binds each thread's WAL to its
  // local socket). nullptr on PM exhaustion.
  void* AllocChunk(int socket);
  // Returns a chunk to the global free list.
  void FreeChunk(void* chunk);

  // Recovery: visit every chunk ever carved; the WAL decides liveness from
  // the chunk header and returns the dead ones through FreeChunk.
  void ForEachChunk(const std::function<void(void*)>& fn) const;

  // Clears the volatile free list (after Open, before re-scan).
  void ResetVolatile();

  uint64_t registry_offset() const { return pool_->ToOffset(registry_); }
  uint64_t total_chunks() const { return registry_->chunk_count; }
  uint64_t free_chunks() const;

 private:
  struct Registry {  // persistent
    uint64_t chunk_count;
    uint64_t chunk_offsets[];
  };

  LogArena(PmPool& pool, size_t max_chunks);

  PmPool* pool_;
  size_t max_chunks_;
  Registry* registry_ = nullptr;

  mutable sync::Mutex mu_{"pmem.log_arena"};
  std::vector<void*> free_list_ GUARDED_BY(mu_);
};

}  // namespace cclbt::pmem

#endif  // SRC_PMEM_LOG_ARENA_H_
