// PM pool management on top of the simulated device.
//
// The pool owns a small persistent superblock at offset 0 holding per-socket
// bump pointers and eight application root slots (a real PMDK-style pool
// header). All pool allocations are chunk-granular (allocators below carve
// fine-grained objects out of chunks), so persisting the bump pointer per
// allocation is cheap.
#ifndef SRC_PMEM_POOL_H_
#define SRC_PMEM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/lock.h"
#include "src/pmsim/device.h"

namespace cclbt::pmem {

inline constexpr uint64_t kPoolMagic = 0xCC1B7EEE2024ULL;
inline constexpr uint64_t kPoolFormatVersion = 1;
inline constexpr int kMaxSockets = 8;
inline constexpr int kNumAppRoots = 8;
inline constexpr size_t kSuperblockBytes = 4096;

// Persistent pool header (lives at device offset 0).
//
// Crash-safety of the validation split: the checksum covers only the fields
// written once at format time (magic/version/geometry). The mutable fields
// (bump_offset, app_root) are each updated with a single 8-byte persist and
// rely on cacheline write atomicity; folding them into a checksum would
// falsely report corruption after any crash between a field persist and the
// checksum persist. They are instead sanity-checked structurally on Open.
struct PoolRoot {
  uint64_t magic;
  uint64_t format_version;
  uint64_t pool_bytes;       // geometry recorded at format time
  uint64_t num_sockets;
  uint64_t header_checksum;  // Mix64 fold of the four fields above
  uint64_t bump_offset[kMaxSockets];  // next free offset per socket region
  uint64_t app_root[kNumAppRoots];    // application-owned offsets (0 == unset)
};
static_assert(sizeof(PoolRoot) <= kSuperblockBytes);

// Structured diagnostic from PmPool::Open superblock validation. `message`
// is human-readable and safe to surface directly (Runtime::Reopen does).
struct PoolOpenError {
  enum class Code {
    kNone,
    kBadMagic,          // not a formatted pool (or magic corrupted)
    kBadVersion,        // formatted by an incompatible layout version
    kBadChecksum,       // immutable header fields corrupted
    kGeometryMismatch,  // device geometry differs from format-time geometry
    kCorruptBump,       // a bump pointer points outside its socket region
  };
  Code code = Code::kNone;
  std::string message;
};

class PmPool {
 public:
  // Formats a fresh pool (Create) or attaches to an existing one (Open —
  // used by recovery paths to simulate a post-restart re-open). Open
  // validates the superblock; on failure it returns nullptr and, when
  // `error` is non-null, fills in the structured diagnostic.
  static std::unique_ptr<PmPool> Create(pmsim::PmDevice& device);
  static std::unique_ptr<PmPool> Open(pmsim::PmDevice& device, PoolOpenError* error = nullptr);

  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  pmsim::PmDevice& device() const { return *device_; }

  // Allocates `bytes` from `socket`'s region, 256 B aligned, tagging the
  // range for media-write attribution. Aborts (returns nullptr) when the
  // socket region is exhausted.
  void* AllocateRaw(size_t bytes, int socket, pmsim::StreamTag tag);

  // Offset <-> pointer helpers (PM data structures store offsets, never raw
  // pointers, so a re-open at a different base address stays valid).
  uint64_t ToOffset(const void* addr) const { return device_->OffsetOf(addr); }
  void* ToAddr(uint64_t offset) const { return device_->AddrOf(offset); }

  // Application root slots: persistent named entry points for recovery.
  uint64_t GetAppRoot(int slot) const;
  void SetAppRoot(int slot, uint64_t offset);

  // Total bytes handed out (PM consumption accounting, Figure 18).
  uint64_t AllocatedBytes() const;

 private:
  explicit PmPool(pmsim::PmDevice& device);

  PoolRoot* root() const { return reinterpret_cast<PoolRoot*>(device_->base()); }

  pmsim::PmDevice* device_;
  // Serializes bump-pointer advances; the superblock fields it covers live in
  // PM (reached via root()), so there is no GUARDED_BY-able member here.
  sync::Mutex mu_{"pmem.pool"};
};

}  // namespace cclbt::pmem

#endif  // SRC_PMEM_POOL_H_
