#include "src/pmem/log_arena.h"

#include <cassert>

#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::pmem {

LogArena::LogArena(PmPool& pool, size_t max_chunks) : pool_(&pool), max_chunks_(max_chunks) {}

std::unique_ptr<LogArena> LogArena::Create(PmPool& pool, size_t max_chunks) {
  auto arena = std::unique_ptr<LogArena>(new LogArena(pool, max_chunks));
  size_t registry_bytes = sizeof(Registry) + max_chunks * sizeof(uint64_t);
  void* mem = pool.AllocateRaw(registry_bytes, 0, pmsim::StreamTag::kOther);
  assert(mem != nullptr);
  arena->registry_ = reinterpret_cast<Registry*>(mem);
  arena->registry_->chunk_count = 0;
  {
    // Formatting persist of the zero count (clean-line on a fresh pool).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(&arena->registry_->chunk_count, sizeof(uint64_t));
  }
  return arena;
}

std::unique_ptr<LogArena> LogArena::Open(PmPool& pool, uint64_t registry_offset,
                                         size_t max_chunks) {
  auto arena = std::unique_ptr<LogArena>(new LogArena(pool, max_chunks));
  arena->registry_ = reinterpret_cast<Registry*>(pool.ToAddr(registry_offset));
  return arena;
}

void* LogArena::AllocChunk(int socket) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  sync::LockGuard<sync::Mutex> guard(mu_);
  if (!free_list_.empty()) {
    void* chunk = free_list_.back();
    free_list_.pop_back();
    // Ownership transfer: the recycled chunk's lines may still carry the
    // previous owner's lockset; the new WAL protects them with its own lock.
    pmsim::LockCheckResetRange(chunk, kLogChunkBytes);
    return chunk;
  }
  if (registry_->chunk_count >= max_chunks_) {
    return nullptr;
  }
  void* chunk = pool_->AllocateRaw(kLogChunkBytes, socket, pmsim::StreamTag::kLog);
  if (chunk == nullptr) {
    return nullptr;
  }
  uint64_t index = registry_->chunk_count;
  registry_->chunk_offsets[index] = pool_->ToOffset(chunk);
  pmsim::Persist(&registry_->chunk_offsets[index], sizeof(uint64_t));
  registry_->chunk_count = index + 1;
  pmsim::Persist(&registry_->chunk_count, sizeof(uint64_t));
  return chunk;
}

void LogArena::FreeChunk(void* chunk) {
  sync::LockGuard<sync::Mutex> guard(mu_);
  free_list_.push_back(chunk);
}

void LogArena::ForEachChunk(const std::function<void(void*)>& fn) const {
  for (uint64_t c = 0; c < registry_->chunk_count; c++) {
    fn(pool_->ToAddr(registry_->chunk_offsets[c]));
  }
}

void LogArena::ResetVolatile() {
  sync::LockGuard<sync::Mutex> guard(mu_);
  free_list_.clear();
}

uint64_t LogArena::free_chunks() const {
  sync::LockGuard<sync::Mutex> guard(mu_);
  return free_list_.size();
}

}  // namespace cclbt::pmem
