// Chunk-based fixed-size PM allocator (paper §4.2: "we adopt the chunk-based
// allocation strategy [7] to avoid the potential PM leak for the newly
// created leaf node").
//
// Leak-safety argument: the only *persistent* allocator metadata is the
// registry of chunks, updated once per chunk (not per object). Object
// liveness is owned by the data structure (a leaf is live iff it is reachable
// through the persistent leaf linked list / carries a valid header), so after
// a crash Recover() rebuilds the volatile free lists by scanning chunk slots
// with a caller-provided liveness predicate — allocated-but-never-linked
// objects are reclaimed instead of leaking.
#ifndef SRC_PMEM_SLAB_ALLOCATOR_H_
#define SRC_PMEM_SLAB_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/lock.h"
#include "src/pmem/pool.h"

namespace cclbt::pmem {

class SlabAllocator {
 public:
  struct Options {
    size_t slot_bytes = 256;
    size_t slots_per_chunk = 1024;  // 256 KB chunks by default
    size_t max_chunks = 64 * 1024;
    pmsim::StreamTag tag = pmsim::StreamTag::kLeaf;
  };

  // Creates a fresh allocator; its persistent registry offset is available
  // via registry_offset() for storage in a pool app-root slot.
  static std::unique_ptr<SlabAllocator> Create(PmPool& pool, const Options& options);
  // Re-attaches to an existing registry after a (simulated) restart. Volatile
  // free lists are empty until Recover() runs.
  static std::unique_ptr<SlabAllocator> Open(PmPool& pool, uint64_t registry_offset,
                                             const Options& options);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Returns a zero-initialized? No: returns the raw slot (callers initialize
  // and persist). nullptr when PM is exhausted.
  void* Allocate(int socket);
  void Free(void* slot);

  // Rebuilds free lists: a slot is free iff !is_live(slot). Called once
  // during failure recovery, before any Allocate.
  void Recover(const std::function<bool(const void*)>& is_live);

  // Visits every slot of every chunk (live or not).
  void ForEachSlot(const std::function<void(void*)>& fn) const;

  uint64_t registry_offset() const { return pool_->ToOffset(registry_); }
  size_t slot_bytes() const { return options_.slot_bytes; }
  uint64_t allocated_slots() const { return allocated_slots_.load(std::memory_order_relaxed); }
  uint64_t total_chunk_bytes() const;

 private:
  struct Registry {  // persistent
    uint64_t chunk_count;
    uint64_t chunk_offsets[];  // flexible array, max_chunks entries
  };

  SlabAllocator(PmPool& pool, const Options& options);

  struct SocketState {
    // All socket free lists share one lock name: they are instances of the
    // same role, and sibling sockets are never held together.
    sync::Mutex mu{"pmem.slab"};
    std::vector<void*> free_slots GUARDED_BY(mu);
  };

  bool GrowLocked(int socket, SocketState& state) REQUIRES(state.mu);

  PmPool* pool_;
  Options options_;
  Registry* registry_ = nullptr;

  std::vector<std::unique_ptr<SocketState>> sockets_;
  // Which socket each chunk was carved for (parallel to registry entries);
  // rebuilt on Open from the chunk address itself.
  std::atomic<uint64_t> allocated_slots_{0};
};

}  // namespace cclbt::pmem

#endif  // SRC_PMEM_SLAB_ALLOCATOR_H_
