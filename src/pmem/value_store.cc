#include "src/pmem/value_store.h"

#include <cassert>
#include <cstring>

#include "src/trace/trace.h"

namespace cclbt::pmem {

ValueStore::ValueStore(PmPool& pool, uint64_t carried_leaked_bytes)
    : pool_(&pool), leaked_bytes_(carried_leaked_bytes) {
  int sockets = pool.device().config().num_sockets;
  region_cursor_.assign(static_cast<size_t>(sockets), nullptr);
  region_end_.assign(static_cast<size_t>(sockets), nullptr);
}

uint64_t ValueStore::unused_reserved_bytes() const {
  sync::LockGuard<sync::Mutex> guard(mu_);
  uint64_t unused = 0;
  for (size_t s = 0; s < region_cursor_.size(); s++) {
    if (region_cursor_[s] != nullptr) {
      unused += static_cast<uint64_t>(region_end_[s] - region_cursor_[s]);
    }
  }
  return unused;
}

uint64_t ValueStore::Append(std::span<const std::byte> data, int socket) {
  trace::TraceScope scope(trace::Component::kValueStore);
  size_t need = sizeof(Blob) + data.size();
  // Round to 8 B so headers stay aligned.
  need = (need + 7) & ~size_t{7};
  sync::LockGuard<sync::Mutex> guard(mu_);
  auto idx = static_cast<size_t>(socket);
  if (region_cursor_[idx] == nullptr ||
      region_cursor_[idx] + need > region_end_[idx]) {
    size_t region_bytes = need > kRegionBytes ? need : kRegionBytes;
    auto* region = reinterpret_cast<std::byte*>(
        pool_->AllocateRaw(region_bytes, socket, pmsim::StreamTag::kOther));
    assert(region != nullptr && "PM exhausted in ValueStore");
    region_cursor_[idx] = region;
    region_end_[idx] = region + region_bytes;
  }
  auto* blob = reinterpret_cast<Blob*>(region_cursor_[idx]);
  region_cursor_[idx] += need;
  allocated_bytes_ += need;
  blob->size = data.size();
  std::memcpy(blob->data, data.data(), data.size());
  pmsim::Persist(blob, sizeof(Blob) + data.size());
  uint64_t offset = pool_->ToOffset(blob);
  assert((offset & kIndirectBit) == 0);
  return offset | kIndirectBit;
}

std::span<const std::byte> ValueStore::Read(uint64_t handle) const {
  assert(IsIndirect(handle));
  const auto* blob =
      reinterpret_cast<const Blob*>(pool_->ToAddr(handle & ~kIndirectBit));
  pmsim::ReadPm(blob, sizeof(Blob) + blob->size);
  return {blob->data, blob->size};
}

}  // namespace cclbt::pmem
