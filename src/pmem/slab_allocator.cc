#include "src/pmem/slab_allocator.h"

#include <cassert>

#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::pmem {

SlabAllocator::SlabAllocator(PmPool& pool, const Options& options)
    : pool_(&pool), options_(options) {
  for (int i = 0; i < pool.device().config().num_sockets; i++) {
    sockets_.push_back(std::make_unique<SocketState>());
  }
}

std::unique_ptr<SlabAllocator> SlabAllocator::Create(PmPool& pool, const Options& options) {
  auto slab = std::unique_ptr<SlabAllocator>(new SlabAllocator(pool, options));
  size_t registry_bytes = sizeof(Registry) + options.max_chunks * sizeof(uint64_t);
  // The registry is allocator metadata, not leaf/log payload: tag kOther.
  void* mem = pool.AllocateRaw(registry_bytes, 0, pmsim::StreamTag::kOther);
  assert(mem != nullptr);
  slab->registry_ = reinterpret_cast<Registry*>(mem);
  slab->registry_->chunk_count = 0;
  {
    // Formatting persist of the zero count (clean-line on a fresh pool).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(&slab->registry_->chunk_count, sizeof(uint64_t));
  }
  return slab;
}

std::unique_ptr<SlabAllocator> SlabAllocator::Open(PmPool& pool, uint64_t registry_offset,
                                                   const Options& options) {
  auto slab = std::unique_ptr<SlabAllocator>(new SlabAllocator(pool, options));
  slab->registry_ = reinterpret_cast<Registry*>(pool.ToAddr(registry_offset));
  return slab;
}

bool SlabAllocator::GrowLocked(int socket, SocketState& state) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  if (registry_->chunk_count >= options_.max_chunks) {
    return false;
  }
  size_t chunk_bytes = options_.slot_bytes * options_.slots_per_chunk;
  void* chunk = pool_->AllocateRaw(chunk_bytes, socket, options_.tag);
  if (chunk == nullptr) {
    return false;
  }
  // Persist the registry append: slot first, then the count (count is the
  // commit point — a crash between the two just forgets the chunk, and the
  // pool bump pointer is already durable so the space is never double-used;
  // it is leaked space bounded by one chunk, matching chunk-based allocators).
  uint64_t index = registry_->chunk_count;
  registry_->chunk_offsets[index] = pool_->ToOffset(chunk);
  pmsim::Persist(&registry_->chunk_offsets[index], sizeof(uint64_t));
  registry_->chunk_count = index + 1;
  pmsim::Persist(&registry_->chunk_count, sizeof(uint64_t));

  auto* base = reinterpret_cast<std::byte*>(chunk);
  for (size_t i = 0; i < options_.slots_per_chunk; i++) {
    state.free_slots.push_back(base + i * options_.slot_bytes);
  }
  return true;
}

void* SlabAllocator::Allocate(int socket) {
  auto& state = *sockets_[static_cast<size_t>(socket)];
  sync::LockGuard<sync::Mutex> guard(state.mu);
  if (state.free_slots.empty() && !GrowLocked(socket, state)) {
    return nullptr;
  }
  void* slot = state.free_slots.back();
  state.free_slots.pop_back();
  allocated_slots_.fetch_add(1, std::memory_order_relaxed);
  // Ownership transfer: a recycled slot's lines may still carry the previous
  // owner's lockset; the new owner protects them with its own latch.
  pmsim::LockCheckResetRange(slot, options_.slot_bytes);
  return slot;
}

void SlabAllocator::Free(void* slot) {
  int socket = pool_->device().SocketOf(pool_->ToOffset(slot));
  auto& state = *sockets_[static_cast<size_t>(socket)];
  sync::LockGuard<sync::Mutex> guard(state.mu);
  state.free_slots.push_back(slot);
  allocated_slots_.fetch_sub(1, std::memory_order_relaxed);
}

void SlabAllocator::Recover(const std::function<bool(const void*)>& is_live) {
  for (auto& state : sockets_) {
    sync::LockGuard<sync::Mutex> guard(state->mu);
    state->free_slots.clear();
  }
  allocated_slots_.store(0, std::memory_order_relaxed);
  for (uint64_t c = 0; c < registry_->chunk_count; c++) {
    auto* base = reinterpret_cast<std::byte*>(pool_->ToAddr(registry_->chunk_offsets[c]));
    int socket = pool_->device().SocketOf(registry_->chunk_offsets[c]);
    auto& state = *sockets_[static_cast<size_t>(socket)];
    sync::LockGuard<sync::Mutex> guard(state.mu);
    for (size_t i = 0; i < options_.slots_per_chunk; i++) {
      void* slot = base + i * options_.slot_bytes;
      if (is_live(slot)) {
        allocated_slots_.fetch_add(1, std::memory_order_relaxed);
      } else {
        state.free_slots.push_back(slot);
      }
    }
  }
}

void SlabAllocator::ForEachSlot(const std::function<void(void*)>& fn) const {
  for (uint64_t c = 0; c < registry_->chunk_count; c++) {
    auto* base = reinterpret_cast<std::byte*>(pool_->ToAddr(registry_->chunk_offsets[c]));
    for (size_t i = 0; i < options_.slots_per_chunk; i++) {
      fn(base + i * options_.slot_bytes);
    }
  }
}

uint64_t SlabAllocator::total_chunk_bytes() const {
  return registry_->chunk_count * options_.slot_bytes * options_.slots_per_chunk;
}

}  // namespace cclbt::pmem
