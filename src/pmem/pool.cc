#include "src/pmem/pool.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "src/common/rng.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::pmem {

namespace {
constexpr size_t kAllocAlign = 256;  // XPLine alignment for everything.

size_t AlignUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

uint64_t HeaderChecksum(const PoolRoot& root) {
  uint64_t h = Mix64(root.magic);
  h = Mix64(h ^ root.format_version);
  h = Mix64(h ^ root.pool_bytes);
  h = Mix64(h ^ root.num_sockets);
  return h;
}

void Fail(PoolOpenError* error, PoolOpenError::Code code, const char* fmt, uint64_t got,
          uint64_t want) {
  if (error == nullptr) {
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
  error->code = code;
  error->message = buf;
}
}  // namespace

PmPool::PmPool(pmsim::PmDevice& device) : device_(&device) {}

std::unique_ptr<PmPool> PmPool::Create(pmsim::PmDevice& device) {
  auto pool = std::unique_ptr<PmPool>(new PmPool(device));
  PoolRoot* root = pool->root();
  std::memset(root, 0, sizeof(PoolRoot));
  root->magic = kPoolMagic;
  root->format_version = kPoolFormatVersion;
  root->pool_bytes = device.config().pool_bytes;
  root->num_sockets = static_cast<uint64_t>(device.config().num_sockets);
  root->header_checksum = HeaderChecksum(*root);
  for (int socket = 0; socket < device.config().num_sockets; socket++) {
    uint64_t region_start = static_cast<uint64_t>(socket) * device.config().socket_region_bytes();
    // Socket 0 loses the superblock page.
    root->bump_offset[socket] =
        socket == 0 ? AlignUp(kSuperblockBytes, kAllocAlign) : region_start;
  }
  {
    // Formatting persist: zero-valued superblock fields (unused app roots,
    // padding) are content-equal to a fresh device's zeroes, but formatting
    // over a previously used device needs every header line durable.
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(root, sizeof(PoolRoot));
  }
  return pool;
}

std::unique_ptr<PmPool> PmPool::Open(pmsim::PmDevice& device, PoolOpenError* error) {
  auto pool = std::unique_ptr<PmPool>(new PmPool(device));
  const PoolRoot* root = pool->root();
  if (pmsim::ThreadContext::Current() != nullptr) {
    pmsim::ReadPm(root, sizeof(PoolRoot));  // modeled superblock read at boot
  }
  if (root->magic != kPoolMagic) {
    Fail(error, PoolOpenError::Code::kBadMagic,
         "pool superblock: bad magic 0x%llx (expected 0x%llx) — device not formatted or "
         "header corrupted",
         root->magic, kPoolMagic);
    return nullptr;
  }
  if (root->format_version != kPoolFormatVersion) {
    Fail(error, PoolOpenError::Code::kBadVersion,
         "pool superblock: format version %llu not supported (expected %llu)",
         root->format_version, kPoolFormatVersion);
    return nullptr;
  }
  if (root->header_checksum != HeaderChecksum(*root)) {
    Fail(error, PoolOpenError::Code::kBadChecksum,
         "pool superblock: header checksum 0x%llx does not match computed 0x%llx — "
         "immutable header fields corrupted",
         root->header_checksum, HeaderChecksum(*root));
    return nullptr;
  }
  if (root->pool_bytes != device.config().pool_bytes ||
      root->num_sockets != static_cast<uint64_t>(device.config().num_sockets)) {
    Fail(error, PoolOpenError::Code::kGeometryMismatch,
         "pool superblock: formatted geometry (pool_bytes=%llu, num_sockets=%llu) does not "
         "match the device",
         root->pool_bytes, root->num_sockets);
    return nullptr;
  }
  for (int socket = 0; socket < device.config().num_sockets; socket++) {
    uint64_t region_start = static_cast<uint64_t>(socket) * device.config().socket_region_bytes();
    uint64_t region_end = region_start + device.config().socket_region_bytes();
    uint64_t base = socket == 0 ? AlignUp(kSuperblockBytes, kAllocAlign) : region_start;
    uint64_t bump = root->bump_offset[socket];
    if (bump < base || bump > region_end) {
      Fail(error, PoolOpenError::Code::kCorruptBump,
           "pool superblock: bump pointer %llu outside socket region (socket %llu)", bump,
           static_cast<uint64_t>(socket));
      return nullptr;
    }
  }
  return pool;
}

void* PmPool::AllocateRaw(size_t bytes, int socket, pmsim::StreamTag tag) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  assert(socket >= 0 && socket < device_->config().num_sockets);
  bytes = AlignUp(bytes, kAllocAlign);
  sync::LockGuard<sync::Mutex> guard(mu_);
  PoolRoot* header = root();
  uint64_t offset = header->bump_offset[socket];
  uint64_t region_end =
      (static_cast<uint64_t>(socket) + 1) * device_->config().socket_region_bytes();
  if (offset + bytes > region_end) {
    return nullptr;  // Socket region exhausted.
  }
  header->bump_offset[socket] = offset + bytes;
  pmsim::Persist(&header->bump_offset[socket], sizeof(uint64_t));
  void* addr = device_->AddrOf(offset);
  device_->RegisterRange(addr, bytes, tag);
  return addr;
}

uint64_t PmPool::GetAppRoot(int slot) const {
  assert(slot >= 0 && slot < kNumAppRoots);
  return root()->app_root[slot];
}

void PmPool::SetAppRoot(int slot, uint64_t offset) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  assert(slot >= 0 && slot < kNumAppRoots);
  root()->app_root[slot] = offset;
  pmsim::Persist(&root()->app_root[slot], sizeof(uint64_t));
}

uint64_t PmPool::AllocatedBytes() const {
  const PoolRoot* header = root();
  uint64_t total = 0;
  for (int socket = 0; socket < device_->config().num_sockets; socket++) {
    uint64_t region_start = static_cast<uint64_t>(socket) * device_->config().socket_region_bytes();
    uint64_t base = socket == 0 ? AlignUp(kSuperblockBytes, kAllocAlign) : region_start;
    total += header->bump_offset[socket] - base;
  }
  return total;
}

}  // namespace cclbt::pmem
