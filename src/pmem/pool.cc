#include "src/pmem/pool.h"

#include <cassert>
#include <cstring>

#include "src/trace/trace.h"

namespace cclbt::pmem {

namespace {
constexpr size_t kAllocAlign = 256;  // XPLine alignment for everything.

size_t AlignUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }
}  // namespace

PmPool::PmPool(pmsim::PmDevice& device) : device_(&device) {}

std::unique_ptr<PmPool> PmPool::Create(pmsim::PmDevice& device) {
  auto pool = std::unique_ptr<PmPool>(new PmPool(device));
  PoolRoot* root = pool->root();
  std::memset(root, 0, sizeof(PoolRoot));
  root->magic = kPoolMagic;
  for (int socket = 0; socket < device.config().num_sockets; socket++) {
    uint64_t region_start = static_cast<uint64_t>(socket) * device.config().socket_region_bytes();
    // Socket 0 loses the superblock page.
    root->bump_offset[socket] =
        socket == 0 ? AlignUp(kSuperblockBytes, kAllocAlign) : region_start;
  }
  pmsim::Persist(root, sizeof(PoolRoot));
  return pool;
}

std::unique_ptr<PmPool> PmPool::Open(pmsim::PmDevice& device) {
  auto pool = std::unique_ptr<PmPool>(new PmPool(device));
  assert(pool->root()->magic == kPoolMagic && "pool not formatted");
  return pool;
}

void* PmPool::AllocateRaw(size_t bytes, int socket, pmsim::StreamTag tag) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  assert(socket >= 0 && socket < device_->config().num_sockets);
  bytes = AlignUp(bytes, kAllocAlign);
  std::lock_guard<std::mutex> guard(mu_);
  PoolRoot* header = root();
  uint64_t offset = header->bump_offset[socket];
  uint64_t region_end =
      (static_cast<uint64_t>(socket) + 1) * device_->config().socket_region_bytes();
  if (offset + bytes > region_end) {
    return nullptr;  // Socket region exhausted.
  }
  header->bump_offset[socket] = offset + bytes;
  pmsim::Persist(&header->bump_offset[socket], sizeof(uint64_t));
  void* addr = device_->AddrOf(offset);
  device_->RegisterRange(addr, bytes, tag);
  return addr;
}

uint64_t PmPool::GetAppRoot(int slot) const {
  assert(slot >= 0 && slot < kNumAppRoots);
  return root()->app_root[slot];
}

void PmPool::SetAppRoot(int slot, uint64_t offset) {
  trace::TraceScope scope(trace::Component::kAllocMeta);
  assert(slot >= 0 && slot < kNumAppRoots);
  root()->app_root[slot] = offset;
  pmsim::Persist(&root()->app_root[slot], sizeof(uint64_t));
}

uint64_t PmPool::AllocatedBytes() const {
  const PoolRoot* header = root();
  uint64_t total = 0;
  for (int socket = 0; socket < device_->config().num_sockets; socket++) {
    uint64_t region_start = static_cast<uint64_t>(socket) * device_->config().socket_region_bytes();
    uint64_t base = socket == 0 ? AlignUp(kSuperblockBytes, kAllocAlign) : region_start;
    total += header->bump_offset[socket] - base;
  }
  return total;
}

}  // namespace cclbt::pmem
