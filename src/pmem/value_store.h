// Out-of-band storage for variable-size keys and values (paper §4.4
// Optimization 3): data larger than 8 B lives in a reserved PM area and the
// tree stores an 8 B indirection pointer whose most significant bit
// distinguishes it from inline data.
#ifndef SRC_PMEM_VALUE_STORE_H_
#define SRC_PMEM_VALUE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/lock.h"
#include "src/pmem/pool.h"

namespace cclbt::pmem {

// MSB tag: set => the 8 B word is an indirection pointer (pool offset in the
// low 63 bits), clear => inline data.
inline constexpr uint64_t kIndirectBit = 1ULL << 63;

inline bool IsIndirect(uint64_t word) { return (word & kIndirectBit) != 0; }

class ValueStore {
 public:
  // `carried_leaked_bytes` accumulates across restarts: Runtime::Reopen
  // constructs the successor store with the predecessor's leaked_bytes() +
  // unused_reserved_bytes(), so the counter is monotone over crash-recover
  // cycles (the leak itself is bounded by one region per socket per restart).
  explicit ValueStore(PmPool& pool, uint64_t carried_leaked_bytes = 0);

  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  // Persists `data` out-of-band and returns the tagged handle. Data of 8 B or
  // less should be stored inline by the caller instead.
  uint64_t Append(std::span<const std::byte> data, int socket);

  // Resolves a handle; charges PM read latency for the blob.
  std::span<const std::byte> Read(uint64_t handle) const;

  uint64_t allocated_bytes() const { return allocated_bytes_; }

  // Reserved-but-unwritten tail of each socket's current region. On a
  // restart this remainder is orphaned (the new store bump-allocates fresh
  // regions), turning into leak.
  uint64_t unused_reserved_bytes() const;

  // PM bytes orphaned by previous instances of this pool's value store
  // (restart leak carried through Runtime::Reopen). Exposed through the
  // value-store gauge path so `pmctl top`/`series` can watch growth across
  // repeated crash-recover cycles.
  uint64_t leaked_bytes() const { return leaked_bytes_; }

 private:
  struct Blob {  // persistent, 8 B header then payload
    uint64_t size;
    std::byte data[];
  };

  static constexpr size_t kRegionBytes = 1 << 20;

  PmPool* pool_;
  mutable sync::Mutex mu_{"pmem.vstore"};
  std::vector<std::byte*> region_cursor_ GUARDED_BY(mu_);  // per socket: next free byte
  std::vector<std::byte*> region_end_ GUARDED_BY(mu_);
  // Written under mu_; read racily by the metrics gauge (monotone counter,
  // staleness is acceptable), so deliberately not GUARDED_BY.
  uint64_t allocated_bytes_ = 0;
  uint64_t leaked_bytes_ = 0;
};

}  // namespace cclbt::pmem

#endif  // SRC_PMEM_VALUE_STORE_H_
