// Out-of-band storage for variable-size keys and values (paper §4.4
// Optimization 3): data larger than 8 B lives in a reserved PM area and the
// tree stores an 8 B indirection pointer whose most significant bit
// distinguishes it from inline data.
#ifndef SRC_PMEM_VALUE_STORE_H_
#define SRC_PMEM_VALUE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/pmem/pool.h"

namespace cclbt::pmem {

// MSB tag: set => the 8 B word is an indirection pointer (pool offset in the
// low 63 bits), clear => inline data.
inline constexpr uint64_t kIndirectBit = 1ULL << 63;

inline bool IsIndirect(uint64_t word) { return (word & kIndirectBit) != 0; }

class ValueStore {
 public:
  explicit ValueStore(PmPool& pool);

  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  // Persists `data` out-of-band and returns the tagged handle. Data of 8 B or
  // less should be stored inline by the caller instead.
  uint64_t Append(std::span<const std::byte> data, int socket);

  // Resolves a handle; charges PM read latency for the blob.
  std::span<const std::byte> Read(uint64_t handle) const;

  uint64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  struct Blob {  // persistent, 8 B header then payload
    uint64_t size;
    std::byte data[];
  };

  static constexpr size_t kRegionBytes = 1 << 20;

  PmPool* pool_;
  std::mutex mu_;
  std::vector<std::byte*> region_cursor_;  // per socket: next free byte
  std::vector<std::byte*> region_end_;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace cclbt::pmem

#endif  // SRC_PMEM_VALUE_STORE_H_
