// pmcheck: a shadow-state persistency-ordering checker for pmsim
// (DESIGN.md §11). The correctness-tooling analogue of ASan/TSan for the
// store→flush→fence discipline every PM index in this repo must obey.
//
// The simulator does not intercept stores — PM writes are plain stores into
// the mmap'd working image — so dirtiness is detected by *content*: a line
// whose working-image bytes differ from the shadow (last-durable) image is
// DirtyUnflushed. On top of that, each cacheline moves through
//
//   Clean → DirtyUnflushed → FlushPending → Durable
//                 ^   (store; detected lazily by content comparison)
//                        ^   (FlushLine: clwb issued, awaiting fence)
//                                ^   (Fence commits the pending set)
//
// with a global fence-epoch counter stamping every transition. Five bug
// classes are diagnosed:
//
//   1. redundant_flush     FlushLine on a clean line (content equals the
//                          durable image) or a re-flush of an
//                          already-pending line with unchanged content.
//                          Costs CPU + media traffic, persists nothing new.
//   2. useless_fence       Fence with zero pending lines for the thread.
//   3. dirty_at_fence      A line re-dirtied between its flush and the
//                          fence: on real hardware the clwb captured the
//                          *old* content, so the fence does not make the
//                          new content durable (torn-write risk). pmsim
//                          detects it as flush-time hash != fence-time hash.
//   4. unflushed_at_close  Lines still dirty (stored-never-flushed, or
//                          flushed-never-fenced) when DrainBuffers() or a
//                          non-injected Crash() fires.
//   5. read_before_durable ReadPm of a line another context has flushed but
//                          not yet fenced durable: the reader may act on
//                          state that a crash would revert.
//
// Diagnostics carry the active trace::Component, fence epoch, DIMM/XPLine
// address, and a short ring of recent events; `pmctl check` prints attributed
// reports from a .pmtrace dump and exits nonzero on violations.
//
// Enablement and cost: CCL_PMCHECK=1 (or DeviceConfig::pmcheck /
// RunConfig::pmcheck). Disabled cost follows the PR 2 playbook — one gate
// read per fence picking a template-specialized commit path
// (CommitPending<kTraced, kChecked>) plus one pointer test per
// FlushLine/ReadPm, the same pattern as the crash injector. The checker never
// touches virtual time or the stats counters, so enabling it leaves every
// virtual-time metric bit-identical (the determinism contract, DESIGN.md §10).
//
// Severity is backend-dependent: the device's MediaModel supplies a per-class
// PmCheckAction rule table (DESIGN.md §14). On eADR, redundant_flush and
// useless_fence downgrade to informational (flushes/fences cost nothing for
// persistence there, but the counts tell you what an ADR-tuned workload could
// shed), and the pending-window classes (dirty_at_fence, read_before_durable)
// are off — there is no flush→fence window for them to fire in.
//
// Intentional violations (e.g. a deliberately redundant defensive flush) are
// whitelisted in-place with a scoped PmCheckExpect annotation, never by
// global suppression.
#ifndef SRC_PMSIM_PMCHECK_H_
#define SRC_PMSIM_PMCHECK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/trace/component.h"

namespace cclbt::pmsim {

class PmDevice;
class ThreadContext;

enum class PmCheckClass : uint8_t {
  kRedundantFlush = 0,
  kUselessFence = 1,
  kDirtyAtFence = 2,
  kUnflushedAtClose = 3,
  kReadBeforeDurable = 4,
  kCount = 5,
};

inline constexpr int kNumPmCheckClasses = static_cast<int>(PmCheckClass::kCount);

// Stable slug used in .pmtrace dumps and pmctl check output.
const char* PmCheckClassName(PmCheckClass cls);

// Severity of one diagnostic class on one persistence backend. The table is
// supplied by the device's MediaModel (DESIGN.md §14): the same code pattern
// can be a bug on one backend and merely wasteful (or meaningless) on
// another — e.g. a redundant flush costs CPU + media traffic on ADR but
// nothing on eADR, and a pending-line race cannot exist where there is no
// pending window.
//   kReport  counted + materialized as a violation; gates `pmctl check`
//   kInfo    counted separately as informational; never gates an exit status
//   kOff     the class cannot occur / carries no signal on this backend
enum class PmCheckAction : uint8_t { kReport = 0, kInfo = 1, kOff = 2 };

// One entry of the recent-event ring attached to every diagnostic: what the
// device was doing just before the violation, for attribution.
struct PmCheckEvent {
  enum class Kind : uint8_t {
    kFlush = 0,   // detail = line offset
    kFence = 1,   // detail = committed line count (0 for a useless fence)
    kRead = 2,    // detail = first line offset of the ReadPm range
    kCrash = 3,
    kClose = 4,
  };
  Kind kind = Kind::kFlush;
  trace::Component comp = trace::Component::kOther;
  uint16_t worker = 0;
  uint64_t detail = 0;
  uint64_t fence_epoch = 0;
};

const char* PmCheckEventKindName(PmCheckEvent::Kind kind);

struct PmCheckDiagnostic {
  PmCheckClass cls = PmCheckClass::kRedundantFlush;
  uint64_t line = 0;    // line-aligned pool offset (0 for useless_fence)
  uint64_t xpline = 0;  // media unit index of `line`
  int dimm = 0;
  trace::Component comp = trace::Component::kOther;
  uint16_t worker = 0;
  uint64_t fence_epoch = 0;
  // Static single-token cause string (no spaces; dump-format safe).
  const char* detail = "";
  // True when the backend's rule table downgraded this class to kInfo.
  bool info = false;
  // Up to kRecentEventsPerDiagnostic events preceding the violation,
  // oldest first.
  std::vector<PmCheckEvent> recent;
};

struct PmCheckReport {
  bool enabled = false;
  std::array<uint64_t, kNumPmCheckClasses> counts{};
  std::array<uint64_t, kNumPmCheckClasses> suppressed{};
  // Informational occurrences (classes the backend downgrades to kInfo).
  // Never part of total(), never gate an exit status.
  std::array<uint64_t, kNumPmCheckClasses> info{};
  uint64_t fence_epochs = 0;
  uint64_t lines_tracked = 0;
  // Diagnostics beyond the retention cap are counted but not materialized;
  // a nonzero value means the list below is incomplete (never read a capped
  // run as clean — the counts above stay exact).
  uint64_t diagnostics_truncated = 0;
  std::vector<PmCheckDiagnostic> diagnostics;

  // Unsuppressed violations (what `pmctl check` gates its exit status on).
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts) {
      sum += c;
    }
    return sum;
  }
  uint64_t total_suppressed() const {
    uint64_t sum = 0;
    for (uint64_t c : suppressed) {
      sum += c;
    }
    return sum;
  }
  uint64_t total_info() const {
    uint64_t sum = 0;
    for (uint64_t c : info) {
      sum += c;
    }
    return sum;
  }
};

// Scoped whitelist for an *intentional* violation: while alive on the calling
// thread, diagnostics of `cls` raised by this thread's device calls are
// counted as suppressed instead of reported. RAII + thread-local depth, so
// scopes nest and never leak suppression across threads. Zero device
// dependency: annotating code builds and runs unchanged when pmcheck is off.
class PmCheckExpect {
 public:
  explicit PmCheckExpect(PmCheckClass cls);
  ~PmCheckExpect();

  PmCheckExpect(const PmCheckExpect&) = delete;
  PmCheckExpect& operator=(const PmCheckExpect&) = delete;

  // True if the calling thread is inside a PmCheckExpect scope for `cls`.
  static bool ActiveFor(PmCheckClass cls);

 private:
  PmCheckClass cls_;
};

// The checker proper; owned by PmDevice when enabled, absent otherwise.
// All hooks serialize on one mutex — pmcheck is a checker mode, not a
// production mode, and under the sequential virtual-time scheduler the lock
// is uncontended anyway. Hooks never advance virtual clocks and never touch
// Stats, so enabling the checker cannot perturb any virtual-time metric.
class PmCheck {
 public:
  explicit PmCheck(PmDevice& device);

  PmCheck(const PmCheck&) = delete;
  PmCheck& operator=(const PmCheck&) = delete;

  // --- hooks called by PmDevice (explicit-persist backends) ----------------
  // FlushLine: `newly_pending` is AddPendingLine's return (false == the line
  // was already in this context's pending set).
  void OnFlush(const ThreadContext& ctx, uintptr_t line, bool newly_pending);
  // Fence with an empty pending set (class 2). Bumps the fence epoch.
  void OnUselessFence(const ThreadContext& ctx);
  // --- hooks for flush-free backends (eADR) --------------------------------
  // FlushLine in a flush-free domain, called *before* the device syncs the
  // shadow copy: a flush of a line whose content already equals the durable
  // image would have been redundant even on ADR (class 1, typically kInfo).
  void OnFlushFree(const ThreadContext& ctx, uintptr_t line);
  // Fence in a flush-free domain: every fence is ordering-only there
  // (class 2, typically kInfo — the count is how many fences the workload
  // could shed on this backend).
  void OnFenceFree(const ThreadContext& ctx);
  // Fence about to commit `pending` (class 3 per line); bumps the fence epoch
  // and marks every line Durable.
  void OnFenceCommit(const ThreadContext& ctx, const std::vector<uintptr_t>& pending,
                     trace::Component comp);
  // ReadPm over [offset, offset+len) (class 5 per line).
  void OnReadRange(const ThreadContext& ctx, uintptr_t offset, size_t len);
  // Crash()/CrashTorn(): scans for still-dirty lines (class 4) unless the
  // crash was injected on purpose (armed CrashInjector fired), then resets
  // all line state — after the crash the working image equals the shadow.
  void OnCrash(bool injected);
  // DrainBuffers() (pool close / end-of-run): class-4 scan. Repeated calls
  // report each dirty line once.
  void OnClose();

  // True iff `line` (line-aligned pool offset) is flush-pending and its
  // working-image content no longer matches what the flush captured — i.e. a
  // fence right now would be class 3. Lockcheck's fence-publish cross-check
  // (DESIGN.md §16) queries this to decide whether an unprotected publish
  // window was actually written into. Takes mu_; callers must not hold it.
  bool LineRedirtiedSinceFlush(uintptr_t line) const;

  PmCheckReport Snapshot() const;

 private:
  struct LineRecord {
    uint64_t flush_hash = 0;  // working-image content hash at last flush
    uint64_t epoch = 0;       // fence epoch of the last transition
    trace::Component comp = trace::Component::kOther;  // last flusher's scope
    uint16_t worker = 0;
    bool pending = false;          // FlushPending (flushed, not yet fenced)
    bool close_reported = false;   // class-4 already reported for this line
    const ThreadContext* owner = nullptr;  // context owning the pending flush
  };

  static constexpr size_t kEventRing = 64;
  static constexpr size_t kRecentEventsPerDiagnostic = 8;
  static constexpr size_t kMaxDiagnostics = 256;
  // Informational diagnostics materialize into their own (small) budget so a
  // flood of downgraded findings cannot crowd out real violations.
  static constexpr size_t kMaxInfoDiagnostics = 16;

  static uint64_t HashLine(const std::byte* line);

  void AppendEventLocked(PmCheckEvent::Kind kind, trace::Component comp, uint16_t worker,
                         uint64_t detail);
  void DiagLocked(PmCheckClass cls, uint64_t line, trace::Component comp, uint16_t worker,
                  const char* detail);
  // Content scan of the whole pool against the shadow image; reports every
  // not-yet-reported dirty line as class 4. `detail_pending` /
  // `detail_unflushed` distinguish flushed-never-fenced from
  // stored-never-flushed.
  void ScanUnflushedLocked(const char* detail_unflushed, const char* detail_pending);

  PmDevice& device_;
  const std::byte* pool_;
  const std::byte* shadow_;
  size_t pool_bytes_;
  size_t xpline_bytes_;

  // Per-class severity, copied from the device's MediaModel rule table at
  // construction (the model outlives the checker; a copy keeps DiagLocked a
  // plain array load).
  std::array<PmCheckAction, kNumPmCheckClasses> actions_{};

  // Checker-internal serialization stays a raw std::mutex: a sync::Mutex
  // would report its own acquires to the lockcheck observer, making checker
  // bookkeeping visible to the checkers themselves.
  using CheckerMutex = std::mutex;  // lint_pm_api: allow
  mutable CheckerMutex mu_;
  std::unordered_map<uint64_t, LineRecord> lines_;
  uint64_t fence_epochs_ = 0;
  std::array<uint64_t, kNumPmCheckClasses> counts_{};
  std::array<uint64_t, kNumPmCheckClasses> suppressed_{};
  std::array<uint64_t, kNumPmCheckClasses> info_counts_{};
  uint64_t diagnostics_truncated_ = 0;
  size_t info_materialized_ = 0;
  std::vector<PmCheckDiagnostic> diagnostics_;
  std::array<PmCheckEvent, kEventRing> events_{};
  uint64_t events_seen_ = 0;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_PMCHECK_H_
