#include "src/pmsim/media_model.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>

#include "src/pmsim/device.h"
#include "src/pmsim/thread_context.h"
#include "src/trace/trace.h"

namespace cclbt::pmsim {

const char* MediaBackendName(MediaBackend backend) {
  switch (backend) {
    case MediaBackend::kAuto: return "auto";
    case MediaBackend::kAdrOptane: return "adr";
    case MediaBackend::kEadr: return "eadr";
    case MediaBackend::kCxlMem: return "cxl";
  }
  return "?";
}

void ResolveMediaBackend(DeviceConfig& config) {
  if (config.backend == MediaBackend::kAuto && config.eadr) {
    config.backend = MediaBackend::kEadr;
  }
  if (config.backend == MediaBackend::kAuto) {
    if (const char* env = std::getenv("CCL_BACKEND"); env != nullptr && env[0] != '\0') {
      std::string_view selector(env);
      if (selector == "adr" || selector == "adr_optane") {
        config.backend = MediaBackend::kAdrOptane;
      } else if (selector == "eadr") {
        config.backend = MediaBackend::kEadr;
      } else if (selector == "cxl" || selector == "cxlmem") {
        config.backend = MediaBackend::kCxlMem;
        size_t page = 4096;
        if (const char* p = std::getenv("CCL_CXL_PAGE"); p != nullptr && p[0] != '\0') {
          size_t requested = std::strtoull(p, nullptr, 10);
          bool pow2 = requested != 0 && (requested & (requested - 1)) == 0;
          if (pow2 && requested >= kXplineBytes && requested <= 4096) {
            page = requested;
          }
        }
        config.xpline_bytes = page;
        // Hold at least 64 media units regardless of page size, so the env
        // selector isolates the granularity effect (the same constant-units
        // choice as the extra_cxl page-size sweep).
        config.xpbuffer_bytes = std::max(config.xpbuffer_bytes, 64 * page);
      }
      // Unknown selector values fall through to the ADR default.
    }
  }
  if (config.backend == MediaBackend::kAuto) {
    config.backend = MediaBackend::kAdrOptane;
  }
  config.eadr = config.backend == MediaBackend::kEadr;
}

MediaModel::~MediaModel() = default;

void MediaModel::PushLine(PmDevice& device, ThreadContext& ctx, uintptr_t line_offset,
                          trace::Component comp) {
  device.PushLine(ctx, line_offset, comp);
}

void MediaModel::PushAccountingOnly(PmDevice& device, uintptr_t line_offset) {
  device.PushThroughXpBufferAccountingOnly(line_offset);
}

std::byte* MediaModel::Pool(PmDevice& device) { return device.pool_.get(); }

std::byte* MediaModel::Shadow(PmDevice& device) { return device.shadow_.get(); }

// --- EadrModel --------------------------------------------------------------

EadrModel::EadrModel(PmDevice& device, size_t capacity_lines)
    : device_(device),
      capacity_(capacity_lines),
      lines_(std::make_unique<uintptr_t[]>(capacity_lines + 1)) {}

PmCheckAction EadrModel::check_action(PmCheckClass cls) const {
  switch (cls) {
    case PmCheckClass::kRedundantFlush:
    case PmCheckClass::kUselessFence:
      // Free on eADR, yet worth counting: every hit is an instruction an
      // eADR-tuned build of the same workload could shed.
      return PmCheckAction::kInfo;
    case PmCheckClass::kDirtyAtFence:
    case PmCheckClass::kReadBeforeDurable:
      // There is no flush→fence pending window for these to fire in.
      return PmCheckAction::kOff;
    default:
      // unflushed_at_close stays a real violation: in the model a store only
      // becomes durable at its (free) FlushLine, so a line never flushed is
      // data the program never asked to persist.
      return PmCheckAction::kReport;
  }
}

void EadrModel::AbsorbFlushFree(ThreadContext& ctx, uintptr_t line_offset) {
  sync::LockGuard<XpBufferLock> guard(mu_);
  lines_[size_++] = line_offset;
  while (size_ > capacity_) {
    // Implicit eviction picks an arbitrary dirty line: locality a program had
    // when writing is gone by eviction time (paper §5.5).
    size_t victim = rng_.NextBounded(size_);
    uintptr_t line = lines_[victim];
    lines_[victim] = lines_[--size_];
    // Attribution imprecision by design: the implicit eviction is charged to
    // whatever scope happens to be active on the evicting thread, mirroring
    // how eADR divorces media traffic from the code that wrote it (§5.5).
    PushLine(device_, ctx, line, trace::CurrentComponent());
  }
}

void EadrModel::DrainResidual() {
  sync::LockGuard<XpBufferLock> guard(mu_);
  ThreadContext* ctx = ThreadContext::Current();
  for (size_t i = 0; i < size_; i++) {
    if (ctx != nullptr) {
      PushLine(device_, *ctx, lines_[i], trace::CurrentComponent());
    } else {
      // No calling context (e.g. all workers already torn down): the dirty
      // lines still reach media — account for them cost-free rather than
      // silently dropping their media writes.
      PushAccountingOnly(device_, lines_[i]);
    }
  }
  size_ = 0;
}

uint64_t EadrModel::DropVolatileOnCrash() {
  // The modeled cache sits inside the persistence domain: its content is
  // already in the shadow image, so nothing is lost — the reboot just starts
  // with a cold cache (and, like the XPBuffer drain at crash, generates no
  // media accounting).
  sync::LockGuard<XpBufferLock> guard(mu_);
  size_ = 0;
  return 0;
}

uint64_t EadrModel::ResidentLines() const {
  sync::LockGuard<XpBufferLock> guard(mu_);
  return size_;
}

// --- CxlMemModel ------------------------------------------------------------

CxlMemModel::CxlMemModel(PmDevice& device, size_t unit_bytes, bool volatile_buffer)
    : device_(device), unit_bytes_(unit_bytes), volatile_buffer_(volatile_buffer) {}

void CxlMemModel::CommitLineToShadowLocked(uintptr_t line_offset, const LineImage& image) {
  std::byte* shadow = Shadow(device_);
  if (shadow != nullptr) {
    std::memcpy(shadow + line_offset, image.bytes, kCachelineBytes);
  }
}

void CxlMemModel::StageCommittedLine(uintptr_t line_offset) {
  // Capture the content the fence committed — by eviction time the working
  // image may hold newer, not-yet-committed bytes.
  LineImage image;
  std::memcpy(image.bytes, Pool(device_) + line_offset, kCachelineBytes);
  sync::LockGuard<XpBufferLock> guard(mu_);
  staged_[line_offset] = image;
}

void CxlMemModel::CommitStagedUnit(uint64_t unit) {
  sync::LockGuard<XpBufferLock> guard(mu_);
  if (staged_.empty()) {
    return;
  }
  const uintptr_t first = static_cast<uintptr_t>(unit) * unit_bytes_;
  for (uintptr_t line = first; line < first + unit_bytes_; line += kCachelineBytes) {
    auto it = staged_.find(line);
    if (it != staged_.end()) {
      CommitLineToShadowLocked(line, it->second);
      staged_.erase(it);
    }
  }
}

void CxlMemModel::CommitAllStaged() {
  sync::LockGuard<XpBufferLock> guard(mu_);
  for (const auto& [line, image] : staged_) {
    CommitLineToShadowLocked(line, image);
  }
  staged_.clear();
}

uint64_t CxlMemModel::DropVolatileOnCrash() {
  sync::LockGuard<XpBufferLock> guard(mu_);
  uint64_t lost = staged_.size();
  staged_.clear();
  return lost;
}

uint64_t CxlMemModel::ResidentLines() const {
  sync::LockGuard<XpBufferLock> guard(mu_);
  return staged_.size();
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<MediaModel> MakeMediaModel(PmDevice& device, const DeviceConfig& config) {
  switch (config.backend) {
    case MediaBackend::kEadr:
      return std::make_unique<EadrModel>(device, config.eadr_cache_lines);
    case MediaBackend::kCxlMem:
      return std::make_unique<CxlMemModel>(device, config.xpline_bytes,
                                           config.cxl_volatile_buffer);
    default:
      return std::make_unique<AdrOptaneModel>();
  }
}

}  // namespace cclbt::pmsim
