// lockcheck: a deterministic lockset / lock-order sanitizer for the
// simulator's virtual-time workloads (DESIGN.md §16). The concurrency-
// discipline sibling of pmcheck (§11): pmcheck verifies the store→flush→
// fence protocol, lockcheck verifies the locking protocol those persists run
// under — the seam where NV-Traverse/FliT-class bugs live.
//
// Input streams:
//  * Lock events — every sync::Mutex/SharedMutex/TtasSpinLock/SeqLock in the
//    tree (src/common/lock.h) reports acquire/release/seq-read events through
//    the sync::LockObserver hook; LockCheck installs itself as the observer
//    while enabled.
//  * Memory events — PM cacheline writes arrive from PmDevice::FlushLine
//    (a flush is the commitment that the line was stored), reads from
//    PmDevice::ReadPm, publish points from Fence.
//
// Checks, one diagnostic class each:
//  1. unlocked_write     Eraser-style: a PM line that more than one worker
//                        has written is written while the writer holds no
//                        exclusive lock at all.
//  2. lockset_empty      The line's candidate lockset — the intersection of
//                        exclusive locks held across all its multi-worker
//                        writes — just became empty: no single lock protects
//                        it consistently.
//  3. seq_write_no_bump  The candidate lockset said a seqlock guards the
//                        line, but this write happened without write-holding
//                        it (no version bump ⇒ concurrent optimistic readers
//                        cannot detect the mutation).
//  4. lock_cycle         The class-level lock-order graph (edges added on
//                        every *blocking* acquire, keyed by lock name) just
//                        gained a cycle: deadlock potential. Try-acquires
//                        cannot block and add no edges; same-name edges
//                        (key-ordered sibling latches) are skipped.
//  5. fence_publish_gap  A fence commits a line whose candidate lockset is
//                        non-empty but entirely unheld by the fencing worker:
//                        the protecting lock was released between flush and
//                        fence, so another thread may redirty the line
//                        mid-publish. Informational by default; escalated to
//                        a violation when pmcheck's shadow state confirms the
//                        line content actually changed since its flush
//                        (the cross-check against §11's checker).
//
// False-positive machinery, tuned so a clean CCL-BTree or service run is
// zero-diagnostic (asserted in tests/lockcheck_test.cc):
//  * Per-line state machine Virgin → Exclusive(worker) → Shared →
//    SharedModified: single-writer data (per-worker WALs) never leaves
//    Exclusive and is exempt.
//  * Reads never refine the candidate lockset — lockless optimistic readers
//    are this codebase's *design* (seqlock validation), not a bug. Seqlock
//    read sections are tracked for statistics instead.
//  * Single-threaded phases (pool format, recovery boot: one live context)
//    re-own written lines.
//  * LockCheckResetRange: allocators call it on ownership transfer (slab
//    slot reuse, WAL chunk recycling) so a line's history does not leak
//    across logical owners.
//  * LockCheckExpect annotates intentional protocol exceptions in place,
//    mirroring PmCheckExpect: reads under an active kLocksetEmpty scope are
//    protocol-synchronized by construction (recovery's timestamp-ordered log
//    scan) and skip the state machine entirely.
//
// Enablement and cost: CCL_LOCKCHECK=1 (or DeviceConfig::lockcheck /
// RunConfig::lockcheck). Disabled, the wrappers pay one atomic load + branch
// per lock operation and the device one pointer test per flush/fence/read —
// no pmsim calls, no virtual-time writes, so virtual metrics are bit-
// identical with the checker on, off, or absent (DESIGN.md §10).
#ifndef SRC_PMSIM_LOCKCHECK_H_
#define SRC_PMSIM_LOCKCHECK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/lock.h"
#include "src/trace/component.h"

namespace cclbt::pmsim {

class PmDevice;
class PmCheck;
class ThreadContext;

enum class LockCheckClass : uint8_t {
  kUnlockedWrite = 0,
  kLocksetEmpty = 1,
  kSeqWriteNoBump = 2,
  kLockCycle = 3,
  kFencePublishGap = 4,
  kCount = 5,
};

inline constexpr int kNumLockCheckClasses = static_cast<int>(LockCheckClass::kCount);

// Stable slug used in .pmtrace dumps and `pmctl locks` output.
const char* LockCheckClassName(LockCheckClass cls);

// One entry of the recent-event ring attached to every diagnostic. Hot spin
// locks (per-DIMM XPBuffer, trace rings) are checked but not recorded here —
// they would flood the ring with one pair per flush and drown the context
// that actually explains a violation.
struct LockCheckEvent {
  enum class Kind : uint8_t {
    kAcquire = 0,   // detail = 1 exclusive / 0 shared
    kRelease = 1,
    kSeqBegin = 2,  // optimistic read section opened
    kSeqRetire = 3, // detail = 1 validated / 0 failed
    kWrite = 4,     // detail = line offset
    kRead = 5,      // detail = first line offset of the range
    kFence = 6,     // detail = pending line count
    kReset = 7,     // detail = first line offset (ownership transfer)
    kCrash = 8,
  };
  Kind kind = Kind::kAcquire;
  trace::Component comp = trace::Component::kOther;
  uint16_t worker = 0;
  const char* lock = "";  // static lock name, "" when not lock-related
  uint64_t detail = 0;
};

const char* LockCheckEventKindName(LockCheckEvent::Kind kind);

struct LockCheckDiagnostic {
  LockCheckClass cls = LockCheckClass::kUnlockedWrite;
  uint64_t line = 0;  // line-aligned pool offset (0 for lock_cycle)
  trace::Component comp = trace::Component::kOther;
  uint16_t worker = 0;
  // Primary lock name: the guarding seqlock (class 3), the held-from node of
  // the cycle edge (class 4), or the lockset remnant (classes 1-2, 5);
  // "none" when no lock is involved.
  const char* lock = "none";
  // Second lock name: the acquired-to node of the cycle edge (class 4).
  const char* lock2 = "none";
  // Static single-token cause string (no spaces; dump-format safe).
  const char* detail = "";
  // True for informational findings (class 5 without pmcheck confirmation).
  bool info = false;
  // Up to kRecentEventsPerDiagnostic events preceding the violation,
  // oldest first.
  std::vector<LockCheckEvent> recent;
};

struct LockCheckReport {
  bool enabled = false;
  std::array<uint64_t, kNumLockCheckClasses> counts{};
  std::array<uint64_t, kNumLockCheckClasses> suppressed{};
  std::array<uint64_t, kNumLockCheckClasses> info{};
  uint64_t locks_tracked = 0;
  uint64_t lines_tracked = 0;
  uint64_t order_edges = 0;
  uint64_t seq_read_sections = 0;
  uint64_t seq_validate_failures = 0;
  // Diagnostics beyond the retention cap are counted but not materialized;
  // a nonzero value here means the list below is incomplete (never read a
  // capped run as clean — the counts above stay exact).
  uint64_t diagnostics_truncated = 0;
  std::vector<LockCheckDiagnostic> diagnostics;

  // Unsuppressed violations (what `pmctl locks` gates its exit status on).
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts) {
      sum += c;
    }
    return sum;
  }
  uint64_t total_suppressed() const {
    uint64_t sum = 0;
    for (uint64_t c : suppressed) {
      sum += c;
    }
    return sum;
  }
  uint64_t total_info() const {
    uint64_t sum = 0;
    for (uint64_t c : info) {
      sum += c;
    }
    return sum;
  }
};

// Scoped whitelist for an *intentional* protocol exception, mirroring
// PmCheckExpect: while alive on the calling thread, diagnostics of `cls`
// raised by this thread are counted as suppressed instead of reported.
// Additionally, PM reads under an active kLocksetEmpty scope skip the
// lockset state machine entirely — the annotation marks reads that are
// synchronized by a protocol the checker cannot see (recovery's
// timestamp-ordered WAL scan). Zero device dependency: annotated code builds
// and runs unchanged when lockcheck is off.
class LockCheckExpect {
 public:
  explicit LockCheckExpect(LockCheckClass cls);
  ~LockCheckExpect();

  LockCheckExpect(const LockCheckExpect&) = delete;
  LockCheckExpect& operator=(const LockCheckExpect&) = delete;

  static bool ActiveFor(LockCheckClass cls);

 private:
  LockCheckClass cls_;
};

// Ownership-transfer reset: allocators call this when a PM range changes
// logical owner (slab slot handed out, WAL chunk recycled) so stale lockset
// history cannot produce false sharing reports. Resolves the calling
// thread's context; a no-op when no context is bound or lockcheck is off.
void LockCheckResetRange(const void* addr, size_t len);

// The checker proper; owned by PmDevice when enabled, absent otherwise
// (the pointer doubles as the runtime gate, like pmcheck). Installs itself
// as the process-wide sync::LockObserver for its lifetime.
//
// Locking: shared state serializes on one plain std::mutex. It is
// deliberately NOT a sync::Mutex — the checker's own serialization must be
// invisible to the checker (a sync lock here would recurse into the observer
// hooks). Per-thread state (held-lock stack, open seq sections, Expect
// depths) is thread-local and lock-free. Hooks never advance virtual clocks
// and never touch Stats.
class LockCheck final : public sync::LockObserver {
 public:
  explicit LockCheck(PmDevice& device);
  ~LockCheck();

  LockCheck(const LockCheck&) = delete;
  LockCheck& operator=(const LockCheck&) = delete;

  // --- sync::LockObserver ----------------------------------------------------
  void OnLockAcquire(const void* lock, const char* name, sync::LockKind kind,
                     bool exclusive, bool trylock) override;
  void OnLockRelease(const void* lock, const char* name, sync::LockKind kind,
                     bool exclusive) override;
  void OnSeqReadBegin(const void* lock, const char* name) override;
  void OnSeqReadRetire(const void* lock, const char* name, bool validated) override;

  // --- hooks called by PmDevice ---------------------------------------------
  // FlushLine: the commitment that `line` was stored by ctx's worker.
  void OnPmWrite(const ThreadContext& ctx, uintptr_t line);
  // ReadPm over [offset, offset+len).
  void OnPmRead(const ThreadContext& ctx, uintptr_t offset, size_t len);
  // Fence about to commit `pending`. `pmcheck` (may be null) supplies the
  // redirtied-since-flush cross-check for class 5 escalation.
  void OnFencePending(const ThreadContext& ctx, const std::vector<uintptr_t>& pending,
                      trace::Component comp, const PmCheck* pmcheck);
  // Crash()/CrashTorn(): line history dies with the working image.
  void OnCrash();
  // Live registered context count (single-threaded-phase rule).
  void OnContextCount(size_t live);
  // LockCheckResetRange lands here.
  void ResetRange(uintptr_t offset, size_t len);

  LockCheckReport Snapshot() const;

 private:
  struct LockInfo {
    const char* name = "";
    sync::LockKind kind = sync::LockKind::kMutex;
  };

  // Candidate locksets hold at most this many distinct lock instances; the
  // repo's deepest real nesting is 3 (bn latch + inner mutex + inner seq).
  static constexpr size_t kMaxLockset = 4;

  enum class LineState : uint8_t { kExclusive = 0, kShared = 1, kSharedModified = 2 };

  struct LineRec {
    LineState state = LineState::kExclusive;
    bool reported = false;        // classes 1-3: one diagnostic per line
    bool fence_reported = false;  // class 5: one diagnostic per line
    uint16_t owner = 0;           // worker id (stable across context rebinds)
    uint8_t nlocks = kLocksetUninit;
    std::array<uint32_t, kMaxLockset> lockset{};  // interned lock ids
  };
  static constexpr uint8_t kLocksetUninit = 0xFF;

  static constexpr size_t kEventRing = 64;
  static constexpr size_t kRecentEventsPerDiagnostic = 8;
  static constexpr size_t kMaxDiagnostics = 256;
  static constexpr size_t kMaxInfoDiagnostics = 16;

  uint32_t InternLocked(const void* lock, const char* name, sync::LockKind kind);
  void AppendEventLocked(LockCheckEvent::Kind kind, trace::Component comp,
                         uint16_t worker, const char* lock, uint64_t detail);
  void DiagLocked(LockCheckClass cls, uint64_t line, trace::Component comp,
                  uint16_t worker, const char* lock, const char* lock2,
                  const char* detail, bool info);
  // Adds name-level edge from→to; returns true (and materializes a class-4
  // diagnostic) when the edge closes a cycle.
  void AddOrderEdgeLocked(uint32_t from_name, uint32_t to_name, trace::Component comp,
                          uint16_t worker);
  bool ReachableLocked(uint32_t from_name, uint32_t to_name) const;
  uint32_t InternNameLocked(const char* name);

  PmDevice& device_;
  std::atomic<size_t> live_contexts_{0};

  // Checker-internal serialization; see the class comment for why this is a
  // raw std::mutex rather than a sync::Mutex.
  using CheckerMutex = std::mutex;  // lint_pm_api: allow
  mutable CheckerMutex mu_;
  bool observer_installed_ = false;

  // Lock instance registry: address → interned id; id → {name, kind}.
  std::unordered_map<const void*, uint32_t> lock_ids_;
  std::vector<LockInfo> locks_;

  // Per-cacheline shadow state, keyed by line-aligned pool offset.
  std::unordered_map<uint64_t, LineRec> lines_;

  // Name-level lock-order graph.
  std::unordered_map<std::string, uint32_t> name_ids_;
  std::vector<const char*> names_;
  std::vector<std::vector<uint32_t>> order_adj_;  // name id → successor name ids
  uint64_t order_edges_ = 0;

  uint64_t seq_read_sections_ = 0;
  uint64_t seq_validate_failures_ = 0;

  std::array<uint64_t, kNumLockCheckClasses> counts_{};
  std::array<uint64_t, kNumLockCheckClasses> suppressed_{};
  std::array<uint64_t, kNumLockCheckClasses> info_counts_{};
  uint64_t diagnostics_truncated_ = 0;
  size_t info_materialized_ = 0;
  std::vector<LockCheckDiagnostic> diagnostics_;
  std::array<LockCheckEvent, kEventRing> events_{};
  uint64_t events_seen_ = 0;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_LOCKCHECK_H_
