#include "src/pmsim/lockcheck.h"

#include <algorithm>
#include <cstring>

#include "src/pmsim/config.h"
#include "src/pmsim/device.h"
#include "src/pmsim/pmcheck.h"
#include "src/pmsim/thread_context.h"
#include "src/trace/trace.h"

namespace cclbt::pmsim {
namespace {

// Worker id stamped on events raised outside any bound ThreadContext (static
// registries touched from the main thread, test scaffolding).
constexpr uint16_t kNoWorker = 0xFFFF;

// ---------------------------------------------------------------------------
// Per-OS-thread shadow state. Correctness of thread-locals here rests on a
// structural property of the codebase: a logical worker's operation runs to
// completion on one OS thread before the driver rebinds the thread to another
// context (SetCurrent), and no lock is ever held across such a rebind — locks
// are acquired and released inside a single Upsert/Lookup/GC round. So "locks
// held by this OS thread" and "locks held by the current logical worker"
// coincide at every event the checker sees.
// ---------------------------------------------------------------------------

struct HeldLock {
  const void* lock = nullptr;
  const char* name = "";
  sync::LockKind kind = sync::LockKind::kMutex;
  bool exclusive = false;
};

// Deep enough for the repo's worst real nesting (tree mutex → bn latch →
// DIMM spinlock → trace ring ≈ 4) with a wide margin; overflow entries are
// dropped, which can only cause missed diagnostics, never false ones.
constexpr size_t kMaxHeld = 32;

thread_local HeldLock tl_held[kMaxHeld];
thread_local size_t tl_held_count = 0;

constinit thread_local int tl_lc_expect_depth[kNumLockCheckClasses] = {};

uint16_t CurrentWorker() {
  ThreadContext* ctx = ThreadContext::Current();
  return ctx ? static_cast<uint16_t>(ctx->worker_id()) : kNoWorker;
}

}  // namespace

const char* LockCheckClassName(LockCheckClass cls) {
  switch (cls) {
    case LockCheckClass::kUnlockedWrite: return "unlocked_write";
    case LockCheckClass::kLocksetEmpty: return "lockset_empty";
    case LockCheckClass::kSeqWriteNoBump: return "seq_write_no_bump";
    case LockCheckClass::kLockCycle: return "lock_cycle";
    case LockCheckClass::kFencePublishGap: return "fence_publish_gap";
    case LockCheckClass::kCount: break;
  }
  return "?";
}

const char* LockCheckEventKindName(LockCheckEvent::Kind kind) {
  switch (kind) {
    case LockCheckEvent::Kind::kAcquire: return "acquire";
    case LockCheckEvent::Kind::kRelease: return "release";
    case LockCheckEvent::Kind::kSeqBegin: return "seqbegin";
    case LockCheckEvent::Kind::kSeqRetire: return "seqretire";
    case LockCheckEvent::Kind::kWrite: return "write";
    case LockCheckEvent::Kind::kRead: return "read";
    case LockCheckEvent::Kind::kFence: return "fence";
    case LockCheckEvent::Kind::kReset: return "reset";
    case LockCheckEvent::Kind::kCrash: return "crash";
  }
  return "?";
}

// --- LockCheckExpect --------------------------------------------------------

LockCheckExpect::LockCheckExpect(LockCheckClass cls) : cls_(cls) {
  tl_lc_expect_depth[static_cast<int>(cls_)]++;
}

LockCheckExpect::~LockCheckExpect() { tl_lc_expect_depth[static_cast<int>(cls_)]--; }

bool LockCheckExpect::ActiveFor(LockCheckClass cls) {
  return tl_lc_expect_depth[static_cast<int>(cls)] > 0;
}

// --- free function ----------------------------------------------------------

void LockCheckResetRange(const void* addr, size_t len) {
  ThreadContext* ctx = ThreadContext::Current();
  if (ctx == nullptr) {
    return;
  }
  LockCheck* lc = ctx->device().lockcheck();
  if (lc == nullptr || !ctx->device().Contains(addr)) {
    return;
  }
  lc->ResetRange(ctx->device().OffsetOf(addr), len);
}

// --- LockCheck --------------------------------------------------------------

LockCheck::LockCheck(PmDevice& device) : device_(device) {
  observer_installed_ = sync::InstallObserver(this);
  // If another enabled device already owns the observer slot (tests building
  // two checked devices), this instance still sees its own PmDevice hooks;
  // only the lock-event stream goes to the first checker. Deterministic
  // either way — installation order is program order.
}

LockCheck::~LockCheck() {
  if (observer_installed_) {
    sync::RemoveObserver(this);
  }
}

uint32_t LockCheck::InternLocked(const void* lock, const char* name, sync::LockKind kind) {
  auto [it, inserted] = lock_ids_.try_emplace(lock, static_cast<uint32_t>(locks_.size()));
  if (inserted) {
    locks_.push_back(LockInfo{name, kind});
  } else {
    // Address reuse after destruction (baseline handle churn): rebind the
    // slot to the new identity rather than reporting against a stale name.
    locks_[it->second] = LockInfo{name, kind};
  }
  return it->second;
}

uint32_t LockCheck::InternNameLocked(const char* name) {
  auto [it, inserted] = name_ids_.try_emplace(name, static_cast<uint32_t>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    order_adj_.emplace_back();
  }
  return it->second;
}

bool LockCheck::ReachableLocked(uint32_t from_name, uint32_t to_name) const {
  if (from_name == to_name) {
    return true;
  }
  std::vector<bool> visited(names_.size(), false);
  std::vector<uint32_t> stack = {from_name};
  visited[from_name] = true;
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    for (uint32_t next : order_adj_[n]) {
      if (next == to_name) {
        return true;
      }
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

void LockCheck::AddOrderEdgeLocked(uint32_t from_name, uint32_t to_name,
                                   trace::Component comp, uint16_t worker) {
  if (from_name == to_name) {
    // Same-name edges are key-ordered sibling chains by convention
    // (TryMergeLeft locks bn latches in key order); the checker cannot rank
    // instances, so it trusts the convention rather than reporting every
    // sibling pair as a cycle.
    return;
  }
  std::vector<uint32_t>& adj = order_adj_[from_name];
  if (std::find(adj.begin(), adj.end(), to_name) != adj.end()) {
    return;  // known edge; any cycle it closes was reported when it was new
  }
  // New edge from→to closes a cycle iff `from` is already reachable from
  // `to`. Report before inserting so the diagnostic names the edge that
  // completed the cycle.
  if (ReachableLocked(to_name, from_name)) {
    DiagLocked(LockCheckClass::kLockCycle, 0, comp, worker, names_[from_name],
               names_[to_name], "cycle-closing-edge", /*info=*/false);
  }
  adj.push_back(to_name);
  order_edges_++;
}

void LockCheck::AppendEventLocked(LockCheckEvent::Kind kind, trace::Component comp,
                                  uint16_t worker, const char* lock, uint64_t detail) {
  LockCheckEvent& ev = events_[events_seen_ % kEventRing];
  ev.kind = kind;
  ev.comp = comp;
  ev.worker = worker;
  ev.lock = lock;
  ev.detail = detail;
  events_seen_++;
}

void LockCheck::DiagLocked(LockCheckClass cls, uint64_t line, trace::Component comp,
                           uint16_t worker, const char* lock, const char* lock2,
                           const char* detail, bool info) {
  const int idx = static_cast<int>(cls);
  if (LockCheckExpect::ActiveFor(cls)) {
    suppressed_[idx]++;
    return;
  }
  if (info) {
    info_counts_[idx]++;
    if (info_materialized_ >= kMaxInfoDiagnostics) {
      diagnostics_truncated_++;
      return;
    }
    info_materialized_++;
  } else {
    counts_[idx]++;
    if (diagnostics_.size() - info_materialized_ >= kMaxDiagnostics) {
      diagnostics_truncated_++;
      return;
    }
  }
  LockCheckDiagnostic diag;
  diag.cls = cls;
  diag.line = line;
  diag.comp = comp;
  diag.worker = worker;
  diag.lock = lock;
  diag.lock2 = lock2;
  diag.detail = detail;
  diag.info = info;
  const uint64_t have = std::min<uint64_t>(events_seen_, kRecentEventsPerDiagnostic);
  diag.recent.reserve(have);
  for (uint64_t i = events_seen_ - have; i < events_seen_; ++i) {
    diag.recent.push_back(events_[i % kEventRing]);
  }
  diagnostics_.push_back(std::move(diag));
}

// --- sync::LockObserver -----------------------------------------------------

void LockCheck::OnLockAcquire(const void* lock, const char* name, sync::LockKind kind,
                              bool exclusive, bool trylock) {
  const uint16_t worker = CurrentWorker();
  const trace::Component comp = trace::CurrentComponent();
  {
    std::lock_guard<CheckerMutex> lk(mu_);
    InternLocked(lock, name, kind);
    if (!trylock) {
      // A blocking acquire can wait on every lock currently held by this
      // thread; record the ordering edges (held → acquired). Try-acquires
      // cannot block and add no edges.
      const uint32_t to = InternNameLocked(name);
      for (size_t i = 0; i < tl_held_count; ++i) {
        AddOrderEdgeLocked(InternNameLocked(tl_held[i].name), to, comp, worker);
      }
    }
    if (kind != sync::LockKind::kSpin) {
      // Hot spinlocks (per-DIMM XPBuffer, trace rings) fire once per flush;
      // recording them would flood the 64-entry ring with noise. They still
      // feed the order graph and the held stack above/below.
      AppendEventLocked(LockCheckEvent::Kind::kAcquire, comp, worker, name,
                        exclusive ? 1 : 0);
    }
  }
  if (tl_held_count < kMaxHeld) {
    tl_held[tl_held_count++] = HeldLock{lock, name, kind, exclusive};
  }
}

void LockCheck::OnLockRelease(const void* lock, const char* name, sync::LockKind kind,
                              bool exclusive) {
  // Innermost-first scan: recursive shared holds release in LIFO order.
  for (size_t i = tl_held_count; i > 0; --i) {
    if (tl_held[i - 1].lock == lock && tl_held[i - 1].exclusive == exclusive) {
      std::memmove(&tl_held[i - 1], &tl_held[i], (tl_held_count - i) * sizeof(HeldLock));
      tl_held_count--;
      break;
    }
    // A release with no matching held entry is ignored: the lock may have
    // been acquired before this checker was installed (device construction
    // races tree setup in tests), or the stack overflowed. Both can only
    // lose information, never invent it.
  }
  if (kind == sync::LockKind::kSpin) {
    return;
  }
  const uint16_t worker = CurrentWorker();
  std::lock_guard<CheckerMutex> lk(mu_);
  AppendEventLocked(LockCheckEvent::Kind::kRelease, trace::CurrentComponent(), worker,
                    name, exclusive ? 1 : 0);
}

void LockCheck::OnSeqReadBegin(const void* lock, const char* name) {
  const uint16_t worker = CurrentWorker();
  std::lock_guard<CheckerMutex> lk(mu_);
  InternLocked(lock, name, sync::LockKind::kSeqLock);
  seq_read_sections_++;
  AppendEventLocked(LockCheckEvent::Kind::kSeqBegin, trace::CurrentComponent(), worker,
                    name, 0);
}

void LockCheck::OnSeqReadRetire(const void* lock, const char* name, bool validated) {
  (void)lock;
  const uint16_t worker = CurrentWorker();
  std::lock_guard<CheckerMutex> lk(mu_);
  if (!validated) {
    seq_validate_failures_++;
  }
  AppendEventLocked(LockCheckEvent::Kind::kSeqRetire, trace::CurrentComponent(), worker,
                    name, validated ? 1 : 0);
}

// --- PmDevice hooks ---------------------------------------------------------

void LockCheck::OnPmWrite(const ThreadContext& ctx, uintptr_t line) {
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  const trace::Component comp = trace::CurrentComponent();

  // Exclusive locks held by the writing thread, gathered outside mu_ (the
  // thread-local stack needs no lock). Shared holds are deliberately
  // excluded: a shared hold cannot justify a *write*.
  const HeldLock* held_excl[kMaxHeld];
  size_t n_held = 0;
  for (size_t i = 0; i < tl_held_count; ++i) {
    if (tl_held[i].exclusive) {
      held_excl[n_held++] = &tl_held[i];
    }
  }

  std::lock_guard<CheckerMutex> lk(mu_);
  AppendEventLocked(LockCheckEvent::Kind::kWrite, comp, worker, "", line);

  if (live_contexts_.load(std::memory_order_relaxed) <= 1) {
    // Single-threaded phase (pool format, recovery boot): the sole live
    // worker owns everything it writes, whatever its lock discipline.
    LineRec& rec = lines_[line];
    rec.state = LineState::kExclusive;
    rec.owner = worker;
    rec.nlocks = kLocksetUninit;
    return;
  }

  auto [it, inserted] = lines_.try_emplace(line);
  LineRec& rec = it->second;
  if (inserted) {
    rec.owner = worker;  // first access: exclusively owned
    return;
  }

  if (rec.state != LineState::kSharedModified) {
    if (rec.state == LineState::kExclusive && rec.owner == worker) {
      return;  // still single-writer
    }
    // First write by a second party: the line is now shared-modified and the
    // candidate lockset starts as everything exclusively held right now.
    rec.state = LineState::kSharedModified;
    rec.owner = worker;
    rec.nlocks = 0;
    for (size_t i = 0; i < n_held && rec.nlocks < kMaxLockset; ++i) {
      rec.lockset[rec.nlocks++] =
          InternLocked(held_excl[i]->lock, held_excl[i]->name, held_excl[i]->kind);
    }
    if (rec.nlocks == 0) {
      DiagLocked(LockCheckClass::kUnlockedWrite, line, comp, worker, "none", "none",
                 "multi-worker-write-holds-no-exclusive-lock", /*info=*/false);
      rec.reported = true;
    }
    return;
  }

  if (rec.reported) {
    return;  // one lockset diagnostic per line
  }
  if (rec.nlocks == kLocksetUninit) {
    rec.nlocks = 0;  // defensive; SharedModified always has an initialized set
  }

  // Eraser step: C ← C ∩ held. Track what the intersection removed so the
  // diagnostic can name the lock the writer *used* to hold.
  uint32_t removed[kMaxLockset];
  uint8_t n_removed = 0;
  uint32_t kept[kMaxLockset];
  uint8_t n_kept = 0;
  for (uint8_t i = 0; i < rec.nlocks; ++i) {
    const uint32_t id = rec.lockset[i];
    bool held_now = false;
    for (size_t j = 0; j < n_held; ++j) {
      auto hit = lock_ids_.find(held_excl[j]->lock);
      if (hit != lock_ids_.end() && hit->second == id) {
        held_now = true;
        break;
      }
    }
    if (held_now) {
      kept[n_kept++] = id;
    } else {
      removed[n_removed++] = id;
    }
  }
  const uint8_t old_n = rec.nlocks;
  rec.nlocks = n_kept;
  std::copy(kept, kept + n_kept, rec.lockset.begin());

  if (old_n != 0 && n_kept == 0) {
    rec.reported = true;
    if (n_held == 0) {
      DiagLocked(LockCheckClass::kUnlockedWrite, line, comp, worker,
                 locks_[removed[0]].name, "none", "write-holds-no-exclusive-lock",
                 /*info=*/false);
      return;
    }
    // Prefer naming a dropped seqlock: writing seqlock-guarded data without
    // the version bump leaves optimistic readers blind to the mutation.
    for (uint8_t i = 0; i < n_removed; ++i) {
      if (locks_[removed[i]].kind == sync::LockKind::kSeqLock) {
        DiagLocked(LockCheckClass::kSeqWriteNoBump, line, comp, worker,
                   locks_[removed[i]].name, "none", "write-without-version-bump",
                   /*info=*/false);
        return;
      }
    }
    DiagLocked(LockCheckClass::kLocksetEmpty, line, comp, worker,
               locks_[removed[0]].name, "none", "no-common-lock-across-writers",
               /*info=*/false);
  }
}

void LockCheck::OnPmRead(const ThreadContext& ctx, uintptr_t offset, size_t len) {
  if (LockCheckExpect::ActiveFor(LockCheckClass::kLocksetEmpty)) {
    // Reads inside an Expect(kLocksetEmpty) scope are synchronized by a
    // protocol the checker cannot see (recovery's parallel WAL scan orders by
    // timestamp, not locks); they must not demote lines to Shared.
    return;
  }
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  const uintptr_t first = offset & ~static_cast<uintptr_t>(kCachelineBytes - 1);
  const uintptr_t last =
      (offset + (len == 0 ? 0 : len - 1)) & ~static_cast<uintptr_t>(kCachelineBytes - 1);

  std::lock_guard<CheckerMutex> lk(mu_);
  AppendEventLocked(LockCheckEvent::Kind::kRead, trace::CurrentComponent(), worker, "",
                    first);
  if (live_contexts_.load(std::memory_order_relaxed) <= 1) {
    return;
  }
  for (uintptr_t line = first; line <= last; line += kCachelineBytes) {
    auto [it, inserted] = lines_.try_emplace(line);
    LineRec& rec = it->second;
    if (inserted) {
      rec.owner = worker;
    } else if (rec.state == LineState::kExclusive && rec.owner != worker) {
      // Reads never refine the candidate lockset (optimistic lockless
      // readers are the design here, validated by seqlocks); they only move
      // the line out of the single-writer exemption.
      rec.state = LineState::kShared;
    }
  }
}

void LockCheck::OnFencePending(const ThreadContext& ctx,
                               const std::vector<uintptr_t>& pending,
                               trace::Component comp, const PmCheck* pmcheck) {
  const auto worker = static_cast<uint16_t>(ctx.worker_id());

  struct Candidate {
    uint64_t line;
    const char* lock;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<CheckerMutex> lk(mu_);
    AppendEventLocked(LockCheckEvent::Kind::kFence, comp, worker, "", pending.size());
    // Interned ids of everything held (any mode — even a shared hold keeps
    // other writers out for the duration of the publish).
    uint32_t held_ids[kMaxHeld];
    size_t n_held = 0;
    for (size_t i = 0; i < tl_held_count; ++i) {
      auto hit = lock_ids_.find(tl_held[i].lock);
      if (hit != lock_ids_.end()) {
        held_ids[n_held++] = hit->second;
      }
    }
    for (uintptr_t line : pending) {
      auto it = lines_.find(line);
      if (it == lines_.end()) {
        continue;
      }
      LineRec& rec = it->second;
      if (rec.state != LineState::kSharedModified || rec.fence_reported ||
          rec.nlocks == 0 || rec.nlocks == kLocksetUninit) {
        continue;
      }
      bool any_held = false;
      for (uint8_t i = 0; i < rec.nlocks && !any_held; ++i) {
        for (size_t j = 0; j < n_held; ++j) {
          if (held_ids[j] == rec.lockset[i]) {
            any_held = true;
            break;
          }
        }
      }
      if (!any_held) {
        // The lock that consistently protected this line was released before
        // the fence that publishes it: another thread may slip in and
        // redirty the line mid-publish.
        rec.fence_reported = true;
        candidates.push_back(Candidate{line, locks_[rec.lockset[0]].name});
      }
    }
  }
  if (candidates.empty()) {
    return;
  }
  // Cross-check against pmcheck's shadow state *outside* our mutex (its hooks
  // never call back into lockcheck, but the one-way mu_ ordering keeps the
  // two checkers trivially deadlock-free). A confirmed redirty upgrades the
  // finding from informational to a violation: the race window didn't just
  // exist, something wrote into it.
  for (const Candidate& c : candidates) {
    const bool redirtied = pmcheck != nullptr && pmcheck->LineRedirtiedSinceFlush(c.line);
    std::lock_guard<CheckerMutex> lk(mu_);
    DiagLocked(LockCheckClass::kFencePublishGap, c.line, comp, worker, c.lock, "none",
               redirtied ? "redirtied-since-flush" : "publish-window-unprotected",
               /*info=*/!redirtied);
  }
}

void LockCheck::OnCrash() {
  std::lock_guard<CheckerMutex> lk(mu_);
  AppendEventLocked(LockCheckEvent::Kind::kCrash, trace::CurrentComponent(),
                    CurrentWorker(), "", 0);
  // Line history dies with the working image; the order graph and counters
  // describe the whole run and survive.
  lines_.clear();
}

void LockCheck::OnContextCount(size_t live) {
  live_contexts_.store(live, std::memory_order_relaxed);
}

void LockCheck::ResetRange(uintptr_t offset, size_t len) {
  if (len == 0) {
    return;
  }
  const uintptr_t first = offset & ~static_cast<uintptr_t>(kCachelineBytes - 1);
  const uintptr_t last =
      (offset + len - 1) & ~static_cast<uintptr_t>(kCachelineBytes - 1);
  std::lock_guard<CheckerMutex> lk(mu_);
  AppendEventLocked(LockCheckEvent::Kind::kReset, trace::CurrentComponent(),
                    CurrentWorker(), "", first);
  for (uintptr_t line = first; line <= last; line += kCachelineBytes) {
    lines_.erase(line);
  }
}

LockCheckReport LockCheck::Snapshot() const {
  std::lock_guard<CheckerMutex> lk(mu_);
  LockCheckReport report;
  report.enabled = true;
  report.counts = counts_;
  report.suppressed = suppressed_;
  report.info = info_counts_;
  report.locks_tracked = locks_.size();
  report.lines_tracked = lines_.size();
  report.order_edges = order_edges_;
  report.seq_read_sections = seq_read_sections_;
  report.seq_validate_failures = seq_validate_failures_;
  report.diagnostics_truncated = diagnostics_truncated_;
  report.diagnostics = diagnostics_;
  return report;
}

}  // namespace cclbt::pmsim
