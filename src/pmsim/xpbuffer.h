// Model of one DIMM's on-chip write-combining buffer (the XPBuffer).
//
// Behaviour modeled (per Yang et al. FAST'20 and the paper's §2.1):
//  * 16 KB of 256 B XPLine entries, fully associative, LRU replacement.
//  * A cacheline flush whose XPLine is resident merges into the entry (no
//    media traffic).
//  * A miss on a full buffer evicts the LRU entry: one 256 B media write,
//    plus a 256 B media read first if the evicted XPLine was only partially
//    overwritten (read-modify-write).
//  * Reads are served from the buffer when the XPLine is resident.
#ifndef SRC_PMSIM_XPBUFFER_H_
#define SRC_PMSIM_XPBUFFER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "src/pmsim/config.h"

namespace cclbt::pmsim {

// Result of pushing one cacheline into the buffer.
struct XpBufferResult {
  bool evicted = false;        // an XPLine was written to media
  bool rmw = false;            // ... and required a read-modify-write
  StreamTag evicted_tag = StreamTag::kOther;
};

class XpBuffer {
 public:
  // `lines_per_unit` = media unit bytes / 64 (4 for a 256 B XPLine, up to 64
  // for a 4 KB flash page on CXL-flash-like devices, paper §6).
  explicit XpBuffer(size_t entries, int lines_per_unit = static_cast<int>(kLinesPerXpline))
      : capacity_(entries),
        full_mask_(lines_per_unit >= 64 ? ~0ULL : (1ULL << lines_per_unit) - 1) {}

  XpBuffer(const XpBuffer&) = delete;
  XpBuffer& operator=(const XpBuffer&) = delete;

  // A cacheline flush for XPLine `xpline` arrived; `line_in_xpline` in [0,4).
  // `tag` classifies the flushing stream for attribution at eviction time.
  XpBufferResult OnLineFlush(uint64_t xpline, int line_in_xpline, StreamTag tag);

  // A PM read touching `xpline`. Returns true if served from the buffer.
  bool OnRead(uint64_t xpline);

  // Evict everything (e.g. end-of-run accounting). Calls `sink(rmw, tag)` per
  // evicted XPLine.
  template <typename Sink>
  void Drain(Sink&& sink) {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto& [xpline, entry] : map_) {
      sink(entry.dirty_mask != full_mask_, entry.tag);
    }
    map_.clear();
    lru_.clear();
  }

  size_t resident() const {
    std::lock_guard<std::mutex> guard(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_it;
    uint64_t dirty_mask = 0;
    StreamTag tag = StreamTag::kOther;
  };

  size_t capacity_;
  uint64_t full_mask_;
  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  // front == most recent
  std::unordered_map<uint64_t, Entry> map_;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_XPBUFFER_H_
