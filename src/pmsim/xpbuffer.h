// Model of one DIMM's on-chip write-combining buffer (the XPBuffer).
//
// Behaviour modeled (per Yang et al. FAST'20 and the paper's §2.1):
//  * 16 KB of 256 B XPLine entries, fully associative, LRU replacement.
//  * A cacheline flush whose XPLine is resident merges into the entry (no
//    media traffic).
//  * A miss on a full buffer evicts the LRU entry: one 256 B media write,
//    plus a 256 B media read first if the evicted XPLine was only partially
//    overwritten (read-modify-write).
//  * Reads are served from the buffer when the XPLine is resident.
//
// Implementation: every structure is preallocated at construction — a flat
// open-addressing table (linear probing, backward-shift deletion) indexing
// into a slot array whose entries form an intrusive doubly-linked LRU list.
// OnLineFlush/OnRead perform zero heap allocations and touch one short probe
// sequence plus a couple of slot-array cachelines. LRU order, eviction
// choice and RMW classification are identical to the previous
// std::list/std::unordered_map implementation, so all virtual-time results
// are bit-for-bit unchanged.
#ifndef SRC_PMSIM_XPBUFFER_H_
#define SRC_PMSIM_XPBUFFER_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/lock.h"
#include "src/pmsim/config.h"
#include "src/trace/component.h"

namespace cclbt::pmsim {

// The per-DIMM buffer lock: a test-and-test-and-set spinlock (critical
// sections are a few dozen nanoseconds and per-DIMM sharding keeps real
// contention low, so the uncontended exchange beats a std::mutex). The
// annotated wrapper in src/common/lock.h carries the exact TTAS body this
// used to hand-roll, plus the capability annotations and lockcheck
// observer hook.
using XpBufferLock = sync::TtasSpinLock;

// Result of pushing one cacheline into the buffer.
struct XpBufferResult {
  bool evicted = false;        // an XPLine was written to media
  bool rmw = false;            // ... and required a read-modify-write
  StreamTag evicted_tag = StreamTag::kOther;
  // Code-side attribution: the trace::Component whose scope buffered the
  // evicted XPLine (stamped at insertion, like evicted_tag).
  trace::Component evicted_comp = trace::Component::kOther;
  uint64_t evicted_xpline = 0;  // media unit index of the eviction
};

class XpBuffer {
 public:
  // `lines_per_unit` = media unit bytes / 64 (4 for a 256 B XPLine, up to 64
  // for a 4 KB flash page on CXL-flash-like devices, paper §6).
  explicit XpBuffer(size_t entries, int lines_per_unit = static_cast<int>(kLinesPerXpline));

  XpBuffer(const XpBuffer&) = delete;
  XpBuffer& operator=(const XpBuffer&) = delete;

  // A cacheline flush for XPLine `xpline` arrived; `line_in_xpline` in [0,4).
  // `tag` classifies the flushing stream and `comp` the flushing code, both
  // for attribution at eviction time. Defined inline below: this is the
  // single hottest function in the simulator and the call sits on every
  // committed line.
  XpBufferResult OnLineFlush(uint64_t xpline, int line_in_xpline, StreamTag tag,
                             trace::Component comp = trace::Component::kOther);

  // A PM read touching `xpline`. Returns true if served from the buffer.
  bool OnRead(uint64_t xpline);

  // The per-DIMM lock, exposed so the device can piggyback its DIMM
  // write-server clock update on the buffer's critical section (one lock
  // round-trip per committed line instead of lock + separate CAS).
  XpBufferLock& mutex() const RETURN_CAPABILITY(mu_) { return mu_; }
  // Variants for callers already holding mutex().
  XpBufferResult OnLineFlushLocked(uint64_t xpline, int line_in_xpline, StreamTag tag,
                                   trace::Component comp = trace::Component::kOther)
      REQUIRES(mu_);
  bool OnReadLocked(uint64_t xpline) REQUIRES(mu_);

  // Evict everything (e.g. end-of-run accounting). Calls
  // `sink(rmw, tag, comp, xpline)` per evicted XPLine. Drained lines do not
  // count toward evictions().
  template <typename Sink>
  void Drain(Sink&& sink) {
    sync::LockGuard<XpBufferLock> guard(mu_);
    for (int32_t s = lru_head_; s != kNil; s = slots_[static_cast<size_t>(s)].next) {
      const Slot& slot = slots_[static_cast<size_t>(s)];
      sink(slot.dirty_mask != full_mask_, slot.tag, slot.comp, slot.xpline);
    }
    ResetLocked();
  }

  size_t resident() const {
    sync::LockGuard<XpBufferLock> guard(mu_);
    return size_;
  }

  // Lifetime conservation counters (for stress tests): every XPLine inserted
  // is eventually either evicted or still resident, so at any quiesced point
  // insertions() == evictions() + resident() (modulo Drain(), which resets
  // the buffer without counting evictions).
  uint64_t insertions() const {
    sync::LockGuard<XpBufferLock> guard(mu_);
    return insertions_;
  }
  uint64_t evictions() const {
    sync::LockGuard<XpBufferLock> guard(mu_);
    return evictions_;
  }

 private:
  static constexpr int32_t kNil = -1;

  struct Slot {
    uint64_t xpline = 0;
    uint64_t dirty_mask = 0;
    int32_t prev = kNil;       // intrusive LRU list; head == most recent
    int32_t next = kNil;       // doubles as the free-list link for unused slots
    int32_t table_pos = kNil;  // current position in table_, kept in sync by
                               // insertion and backward-shift deletion so
                               // eviction needs no second hash probe
    StreamTag tag = StreamTag::kOther;
    trace::Component comp = trace::Component::kOther;
  };

  // Table entries carry the key alongside the slot index: probe loops then
  // touch a single array (one dependent load per step) instead of chasing
  // table_ -> slots_ on every comparison, which matters because the hot path
  // runs up to three probe sequences per eviction (find, erase, reinsert).
  struct TableEntry {
    uint64_t xpline = 0;
    int32_t slot = kNil;  // kNil marks an empty table position
  };

  size_t Home(uint64_t xpline) const {
    // Fibonacci multiplicative hash; table size is a power of two.
    return static_cast<size_t>((xpline * 0x9E3779B97F4A7C15ULL) >> 32) & table_mask_;
  }

  // Returns the slot index holding `xpline`, or kNil on a miss.
  int32_t Find(uint64_t xpline) const REQUIRES(mu_) {
    size_t i = Home(xpline);
    while (table_[i].slot != kNil) {
      if (table_[i].xpline == xpline) {
        return table_[i].slot;
      }
      i = (i + 1) & table_mask_;
    }
    return kNil;
  }

  // Backward-shift deletion at table position `idx` (keeps probe chains
  // intact without tombstones). Knuth Algorithm R: shift later chain members
  // back into the hole so every key stays reachable from its home position.
  void TableEraseAt(size_t idx) REQUIRES(mu_) {
    size_t hole = idx;
    size_t j = idx;
    table_[hole].slot = kNil;
    while (true) {
      j = (j + 1) & table_mask_;
      if (table_[j].slot == kNil) {
        return;
      }
      size_t home = Home(table_[j].xpline);
      // Move table_[j] into the hole iff the hole lies cyclically between its
      // home position and j.
      if (((j - home) & table_mask_) >= ((j - hole) & table_mask_)) {
        table_[hole] = table_[j];
        slots_[static_cast<size_t>(table_[j].slot)].table_pos = static_cast<int32_t>(hole);
        table_[j].slot = kNil;
        hole = j;
      }
    }
  }

  void LruUnlink(int32_t s) REQUIRES(mu_) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    if (slot.prev != kNil) {
      slots_[static_cast<size_t>(slot.prev)].next = slot.next;
    } else {
      lru_head_ = slot.next;
    }
    if (slot.next != kNil) {
      slots_[static_cast<size_t>(slot.next)].prev = slot.prev;
    } else {
      lru_tail_ = slot.prev;
    }
  }

  void LruPushFront(int32_t s) REQUIRES(mu_) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    slot.prev = kNil;
    slot.next = lru_head_;
    if (lru_head_ != kNil) {
      slots_[static_cast<size_t>(lru_head_)].prev = s;
    }
    lru_head_ = s;
    if (lru_tail_ == kNil) {
      lru_tail_ = s;
    }
  }

  void LruMoveToFront(int32_t s) REQUIRES(mu_) {
    if (lru_head_ != s) {
      LruUnlink(s);
      LruPushFront(s);
    }
  }

  void ResetLocked() REQUIRES(mu_);

  const size_t capacity_;
  const uint64_t full_mask_;
  size_t table_mask_ = 0;  // table_.size() - 1

  mutable XpBufferLock mu_{"pm.xpbuffer"};
  size_t size_ GUARDED_BY(mu_) = 0;
  int32_t lru_head_ GUARDED_BY(mu_) = kNil;
  int32_t lru_tail_ GUARDED_BY(mu_) = kNil;
  int32_t free_head_ GUARDED_BY(mu_) = kNil;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  std::vector<Slot> slots_ GUARDED_BY(mu_);   // capacity_ entries, preallocated
  std::vector<TableEntry> table_ GUARDED_BY(mu_);  // open-addressing index into slots_
};

inline XpBufferResult XpBuffer::OnLineFlush(uint64_t xpline, int line_in_xpline, StreamTag tag,
                                            trace::Component comp) {
  sync::LockGuard<XpBufferLock> guard(mu_);
  return OnLineFlushLocked(xpline, line_in_xpline, tag, comp);
}

inline XpBufferResult XpBuffer::OnLineFlushLocked(uint64_t xpline, int line_in_xpline,
                                                  StreamTag tag, trace::Component comp) {
  XpBufferResult result;
  int32_t s = Find(xpline);
  if (s != kNil) {
    // Write-combining hit: merge into the resident XPLine.
    slots_[static_cast<size_t>(s)].dirty_mask |= 1ULL << line_in_xpline;
    LruMoveToFront(s);
    return result;
  }
  if (size_ >= capacity_) {
    // Evict LRU: one media write; RMW read first if partially dirty.
    int32_t victim = lru_tail_;
    Slot& vslot = slots_[static_cast<size_t>(victim)];
    result.evicted = true;
    result.rmw = vslot.dirty_mask != full_mask_;
    result.evicted_tag = vslot.tag;
    result.evicted_comp = vslot.comp;
    result.evicted_xpline = vslot.xpline;
    evictions_++;
    LruUnlink(victim);
    assert(table_[static_cast<size_t>(vslot.table_pos)].slot == victim);
    TableEraseAt(static_cast<size_t>(vslot.table_pos));
    size_--;
    s = victim;
  } else {
    s = free_head_;
    free_head_ = slots_[static_cast<size_t>(s)].next;
  }
  Slot& slot = slots_[static_cast<size_t>(s)];
  slot.xpline = xpline;
  slot.dirty_mask = 1ULL << line_in_xpline;
  slot.tag = tag;
  slot.comp = comp;
  LruPushFront(s);
  size_t i = Home(xpline);
  while (table_[i].slot != kNil) {
    i = (i + 1) & table_mask_;
  }
  table_[i].xpline = xpline;
  table_[i].slot = s;
  slot.table_pos = static_cast<int32_t>(i);
  size_++;
  insertions_++;
  return result;
}

inline bool XpBuffer::OnRead(uint64_t xpline) {
  sync::LockGuard<XpBufferLock> guard(mu_);
  return OnReadLocked(xpline);
}

inline bool XpBuffer::OnReadLocked(uint64_t xpline) {
  int32_t s = Find(xpline);
  if (s == kNil) {
    return false;
  }
  LruMoveToFront(s);
  return true;
}

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_XPBUFFER_H_
