// Per-thread state for the PM simulator: the thread's virtual clock, its
// NUMA socket, its private stats shard, and the set of cachelines flushed
// (clwb'd) but not yet fenced.
//
// Virtual time: every worker advances a private nanosecond clock as it
// performs modeled work (CPU costs, PM read latencies, WPQ back-pressure).
// A run's modeled elapsed time is the max over workers, which is what the
// benches report throughput against. This keeps the performance results
// deterministic and independent of the host machine's core count, while
// locks and atomics still execute under real concurrency.
#ifndef SRC_PMSIM_THREAD_CONTEXT_H_
#define SRC_PMSIM_THREAD_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/pmsim/stats.h"
#include "src/trace/trace.h"

namespace cclbt::pmsim {

class PmDevice;

class ThreadContext {
 public:
  // Binds the calling thread to `device` on `socket`. Installs itself as the
  // thread-local current context (restoring the previous one on destruction,
  // so scoped nesting works in tests). `worker_id` identifies the worker for
  // per-thread structures (e.g. CCL-BTree's per-thread WAL); it must be
  // unique among concurrently live contexts of one tree.
  ThreadContext(PmDevice& device, int socket, int worker_id = 0);
  ~ThreadContext();

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  // The context installed by the innermost live ThreadContext on this thread;
  // nullptr if none.
  static ThreadContext* Current();

  // Explicitly installs `ctx` (possibly nullptr) as this thread's current
  // context. Used by the bench driver to interleave many logical workers on
  // one OS thread; the destructor of a manually-switched context leaves the
  // slot untouched unless it is still the current one.
  static void SetCurrent(ThreadContext* ctx);

  PmDevice& device() const { return device_; }
  int socket() const { return socket_; }
  int worker_id() const { return worker_id_; }

  // This context's private counter block; included in the device's
  // Stats::Snapshot() while the context is alive and folded into the base on
  // destruction. Only the thread currently running this context may write it.
  StatsShard& stats_shard() { return stats_; }

  // The clock is atomic (relaxed) because PmDevice::ResetCosts() zeroes the
  // clocks of all registered contexts — including long-lived background
  // threads like CCL-BTree's GC worker — so that every active virtual clock
  // stays comparable with the per-DIMM busy timeline across bench phases.
  uint64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  void AdvanceCpu(uint64_t ns) {
    now_ns_.store(now_ns_.load(std::memory_order_relaxed) + ns, std::memory_order_relaxed);
  }
  void ResetClock(uint64_t to_ns = 0) { now_ns_.store(to_ns, std::memory_order_relaxed); }
  // Stable address of the clock, bound into the trace library so scopes can
  // timestamp against this worker's virtual time.
  const std::atomic<uint64_t>* now_ns_addr() const { return &now_ns_; }

  // This worker's trace ring: lazily acquired from the trace registry on
  // first use (tracing enabled at construction, or first traced emit via the
  // ring factory), nullptr until then. The registry owns the ring; it is
  // released — but its events stay collectable — on destruction.
  trace::TraceRing* trace_ring() const { return trace_ring_; }
  // Acquires the ring if not yet done and rebinds the calling thread's trace
  // slots. Only call from the thread currently running this context.
  trace::TraceRing* EnsureTraceRing();

 private:
  friend class PmDevice;

  // Records `line` (a line-aligned pool offset) as flushed-but-unfenced.
  // Returns true if the line was newly added, false if already pending.
  // O(1): an epoch-stamped open-addressing set dedups, while pending_lines_
  // keeps first-flush order for commit at fence time (XPBuffer LRU order —
  // and therefore every virtual-time metric — depends on that order).
  bool AddPendingLine(uintptr_t line) {
    size_t idx = PendingHash(line) & (pending_dedup_.size() - 1);
    while (true) {
      DedupSlot& slot = pending_dedup_[idx];
      if (slot.epoch != pending_epoch_) {
        // Stale/empty slot: within one epoch slots never revert to stale, so
        // `line` cannot exist later in this probe chain. Claim it.
        slot.line = line;
        slot.epoch = pending_epoch_;
        break;
      }
      if (slot.line == line) {
        return false;
      }
      idx = (idx + 1) & (pending_dedup_.size() - 1);
    }
    pending_lines_.push_back(line);
    if (pending_lines_.size() * 2 >= pending_dedup_.size()) {
      GrowPendingDedup();
    }
    return true;
  }

  // Empties the pending set. Bumping the epoch lazily invalidates every
  // dedup slot without touching them.
  void ClearPending() {
    pending_lines_.clear();
    pending_epoch_++;
  }

  void GrowPendingDedup() {
    std::vector<DedupSlot> bigger(pending_dedup_.size() * 2);
    pending_epoch_++;
    pending_dedup_.swap(bigger);
    for (uintptr_t line : pending_lines_) {
      size_t idx = PendingHash(line) & (pending_dedup_.size() - 1);
      while (pending_dedup_[idx].epoch == pending_epoch_) {
        idx = (idx + 1) & (pending_dedup_.size() - 1);
      }
      pending_dedup_[idx] = DedupSlot{line, pending_epoch_};
    }
  }

  static size_t PendingHash(uintptr_t line) {
    return static_cast<size_t>((static_cast<uint64_t>(line) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  struct DedupSlot {
    uintptr_t line = 0;
    uint64_t epoch = 0;  // slot is live iff epoch == pending_epoch_
  };

  PmDevice& device_;
  int socket_;
  int worker_id_;
  std::atomic<uint64_t> now_ns_{0};
  trace::TraceRing* trace_ring_ = nullptr;
  StatsShard stats_;
  // Pool offsets (line-aligned) flushed since the last fence, in first-flush
  // order. pending_dedup_ (power-of-two size, load factor <= 0.5) makes the
  // duplicate check O(1) instead of a linear scan.
  std::vector<uintptr_t> pending_lines_;
  std::vector<DedupSlot> pending_dedup_;
  uint64_t pending_epoch_ = 1;
  ThreadContext* previous_ = nullptr;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_THREAD_CONTEXT_H_
