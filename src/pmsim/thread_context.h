// Per-thread state for the PM simulator: the thread's virtual clock, its
// NUMA socket, and the set of cachelines flushed (clwb'd) but not yet fenced.
//
// Virtual time: every worker advances a private nanosecond clock as it
// performs modeled work (CPU costs, PM read latencies, WPQ back-pressure).
// A run's modeled elapsed time is the max over workers, which is what the
// benches report throughput against. This keeps the performance results
// deterministic and independent of the host machine's core count, while
// locks and atomics still execute under real concurrency.
#ifndef SRC_PMSIM_THREAD_CONTEXT_H_
#define SRC_PMSIM_THREAD_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace cclbt::pmsim {

class PmDevice;

class ThreadContext {
 public:
  // Binds the calling thread to `device` on `socket`. Installs itself as the
  // thread-local current context (restoring the previous one on destruction,
  // so scoped nesting works in tests). `worker_id` identifies the worker for
  // per-thread structures (e.g. CCL-BTree's per-thread WAL); it must be
  // unique among concurrently live contexts of one tree.
  ThreadContext(PmDevice& device, int socket, int worker_id = 0);
  ~ThreadContext();

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  // The context installed by the innermost live ThreadContext on this thread;
  // nullptr if none.
  static ThreadContext* Current();

  // Explicitly installs `ctx` (possibly nullptr) as this thread's current
  // context. Used by the bench driver to interleave many logical workers on
  // one OS thread; the destructor of a manually-switched context leaves the
  // slot untouched unless it is still the current one.
  static void SetCurrent(ThreadContext* ctx);

  PmDevice& device() const { return device_; }
  int socket() const { return socket_; }
  int worker_id() const { return worker_id_; }

  // The clock is atomic (relaxed) because PmDevice::ResetCosts() zeroes the
  // clocks of all registered contexts — including long-lived background
  // threads like CCL-BTree's GC worker — so that every active virtual clock
  // stays comparable with the per-DIMM busy timeline across bench phases.
  uint64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  void AdvanceCpu(uint64_t ns) {
    now_ns_.store(now_ns_.load(std::memory_order_relaxed) + ns, std::memory_order_relaxed);
  }
  void ResetClock(uint64_t to_ns = 0) { now_ns_.store(to_ns, std::memory_order_relaxed); }

 private:
  friend class PmDevice;

  PmDevice& device_;
  int socket_;
  int worker_id_;
  std::atomic<uint64_t> now_ns_{0};
  // Pool offsets (line-aligned) flushed since the last fence.
  std::vector<uintptr_t> pending_lines_;
  ThreadContext* previous_ = nullptr;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_THREAD_CONTEXT_H_
