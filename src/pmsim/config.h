// Configuration for the simulated persistent-memory device.
//
// The simulator models the two hardware layers the paper's analysis rests on
// (§2.1, Figure 1):
//   CPU cache --clwb/sfence--> WPQ --> XPBuffer (16 KB, on-DIMM, ADR-safe)
//                                         --256 B XPLine--> 3D-XPoint media
//
// Cost constants are calibrated to public Optane DCPMM 200 characterization
// numbers (Yang et al. FAST'20; Wang et al. MICRO'20): ~300 ns random read
// latency, ~1-2 GB/s effective random 256 B write bandwidth per DIMM, and a
// roughly 2x penalty for cross-socket access.
#ifndef SRC_PMSIM_CONFIG_H_
#define SRC_PMSIM_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace cclbt::pmsim {

inline constexpr size_t kCachelineBytes = 64;
inline constexpr size_t kXplineBytes = 256;
inline constexpr size_t kLinesPerXpline = kXplineBytes / kCachelineBytes;  // 4

// Persistence-domain backend (DESIGN.md §14). The backend owns everything
// media-specific: combining-buffer granularity, the persistence boundary
// (what a crash can lose), and the per-backend pmcheck rule table.
//   kAdrOptane  ADR Optane DCPMM: explicit clwb+sfence, power-protected
//               XPBuffer, 256 B media unit. The default and the only backend
//               the paper's figures use.
//   kEadr       extended ADR: the CPU cache is inside the persistence
//               domain, so flushes are free and there is no unfenced-pending
//               crash window; dirty lines reach the XPBuffer via a modeled
//               random cache-eviction stream (paper §5.5).
//   kCxlMem     CXL memory-semantic device: page-granular write combining
//               (xpline_bytes up to 4 KB); optionally a volatile internal
//               buffer, giving a page-sized crash window.
//   kAuto       resolve at device construction: the legacy `eadr` flag maps
//               to kEadr, else the CCL_BACKEND environment selector
//               (adr | eadr | cxl), else kAdrOptane.
enum class MediaBackend : uint8_t {
  kAuto = 0,
  kAdrOptane = 1,
  kEadr = 2,
  kCxlMem = 3,
};

struct CostParams {
  // Latency of a PM read that misses the XPBuffer (media access),
  // uncontended.
  uint64_t pm_read_ns = 320;
  // Latency of a PM read served from the XPBuffer.
  uint64_t pm_read_hit_ns = 120;
  // Cross-socket (remote NUMA) latency/service multiplier, in percent.
  // 220 == 2.2x.
  uint32_t remote_penalty_pct = 220;
  // Media service time for writing one 256 B XPLine (per-DIMM server).
  uint64_t xpline_write_service_ns = 300;
  // Extra service time when the eviction is a read-modify-write because the
  // XPLine was only partially overwritten while buffered.
  uint64_t xpline_rmw_extra_ns = 150;
  // Media service occupancy of one 256 B read miss (reads queue on the same
  // per-DIMM server as writes, so read-heavy workloads saturate too).
  uint64_t xpline_read_service_ns = 140;
  // How far (in ns of queued media work) a DIMM may lag behind a writer
  // before the WPQ back-pressures the flushing thread.
  uint64_t wpq_slack_ns = 1500;
  // CPU-side cost of one clwb (issue + WPQ transfer).
  uint64_t cacheline_flush_ns = 25;
  // CPU-side cost of one sfence.
  uint64_t fence_ns = 30;
  // Cost of a DRAM structure access charged by index code where it matters
  // (e.g. scanning buffered entries).
  uint64_t dram_access_ns = 4;
};

struct DeviceConfig {
  size_t pool_bytes = 1ULL << 30;
  int num_sockets = 2;
  int dimms_per_socket = 4;
  // CPU cores per socket, used by worker->socket placement
  // (kvindex::Runtime::SocketForWorker) when the caller does not pass an
  // explicit threads-per-socket. 0 (the default) means "unspecified": small
  // worker counts are then placed round-robin across sockets instead of
  // piling onto socket 0 behind a fill-first threshold no run of that size
  // ever crosses. Set to e.g. 48 to model the paper's 2x48-way box with
  // fill-first pinning.
  int cores_per_socket = 0;
  // Per-DIMM write-combining buffer (XPBuffer): 16 KB of 256 B XPLines.
  size_t xpbuffer_bytes = 16 * 1024;
  // Media access unit ("XPLine"): 256 B on Optane DCPMM; set to 4096 to model
  // CXL-flash devices with 4 KB internal pages (paper §6). Power of two.
  size_t xpline_bytes = kXplineBytes;
  // Address interleaving granularity across the DIMMs of one socket.
  size_t interleave_bytes = 4096;
  // Persistence-domain backend; kAuto resolves at device construction (see
  // MediaBackend above). After construction PmDevice::config().backend is
  // always a concrete backend, and `eadr` below mirrors it.
  MediaBackend backend = MediaBackend::kAuto;
  // Legacy eADR switch, kept for existing configs: equivalent to
  // backend = kEadr when `backend` is kAuto. In eADR, flushes are free for
  // persistence, but dirty lines reach the XPBuffer via a modeled CPU-cache
  // eviction stream with randomized order (reproducing the paper's §5.5
  // observation that implicit evictions destroy XPLine locality).
  bool eadr = false;
  // kCxlMem only: model the device-internal page buffer as volatile — fence
  // commits stage line contents in the buffer and they only reach the
  // persistence boundary when the containing media unit is evicted (or at a
  // clean power-down), so a crash loses up to the buffered pages. Off by
  // default: a power-protected buffer behaves exactly like the ADR commit
  // path at page granularity.
  bool cxl_volatile_buffer = false;
  // Number of cachelines the modeled CPU cache holds before random eviction
  // (eADR mode only).
  size_t eadr_cache_lines = 32768;  // 2 MB
  // Maintain the shadow persistent image for Crash() support. Costs 1x pool
  // memory and a 64 B copy per flush; benches that never crash can disable.
  bool crash_tracking = true;
  // Record a per-media-unit write counter (one uint32 per XPLine in the
  // pool) for the pmtrace heatmap exporter. One extra relaxed increment per
  // media write while on; off by default.
  bool record_unit_heatmap = false;
  // Enable pmcheck, the persistency-ordering checker (DESIGN.md §11). The
  // CCL_PMCHECK environment variable overrides this at device construction
  // ("1" forces on, "0" forces off). Requires the shadow image, so
  // crash_tracking is forced on. Diagnostic severity is backend-dependent
  // (MediaModel::check_action, DESIGN.md §14): e.g. a redundant flush is a
  // real violation on ADR but informational on eADR, where flushes are free.
  // Diagnostics never touch virtual time.
  bool pmcheck = false;
  // Enable lockcheck, the locking-discipline checker (DESIGN.md §16): Eraser
  // lockset analysis over PM cachelines, lock-order cycle detection, and the
  // fence-publish cross-check against pmcheck. The CCL_LOCKCHECK environment
  // variable overrides this at device construction ("1" forces on, "0"
  // forces off). Independent of pmcheck (the cross-check simply degrades to
  // informational without it). Diagnostics never touch virtual time.
  bool lockcheck = false;
  CostParams cost;

  int total_dimms() const { return num_sockets * dimms_per_socket; }
  size_t xpbuffer_entries() const { return xpbuffer_bytes / xpline_bytes; }
  size_t socket_region_bytes() const { return pool_bytes / static_cast<size_t>(num_sockets); }
};

// Classification of PM address ranges, used to attribute media writes to the
// structure that caused them (the paper's Figure 13(b) splits XBI into leaf
// vs WAL traffic).
enum class StreamTag : uint8_t { kOther = 0, kLeaf = 1, kLog = 2, kCount = 3 };

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_CONFIG_H_
