#include "src/pmsim/device.h"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "src/common/rng.h"
#include "src/pmsim/lockcheck.h"
#include "src/pmsim/media_model.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/event.h"
#include "src/trace/trace.h"

namespace cclbt::pmsim {

namespace {
thread_local ThreadContext* tl_current_context = nullptr;

// Installs `ctx`'s trace ring + virtual clock in the trace library's
// thread-local slots (cleared when no context is current), so TraceScope and
// Emit can timestamp without a trace -> pmsim dependency.
void BindTraceFor(ThreadContext* ctx) {
  if (ctx == nullptr) {
    trace::BindThread(nullptr, nullptr);
  } else {
    trace::BindThread(ctx->trace_ring(), ctx->now_ns_addr());
  }
}

// Installed as the trace library's ring factory: lets an emit on a thread
// whose context predates SetEnabled(true) (e.g. the background GC worker)
// lazily acquire its ring.
trace::TraceRing* RingFactoryImpl() {
  ThreadContext* ctx = tl_current_context;
  return ctx == nullptr ? nullptr : ctx->EnsureTraceRing();
}

uintptr_t LineOf(uintptr_t offset) { return offset & ~(kCachelineBytes - 1); }

// log2(n) if n is a nonzero power of two, else -1.
int ShiftFor(size_t n) {
  if (n == 0 || (n & (n - 1)) != 0) {
    return -1;
  }
  int shift = 0;
  while ((n >> shift) != 1) {
    shift++;
  }
  return shift;
}
}  // namespace

ThreadContext::ThreadContext(PmDevice& device, int socket, int worker_id)
    : device_(device), socket_(socket), worker_id_(worker_id) {
  pending_lines_.reserve(64);
  pending_dedup_.resize(128);
  if (trace::Enabled()) {
    trace_ring_ = trace::AcquireRing(worker_id_, socket_);
  }
  previous_ = tl_current_context;
  tl_current_context = this;
  BindTraceFor(this);
  device_.RegisterContext(this);
}

ThreadContext::~ThreadContext() {
  device_.UnregisterContext(this);
  if (trace_ring_ != nullptr) {
    trace::ReleaseRing(trace_ring_);
  }
  if (tl_current_context == this) {
    tl_current_context = previous_;
    BindTraceFor(previous_);
  } else {
    // Out-of-order teardown (e.g. a service destroying its shard contexts in
    // creation order): splice this context out of the calling thread's
    // previous_ chain so a later destruction of the current context cannot
    // restore a pointer to freed memory.
    for (ThreadContext* c = tl_current_context; c != nullptr; c = c->previous_) {
      if (c->previous_ == this) {
        c->previous_ = previous_;
        break;
      }
    }
  }
}

trace::TraceRing* ThreadContext::EnsureTraceRing() {
  if (trace_ring_ == nullptr) {
    trace_ring_ = trace::AcquireRing(worker_id_, socket_);
    if (tl_current_context == this) {
      BindTraceFor(this);
    }
  }
  return trace_ring_;
}

ThreadContext* ThreadContext::Current() { return tl_current_context; }

void ThreadContext::SetCurrent(ThreadContext* ctx) {
  tl_current_context = ctx;
  BindTraceFor(ctx);
}

PmDevice::PmDevice(const DeviceConfig& config)
    : config_(config),
      dimm_busy_until_ns_(static_cast<size_t>(config.total_dimms())) {
  assert(config_.pool_bytes % (config_.socket_region_bytes()) == 0);
  // Backend resolution comes first: the CCL_BACKEND=cxl selector may change
  // the media-unit geometry the shift caches below derive from.
  ResolveMediaBackend(config_);
  // pmcheck enablement resolves before the mappings: the checker needs the
  // shadow image, so it forces crash_tracking on. CCL_PMCHECK overrides the
  // config flag in either direction ("0" turns a configured checker off for
  // A/B runs). Severity per class is the backend's call (the MediaModel rule
  // table), not an on/off switch here.
  if (const char* env = std::getenv("CCL_PMCHECK"); env != nullptr && env[0] != '\0') {
    config_.pmcheck = env[0] == '1';
  }
  if (config_.pmcheck) {
    config_.crash_tracking = true;
  }
  socket_shift_ = ShiftFor(config_.socket_region_bytes());
  interleave_shift_ = ShiftFor(config_.interleave_bytes);
  unit_shift_ = ShiftFor(config_.xpline_bytes);
  dimm_mask_ = ShiftFor(static_cast<size_t>(config_.dimms_per_socket)) >= 0
                   ? static_cast<size_t>(config_.dimms_per_socket) - 1
                   : 0;
  unit_scale_ = config_.xpline_bytes >= kXplineBytes ? config_.xpline_bytes / kXplineBytes : 1;
  pool_ = MapAnonymous(config_.pool_bytes);
  if (config_.crash_tracking) {
    shadow_ = MapAnonymous(config_.pool_bytes);
  }
  assert(config_.xpline_bytes >= kCachelineBytes && config_.xpline_bytes <= 4096 &&
         (config_.xpline_bytes & (config_.xpline_bytes - 1)) == 0 &&
         "media unit must be a power of two in [64, 4096]");
  for (int i = 0; i < config_.total_dimms(); i++) {
    xpbuffers_.push_back(std::make_unique<XpBuffer>(
        config_.xpbuffer_entries(),
        static_cast<int>(config_.xpline_bytes / kCachelineBytes)));
  }
  size_t num_pages = (config_.pool_bytes + kTagPageBytes - 1) / kTagPageBytes;
  page_tags_ = std::make_unique<std::atomic<uint8_t>[]>(num_pages);
  for (size_t i = 0; i < num_pages; i++) {
    page_tags_[i].store(static_cast<uint8_t>(StreamTag::kOther), std::memory_order_relaxed);
  }
  if (config_.record_unit_heatmap) {
    num_units_ = config_.pool_bytes / config_.xpline_bytes;
    unit_writes_ = std::make_unique<std::atomic<uint32_t>[]>(num_units_);
    for (size_t i = 0; i < num_units_; i++) {
      unit_writes_[i].store(0, std::memory_order_relaxed);
    }
  }
  media_ = MakeMediaModel(*this, config_);
  explicit_persist_ = media_->explicit_persist();
  durable_at_commit_ = media_->durable_at_commit();
  trace::SetRingFactory(&RingFactoryImpl);
  if (config_.pmcheck) {
    pmcheck_ = std::make_unique<PmCheck>(*this);
  }
  // Lockcheck resolves after pmcheck: its fence cross-check reads pmcheck's
  // shadow state when both are on, but neither requires the other.
  if (const char* env = std::getenv("CCL_LOCKCHECK"); env != nullptr && env[0] != '\0') {
    config_.lockcheck = env[0] == '1';
  }
  if (config_.lockcheck) {
    lockcheck_ = std::make_unique<LockCheck>(*this);
  }
}

PmDevice::~PmDevice() {
  Unmap(pool_);
  Unmap(shadow_);
}

PmDevice::Mapping PmDevice::MapAnonymous(size_t bytes) {
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  assert(mem != MAP_FAILED && "mmap failed");
  return Mapping{static_cast<std::byte*>(mem), bytes};
}

void PmDevice::Unmap(Mapping& mapping) {
  if (mapping.data != nullptr) {
    ::munmap(mapping.data, mapping.bytes);
    mapping.data = nullptr;
  }
}

void PmDevice::RegisterRange(const void* start, size_t len, StreamTag tag) {
  uintptr_t off = OffsetOf(start);
  size_t first = off / kTagPageBytes;
  size_t last = (off + len + kTagPageBytes - 1) / kTagPageBytes;
  for (size_t page = first; page < last; page++) {
    page_tags_[page].store(static_cast<uint8_t>(tag), std::memory_order_relaxed);
  }
}

StreamTag PmDevice::TagOf(uintptr_t offset) const {
  return static_cast<StreamTag>(page_tags_[offset / kTagPageBytes].load(std::memory_order_relaxed));
}

void PmDevice::FlushLine(ThreadContext& ctx, const void* addr) {
  assert(Contains(addr));
  ctx.stats_shard().AddLineFlush();
  uintptr_t line = LineOf(OffsetOf(addr));
  trace::Emit(trace::EventType::kFlush, line);
  if (!explicit_persist_) {
    // Flush-free domain (eADR): no explicit flush cost — the store is already
    // persistent. The checker hook runs before the shadow sync so it can see
    // whether the flush changed anything durable.
    if (pmcheck_ != nullptr) {
      pmcheck_->OnFlushFree(ctx, line);
    }
    if (lockcheck_ != nullptr) {
      lockcheck_->OnPmWrite(ctx, line);
    }
    if (shadow_.data != nullptr) {
      std::memcpy(shadow_.get() + line, pool_.get() + line, kCachelineBytes);
    }
    ctx.stats_shard().AddCommittedLines(trace::CurrentComponent(), 1);
    // The dirty line reaches the XPBuffer via the backend's modeled
    // cache-eviction stream.
    media_->AbsorbFlushFree(ctx, line);
    return;
  }
  ctx.AdvanceCpu(config_.cost.cacheline_flush_ns);
  // Dedup within the pending set: repeated clwb of the same line before the
  // fence costs CPU but persists once.
  const bool newly_pending = ctx.AddPendingLine(line);
  if (pmcheck_ != nullptr) {
    pmcheck_->OnFlush(ctx, line, newly_pending);
  }
  if (lockcheck_ != nullptr) {
    // A flush is the commitment that the line was stored: lockcheck treats it
    // as the write event for the Eraser lockset state machine.
    lockcheck_->OnPmWrite(ctx, line);
  }
}

void PmDevice::Fence(ThreadContext& ctx) {
  ctx.stats_shard().AddFence();
  if (injector_ != nullptr) {
    // May throw CrashPointReached *before* the commit loop below: power is
    // lost at the sfence, so ctx's pending lines stay uncommitted for
    // Crash()/CrashTorn() to drop or tear.
    injector_->OnFence();
  }
  if (!explicit_persist_) {
    if (pmcheck_ != nullptr) {
      pmcheck_->OnFenceFree(ctx);
    }
    trace::Emit(trace::EventType::kFence, 0);
    return;  // No ordering cost modeled in a flush-free domain.
  }
  ctx.AdvanceCpu(config_.cost.fence_ns);
  // The pmcheck gate is read once per fence (same pattern as the trace gate
  // below); disabled runs pay one null test here and nothing in the loop.
  PmCheck* const check = pmcheck_.get();
  if (ctx.pending_lines_.empty()) {
    if (check != nullptr) {
      check->OnUselessFence(ctx);
    }
    trace::Emit(trace::EventType::kFence, 0);
    return;
  }
  // The component is read once per fence, not per line: a fence commits the
  // lines of the scope that issued it, and scopes cannot change mid-fence.
  const trace::Component comp = trace::CurrentComponent();
  ctx.stats_shard().AddCommittedLines(comp, ctx.pending_lines_.size());
  if (lockcheck_ != nullptr) {
    // Publish-window check (class 5) before the commit loop: is every
    // pending line's protecting lock still held at the fence that publishes
    // it? Cross-checks pmcheck's redirty detection when both are enabled.
    lockcheck_->OnFencePending(ctx, ctx.pending_lines_, comp, check);
  }
  // Likewise the trace gate: one read per fence picks the commit-loop
  // instantiation, so the disabled loop carries no tracing (or checking)
  // instructions.
  if (trace::Enabled()) {
    trace::Emit(trace::EventType::kFence, ctx.pending_lines_.size());
    if (check != nullptr) {
      CommitPending<true, true>(ctx, comp);
    } else {
      CommitPending<true, false>(ctx, comp);
    }
  } else {
    if (check != nullptr) {
      CommitPending<false, true>(ctx, comp);
    } else {
      CommitPending<false, false>(ctx, comp);
    }
  }
  ctx.ClearPending();
}

template <bool kTraced, bool kChecked>
void PmDevice::CommitPending(ThreadContext& ctx, trace::Component comp) {
  if constexpr (kChecked) {
    // Class-3 (dirty-at-fence) verification + Durable transition for the
    // whole pending set, before the commit loop copies lines to the shadow.
    pmcheck_->OnFenceCommit(ctx, ctx.pending_lines_, comp);
  }
  for (uintptr_t line : ctx.pending_lines_) {
    CommitLine<kTraced>(ctx, line, comp);
  }
}

void PmDevice::PersistRange(ThreadContext& ctx, const void* addr, size_t len) {
  auto start = LineOf(OffsetOf(addr));
  auto end = OffsetOf(addr) + len;
  for (uintptr_t line = start; line < end; line += kCachelineBytes) {
    FlushLine(ctx, pool_.get() + line);
  }
  Fence(ctx);
}

template <bool kTraced>
void PmDevice::CommitLine(ThreadContext& ctx, uintptr_t line_offset, trace::Component comp) {
  if (durable_at_commit_) {
    if (shadow_.data != nullptr) {
      std::memcpy(shadow_.get() + line_offset, pool_.get() + line_offset, kCachelineBytes);
    }
  } else {
    // Volatile device buffer (CXL): the fence hands the line to the device,
    // but durability waits for the containing media unit's eviction.
    media_->StageCommittedLine(line_offset);
  }
  PushThroughXpBuffer<kTraced>(ctx, line_offset, comp);
}

void PmDevice::PushLine(ThreadContext& ctx, uintptr_t line_offset, trace::Component comp) {
  if (trace::Enabled()) {
    PushThroughXpBuffer<true>(ctx, line_offset, comp);
  } else {
    PushThroughXpBuffer<false>(ctx, line_offset, comp);
  }
}

template <bool kTraced>
void PmDevice::PushThroughXpBuffer(ThreadContext& ctx, uintptr_t line_offset,
                                   trace::Component comp) {
  int socket = SocketOf(line_offset);
  int dimm = DimmOfAt(line_offset, socket);
  bool remote = socket != ctx.socket();
  if (remote) {
    ctx.stats_shard().AddRemoteAccess();
  }
  size_t unit = config_.xpline_bytes;
  XpBuffer& buffer = *xpbuffers_[static_cast<size_t>(dimm)];
  XpBufferResult result;
  uint64_t lag = 0;
  {
    sync::LockGuard<XpBufferLock> guard(buffer.mutex());
    result = buffer.OnLineFlushLocked(UnitOf(line_offset), LineInUnit(line_offset),
                                      TagOf(line_offset), comp);
    if (result.evicted) {
      // Service time scales with the media unit (a 4 KB flash page takes
      // proportionally longer than a 256 B XPLine).
      uint64_t service = (config_.cost.xpline_write_service_ns +
                          (result.rmw ? config_.cost.xpline_rmw_extra_ns : 0)) *
                         unit_scale_;
      if (remote) {
        service = service * config_.cost.remote_penalty_pct / 100;
      }
      lag = AdvanceDimmClockLocked(dimm, ctx.now_ns(), service);
    }
  }
  if (result.evicted) {
    if (!durable_at_commit_) {
      // Eviction is the persistence boundary on a volatile-buffer backend.
      media_->CommitStagedUnit(result.evicted_xpline);
    }
    // The media write is charged to the component whose scope buffered the
    // evicted XPLine, which may differ from the committing scope `comp`.
    ctx.stats_shard().AddMediaWrite(result.evicted_tag, result.evicted_comp, unit);
    NoteMediaWrite(result.evicted_xpline);
    if constexpr (kTraced) {
      trace::Emit(trace::EventType::kXpbufEvict, result.evicted_xpline,
                  result.rmw ? 1u : 0u, static_cast<uint16_t>(dimm));
    }
    if (result.rmw) {
      ctx.stats_shard().AddMediaRead(unit);
    }
    // Media writes are asynchronous behind the WPQ, but a writer stalls once
    // the queue of unserviced media work exceeds the WPQ slack: this is what
    // makes XPLine count — not cacheline count — the bottleneck under load
    // (paper Figure 2).
    if (lag > config_.cost.wpq_slack_ns) {
      ctx.AdvanceCpu(lag - config_.cost.wpq_slack_ns);
    }
  } else if constexpr (kTraced) {
    trace::Emit(trace::EventType::kXpbufHit, UnitOf(line_offset), 0,
                static_cast<uint16_t>(dimm));
  }
}

// Cost-free accounting path for end-of-run drains that have no calling
// context: media traffic is recorded against the shared base counters and no
// virtual time is charged.
void PmDevice::PushThroughXpBufferAccountingOnly(uintptr_t line_offset) {
  int dimm = DimmOf(line_offset);
  size_t unit = config_.xpline_bytes;
  XpBufferResult result = xpbuffers_[static_cast<size_t>(dimm)]->OnLineFlush(
      UnitOf(line_offset), LineInUnit(line_offset), TagOf(line_offset),
      trace::CurrentComponent());
  if (result.evicted) {
    if (!durable_at_commit_) {
      media_->CommitStagedUnit(result.evicted_xpline);
    }
    stats_.AddMediaWrite(result.evicted_tag, result.evicted_comp, unit);
    NoteMediaWrite(result.evicted_xpline);
    if (result.rmw) {
      stats_.AddMediaRead(unit);
    }
  }
}

void PmDevice::ReadPm(ThreadContext& ctx, const void* addr, size_t len) {
  assert(Contains(addr));
  if (pmcheck_ != nullptr) {
    pmcheck_->OnReadRange(ctx, OffsetOf(addr), len);
  }
  if (lockcheck_ != nullptr) {
    lockcheck_->OnPmRead(ctx, OffsetOf(addr), len);
  }
  size_t unit = config_.xpline_bytes;
  uintptr_t start = UnitOf(OffsetOf(addr));
  uintptr_t end = UnitOf(OffsetOf(addr) + len + unit - 1);
  for (uintptr_t xpline = start; xpline < end; xpline++) {
    uintptr_t offset = xpline * unit;
    int socket = SocketOf(offset);
    int dimm = DimmOfAt(offset, socket);
    bool remote = socket != ctx.socket();
    XpBuffer& buffer = *xpbuffers_[static_cast<size_t>(dimm)];
    bool hit;
    uint64_t lag = 0;
    {
      sync::LockGuard<XpBufferLock> guard(buffer.mutex());
      hit = buffer.OnReadLocked(xpline);
      if (!hit) {
        // Read misses occupy the DIMM's media server: the read completes no
        // earlier than the queued media work, which is what saturates
        // read-heavy multi-thread workloads on real DCPMM.
        uint64_t service = config_.cost.xpline_read_service_ns;
        if (remote) {
          service = service * config_.cost.remote_penalty_pct / 100;
        }
        uint64_t full_lag = AdvanceDimmClockLocked(dimm, ctx.now_ns(), service);
        lag = full_lag > service ? full_lag - service : 0;
      }
    }
    ctx.stats_shard().AddPmRead(hit);
    trace::Emit(hit ? trace::EventType::kReadHit : trace::EventType::kReadMiss, xpline, 0,
                static_cast<uint16_t>(dimm));
    if (remote) {
      ctx.stats_shard().AddRemoteAccess();
    }
    uint64_t latency = hit ? config_.cost.pm_read_hit_ns : config_.cost.pm_read_ns;
    if (remote) {
      latency = latency * config_.cost.remote_penalty_pct / 100;
    }
    if (!hit) {
      ctx.stats_shard().AddMediaRead(unit);
      ctx.AdvanceCpu(lag);
    }
    ctx.AdvanceCpu(latency);
  }
}

void PmDevice::DrainBuffers() {
  // Backend residuals first: the eADR modeled CPU cache flushes through the
  // XPBuffers, and a volatile CXL buffer persists its staged lines (clean
  // power-down reaches the persistence boundary on every backend).
  media_->DrainResidual();
  media_->CommitAllStaged();
  if (pmcheck_ != nullptr) {
    // Pool close from the checker's point of view: anything still dirty now
    // was never made durable (class 4). Runs after the backend residuals
    // above (which settle durability) and before the XPBuffer drains below
    // (which only move already-durable XPLines to media).
    pmcheck_->OnClose();
  }
  // End-of-run accounting uses the configured media unit: draining a 4 KB
  // CXL-flash page writes 4 KB, not the 256 B XPLine default.
  uint64_t unit = config_.xpline_bytes;
  for (auto& xpbuffer : xpbuffers_) {
    xpbuffer->Drain([this, unit](bool rmw, StreamTag tag, trace::Component comp,
                                 uint64_t xpline) {
      stats_.AddMediaWrite(tag, comp, unit);
      NoteMediaWrite(xpline);
      if (rmw) {
        stats_.AddMediaRead(unit);
      }
    });
  }
}

void PmDevice::Crash() {
  assert(shadow_.data != nullptr && "Crash() requires crash_tracking");
  if (pmcheck_ != nullptr) {
    // An injector-scheduled crash is the harness doing its job — in-flight
    // state is expected there, so the class-4 scan only runs for crashes
    // nobody scheduled. It is likewise skipped when the backend's volatile
    // buffer sits below fence commit: committed-but-staged lines differ from
    // the shadow by design, not by an ordering bug.
    pmcheck_->OnCrash((injector_ != nullptr && injector_->fired()) || !durable_at_commit_);
  }
  if (lockcheck_ != nullptr) {
    lockcheck_->OnCrash();
  }
  // Backend-owned crash window: a volatile CXL buffer loses its staged
  // (acked!) lines; eADR's modeled cache just goes cold (content already
  // durable, so it reports 0).
  uint64_t volatile_lines_lost = media_->DropVolatileOnCrash();
  uint64_t lines_dropped = 0;
  {
    sync::LockGuard<sync::Mutex> guard(contexts_mu_);
    for (ThreadContext* ctx : contexts_) {
      lines_dropped += ctx->pending_lines_.size();
      ctx->ClearPending();
    }
  }
  stats_.AddCrash(lines_dropped + volatile_lines_lost, /*torn_lines_applied=*/0);
  std::memcpy(pool_.get(), shadow_.get(), config_.pool_bytes);
  // Fresh boot: the XPBuffer is power-protected, so its content already lives
  // in the shadow image; the model itself restarts cold.
  for (auto& xpbuffer : xpbuffers_) {
    xpbuffer->Drain([](bool, StreamTag, trace::Component, uint64_t) {});
  }
}

void PmDevice::CrashTorn(uint64_t seed) {
  assert(shadow_.data != nullptr && "CrashTorn() requires crash_tracking");
  if (pmcheck_ != nullptr) {
    pmcheck_->OnCrash((injector_ != nullptr && injector_->fired()) || !durable_at_commit_);
  }
  if (lockcheck_ != nullptr) {
    lockcheck_->OnCrash();
  }
  uint64_t volatile_lines_lost = media_->DropVolatileOnCrash();
  Rng rng(seed);
  uint64_t lines_dropped = 0;
  uint64_t torn_lines_applied = 0;
  {
    sync::LockGuard<sync::Mutex> guard(contexts_mu_);
    for (ThreadContext* ctx : contexts_) {
      for (uintptr_t line : ctx->pending_lines_) {
        if ((rng.Next() & 1) != 0) {
          std::memcpy(shadow_.get() + line, pool_.get() + line, kCachelineBytes);
          torn_lines_applied++;
        } else {
          lines_dropped++;
        }
      }
      ctx->ClearPending();
    }
  }
  stats_.AddCrash(lines_dropped + volatile_lines_lost, torn_lines_applied);
  std::memcpy(pool_.get(), shadow_.get(), config_.pool_bytes);
  for (auto& xpbuffer : xpbuffers_) {
    xpbuffer->Drain([](bool, StreamTag, trace::Component, uint64_t) {});
  }
}

uint64_t PmDevice::MaxDimmBusyNs() const {
  uint64_t max_busy = 0;
  for (size_t dimm = 0; dimm < dimm_busy_until_ns_.size(); dimm++) {
    sync::LockGuard<XpBufferLock> guard(xpbuffers_[dimm]->mutex());
    max_busy = std::max(max_busy, dimm_busy_until_ns_[dimm].busy_until_ns);
  }
  return max_busy;
}

PmDevice::XpBufferTotals PmDevice::SampleXpBuffers() const {
  XpBufferTotals totals;
  for (const auto& xpbuffer : xpbuffers_) {
    totals.resident += xpbuffer->resident();
    totals.insertions += xpbuffer->insertions();
    totals.evictions += xpbuffer->evictions();
  }
  return totals;
}

uint64_t PmDevice::MaxContextClockNs() const {
  uint64_t frontier = 0;
  sync::LockGuard<sync::Mutex> guard(contexts_mu_);
  for (const ThreadContext* ctx : contexts_) {
    frontier = std::max(frontier, ctx->now_ns());
  }
  return frontier;
}

void PmDevice::RaiseContextClocks(uint64_t to_ns) {
  sync::LockGuard<sync::Mutex> guard(contexts_mu_);
  for (ThreadContext* ctx : contexts_) {
    if (ctx->now_ns() < to_ns) {
      ctx->ResetClock(to_ns);
    }
  }
}

void PmDevice::ResetCosts() {
  for (size_t dimm = 0; dimm < dimm_busy_until_ns_.size(); dimm++) {
    sync::LockGuard<XpBufferLock> guard(xpbuffers_[dimm]->mutex());
    dimm_busy_until_ns_[dimm].busy_until_ns = 0;
  }
  // The heatmap is performance accounting too: start each measured phase
  // clean so warm-up writes don't dominate the picture.
  for (size_t i = 0; i < num_units_; i++) {
    unit_writes_[i].store(0, std::memory_order_relaxed);
  }
  // Keep every live virtual clock coherent with the reset busy timeline
  // (background threads like a GC worker would otherwise re-enter with a
  // clock far ahead of fresh bench workers and stall them behind phantom
  // queueing).
  sync::LockGuard<sync::Mutex> guard(contexts_mu_);
  for (ThreadContext* ctx : contexts_) {
    ctx->ResetClock(0);
  }
}

void PmDevice::RegisterContext(ThreadContext* ctx) {
  stats_.RegisterShard(&ctx->stats_shard());
  size_t live;
  {
    sync::LockGuard<sync::Mutex> guard(contexts_mu_);
    contexts_.push_back(ctx);
    live = contexts_.size();
  }
  if (lockcheck_ != nullptr) {
    lockcheck_->OnContextCount(live);
  }
}

void PmDevice::UnregisterContext(ThreadContext* ctx) {
  // Folds the context's counter shard into the base so its contribution
  // outlives it.
  stats_.UnregisterShard(&ctx->stats_shard());
  size_t live;
  {
    sync::LockGuard<sync::Mutex> guard(contexts_mu_);
    contexts_.erase(std::remove(contexts_.begin(), contexts_.end(), ctx), contexts_.end());
    live = contexts_.size();
  }
  if (lockcheck_ != nullptr) {
    lockcheck_->OnContextCount(live);
  }
}

void FlushLine(const void* addr) {
  ThreadContext* ctx = ThreadContext::Current();
  assert(ctx != nullptr);
  ctx->device().FlushLine(*ctx, addr);
}

void Fence() {
  ThreadContext* ctx = ThreadContext::Current();
  assert(ctx != nullptr);
  ctx->device().Fence(*ctx);
}

void Persist(const void* addr, size_t len) {
  ThreadContext* ctx = ThreadContext::Current();
  assert(ctx != nullptr);
  ctx->device().PersistRange(*ctx, addr, len);
}

void ReadPm(const void* addr, size_t len) {
  ThreadContext* ctx = ThreadContext::Current();
  assert(ctx != nullptr);
  ctx->device().ReadPm(*ctx, addr, len);
}

void AdvanceCpu(uint64_t ns) {
  ThreadContext* ctx = ThreadContext::Current();
  assert(ctx != nullptr);
  ctx->AdvanceCpu(ns);
}

}  // namespace cclbt::pmsim
