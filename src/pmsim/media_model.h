// Persistence-domain backends for pmsim (DESIGN.md §14).
//
// PmDevice models the universal machinery — per-thread virtual clocks, the
// per-DIMM write-combining buffer and media servers, stats/trace — while
// everything that depends on *which* persistence domain the machine has
// lives behind MediaModel:
//
//   AdrOptaneModel  ADR Optane DCPMM: explicit clwb+sfence discipline,
//                   power-protected XPBuffer. Pure policy object — the
//                   device's templated commit loop IS this backend, so the
//                   default path carries no virtual calls and its virtual
//                   metrics are byte-for-byte those of the pre-refactor
//                   device.
//   EadrModel       flush-free persistence domain: owns the modeled CPU
//                   cache (randomized implicit evictions, paper §5.5) that
//                   used to be an ad-hoc vector on PmDevice. Same eviction
//                   stream (same RNG seed, same victim discipline), but the
//                   std::mutex is replaced by the XPBuffer's TTAS spinlock
//                   and storage is a preallocated flat array — the last
//                   fence-adjacent std::mutex in the simulator is gone.
//                   Note: open-addressing dedup of the dirty set was
//                   considered and rejected — it would change the eviction
//                   stream and break bit-identity with the pre-refactor eADR
//                   metrics (duplicates in the modeled cache are part of the
//                   recorded behavior).
//   CxlMemModel     CXL memory-semantic device (Memory-Semantic SSD /
//                   XL-FLASH class): page-granular write combining, media
//                   unit configurable 256 B – 4 KB. With a power-protected
//                   internal buffer (default) it is the ADR commit path at
//                   page geometry; with cxl_volatile_buffer the buffer is
//                   volatile — fence commits stage line contents and
//                   durability happens at unit eviction, so the crash window
//                   is page-sized.
//
// Crash-window semantics per backend:
//   ADR      unfenced pending lines are lost; XPBuffer content survives.
//   eADR     no pending window at all — content is durable at FlushLine; a
//            crash only cold-starts the modeled cache (no data loss).
//   CXL      as ADR when power-protected; with a volatile buffer, staged
//            (committed-but-not-evicted) lines are additionally lost.
#ifndef SRC_PMSIM_MEDIA_MODEL_H_
#define SRC_PMSIM_MEDIA_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/pmsim/config.h"
#include "src/pmsim/pmcheck.h"
#include "src/pmsim/xpbuffer.h"
#include "src/trace/component.h"

namespace cclbt::pmsim {

class PmDevice;
class ThreadContext;

// Stable slug ("adr" / "eadr" / "cxl") used by the CCL_BACKEND selector,
// dump headers and bench row names. kAuto maps to "auto".
const char* MediaBackendName(MediaBackend backend);

// Resolves config.backend in place to a concrete backend: the legacy `eadr`
// flag wins when backend is kAuto, then the CCL_BACKEND environment selector
// (adr | eadr | cxl; cxl also applies CCL_CXL_PAGE, default 4096, to
// xpline_bytes and sizes the combining buffer to hold 64 pages), then
// kAdrOptane. Afterwards config.eadr mirrors the resolved backend.
void ResolveMediaBackend(DeviceConfig& config);

class MediaModel {
 public:
  virtual ~MediaModel();

  virtual MediaBackend kind() const = 0;
  const char* name() const { return MediaBackendName(kind()); }

  // False for flush-free persistence domains (eADR): FlushLine is free and
  // immediately durable, fences carry no persistence meaning, and there is
  // no unfenced-pending crash window.
  virtual bool explicit_persist() const { return true; }
  // False when fence commit does NOT reach the persistence boundary: line
  // contents are staged in a volatile device buffer and only become durable
  // when the containing media unit is evicted (or at clean power-down).
  virtual bool durable_at_commit() const { return true; }

  // pmcheck severity for one diagnostic class on this backend (the rule
  // table; DESIGN.md §14).
  virtual PmCheckAction check_action(PmCheckClass /*cls*/) const {
    return PmCheckAction::kReport;
  }

  // --- flush-free hooks (eADR) ---------------------------------------------
  // FlushLine on a flush-free backend: absorb the dirty line into the
  // modeled CPU cache (may push implicit evictions through the device).
  virtual void AbsorbFlushFree(ThreadContext& /*ctx*/, uintptr_t /*line_offset*/) {}

  // --- volatile-buffer hooks (CXL with cxl_volatile_buffer) ----------------
  // Fence commit of one line when !durable_at_commit(): capture the line's
  // working-image content in the device buffer instead of the shadow image.
  virtual void StageCommittedLine(uintptr_t /*line_offset*/) {}
  // A media unit left the combining buffer: its staged lines are now on
  // media — promote them to the shadow (durable) image.
  virtual void CommitStagedUnit(uint64_t /*unit*/) {}

  // --- lifecycle -----------------------------------------------------------
  // DrainBuffers(), before the XPBuffer drain: flush any modeled CPU cache
  // through the device (eADR's implicit-eviction backlog).
  virtual void DrainResidual() {}
  // DrainBuffers(): clean power-down persists the device buffer — promote
  // every staged line to the shadow image.
  virtual void CommitAllStaged() {}
  // Crash()/CrashTorn(): discard volatile backend state. Returns the number
  // of acked-durable lines the backend lost (0 unless the persistence
  // boundary sits below fence commit, i.e. a volatile CXL buffer).
  virtual uint64_t DropVolatileOnCrash() { return 0; }

  // Lines currently held in backend-private buffering (modeled CPU cache /
  // staged device buffer), for gauges and tests.
  virtual uint64_t ResidentLines() const { return 0; }

 protected:
  // PmDevice internals the concrete backends drive; routed through the base
  // class so PmDevice befriends MediaModel alone.
  static void PushLine(PmDevice& device, ThreadContext& ctx, uintptr_t line_offset,
                       trace::Component comp);
  static void PushAccountingOnly(PmDevice& device, uintptr_t line_offset);
  static std::byte* Pool(PmDevice& device);
  static std::byte* Shadow(PmDevice& device);  // null without crash_tracking
};

// ADR Optane: the backend the device's built-in commit loop models. All
// hooks are no-ops; the rule table reports every class.
class AdrOptaneModel final : public MediaModel {
 public:
  MediaBackend kind() const override { return MediaBackend::kAdrOptane; }
};

// eADR: flush-free domain with a modeled CPU cache of dirty lines.
class EadrModel final : public MediaModel {
 public:
  EadrModel(PmDevice& device, size_t capacity_lines);

  MediaBackend kind() const override { return MediaBackend::kEadr; }
  bool explicit_persist() const override { return false; }
  PmCheckAction check_action(PmCheckClass cls) const override;

  void AbsorbFlushFree(ThreadContext& ctx, uintptr_t line_offset) override;
  void DrainResidual() override;
  uint64_t DropVolatileOnCrash() override;
  uint64_t ResidentLines() const override;

 private:
  PmDevice& device_;
  const size_t capacity_;
  // Flat multiset of dirty line offsets (duplicates allowed — reinserting a
  // line does not refresh its eviction odds, matching the pre-refactor
  // modeled cache bit-for-bit). Preallocated: AbsorbFlushFree is
  // allocation-free. capacity_ + 1 slots: the insert lands before the
  // while-loop evicts back down to capacity.
  mutable XpBufferLock mu_{"pm.eadr_cache"};
  std::unique_ptr<uintptr_t[]> lines_ PT_GUARDED_BY(mu_);
  size_t size_ GUARDED_BY(mu_) = 0;
  Rng rng_ GUARDED_BY(mu_){0xeadcac4eULL};
};

// CXL memory-semantic device: page-granular combining buffer; optionally
// volatile (staged durability).
class CxlMemModel final : public MediaModel {
 public:
  CxlMemModel(PmDevice& device, size_t unit_bytes, bool volatile_buffer);

  MediaBackend kind() const override { return MediaBackend::kCxlMem; }
  bool durable_at_commit() const override { return !volatile_buffer_; }

  void StageCommittedLine(uintptr_t line_offset) override;
  void CommitStagedUnit(uint64_t unit) override;
  void CommitAllStaged() override;
  uint64_t DropVolatileOnCrash() override;
  uint64_t ResidentLines() const override;

 private:
  struct LineImage {
    std::byte bytes[kCachelineBytes];
  };

  void CommitLineToShadowLocked(uintptr_t line_offset, const LineImage& image) REQUIRES(mu_);

  PmDevice& device_;
  const size_t unit_bytes_;
  const bool volatile_buffer_;
  mutable XpBufferLock mu_{"pm.cxl_staged"};
  // line offset -> content captured at fence commit. Only populated in
  // volatile mode; bounded by the combining buffer's line capacity.
  std::unordered_map<uint64_t, LineImage> staged_ GUARDED_BY(mu_);
};

// Backend factory for a resolved config (ResolveMediaBackend already ran).
std::unique_ptr<MediaModel> MakeMediaModel(PmDevice& device, const DeviceConfig& config);

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_MEDIA_MODEL_H_
