// Hardware-counter equivalents of what the paper reads through ipmctl:
// bytes written to the XPBuffer (CLI numerator), bytes physically written to
// / read from the 3D-XPoint media (XBI numerator), NUMA traffic splits, plus
// two attribution dimensions: StreamTag (which address range) and
// trace::Component (which subsystem's code — see src/trace/component.h).
//
// Sharded design: the hot path (PmDevice::FlushLine/Fence/ReadPm) never
// performs an atomic RMW on shared cachelines. Each ThreadContext owns a
// cacheline-aligned StatsShard of single-writer counters; Stats keeps a
// registry of live shards plus a base shard. Snapshot() sums base + live
// shards; a context's shard is folded into the base when it unregisters.
//
// Field list: every counter is declared once, in CCLBT_PMSIM_STATS_FIELDS.
// Snapshot/shard declarations, Delta(), AccumulateInto(), StoreZero() and
// the fold in Stats::UnregisterShard() are all generated from that list, so
// adding a counter anywhere else cannot silently miscount — the
// static_asserts below fail the build if a member bypasses the list.
//
// Consistency contract: Snapshot() and Reset() return/establish an *exact*
// total only when no worker is concurrently mutating PM state (quiesced), as
// at phase boundaries in the bench driver. Called concurrently they are
// well-defined (no data races, no torn counters — shard fields are relaxed
// atomics) but may miss in-flight increments; Reset() concurrent with a
// running worker may lose that worker's simultaneous increments.
#ifndef SRC_PMSIM_STATS_H_
#define SRC_PMSIM_STATS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/lock.h"
#include "src/pmsim/config.h"
#include "src/trace/component.h"

namespace cclbt::pmsim {

// The single source of truth for the counter set. S(name) declares a scalar
// counter, A(name, n) an n-element array counter.
#define CCLBT_PMSIM_STATS_FIELDS(S, A)                                      \
  S(user_bytes)                                                             \
  S(line_flushes)                                                           \
  S(fences)                                                                 \
  S(xpbuffer_write_bytes)                                                   \
  S(media_write_bytes)                                                      \
  S(media_read_bytes)                                                       \
  S(remote_accesses)                                                        \
  S(pm_reads)                                                               \
  S(pm_read_hits)                                                           \
  S(crashes_injected)                                                       \
  S(crash_lines_dropped)                                                    \
  S(crash_torn_lines_applied)                                               \
  A(media_writes_by_tag, static_cast<int>(::cclbt::pmsim::StreamTag::kCount)) \
  A(media_write_bytes_by_component, ::cclbt::trace::kNumComponents)         \
  A(committed_lines_by_component, ::cclbt::trace::kNumComponents)

// Total uint64 words in the field list, for the bypass static_asserts.
namespace stats_detail {
#define CCLBT_STATS_COUNT_S(name) +1
#define CCLBT_STATS_COUNT_A(name, n) +(n)
inline constexpr size_t kStatsWords =
    0 CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_COUNT_S, CCLBT_STATS_COUNT_A);
#undef CCLBT_STATS_COUNT_S
#undef CCLBT_STATS_COUNT_A
}  // namespace stats_detail

struct StatsSnapshot {
#define CCLBT_STATS_DECL_S(name) uint64_t name = 0;
#define CCLBT_STATS_DECL_A(name, n) uint64_t name[n] = {};
  CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_DECL_S, CCLBT_STATS_DECL_A)
#undef CCLBT_STATS_DECL_S
#undef CCLBT_STATS_DECL_A

  // CLI-amplification: XPBuffer bytes per user byte (paper §2.1).
  double CliAmplification() const {
    return user_bytes == 0 ? 0.0
                           : static_cast<double>(xpbuffer_write_bytes) /
                                 static_cast<double>(user_bytes);
  }
  // XBI-amplification: media bytes per user byte (paper §2.1).
  double XbiAmplification() const {
    return user_bytes == 0
               ? 0.0
               : static_cast<double>(media_write_bytes) / static_cast<double>(user_bytes);
  }

  uint64_t media_write_bytes_for(trace::Component c) const {
    return media_write_bytes_by_component[static_cast<int>(c)];
  }

  StatsSnapshot Delta(const StatsSnapshot& earlier) const {
    StatsSnapshot d;
#define CCLBT_STATS_DELTA_S(name) d.name = name - earlier.name;
#define CCLBT_STATS_DELTA_A(name, n)          \
  for (int i = 0; i < (n); i++) {             \
    d.name[i] = name[i] - earlier.name[i];    \
  }
    CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_DELTA_S, CCLBT_STATS_DELTA_A)
#undef CCLBT_STATS_DELTA_S
#undef CCLBT_STATS_DELTA_A
    return d;
  }
};

// Every member must come from CCLBT_PMSIM_STATS_FIELDS: a counter added to
// the struct directly would change sizeof without changing kStatsWords.
static_assert(sizeof(StatsSnapshot) == stats_detail::kStatsWords * sizeof(uint64_t),
              "StatsSnapshot has a member outside CCLBT_PMSIM_STATS_FIELDS");

// One thread's private counter block. Exactly one thread writes it at a time
// (its increments are relaxed load+store, which the compiler lowers to a
// plain add — no lock prefix); other threads only issue relaxed loads from
// Snapshot(). alignas(64) keeps shards off each other's cachelines.
struct alignas(64) StatsShard {
#define CCLBT_STATS_DECL_S(name) std::atomic<uint64_t> name{0};
#define CCLBT_STATS_DECL_A(name, n) std::atomic<uint64_t> name[n] = {};
  CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_DECL_S, CCLBT_STATS_DECL_A)
#undef CCLBT_STATS_DECL_S
#undef CCLBT_STATS_DECL_A

  // Single-writer increment: no RMW, no contention.
  static void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  void AddUserBytes(uint64_t n) { Bump(user_bytes, n); }
  void AddLineFlush() {
    Bump(line_flushes);
    Bump(xpbuffer_write_bytes, kCachelineBytes);
  }
  void AddFence() { Bump(fences); }
  // `comp` charges the media write to the subsystem whose scope created the
  // evicted XPLine (see trace::TraceScope).
  void AddMediaWrite(StreamTag tag, trace::Component comp, uint64_t bytes = kXplineBytes) {
    Bump(media_write_bytes, bytes);
    // Tag counts are in units of media writes (one XPLine / media unit each).
    Bump(media_writes_by_tag[static_cast<int>(tag)]);
    Bump(media_write_bytes_by_component[static_cast<int>(comp)], bytes);
  }
  void AddMediaWrite(StreamTag tag, uint64_t bytes = kXplineBytes) {
    AddMediaWrite(tag, trace::Component::kOther, bytes);
  }
  // `n` cachelines entered the XPBuffer on behalf of `comp` (fence commit,
  // or eADR cache insert).
  void AddCommittedLines(trace::Component comp, uint64_t n) {
    Bump(committed_lines_by_component[static_cast<int>(comp)], n);
  }
  void AddMediaRead(uint64_t bytes = kXplineBytes) { Bump(media_read_bytes, bytes); }
  void AddRemoteAccess() { Bump(remote_accesses); }
  void AddPmRead(bool hit) {
    Bump(pm_reads);
    if (hit) {
      Bump(pm_read_hits);
    }
  }

  void AccumulateInto(StatsSnapshot& s) const {
#define CCLBT_STATS_ACC_S(name) s.name += name.load(std::memory_order_relaxed);
#define CCLBT_STATS_ACC_A(name, n)                       \
  for (int i = 0; i < (n); i++) {                        \
    s.name[i] += name[i].load(std::memory_order_relaxed); \
  }
    CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_ACC_S, CCLBT_STATS_ACC_A)
#undef CCLBT_STATS_ACC_S
#undef CCLBT_STATS_ACC_A
  }

  // Multi-writer-safe add of a whole snapshot (atomic RMWs; used for the
  // shared base shard when folding or on context-free cold paths).
  void FetchAdd(const StatsSnapshot& s) {
#define CCLBT_STATS_ADD_S(name) name.fetch_add(s.name, std::memory_order_relaxed);
#define CCLBT_STATS_ADD_A(name, n)                          \
  for (int i = 0; i < (n); i++) {                           \
    name[i].fetch_add(s.name[i], std::memory_order_relaxed); \
  }
    CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_ADD_S, CCLBT_STATS_ADD_A)
#undef CCLBT_STATS_ADD_S
#undef CCLBT_STATS_ADD_A
  }

  void StoreZero() {
#define CCLBT_STATS_ZERO_S(name) name.store(0, std::memory_order_relaxed);
#define CCLBT_STATS_ZERO_A(name, n)            \
  for (int i = 0; i < (n); i++) {              \
    name[i].store(0, std::memory_order_relaxed); \
  }
    CCLBT_PMSIM_STATS_FIELDS(CCLBT_STATS_ZERO_S, CCLBT_STATS_ZERO_A)
#undef CCLBT_STATS_ZERO_S
#undef CCLBT_STATS_ZERO_A
  }
};

static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
// Same bypass guard as StatsSnapshot, modulo the alignas(64) tail padding.
static_assert(sizeof(StatsShard) ==
                  (stats_detail::kStatsWords * sizeof(uint64_t) + 63) / 64 * 64,
              "StatsShard has a member outside CCLBT_PMSIM_STATS_FIELDS");

class Stats {
 public:
  // Multi-writer-safe fallback accessors: atomic RMWs on the shared base
  // shard. Used by cold paths (end-of-run drains) and by tests/drivers that
  // update counters without a ThreadContext; hot-path code goes through the
  // calling context's StatsShard instead.
  void AddUserBytes(uint64_t n) { base_.user_bytes.fetch_add(n, std::memory_order_relaxed); }
  void AddLineFlush() {
    base_.line_flushes.fetch_add(1, std::memory_order_relaxed);
    base_.xpbuffer_write_bytes.fetch_add(kCachelineBytes, std::memory_order_relaxed);
  }
  void AddFence() { base_.fences.fetch_add(1, std::memory_order_relaxed); }
  void AddMediaWrite(StreamTag tag, trace::Component comp, uint64_t bytes = kXplineBytes) {
    base_.media_write_bytes.fetch_add(bytes, std::memory_order_relaxed);
    base_.media_writes_by_tag[static_cast<int>(tag)].fetch_add(1, std::memory_order_relaxed);
    base_.media_write_bytes_by_component[static_cast<int>(comp)].fetch_add(
        bytes, std::memory_order_relaxed);
  }
  void AddMediaWrite(StreamTag tag, uint64_t bytes = kXplineBytes) {
    AddMediaWrite(tag, trace::Component::kOther, bytes);
  }
  void AddCommittedLines(trace::Component comp, uint64_t n) {
    base_.committed_lines_by_component[static_cast<int>(comp)].fetch_add(
        n, std::memory_order_relaxed);
  }
  void AddMediaRead(uint64_t bytes = kXplineBytes) {
    base_.media_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddRemoteAccess() { base_.remote_accesses.fetch_add(1, std::memory_order_relaxed); }
  void AddPmRead(bool hit) {
    base_.pm_reads.fetch_add(1, std::memory_order_relaxed);
    if (hit) {
      base_.pm_read_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // One crash event (PmDevice::Crash/CrashTorn): `lines_dropped` pending
  // lines vanished, `torn_lines_applied` pending lines persisted anyway.
  void AddCrash(uint64_t lines_dropped, uint64_t torn_lines_applied) {
    base_.crashes_injected.fetch_add(1, std::memory_order_relaxed);
    base_.crash_lines_dropped.fetch_add(lines_dropped, std::memory_order_relaxed);
    base_.crash_torn_lines_applied.fetch_add(torn_lines_applied, std::memory_order_relaxed);
  }

  // Registers a live single-writer shard to be included in Snapshot().
  void RegisterShard(StatsShard* shard) {
    sync::LockGuard<sync::Mutex> guard(shards_mu_);
    shards_.push_back(shard);
  }

  // Folds the shard's totals into the base and removes it from the registry
  // (the shard's owner is going away). The shard is zeroed.
  void UnregisterShard(StatsShard* shard) {
    StatsSnapshot totals;
    shard->AccumulateInto(totals);
    shard->StoreZero();
    sync::LockGuard<sync::Mutex> guard(shards_mu_);
    for (size_t i = 0; i < shards_.size(); i++) {
      if (shards_[i] == shard) {
        shards_[i] = shards_.back();
        shards_.pop_back();
        break;
      }
    }
    base_.FetchAdd(totals);
  }

  // Base + all live shards. Exact when quiesced (see file header).
  StatsSnapshot Snapshot() const {
    sync::LockGuard<sync::Mutex> guard(shards_mu_);
    StatsSnapshot s;
    base_.AccumulateInto(s);
    for (const StatsShard* shard : shards_) {
      shard->AccumulateInto(s);
    }
    return s;
  }

  // Zeroes the base and every live shard with atomic stores. Callers must
  // quiesce workers first for exact semantics (a racing worker's concurrent
  // increments may be lost, but no torn/undefined values can result).
  void Reset() {
    sync::LockGuard<sync::Mutex> guard(shards_mu_);
    base_.StoreZero();
    for (StatsShard* shard : shards_) {
      shard->StoreZero();
    }
  }

 private:
  StatsShard base_;
  mutable sync::Mutex shards_mu_{"pm.stats_shards"};
  std::vector<StatsShard*> shards_ GUARDED_BY(shards_mu_);
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_STATS_H_
