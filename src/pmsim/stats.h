// Hardware-counter equivalents of what the paper reads through ipmctl:
// bytes written to the XPBuffer (CLI numerator), bytes physically written to
// / read from the 3D-XPoint media (XBI numerator), plus NUMA traffic splits.
#ifndef SRC_PMSIM_STATS_H_
#define SRC_PMSIM_STATS_H_

#include <atomic>
#include <cstdint>

#include "src/pmsim/config.h"

namespace cclbt::pmsim {

struct StatsSnapshot {
  uint64_t user_bytes = 0;
  uint64_t line_flushes = 0;
  uint64_t fences = 0;
  uint64_t xpbuffer_write_bytes = 0;
  uint64_t media_write_bytes = 0;
  uint64_t media_read_bytes = 0;
  uint64_t media_writes_by_tag[static_cast<int>(StreamTag::kCount)] = {0, 0, 0};
  uint64_t remote_accesses = 0;
  uint64_t pm_reads = 0;
  uint64_t pm_read_hits = 0;

  // CLI-amplification: XPBuffer bytes per user byte (paper §2.1).
  double CliAmplification() const {
    return user_bytes == 0 ? 0.0
                           : static_cast<double>(xpbuffer_write_bytes) /
                                 static_cast<double>(user_bytes);
  }
  // XBI-amplification: media bytes per user byte (paper §2.1).
  double XbiAmplification() const {
    return user_bytes == 0
               ? 0.0
               : static_cast<double>(media_write_bytes) / static_cast<double>(user_bytes);
  }

  StatsSnapshot Delta(const StatsSnapshot& earlier) const {
    StatsSnapshot d;
    d.user_bytes = user_bytes - earlier.user_bytes;
    d.line_flushes = line_flushes - earlier.line_flushes;
    d.fences = fences - earlier.fences;
    d.xpbuffer_write_bytes = xpbuffer_write_bytes - earlier.xpbuffer_write_bytes;
    d.media_write_bytes = media_write_bytes - earlier.media_write_bytes;
    d.media_read_bytes = media_read_bytes - earlier.media_read_bytes;
    for (int i = 0; i < static_cast<int>(StreamTag::kCount); i++) {
      d.media_writes_by_tag[i] = media_writes_by_tag[i] - earlier.media_writes_by_tag[i];
    }
    d.remote_accesses = remote_accesses - earlier.remote_accesses;
    d.pm_reads = pm_reads - earlier.pm_reads;
    d.pm_read_hits = pm_read_hits - earlier.pm_read_hits;
    return d;
  }
};

class Stats {
 public:
  void AddUserBytes(uint64_t n) { user_bytes_.fetch_add(n, std::memory_order_relaxed); }
  void AddLineFlush() {
    line_flushes_.fetch_add(1, std::memory_order_relaxed);
    xpbuffer_write_bytes_.fetch_add(kCachelineBytes, std::memory_order_relaxed);
  }
  void AddFence() { fences_.fetch_add(1, std::memory_order_relaxed); }
  void AddMediaWrite(StreamTag tag, uint64_t bytes = kXplineBytes) {
    media_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    media_writes_by_tag_[static_cast<int>(tag)].fetch_add(1, std::memory_order_relaxed);
  }
  void AddMediaRead(uint64_t bytes = kXplineBytes) {
    media_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddRemoteAccess() { remote_accesses_.fetch_add(1, std::memory_order_relaxed); }
  void AddPmRead(bool hit) {
    pm_reads_.fetch_add(1, std::memory_order_relaxed);
    if (hit) {
      pm_read_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  StatsSnapshot Snapshot() const {
    StatsSnapshot s;
    s.user_bytes = user_bytes_.load(std::memory_order_relaxed);
    s.line_flushes = line_flushes_.load(std::memory_order_relaxed);
    s.fences = fences_.load(std::memory_order_relaxed);
    s.xpbuffer_write_bytes = xpbuffer_write_bytes_.load(std::memory_order_relaxed);
    s.media_write_bytes = media_write_bytes_.load(std::memory_order_relaxed);
    s.media_read_bytes = media_read_bytes_.load(std::memory_order_relaxed);
    for (int i = 0; i < static_cast<int>(StreamTag::kCount); i++) {
      // Tag counts are in units of XPLines (multiply by kXplineBytes for bytes).
      s.media_writes_by_tag[i] = media_writes_by_tag_[i].load(std::memory_order_relaxed);
    }
    s.remote_accesses = remote_accesses_.load(std::memory_order_relaxed);
    s.pm_reads = pm_reads_.load(std::memory_order_relaxed);
    s.pm_read_hits = pm_read_hits_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    user_bytes_ = 0;
    line_flushes_ = 0;
    fences_ = 0;
    xpbuffer_write_bytes_ = 0;
    media_write_bytes_ = 0;
    media_read_bytes_ = 0;
    for (auto& tag_count : media_writes_by_tag_) {
      tag_count = 0;
    }
    remote_accesses_ = 0;
    pm_reads_ = 0;
    pm_read_hits_ = 0;
  }

 private:
  std::atomic<uint64_t> user_bytes_{0};
  std::atomic<uint64_t> line_flushes_{0};
  std::atomic<uint64_t> fences_{0};
  std::atomic<uint64_t> xpbuffer_write_bytes_{0};
  std::atomic<uint64_t> media_write_bytes_{0};
  std::atomic<uint64_t> media_read_bytes_{0};
  std::atomic<uint64_t> media_writes_by_tag_[static_cast<int>(StreamTag::kCount)] = {};
  std::atomic<uint64_t> remote_accesses_{0};
  std::atomic<uint64_t> pm_reads_{0};
  std::atomic<uint64_t> pm_read_hits_{0};
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_STATS_H_
