// Hardware-counter equivalents of what the paper reads through ipmctl:
// bytes written to the XPBuffer (CLI numerator), bytes physically written to
// / read from the 3D-XPoint media (XBI numerator), plus NUMA traffic splits.
//
// Sharded design: the hot path (PmDevice::FlushLine/Fence/ReadPm) never
// performs an atomic RMW on shared cachelines. Each ThreadContext owns a
// cacheline-aligned StatsShard of single-writer counters; Stats keeps a
// registry of live shards plus a base shard. Snapshot() sums base + live
// shards; a context's shard is folded into the base when it unregisters.
//
// Consistency contract: Snapshot() and Reset() return/establish an *exact*
// total only when no worker is concurrently mutating PM state (quiesced), as
// at phase boundaries in the bench driver. Called concurrently they are
// well-defined (no data races, no torn counters — shard fields are relaxed
// atomics) but may miss in-flight increments; Reset() concurrent with a
// running worker may lose that worker's simultaneous increments.
#ifndef SRC_PMSIM_STATS_H_
#define SRC_PMSIM_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/pmsim/config.h"

namespace cclbt::pmsim {

struct StatsSnapshot {
  uint64_t user_bytes = 0;
  uint64_t line_flushes = 0;
  uint64_t fences = 0;
  uint64_t xpbuffer_write_bytes = 0;
  uint64_t media_write_bytes = 0;
  uint64_t media_read_bytes = 0;
  uint64_t media_writes_by_tag[static_cast<int>(StreamTag::kCount)] = {0, 0, 0};
  uint64_t remote_accesses = 0;
  uint64_t pm_reads = 0;
  uint64_t pm_read_hits = 0;

  // CLI-amplification: XPBuffer bytes per user byte (paper §2.1).
  double CliAmplification() const {
    return user_bytes == 0 ? 0.0
                           : static_cast<double>(xpbuffer_write_bytes) /
                                 static_cast<double>(user_bytes);
  }
  // XBI-amplification: media bytes per user byte (paper §2.1).
  double XbiAmplification() const {
    return user_bytes == 0
               ? 0.0
               : static_cast<double>(media_write_bytes) / static_cast<double>(user_bytes);
  }

  StatsSnapshot Delta(const StatsSnapshot& earlier) const {
    StatsSnapshot d;
    d.user_bytes = user_bytes - earlier.user_bytes;
    d.line_flushes = line_flushes - earlier.line_flushes;
    d.fences = fences - earlier.fences;
    d.xpbuffer_write_bytes = xpbuffer_write_bytes - earlier.xpbuffer_write_bytes;
    d.media_write_bytes = media_write_bytes - earlier.media_write_bytes;
    d.media_read_bytes = media_read_bytes - earlier.media_read_bytes;
    for (int i = 0; i < static_cast<int>(StreamTag::kCount); i++) {
      d.media_writes_by_tag[i] = media_writes_by_tag[i] - earlier.media_writes_by_tag[i];
    }
    d.remote_accesses = remote_accesses - earlier.remote_accesses;
    d.pm_reads = pm_reads - earlier.pm_reads;
    d.pm_read_hits = pm_read_hits - earlier.pm_read_hits;
    return d;
  }
};

// One thread's private counter block. Exactly one thread writes it at a time
// (its increments are relaxed load+store, which the compiler lowers to a
// plain add — no lock prefix); other threads only issue relaxed loads from
// Snapshot(). alignas(64) keeps shards off each other's cachelines.
struct alignas(64) StatsShard {
  std::atomic<uint64_t> user_bytes{0};
  std::atomic<uint64_t> line_flushes{0};
  std::atomic<uint64_t> fences{0};
  std::atomic<uint64_t> xpbuffer_write_bytes{0};
  std::atomic<uint64_t> media_write_bytes{0};
  std::atomic<uint64_t> media_read_bytes{0};
  std::atomic<uint64_t> media_writes_by_tag[static_cast<int>(StreamTag::kCount)] = {};
  std::atomic<uint64_t> remote_accesses{0};
  std::atomic<uint64_t> pm_reads{0};
  std::atomic<uint64_t> pm_read_hits{0};

  // Single-writer increment: no RMW, no contention.
  static void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  void AddUserBytes(uint64_t n) { Bump(user_bytes, n); }
  void AddLineFlush() {
    Bump(line_flushes);
    Bump(xpbuffer_write_bytes, kCachelineBytes);
  }
  void AddFence() { Bump(fences); }
  void AddMediaWrite(StreamTag tag, uint64_t bytes = kXplineBytes) {
    Bump(media_write_bytes, bytes);
    // Tag counts are in units of media writes (one XPLine / media unit each).
    Bump(media_writes_by_tag[static_cast<int>(tag)]);
  }
  void AddMediaRead(uint64_t bytes = kXplineBytes) { Bump(media_read_bytes, bytes); }
  void AddRemoteAccess() { Bump(remote_accesses); }
  void AddPmRead(bool hit) {
    Bump(pm_reads);
    if (hit) {
      Bump(pm_read_hits);
    }
  }

  void AccumulateInto(StatsSnapshot& s) const {
    s.user_bytes += user_bytes.load(std::memory_order_relaxed);
    s.line_flushes += line_flushes.load(std::memory_order_relaxed);
    s.fences += fences.load(std::memory_order_relaxed);
    s.xpbuffer_write_bytes += xpbuffer_write_bytes.load(std::memory_order_relaxed);
    s.media_write_bytes += media_write_bytes.load(std::memory_order_relaxed);
    s.media_read_bytes += media_read_bytes.load(std::memory_order_relaxed);
    for (int i = 0; i < static_cast<int>(StreamTag::kCount); i++) {
      s.media_writes_by_tag[i] += media_writes_by_tag[i].load(std::memory_order_relaxed);
    }
    s.remote_accesses += remote_accesses.load(std::memory_order_relaxed);
    s.pm_reads += pm_reads.load(std::memory_order_relaxed);
    s.pm_read_hits += pm_read_hits.load(std::memory_order_relaxed);
  }

  void StoreZero() {
    user_bytes.store(0, std::memory_order_relaxed);
    line_flushes.store(0, std::memory_order_relaxed);
    fences.store(0, std::memory_order_relaxed);
    xpbuffer_write_bytes.store(0, std::memory_order_relaxed);
    media_write_bytes.store(0, std::memory_order_relaxed);
    media_read_bytes.store(0, std::memory_order_relaxed);
    for (auto& tag_count : media_writes_by_tag) {
      tag_count.store(0, std::memory_order_relaxed);
    }
    remote_accesses.store(0, std::memory_order_relaxed);
    pm_reads.store(0, std::memory_order_relaxed);
    pm_read_hits.store(0, std::memory_order_relaxed);
  }
};

class Stats {
 public:
  // Multi-writer-safe fallback accessors: atomic RMWs on the shared base
  // shard. Used by cold paths (end-of-run drains) and by tests/drivers that
  // update counters without a ThreadContext; hot-path code goes through the
  // calling context's StatsShard instead.
  void AddUserBytes(uint64_t n) { base_.user_bytes.fetch_add(n, std::memory_order_relaxed); }
  void AddLineFlush() {
    base_.line_flushes.fetch_add(1, std::memory_order_relaxed);
    base_.xpbuffer_write_bytes.fetch_add(kCachelineBytes, std::memory_order_relaxed);
  }
  void AddFence() { base_.fences.fetch_add(1, std::memory_order_relaxed); }
  void AddMediaWrite(StreamTag tag, uint64_t bytes = kXplineBytes) {
    base_.media_write_bytes.fetch_add(bytes, std::memory_order_relaxed);
    base_.media_writes_by_tag[static_cast<int>(tag)].fetch_add(1, std::memory_order_relaxed);
  }
  void AddMediaRead(uint64_t bytes = kXplineBytes) {
    base_.media_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddRemoteAccess() { base_.remote_accesses.fetch_add(1, std::memory_order_relaxed); }
  void AddPmRead(bool hit) {
    base_.pm_reads.fetch_add(1, std::memory_order_relaxed);
    if (hit) {
      base_.pm_read_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Registers a live single-writer shard to be included in Snapshot().
  void RegisterShard(StatsShard* shard) {
    std::lock_guard<std::mutex> guard(shards_mu_);
    shards_.push_back(shard);
  }

  // Folds the shard's totals into the base and removes it from the registry
  // (the shard's owner is going away). The shard is zeroed.
  void UnregisterShard(StatsShard* shard) {
    StatsSnapshot totals;
    shard->AccumulateInto(totals);
    shard->StoreZero();
    std::lock_guard<std::mutex> guard(shards_mu_);
    for (size_t i = 0; i < shards_.size(); i++) {
      if (shards_[i] == shard) {
        shards_[i] = shards_.back();
        shards_.pop_back();
        break;
      }
    }
    base_.user_bytes.fetch_add(totals.user_bytes, std::memory_order_relaxed);
    base_.line_flushes.fetch_add(totals.line_flushes, std::memory_order_relaxed);
    base_.fences.fetch_add(totals.fences, std::memory_order_relaxed);
    base_.xpbuffer_write_bytes.fetch_add(totals.xpbuffer_write_bytes, std::memory_order_relaxed);
    base_.media_write_bytes.fetch_add(totals.media_write_bytes, std::memory_order_relaxed);
    base_.media_read_bytes.fetch_add(totals.media_read_bytes, std::memory_order_relaxed);
    for (int i = 0; i < static_cast<int>(StreamTag::kCount); i++) {
      base_.media_writes_by_tag[i].fetch_add(totals.media_writes_by_tag[i],
                                             std::memory_order_relaxed);
    }
    base_.remote_accesses.fetch_add(totals.remote_accesses, std::memory_order_relaxed);
    base_.pm_reads.fetch_add(totals.pm_reads, std::memory_order_relaxed);
    base_.pm_read_hits.fetch_add(totals.pm_read_hits, std::memory_order_relaxed);
  }

  // Base + all live shards. Exact when quiesced (see file header).
  StatsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> guard(shards_mu_);
    StatsSnapshot s;
    base_.AccumulateInto(s);
    for (const StatsShard* shard : shards_) {
      shard->AccumulateInto(s);
    }
    return s;
  }

  // Zeroes the base and every live shard with atomic stores. Callers must
  // quiesce workers first for exact semantics (a racing worker's concurrent
  // increments may be lost, but no torn/undefined values can result).
  void Reset() {
    std::lock_guard<std::mutex> guard(shards_mu_);
    base_.StoreZero();
    for (StatsShard* shard : shards_) {
      shard->StoreZero();
    }
  }

 private:
  StatsShard base_;
  mutable std::mutex shards_mu_;
  std::vector<StatsShard*> shards_;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_STATS_H_
