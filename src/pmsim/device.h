// The simulated persistent-memory device. See DESIGN.md §1-2 for the
// substitution rationale.
//
// Address space: one contiguous pool. The pool is split into one contiguous
// region per socket; within a socket, addresses interleave across the
// socket's DIMMs at `interleave_bytes` granularity (mirroring how the kernel
// interleaves an App Direct namespace across DIMMs).
//
// Persistence model (ADR, the default backend): regular stores hit the
// working image only. A cacheline becomes persistent when it has been
// flushed (FlushLine) *and* a subsequent fence executed on the same thread;
// at that point the line is copied into the shadow persistent image and
// pushed through the XPBuffer model, which generates media traffic on
// eviction. Crash() restores the working image from the shadow image, so
// unflushed/unfenced stores vanish exactly as they would on real ADR
// hardware.
//
// Everything backend-specific — the eADR flush-free domain with its modeled
// CPU cache, the CXL page-buffer staging, the per-backend pmcheck rule
// table — lives behind the MediaModel owned by the device (media_model.h,
// DESIGN.md §14). The device caches the model's two hot-path predicates as
// plain bools, so the default ADR fence/commit loop is exactly the
// pre-refactor code path.
#ifndef SRC_PMSIM_DEVICE_H_
#define SRC_PMSIM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/lock.h"
#include "src/pmsim/config.h"
#include "src/pmsim/crash_injector.h"
#include "src/pmsim/stats.h"
#include "src/pmsim/thread_context.h"
#include "src/pmsim/xpbuffer.h"

namespace cclbt::pmsim {

class LockCheck;
class MediaModel;
class PmCheck;

class PmDevice {
 public:
  explicit PmDevice(const DeviceConfig& config);
  ~PmDevice();

  PmDevice(const PmDevice&) = delete;
  PmDevice& operator=(const PmDevice&) = delete;

  std::byte* base() { return pool_.get(); }
  const std::byte* base() const { return pool_.get(); }
  size_t size() const { return config_.pool_bytes; }
  const DeviceConfig& config() const { return config_; }
  Stats& stats() { return stats_; }

  bool Contains(const void* addr) const {
    auto p = reinterpret_cast<const std::byte*>(addr);
    return p >= pool_.get() && p < pool_.get() + config_.pool_bytes;
  }
  uintptr_t OffsetOf(const void* addr) const {
    return static_cast<uintptr_t>(reinterpret_cast<const std::byte*>(addr) - pool_.get());
  }
  void* AddrOf(uintptr_t offset) { return pool_.get() + offset; }

  // Socket/DIMM mapping sits on the per-flush hot path; the divisors are
  // precomputed at construction and use shifts when they are powers of two
  // (the default geometry; arbitrary values fall back to division).
  int SocketOf(uintptr_t offset) const {
    return static_cast<int>(socket_shift_ >= 0 ? offset >> socket_shift_
                                               : offset / config_.socket_region_bytes());
  }
  // Global DIMM index in [0, total_dimms).
  int DimmOf(uintptr_t offset) const { return DimmOfAt(offset, SocketOf(offset)); }
  // Variant for callers that already know the socket (the commit path needs
  // both and computes SocketOf once).
  int DimmOfAt(uintptr_t offset, int socket) const {
    uintptr_t in_socket =
        socket_shift_ >= 0 ? offset & (config_.socket_region_bytes() - 1)
                           : offset % config_.socket_region_bytes();
    uintptr_t slot = interleave_shift_ >= 0 ? in_socket >> interleave_shift_
                                            : in_socket / config_.interleave_bytes;
    auto dimm_in_socket = static_cast<int>(
        dimm_mask_ != 0 ? slot & dimm_mask_
                        : slot % static_cast<size_t>(config_.dimms_per_socket));
    return socket * config_.dimms_per_socket + dimm_in_socket;
  }

  // --- stream attribution -------------------------------------------------
  // Allocators register the ranges they hand out so evicted XPLines can be
  // attributed to leaf vs log traffic (Figure 13(b)).
  void RegisterRange(const void* start, size_t len, StreamTag tag);
  StreamTag TagOf(uintptr_t offset) const;

  // --- persistence primitives ----------------------------------------------
  // clwb: marks one 64 B line for persistence at the next fence.
  void FlushLine(ThreadContext& ctx, const void* addr);
  // sfence: commits all pending lines (shadow copy + XPBuffer + media cost).
  void Fence(ThreadContext& ctx);
  // Convenience: flush every line covering [addr, addr+len) and fence.
  void PersistRange(ThreadContext& ctx, const void* addr, size_t len);

  // --- read path ------------------------------------------------------------
  // Charges PM read latency for [addr, addr+len) and records media reads for
  // XPLines not resident in the XPBuffer.
  void ReadPm(ThreadContext& ctx, const void* addr, size_t len);

  // --- end-of-run / failure -------------------------------------------------
  // Flush all XPBuffers to media (power-down accounting; keeps persistence).
  void DrainBuffers();
  // Power failure: pending (unfenced) lines are lost, XPBuffer content is
  // preserved (it sits behind ADR), the working image is restored from the
  // persistent image. Callers must have quiesced all worker threads.
  void Crash();
  // Like Crash(), but each pending unfenced line independently persists with
  // probability 1/2 (clwb without sfence *may* reach the DIMM). Exercises
  // recovery under torn fence groups.
  void CrashTorn(uint64_t seed);

  // Installs (or with nullptr removes) a crash-injection policy: every fence
  // reports to the injector before committing, which may throw
  // CrashPointReached at a scheduled fence count. The caller owns the
  // injector and must uninstall it before destroying it. Disarmed cost is
  // one pointer test per fence; with no injector installed the fence path is
  // unchanged.
  void SetCrashInjector(CrashInjector* injector) { injector_ = injector; }
  CrashInjector* crash_injector() const { return injector_; }

  // The persistency-ordering checker (DESIGN.md §11), present only when
  // enabled via DeviceConfig::pmcheck or CCL_PMCHECK=1 at construction;
  // nullptr otherwise. The pointer doubles as the runtime gate: the fence
  // path reads it once per fence (same pattern as the crash injector).
  PmCheck* pmcheck() const { return pmcheck_.get(); }

  // The locking-discipline checker (DESIGN.md §16), present only when enabled
  // via DeviceConfig::lockcheck or CCL_LOCKCHECK=1 at construction; nullptr
  // otherwise. Same gate pattern as pmcheck: one pointer test per
  // flush/fence/read on the disabled path, zero virtual-time writes either way.
  LockCheck* lockcheck() const { return lockcheck_.get(); }

  // The persistence-domain backend (DESIGN.md §14), never null. The resolved
  // backend kind is also visible as config().backend.
  MediaModel& media() const { return *media_; }

  // Largest virtual completion time across DIMM write servers; a run's
  // modeled elapsed time is max(worker clocks, this).
  uint64_t MaxDimmBusyNs() const;

  // XPBuffer occupancy/churn aggregated over every DIMM's buffer, for the
  // metrics epoch gauges. Each per-buffer accessor takes that buffer's lock;
  // exact when quiesced, a consistent-enough sample otherwise. Windowed
  // eviction rate = delta of `evictions` across consecutive samples.
  struct XpBufferTotals {
    uint64_t resident = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  XpBufferTotals SampleXpBuffers() const;

  // Frontier of all registered contexts' virtual clocks. A deterministic
  // background participant (e.g. CCL-BTree's GC context) fast-forwards to
  // this point before running, so its work lands "now" in the simulated
  // timeline rather than at whatever stale time its private clock holds.
  uint64_t MaxContextClockNs() const;
  // Raises every registered context's clock to at least `to_ns`. Models a
  // stop-the-world phase (naive GC): all workers observe the barrier's end.
  void RaiseContextClocks(uint64_t to_ns);

  // Reset performance accounting between bench phases (not persistence state).
  void ResetCosts();

  // --- pmtrace heatmap -------------------------------------------------------
  // Per-media-unit write counts, recorded when config.record_unit_heatmap.
  bool heatmap_enabled() const { return num_units_ != 0; }
  size_t num_units() const { return num_units_; }
  uint32_t UnitWriteCount(uint64_t unit) const {
    return unit_writes_[unit].load(std::memory_order_relaxed);
  }

 private:
  friend class ThreadContext;
  friend class PmCheck;     // reads pool_/shadow_/config_ at construction
  friend class MediaModel;  // backend hooks drive PushLine / the images

  // Commits ctx's whole pending set: pmcheck hook (when kChecked) followed by
  // the per-line CommitLine loop. Templated on both runtime gates so Fence
  // reads each gate once and the unchecked/untraced instantiation carries
  // zero checker/tracing instructions (DESIGN.md §8, §11).
  template <bool kTraced, bool kChecked>
  void CommitPending(ThreadContext& ctx, trace::Component comp);
  // Copies one line to the shadow image and pushes it through the XPBuffer,
  // charging media costs to `ctx`. `comp` is the component whose scope
  // committed the line (stamped into the buffered XPLine for attribution at
  // eviction time). Templated on the trace gate so Fence reads the gate once
  // and the untraced instantiation of the per-line loop carries zero tracing
  // instructions (the <2% disabled-overhead contract, DESIGN.md §8).
  template <bool kTraced>
  void CommitLine(ThreadContext& ctx, uintptr_t line_offset, trace::Component comp);
  template <bool kTraced>
  void PushThroughXpBuffer(ThreadContext& ctx, uintptr_t line_offset, trace::Component comp);
  // Gate-dispatching wrapper for per-line callers off the fence loop (eADR
  // cache eviction, end-of-run drains).
  void PushLine(ThreadContext& ctx, uintptr_t line_offset, trace::Component comp);
  // Context-free variant for end-of-run drains: records media traffic on the
  // shared base counters, charges no virtual time.
  void PushThroughXpBufferAccountingOnly(uintptr_t line_offset);

  // Media-unit ("XPLine") index and cacheline position within it.
  uint64_t UnitOf(uintptr_t offset) const {
    return unit_shift_ >= 0 ? offset >> unit_shift_ : offset / config_.xpline_bytes;
  }
  int LineInUnit(uintptr_t offset) const {
    size_t in_unit = unit_shift_ >= 0 ? offset & (config_.xpline_bytes - 1)
                                      : offset % config_.xpline_bytes;
    return static_cast<int>(in_unit / kCachelineBytes);
  }
  // Advances `dimm`'s write-server timeline by `service` virtual ns and
  // returns how far `now` lags behind the new completion time. Caller must
  // hold that DIMM's buffer lock (xpbuffers_[dimm]->mutex()).
  uint64_t AdvanceDimmClockLocked(int dimm, uint64_t now, uint64_t service) {
    uint64_t& clock = dimm_busy_until_ns_[static_cast<size_t>(dimm)].busy_until_ns;
    uint64_t finish = (clock > now ? clock : now) + service;
    clock = finish;
    return finish - now;
  }
  // Bumps the heatmap counter for `unit` if the heatmap is on. The fetch_add
  // only ever runs behind an explicit config opt-in.
  void NoteMediaWrite(uint64_t unit) {
    if (num_units_ != 0) {
      unit_writes_[unit].fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RegisterContext(ThreadContext* ctx);
  void UnregisterContext(ThreadContext* ctx);

  // Pool and shadow image are anonymous mappings: zero-filled lazily by the
  // kernel, so a large pool costs nothing until touched.
  struct Mapping {
    std::byte* data = nullptr;
    size_t bytes = 0;
    std::byte* get() const { return data; }
  };
  static Mapping MapAnonymous(size_t bytes);
  static void Unmap(Mapping& mapping);

  DeviceConfig config_;
  // Hot-path divisor caches: log2 of the divisor when it is a power of two,
  // -1 to fall back to division/modulo.
  int socket_shift_ = -1;
  int interleave_shift_ = -1;
  int unit_shift_ = -1;
  size_t dimm_mask_ = 0;  // dimms_per_socket - 1 when pow2, else 0
  uint64_t unit_scale_ = 1;  // xpline_bytes / 256 (media service multiplier)
  // Heatmap write counters, one per media unit; null/0 unless
  // config.record_unit_heatmap. Declared among the hot members: num_units_
  // is tested on every XPLine eviction (NoteMediaWrite), so it must share a
  // cacheline with fields that hot path touches anyway.
  size_t num_units_ = 0;
  std::unique_ptr<std::atomic<uint32_t>[]> unit_writes_;
  Mapping pool_;
  Mapping shadow_;
  Stats stats_;
  CrashInjector* injector_ = nullptr;
  std::unique_ptr<PmCheck> pmcheck_;      // persistency checker; null = disabled
  std::unique_ptr<LockCheck> lockcheck_;  // locking checker; null = disabled
  std::vector<std::unique_ptr<XpBuffer>> xpbuffers_;  // one per DIMM
  // One virtual write-server timeline per DIMM, cacheline-padded against
  // false sharing and stored contiguously. Plain (non-atomic) because every
  // access — hot-path advances, MaxDimmBusyNs, ResetCosts — happens under
  // the matching DIMM's buffer lock, which saves an atomic RMW per committed
  // line over the old standalone CAS loop.
  struct alignas(64) DimmClock {
    uint64_t busy_until_ns = 0;
  };
  std::vector<DimmClock> dimm_busy_until_ns_;

  // Stream tag per 4 KB pool page. Written at allocator-registration time,
  // read on every XPLine eviction; relaxed atomics keep concurrent
  // registration/eviction well-defined.
  static constexpr size_t kTagPageBytes = 4096;
  std::unique_ptr<std::atomic<uint8_t>[]> page_tags_;

  mutable sync::Mutex contexts_mu_{"pm.contexts"};
  std::vector<ThreadContext*> contexts_ GUARDED_BY(contexts_mu_);

  // The persistence-domain backend (media_model.h); constructed before the
  // checker so pmcheck can copy its rule table.
  std::unique_ptr<MediaModel> media_;
  // Hot-path cache of the model's predicates: FlushLine/Fence test
  // explicit_persist_ and the commit loop tests durable_at_commit_ as plain
  // bools, so the default ADR path never takes a virtual call.
  bool explicit_persist_ = true;
  bool durable_at_commit_ = true;
};

// Free-function helpers used by index code; they resolve the calling
// thread's context. Index implementations call these instead of threading a
// context parameter through every layer.
void FlushLine(const void* addr);
void Fence();
void Persist(const void* addr, size_t len);
void ReadPm(const void* addr, size_t len);
void AdvanceCpu(uint64_t ns);

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_DEVICE_H_
