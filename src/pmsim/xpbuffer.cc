#include "src/pmsim/xpbuffer.h"

namespace cclbt::pmsim {

XpBufferResult XpBuffer::OnLineFlush(uint64_t xpline, int line_in_xpline, StreamTag tag) {
  std::lock_guard<std::mutex> guard(mu_);
  XpBufferResult result;
  auto it = map_.find(xpline);
  if (it != map_.end()) {
    // Write-combining hit: merge into the resident XPLine.
    it->second.dirty_mask |= 1ULL << line_in_xpline;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return result;
  }
  if (map_.size() >= capacity_) {
    // Evict LRU: one media write; RMW read first if partially dirty.
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto victim_it = map_.find(victim);
    result.evicted = true;
    result.rmw = victim_it->second.dirty_mask != full_mask_;
    result.evicted_tag = victim_it->second.tag;
    map_.erase(victim_it);
  }
  lru_.push_front(xpline);
  map_.emplace(xpline, Entry{lru_.begin(), 1ULL << line_in_xpline, tag});
  return result;
}

bool XpBuffer::OnRead(uint64_t xpline) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = map_.find(xpline);
  if (it == map_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return true;
}

}  // namespace cclbt::pmsim
