#include "src/pmsim/xpbuffer.h"

#include <cassert>

namespace cclbt::pmsim {

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

XpBuffer::XpBuffer(size_t entries, int lines_per_unit)
    : capacity_(entries),
      full_mask_(lines_per_unit >= 64 ? ~0ULL : (1ULL << lines_per_unit) - 1) {
  assert(capacity_ >= 1);
  // Load factor <= 0.25: probe chains then almost never exceed one step,
  // which keeps the probe loops' trip counts predictable (the hot path's
  // cost is dominated by branch mispredicts, not loads — the whole structure
  // lives in L1). Memory is trivial: 16 B per table entry. Min 16 so tiny
  // test buffers still probe sanely.
  size_t table_size = NextPow2(capacity_ * 4 < 16 ? 16 : capacity_ * 4);
  table_mask_ = table_size - 1;
  slots_.resize(capacity_);
  table_.assign(table_size, TableEntry{});
  ResetLocked();
}

void XpBuffer::ResetLocked() {
  size_ = 0;
  lru_head_ = kNil;
  lru_tail_ = kNil;
  table_.assign(table_.size(), TableEntry{});
  // Thread all slots onto the free list.
  free_head_ = 0;
  for (size_t i = 0; i < capacity_; i++) {
    slots_[i].next = i + 1 < capacity_ ? static_cast<int32_t>(i + 1) : kNil;
  }
}

}  // namespace cclbt::pmsim
