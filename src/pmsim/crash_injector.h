// Deterministic crash injection on the fence path (DESIGN.md §9).
//
// A CrashInjector installed via PmDevice::SetCrashInjector counts every fence
// the device executes and, when armed with a target, aborts the workload at
// the scheduled fence by throwing CrashPointReached *before* the fence
// commits its pending lines — the machine loses power at the sfence
// instruction, so the flushed-but-unfenced lines are exactly the state a real
// ADR failure leaves in flight. The harness catches the exception, discards
// the index's DRAM state, and settles the media image with PmDevice::Crash()
// (clean) or CrashTorn(seed) (each pending line independently persists).
//
// Disarmed cost: the device tests one pointer per fence (the same
// runtime-gate pattern as the trace gate, DESIGN.md §8); with no injector
// installed the fence path is unchanged, so virtual-time metrics stay
// bit-identical.
#ifndef SRC_PMSIM_CRASH_INJECTOR_H_
#define SRC_PMSIM_CRASH_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace cclbt::pmsim {

// Thrown out of PmDevice::Fence when an armed injector reaches its target.
// Propagates through index code; the aborted index object must be discarded
// (its DRAM state is mid-operation), never operated on again.
struct CrashPointReached {
  uint64_t fence_index = 0;  // 1-based fence count since Arm()
};

class CrashInjector {
 public:
  enum class Mode : uint8_t { kClean, kTorn };

  // Restarts the fence count at zero and schedules a crash at the
  // `fence_target`-th observed fence (1-based). A target of 0 arms in
  // count-only mode: fences are counted but no crash fires — used to probe
  // how many fences a workload executes before building a schedule.
  void Arm(uint64_t fence_target, Mode mode = Mode::kClean, uint64_t torn_seed = 0) {
    fences_observed_.store(0, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    mode_ = mode;
    torn_seed_ = torn_seed;
    target_.store(fence_target, std::memory_order_relaxed);
  }

  // Stops firing; fences are still counted until the injector is uninstalled.
  void Disarm() { target_.store(0, std::memory_order_relaxed); }

  uint64_t fences_observed() const { return fences_observed_.load(std::memory_order_relaxed); }
  bool fired() const { return fired_.load(std::memory_order_relaxed); }
  Mode mode() const { return mode_; }
  uint64_t torn_seed() const { return torn_seed_; }

  // Called by PmDevice::Fence before the fence commits. The exchange on
  // fired_ guarantees exactly one throw even if several workers fence
  // concurrently around the target.
  void OnFence() {
    uint64_t count = fences_observed_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t target = target_.load(std::memory_order_relaxed);
    if (target != 0 && count >= target && !fired_.exchange(true, std::memory_order_relaxed)) {
      throw CrashPointReached{count};
    }
  }

 private:
  std::atomic<uint64_t> fences_observed_{0};
  std::atomic<uint64_t> target_{0};
  std::atomic<bool> fired_{false};
  Mode mode_ = Mode::kClean;
  uint64_t torn_seed_ = 0;
};

}  // namespace cclbt::pmsim

#endif  // SRC_PMSIM_CRASH_INJECTOR_H_
