#include "src/pmsim/pmcheck.h"

#include <cstring>

#include "src/pmsim/device.h"
#include "src/pmsim/media_model.h"
#include "src/pmsim/thread_context.h"
#include "src/trace/trace.h"

namespace cclbt::pmsim {

namespace {
// Per-thread nesting depth of PmCheckExpect scopes, one slot per class.
// constinit: no TLS init guard on the ActiveFor fast path.
constinit thread_local int tl_expect_depth[kNumPmCheckClasses] = {};
}  // namespace

const char* PmCheckClassName(PmCheckClass cls) {
  switch (cls) {
    case PmCheckClass::kRedundantFlush: return "redundant_flush";
    case PmCheckClass::kUselessFence: return "useless_fence";
    case PmCheckClass::kDirtyAtFence: return "dirty_at_fence";
    case PmCheckClass::kUnflushedAtClose: return "unflushed_at_close";
    case PmCheckClass::kReadBeforeDurable: return "read_before_durable";
    case PmCheckClass::kCount: break;
  }
  return "?";
}

const char* PmCheckEventKindName(PmCheckEvent::Kind kind) {
  switch (kind) {
    case PmCheckEvent::Kind::kFlush: return "flush";
    case PmCheckEvent::Kind::kFence: return "fence";
    case PmCheckEvent::Kind::kRead: return "read";
    case PmCheckEvent::Kind::kCrash: return "crash";
    case PmCheckEvent::Kind::kClose: return "close";
  }
  return "?";
}

PmCheckExpect::PmCheckExpect(PmCheckClass cls) : cls_(cls) {
  tl_expect_depth[static_cast<int>(cls_)]++;
}

PmCheckExpect::~PmCheckExpect() { tl_expect_depth[static_cast<int>(cls_)]--; }

bool PmCheckExpect::ActiveFor(PmCheckClass cls) {
  return tl_expect_depth[static_cast<int>(cls)] > 0;
}

PmCheck::PmCheck(PmDevice& device)
    : device_(device),
      pool_(device.pool_.get()),
      shadow_(device.shadow_.get()),
      pool_bytes_(device.config_.pool_bytes),
      xpline_bytes_(device.config_.xpline_bytes) {
  // The device constructs its MediaModel before the checker, so the backend
  // rule table is final here.
  for (int c = 0; c < kNumPmCheckClasses; c++) {
    actions_[static_cast<size_t>(c)] =
        device.media().check_action(static_cast<PmCheckClass>(c));
  }
  lines_.reserve(1 << 14);
  diagnostics_.reserve(64);
}

uint64_t PmCheck::HashLine(const std::byte* line) {
  // FNV-1a over the 8 words of one cacheline; collision odds are irrelevant
  // at diagnostic scale and the hash never leaves the checker.
  uint64_t words[kCachelineBytes / sizeof(uint64_t)];
  std::memcpy(words, line, kCachelineBytes);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words) {
    h = (h ^ w) * 0x100000001b3ULL;
  }
  return h;
}

void PmCheck::AppendEventLocked(PmCheckEvent::Kind kind, trace::Component comp, uint16_t worker,
                                uint64_t detail) {
  PmCheckEvent& slot = events_[events_seen_ % kEventRing];
  slot.kind = kind;
  slot.comp = comp;
  slot.worker = worker;
  slot.detail = detail;
  slot.fence_epoch = fence_epochs_;
  events_seen_++;
}

void PmCheck::DiagLocked(PmCheckClass cls, uint64_t line, trace::Component comp, uint16_t worker,
                         const char* detail) {
  const PmCheckAction action = actions_[static_cast<size_t>(cls)];
  if (action == PmCheckAction::kOff) {
    return;
  }
  if (PmCheckExpect::ActiveFor(cls)) {
    suppressed_[static_cast<int>(cls)]++;
    return;
  }
  const bool info = action == PmCheckAction::kInfo;
  if (info) {
    info_counts_[static_cast<int>(cls)]++;
    if (info_materialized_ >= kMaxInfoDiagnostics) {
      return;  // counted above; info overflow is not "dropped" data
    }
    info_materialized_++;
  } else {
    counts_[static_cast<int>(cls)]++;
    if (diagnostics_.size() - info_materialized_ >= kMaxDiagnostics) {
      diagnostics_truncated_++;
      return;
    }
  }
  PmCheckDiagnostic d;
  d.info = info;
  d.cls = cls;
  d.line = line;
  d.xpline = line / xpline_bytes_;
  d.dimm = device_.DimmOf(line);
  d.comp = comp;
  d.worker = worker;
  d.fence_epoch = fence_epochs_;
  d.detail = detail;
  size_t n = events_seen_ < kRecentEventsPerDiagnostic
                 ? static_cast<size_t>(events_seen_)
                 : kRecentEventsPerDiagnostic;
  d.recent.reserve(n);
  for (size_t i = 0; i < n; i++) {
    d.recent.push_back(events_[(events_seen_ - n + i) % kEventRing]);
  }
  diagnostics_.push_back(std::move(d));
}

void PmCheck::OnFlush(const ThreadContext& ctx, uintptr_t line, bool newly_pending) {
  const trace::Component comp = trace::CurrentComponent();
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  std::lock_guard<CheckerMutex> guard(mu_);
  AppendEventLocked(PmCheckEvent::Kind::kFlush, comp, worker, line);
  const uint64_t hash = HashLine(pool_ + line);
  LineRecord& rec = lines_[line];
  if (!newly_pending) {
    // Re-flush of a line already in this context's pending set: redundant
    // unless the content changed since the first flush (a legitimate
    // re-flush after a re-dirty, which also clears the dirty-at-fence risk).
    if (rec.pending && hash == rec.flush_hash) {
      DiagLocked(PmCheckClass::kRedundantFlush, line, comp, worker,
                 "reflush_of_pending_line_with_unchanged_content");
    }
  } else if (std::memcmp(pool_ + line, shadow_ + line, kCachelineBytes) == 0) {
    // Flush of a clean line: the working image already equals the durable
    // image, so the flush persists nothing (yet costs CPU + media traffic).
    DiagLocked(PmCheckClass::kRedundantFlush, line, comp, worker, "flush_of_clean_line");
  }
  rec.pending = true;
  rec.flush_hash = hash;
  rec.epoch = fence_epochs_ + 1;  // commits no earlier than the next fence
  rec.comp = comp;
  rec.worker = worker;
  rec.owner = &ctx;
  rec.close_reported = false;
}

void PmCheck::OnUselessFence(const ThreadContext& ctx) {
  const trace::Component comp = trace::CurrentComponent();
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  std::lock_guard<CheckerMutex> guard(mu_);
  fence_epochs_++;
  AppendEventLocked(PmCheckEvent::Kind::kFence, comp, worker, 0);
  DiagLocked(PmCheckClass::kUselessFence, 0, comp, worker, "fence_with_no_pending_lines");
}

void PmCheck::OnFlushFree(const ThreadContext& ctx, uintptr_t line) {
  const trace::Component comp = trace::CurrentComponent();
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  std::lock_guard<CheckerMutex> guard(mu_);
  AppendEventLocked(PmCheckEvent::Kind::kFlush, comp, worker, line);
  // Called before the device syncs the shadow copy, so a clean line here
  // means the flush persists nothing on *any* backend.
  if (std::memcmp(pool_ + line, shadow_ + line, kCachelineBytes) == 0) {
    DiagLocked(PmCheckClass::kRedundantFlush, line, comp, worker, "flush_of_clean_line");
  }
  // The line becomes durable at this flush (flush-free domain): keep the
  // record for class-4 attribution but never in a pending state.
  LineRecord& rec = lines_[line];
  rec.flush_hash = HashLine(pool_ + line);
  rec.epoch = fence_epochs_;
  rec.comp = comp;
  rec.worker = worker;
  rec.pending = false;
  rec.owner = nullptr;
  rec.close_reported = false;
}

void PmCheck::OnFenceFree(const ThreadContext& ctx) {
  const trace::Component comp = trace::CurrentComponent();
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  std::lock_guard<CheckerMutex> guard(mu_);
  fence_epochs_++;
  AppendEventLocked(PmCheckEvent::Kind::kFence, comp, worker, 0);
  DiagLocked(PmCheckClass::kUselessFence, 0, comp, worker, "fence_in_flush_free_domain");
}

void PmCheck::OnFenceCommit(const ThreadContext& ctx, const std::vector<uintptr_t>& pending,
                            trace::Component comp) {
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  std::lock_guard<CheckerMutex> guard(mu_);
  fence_epochs_++;
  AppendEventLocked(PmCheckEvent::Kind::kFence, comp, worker, pending.size());
  for (uintptr_t line : pending) {
    LineRecord& rec = lines_[line];
    if (rec.pending && HashLine(pool_ + line) != rec.flush_hash) {
      // The clwb captured the content at flush time; on real hardware the
      // re-dirtied bytes are NOT covered by this fence.
      DiagLocked(PmCheckClass::kDirtyAtFence, line, rec.comp, worker,
                 "line_redirtied_between_flush_and_fence");
    }
    rec.pending = false;
    rec.epoch = fence_epochs_;
    rec.owner = nullptr;
    rec.close_reported = false;
  }
}

void PmCheck::OnReadRange(const ThreadContext& ctx, uintptr_t offset, size_t len) {
  const trace::Component comp = trace::CurrentComponent();
  const auto worker = static_cast<uint16_t>(ctx.worker_id());
  const uintptr_t first = offset & ~(kCachelineBytes - 1);
  std::lock_guard<CheckerMutex> guard(mu_);
  AppendEventLocked(PmCheckEvent::Kind::kRead, comp, worker, first);
  for (uintptr_t line = first; line < offset + len; line += kCachelineBytes) {
    auto it = lines_.find(line);
    if (it != lines_.end() && it->second.pending && it->second.owner != &ctx) {
      // The owning context flushed the line but has not fenced: a crash
      // would revert it, so the reader may act on non-durable state.
      DiagLocked(PmCheckClass::kReadBeforeDurable, line, comp, worker,
                 "read_of_line_flush_pending_in_other_context");
    }
  }
}

void PmCheck::ScanUnflushedLocked(const char* detail_unflushed, const char* detail_pending) {
  // Chunked memcmp over the whole pool: untouched pages are lazily-mapped
  // zero pages in both images, so the scan is cheap and runs only at
  // close/crash time.
  constexpr size_t kChunk = 4096;
  for (size_t off = 0; off < pool_bytes_; off += kChunk) {
    size_t n = pool_bytes_ - off < kChunk ? pool_bytes_ - off : kChunk;
    if (std::memcmp(pool_ + off, shadow_ + off, n) == 0) {
      continue;
    }
    for (size_t line = off; line < off + n; line += kCachelineBytes) {
      if (std::memcmp(pool_ + line, shadow_ + line, kCachelineBytes) == 0) {
        continue;
      }
      LineRecord& rec = lines_[line];
      if (rec.close_reported) {
        continue;
      }
      DiagLocked(PmCheckClass::kUnflushedAtClose, line, rec.comp, rec.worker,
                 rec.pending ? detail_pending : detail_unflushed);
      rec.close_reported = true;
    }
  }
}

void PmCheck::OnCrash(bool injected) {
  std::lock_guard<CheckerMutex> guard(mu_);
  AppendEventLocked(PmCheckEvent::Kind::kCrash, trace::Component::kOther, 0, injected ? 1 : 0);
  if (!injected) {
    // A crash nobody scheduled: whatever is still dirty is data loss the
    // program did not plan for.
    ScanUnflushedLocked("line_stored_but_never_flushed_at_crash",
                        "line_flushed_but_never_fenced_at_crash");
  }
  // After Crash()/CrashTorn() the working image is restored from the shadow:
  // every line is Clean and all pending state is gone.
  lines_.clear();
}

void PmCheck::OnClose() {
  std::lock_guard<CheckerMutex> guard(mu_);
  AppendEventLocked(PmCheckEvent::Kind::kClose, trace::Component::kOther, 0, 0);
  ScanUnflushedLocked("line_stored_but_never_flushed_at_close",
                      "line_flushed_but_never_fenced_at_close");
}

bool PmCheck::LineRedirtiedSinceFlush(uintptr_t line) const {
  std::lock_guard<CheckerMutex> guard(mu_);
  auto it = lines_.find(line);
  if (it == lines_.end() || !it->second.pending) {
    return false;
  }
  return HashLine(pool_ + line) != it->second.flush_hash;
}

PmCheckReport PmCheck::Snapshot() const {
  std::lock_guard<CheckerMutex> guard(mu_);
  PmCheckReport report;
  report.enabled = true;
  report.counts = counts_;
  report.suppressed = suppressed_;
  report.info = info_counts_;
  report.fence_epochs = fence_epochs_;
  report.lines_tracked = lines_.size();
  report.diagnostics_truncated = diagnostics_truncated_;
  report.diagnostics = diagnostics_;
  return report;
}

}  // namespace cclbt::pmsim
