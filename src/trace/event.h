// Trace event record for pmtrace. 24 bytes, fixed layout, written into
// per-ThreadContext ring buffers (see trace.h) and exported to the .pmtrace
// dump / Chrome trace-event JSON (exporters.h).
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>

#include "src/trace/component.h"

namespace cclbt::trace {

enum class EventType : uint8_t {
  // pmsim-level events.
  kFlush = 0,       // clwb issued              arg = line pool offset
  kFence = 1,       // sfence                   arg = pending line count
  kXpbufHit = 2,    // write merged into a resident XPLine   arg = unit index
  kXpbufEvict = 3,  // media write (eviction)   arg = unit, aux = rmw, dimm set
  kMediaRead = 4,   // media read               arg = unit, dimm set
  kReadHit = 5,     // PM read served from XPBuffer          arg = unit
  kReadMiss = 6,    // PM read from media       arg = unit, dimm set
  // Index-level events.
  kWalAppend = 7,    // arg = epoch
  kLeafSplit = 8,    // arg = separator key of the new right node
  kLeafMerge = 9,    // arg = separator key of the merged-away node
  kBufferFlush = 10, // buffer-node batch flushed to its leaf, arg = batch size
  kGcBegin = 11,     // arg = live log bytes at trigger
  kGcEnd = 12,       // arg = live log bytes after the round
  // Attribution scopes (Chrome "B"/"E" duration events).
  kScopeBegin = 13,  // component = entered scope
  kScopeEnd = 14,    // component = exited scope
  kCount = 15,
};

inline const char* EventName(EventType t) {
  switch (t) {
    case EventType::kFlush: return "flush";
    case EventType::kFence: return "fence";
    case EventType::kXpbufHit: return "xpbuf_hit";
    case EventType::kXpbufEvict: return "xpbuf_evict";
    case EventType::kMediaRead: return "media_read";
    case EventType::kReadHit: return "read_hit";
    case EventType::kReadMiss: return "read_miss";
    case EventType::kWalAppend: return "wal_append";
    case EventType::kLeafSplit: return "leaf_split";
    case EventType::kLeafMerge: return "leaf_merge";
    case EventType::kBufferFlush: return "buffer_flush";
    case EventType::kGcBegin: return "gc_begin";
    case EventType::kGcEnd: return "gc_end";
    case EventType::kScopeBegin: return "scope_begin";
    case EventType::kScopeEnd: return "scope_end";
    case EventType::kCount: break;
  }
  return "?";
}

struct TraceEvent {
  uint64_t t_ns = 0;   // virtual time of the emitting worker
  uint64_t arg = 0;    // event-specific payload (offset, unit, key, count)
  uint32_t aux = 0;    // secondary payload (rmw flag, batch size)
  uint8_t type = 0;    // EventType
  uint8_t comp = 0;    // Component active at emit time
  uint16_t dimm = 0;   // DIMM index for media events (0xffff = n/a)
};
static_assert(sizeof(TraceEvent) == 24);

inline constexpr uint16_t kNoDimm = 0xffff;

}  // namespace cclbt::trace

#endif  // SRC_TRACE_EVENT_H_
