#include "src/trace/trace.h"

#include <mutex>

namespace cclbt::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_scope_timing{false};
std::atomic<size_t> g_ring_capacity{1 << 13};  // 8192 events (192 KB) per worker
constinit thread_local ThreadBinding tl_binding;
std::atomic<RingFactory> g_ring_factory{nullptr};

void EmitSlow(EventType type, uint64_t arg, uint32_t aux, uint16_t dimm) {
  ThreadBinding& b = tl_binding;
  TraceRing* ring = b.ring;
  if (ring == nullptr) {
    // A worker that existed before tracing was enabled (e.g. a background GC
    // thread) gets its ring on first emit, via the factory pmsim installs.
    RingFactory factory = g_ring_factory.load(std::memory_order_acquire);
    if (factory == nullptr || (ring = factory()) == nullptr) {
      return;
    }
    b.ring = ring;
  }
  TraceEvent ev;
  ev.t_ns = ThreadVirtualNow();
  ev.arg = arg;
  ev.aux = aux;
  ev.type = static_cast<uint8_t>(type);
  ev.comp = b.component;
  ev.dimm = dimm;
  ring->Emit(ev);
}
}  // namespace detail

void SetEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void SetScopeTiming(bool on) {
  detail::g_scope_timing.store(on, std::memory_order_relaxed);
}

void SetRingCapacity(size_t events) {
  size_t cap = 1;
  while (cap < events) {
    cap <<= 1;
  }
  detail::g_ring_capacity.store(cap, std::memory_order_relaxed);
}

size_t RingCapacity() { return detail::g_ring_capacity.load(std::memory_order_relaxed); }

void SetRingFactory(detail::RingFactory factory) {
  detail::g_ring_factory.store(factory, std::memory_order_release);
}

TraceRing::TraceRing(size_t capacity) {
  size_t cap = 1;
  while (cap < capacity) {
    cap <<= 1;
  }
  buf_.resize(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  lock_.lock();
  uint64_t end = seq_;
  uint64_t begin = end > buf_.size() ? end - buf_.size() : 0;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; i++) {
    out.push_back(buf_[static_cast<size_t>(i) & mask_]);
  }
  lock_.unlock();
  return out;
}

namespace {

struct RingEntry {
  int worker_id;
  int socket;
  bool live;
  std::unique_ptr<TraceRing> ring;
};

struct Registry {
  sync::Mutex mu{"trace.registry"};
  std::vector<RingEntry> entries GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

}  // namespace

TraceRing* AcquireRing(int worker_id, int socket) {
  auto ring = std::make_unique<TraceRing>(RingCapacity());
  TraceRing* raw = ring.get();
  Registry& reg = GetRegistry();
  sync::LockGuard<sync::Mutex> guard(reg.mu);
  reg.entries.push_back(RingEntry{worker_id, socket, true, std::move(ring)});
  return raw;
}

void ReleaseRing(TraceRing* ring) {
  if (ring == nullptr) {
    return;
  }
  Registry& reg = GetRegistry();
  sync::LockGuard<sync::Mutex> guard(reg.mu);
  for (RingEntry& entry : reg.entries) {
    if (entry.ring.get() == ring) {
      entry.live = false;
      return;
    }
  }
}

std::vector<NamedRing> CollectRings() {
  Registry& reg = GetRegistry();
  sync::LockGuard<sync::Mutex> guard(reg.mu);
  std::vector<NamedRing> out;
  out.reserve(reg.entries.size());
  for (const RingEntry& entry : reg.entries) {
    NamedRing named;
    named.worker_id = entry.worker_id;
    named.socket = entry.socket;
    named.emitted = entry.ring->emitted();
    named.events = entry.ring->Snapshot();
    out.push_back(std::move(named));
  }
  return out;
}

void ClearRings() {
  Registry& reg = GetRegistry();
  sync::LockGuard<sync::Mutex> guard(reg.mu);
  std::vector<RingEntry> kept;
  for (RingEntry& entry : reg.entries) {
    if (entry.live) {
      entry.ring->Clear();
      kept.push_back(std::move(entry));
    }
  }
  reg.entries.swap(kept);
}

}  // namespace cclbt::trace