// Exporters for pmtrace data: Chrome trace-event JSON (loadable in Perfetto
// / chrome://tracing, virtual-time timeline, one track per worker) and an
// ASCII XPLine write-count heatmap. Used by the bench driver's dump writer
// and by tools/pmctl.
#ifndef SRC_TRACE_EXPORTERS_H_
#define SRC_TRACE_EXPORTERS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace cclbt::trace {

// Writes the rings as Chrome trace-event JSON. Scope begin/end events become
// "B"/"E" duration slices (nested component attribution per worker track);
// everything else becomes an instant event carrying its payload as args.
// Timestamps are virtual nanoseconds rendered as fractional microseconds.
// `process_name` labels the single emitted pid row.
void ExportChromeTraceJson(std::ostream& out, const std::vector<NamedRing>& rings,
                           const std::string& process_name);

// One bin of the XPLine write-count heatmap (media writes per pool region).
struct HeatBin {
  uint64_t first_unit = 0;  // first XPLine index covered by this bin
  uint64_t units = 0;       // XPLines covered
  uint64_t writes = 0;      // media writes that landed in the bin
  uint64_t hottest_unit = 0;
  uint64_t hottest_writes = 0;
};

// Renders bins as an ASCII intensity map, `columns` bins per row, with a
// scale legend. Empty bins print as '.'.
void RenderHeatmap(std::ostream& out, const std::vector<HeatBin>& bins, int columns);

}  // namespace cclbt::trace

#endif  // SRC_TRACE_EXPORTERS_H_
