// Component taxonomy for write-amplification attribution (pmtrace).
//
// A Component names the *code* that caused PM traffic, complementing
// pmsim::StreamTag which names the *address range* the traffic landed on.
// Core/baseline code pushes a TraceScope(Component) around its PM-writing
// sections; the simulator charges every cacheline flush and every media
// write to the innermost active component, so StatsSnapshot can explain
// which subsystem produced which share of media_write_bytes (the per-figure
// breakdown the paper derives from ipmctl counters in §2.1/§5).
#ifndef SRC_TRACE_COMPONENT_H_
#define SRC_TRACE_COMPONENT_H_

#include <cstdint>

namespace cclbt::trace {

enum class Component : uint8_t {
  kOther = 0,       // no scope active (tests, raw device benches)
  kWal = 1,         // per-thread log appends + chunk activation/release
  kLeaf = 2,        // PM leaf writes incl. splits/merges (SMOs)
  kInner = 3,       // inner-index routing (DRAM; PM reads for key blobs)
  kBufferNode = 4,  // buffer-node merge/cache maintenance
  kGc = 5,          // background/foreground log GC passes
  kAllocMeta = 6,   // allocator metadata (slab/arena registries, pool root)
  kValueStore = 7,  // out-of-band value blobs
  kCount = 8,
};

inline constexpr int kNumComponents = static_cast<int>(Component::kCount);

inline const char* ComponentName(Component c) {
  switch (c) {
    case Component::kOther: return "other";
    case Component::kWal: return "wal";
    case Component::kLeaf: return "leaf";
    case Component::kInner: return "inner";
    case Component::kBufferNode: return "buffernode";
    case Component::kGc: return "gc";
    case Component::kAllocMeta: return "allocmeta";
    case Component::kValueStore: return "valuestore";
    case Component::kCount: break;
  }
  return "?";
}

}  // namespace cclbt::trace

#endif  // SRC_TRACE_COMPONENT_H_
