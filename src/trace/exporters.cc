#include "src/trace/exporters.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cclbt::trace {

namespace {

// One JSON event row. Chrome's format wants ts in microseconds; emit the
// virtual-ns clock as fractional us to keep full resolution.
void EmitRow(std::ostream& out, bool& first, const char* ph, const char* name, int tid,
             uint64_t t_ns, const std::string& args_json) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%" PRIu64 ".%03u,\"pid\":1,"
                "\"tid\":%d",
                first ? "" : ",", name, ph, t_ns / 1000,
                static_cast<unsigned>(t_ns % 1000), tid);
  first = false;
  out << buf;
  if (ph[0] == 'i') {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (!args_json.empty()) {
    out << ",\"args\":{" << args_json << "}";
  }
  out << "}";
}

std::string InstantArgs(const TraceEvent& ev) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"arg\":%" PRIu64 ",\"aux\":%u,\"comp\":\"%s\"", ev.arg,
                ev.aux, ComponentName(static_cast<Component>(ev.comp)));
  std::string s(buf);
  if (ev.dimm != kNoDimm) {
    s += ",\"dimm\":" + std::to_string(ev.dimm);
  }
  return s;
}

}  // namespace

void ExportChromeTraceJson(std::ostream& out, const std::vector<NamedRing>& rings,
                           const std::string& process_name) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  // Metadata: name the process and each worker track.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"%s\"}}",
                process_name.c_str());
  out << buf;
  first = false;
  for (const NamedRing& ring : rings) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"worker %d (socket %d)\"}}",
                  ring.worker_id, ring.worker_id, ring.socket);
    out << buf;
  }
  for (const NamedRing& ring : rings) {
    // Perfetto requires balanced B/E pairs per track. The ring keeps only
    // the newest events, so an E whose B was overwritten would corrupt the
    // track: track nesting depth and drop unmatched Es; close dangling Bs
    // at the ring's final timestamp.
    int depth = 0;
    std::vector<const TraceEvent*> open;
    uint64_t last_ts = 0;
    for (const TraceEvent& ev : ring.events) {
      last_ts = std::max(last_ts, ev.t_ns);
      auto type = static_cast<EventType>(ev.type);
      if (type == EventType::kScopeBegin) {
        EmitRow(out, first, "B", ComponentName(static_cast<Component>(ev.comp)),
                ring.worker_id, ev.t_ns, "");
        depth++;
        open.push_back(&ev);
      } else if (type == EventType::kScopeEnd) {
        if (depth > 0) {
          EmitRow(out, first, "E", ComponentName(static_cast<Component>(ev.comp)),
                  ring.worker_id, ev.t_ns, "");
          depth--;
          open.pop_back();
        }
      } else {
        EmitRow(out, first, "i", EventName(type), ring.worker_id, ev.t_ns,
                InstantArgs(ev));
      }
    }
    while (depth-- > 0) {
      const TraceEvent* ev = open.back();
      open.pop_back();
      EmitRow(out, first, "E", ComponentName(static_cast<Component>(ev->comp)),
              ring.worker_id, last_ts, "");
    }
  }
  out << "\n]}\n";
}

void RenderHeatmap(std::ostream& out, const std::vector<HeatBin>& bins, int columns) {
  if (bins.empty()) {
    out << "(no media writes recorded)\n";
    return;
  }
  uint64_t max_writes = 0;
  for (const HeatBin& bin : bins) {
    max_writes = std::max(max_writes, bin.writes);
  }
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;  // indices 0..9
  out << "XPLine write-count heatmap (" << bins.size() << " bins, max "
      << max_writes << " writes/bin; scale \"" << kRamp << "\")\n";
  for (size_t i = 0; i < bins.size(); i += static_cast<size_t>(columns)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10" PRIu64 " |", bins[i].first_unit);
    out << buf;
    for (size_t j = i; j < std::min(bins.size(), i + static_cast<size_t>(columns)); j++) {
      uint64_t w = bins[j].writes;
      int level = 0;
      if (w > 0 && max_writes > 0) {
        level = 1 + static_cast<int>((w * static_cast<uint64_t>(kLevels - 1)) / max_writes);
      }
      out << kRamp[level];
    }
    out << "|\n";
  }
}

}  // namespace cclbt::trace
