// pmtrace: always-compiled, runtime-gated observability for the PM stack.
//
// Three independent facilities, all off by default:
//
//  * Event tracing (SetEnabled). Each pmsim::ThreadContext owns a TraceRing
//    — a fixed-capacity single-writer ring buffer that keeps the newest
//    events (oldest are overwritten on wrap). The disabled path is one
//    relaxed load of a global flag per emit site; no ring is even allocated
//    until the first enabled emit on a thread.
//
//  * Attribution scopes (TraceScope). Index code pushes the component it is
//    about to do PM work for; the simulator reads CurrentComponent() to
//    charge flushes and media writes per component. Scopes are plain
//    thread-local byte swaps and are always active (they feed the
//    per-component counters in pmsim::StatsSnapshot, which are ordinary
//    stats, not tracing).
//
//  * Scope timing (SetScopeTiming). When on, TraceScope additionally
//    accumulates exclusive virtual-time per component into a thread-local
//    table, which the bench driver turns into per-component latency
//    histograms (Figure 12 breakdown).
//
// Layering: this library depends on nothing in the repo. pmsim binds each
// ThreadContext's virtual clock and ring into thread-local slots here
// (BindThread), so scopes can timestamp events without trace-> pmsim
// dependency cycles.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/component.h"
#include "src/common/lock.h"
#include "src/trace/event.h"

namespace cclbt::trace {

// ---------------------------------------------------------------------------
// Ring buffer. Single writer (the owning logical worker); concurrent readers
// (dump while a background thread is live) are serialized by a tiny
// spinlock that is only ever touched when tracing is enabled.
// ---------------------------------------------------------------------------

// The annotated TTAS wrapper from src/common/lock.h; reports into lockcheck
// like every other lock in the tree.
using RingLock = sync::TtasSpinLock;

class TraceRing {
 public:
  // Power-of-two capacity in events (24 B each).
  explicit TraceRing(size_t capacity);

  void Emit(const TraceEvent& ev) {
    lock_.lock();
    buf_[static_cast<size_t>(seq_) & mask_] = ev;
    seq_++;
    lock_.unlock();
  }

  // Copies the retained events, oldest first. Caller need not quiesce the
  // writer; the spinlock makes the copy torn-free (it may miss in-flight
  // events).
  std::vector<TraceEvent> Snapshot() const;

  // Forgets all retained events (the ring stays usable).
  void Clear() {
    lock_.lock();
    seq_ = 0;
    lock_.unlock();
  }

  uint64_t emitted() const {
    lock_.lock();
    uint64_t n = seq_;
    lock_.unlock();
    return n;
  }
  size_t capacity() const { return buf_.size(); }

 private:
  mutable RingLock lock_{"trace.ring"};
  uint64_t seq_ = 0;  // total events ever emitted; next write slot = seq_ & mask_
  size_t mask_;
  std::vector<TraceEvent> buf_;
};

// One worker's retained trace plus identity, as returned by CollectRings().
struct NamedRing {
  int worker_id = 0;
  int socket = 0;
  uint64_t emitted = 0;  // events ever emitted (emitted - events.size() dropped)
  std::vector<TraceEvent> events;
};

// ---------------------------------------------------------------------------
// Global gates.
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_scope_timing;
extern std::atomic<size_t> g_ring_capacity;

struct ThreadBinding {
  TraceRing* ring = nullptr;                        // null until first enabled emit
  const std::atomic<uint64_t>* vclock = nullptr;    // bound worker virtual clock
  uint8_t component = 0;                            // innermost active Component
  // Exclusive virtual-ns per component (scope timing).
  uint64_t comp_ns[kNumComponents] = {};
  uint64_t last_mark = 0;
};
// constinit: guarantees constant initialization so every TU accesses the
// variable directly instead of through the TLS init-guard wrapper — the
// guard check would otherwise sit on the simulator's per-fence hot path
// (CurrentComponent()).
extern constinit thread_local ThreadBinding tl_binding;

// Factory installed by pmsim: creates/returns the current ThreadContext's
// ring (registering it for collection) or nullptr if no context is live.
using RingFactory = TraceRing* (*)();
extern std::atomic<RingFactory> g_ring_factory;

void EmitSlow(EventType type, uint64_t arg, uint32_t aux, uint16_t dimm);
}  // namespace detail

inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);

inline bool ScopeTimingEnabled() {
  return detail::g_scope_timing.load(std::memory_order_relaxed);
}
void SetScopeTiming(bool on);

// Ring capacity (events) used for rings created after the call.
void SetRingCapacity(size_t events);
size_t RingCapacity();

// ---------------------------------------------------------------------------
// Per-thread binding, maintained by pmsim::ThreadContext.
// ---------------------------------------------------------------------------

// Installs the current logical worker's ring + virtual clock in this OS
// thread's slots. Pass nulls when no worker is current.
inline void BindThread(TraceRing* ring, const std::atomic<uint64_t>* vclock) {
  detail::tl_binding.ring = ring;
  detail::tl_binding.vclock = vclock;
}

void SetRingFactory(detail::RingFactory factory);

inline uint64_t ThreadVirtualNow() {
  const std::atomic<uint64_t>* clock = detail::tl_binding.vclock;
  return clock == nullptr ? 0 : clock->load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Emission + attribution.
// ---------------------------------------------------------------------------

inline Component CurrentComponent() {
  return static_cast<Component>(detail::tl_binding.component);
}

namespace detail {
// Charges virtual time since the last mark to `comp` (exclusive-time
// accounting: an inner scope's time never double-counts in its parent).
inline void ChargeScopeTimeUpTo(uint8_t comp) {
  const std::atomic<uint64_t>* clock = tl_binding.vclock;
  uint64_t now = clock == nullptr ? 0 : clock->load(std::memory_order_relaxed);
  ThreadBinding& b = tl_binding;
  if (now > b.last_mark) {
    b.comp_ns[comp] += now - b.last_mark;
  }
  b.last_mark = now;  // also resynchronizes after a clock reset/worker switch
}
}  // namespace detail

// Charges time up to "now" to the current component. The bench driver calls
// this at operation boundaries so ThreadComponentNs() deltas cover the whole
// op (time after the last scope exit would otherwise be charged lazily at
// the next scope entry, possibly inside the next op).
inline void FlushScopeTime() {
  if (ScopeTimingEnabled()) {
    detail::ChargeScopeTimeUpTo(detail::tl_binding.component);
  }
}

// The hot-path emit: one relaxed load + predicted branch when disabled.
inline void Emit(EventType type, uint64_t arg = 0, uint32_t aux = 0,
                 uint16_t dimm = kNoDimm) {
  if (!Enabled()) {
    return;
  }
  detail::EmitSlow(type, arg, aux, dimm);
}

// RAII attribution scope. Construction/destruction cost when tracing and
// scope timing are off: two thread-local byte moves and two predicted
// branches.
class TraceScope {
 public:
  explicit TraceScope(Component c) : prev_(detail::tl_binding.component) {
    if (ScopeTimingEnabled()) {
      detail::ChargeScopeTimeUpTo(prev_);
    }
    detail::tl_binding.component = static_cast<uint8_t>(c);
    if (Enabled()) {
      detail::EmitSlow(EventType::kScopeBegin, 0, 0, kNoDimm);
    }
  }
  ~TraceScope() {
    if (ScopeTimingEnabled()) {
      detail::ChargeScopeTimeUpTo(detail::tl_binding.component);
    }
    if (Enabled()) {
      detail::EmitSlow(EventType::kScopeEnd, 0, 0, kNoDimm);
    }
    detail::tl_binding.component = prev_;
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint8_t prev_;
};

// Scope-timing table of the calling OS thread (kNumComponents entries).
// The driver snapshots it around each operation to build per-component
// latency histograms.
inline const uint64_t* ThreadComponentNs() { return detail::tl_binding.comp_ns; }

// ---------------------------------------------------------------------------
// Registry: rings of retired workers are folded here so a dump at the end of
// a run sees every worker's events even though the driver destroys its
// ThreadContexts at phase boundaries.
// ---------------------------------------------------------------------------

// Creates a ring owned by the registry and associates it with (worker_id,
// socket). Returns a stable pointer the owner emits into; the registry keeps
// ownership, so the events survive the worker. The owner must call
// ReleaseRing when it goes away.
TraceRing* AcquireRing(int worker_id, int socket);

// Marks the ring's owner as gone. The ring and its events stay collectable
// until the next ClearRings().
void ReleaseRing(TraceRing* ring);

// Snapshot of every ring acquired since the last ClearRings(), in
// acquisition order. Live writers are tolerated (spinlock-consistent
// copies that may miss in-flight events).
std::vector<NamedRing> CollectRings();

// Frees released rings and empties still-owned ones (a long-lived background
// worker keeps its ring across runs but starts the next run clean).
void ClearRings();

}  // namespace cclbt::trace

#endif  // SRC_TRACE_TRACE_H_
