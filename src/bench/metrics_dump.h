// Writer for .pmmetrics dump files (src/metrics/pmmetrics.h) — the JSON-lines
// time-series companion to the .pmtrace dump. Produced at the end of a
// measured phase when the CCL_METRICS environment variable names a path
// prefix; consumed by `pmctl top` / `pmctl series`.
#ifndef SRC_BENCH_METRICS_DUMP_H_
#define SRC_BENCH_METRICS_DUMP_H_

#include <string>

#include "src/metrics/pmmetrics.h"

namespace cclbt::bench {

// True when CCL_METRICS is set in the environment: the driver enables the
// metrics registry for the measured phase and writes one dump per run.
bool MetricsDumpRequested();

// The CCL_METRICS value (path prefix), or "" when unset.
std::string MetricsDumpPrefix();

// Writes "<prefix>.<seq>.<label>.pmmetrics" (seq is a process-wide counter
// so a bench binary that runs many indexes produces distinct files). The
// label inside `file.header` is used for the file name. Returns the path
// written, or "" on failure/unset prefix.
std::string WriteMetricsDump(const metrics::PmMetricsFile& file);

}  // namespace cclbt::bench

#endif  // SRC_BENCH_METRICS_DUMP_H_
