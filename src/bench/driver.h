// Workload driver shared by every benchmark binary: spawns worker threads
// with per-thread virtual clocks, runs warm-up + measurement phases, and
// reports modeled throughput, amplification counters and latency
// percentiles.
//
// Timing model: a run's modeled elapsed time is
//     max( max over workers of their virtual clock ,
//          max over DIMMs of outstanding media work )
// measured over the measurement phase only. See src/pmsim/config.h for the
// cost constants and DESIGN.md §1 for the calibration rationale.
#ifndef SRC_BENCH_DRIVER_H_
#define SRC_BENCH_DRIVER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bench/index_factory.h"
#include "src/common/keyspace.h"
#include "src/common/ycsb.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/metrics/histogram.h"
#include "src/metrics/pmmetrics.h"
#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/trace/component.h"

namespace cclbt::bench {

struct RunConfig {
  int threads = 48;
  // Distinct keys loaded before measurement (the paper warms with 50 M).
  uint64_t warm_keys = 1'000'000;
  // Operations in the measurement phase.
  uint64_t ops = 1'000'000;
  // Single-op benches: all ops are of this type. For YCSB mixes set `mix`.
  OpType op = OpType::kInsert;
  const YcsbMix* mix = nullptr;
  KeyDistribution dist = KeyDistribution::kUniform;
  double zipf_theta = 0.9;
  size_t scan_len = 100;
  int threads_per_socket = 48;
  bool collect_latency = false;
  // Enable the metrics registry (src/metrics) for the measurement phase:
  // per-op-kind latency histograms in virtual AND wall time, registry
  // counters, and — under sequential scheduling — the virtual-time-epoch
  // series in RunResult::epochs (windowed XBI/CLI, media bytes by component,
  // latency percentiles, XPBuffer/GC gauges). Also switched on by the
  // CCL_METRICS environment variable, which additionally dumps a .pmmetrics
  // file (see src/bench/metrics_dump.h). Epoch records are virtual-time-only
  // and bit-identical run-to-run for a deterministic config; the registry is
  // CPU-side only, so enabling it never shifts a virtual metric.
  bool metrics = false;
  // Virtual-time width of one metrics epoch (sequential scheduling only;
  // under os_parallel only the end-of-run totals are collected).
  uint64_t metrics_epoch_ns = 1'000'000;
  // Additionally break per-op latency down by trace::Component (enables
  // trace scope timing for the measurement phase; implies collect_latency
  // semantics for the component histograms only).
  bool collect_component_latency = false;
  // Label stamped into the .pmtrace dump written when CCL_TRACE is set
  // (RunIndexWorkload defaults it to the index name).
  std::string trace_label;
  // Values larger than 8 B go through ValueStore indirection; the stored
  // word is the handle (paper §4.4 Opt. 3). 0/8 = inline.
  size_t value_bytes = 8;
  // Variable-size keys: modeled by charging key-blob PM reads during
  // traversal (see DESIGN.md §6). 0/8 = inline keys.
  size_t key_bytes = 8;
  // Preset key set (e.g. SOSD datasets); overrides dist for inserts.
  const std::vector<uint64_t>* preset_keys = nullptr;
  uint64_t seed = 99;
  // Additionally call KvIndex::GcTick() every gc_epoch_ops-th measured op
  // (0 = off), pinning background-GC rounds to explicit virtual-time epochs
  // of the driver instead of the index's own cooperative quantum. Sequential
  // scheduling only; ignored under os_parallel (a shared op counter would
  // race). Useful for read-heavy mixes whose sparse upserts would starve the
  // index-side quantum.
  uint64_t gc_epoch_ops = 0;
  // Execute the logical workers on real OS threads. Sequential execution
  // (the default) is fully deterministic: the same RunConfig yields
  // bit-identical virtual-time metrics run after run — including indexes
  // with background GC, which runs at deterministic virtual-time points
  // under GcScheduling::kDeterministic (the default; see DESIGN.md §10).
  // The only escape from the contract is TreeOptions::gc_scheduling =
  // kOsThread, which reintroduces a free-running GC thread for concurrency
  // stress. With one worker, os_parallel on/off is also bit-identical. With
  // several workers, os_parallel results differ slightly run-to-run:
  // real-thread interleaving changes lock-acquisition order and XPBuffer LRU
  // state, so eviction counts and queueing delays shift within noise.
  // Concurrency correctness is covered by the test suite, which always uses
  // real threads.
  bool os_parallel = false;
  // Enable the pmcheck persistency checker (DESIGN.md §11) on the run's
  // device. Equivalent to CCL_PMCHECK=1 (the environment variable overrides
  // in either direction). Diagnostics are returned in RunResult::pmcheck and,
  // when a trace dump is written, appended to it for `pmctl check`. Never
  // perturbs virtual-time metrics.
  bool pmcheck = false;
  // Enable the lockcheck lockset/lock-order sanitizer (DESIGN.md §16) on the
  // run's device. Equivalent to CCL_LOCKCHECK=1 (the environment variable
  // overrides in either direction). Diagnostics are returned in
  // RunResult::lockcheck and, when a trace dump is written, appended to it
  // for `pmctl locks`. Never perturbs virtual-time metrics.
  bool lockcheck = false;
  // Persistence-domain backend for the run's device (DESIGN.md §14). kAuto
  // resolves through DeviceConfig's legacy eadr flag, then the CCL_BACKEND
  // environment selector, then defaults to ADR/Optane.
  pmsim::MediaBackend backend = pmsim::MediaBackend::kAuto;
  // Media write-combining unit override in bytes (DeviceConfig::xpline_bytes;
  // 0 = keep the backend default). CXL page-granular runs set 256..4096.
  size_t media_unit_bytes = 0;
  // Buffer-capacity override in bytes (DeviceConfig::xpbuffer_bytes; 0 =
  // keep the backend default).
  size_t media_buffer_bytes = 0;
  // CXL only: model a volatile device-side write-combining buffer instead of
  // a persistent one (committed lines stage until unit eviction).
  bool cxl_volatile_buffer = false;
};

struct RunResult {
  double mops = 0;                 // modeled throughput, Mop/s
  double elapsed_virtual_ms = 0;   // modeled elapsed time of the measure phase
  double max_worker_vtime_ms = 0;  // slowest worker's clock (latency-bound part)
  double max_dimm_busy_ms = 0;     // busiest DIMM's media work (bandwidth-bound part)
  pmsim::StatsSnapshot stats;      // measure-phase delta
  double cli_amplification = 0;
  double xbi_amplification = 0;
  metrics::Histogram latency;      // per-op virtual latencies (if collected)
  // Per-component share of each op's virtual latency (only ops that spent
  // time in the component are recorded; see collect_component_latency).
  std::array<metrics::Histogram, trace::kNumComponents> component_latency;
  // Registry totals for the measurement phase (zero unless metrics were on):
  // per-op-kind virtual/wall histograms and counters.
  metrics::MetricsSnapshot metrics_snapshot;
  // Virtual-time-epoch series (empty unless metrics were on and the run was
  // sequential). Deterministic: bit-identical run-to-run per DESIGN.md §10.
  metrics::EpochSeries epochs;
  // Path of the .pmmetrics dump written for this run ("" when CCL_METRICS
  // unset).
  std::string metrics_dump_path;
  // Path of the .pmtrace dump written for this run ("" when CCL_TRACE unset).
  std::string trace_dump_path;
  kvindex::MemoryFootprint footprint;
  // pmcheck report (enabled == false unless the checker ran). RunIndexWorkload
  // refreshes it after an end-of-run DrainBuffers so the unflushed-at-close
  // class is included; RunWorkload alone reports the phases it saw.
  pmsim::PmCheckReport pmcheck;
  // lockcheck report (enabled == false unless the checker ran). Snapshot at
  // measurement end; the event stream keeps flowing until the runtime dies,
  // but counts only grow, so a clean snapshot of a finished run stays clean.
  pmsim::LockCheckReport lockcheck;
  // Configuration the driver could not honor (e.g. gc_epoch_ops or the
  // metrics epoch series under os_parallel, which are sequential-scheduling
  // features). Each dropped request produces one entry here and one warning
  // line on stderr — a set config is never ignored silently.
  std::vector<std::string> warnings;
};

// Loads `config.warm_keys` distinct keys (or the preset set), then runs the
// measurement phase and returns the metrics. The index must be freshly
// created on `runtime`.
RunResult RunWorkload(kvindex::Runtime& runtime, kvindex::KvIndex& index, const RunConfig& config);

// Convenience: build runtime + index, run, tear down.
RunResult RunIndexWorkload(const std::string& index_name, const RunConfig& config,
                           const IndexConfig& index_config = {},
                           size_t pool_bytes = 2ULL << 30);

// Key for warm-phase position i (dense scrambled space of warm_keys).
uint64_t WarmKey(const RunConfig& config, uint64_t i);

}  // namespace cclbt::bench

#endif  // SRC_BENCH_DRIVER_H_
