#include "src/bench/driver.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/bench/metrics_dump.h"
#include "src/bench/trace_dump.h"
#include "src/common/rng.h"
#include "src/common/zipfian.h"
#include "src/metrics/clock.h"
#include "src/metrics/metrics.h"
#include "src/pmem/value_store.h"
#include "src/pmsim/media_model.h"
#include "src/trace/trace.h"

namespace cclbt::bench {

namespace {

// Builds a value word: inline for <= 8 B, out-of-band handle otherwise.
// Callers pass an even seed_word that is unique across the whole run (warm,
// insert, and update phases use disjoint ranges): rewriting a key must always
// change its value, or the rewrite persists a cacheline whose content already
// equals the durable image — a redundant flush pmcheck rightly flags.
uint64_t MakeValue(kvindex::Runtime& rt, const RunConfig& config, uint64_t seed_word) {
  if (config.value_bytes <= 8) {
    return seed_word | 1;
  }
  std::vector<std::byte> payload(config.value_bytes, std::byte{0xAB});
  std::memcpy(payload.data(), &seed_word, sizeof(seed_word));
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  return rt.values().Append(payload, ctx->socket());
}

// Variable-size keys are modeled at the driver level: each operation pays
// key-blob PM reads during traversal (two comparisons resolve to actual key
// data on average thanks to fingerprints), and each insert persists a new
// key blob. See DESIGN.md §6.
struct KeyBlobModel {
  std::vector<uint64_t> handles;  // sampled blob handles in PM

  void ChargeTraversal(kvindex::Runtime& rt, Rng& rng) const {
    if (handles.empty()) {
      return;
    }
    for (int probe = 0; probe < 2; probe++) {
      uint64_t handle = handles[rng.NextBounded(handles.size())];
      rt.values().Read(handle);
    }
  }
};

// Interleaves `threads` logical workers. Each call of `step(w)` performs a
// bounded slice of operations and returns false once worker w is finished.
// Default mode: all workers share the calling OS thread, sliced round-robin
// so their virtual clocks advance roughly in lockstep (which the per-DIMM
// queueing model assumes); os_parallel mode uses real threads instead.
template <typename StepFn>
void Schedule(const RunConfig& config, std::vector<std::unique_ptr<pmsim::ThreadContext>>& ctxs,
              StepFn&& step) {
  if (config.os_parallel) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(config.threads));
    for (int w = 0; w < config.threads; w++) {
      threads.emplace_back([&, w] {
        pmsim::ThreadContext::SetCurrent(ctxs[static_cast<size_t>(w)].get());
        while (step(w)) {
        }
        pmsim::ThreadContext::SetCurrent(nullptr);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    return;
  }
  std::vector<bool> alive(static_cast<size_t>(config.threads), true);
  bool any_alive = true;
  while (any_alive) {
    any_alive = false;
    for (int w = 0; w < config.threads; w++) {
      if (!alive[static_cast<size_t>(w)]) {
        continue;
      }
      pmsim::ThreadContext::SetCurrent(ctxs[static_cast<size_t>(w)].get());
      alive[static_cast<size_t>(w)] = step(w);
      any_alive = any_alive || alive[static_cast<size_t>(w)];
    }
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
}

// Ops per scheduling slice: small enough to bound virtual-clock skew between
// workers to a few microseconds.
constexpr uint64_t kSliceOps = 1;

std::vector<std::unique_ptr<pmsim::ThreadContext>> MakeContexts(kvindex::Runtime& runtime,
                                                                const RunConfig& config) {
  std::vector<std::unique_ptr<pmsim::ThreadContext>> ctxs;
  ctxs.reserve(static_cast<size_t>(config.threads));
  for (int w = 0; w < config.threads; w++) {
    ctxs.push_back(std::make_unique<pmsim::ThreadContext>(
        runtime.device(), runtime.SocketForWorker(w, config.threads_per_socket), w));
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
  return ctxs;
}

}  // namespace

uint64_t WarmKey(const RunConfig& config, uint64_t i) {
  if (config.preset_keys != nullptr) {
    return (*config.preset_keys)[i];
  }
  if (config.dist == KeyDistribution::kSequential) {
    return i + 1;
  }
  return Mix64(i) | 1;
}

RunResult RunWorkload(kvindex::Runtime& runtime, kvindex::KvIndex& index,
                      const RunConfig& config) {
  assert(config.threads >= 1);
  // Sequential-only features requested under os_parallel would be dropped on
  // the floor below (a shared op counter / epoch snapshot would race across
  // real threads). Fail loudly instead of ignoring the user's config: one
  // warning per dropped feature, surfaced in RunResult::warnings and on
  // stderr.
  std::vector<std::string> warnings;
  if (config.os_parallel && config.gc_epoch_ops != 0) {
    warnings.emplace_back(
        "gc_epoch_ops ignored: driver-paced GC requires sequential "
        "scheduling (os_parallel=true races the shared op counter)");
  }
  if (config.os_parallel && (config.metrics || MetricsDumpRequested()) && config.ops > 0) {
    warnings.emplace_back(
        "metrics epoch series not collected: virtual-time epochs require "
        "sequential scheduling (os_parallel=true); only end-of-run totals "
        "are reported");
  }
  for (const std::string& w : warnings) {
    std::fprintf(stderr, "driver[%s]: WARNING: %s\n",
                 config.trace_label.empty() ? "run" : config.trace_label.c_str(), w.c_str());
  }
  if (config.preset_keys != nullptr) {
    assert(config.preset_keys->size() >= config.warm_keys + config.ops);
  }

  KeyBlobModel key_blobs;

  // --- warm-up phase -----------------------------------------------------------
  {
    auto ctxs = MakeContexts(runtime, config);
    uint64_t per_thread = config.warm_keys / static_cast<uint64_t>(config.threads);
    std::vector<uint64_t> cursor(static_cast<size_t>(config.threads));
    std::vector<uint64_t> limit(static_cast<size_t>(config.threads));
    for (int w = 0; w < config.threads; w++) {
      cursor[static_cast<size_t>(w)] = static_cast<uint64_t>(w) * per_thread;
      limit[static_cast<size_t>(w)] =
          w + 1 == config.threads ? config.warm_keys : cursor[static_cast<size_t>(w)] + per_thread;
    }
    Schedule(config, ctxs, [&](int w) {
      uint64_t& i = cursor[static_cast<size_t>(w)];
      uint64_t end = std::min(limit[static_cast<size_t>(w)], i + kSliceOps);
      for (; i < end; i++) {
        index.Upsert(WarmKey(config, i), MakeValue(runtime, config, (i + 1) << 1));
      }
      return i < limit[static_cast<size_t>(w)];
    });
  }
  if (config.key_bytes > 8) {
    pmsim::ThreadContext ctx(runtime.device(), 0, 0);
    auto sample = static_cast<size_t>(std::min<uint64_t>(config.warm_keys, 100'000));
    std::vector<std::byte> blob(config.key_bytes, std::byte{0x5A});
    key_blobs.handles.reserve(sample);
    for (size_t i = 0; i < sample; i++) {
      key_blobs.handles.push_back(runtime.values().Append(blob, 0));
    }
  }

  // --- measurement phase ----------------------------------------------------------
  runtime.device().ResetCosts();
  // pmtrace: event tracing covers the measurement phase only. Rings are
  // cleared first so a dump shows this phase, not the warm-up; contexts
  // created below pick up rings because tracing is already enabled.
  const bool tracing = TraceDumpRequested();
  if (tracing) {
    trace::ClearRings();
    trace::SetEnabled(true);
  }
  if (config.collect_component_latency) {
    trace::SetScopeTiming(true);
  }
  // Metrics registry: covers the measurement phase only (Reset after warm).
  // CPU-side by construction — enabling it cannot move a virtual metric.
  const bool metrics_dump = MetricsDumpRequested();
  const bool metrics_on = config.metrics || config.collect_latency || metrics_dump;
  if (metrics_on) {
    metrics::Reset();
    metrics::SetEnabled(true);
  }
  pmsim::StatsSnapshot before = runtime.device().stats().Snapshot();

  struct WorkerState {
    Rng rng;
    ZipfianGenerator zipf;
    YcsbOpPicker picker;
    std::vector<kvindex::KeyValue> scan_out;
    uint64_t cursor = 0;
    uint64_t limit = 0;
    // Per-component share of each op's latency (collect_component_latency).
    // Whole-op latency goes through the metrics registry instead.
    std::array<metrics::Histogram, trace::kNumComponents> comp_latency;
    uint64_t final_vtime = 0;

    WorkerState(const RunConfig& config, int w)
        : rng(config.seed * 977 + static_cast<uint64_t>(w)),
          zipf(config.warm_keys + config.ops == 0 ? 1 : config.warm_keys + config.ops,
               config.zipf_theta, config.seed * 31 + static_cast<uint64_t>(w)),
          picker(config.mix != nullptr ? *config.mix : kYcsbInsertOnly,
                 config.seed + static_cast<uint64_t>(w) * 13),
          scan_out(config.scan_len) {}
  };

  std::vector<WorkerState> states;
  states.reserve(static_cast<size_t>(config.threads));
  uint64_t per_thread_ops = config.ops / static_cast<uint64_t>(config.threads);
  for (int w = 0; w < config.threads; w++) {
    states.emplace_back(config, w);
    states.back().cursor = static_cast<uint64_t>(w) * per_thread_ops;
    states.back().limit =
        w + 1 == config.threads ? config.ops : states.back().cursor + per_thread_ops;
  }

  uint64_t write_bytes = 8 + std::max<size_t>(config.value_bytes, 8) +
                         (config.key_bytes > 8 ? config.key_bytes - 8 : 0);

  auto run_one = [&](WorkerState& st, uint64_t i) {
    pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
    OpType op = config.mix != nullptr ? st.picker.Next() : config.op;
    uint64_t t0 = ctx->now_ns();
    // Wall clock read only on the enabled path (sanctioned shim, lint R6).
    uint64_t wall0 = metrics_on ? metrics::WallNowNs() : 0;
    // Scope-timing table snapshot at op start. The flush first charges any
    // straggler time (inter-op gaps, worker switches) outside the op, so the
    // end-of-op delta is exactly this op's per-component time.
    uint64_t comp_before[trace::kNumComponents] = {};
    if (config.collect_component_latency) {
      trace::FlushScopeTime();
      const uint64_t* table = trace::ThreadComponentNs();
      std::copy(table, table + trace::kNumComponents, comp_before);
    }
    if (config.key_bytes > 8) {
      key_blobs.ChargeTraversal(runtime, st.rng);
    }
    switch (op) {
      case OpType::kInsert: {
        // Fresh keys beyond the warm space (the paper "upserts the remaining
        // 50 M KVs"); Zipfian draws over the whole space (upsert semantics).
        uint64_t key;
        if (config.preset_keys != nullptr) {
          key = (*config.preset_keys)[config.warm_keys + i];
        } else if (config.dist == KeyDistribution::kZipfian) {
          key = Mix64(st.zipf.NextRank()) | 1;
        } else if (config.dist == KeyDistribution::kSequential) {
          key = config.warm_keys + i + 1;
        } else {
          key = Mix64(config.warm_keys + i) | 1;
        }
        ctx->stats_shard().AddUserBytes(write_bytes);
        index.Upsert(key, MakeValue(runtime, config, (config.warm_keys + i + 1) << 1));
        break;
      }
      case OpType::kUpdate: {
        uint64_t key = config.dist == KeyDistribution::kZipfian
                           ? Mix64(st.zipf.NextRank() % config.warm_keys) | 1
                           : WarmKey(config, st.rng.NextBounded(config.warm_keys));
        ctx->stats_shard().AddUserBytes(write_bytes);
        index.Upsert(key, MakeValue(runtime, config, (config.warm_keys + config.ops + i + 1) << 1));
        break;
      }
      case OpType::kDelete: {
        uint64_t key = WarmKey(config, st.rng.NextBounded(config.warm_keys));
        ctx->stats_shard().AddUserBytes(write_bytes);
        index.Remove(key);
        break;
      }
      case OpType::kRead: {
        uint64_t key = config.dist == KeyDistribution::kZipfian
                           ? Mix64(st.zipf.NextRank() % config.warm_keys) | 1
                           : WarmKey(config, st.rng.NextBounded(config.warm_keys));
        uint64_t value = 0;
        index.Lookup(key, &value);
        break;
      }
      case OpType::kScan: {
        uint64_t start = config.preset_keys != nullptr
                             ? (*config.preset_keys)[st.rng.NextBounded(config.warm_keys)]
                             : WarmKey(config, st.rng.NextBounded(config.warm_keys));
        index.Scan(start, config.scan_len, st.scan_out.data());
        break;
      }
    }
    if (metrics_on) {
      // Insert/update/delete are all upsert-class writes (the paper
      // implements all three as upsert, §4.2).
      metrics::OpKind kind = op == OpType::kRead   ? metrics::OpKind::kLookup
                             : op == OpType::kScan ? metrics::OpKind::kScan
                                                   : metrics::OpKind::kUpsert;
      metrics::RecordOp(kind, ctx->now_ns() - t0, metrics::WallNowNs() - wall0);
    }
    if (config.collect_component_latency) {
      trace::FlushScopeTime();
      const uint64_t* table = trace::ThreadComponentNs();
      for (int c = 0; c < trace::kNumComponents; c++) {
        uint64_t d = table[c] - comp_before[c];
        if (d != 0) {
          st.comp_latency[static_cast<size_t>(c)].Record(d);
        }
      }
    }
  };

  // Stats timeline for the dump, sampled every ~1/32nd of the op count.
  // Sequential scheduling only: samples from concurrent OS threads would
  // interleave nondeterministically (and Snapshot() under contention is not
  // worth a mutex on the op path).
  std::vector<TimelineSample> timeline;
  const bool sample_timeline = tracing && !config.os_parallel && config.ops > 0;
  const uint64_t sample_every = std::max<uint64_t>(1, config.ops / 32);
  uint64_t sampled_ops = 0;
  // Driver-paced GC epochs (gc_epoch_ops): sequential scheduling only — the
  // shared counter below would race under os_parallel.
  const uint64_t gc_epoch_ops = config.os_parallel ? 0 : config.gc_epoch_ops;
  uint64_t gc_epoch_counter = 0;

  // Metrics virtual-time epochs: snapshot the windowed pmsim stats, registry
  // counters and latency percentiles each time the running worker's clock
  // crosses the next epoch boundary. Sequential scheduling only (same
  // rationale as the timeline above); every field is virtual-time/count
  // data, so the series is bit-identical run-to-run for a deterministic
  // config.
  const bool collect_epochs = metrics_on && !config.os_parallel && config.ops > 0;
  const uint64_t epoch_ns = std::max<uint64_t>(1, config.metrics_epoch_ns);
  uint64_t next_epoch_ns = epoch_ns;
  metrics::EpochSeries epochs;
  pmsim::StatsSnapshot epoch_prev_stats = before;
  metrics::MetricsSnapshot epoch_prev_metrics;
  auto record_epoch = [&](uint64_t t_ns) {
    pmsim::StatsSnapshot cur = runtime.device().stats().Snapshot();
    pmsim::StatsSnapshot win = cur.Delta(epoch_prev_stats);
    metrics::MetricsSnapshot mcur = metrics::Snapshot();
    metrics::EpochRecord e;
    e.index = epochs.size();
    e.t_ns = t_ns;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      metrics::Histogram w = mcur.op_virtual[k].Delta(epoch_prev_metrics.op_virtual[k]);
      e.ops.push_back(w.Count());
      e.p50_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(50));
      e.p99_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(99));
      e.p999_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(99.9));
    }
    e.user_bytes = win.user_bytes;
    e.xpbuffer_write_bytes = win.xpbuffer_write_bytes;
    e.media_write_bytes = win.media_write_bytes;
    e.media_read_bytes = win.media_read_bytes;
    e.line_flushes = win.line_flushes;
    e.fences = win.fences;
    for (int c = 0; c < trace::kNumComponents; c++) {
      e.comp_bytes.push_back(win.media_write_bytes_by_component[c]);
    }
    pmsim::PmDevice::XpBufferTotals xb = runtime.device().SampleXpBuffers();
    e.xpbuf_resident = xb.resident;
    e.xpbuf_insertions = xb.insertions;
    e.xpbuf_evictions = xb.evictions;
    for (int c = 0; c < metrics::kNumCounters; c++) {
      e.counters.push_back(mcur.counters[c] - epoch_prev_metrics.counters[c]);
    }
    index.SampleGauges(&e.gauges);
    epochs.push_back(std::move(e));
    epoch_prev_stats = cur;
    epoch_prev_metrics = std::move(mcur);
  };

  {
    auto ctxs = MakeContexts(runtime, config);
    Schedule(config, ctxs, [&](int w) {
      WorkerState& st = states[static_cast<size_t>(w)];
      uint64_t end = std::min(st.limit, st.cursor + kSliceOps);
      for (; st.cursor < end; st.cursor++) {
        run_one(st, st.cursor);
        if (gc_epoch_ops != 0 && ++gc_epoch_counter % gc_epoch_ops == 0) {
          index.GcTick();
        }
        if (collect_epochs) {
          uint64_t now = pmsim::ThreadContext::Current()->now_ns();
          if (now >= next_epoch_ns) {
            record_epoch(now);
            next_epoch_ns = (now / epoch_ns + 1) * epoch_ns;
          }
        }
        if (sample_timeline && ++sampled_ops % sample_every == 0) {
          pmsim::StatsSnapshot now =
              runtime.device().stats().Snapshot().Delta(before);
          TimelineSample sample;
          sample.t_ns = pmsim::ThreadContext::Current()->now_ns();
          sample.ops_done = sampled_ops;
          sample.media_write_bytes = now.media_write_bytes;
          sample.xpbuffer_write_bytes = now.xpbuffer_write_bytes;
          sample.line_flushes = now.line_flushes;
          sample.fences = now.fences;
          timeline.push_back(sample);
        }
      }
      bool more = st.cursor < st.limit;
      if (!more) {
        st.final_vtime = pmsim::ThreadContext::Current()->now_ns();
      }
      return more;
    });
  }

  RunResult result;
  result.warnings = std::move(warnings);
  uint64_t busy_ns = runtime.device().MaxDimmBusyNs();
  uint64_t worker_ns = 0;
  for (const auto& st : states) {
    worker_ns = std::max(worker_ns, st.final_vtime);
  }
  uint64_t elapsed_ns = std::max(busy_ns, worker_ns);
  if (collect_epochs) {
    // Close the final (partial) window so the epoch series tiles the whole
    // measured phase: summed windowed bytes == the run's stats delta.
    record_epoch(worker_ns);
  }
  result.max_worker_vtime_ms = static_cast<double>(worker_ns) / 1e6;
  result.max_dimm_busy_ms = static_cast<double>(busy_ns) / 1e6;
  pmsim::StatsSnapshot after = runtime.device().stats().Snapshot();
  result.stats = after.Delta(before);
  result.cli_amplification = result.stats.CliAmplification();
  result.xbi_amplification = result.stats.XbiAmplification();
  result.elapsed_virtual_ms = static_cast<double>(elapsed_ns) / 1e6;
  result.mops = elapsed_ns == 0
                    ? 0.0
                    : static_cast<double>(config.ops) * 1e3 / static_cast<double>(elapsed_ns);
  for (const auto& st : states) {
    for (size_t c = 0; c < st.comp_latency.size(); c++) {
      result.component_latency[c].Merge(st.comp_latency[c]);
    }
  }
  if (metrics_on) {
    result.metrics_snapshot = metrics::Snapshot();
    metrics::SetEnabled(false);
    // Whole-op latency view (all kinds merged) — what collect_latency
    // callers consumed before the registry existed.
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      result.latency.Merge(result.metrics_snapshot.op_virtual[k]);
    }
    result.epochs = std::move(epochs);
  }
  if (metrics_dump) {
    metrics::PmMetricsFile file;
    file.header.label = config.trace_label.empty() ? "run" : config.trace_label;
    file.header.backend = pmsim::MediaBackendName(runtime.device().config().backend);
    file.header.epoch_ns = epoch_ns;
    file.header.threads = static_cast<uint64_t>(config.threads);
    file.header.ops = config.ops;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      file.header.op_kinds.emplace_back(metrics::OpKindName(static_cast<metrics::OpKind>(k)));
    }
    for (int c = 0; c < metrics::kNumCounters; c++) {
      file.header.counters.emplace_back(metrics::CounterName(static_cast<metrics::Counter>(c)));
    }
    for (int c = 0; c < trace::kNumComponents; c++) {
      file.header.components.emplace_back(
          trace::ComponentName(static_cast<trace::Component>(c)));
    }
    file.epochs = result.epochs;
    file.has_summary = true;
    file.summary.elapsed_virtual_ns = elapsed_ns;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      file.summary.virt.push_back(
          metrics::SummarizeHistogram(result.metrics_snapshot.op_virtual[k]));
      file.summary.wall.push_back(
          metrics::SummarizeHistogram(result.metrics_snapshot.op_wall[k]));
    }
    result.metrics_dump_path = WriteMetricsDump(file);
  }
  result.footprint = index.Footprint();
  if (pmsim::PmCheck* check = runtime.device().pmcheck(); check != nullptr) {
    result.pmcheck = check->Snapshot();
  }
  if (pmsim::LockCheck* locks = runtime.device().lockcheck(); locks != nullptr) {
    result.lockcheck = locks->Snapshot();
  }

  if (tracing) {
    result.trace_dump_path =
        WriteTraceDump(runtime, config.trace_label.empty() ? "run" : config.trace_label,
                       result.stats, timeline, result.elapsed_virtual_ms);
    trace::SetEnabled(false);
    trace::ClearRings();
  }
  if (config.collect_component_latency) {
    trace::SetScopeTiming(false);
  }
  return result;
}

RunResult RunIndexWorkload(const std::string& index_name, const RunConfig& config,
                           const IndexConfig& index_config, size_t pool_bytes) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = pool_bytes;
  // When a trace dump is requested, also record the per-XPLine heatmap (the
  // counters only exist when enabled at device construction).
  runtime_options.device.record_unit_heatmap = TraceDumpRequested();
  runtime_options.device.pmcheck = config.pmcheck;
  runtime_options.device.lockcheck = config.lockcheck;
  runtime_options.device.backend = config.backend;
  if (config.media_unit_bytes != 0) {
    runtime_options.device.xpline_bytes = config.media_unit_bytes;
  }
  if (config.media_buffer_bytes != 0) {
    runtime_options.device.xpbuffer_bytes = config.media_buffer_bytes;
  }
  runtime_options.device.cxl_volatile_buffer = config.cxl_volatile_buffer;
  kvindex::Runtime runtime(runtime_options);
  auto index = MakeIndex(index_name, runtime, index_config);
  const std::string label = config.trace_label.empty() ? index_name : config.trace_label;
  RunConfig labeled = config;
  labeled.trace_label = label;
  RunResult result = RunWorkload(runtime, *index, labeled);
  if (pmsim::PmCheck* check = runtime.device().pmcheck(); check != nullptr) {
    // The runtime is torn down on return, so this is the pool close from the
    // checker's point of view: run the unflushed-at-close scan and take the
    // final report. Happens after the metric snapshot above — media traffic
    // drained here never reaches the returned stats, and no virtual time is
    // charged (determinism contract, DESIGN.md §10).
    runtime.device().DrainBuffers();
    result.pmcheck = check->Snapshot();
    if (!result.trace_dump_path.empty()) {
      AppendPmCheckSection(result.trace_dump_path, result.pmcheck);
    }
    std::fprintf(stderr,
                 "pmcheck[%s]: %llu violation(s), %llu informational, %llu suppressed, "
                 "%llu fence epochs\n",
                 label.c_str(), static_cast<unsigned long long>(result.pmcheck.total()),
                 static_cast<unsigned long long>(result.pmcheck.total_info()),
                 static_cast<unsigned long long>(result.pmcheck.total_suppressed()),
                 static_cast<unsigned long long>(result.pmcheck.fence_epochs));
    for (int c = 0; c < pmsim::kNumPmCheckClasses; c++) {
      if (result.pmcheck.counts[static_cast<size_t>(c)] != 0) {
        std::fprintf(stderr, "pmcheck[%s]:   %-20s %llu\n", label.c_str(),
                     pmsim::PmCheckClassName(static_cast<pmsim::PmCheckClass>(c)),
                     static_cast<unsigned long long>(
                         result.pmcheck.counts[static_cast<size_t>(c)]));
      }
    }
  }
  if (pmsim::LockCheck* locks = runtime.device().lockcheck(); locks != nullptr) {
    result.lockcheck = locks->Snapshot();
    if (!result.trace_dump_path.empty()) {
      AppendLockCheckSection(result.trace_dump_path, result.lockcheck);
    }
    std::fprintf(stderr,
                 "lockcheck[%s]: %llu violation(s), %llu informational, %llu suppressed, "
                 "%llu locks / %llu lines tracked\n",
                 label.c_str(), static_cast<unsigned long long>(result.lockcheck.total()),
                 static_cast<unsigned long long>(result.lockcheck.total_info()),
                 static_cast<unsigned long long>(result.lockcheck.total_suppressed()),
                 static_cast<unsigned long long>(result.lockcheck.locks_tracked),
                 static_cast<unsigned long long>(result.lockcheck.lines_tracked));
    for (int c = 0; c < pmsim::kNumLockCheckClasses; c++) {
      if (result.lockcheck.counts[static_cast<size_t>(c)] != 0) {
        std::fprintf(stderr, "lockcheck[%s]:   %-20s %llu\n", label.c_str(),
                     pmsim::LockCheckClassName(static_cast<pmsim::LockCheckClass>(c)),
                     static_cast<unsigned long long>(
                         result.lockcheck.counts[static_cast<size_t>(c)]));
      }
    }
  }
  return result;
}

}  // namespace cclbt::bench
