#include "src/bench/index_factory.h"

#include <cstdio>
#include <cstdlib>

#include "src/baselines/dptree.h"
#include "src/baselines/fastfair.h"
#include "src/baselines/flatstore.h"
#include "src/baselines/leaf_tree.h"
#include "src/baselines/lsmstore.h"
#include "src/baselines/utree.h"
#include "src/core/ccl_btree.h"

namespace cclbt::bench {

std::unique_ptr<kvindex::KvIndex> MakeIndex(const std::string& name, kvindex::Runtime& runtime,
                                            const IndexConfig& config) {
  if (name == "cclbtree") {
    return std::make_unique<core::CclBTree>(runtime, config.tree);
  }
  if (name == "fptree") {
    baselines::LeafTree::Options options;
    options.policy = baselines::LeafPolicy::kFpTree;
    options.name = "FPTree";
    return std::make_unique<baselines::LeafTree>(runtime, options);
  }
  if (name == "lbtree") {
    baselines::LeafTree::Options options;
    options.policy = baselines::LeafPolicy::kLbTree;
    options.name = "LB+-Tree";
    return std::make_unique<baselines::LeafTree>(runtime, options);
  }
  if (name == "pactree") {
    baselines::LeafTree::Options options;
    options.policy = baselines::LeafPolicy::kSorted;
    options.numa_local_alloc = true;
    options.name = "PACTree";
    return std::make_unique<baselines::LeafTree>(runtime, options);
  }
  if (name == "fastfair") {
    return std::make_unique<baselines::FastFairTree>(runtime);
  }
  if (name == "utree") {
    return std::make_unique<baselines::UTree>(runtime);
  }
  if (name == "dptree") {
    return std::make_unique<baselines::DpTree>(runtime);
  }
  if (name == "flatstore") {
    return std::make_unique<baselines::FlatStore>(runtime);
  }
  if (name == "lsmstore") {
    return std::make_unique<baselines::LsmStore>(runtime);
  }
  std::fprintf(stderr, "unknown index name: %s\n", name.c_str());
  std::abort();
}

std::unique_ptr<kvindex::KvIndex> RecoverIndex(const std::string& name, kvindex::Runtime& runtime,
                                               const IndexConfig& config, int recovery_threads) {
  std::unique_ptr<kvindex::KvIndex> index;
  if (name == "cclbtree") {
    index = std::make_unique<core::CclBTree>(runtime, config.tree, kvindex::Lifecycle::kAttach);
  } else if (name == "fastfair") {
    index = std::make_unique<baselines::FastFairTree>(runtime, kvindex::Lifecycle::kAttach);
  } else {
    return nullptr;  // declared not_recoverable
  }
  if (!index->Recover(runtime, recovery_threads)) {
    return nullptr;
  }
  return index;
}

const std::vector<std::string>& TreeIndexNames() {
  static const std::vector<std::string> names = {"fptree",  "fastfair", "dptree", "utree",
                                                 "lbtree",  "pactree",  "cclbtree"};
  return names;
}

const std::vector<std::string>& AllIndexNames() {
  static const std::vector<std::string> names = {"fptree",    "fastfair", "dptree",
                                                 "utree",     "lbtree",   "pactree",
                                                 "flatstore", "lsmstore", "cclbtree"};
  return names;
}

}  // namespace cclbt::bench
