// Factory producing any of the indexes under comparison by name, so the
// bench harness, YCSB driver and conformance tests are index-agnostic.
#ifndef SRC_BENCH_INDEX_FACTORY_H_
#define SRC_BENCH_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"

namespace cclbt::bench {

struct IndexConfig {
  // Passed through to CCL-BTree; ignored by baselines.
  core::TreeOptions tree;
};

// Names: "cclbtree", "fptree", "fastfair", "dptree", "utree", "lbtree",
// "pactree", "flatstore", "lsmstore". Aborts on unknown name.
std::unique_ptr<kvindex::KvIndex> MakeIndex(const std::string& name, kvindex::Runtime& runtime,
                                            const IndexConfig& config = {});

// Lifecycle counterpart of MakeIndex: attaches to the persistent state a
// previous instance left on the runtime's (reopened) pool and runs
// Recover(). Returns nullptr when the index declares itself not recoverable
// or recovery fails (missing/invalid persistent root). Never fakes recovery
// by reformatting.
std::unique_ptr<kvindex::KvIndex> RecoverIndex(const std::string& name, kvindex::Runtime& runtime,
                                               const IndexConfig& config = {},
                                               int recovery_threads = 1);

// The persistent B+-tree competitors of the paper's Figures 3-19
// (everything except the log-structured stores of Table 3).
const std::vector<std::string>& TreeIndexNames();

// All indexes including FlatStore and the LSM store.
const std::vector<std::string>& AllIndexNames();

}  // namespace cclbt::bench

#endif  // SRC_BENCH_INDEX_FACTORY_H_
