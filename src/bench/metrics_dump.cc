#include "src/bench/metrics_dump.h"

#include <atomic>
#include <cstdlib>
#include <fstream>

namespace cclbt::bench {

namespace {

std::atomic<int> g_metrics_dump_seq{0};

// File-name-safe version of a run label (same rules as trace_dump).
std::string Sanitize(const std::string& label) {
  std::string out = label.empty() ? "run" : label;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '_' || c == '.';
    if (!ok) {
      c = '-';
    }
  }
  return out;
}

}  // namespace

bool MetricsDumpRequested() { return std::getenv("CCL_METRICS") != nullptr; }

std::string MetricsDumpPrefix() {
  const char* prefix = std::getenv("CCL_METRICS");
  return prefix == nullptr ? std::string() : std::string(prefix);
}

std::string WriteMetricsDump(const metrics::PmMetricsFile& file) {
  std::string prefix = MetricsDumpPrefix();
  if (prefix.empty()) {
    return std::string();
  }
  int seq = g_metrics_dump_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path =
      prefix + "." + std::to_string(seq) + "." + Sanitize(file.header.label) + ".pmmetrics";
  std::ofstream out(path);
  if (!out) {
    return std::string();
  }
  out << metrics::SerializeHeader(file.header);
  out << metrics::SerializeEpochSeries(file.epochs);
  if (file.has_summary) {
    out << metrics::SerializeSummary(file.summary);
  }
  return out ? path : std::string();
}

}  // namespace cclbt::bench
