// Writer for .pmtrace dump files — the interchange format between a bench
// run and tools/pmctl. A dump is produced at the end of a measured phase
// when the CCL_TRACE environment variable names a path prefix; it carries
// the phase's stats snapshot (with per-component attribution), a coarse
// stats timeline, the XPLine write heatmap, and every worker's retained
// trace events. Plain "keyword fields..." text lines: greppable, versioned,
// no dependencies (see DESIGN.md "Observability" for the schema).
#ifndef SRC_BENCH_TRACE_DUMP_H_
#define SRC_BENCH_TRACE_DUMP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kvindex/runtime.h"
#include "src/pmsim/lockcheck.h"
#include "src/pmsim/pmcheck.h"
#include "src/pmsim/stats.h"

namespace cclbt::bench {

// One point of the measured phase's stats timeline (sampled by the driver in
// sequential-scheduler mode; virtual time is worker 0's clock).
struct TimelineSample {
  uint64_t t_ns = 0;
  uint64_t ops_done = 0;
  uint64_t media_write_bytes = 0;
  uint64_t xpbuffer_write_bytes = 0;
  uint64_t line_flushes = 0;
  uint64_t fences = 0;
};

// True when CCL_TRACE is set in the environment: the driver enables event
// tracing for the measured phase and writes one dump per run.
bool TraceDumpRequested();

// The CCL_TRACE value (path prefix), or "" when unset.
std::string TraceDumpPrefix();

// Writes "<prefix>.<seq>.<label>.pmtrace" (seq is a process-wide counter so
// a bench binary that runs many indexes produces distinct files). Collects
// the trace rings itself. Returns the path written, or "" on failure.
std::string WriteTraceDump(kvindex::Runtime& runtime, const std::string& label,
                           const pmsim::StatsSnapshot& stats,
                           const std::vector<TimelineSample>& timeline,
                           double elapsed_virtual_ms);

// Appends the pmcheck section (pmcheck/pmcheckstat/pmcheckclass/pmcheckdiag/
// pmcheckev keyword lines, consumed by `pmctl check`) to an already-written
// dump. Appended after the end-of-run close scan so the unflushed-at-close
// class is included; older pmctl builds skip the unknown keywords. Returns
// false if the dump cannot be written.
bool AppendPmCheckSection(const std::string& path, const pmsim::PmCheckReport& report);

// Appends the lockcheck section (lockcheck/lockcheckstat/lockcheckclass/
// lockcheckdiag/lockcheckev keyword lines, consumed by `pmctl locks`) to an
// already-written dump. Same versioned-keyword contract as the pmcheck
// section. Returns false if the dump cannot be written.
bool AppendLockCheckSection(const std::string& path, const pmsim::LockCheckReport& report);

}  // namespace cclbt::bench

#endif  // SRC_BENCH_TRACE_DUMP_H_
