#include "src/bench/trace_dump.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>

#include "src/pmsim/media_model.h"
#include "src/trace/trace.h"

namespace cclbt::bench {

namespace {

std::atomic<int> g_dump_seq{0};

const char* TagName(int tag) {
  switch (static_cast<pmsim::StreamTag>(tag)) {
    case pmsim::StreamTag::kOther:
      return "other";
    case pmsim::StreamTag::kLeaf:
      return "leaf";
    case pmsim::StreamTag::kLog:
      return "log";
    default:
      return "unknown";
  }
}

// File-name-safe version of a run label.
std::string Sanitize(const std::string& label) {
  std::string out = label.empty() ? "run" : label;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '_' || c == '.';
    if (!ok) {
      c = '-';
    }
  }
  return out;
}

}  // namespace

bool TraceDumpRequested() { return std::getenv("CCL_TRACE") != nullptr; }

std::string TraceDumpPrefix() {
  const char* prefix = std::getenv("CCL_TRACE");
  return prefix == nullptr ? std::string() : std::string(prefix);
}

std::string WriteTraceDump(kvindex::Runtime& runtime, const std::string& label,
                           const pmsim::StatsSnapshot& stats,
                           const std::vector<TimelineSample>& timeline,
                           double elapsed_virtual_ms) {
  std::string prefix = TraceDumpPrefix();
  if (prefix.empty()) {
    return std::string();
  }
  int seq = g_dump_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path =
      prefix + "." + std::to_string(seq) + "." + Sanitize(label) + ".pmtrace";
  std::ofstream out(path);
  if (!out) {
    return std::string();
  }

  const pmsim::DeviceConfig& dc = runtime.device().config();
  out << "pmtrace 1\n";
  out << "label " << Sanitize(label) << "\n";
  out << "config pool_bytes " << dc.pool_bytes << "\n";
  out << "config num_sockets " << dc.num_sockets << "\n";
  out << "config dimms_per_socket " << dc.dimms_per_socket << "\n";
  out << "config backend " << pmsim::MediaBackendName(dc.backend) << "\n";
  out << "config xpline_bytes " << dc.xpline_bytes << "\n";
  out << "config elapsed_virtual_ms " << elapsed_virtual_ms << "\n";

  // Scalar stats straight from the field list, so a newly added counter shows
  // up in dumps without touching this file.
#define CCLBT_DUMP_STAT_S(name) out << "stat " #name " " << stats.name << "\n";
#define CCLBT_DUMP_STAT_A(name, n)
  CCLBT_PMSIM_STATS_FIELDS(CCLBT_DUMP_STAT_S, CCLBT_DUMP_STAT_A)
#undef CCLBT_DUMP_STAT_S
#undef CCLBT_DUMP_STAT_A

  for (int t = 0; t < static_cast<int>(pmsim::StreamTag::kCount); t++) {
    out << "stattag " << TagName(t) << " " << stats.media_writes_by_tag[t] << "\n";
  }
  for (int c = 0; c < trace::kNumComponents; c++) {
    out << "statcomp " << trace::ComponentName(static_cast<trace::Component>(c)) << " "
        << stats.media_write_bytes_by_component[c] << " "
        << stats.committed_lines_by_component[c] << "\n";
  }

  for (const TimelineSample& s : timeline) {
    out << "sample " << s.t_ns << " " << s.ops_done << " " << s.media_write_bytes << " "
        << s.xpbuffer_write_bytes << " " << s.line_flushes << " " << s.fences << "\n";
  }

  // Heatmap: fold per-XPLine write counts into at most kMaxHeatBins bins so
  // dumps stay small for multi-GB pools.
  pmsim::PmDevice& device = runtime.device();
  if (device.heatmap_enabled()) {
    constexpr uint64_t kMaxHeatBins = 512;
    uint64_t units = device.num_units();
    uint64_t per_bin = (units + kMaxHeatBins - 1) / kMaxHeatBins;
    per_bin = std::max<uint64_t>(per_bin, 1);
    out << "heat " << units << " " << per_bin << "\n";
    for (uint64_t first = 0; first < units; first += per_bin) {
      uint64_t end = std::min(units, first + per_bin);
      uint64_t writes = 0;
      uint64_t hottest_unit = first;
      uint64_t hottest_writes = 0;
      for (uint64_t u = first; u < end; u++) {
        uint64_t w = device.UnitWriteCount(u);
        writes += w;
        if (w > hottest_writes) {
          hottest_writes = w;
          hottest_unit = u;
        }
      }
      if (writes == 0) {
        continue;  // sparse: empty bins are implicit
      }
      out << "heatbin " << first << " " << (end - first) << " " << writes << " "
          << hottest_unit << " " << hottest_writes << "\n";
    }
  }

  for (const trace::NamedRing& ring : trace::CollectRings()) {
    out << "ring " << ring.worker_id << " " << ring.socket << " " << ring.emitted << " "
        << ring.events.size() << "\n";
    for (const trace::TraceEvent& ev : ring.events) {
      out << "event " << ring.worker_id << " " << ev.t_ns << " "
          << static_cast<int>(ev.type) << " " << static_cast<int>(ev.comp) << " " << ev.arg
          << " " << ev.aux << " " << ev.dimm << "\n";
    }
  }

  out.flush();
  if (!out) {
    return std::string();
  }
  return path;
}

bool AppendPmCheckSection(const std::string& path, const pmsim::PmCheckReport& report) {
  if (!report.enabled) {
    return true;  // nothing to append; `pmctl check` reports not-enabled
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return false;
  }
  // Version 2 adds the per-class informational column (backend-downgraded
  // severities, DESIGN.md §14) and the pmcheckinfo diagnostic keyword;
  // version-1 readers skip the unknown keyword and extra column.
  out << "pmcheck 2\n";
  out << "pmcheckstat fence_epochs " << report.fence_epochs << "\n";
  out << "pmcheckstat lines_tracked " << report.lines_tracked << "\n";
  // Explicit truncation marker: nonzero means the kMaxDiagnostics retention
  // cap dropped materialized diagnostics (counts stay exact). `pmctl check`
  // warns on it so a capped run is never read as clean-and-complete.
  out << "pmcheckstat diagnostics_truncated " << report.diagnostics_truncated << "\n";
  for (int c = 0; c < pmsim::kNumPmCheckClasses; c++) {
    out << "pmcheckclass " << pmsim::PmCheckClassName(static_cast<pmsim::PmCheckClass>(c))
        << " " << report.counts[static_cast<size_t>(c)] << " "
        << report.suppressed[static_cast<size_t>(c)] << " "
        << report.info[static_cast<size_t>(c)] << "\n";
  }
  for (const pmsim::PmCheckDiagnostic& d : report.diagnostics) {
    out << (d.info ? "pmcheckinfo " : "pmcheckdiag ")
        << pmsim::PmCheckClassName(d.cls) << " " << d.line << " "
        << d.xpline << " " << d.dimm << " " << trace::ComponentName(d.comp) << " "
        << d.worker << " " << d.fence_epoch << " " << d.detail << "\n";
    for (const pmsim::PmCheckEvent& ev : d.recent) {
      out << "pmcheckev " << pmsim::PmCheckEventKindName(ev.kind) << " "
          << trace::ComponentName(ev.comp) << " " << ev.worker << " " << ev.detail << " "
          << ev.fence_epoch << "\n";
    }
  }
  out.flush();
  return static_cast<bool>(out);
}

bool AppendLockCheckSection(const std::string& path, const pmsim::LockCheckReport& report) {
  if (!report.enabled) {
    return true;  // nothing to append; `pmctl locks` reports not-enabled
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return false;
  }
  out << "lockcheck 1\n";
  out << "lockcheckstat locks_tracked " << report.locks_tracked << "\n";
  out << "lockcheckstat lines_tracked " << report.lines_tracked << "\n";
  out << "lockcheckstat order_edges " << report.order_edges << "\n";
  out << "lockcheckstat seq_read_sections " << report.seq_read_sections << "\n";
  out << "lockcheckstat seq_validate_failures " << report.seq_validate_failures << "\n";
  out << "lockcheckstat diagnostics_truncated " << report.diagnostics_truncated << "\n";
  for (int c = 0; c < pmsim::kNumLockCheckClasses; c++) {
    out << "lockcheckclass "
        << pmsim::LockCheckClassName(static_cast<pmsim::LockCheckClass>(c)) << " "
        << report.counts[static_cast<size_t>(c)] << " "
        << report.suppressed[static_cast<size_t>(c)] << " "
        << report.info[static_cast<size_t>(c)] << "\n";
  }
  for (const pmsim::LockCheckDiagnostic& d : report.diagnostics) {
    out << (d.info ? "lockcheckinfo " : "lockcheckdiag ") << pmsim::LockCheckClassName(d.cls)
        << " " << d.line << " " << trace::ComponentName(d.comp) << " " << d.worker << " "
        << d.lock << " " << d.lock2 << " " << d.detail << "\n";
    for (const pmsim::LockCheckEvent& ev : d.recent) {
      out << "lockcheckev " << pmsim::LockCheckEventKindName(ev.kind) << " "
          << trace::ComponentName(ev.comp) << " " << ev.worker << " "
          << (ev.lock[0] == '\0' ? "-" : ev.lock) << " " << ev.detail << "\n";
    }
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cclbt::bench
