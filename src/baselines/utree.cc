#include "src/baselines/utree.h"

#include <cassert>
#include <cstring>

#include "src/pmsim/pmcheck.h"

namespace cclbt::baselines {

// One XPLine-quarter per KV: key, value, next pointer, valid flag.
struct UTree::ListNode {
  uint64_t key;
  uint64_t value;
  uint64_t next_offset;
  uint64_t valid;  // 1 = live; cleared on delete (8 B-atomic commit)
  uint8_t padding[32];
};
UTree::UTree(kvindex::Runtime& runtime) : rt_(runtime) {
  static_assert(sizeof(ListNode) == 64);
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = sizeof(ListNode);
  slab_options.tag = pmsim::StreamTag::kLeaf;
  node_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  head_ = static_cast<ListNode*>(node_slab_->Allocate(0));
  assert(head_ != nullptr);
  std::memset(static_cast<void*>(head_), 0, sizeof(ListNode));
  {
    // Formatting persist of the zeroed head sentinel (see LeafTree's ctor).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(head_, sizeof(ListNode));
  }
  index_.Insert(0, head_);
}

UTree::~UTree() = default;

UTree::ListNode* UTree::NodeAt(uint64_t offset) const {
  return static_cast<ListNode*>(rt_.pool().ToAddr(offset));
}

void UTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  ListNode* existing = nullptr;
  if (index_.Get(key, &existing)) {
    // In-place value update: one random PM line.
    existing->value = value;
    pmsim::FlushLine(existing);
    pmsim::Fence();
    return;
  }
  // Predecessor via the DRAM index (floor).
  bool found = false;
  ListNode* pred = index_.RouteFloor(key, &found);
  assert(found);
  auto* node = static_cast<ListNode*>(node_slab_->Allocate(0));
  assert(node != nullptr && "PM exhausted");
  node->key = key;
  node->value = value;
  node->next_offset = pred->next_offset;
  node->valid = 1;
  // Two random PM lines per insert: the new node, then the predecessor link.
  pmsim::Persist(node, sizeof(ListNode));
  pred->next_offset = rt_.pool().ToOffset(node);
  pmsim::FlushLine(&pred->next_offset);
  pmsim::Fence();
  index_.Insert(key, node);
}

bool UTree::Lookup(uint64_t key, uint64_t* value_out) {
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  ListNode* node = nullptr;
  if (!index_.Get(key, &node) || node->valid == 0) {
    return false;
  }
  pmsim::ReadPm(node, sizeof(ListNode));
  *value_out = node->value;
  return true;
}

bool UTree::Remove(uint64_t key) {
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  ListNode* node = nullptr;
  if (!index_.Get(key, &node)) {
    return false;
  }
  // Invalidate (8 B atomic), then unlink lazily via the predecessor.
  node->valid = 0;
  pmsim::FlushLine(&node->valid);
  pmsim::Fence();
  bool found = false;
  ListNode* pred = index_.RouteFloor(key - 1, &found);
  if (found && pred->next_offset == rt_.pool().ToOffset(node)) {
    pred->next_offset = node->next_offset;
    pmsim::FlushLine(&pred->next_offset);
    pmsim::Fence();
    node_slab_->Free(node);
  }
  index_.Remove(key);
  return true;
}

size_t UTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  bool found = false;
  ListNode* node = index_.RouteFloor(start_key, &found);
  if (!found) {
    return 0;
  }
  size_t produced = 0;
  // Chase the PM list: one random XPLine read per KV (the µTree scan cost).
  uint64_t next = node->key >= start_key && node->valid != 0 ? rt_.pool().ToOffset(node)
                                                             : node->next_offset;
  while (next != 0 && produced < count) {
    ListNode* current = NodeAt(next);
    pmsim::ReadPm(current, sizeof(ListNode));
    if (current->valid != 0 && current->key >= start_key) {
      out[produced++] = {current->key, current->value};
    }
    next = current->next_offset;
  }
  return produced;
}

kvindex::MemoryFootprint UTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  footprint.dram_bytes = index_.MemoryBytes();  // per-KV DRAM index
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

}  // namespace cclbt::baselines
