// DRAM-side handle for one PM leaf, shared by the DRAM-inner baselines
// (FPTree / LB+-Tree / PACTree flavours): a version lock, the leaf pointer
// and the separator key. Same optimistic-locking discipline as CCL-BTree's
// buffer nodes, minus the KV slots.
#ifndef SRC_BASELINES_LEAF_HANDLE_H_
#define SRC_BASELINES_LEAF_HANDLE_H_

#include <atomic>
#include <cstdint>

#include "src/common/lock.h"
#include "src/core/leaf_node.h"

namespace cclbt::baselines {

class LeafHandle {
 public:
  LeafHandle(core::PmLeaf* leaf, uint64_t sep) : leaf_(leaf), sep_(sep) {}

  bool TryLock() TRY_ACQUIRE(version_) { return version_.TryLock(); }
  void Unlock() RELEASE(version_) { version_.Unlock(); }

  uint64_t ReadBegin() const { return version_.ReadBegin(); }
  bool ReadValidate(uint64_t snapshot) const { return version_.ReadValidate(snapshot); }

  core::PmLeaf* leaf() const { return leaf_; }
  uint64_t sep() const { return sep_; }
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  void MarkDead() { dead_.store(true, std::memory_order_release); }

 private:
  mutable sync::SeqLock version_{"bl.leaf_version"};
  core::PmLeaf* leaf_;
  uint64_t sep_;
  std::atomic<bool> dead_{false};
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_LEAF_HANDLE_H_
