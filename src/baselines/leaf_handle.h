// DRAM-side handle for one PM leaf, shared by the DRAM-inner baselines
// (FPTree / LB+-Tree / PACTree flavours): a version lock, the leaf pointer
// and the separator key. Same optimistic-locking discipline as CCL-BTree's
// buffer nodes, minus the KV slots.
#ifndef SRC_BASELINES_LEAF_HANDLE_H_
#define SRC_BASELINES_LEAF_HANDLE_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/core/leaf_node.h"

namespace cclbt::baselines {

class LeafHandle {
 public:
  LeafHandle(core::PmLeaf* leaf, uint64_t sep) : leaf_(leaf), sep_(sep) {}

  bool TryLock() {
    uint64_t v = version_.load(std::memory_order_acquire);
    if ((v & 1) != 0) {
      return false;
    }
    return version_.compare_exchange_weak(v, v + 1, std::memory_order_acquire);
  }
  void Unlock() { version_.fetch_add(1, std::memory_order_release); }

  uint64_t ReadBegin() const {
    uint64_t v;
    while (((v = version_.load(std::memory_order_acquire)) & 1) != 0) {
      std::this_thread::yield();  // see core/buffer_node.h
    }
    return v;
  }
  bool ReadValidate(uint64_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_acquire) == snapshot;
  }

  core::PmLeaf* leaf() const { return leaf_; }
  uint64_t sep() const { return sep_; }
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  void MarkDead() { dead_.store(true, std::memory_order_release); }

 private:
  std::atomic<uint64_t> version_{0};
  core::PmLeaf* leaf_;
  uint64_t sep_;
  std::atomic<bool> dead_{false};
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_LEAF_HANDLE_H_
