// FlatStore-style baseline (Chen et al., ASPLOS'20) — reimplemented from the
// paper's description, as the original is closed source (the CCL-BTree
// authors did the same). A log-structured KV store for PM:
//   * every write appends a record to a per-thread sequential PM log, so
//     consecutive records share XPLines and XBI-amplification is minimal;
//   * a volatile index maps keys to their latest log position;
//   * range queries are the weakness: logically-adjacent keys live at random
//     log positions, so a scan performs one random PM read per KV (paper
//     §2.3 / Fig. 5 / Table 3).
// Simplifications: the volatile index is an ordered map under a
// readers-writer lock (FlatStore uses a hash index + lock-free lists; the
// virtual-time model is agnostic), and log compaction is not modeled (it
// does not participate in any reproduced experiment).
#ifndef SRC_BASELINES_FLATSTORE_H_
#define SRC_BASELINES_FLATSTORE_H_

#include <map>
#include <memory>
#include "src/common/lock.h"
#include <vector>

#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/log_arena.h"

namespace cclbt::baselines {

class FlatStore : public kvindex::KvIndex {
 public:
  explicit FlatStore(kvindex::Runtime& runtime);
  ~FlatStore() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "FlatStore"; }
  kvindex::MemoryFootprint Footprint() const override;

 private:
  struct Record {  // 24 B PM log record
    uint64_t key;
    uint64_t value;
    uint64_t meta;  // kRecordValid | tombstone flag in bit 0
  };

  // Every written record carries this marker so a record is distinguishable
  // from zeroed log space by its own bytes, not just a nonzero key. It also
  // means a record tail spilling across a cacheline boundary never equals
  // the fresh line's durable zeros: before the marker, pmcheck correctly
  // flagged every 8th append (lcm(24 B record, 64 B line)) as flushing a
  // line whose only written byte was a zero meta word — a flush that
  // persisted nothing.
  static constexpr uint64_t kRecordValid = 2;

  struct ThreadLog {
    std::byte* chunk = nullptr;
    size_t cursor = 0;
  };

  const Record* Append(uint64_t key, uint64_t value, bool tombstone);

  kvindex::Runtime& rt_;
  std::unique_ptr<pmem::LogArena> arena_;
  std::vector<ThreadLog> logs_;  // per worker id
  sync::Mutex logs_mu_{"bl.flatstore_logs"};  // guards chunk activation only

  mutable sync::SharedMutex mu_{"bl.flatstore"};
  std::map<uint64_t, const Record*> index_;
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_FLATSTORE_H_
