// DPTree-style baseline (Zhou et al., VLDB'19): differential indexing with a
// single *global* DRAM buffer tree in front of a PM base tree. Writes go to
// the buffer (plus a PM log for crash consistency); when the buffer exceeds
// a fraction of the base tree, it is merged wholesale into the PM leaves.
// This is the "global buffering" strawman of the paper's §3.2:
//   * the base tree uses large leaves (256 KVs, paper §5.1) rewritten
//     copy-on-write at merge time, so sparse merges rewrite 4 KB per few
//     changed keys -> the highest XBI of all competitors (paper: 43.2 at 48
//     threads vs CCL-BTree's 10.2);
//   * foreground operations stall behind the merge -> 100 ms-scale tail
//     latencies (paper Fig. 12(a));
//   * reads must probe the large global buffer before the base tree.
//
// Simplifications (DESIGN.md §6): base-tree crash consistency (DPTree's
// version/epoch scheme) is not implemented — recovery of this baseline is
// not part of any reproduced experiment.
#ifndef SRC_BASELINES_DPTREE_H_
#define SRC_BASELINES_DPTREE_H_

#include <atomic>
#include <map>
#include <memory>
#include "src/common/lock.h"
#include <vector>

#include "src/core/wal.h"
#include "src/kvindex/dram_btree.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/log_arena.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::baselines {

class DpTree : public kvindex::KvIndex {
 public:
  struct Options {
    // Merge when buffered entries exceed this fraction (percent) of the base
    // tree's entry count (DPTree merges at 1/16 ~ 6%; we default to 10%).
    int merge_threshold_pct = 6;
    size_t min_buffer_entries = 4096;
  };

  explicit DpTree(kvindex::Runtime& runtime) : DpTree(runtime, Options()) {}
  DpTree(kvindex::Runtime& runtime, const Options& options);
  ~DpTree() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "DPTree"; }
  kvindex::MemoryFootprint Footprint() const override;
  void FlushAll() override;

  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }

 private:
  // PM base-tree leaf: 4 KB, 252 sorted KVs (the "large leaf nodes
  // containing 256 KVs to amortize persistence overhead" of §5.1).
  static constexpr size_t kBigLeafBytes = 4096;
  static constexpr size_t kBigLeafCap = (kBigLeafBytes - 64) / 16;  // 252
  struct BigLeaf {
    uint64_t count;
    uint8_t padding[56];
    kvindex::KeyValue kvs[252];  // sorted
  };
  static_assert(sizeof(BigLeaf) == kBigLeafBytes);

  void MergeLocked();
  // Rewrites one leaf copy-on-write with `changes` (sorted upserts and
  // tombstones) applied; publishes the replacement(s) into the DRAM index.
  void RewriteLeaf(uint64_t sep, BigLeaf* leaf, const std::vector<kvindex::KeyValue>& changes);
  bool BaseLookup(uint64_t key, uint64_t* value_out) const;

  kvindex::Runtime& rt_;
  Options options_;
  std::unique_ptr<pmem::LogArena> log_arena_;
  std::unique_ptr<core::WalSet> wals_;
  std::unique_ptr<pmem::SlabAllocator> leaf_slab_;

  mutable sync::SharedMutex mu_{"bl.dptree_gate"};  // buffer ops shared; merge exclusive
  std::map<uint64_t, uint64_t> buffer_;  // global DRAM buffer (front tree)
  mutable sync::SharedMutex buffer_mu_{"bl.dptree_buffer"};
  kvindex::DramBTree<BigLeaf*> base_index_;  // separator -> PM big leaf
  std::atomic<uint64_t> base_entries_{0};
  std::atomic<uint64_t> merges_{0};
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_DPTREE_H_
