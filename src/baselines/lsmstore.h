// Minimal leveled LSM engine standing in for RocksDB-on-PM (paper Table 3).
// What matters for the comparison is the write/read/scan *shape*:
//   * inserts: DRAM memtable + sequential PM WAL (cheap), but memtable
//     flushes and leveled sort-merge compactions rewrite data repeatedly —
//     large PM write amplification and periodic stalls;
//   * point reads: probe memtable, then every level newest-to-oldest
//     (multiple PM reads);
//   * scans: heap-merge across the memtable and all runs (many random-ish
//     PM reads), the paper omits RocksDB's scan number because it is
//     hopeless.
#ifndef SRC_BASELINES_LSMSTORE_H_
#define SRC_BASELINES_LSMSTORE_H_

#include <map>
#include <memory>
#include "src/common/lock.h"
#include <vector>

#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"

namespace cclbt::baselines {

class LsmStore : public kvindex::KvIndex {
 public:
  struct Options {
    size_t memtable_entries = 1 << 14;
    int l0_runs_trigger = 4;     // L0 run count that triggers compaction
    size_t level_ratio = 8;      // size ratio between adjacent levels
    int max_levels = 6;
  };

  explicit LsmStore(kvindex::Runtime& runtime) : LsmStore(runtime, Options()) {}
  LsmStore(kvindex::Runtime& runtime, const Options& options);
  ~LsmStore() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "RocksDB-PM"; }
  kvindex::MemoryFootprint Footprint() const override;
  void FlushAll() override;

  uint64_t compactions() const { return compactions_; }

 private:
  struct Run {  // one sorted PM run (SSTable)
    const kvindex::KeyValue* entries;
    size_t count;
    uint64_t min_key;
    uint64_t max_key;
  };

  // Writes a sorted entry vector to PM as a new run (sequential writes).
  Run WriteRun(const std::vector<kvindex::KeyValue>& entries);
  void FlushMemtableLocked();
  void MaybeCompactLocked();
  // Sort-merges all runs of `level` plus `incoming` into level+1.
  void CompactLocked(int level);

  kvindex::Runtime& rt_;
  Options options_;

  mutable sync::SharedMutex mu_{"bl.lsmstore"};  // structure lock (memtable + levels)
  std::map<uint64_t, uint64_t> memtable_;  // value 0 = tombstone
  std::byte* wal_cursor_ = nullptr;
  size_t wal_remaining_ = 0;
  std::vector<std::vector<Run>> levels_;
  uint64_t compactions_ = 0;
  uint64_t pm_run_bytes_ = 0;
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_LSMSTORE_H_
