#include "src/baselines/leaf_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/pmsim/pmcheck.h"

namespace cclbt::baselines {

using core::kBitmapMask;
using core::kLeafBytes;
using core::kLeafSlots;
using core::MakeMeta;
using core::PmLeaf;

namespace {
uint32_t LineOfSlot(int slot) { return static_cast<uint32_t>((32 + 16 * slot) / 64); }
}  // namespace

LeafTree::LeafTree(kvindex::Runtime& runtime, const Options& options)
    : rt_(runtime), options_(options) {
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kLeafBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  leaf_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  head_leaf_ = static_cast<PmLeaf*>(leaf_slab_->Allocate(0));
  assert(head_leaf_ != nullptr);
  std::memset(static_cast<void*>(head_leaf_), 0, kLeafBytes);
  {
    // Formatting persist: the empty head leaf must be durable even though a
    // fresh pool already holds zeroes (a reused slot would not).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(head_leaf_, kLeafBytes);
  }
  inner_.Insert(0, NewHandle(head_leaf_, 0));
}

LeafTree::~LeafTree() = default;

LeafHandle* LeafTree::NewHandle(PmLeaf* leaf, uint64_t sep) {
  auto handle = std::make_unique<LeafHandle>(leaf, sep);
  LeafHandle* raw = handle.get();
  sync::LockGuard<sync::Mutex> guard(handles_mu_);
  handles_.push_back(std::move(handle));
  return raw;
}

LeafHandle* LeafTree::RouteAndLock(uint64_t key) {
  for (;;) {
    bool found = false;
    LeafHandle* handle = inner_.RouteFloor(key, &found);
    assert(found);
    if (!handle->TryLock()) {
      std::this_thread::yield();
      continue;
    }
    if (handle->dead() || inner_.RouteFloor(key) != handle) {
      handle->Unlock();
      continue;
    }
    return handle;
  }
}

void LeafTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  LeafHandle* handle = RouteAndLock(key);
  if (options_.policy == LeafPolicy::kSorted) {
    InsertSorted(handle, key, value);
  } else {
    InsertUnsorted(handle, key, value);
  }
  handle->Unlock();
}

void LeafTree::InsertUnsorted(LeafHandle* handle, uint64_t key, uint64_t value) {
  for (;;) {
    PmLeaf* leaf = handle->leaf();
    pmsim::ReadPm(leaf, 64);  // header read (bitmap + fingerprints)
    int slot = leaf->FindSlot(key);
    if (slot >= 0) {
      // In-place update: one line flush, one fence.
      leaf->kvs[slot].value = value;
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + LineOfSlot(slot) * 64);
      pmsim::Fence();
      return;
    }
    uint64_t bitmap = leaf->bitmap();
    int free = -1;
    if (options_.policy == LeafPolicy::kLbTree) {
      // Entry moving: prefer the header-line slots so data + metadata can be
      // persisted with a single cacheline flush.
      for (int candidate : {0, 1}) {
        if (!((bitmap >> candidate) & 1)) {
          free = candidate;
          break;
        }
      }
    }
    if (free < 0 && bitmap != kBitmapMask) {
      free = __builtin_ctzll(~bitmap & kBitmapMask);
    }
    if (free < 0) {
      LeafHandle* right = SplitLeaf(handle);  // returned locked
      if (key >= right->sep()) {
        InsertUnsorted(right, key, value);
        right->Unlock();
        return;
      }
      right->Unlock();
      continue;  // retry on the (now non-full) left leaf
    }
    leaf->kvs[free] = kvindex::KeyValue{key, value};
    leaf->fingerprints[free] = Fingerprint8(key);
    uint64_t next = leaf->next_offset();
    if (options_.policy == LeafPolicy::kLbTree) {
      leaf->meta.store(MakeMeta(bitmap | (1ULL << free), next), std::memory_order_release);
      if (LineOfSlot(free) != 0) {
        pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + LineOfSlot(free) * 64);
      }
      pmsim::FlushLine(leaf);
      pmsim::Fence();  // single fence; single flush when the slot is in line 0
    } else {
      // FPTree: data first (flush+fence), then the bitmap commit (flush+fence).
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + LineOfSlot(free) * 64);
      pmsim::Fence();
      leaf->meta.store(MakeMeta(bitmap | (1ULL << free), next), std::memory_order_release);
      pmsim::FlushLine(leaf);
      pmsim::Fence();
    }
    return;
  }
}

void LeafTree::InsertSorted(LeafHandle* handle, uint64_t key, uint64_t value) {
  for (;;) {
    PmLeaf* leaf = handle->leaf();
    pmsim::ReadPm(leaf, kLeafBytes);
    int count = leaf->ValidCount();
    // Sorted leaves keep entries packed in slots [0, count).
    int pos = 0;
    while (pos < count && leaf->kvs[pos].key < key) {
      pos++;
    }
    if (pos < count && leaf->kvs[pos].key == key) {
      leaf->kvs[pos].value = value;
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + LineOfSlot(pos) * 64);
      pmsim::Fence();
      return;
    }
    if (count == kLeafSlots) {
      LeafHandle* right = SplitLeaf(handle);
      if (key >= right->sep()) {
        InsertSorted(right, key, value);
        right->Unlock();
        return;
      }
      right->Unlock();
      continue;
    }
    // Shift-based insert: every moved entry dirties its line (the cost the
    // unsorted designs avoid).
    uint32_t dirty_lines = 1u << LineOfSlot(pos);
    for (int i = count; i > pos; i--) {
      leaf->kvs[i] = leaf->kvs[i - 1];
      leaf->fingerprints[i] = leaf->fingerprints[i - 1];
      dirty_lines |= 1u << LineOfSlot(i);
    }
    leaf->kvs[pos] = kvindex::KeyValue{key, value};
    leaf->fingerprints[pos] = Fingerprint8(key);
    bool flushed_any = false;
    for (uint32_t line = 1; line < 4; line++) {
      if ((dirty_lines >> line) & 1) {
        pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + line * 64);
        flushed_any = true;
      }
    }
    // When every touched slot sits in the header line there is nothing to
    // order here: the meta flush below persists data + commit atomically in
    // one line, and a fence with no pending lines is pure cost (pmcheck:
    // useless fence).
    if (flushed_any) {
      pmsim::Fence();
    }
    uint64_t bitmap = (count + 1 == kLeafSlots) ? kBitmapMask : ((1ULL << (count + 1)) - 1);
    leaf->meta.store(MakeMeta(bitmap, leaf->next_offset()), std::memory_order_release);
    pmsim::FlushLine(leaf);
    pmsim::Fence();
    return;
  }
}

LeafHandle* LeafTree::SplitLeaf(LeafHandle* handle) {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  PmLeaf* leaf = handle->leaf();
  uint64_t bitmap = leaf->bitmap();
  uint64_t keys[16];
  int n = 0;
  for (int slot = 0; slot < kLeafSlots; slot++) {
    if ((bitmap >> slot) & 1) {
      keys[n++] = leaf->kvs[slot].key;
    }
  }
  std::sort(keys, keys + n);
  uint64_t split_key = keys[n / 2];

  int socket = options_.numa_local_alloc ? ctx->socket() : 0;
  auto* new_leaf = static_cast<PmLeaf*>(leaf_slab_->Allocate(socket));
  assert(new_leaf != nullptr && "PM exhausted");
  std::memset(static_cast<void*>(new_leaf), 0, kLeafBytes);
  uint64_t new_bitmap = 0;
  uint64_t old_bitmap = bitmap;
  int out = 0;
  for (int slot = 0; slot < kLeafSlots; slot++) {
    if (((bitmap >> slot) & 1) && leaf->kvs[slot].key >= split_key) {
      new_leaf->kvs[out] = leaf->kvs[slot];
      new_leaf->fingerprints[out] = leaf->fingerprints[slot];
      new_bitmap |= 1ULL << out;
      old_bitmap &= ~(1ULL << slot);
      out++;
    }
  }
  new_leaf->meta.store(MakeMeta(new_bitmap, leaf->next_offset()), std::memory_order_release);
  // Persist the header line plus only the lines holding slots in new_bitmap:
  // no reader or rebuild ever looks at a slot outside the bitmap, so the
  // empty tail lines of the fresh leaf need no flush (pmcheck: redundant).
  uint32_t new_dirty = 1u;
  for (int slot = 0; slot < kLeafSlots; slot++) {
    if ((new_bitmap >> slot) & 1) {
      new_dirty |= 1u << LineOfSlot(slot);
    }
  }
  for (uint32_t line = 0; line < 4; line++) {
    if ((new_dirty >> line) & 1) {
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(new_leaf) + line * 64);
    }
  }
  pmsim::Fence();

  if (options_.policy == LeafPolicy::kSorted) {
    // Keep the left half packed: compact [0, mid) (already a prefix because
    // sorted leaves are packed; the >=split entries are the suffix).
    old_bitmap = (1ULL << (n - out)) - 1;
  }
  leaf->meta.store(MakeMeta(old_bitmap, rt_.pool().ToOffset(new_leaf)),
                   std::memory_order_release);
  pmsim::FlushLine(leaf);
  pmsim::Fence();

  LeafHandle* right = NewHandle(new_leaf, split_key);
  right->TryLock();  // uncontended: not yet published
  inner_.Insert(split_key, right);
  return right;
}

bool LeafTree::Lookup(uint64_t key, uint64_t* value_out) {
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  for (;;) {
    bool found = false;
    LeafHandle* handle = inner_.RouteFloor(key, &found);
    if (!found) {
      return false;
    }
    uint64_t snapshot = handle->ReadBegin();
    if (handle->dead() || inner_.RouteFloor(key) != handle) {
      continue;
    }
    PmLeaf* leaf = handle->leaf();
    pmsim::ReadPm(leaf, kLeafBytes);
    int slot = leaf->FindSlot(key);
    uint64_t value = slot >= 0 ? leaf->kvs[slot].value : 0;
    if (!handle->ReadValidate(snapshot)) {
      continue;
    }
    if (slot < 0) {
      return false;
    }
    *value_out = value;
    return true;
  }
}

bool LeafTree::Remove(uint64_t key) {
  pmsim::AdvanceCpu(8 * rt_.device().config().cost.dram_access_ns);
  LeafHandle* handle = RouteAndLock(key);
  PmLeaf* leaf = handle->leaf();
  pmsim::ReadPm(leaf, 64);
  int slot = leaf->FindSlot(key);
  if (slot < 0) {
    handle->Unlock();
    return false;
  }
  if (options_.policy == LeafPolicy::kSorted) {
    // Shift-remove keeps the prefix packed.
    int count = leaf->ValidCount();
    uint32_t dirty_lines = 0;
    for (int i = slot; i + 1 < count; i++) {
      leaf->kvs[i] = leaf->kvs[i + 1];
      leaf->fingerprints[i] = leaf->fingerprints[i + 1];
      dirty_lines |= 1u << LineOfSlot(i);
    }
    bool flushed_any = false;
    for (uint32_t line = 1; line < 4; line++) {
      if ((dirty_lines >> line) & 1) {
        pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + line * 64);
        flushed_any = true;
      }
    }
    // Removing the tail entry (or shifting only header-line slots) dirties no
    // data line: the meta flush below persists shift + commit atomically in
    // one line, and an extra fence here would order nothing (pmcheck: useless
    // fence).
    if (flushed_any) {
      pmsim::Fence();
    }
    leaf->meta.store(MakeMeta((1ULL << (count - 1)) - 1, leaf->next_offset()),
                     std::memory_order_release);
  } else {
    leaf->meta.store(MakeMeta(leaf->bitmap() & ~(1ULL << slot), leaf->next_offset()),
                     std::memory_order_release);
  }
  pmsim::FlushLine(leaf);
  pmsim::Fence();
  handle->Unlock();
  return true;
}

size_t LeafTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  size_t produced = 0;
  uint64_t cursor = start_key;
  std::vector<kvindex::KeyValue> window;
  window.reserve(kLeafSlots);
  for (;;) {
    if (produced >= count) {
      break;
    }
    bool found = false;
    LeafHandle* handle = inner_.RouteFloor(cursor, &found);
    if (!found) {
      break;
    }
    uint64_t next_sep = 0;
    LeafHandle* next_handle = nullptr;
    bool have_next = inner_.NextEntry(cursor, &next_sep, &next_handle);

    window.clear();
    uint64_t snapshot = handle->ReadBegin();
    if (handle->dead()) {
      continue;
    }
    PmLeaf leaf_copy;
    std::memcpy(static_cast<void*>(&leaf_copy), static_cast<const void*>(handle->leaf()),
                kLeafBytes);
    pmsim::ReadPm(handle->leaf(), kLeafBytes);
    if (!handle->ReadValidate(snapshot)) {
      continue;
    }
    uint64_t bits = core::MetaBitmap(leaf_copy.meta.load(std::memory_order_relaxed));
    for (int slot = 0; slot < kLeafSlots; slot++) {
      if ((bits >> slot) & 1) {
        window.push_back(leaf_copy.kvs[slot]);
      }
    }
    std::sort(window.begin(), window.end(),
              [](const kvindex::KeyValue& a, const kvindex::KeyValue& b) { return a.key < b.key; });
    pmsim::AdvanceCpu(window.size() * 6 * rt_.device().config().cost.dram_access_ns);
    for (const auto& entry : window) {
      if (entry.key < cursor) {
        continue;
      }
      if (have_next && entry.key >= next_sep) {
        break;
      }
      out[produced++] = entry;
      if (produced >= count) {
        break;
      }
    }
    if (!have_next) {
      break;
    }
    cursor = next_sep;
  }
  return produced;
}

kvindex::MemoryFootprint LeafTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  // Handles (8 B packed equivalent: lock + pointer) + the inner index.
  footprint.dram_bytes = inner_.MemoryBytes() + handles_.size() * 16;
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

}  // namespace cclbt::baselines
