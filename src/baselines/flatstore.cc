#include "src/baselines/flatstore.h"

#include <cassert>

namespace cclbt::baselines {

FlatStore::FlatStore(kvindex::Runtime& runtime) : rt_(runtime), logs_(130) {
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  arena_ = pmem::LogArena::Create(rt_.pool(), /*max_chunks=*/1 << 16);
}

FlatStore::~FlatStore() = default;

const FlatStore::Record* FlatStore::Append(uint64_t key, uint64_t value, bool tombstone) {
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  assert(ctx != nullptr);
  auto& log = logs_[static_cast<size_t>(ctx->worker_id())];
  if (log.chunk == nullptr || log.cursor + sizeof(Record) > pmem::kLogChunkBytes) {
    sync::LockGuard<sync::Mutex> guard(logs_mu_);
    log.chunk = static_cast<std::byte*>(arena_->AllocChunk(ctx->socket()));
    assert(log.chunk != nullptr && "PM exhausted");
    log.cursor = 64;  // skip a header-sized stride like the WAL layout
  }
  auto* record = reinterpret_cast<Record*>(log.chunk + log.cursor);
  record->key = key;
  record->value = value;
  record->meta = kRecordValid | (tombstone ? 1 : 0);
  // Sequential append: consecutive records share XPLines, so the XPBuffer
  // write-combines them (FlatStore's core property).
  pmsim::Persist(record, sizeof(Record));
  log.cursor += sizeof(Record);
  return record;
}

void FlatStore::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  const Record* record = Append(key, value, /*tombstone=*/false);
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  index_[key] = record;
  pmsim::AdvanceCpu(16 * rt_.device().config().cost.dram_access_ns);
}

bool FlatStore::Lookup(uint64_t key, uint64_t* value_out) {
  const Record* record = nullptr;
  {
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    auto it = index_.find(key);
    pmsim::AdvanceCpu(16 * rt_.device().config().cost.dram_access_ns);
    if (it == index_.end()) {
      return false;
    }
    record = it->second;
  }
  pmsim::ReadPm(record, sizeof(Record));  // one random log read
  if (record->meta & 1) {
    return false;
  }
  *value_out = record->value;
  return true;
}

bool FlatStore::Remove(uint64_t key) {
  // The tombstone record makes the delete durable; the volatile index entry
  // is simply dropped (it is rebuilt from the log on recovery anyway).
  Append(key, 0, /*tombstone=*/true);
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  return index_.erase(key) > 0;
}

size_t FlatStore::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  // Collect the record pointers in key order, then chase them: each hop is a
  // random PM read because insertion order, not key order, dictates log
  // placement — FlatStore's scan penalty.
  std::vector<const Record*> records;
  records.reserve(count);
  {
    sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
    for (auto it = index_.lower_bound(start_key); it != index_.end() && records.size() < count;
         ++it) {
      records.push_back(it->second);
      pmsim::AdvanceCpu(6 * rt_.device().config().cost.dram_access_ns);
    }
  }
  size_t produced = 0;
  for (const Record* record : records) {
    pmsim::ReadPm(record, sizeof(Record));
    if ((record->meta & 1) == 0) {
      out[produced++] = {record->key, record->value};
    }
  }
  return produced;
}

kvindex::MemoryFootprint FlatStore::Footprint() const {
  kvindex::MemoryFootprint footprint;
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  footprint.dram_bytes = index_.size() * 64;  // map node + pointer payload
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

}  // namespace cclbt::baselines
