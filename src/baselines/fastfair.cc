#include "src/baselines/fastfair.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::baselines {

namespace {
constexpr int kEntries = 15;
constexpr size_t kNodeBytes = 256;

uint32_t LineOfEntry(int index) {
  // 16 B header, then 16 B entries: entry i spans bytes [16+16i, 32+16i).
  return static_cast<uint32_t>((16 + 16 * index) / 64);
}

// Bytes actually carrying state in a node with `count` entries: header plus
// the packed entry prefix. Entries past count are never read (descent,
// lookup, scan and recovery all bound themselves by count), so persisting a
// whole fresh node flushed up to three all-zero tail lines per split
// (pmcheck: redundant flush).
size_t UsedBytes(uint32_t count) { return 16 + 16 * static_cast<size_t>(count); }
}  // namespace

// Sorted PM node. level 0 = leaf (value = payload); level > 0 = inner
// (value = child offset; child covers keys >= key, entry 0's key is the
// subtree low bound with a leading -inf child in `first_child`).
struct FastFairTree::Node {
  uint64_t next_offset;  // right sibling at the same level (0 = none)
  uint32_t count;
  uint16_t level;
  uint16_t padding;
  struct Entry {
    uint64_t key;
    uint64_t value;
  } entries[kEntries];

  uint64_t first_child() const { return entries[0].value; }
};
FastFairTree::FastFairTree(kvindex::Runtime& runtime, kvindex::Lifecycle lifecycle)
    : rt_(runtime), lifecycle_(lifecycle) {
  static_assert(sizeof(Node) == kNodeBytes);
  if (lifecycle_ == kvindex::Lifecycle::kAttach) {
    return;  // binding to the persistent image is deferred to Recover()
  }
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kNodeBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;  // the whole tree is "index data"
  node_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  root_ = NewNode(/*level=*/0);
  {
    // Formatting persist of the empty root: content-identical to a fresh
    // pool's zeroes, but a reused pool needs the zeroed header durable.
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(root_, UsedBytes(0));
  }
  // The initial node is the leftmost leaf for the tree's whole lifetime, so
  // its offset can serve as the persistent recovery chain head.
  rt_.pool().SetAppRoot(kHeadLeafSlot, OffsetOf(root_));
  rt_.pool().SetAppRoot(kSlabRegistrySlot, node_slab_->registry_offset());
}

FastFairTree::~FastFairTree() = default;

bool FastFairTree::Recover(kvindex::Runtime& runtime, int /*recovery_threads*/) {
  assert(&runtime == &rt_ && "Recover must use the runtime the tree was constructed with");
  (void)runtime;
  if (lifecycle_ != kvindex::Lifecycle::kAttach || recovered_) {
    return false;
  }
  uint64_t head_offset = rt_.pool().GetAppRoot(kHeadLeafSlot);
  uint64_t registry_offset = rt_.pool().GetAppRoot(kSlabRegistrySlot);
  if (head_offset == 0 || registry_offset == 0) {
    return false;  // no FAST&FAIR tree was ever created in this pool
  }

  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  uint64_t boot_start = boot_ctx.now_ns();
  trace::TraceScope scope(trace::Component::kInner);

  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kNodeBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;
  node_slab_ = pmem::SlabAllocator::Open(rt_.pool(), registry_offset, slab_options);

  // 1. Walk the persistent leaf chain: the leaves hold the entire dataset,
  // and every completed operation fenced its leaf before returning. Leaves
  // emptied by lazy deletion are unlinked (except the fixed head) so the
  // rebuilt inner levels never route a key into them.
  Node* head = NodeAt(head_offset);
  pmsim::ReadPm(head, kNodeBytes);
  std::vector<Node*> leaves{head};
  std::unordered_set<const void*> live{head};
  Node* prev = head;
  Node* cur = head->next_offset == 0 ? nullptr : NodeAt(head->next_offset);
  while (cur != nullptr) {
    pmsim::ReadPm(cur, kNodeBytes);
    Node* next = cur->next_offset == 0 ? nullptr : NodeAt(cur->next_offset);
    if (cur->count == 0) {
      prev->next_offset = cur->next_offset;
      pmsim::FlushLine(prev);
      pmsim::Fence();
    } else {
      leaves.push_back(cur);
      live.insert(cur);
      prev = cur;
    }
    cur = next;
  }

  // 2. Reclaim every slot not on the chain: the pre-crash inner nodes
  // (rebuilt below), split siblings that persisted but were never linked,
  // and the empty leaves just unlinked.
  node_slab_->Recover([&live](const void* slot) { return live.count(slot) != 0; });
  node_count_ = leaves.size();

  // 3. Rebuild the inner levels bottom-up. Inner nodes are pure routing
  // state derivable from the leaf chain; rebuilding them also repairs the
  // mid-split states FAIR tolerates online (a right sibling already linked
  // into its level whose separator never reached the parent).
  std::vector<Node*> level = leaves;
  while (level.size() > 1) {
    std::vector<Node*> parents;
    for (size_t i = 0; i < level.size(); i += kEntries) {
      Node* parent = NewNode(level[i]->level + 1u);
      auto take = static_cast<uint32_t>(std::min<size_t>(kEntries, level.size() - i));
      parent->count = take;
      for (uint32_t j = 0; j < take; j++) {
        Node* child = level[i + j];
        // entries[0].key of any node is its subtree's low bound: never
        // compared during descent within the node itself, but it serves as
        // the separator one level up.
        parent->entries[j] = {child->entries[0].key, OffsetOf(child)};
      }
      if (!parents.empty()) {
        parents.back()->next_offset = OffsetOf(parent);
      }
      parents.push_back(parent);
    }
    for (Node* parent : parents) {
      pmsim::Persist(parent, UsedBytes(parent->count));
    }
    level = std::move(parents);
  }
  root_ = level[0];
  last_recovery_modeled_ns_ = boot_ctx.now_ns() - boot_start;
  recovered_ = true;
  return true;
}

FastFairTree::Node* FastFairTree::NewNode(uint32_t level) {
  // The paper's setup pre-allocates from the local socket for all indexes;
  // FAST&FAIR itself is NUMA-oblivious, so everything sits on socket 0.
  auto* node = static_cast<Node*>(node_slab_->Allocate(0));
  assert(node != nullptr && "PM exhausted");
  std::memset(static_cast<void*>(node), 0, kNodeBytes);
  node->level = static_cast<uint16_t>(level);
  node_count_++;
  return node;
}

FastFairTree::Node* FastFairTree::NodeAt(uint64_t offset) const {
  return static_cast<Node*>(rt_.pool().ToAddr(offset));
}

uint64_t FastFairTree::OffsetOf(const Node* node) const { return rt_.pool().ToOffset(node); }

FastFairTree::Node* FastFairTree::DescendToLeaf(uint64_t key, Node** path, int* path_len) const {
  Node* node = root_;
  int depth = 0;
  while (node->level > 0) {
    // Inner nodes are PM-resident, but the upper levels are hot enough to
    // stay in the CPU cache; only the last inner level (as numerous as the
    // leaves) realistically misses to PM.
    if (node->level == 1) {
      pmsim::ReadPm(node, kNodeBytes);
    }
    if (path != nullptr) {
      path[depth] = node;
    }
    depth++;
    // entries[0].key is a low sentinel: children partition by entry keys.
    int slot = static_cast<int>(node->count) - 1;
    while (slot > 0 && key < node->entries[slot].key) {
      slot--;
    }
    node = NodeAt(node->entries[slot].value);
  }
  if (path_len != nullptr) {
    *path_len = depth;
  }
  pmsim::ReadPm(node, kNodeBytes);
  return node;
}

void FastFairTree::InsertIntoNode(Node* node, uint64_t key, uint64_t payload, Node** path,
                                  int path_len) {
  // FAST+FAIR writes PM at every level; leaf vs inner attribution follows the
  // node being modified.
  trace::TraceScope scope(node->level == 0 ? trace::Component::kLeaf
                                           : trace::Component::kInner);
  // Position among sorted entries.
  int pos = 0;
  while (pos < static_cast<int>(node->count) && node->entries[pos].key < key) {
    pos++;
  }
  if (node->level == 0 && pos < static_cast<int>(node->count) && node->entries[pos].key == key) {
    node->entries[pos].value = payload;  // in-place update
    pmsim::FlushLine(reinterpret_cast<const std::byte*>(node) + LineOfEntry(pos) * 64);
    pmsim::Fence();
    return;
  }
  if (node->count < kEntries) {
    // FAST: shift right one by one, flushing each crossed cacheline; a single
    // fence at the end (transient states are read-tolerable by design).
    uint32_t dirty_lines = 1u << LineOfEntry(pos);
    for (int i = static_cast<int>(node->count); i > pos; i--) {
      node->entries[i] = node->entries[i - 1];
      dirty_lines |= 1u << LineOfEntry(i);
    }
    node->entries[pos] = {key, payload};
    node->count++;
    dirty_lines |= 1u;  // header line (count)
    for (uint32_t line = 0; line < 4; line++) {
      if ((dirty_lines >> line) & 1) {
        pmsim::FlushLine(reinterpret_cast<const std::byte*>(node) + line * 64);
      }
    }
    pmsim::Fence();
    return;
  }

  // Split (FAIR): move the upper half to a new sibling, persist it, then
  // shrink this node and link the sibling.
  Node* right = NewNode(node->level);
  int mid = kEntries / 2;
  right->count = static_cast<uint32_t>(kEntries - mid);
  std::memcpy(right->entries, node->entries + mid, sizeof(Node::Entry) * right->count);
  right->next_offset = node->next_offset;
  pmsim::Persist(right, UsedBytes(right->count));
  uint64_t split_key = right->entries[0].key;

  node->count = static_cast<uint32_t>(mid);
  node->next_offset = OffsetOf(right);
  pmsim::FlushLine(node);  // header line carries count + next
  pmsim::Fence();

  // Insert the pending entry into the proper half.
  Node* target = key < split_key ? node : right;
  InsertIntoNode(target, key, payload, nullptr, 0);

  // Propagate the separator to the parent.
  if (node == root_) {
    Node* new_root = NewNode(node->level + 1);
    new_root->count = 2;
    new_root->entries[0] = {0, OffsetOf(node)};
    new_root->entries[1] = {split_key, OffsetOf(right)};
    pmsim::Persist(new_root, UsedBytes(new_root->count));
    root_ = new_root;
    return;
  }
  assert(path_len > 0 && "non-root node must have a parent on the path");
  InsertIntoNode(path[path_len - 1], split_key, OffsetOf(right), path, path_len - 1);
}

void FastFairTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  Node* path[24];
  int path_len = 0;
  Node* leaf = DescendToLeaf(key, path, &path_len);
  InsertIntoNode(leaf, key, value, path, path_len);
}

bool FastFairTree::Lookup(uint64_t key, uint64_t* value_out) {
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  Node* leaf = DescendToLeaf(key, nullptr, nullptr);
  // Binary search within the sorted leaf.
  const auto* begin = leaf->entries;
  const auto* end = leaf->entries + leaf->count;
  const auto* it = std::lower_bound(begin, end, key,
                                    [](const Node::Entry& e, uint64_t k) { return e.key < k; });
  if (it == end || it->key != key) {
    return false;
  }
  *value_out = it->value;
  return true;
}

bool FastFairTree::Remove(uint64_t key) {
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  Node* leaf = DescendToLeaf(key, nullptr, nullptr);
  int pos = 0;
  while (pos < static_cast<int>(leaf->count) && leaf->entries[pos].key < key) {
    pos++;
  }
  if (pos >= static_cast<int>(leaf->count) || leaf->entries[pos].key != key) {
    return false;
  }
  // Lazy deletion: shift left, no merging (as in the original).
  uint32_t dirty_lines = 1u;  // header (count)
  for (int i = pos; i + 1 < static_cast<int>(leaf->count); i++) {
    leaf->entries[i] = leaf->entries[i + 1];
    dirty_lines |= 1u << LineOfEntry(i);
  }
  leaf->count--;
  for (uint32_t line = 0; line < 4; line++) {
    if ((dirty_lines >> line) & 1) {
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + line * 64);
    }
  }
  pmsim::Fence();
  return true;
}

size_t FastFairTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  Node* leaf = DescendToLeaf(start_key, nullptr, nullptr);
  size_t produced = 0;
  while (leaf != nullptr && produced < count) {
    pmsim::ReadPm(leaf, kNodeBytes);
    for (int i = 0; i < static_cast<int>(leaf->count) && produced < count; i++) {
      if (leaf->entries[i].key >= start_key) {
        out[produced++] = {leaf->entries[i].key, leaf->entries[i].value};
      }
    }
    leaf = leaf->next_offset == 0 ? nullptr : NodeAt(leaf->next_offset);
  }
  return produced;
}

kvindex::MemoryFootprint FastFairTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  footprint.dram_bytes = 0;  // pure PM index
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

}  // namespace cclbt::baselines
