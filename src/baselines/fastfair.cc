#include "src/baselines/fastfair.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/trace/trace.h"

namespace cclbt::baselines {

namespace {
constexpr int kEntries = 15;
constexpr size_t kNodeBytes = 256;

uint32_t LineOfEntry(int index) {
  // 16 B header, then 16 B entries: entry i spans bytes [16+16i, 32+16i).
  return static_cast<uint32_t>((16 + 16 * index) / 64);
}
}  // namespace

// Sorted PM node. level 0 = leaf (value = payload); level > 0 = inner
// (value = child offset; child covers keys >= key, entry 0's key is the
// subtree low bound with a leading -inf child in `first_child`).
struct FastFairTree::Node {
  uint64_t next_offset;  // right sibling at the same level (0 = none)
  uint32_t count;
  uint16_t level;
  uint16_t padding;
  struct Entry {
    uint64_t key;
    uint64_t value;
  } entries[kEntries];

  uint64_t first_child() const { return entries[0].value; }
};
FastFairTree::FastFairTree(kvindex::Runtime& runtime) : rt_(runtime) {
  static_assert(sizeof(Node) == kNodeBytes);
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kNodeBytes;
  slab_options.tag = pmsim::StreamTag::kLeaf;  // the whole tree is "index data"
  node_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  root_ = NewNode(/*level=*/0);
  pmsim::Persist(root_, kNodeBytes);
}

FastFairTree::~FastFairTree() = default;

FastFairTree::Node* FastFairTree::NewNode(uint32_t level) {
  // The paper's setup pre-allocates from the local socket for all indexes;
  // FAST&FAIR itself is NUMA-oblivious, so everything sits on socket 0.
  auto* node = static_cast<Node*>(node_slab_->Allocate(0));
  assert(node != nullptr && "PM exhausted");
  std::memset(static_cast<void*>(node), 0, kNodeBytes);
  node->level = static_cast<uint16_t>(level);
  node_count_++;
  return node;
}

FastFairTree::Node* FastFairTree::NodeAt(uint64_t offset) const {
  return static_cast<Node*>(rt_.pool().ToAddr(offset));
}

uint64_t FastFairTree::OffsetOf(const Node* node) const { return rt_.pool().ToOffset(node); }

FastFairTree::Node* FastFairTree::DescendToLeaf(uint64_t key, Node** path, int* path_len) const {
  Node* node = root_;
  int depth = 0;
  while (node->level > 0) {
    // Inner nodes are PM-resident, but the upper levels are hot enough to
    // stay in the CPU cache; only the last inner level (as numerous as the
    // leaves) realistically misses to PM.
    if (node->level == 1) {
      pmsim::ReadPm(node, kNodeBytes);
    }
    if (path != nullptr) {
      path[depth] = node;
    }
    depth++;
    // entries[0].key is a low sentinel: children partition by entry keys.
    int slot = static_cast<int>(node->count) - 1;
    while (slot > 0 && key < node->entries[slot].key) {
      slot--;
    }
    node = NodeAt(node->entries[slot].value);
  }
  if (path_len != nullptr) {
    *path_len = depth;
  }
  pmsim::ReadPm(node, kNodeBytes);
  return node;
}

void FastFairTree::InsertIntoNode(Node* node, uint64_t key, uint64_t payload, Node** path,
                                  int path_len) {
  // FAST+FAIR writes PM at every level; leaf vs inner attribution follows the
  // node being modified.
  trace::TraceScope scope(node->level == 0 ? trace::Component::kLeaf
                                           : trace::Component::kInner);
  // Position among sorted entries.
  int pos = 0;
  while (pos < static_cast<int>(node->count) && node->entries[pos].key < key) {
    pos++;
  }
  if (node->level == 0 && pos < static_cast<int>(node->count) && node->entries[pos].key == key) {
    node->entries[pos].value = payload;  // in-place update
    pmsim::FlushLine(reinterpret_cast<const std::byte*>(node) + LineOfEntry(pos) * 64);
    pmsim::Fence();
    return;
  }
  if (node->count < kEntries) {
    // FAST: shift right one by one, flushing each crossed cacheline; a single
    // fence at the end (transient states are read-tolerable by design).
    uint32_t dirty_lines = 1u << LineOfEntry(pos);
    for (int i = static_cast<int>(node->count); i > pos; i--) {
      node->entries[i] = node->entries[i - 1];
      dirty_lines |= 1u << LineOfEntry(i);
    }
    node->entries[pos] = {key, payload};
    node->count++;
    dirty_lines |= 1u;  // header line (count)
    for (uint32_t line = 0; line < 4; line++) {
      if ((dirty_lines >> line) & 1) {
        pmsim::FlushLine(reinterpret_cast<const std::byte*>(node) + line * 64);
      }
    }
    pmsim::Fence();
    return;
  }

  // Split (FAIR): move the upper half to a new sibling, persist it, then
  // shrink this node and link the sibling.
  Node* right = NewNode(node->level);
  int mid = kEntries / 2;
  right->count = static_cast<uint32_t>(kEntries - mid);
  std::memcpy(right->entries, node->entries + mid, sizeof(Node::Entry) * right->count);
  right->next_offset = node->next_offset;
  pmsim::Persist(right, kNodeBytes);
  uint64_t split_key = right->entries[0].key;

  node->count = static_cast<uint32_t>(mid);
  node->next_offset = OffsetOf(right);
  pmsim::FlushLine(node);  // header line carries count + next
  pmsim::Fence();

  // Insert the pending entry into the proper half.
  Node* target = key < split_key ? node : right;
  InsertIntoNode(target, key, payload, nullptr, 0);

  // Propagate the separator to the parent.
  if (node == root_) {
    Node* new_root = NewNode(node->level + 1);
    new_root->count = 2;
    new_root->entries[0] = {0, OffsetOf(node)};
    new_root->entries[1] = {split_key, OffsetOf(right)};
    pmsim::Persist(new_root, kNodeBytes);
    root_ = new_root;
    return;
  }
  assert(path_len > 0 && "non-root node must have a parent on the path");
  InsertIntoNode(path[path_len - 1], split_key, OffsetOf(right), path, path_len - 1);
}

void FastFairTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  std::unique_lock<std::shared_mutex> guard(mu_);
  Node* path[24];
  int path_len = 0;
  Node* leaf = DescendToLeaf(key, path, &path_len);
  InsertIntoNode(leaf, key, value, path, path_len);
}

bool FastFairTree::Lookup(uint64_t key, uint64_t* value_out) {
  std::shared_lock<std::shared_mutex> guard(mu_);
  Node* leaf = DescendToLeaf(key, nullptr, nullptr);
  // Binary search within the sorted leaf.
  const auto* begin = leaf->entries;
  const auto* end = leaf->entries + leaf->count;
  const auto* it = std::lower_bound(begin, end, key,
                                    [](const Node::Entry& e, uint64_t k) { return e.key < k; });
  if (it == end || it->key != key) {
    return false;
  }
  *value_out = it->value;
  return true;
}

bool FastFairTree::Remove(uint64_t key) {
  std::unique_lock<std::shared_mutex> guard(mu_);
  Node* leaf = DescendToLeaf(key, nullptr, nullptr);
  int pos = 0;
  while (pos < static_cast<int>(leaf->count) && leaf->entries[pos].key < key) {
    pos++;
  }
  if (pos >= static_cast<int>(leaf->count) || leaf->entries[pos].key != key) {
    return false;
  }
  // Lazy deletion: shift left, no merging (as in the original).
  uint32_t dirty_lines = 1u;  // header (count)
  for (int i = pos; i + 1 < static_cast<int>(leaf->count); i++) {
    leaf->entries[i] = leaf->entries[i + 1];
    dirty_lines |= 1u << LineOfEntry(i);
  }
  leaf->count--;
  for (uint32_t line = 0; line < 4; line++) {
    if ((dirty_lines >> line) & 1) {
      pmsim::FlushLine(reinterpret_cast<const std::byte*>(leaf) + line * 64);
    }
  }
  pmsim::Fence();
  return true;
}

size_t FastFairTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  std::shared_lock<std::shared_mutex> guard(mu_);
  Node* leaf = DescendToLeaf(start_key, nullptr, nullptr);
  size_t produced = 0;
  while (leaf != nullptr && produced < count) {
    pmsim::ReadPm(leaf, kNodeBytes);
    for (int i = 0; i < static_cast<int>(leaf->count) && produced < count; i++) {
      if (leaf->entries[i].key >= start_key) {
        out[produced++] = {leaf->entries[i].key, leaf->entries[i].value};
      }
    }
    leaf = leaf->next_offset == 0 ? nullptr : NodeAt(leaf->next_offset);
  }
  return produced;
}

kvindex::MemoryFootprint FastFairTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  footprint.dram_bytes = 0;  // pure PM index
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

}  // namespace cclbt::baselines
