#include "src/baselines/lsmstore.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cclbt::baselines {

namespace {
constexpr uint64_t kTombstone = 0;
}

LsmStore::LsmStore(kvindex::Runtime& runtime, const Options& options)
    : rt_(runtime), options_(options) {
  levels_.resize(static_cast<size_t>(options_.max_levels));
}

LsmStore::~LsmStore() = default;

LsmStore::Run LsmStore::WriteRun(const std::vector<kvindex::KeyValue>& entries) {
  size_t bytes = entries.size() * sizeof(kvindex::KeyValue);
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  auto* mem = static_cast<kvindex::KeyValue*>(
      rt_.pool().AllocateRaw(bytes, ctx->socket(), pmsim::StreamTag::kLog));
  assert(mem != nullptr && "PM exhausted");
  std::memcpy(mem, entries.data(), bytes);
  pmsim::Persist(mem, bytes);  // big sequential write: combines well, but lots of it
  pm_run_bytes_ += bytes;
  return Run{mem, entries.size(), entries.front().key, entries.back().key};
}

void LsmStore::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  // WAL append (sequential), then memtable insert.
  if (wal_remaining_ < 24) {
    wal_cursor_ = static_cast<std::byte*>(
        rt_.pool().AllocateRaw(1 << 20, ctx->socket(), pmsim::StreamTag::kLog));
    assert(wal_cursor_ != nullptr && "PM exhausted");
    wal_remaining_ = 1 << 20;
  }
  auto* record = reinterpret_cast<uint64_t*>(wal_cursor_);
  record[0] = key;
  record[1] = value;
  record[2] = 1;
  pmsim::Persist(record, 24);
  wal_cursor_ += 24;
  wal_remaining_ -= 24;

  memtable_[key] = value;
  pmsim::AdvanceCpu(16 * rt_.device().config().cost.dram_access_ns);
  if (memtable_.size() >= options_.memtable_entries) {
    FlushMemtableLocked();
    MaybeCompactLocked();
  }
}

void LsmStore::FlushMemtableLocked() {
  if (memtable_.empty()) {
    return;
  }
  std::vector<kvindex::KeyValue> entries;
  entries.reserve(memtable_.size());
  for (const auto& [key, value] : memtable_) {
    entries.push_back({key, value});
  }
  levels_[0].push_back(WriteRun(entries));
  memtable_.clear();
}

void LsmStore::MaybeCompactLocked() {
  for (int level = 0; level + 1 < options_.max_levels; level++) {
    size_t trigger = level == 0 ? static_cast<size_t>(options_.l0_runs_trigger)
                                : 1;  // deeper levels hold a single run
    if (level == 0 ? levels_[0].size() >= trigger : levels_[static_cast<size_t>(level)].size() > trigger) {
      CompactLocked(level);
    }
  }
}

void LsmStore::CompactLocked(int level) {
  auto& upper = levels_[static_cast<size_t>(level)];
  auto& lower = levels_[static_cast<size_t>(level) + 1];
  // Read every input run (sequential PM reads), sort-merge newest-first so
  // the freshest version of each key wins, and rewrite as one run below.
  std::map<uint64_t, uint64_t> merged;
  // Lower level first (oldest data): overwritten by upper-level versions.
  for (const Run& run : lower) {
    pmsim::ReadPm(run.entries, run.count * sizeof(kvindex::KeyValue));
    for (size_t i = 0; i < run.count; i++) {
      merged[run.entries[i].key] = run.entries[i].value;
    }
  }
  // Upper runs oldest-to-newest (push order): later runs overwrite.
  for (const Run& run : upper) {
    pmsim::ReadPm(run.entries, run.count * sizeof(kvindex::KeyValue));
    for (size_t i = 0; i < run.count; i++) {
      merged[run.entries[i].key] = run.entries[i].value;
    }
  }
  bool is_last = level + 2 >= options_.max_levels;
  std::vector<kvindex::KeyValue> entries;
  entries.reserve(merged.size());
  for (const auto& [key, value] : merged) {
    if (is_last && value == kTombstone) {
      continue;  // tombstones die at the bottom level
    }
    entries.push_back({key, value});
  }
  upper.clear();
  lower.clear();
  if (!entries.empty()) {
    lower.push_back(WriteRun(entries));
  }
  pmsim::AdvanceCpu(entries.size() * 8 * rt_.device().config().cost.dram_access_ns);
  compactions_++;
}

bool LsmStore::Lookup(uint64_t key, uint64_t* value_out) {
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  pmsim::AdvanceCpu(16 * rt_.device().config().cost.dram_access_ns);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second == kTombstone) {
      return false;
    }
    *value_out = it->second;
    return true;
  }
  // Probe levels newest to oldest; within L0, newest run first.
  for (size_t level = 0; level < levels_.size(); level++) {
    const auto& runs = levels_[level];
    for (auto run_it = runs.rbegin(); run_it != runs.rend(); ++run_it) {
      const Run& run = *run_it;
      if (key < run.min_key || key > run.max_key) {
        continue;
      }
      // Binary search: ~log2(n) probes touching distinct XPLines; charge a
      // few block reads like a real SST (index block + data block).
      pmsim::ReadPm(run.entries, 256);
      const kvindex::KeyValue* begin = run.entries;
      const kvindex::KeyValue* end = run.entries + run.count;
      const kvindex::KeyValue* found =
          std::lower_bound(begin, end, key,
                           [](const kvindex::KeyValue& e, uint64_t k) { return e.key < k; });
      pmsim::ReadPm(found == end ? begin : found, sizeof(kvindex::KeyValue));
      if (found != end && found->key == key) {
        if (found->value == kTombstone) {
          return false;
        }
        *value_out = found->value;
        return true;
      }
    }
  }
  return false;
}

bool LsmStore::Remove(uint64_t key) {
  Upsert(key, kTombstone);
  return true;
}

size_t LsmStore::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  // Merge the memtable and every run: collect candidates per source, then
  // pick newest version per key — the multi-source seek+merge that makes LSM
  // scans slow.
  std::map<uint64_t, uint64_t> merged;  // key -> newest value (insertion order: oldest first)
  for (size_t level = levels_.size(); level-- > 0;) {
    for (const Run& run : levels_[level]) {
      const kvindex::KeyValue* begin = run.entries;
      const kvindex::KeyValue* end = run.entries + run.count;
      const kvindex::KeyValue* it =
          std::lower_bound(begin, end, start_key,
                           [](const kvindex::KeyValue& e, uint64_t k) { return e.key < k; });
      size_t taken = 0;
      while (it != end && taken < count + 16) {
        pmsim::ReadPm(it, sizeof(kvindex::KeyValue));
        merged[it->key] = it->value;
        ++it;
        taken++;
      }
    }
  }
  for (auto it = memtable_.lower_bound(start_key);
       it != memtable_.end() && merged.size() < 16 * count; ++it) {
    merged[it->first] = it->second;
  }
  size_t produced = 0;
  for (const auto& [key, value] : merged) {
    if (key < start_key || value == kTombstone) {
      continue;
    }
    out[produced++] = {key, value};
    if (produced >= count) {
      break;
    }
  }
  pmsim::AdvanceCpu(merged.size() * 8 * rt_.device().config().cost.dram_access_ns);
  return produced;
}

kvindex::MemoryFootprint LsmStore::Footprint() const {
  kvindex::MemoryFootprint footprint;
  sync::SharedLockGuard<sync::SharedMutex> guard(mu_);
  footprint.dram_bytes = memtable_.size() * 64;
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  return footprint;
}

void LsmStore::FlushAll() {
  sync::LockGuard<sync::SharedMutex> guard(mu_);
  FlushMemtableLocked();
  MaybeCompactLocked();
}

}  // namespace cclbt::baselines
