#include "src/baselines/dptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/pmsim/pmcheck.h"
#include "src/trace/trace.h"

namespace cclbt::baselines {

namespace {
constexpr uint64_t kDeleteMarker = 0;  // buffered tombstone
}

DpTree::DpTree(kvindex::Runtime& runtime, const Options& options)
    : rt_(runtime), options_(options) {
  pmsim::ThreadContext boot_ctx(rt_.device(), 0, 0);
  log_arena_ = pmem::LogArena::Create(rt_.pool());
  wals_ = std::make_unique<core::WalSet>(*log_arena_, 130);
  pmem::SlabAllocator::Options slab_options;
  slab_options.slot_bytes = kBigLeafBytes;
  slab_options.slots_per_chunk = 64;  // 256 KB chunks
  slab_options.tag = pmsim::StreamTag::kLeaf;
  leaf_slab_ = pmem::SlabAllocator::Create(rt_.pool(), slab_options);
  auto* head = static_cast<BigLeaf*>(leaf_slab_->Allocate(0));
  assert(head != nullptr);
  head->count = 0;
  {
    // Formatting persist of the empty head leaf (see LeafTree's constructor).
    pmsim::PmCheckExpect format_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(head, 64);
  }
  base_index_.Insert(0, head);
}

DpTree::~DpTree() = default;

void DpTree::Upsert(uint64_t key, uint64_t value) {
  assert(key != 0);
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  bool need_merge = false;
  {
    sync::SharedLockGuard<sync::SharedMutex> gate(mu_);
    // Crash consistency: log first (sequential per-thread PM append), then
    // buffer in DRAM.
    uint64_t ts = rt_.ordo().Now(ctx->socket());
    bool logged = wals_->Append(ctx->worker_id(), /*epoch=*/0, key, value, ts);
    assert(logged && "log arena exhausted");
    (void)logged;
    {
      sync::LockGuard<sync::SharedMutex> guard(buffer_mu_);
      buffer_[key] = value;
      need_merge =
          buffer_.size() >= options_.min_buffer_entries &&
          buffer_.size() * 100 >
              base_entries_.load(std::memory_order_relaxed) *
                  static_cast<uint64_t>(options_.merge_threshold_pct);
    }
  }
  if (need_merge) {
    sync::LockGuard<sync::SharedMutex> gate(mu_);
    bool still_needed;
    {
      sync::SharedLockGuard<sync::SharedMutex> guard(buffer_mu_);
      still_needed =
          buffer_.size() >= options_.min_buffer_entries &&
          buffer_.size() * 100 >
              base_entries_.load(std::memory_order_relaxed) *
                  static_cast<uint64_t>(options_.merge_threshold_pct);
    }
    if (still_needed) {
      MergeLocked();
    }
  }
}

void DpTree::RewriteLeaf(uint64_t sep, BigLeaf* leaf,
                         const std::vector<kvindex::KeyValue>& changes) {
  // Copy-on-write: read the old leaf, apply the sorted changes, write a
  // fresh 4 KB leaf (or two on overflow) sequentially, swap the index entry.
  pmsim::ReadPm(leaf, kBigLeafBytes);
  std::vector<kvindex::KeyValue> merged;
  merged.reserve(leaf->count + changes.size());
  size_t li = 0;
  size_t ci = 0;
  while (li < leaf->count || ci < changes.size()) {
    bool take_change;
    if (ci >= changes.size()) {
      take_change = false;
    } else if (li >= leaf->count) {
      take_change = true;
    } else if (changes[ci].key == leaf->kvs[li].key) {
      li++;  // change shadows old version
      take_change = true;
    } else {
      take_change = changes[ci].key < leaf->kvs[li].key;
    }
    if (take_change) {
      if (changes[ci].value != kDeleteMarker) {
        merged.push_back(changes[ci]);
      }
      ci++;
    } else {
      merged.push_back(leaf->kvs[li++]);
    }
  }

  // Write out as one fresh leaf, splitting into further pieces on overflow.
  pmsim::ThreadContext* ctx = pmsim::ThreadContext::Current();
  size_t written = 0;
  bool first_piece = true;
  do {
    size_t n = std::min(kBigLeafCap, merged.size() - written);
    auto* fresh = static_cast<BigLeaf*>(leaf_slab_->Allocate(ctx->socket()));
    assert(fresh != nullptr && "PM exhausted");
    fresh->count = n;
    std::memcpy(fresh->kvs, merged.data() + written, n * sizeof(kvindex::KeyValue));
    // Copy-on-write rewrite: a recycled slab slot may already hold much of
    // the merged content durably (same leaf rewritten across merges), which
    // pmcheck sees as clean-line flushes. The whole-leaf persist is the COW
    // design — the writer cannot cheaply diff against media.
    pmsim::PmCheckExpect cow_expect(pmsim::PmCheckClass::kRedundantFlush);
    pmsim::Persist(fresh, 64 + n * sizeof(kvindex::KeyValue));
    uint64_t piece_sep = first_piece ? sep : fresh->kvs[0].key;
    base_index_.Insert(piece_sep, fresh);
    first_piece = false;
    written += n;
  } while (written < merged.size());
  leaf_slab_->Free(leaf);
}

void DpTree::MergeLocked() {
  trace::TraceScope scope(trace::Component::kLeaf);
  // Foreground threads are stalled (mu_ held exclusive): DPTree's merge
  // pause. Changes are applied leaf-by-leaf in key order with COW rewrites.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  {
    sync::LockGuard<sync::SharedMutex> guard(buffer_mu_);
    entries.assign(buffer_.begin(), buffer_.end());
    buffer_.clear();
  }
  size_t i = 0;
  while (i < entries.size()) {
    uint64_t key = entries[i].first;
    uint64_t sep = 0;
    BigLeaf* leaf = nullptr;
    bool found = base_index_.RouteFloorEntry(key, &sep, &leaf);
    assert(found);
    (void)found;
    // Upper bound of this leaf's range = next separator.
    uint64_t next_sep = 0;
    BigLeaf* next_leaf = nullptr;
    bool have_next = base_index_.NextEntry(key, &next_sep, &next_leaf);
    std::vector<kvindex::KeyValue> changes;
    while (i < entries.size() && (!have_next || entries[i].first < next_sep)) {
      changes.push_back({entries[i].first, entries[i].second});
      if (entries[i].second != kDeleteMarker) {
        base_entries_.fetch_add(1, std::memory_order_relaxed);
      }
      i++;
    }
    RewriteLeaf(sep, leaf, changes);
  }
  wals_->ReleaseEpoch(0);
  merges_.fetch_add(1, std::memory_order_relaxed);
}

bool DpTree::BaseLookup(uint64_t key, uint64_t* value_out) const {
  bool found = false;
  BigLeaf* leaf = base_index_.RouteFloor(key, &found);
  if (!found) {
    return false;
  }
  // Binary search in a 4 KB leaf: the probes touch ~log16(252) distinct
  // XPLines; charge the header plus the probe positions.
  pmsim::ReadPm(leaf, 64);
  const kvindex::KeyValue* begin = leaf->kvs;
  const kvindex::KeyValue* end = leaf->kvs + leaf->count;
  const kvindex::KeyValue* it = std::lower_bound(
      begin, end, key, [](const kvindex::KeyValue& e, uint64_t k) { return e.key < k; });
  if (it != end) {
    pmsim::ReadPm(it, sizeof(kvindex::KeyValue));
  }
  if (it == end || it->key != key) {
    return false;
  }
  *value_out = it->value;
  return true;
}

bool DpTree::Lookup(uint64_t key, uint64_t* value_out) {
  sync::SharedLockGuard<sync::SharedMutex> gate(mu_);
  {
    // The extra read cost DPTree pays: probing the big global buffer.
    sync::SharedLockGuard<sync::SharedMutex> guard(buffer_mu_);
    auto it = buffer_.find(key);
    pmsim::AdvanceCpu(24 * rt_.device().config().cost.dram_access_ns);
    if (it != buffer_.end()) {
      if (it->second == kDeleteMarker) {
        return false;
      }
      *value_out = it->second;
      return true;
    }
  }
  return BaseLookup(key, value_out);
}

bool DpTree::Remove(uint64_t key) {
  Upsert(key, kDeleteMarker);
  return true;
}

size_t DpTree::Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) {
  sync::SharedLockGuard<sync::SharedMutex> gate(mu_);
  // Base range: walk big leaves via the DRAM index.
  std::vector<kvindex::KeyValue> base_entries;
  base_entries.reserve(count + 64);
  uint64_t cursor = start_key;
  bool found = false;
  BigLeaf* leaf = base_index_.RouteFloor(cursor, &found);
  while (found && leaf != nullptr && base_entries.size() < count + 64) {
    pmsim::ReadPm(leaf, 64 + leaf->count * sizeof(kvindex::KeyValue));
    for (size_t i = 0; i < leaf->count && base_entries.size() < count + 64; i++) {
      if (leaf->kvs[i].key >= start_key) {
        base_entries.push_back(leaf->kvs[i]);
      }
    }
    uint64_t next_sep = 0;
    BigLeaf* next_leaf = nullptr;
    if (!base_index_.NextEntry(cursor, &next_sep, &next_leaf)) {
      break;
    }
    cursor = next_sep;
    leaf = next_leaf;
  }
  // Merge with the buffered range.
  sync::SharedLockGuard<sync::SharedMutex> guard(buffer_mu_);
  auto it = buffer_.lower_bound(start_key);
  size_t produced = 0;
  size_t bi = 0;
  while (produced < count && (bi < base_entries.size() || it != buffer_.end())) {
    bool take_buffer;
    if (it == buffer_.end()) {
      take_buffer = false;
    } else if (bi >= base_entries.size()) {
      take_buffer = true;
    } else if (it->first == base_entries[bi].key) {
      bi++;
      take_buffer = true;
    } else {
      take_buffer = it->first < base_entries[bi].key;
    }
    if (take_buffer) {
      if (it->second != kDeleteMarker) {
        out[produced++] = {it->first, it->second};
      }
      ++it;
    } else {
      out[produced++] = base_entries[bi++];
    }
    pmsim::AdvanceCpu(4 * rt_.device().config().cost.dram_access_ns);
  }
  return produced;
}

kvindex::MemoryFootprint DpTree::Footprint() const {
  kvindex::MemoryFootprint footprint;
  footprint.pm_bytes = rt_.pool().AllocatedBytes();
  footprint.dram_bytes = base_index_.MemoryBytes();
  sync::SharedLockGuard<sync::SharedMutex> guard(buffer_mu_);
  // std::map node overhead: ~48 B bookkeeping + 16 B payload per entry.
  footprint.dram_bytes += buffer_.size() * 64;
  return footprint;
}

void DpTree::FlushAll() {
  sync::LockGuard<sync::SharedMutex> gate(mu_);
  MergeLocked();
}

}  // namespace cclbt::baselines
