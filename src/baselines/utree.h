// µTree-style baseline (Chen et al., VLDB'20): a DRAM B+-tree indexes a PM
// linked list that stores ONE KV per list node, so structural refinement
// (splits/merges) never touches PM — only list-node allocation and pointer
// stitching do. Consequences the paper measures:
//   * low tail latency, but each insert writes two random PM lines (the new
//     node and the predecessor's next pointer) -> high XBI;
//   * scans chase one pointer per KV across random XPLines -> the worst
//     range-query throughput of all baselines (paper Fig. 5/10e);
//   * the per-KV DRAM index makes µTree's DRAM footprint ~equal to its PM
//     footprint (paper Fig. 18).
#ifndef SRC_BASELINES_UTREE_H_
#define SRC_BASELINES_UTREE_H_

#include <memory>
#include "src/common/lock.h"

#include "src/kvindex/dram_btree.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::baselines {

class UTree : public kvindex::KvIndex {
 public:
  explicit UTree(kvindex::Runtime& runtime);
  ~UTree() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "uTree"; }
  kvindex::MemoryFootprint Footprint() const override;

 private:
  struct ListNode;  // 64 B PM node: one KV + next pointer

  ListNode* NodeAt(uint64_t offset) const;

  kvindex::Runtime& rt_;
  std::unique_ptr<pmem::SlabAllocator> node_slab_;
  // Maps every key to its PM list node (per-KV DRAM indexing).
  kvindex::DramBTree<ListNode*> index_;
  ListNode* head_;  // sentinel
  mutable sync::SharedMutex mu_{"bl.utree"};  // writers exclusive; readers shared
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_UTREE_H_
