// Shared implementation of the DRAM-inner / PM-leaf baseline B+-trees.
// One class, three flush policies (what the respective papers optimize):
//
//  * kFpTree  — FPTree (Oukid et al., SIGMOD'16): unsorted PM leaves with
//    fingerprints; an insert persists the KV line, then the header line
//    (bitmap commit): 2 flushes, 2 fences.
//  * kLbTree  — LB+-Tree (Liu et al., VLDB'20): entry moving packs the KV
//    into the header cacheline when a header-line slot is free, so the
//    common-case insert is a single flush + fence.
//  * kSorted  — PACTree flavour (Kim et al., SOSP'21): sorted PM leaves with
//    shift-based insertion (more line flushes per insert), NUMA-local leaf
//    allocation from per-socket pools.
//
// None of these reduce XPLine-level randomness: every insert dirties the
// leaf's own (random) XPLine, which is precisely the paper's point (§2.3).
//
// Simplifications vs the original systems (DESIGN.md §6): splits use the
// same logless single-word commit as CCL-BTree instead of FPTree's µlog;
// leaves are never merged on deletion; LB+-Tree's HTM is replaced by the
// version lock (its abort behaviour under skew is modeled in the bench
// harness).
#ifndef SRC_BASELINES_LEAF_TREE_H_
#define SRC_BASELINES_LEAF_TREE_H_

#include <atomic>
#include <memory>
#include "src/common/lock.h"
#include <vector>

#include "src/baselines/leaf_handle.h"
#include "src/kvindex/dram_btree.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::baselines {

enum class LeafPolicy { kFpTree, kLbTree, kSorted };

class LeafTree : public kvindex::KvIndex {
 public:
  struct Options {
    LeafPolicy policy = LeafPolicy::kFpTree;
    // Allocate leaves from the inserting thread's socket (PACTree) instead
    // of socket 0 (single-socket designs).
    bool numa_local_alloc = false;
    const char* name = "LeafTree";
  };

  LeafTree(kvindex::Runtime& runtime, const Options& options);
  ~LeafTree() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return options_.name; }
  kvindex::MemoryFootprint Footprint() const override;

 private:
  LeafHandle* RouteAndLock(uint64_t key);
  void InsertUnsorted(LeafHandle* handle, uint64_t key, uint64_t value);
  void InsertSorted(LeafHandle* handle, uint64_t key, uint64_t value);
  LeafHandle* SplitLeaf(LeafHandle* handle);  // returns new right handle, locked
  LeafHandle* NewHandle(core::PmLeaf* leaf, uint64_t sep);

  kvindex::Runtime& rt_;
  Options options_;
  std::unique_ptr<pmem::SlabAllocator> leaf_slab_;
  kvindex::DramBTree<LeafHandle*> inner_;
  core::PmLeaf* head_leaf_;

  sync::Mutex handles_mu_{"bl.leaf_handles"};
  std::vector<std::unique_ptr<LeafHandle>> handles_;
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_LEAF_TREE_H_
