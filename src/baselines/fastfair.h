// FAST&FAIR-style baseline (Hwang et al., FAST'18): the *entire* tree —
// inner nodes and leaves — lives in PM. Nodes keep entries sorted; inserts
// shift entries (FAST) and persist the shifted cachelines without logging
// (FAIR relies on 8 B-atomic stores leaving transiently-inconsistent but
// tolerable states). Consequences the paper measures:
//   * every insert dirties its (random) leaf XPLine, plus inner XPLines on
//     splits -> high XBI-amplification;
//   * search traverses PM at every level -> slower point lookups than
//     DRAM-inner designs;
//   * sorted leaves -> excellent range scans.
//
// Simplification (DESIGN.md §6): concurrency uses a readers-writer lock
// instead of FAST&FAIR's lock-free reads; reported performance comes from
// the virtual-time model either way.
#ifndef SRC_BASELINES_FASTFAIR_H_
#define SRC_BASELINES_FASTFAIR_H_

#include <memory>
#include <shared_mutex>

#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::baselines {

class FastFairTree : public kvindex::KvIndex {
 public:
  explicit FastFairTree(kvindex::Runtime& runtime);
  ~FastFairTree() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "FAST&FAIR"; }
  kvindex::MemoryFootprint Footprint() const override;

 private:
  struct Node;  // 256 B PM node, sorted entries

  Node* NewNode(uint32_t level);
  Node* NodeAt(uint64_t offset) const;
  uint64_t OffsetOf(const Node* node) const;
  Node* DescendToLeaf(uint64_t key, Node** path, int* path_len) const;
  // Inserts (key, payload) into `node` (sorted shift + persist); splits and
  // propagates using the recorded descent path.
  void InsertIntoNode(Node* node, uint64_t key, uint64_t payload, Node** path, int path_len);

  kvindex::Runtime& rt_;
  std::unique_ptr<pmem::SlabAllocator> node_slab_;
  Node* root_;
  uint64_t node_count_ = 0;
  mutable std::shared_mutex mu_;
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_FASTFAIR_H_
