// FAST&FAIR-style baseline (Hwang et al., FAST'18): the *entire* tree —
// inner nodes and leaves — lives in PM. Nodes keep entries sorted; inserts
// shift entries (FAST) and persist the shifted cachelines without logging
// (FAIR relies on 8 B-atomic stores leaving transiently-inconsistent but
// tolerable states). Consequences the paper measures:
//   * every insert dirties its (random) leaf XPLine, plus inner XPLines on
//     splits -> high XBI-amplification;
//   * search traverses PM at every level -> slower point lookups than
//     DRAM-inner designs;
//   * sorted leaves -> excellent range scans.
//
// Simplification (DESIGN.md §6): concurrency uses a readers-writer lock
// instead of FAST&FAIR's lock-free reads; reported performance comes from
// the virtual-time model either way.
#ifndef SRC_BASELINES_FASTFAIR_H_
#define SRC_BASELINES_FASTFAIR_H_

#include <memory>
#include "src/common/lock.h"

#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/pmem/slab_allocator.h"

namespace cclbt::baselines {

class FastFairTree : public kvindex::KvIndex {
 public:
  explicit FastFairTree(kvindex::Runtime& runtime,
                        kvindex::Lifecycle lifecycle = kvindex::Lifecycle::kCreate);
  ~FastFairTree() override;

  void Upsert(uint64_t key, uint64_t value) override;
  bool Lookup(uint64_t key, uint64_t* value_out) override;
  bool Remove(uint64_t key) override;
  size_t Scan(uint64_t start_key, size_t count, kvindex::KeyValue* out) override;
  const char* name() const override { return "FAST&FAIR"; }
  kvindex::MemoryFootprint Footprint() const override;

  // --- persistence lifecycle (DESIGN.md §9) ----------------------------------
  // The whole tree is PM-native and every completed operation fenced its leaf
  // before returning, so after a clean crash the leaf chain holds the entire
  // acked dataset; Recover() walks it and rebuilds the inner levels (pure
  // routing state). Torn crashes are NOT tolerated: this implementation's
  // count-based node header (a DESIGN.md §6 simplification over the
  // original's NULL-terminated arrays) can persist a count line without its
  // entry lines, breaking the sorted-node invariant — declared honestly.
  bool recoverable() const override { return true; }
  bool tolerates_torn_crash() const override { return false; }
  bool Recover(kvindex::Runtime& runtime, int recovery_threads) override;
  uint64_t last_recovery_modeled_ns() const override { return last_recovery_modeled_ns_; }

 private:
  struct Node;  // 256 B PM node, sorted entries

  // Pool app-root slots (no separate root record: allocating one would shift
  // every node address and change the bench metrics' DIMM interleaving).
  // kHeadLeafSlot holds the leftmost leaf, which never moves — splits leave
  // the left node in place and link new nodes to the right.
  static constexpr int kHeadLeafSlot = 2;
  static constexpr int kSlabRegistrySlot = 3;

  Node* NewNode(uint32_t level);
  Node* NodeAt(uint64_t offset) const;
  uint64_t OffsetOf(const Node* node) const;
  Node* DescendToLeaf(uint64_t key, Node** path, int* path_len) const;
  // Inserts (key, payload) into `node` (sorted shift + persist); splits and
  // propagates using the recorded descent path.
  void InsertIntoNode(Node* node, uint64_t key, uint64_t payload, Node** path, int path_len);

  kvindex::Runtime& rt_;
  std::unique_ptr<pmem::SlabAllocator> node_slab_;
  Node* root_ = nullptr;
  uint64_t node_count_ = 0;
  kvindex::Lifecycle lifecycle_;
  bool recovered_ = false;
  uint64_t last_recovery_modeled_ns_ = 0;
  mutable sync::SharedMutex mu_{"bl.fastfair"};
};

}  // namespace cclbt::baselines

#endif  // SRC_BASELINES_FASTFAIR_H_
