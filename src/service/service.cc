#include "src/service/service.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "src/bench/metrics_dump.h"
#include "src/metrics/clock.h"
#include "src/metrics/metrics.h"
#include "src/pmsim/media_model.h"
#include "src/pmsim/thread_context.h"
#include "src/trace/trace.h"

namespace cclbt::service {

namespace {

// Insert/update/delete are all upsert-class writes (the paper implements all
// three as upsert, §4.2) — same mapping as the closed-loop driver.
metrics::OpKind KindOf(OpType op) {
  switch (op) {
    case OpType::kRead:
      return metrics::OpKind::kLookup;
    case OpType::kScan:
      return metrics::OpKind::kScan;
    default:
      return metrics::OpKind::kUpsert;
  }
}

bool IsWrite(OpType op) {
  return op == OpType::kInsert || op == OpType::kUpdate || op == OpType::kDelete;
}

// 8 B key + 8 B inline value, the application-intent bytes of a write (the
// same accounting the closed-loop driver charges per upsert).
constexpr uint64_t kWriteUserBytes = 16;

}  // namespace

struct ShardedKvService::Shard {
  std::unique_ptr<pmsim::ThreadContext> ctx;
  std::deque<Request> queue;
  ShardStats stats;
};

ShardedKvService::ShardedKvService(kvindex::Runtime& runtime, const ServiceConfig& config)
    : rt_(runtime), config_(config), scan_out_(config.scan_len == 0 ? 1 : config.scan_len) {
  assert(config_.shards >= 1);
  trees_.reserve(static_cast<size_t>(config_.shards));
  shards_.reserve(static_cast<size_t>(config_.shards));
  for (int s = 0; s < config_.shards; s++) {
    auto shard = std::make_unique<Shard>();
    // The context constructor installs itself as current, so the index
    // created next charges its formatting traffic to its own shard.
    // worker_id = shard id keeps per-thread WAL slots distinct per tree.
    shard->ctx = std::make_unique<pmsim::ThreadContext>(rt_.device(), rt_.SocketForWorker(s), s);
    shard->stats.socket = shard->ctx->socket();
    bench::IndexConfig per_shard = config_.index_config;
    per_shard.tree.root_slot = s;  // shard i's persistent root -> app-root slot i
    trees_.push_back(bench::MakeIndex(config_.index, rt_, per_shard));
    shards_.push_back(std::move(shard));
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
}

ShardedKvService::~ShardedKvService() = default;

int ShardedKvService::ShardOf(uint64_t key) const {
  auto n = static_cast<uint64_t>(config_.shards);
  if (config_.partition == Partition::kHash) {
    return static_cast<int>(Mix64(key ^ 0x5e55'1ce5'4a7dULL) % n);
  }
  // Range partition: shard = floor(key / (2^64 / n)) without overflow.
  return static_cast<int>((static_cast<unsigned __int128>(key) * n) >> 64);
}

int ShardedKvService::shard_socket(int s) const {
  return shards_[static_cast<size_t>(s)]->stats.socket;
}

void ShardedKvService::Warm(const OpenLoopConfig& workload) {
  for (uint64_t i = 0; i < workload.warm_keys; i++) {
    uint64_t key = ServiceWarmKey(i);
    int s = ShardOf(key);
    pmsim::ThreadContext::SetCurrent(shards_[static_cast<size_t>(s)]->ctx.get());
    trees_[static_cast<size_t>(s)]->Upsert(key, ServiceValue(i));
  }
  pmsim::ThreadContext::SetCurrent(nullptr);
  // Zero the cost model (stats + every registered virtual clock) so Run()
  // measures the open-loop phase alone, like the driver's measured phase.
  rt_.device().ResetCosts();
}

void ShardedKvService::ServeBatch(int s, uint64_t start_ns, bool closed_loop) {
  Shard& sh = *shards_[static_cast<size_t>(s)];
  pmsim::ThreadContext* ctx = sh.ctx.get();
  pmsim::ThreadContext::SetCurrent(ctx);
  if (ctx->now_ns() < start_ns) {
    ctx->ResetClock(start_ns);  // shard was idle until the head request arrived
  }
  struct Served {
    Request req;
    uint64_t wall_ns;
  };
  std::vector<Served> batch;
  batch.reserve(config_.batch_ops);
  // Only requests that have arrived by the batch start may ride in it (the
  // head always qualifies; later queue entries may still be in the future).
  while (batch.size() < config_.batch_ops && !sh.queue.empty() &&
         (closed_loop || sh.queue.front().arrival_ns <= start_ns)) {
    Request req = sh.queue.front();
    sh.queue.pop_front();
    uint64_t wall0 = metrics::WallNowNs();
    kvindex::KvIndex& tree = *trees_[static_cast<size_t>(s)];
    switch (req.op) {
      case OpType::kInsert:
      case OpType::kUpdate:
        ctx->stats_shard().AddUserBytes(kWriteUserBytes);
        tree.Upsert(req.key, req.value);
        break;
      case OpType::kDelete:
        ctx->stats_shard().AddUserBytes(kWriteUserBytes);
        tree.Remove(req.key);
        break;
      case OpType::kRead: {
        uint64_t value = 0;
        tree.Lookup(req.key, &value);
        break;
      }
      case OpType::kScan:
        tree.Scan(req.key, config_.scan_len, scan_out_.data());
        break;
    }
    batch.push_back({req, metrics::WallNowNs() - wall0});
  }
  // Group commit: every request in the batch is acked at the batch's
  // completion; an admitted request's latency spans arrival -> ack. In
  // closed-loop (capacity probe) mode arrivals are synthetic, so latency is
  // service-only (start -> ack).
  uint64_t done_ns = ctx->now_ns();
  for (const Served& sv : batch) {
    uint64_t arrival = closed_loop ? start_ns : sv.req.arrival_ns;
    metrics::RecordOp(KindOf(sv.req.op), done_ns - arrival, sv.wall_ns);
    if (config_.track_acked && IsWrite(sv.req.op)) {
      acked_[sv.req.key] = sv.req.op == OpType::kDelete ? 0 : sv.req.value;
    }
  }
  sh.stats.completed += batch.size();
  sh.stats.batches++;
  metrics::Add(metrics::Counter::kServiceBatches);
}

ServiceResult ShardedKvService::Run(const OpenLoopConfig& workload) {
  const bool closed_loop = workload.offered_mops <= 0;
  const bool metrics_dump = bench::MetricsDumpRequested();
  metrics::Reset();
  metrics::SetEnabled(true);
  pmsim::StatsSnapshot before = rt_.device().stats().Snapshot();
  for (auto& sh : shards_) {
    ShardStats fresh;
    fresh.socket = sh->stats.socket;
    sh->stats = fresh;
    sh->queue.clear();
  }

  const bool collect_epochs = config_.collect_epochs;
  const uint64_t epoch_ns = std::max<uint64_t>(1, config_.metrics_epoch_ns);
  uint64_t next_epoch_ns = epoch_ns;
  metrics::EpochSeries epochs;
  pmsim::StatsSnapshot epoch_prev_stats = before;
  metrics::MetricsSnapshot epoch_prev_metrics;
  auto record_epoch = [&](uint64_t t_ns) {
    pmsim::StatsSnapshot cur = rt_.device().stats().Snapshot();
    pmsim::StatsSnapshot win = cur.Delta(epoch_prev_stats);
    metrics::MetricsSnapshot mcur = metrics::Snapshot();
    metrics::EpochRecord e;
    e.index = epochs.size();
    e.t_ns = t_ns;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      metrics::Histogram w = mcur.op_virtual[k].Delta(epoch_prev_metrics.op_virtual[k]);
      e.ops.push_back(w.Count());
      e.p50_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(50));
      e.p99_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(99));
      e.p999_ns.push_back(w.Count() == 0 ? 0 : w.Percentile(99.9));
    }
    e.user_bytes = win.user_bytes;
    e.xpbuffer_write_bytes = win.xpbuffer_write_bytes;
    e.media_write_bytes = win.media_write_bytes;
    e.media_read_bytes = win.media_read_bytes;
    e.line_flushes = win.line_flushes;
    e.fences = win.fences;
    for (int c = 0; c < trace::kNumComponents; c++) {
      e.comp_bytes.push_back(win.media_write_bytes_by_component[c]);
    }
    pmsim::PmDevice::XpBufferTotals xb = rt_.device().SampleXpBuffers();
    e.xpbuf_resident = xb.resident;
    e.xpbuf_insertions = xb.insertions;
    e.xpbuf_evictions = xb.evictions;
    for (int c = 0; c < metrics::kNumCounters; c++) {
      e.counters.push_back(mcur.counters[c] - epoch_prev_metrics.counters[c]);
    }
    // Per-shard service gauges (queue depth at the epoch instant, cumulative
    // sheds) plus each shard index's own gauges, name-prefixed by shard.
    for (int s = 0; s < config_.shards; s++) {
      const Shard& sh = *shards_[static_cast<size_t>(s)];
      std::string p = "s" + std::to_string(s) + "_";
      e.gauges.emplace_back(p + "queue_depth", sh.queue.size());
      e.gauges.emplace_back(p + "shed", sh.stats.shed);
      std::vector<std::pair<std::string, uint64_t>> tree_gauges;
      trees_[static_cast<size_t>(s)]->SampleGauges(&tree_gauges);
      for (auto& [name, value] : tree_gauges) {
        e.gauges.emplace_back(p + name, value);
      }
    }
    epochs.push_back(std::move(e));
    epoch_prev_stats = cur;
    epoch_prev_metrics = std::move(mcur);
  };

  OpenLoopGenerator gen(workload);
  Request next;
  bool have_next = gen.Next(&next);
  uint64_t offered = 0;

  // Deterministic event loop: the next event is either the earliest pending
  // arrival (admission control runs at arrival time) or the earliest shard
  // batch start — min virtual time wins, lowest shard id breaks ties.
  while (true) {
    int best = -1;
    uint64_t best_t = UINT64_MAX;
    for (int s = 0; s < config_.shards; s++) {
      Shard& sh = *shards_[static_cast<size_t>(s)];
      if (sh.queue.empty()) {
        continue;
      }
      uint64_t t = std::max(sh.ctx->now_ns(),
                            closed_loop ? 0 : sh.queue.front().arrival_ns);
      if (t < best_t) {
        best_t = t;
        best = s;
      }
    }
    if (have_next && (best < 0 || next.arrival_ns <= best_t)) {
      offered++;
      Shard& sh = *shards_[static_cast<size_t>(ShardOf(next.key))];
      if (!closed_loop && sh.queue.size() >= config_.queue_capacity) {
        sh.stats.shed++;
        metrics::Add(metrics::Counter::kServiceSheds);
      } else {
        sh.queue.push_back(next);
        sh.stats.max_queue_depth = std::max<uint64_t>(sh.stats.max_queue_depth, sh.queue.size());
        sh.stats.admitted++;
        metrics::Add(metrics::Counter::kServiceAdmits);
      }
      have_next = gen.Next(&next);
      continue;
    }
    if (best < 0) {
      break;  // stream exhausted and every queue drained
    }
    ServeBatch(best, best_t, closed_loop);
    if (collect_epochs) {
      uint64_t now = shards_[static_cast<size_t>(best)]->ctx->now_ns();
      if (now >= next_epoch_ns) {
        record_epoch(now);
        next_epoch_ns = (now / epoch_ns + 1) * epoch_ns;
      }
    }
  }
  pmsim::ThreadContext::SetCurrent(nullptr);

  ServiceResult result;
  result.offered = offered;
  uint64_t frontier_ns = 0;
  for (auto& sh : shards_) {
    sh->stats.final_vtime_ns = sh->ctx->now_ns();
    frontier_ns = std::max(frontier_ns, sh->stats.final_vtime_ns);
    result.admitted += sh->stats.admitted;
    result.shed += sh->stats.shed;
    result.completed += sh->stats.completed;
    result.shards.push_back(sh->stats);
  }
  if (collect_epochs) {
    // Close the final (partial) window so the series tiles the whole run.
    record_epoch(frontier_ns);
  }
  result.shed_rate =
      offered == 0 ? 0.0 : static_cast<double>(result.shed) / static_cast<double>(offered);
  result.offered_mops = workload.offered_mops;
  uint64_t elapsed_ns = std::max(frontier_ns, rt_.device().MaxDimmBusyNs());
  result.elapsed_virtual_ms = static_cast<double>(elapsed_ns) / 1e6;
  result.achieved_mops = elapsed_ns == 0 ? 0.0
                                         : static_cast<double>(result.completed) * 1e3 /
                                               static_cast<double>(elapsed_ns);
  pmsim::StatsSnapshot after = rt_.device().stats().Snapshot();
  result.stats = after.Delta(before);
  result.cli_amplification = result.stats.CliAmplification();
  result.xbi_amplification = result.stats.XbiAmplification();
  result.metrics_snapshot = metrics::Snapshot();
  result.epochs = std::move(epochs);
  metrics::SetEnabled(false);

  if (metrics_dump) {
    metrics::PmMetricsFile file;
    file.header.label = config_.label.empty() ? "service" : config_.label;
    file.header.backend = pmsim::MediaBackendName(rt_.device().config().backend);
    file.header.epoch_ns = epoch_ns;
    file.header.threads = static_cast<uint64_t>(config_.shards);
    file.header.ops = workload.ops;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      file.header.op_kinds.emplace_back(metrics::OpKindName(static_cast<metrics::OpKind>(k)));
    }
    for (int c = 0; c < metrics::kNumCounters; c++) {
      file.header.counters.emplace_back(metrics::CounterName(static_cast<metrics::Counter>(c)));
    }
    for (int c = 0; c < trace::kNumComponents; c++) {
      file.header.components.emplace_back(trace::ComponentName(static_cast<trace::Component>(c)));
    }
    file.epochs = result.epochs;
    file.has_summary = true;
    file.summary.elapsed_virtual_ns = elapsed_ns;
    for (int k = 0; k < metrics::kNumOpKinds; k++) {
      file.summary.virt.push_back(
          metrics::SummarizeHistogram(result.metrics_snapshot.op_virtual[k]));
      file.summary.wall.push_back(
          metrics::SummarizeHistogram(result.metrics_snapshot.op_wall[k]));
    }
    result.metrics_dump_path = bench::WriteMetricsDump(file);
  }
  return result;
}

}  // namespace cclbt::service
