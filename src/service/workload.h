// Open-loop YCSB-style workload generation in virtual time (DESIGN.md §15).
//
// Closed-loop drivers (src/bench/driver.h) issue the next operation the
// moment the previous one returns, so offered load always equals service
// capacity and queueing delay is invisible. The open-loop generator instead
// emits a deterministic *arrival process*: each request carries a virtual
// arrival timestamp drawn from a seeded RNG (Poisson, or an on/off burst
// modulation of one), independent of how fast the service drains. Offered
// load can therefore exceed capacity, which is exactly the regime where
// XPBuffer-induced media stalls compound into queueing delay and tail
// latency — the measurement the paper's closed-loop evaluation cannot
// produce.
//
// Determinism: the stream is a pure function of OpenLoopConfig (seeded
// xoshiro draws + libm exp/log on identical inputs), so two runs of the same
// binary see bit-identical arrivals.
#ifndef SRC_SERVICE_WORKLOAD_H_
#define SRC_SERVICE_WORKLOAD_H_

#include <cstdint>

#include "src/common/keyspace.h"
#include "src/common/rng.h"
#include "src/common/ycsb.h"
#include "src/common/zipfian.h"

namespace cclbt::service {

enum class ArrivalProcess : uint8_t {
  kPoisson,  // exponential inter-arrivals at the offered rate
  kBurst,    // Poisson modulated by a deterministic on/off duty cycle
};

// One client request as it enters the service front-end.
struct Request {
  OpType op = OpType::kInsert;
  uint64_t key = 0;
  uint64_t value = 0;       // value word for writes (inline 8 B)
  uint64_t arrival_ns = 0;  // virtual-time arrival
  uint64_t seq = 0;         // global arrival order (0-based)
};

struct OpenLoopConfig {
  // Requests in the measured stream.
  uint64_t ops = 100'000;
  // Mean offered load in Mop/s of virtual time (1 Mop/s == one arrival per
  // 1000 ns on average). <= 0 means closed loop: the service executes
  // back-to-back at capacity (used by the saturation probe), and arrival
  // timestamps are not meaningful.
  double offered_mops = 1.0;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // kBurst: within each burst_period_ns window the first burst_duty_pct% of
  // the period arrives at burst_factor x the mean rate; the remainder of the
  // period runs at a compensating trickle so the long-run mean stays at
  // offered_mops. Models flash-crowd traffic against the leaf-buffer batch
  // absorber.
  uint64_t burst_period_ns = 1'000'000;
  double burst_factor = 4.0;
  int burst_duty_pct = 25;
  // Op mix and key population (same conventions as the closed-loop driver:
  // reads/updates/scans draw from the warm key space, inserts extend it).
  const YcsbMix* mix = &kYcsbInsertIntensive;
  KeyDistribution dist = KeyDistribution::kUniform;
  double zipf_theta = 0.9;
  uint64_t warm_keys = 100'000;
  uint64_t seed = 42;
};

// Key for warm-phase position i (dense scrambled space, |1 like the driver's
// WarmKey so inline values and keys never collide with tombstone encodings).
inline uint64_t ServiceWarmKey(uint64_t i) { return Mix64(i) | 1; }

// Value word for the i-th write of the run (warm phase uses i in
// [0, warm_keys), the measured stream warm_keys + seq). Unique per write so
// rewriting a key always changes its bytes — a repeated value would persist
// a line whose content equals the durable image, which pmcheck rightly
// flags as a redundant flush.
inline uint64_t ServiceValue(uint64_t i) { return ((i + 1) << 1) | 1; }

class OpenLoopGenerator {
 public:
  explicit OpenLoopGenerator(const OpenLoopConfig& config)
      : config_(config),
        rng_(config.seed * 0x9E3779B9ULL + 1),
        zipf_(config.warm_keys == 0 ? 1 : config.warm_keys, config.zipf_theta,
              config.seed * 31 + 7),
        picker_(config.mix != nullptr ? *config.mix : kYcsbInsertOnly, config.seed + 13) {}

  // Fills `out` with the next request; false once `ops` have been emitted.
  bool Next(Request* out);

 private:
  // Mean inter-arrival at virtual time `now_ns` (burst modulation).
  double MeanGapNs(double now_ns) const;

  OpenLoopConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  YcsbOpPicker picker_;
  uint64_t emitted_ = 0;
  uint64_t inserted_ = 0;  // fresh keys appended beyond the warm space
  double clock_ns_ = 0;
};

}  // namespace cclbt::service

#endif  // SRC_SERVICE_WORKLOAD_H_
