#include "src/service/workload.h"

#include <cmath>

namespace cclbt::service {

double OpenLoopGenerator::MeanGapNs(double now_ns) const {
  double base = 1000.0 / config_.offered_mops;  // ns between arrivals at the mean rate
  if (config_.process == ArrivalProcess::kPoisson || config_.burst_period_ns == 0) {
    return base;
  }
  // On/off modulation. The on-window multiplies the rate by burst_factor;
  // the off-window rate is solved so the period-average rate stays at
  // offered_mops (clamped: a >1 duty*factor product would need a negative
  // off-rate, so the floor makes such configs burst-heavy rather than UB).
  double duty = static_cast<double>(config_.burst_duty_pct) / 100.0;
  double period = static_cast<double>(config_.burst_period_ns);
  double pos = std::fmod(now_ns, period);
  double rate_mult;
  if (pos < duty * period) {
    rate_mult = config_.burst_factor;
  } else {
    rate_mult = (1.0 - config_.burst_factor * duty) / (1.0 - duty);
    if (rate_mult < 0.05) {
      rate_mult = 0.05;
    }
  }
  return base / rate_mult;
}

bool OpenLoopGenerator::Next(Request* out) {
  if (emitted_ >= config_.ops) {
    return false;
  }
  OpType op = picker_.Next();
  if (config_.warm_keys == 0 && op != OpType::kInsert) {
    op = OpType::kInsert;  // nothing warm to read/update/scan yet
  }
  out->op = op;
  out->seq = emitted_;
  out->value = 0;
  switch (op) {
    case OpType::kInsert:
      out->key = ServiceWarmKey(config_.warm_keys + inserted_);
      out->value = ServiceValue(config_.warm_keys + emitted_);
      inserted_++;
      break;
    case OpType::kUpdate:
      out->value = ServiceValue(config_.warm_keys + emitted_);
      [[fallthrough]];
    case OpType::kRead:
    case OpType::kScan:
    case OpType::kDelete:
      out->key = config_.dist == KeyDistribution::kZipfian
                     ? ServiceWarmKey(zipf_.NextRank())
                     : ServiceWarmKey(rng_.NextBounded(config_.warm_keys));
      break;
  }
  if (config_.offered_mops > 0) {
    // Exponential inter-arrival: -ln(1-U) * mean. NextDouble() < 1 strictly,
    // so the log argument never hits zero.
    double gap = -std::log(1.0 - rng_.NextDouble()) * MeanGapNs(clock_ns_);
    clock_ns_ += gap;
    out->arrival_ns = static_cast<uint64_t>(clock_ns_);
  } else {
    out->arrival_ns = 0;  // closed loop: the service back-fills arrival = start
  }
  emitted_++;
  return true;
}

}  // namespace cclbt::service
