// Sharded KV service front-end over kvindex (DESIGN.md §15).
//
// N shards partition the key space (hash or range); each shard owns one
// index instance in the shared Runtime pool (CCL-BTree shard i persists its
// root in pool app-root slot i via TreeOptions::root_slot) and one
// pmsim::ThreadContext pinned to a socket by Runtime::SocketForWorker — so a
// 2-socket device config spreads shards round-robin across sockets and
// shard-local PM traffic queues on that socket's DIMMs.
//
// Request flow (all in virtual time, single OS thread, deterministic):
//   arrival (open-loop generator) -> admission control -> per-shard bounded
//   FIFO -> group-commit batch of `batch_ops` requests -> index ops on the
//   shard's context -> ack (latency = batch completion - arrival).
//
// Admission control sheds a request at its arrival instant when the target
// shard's queue already holds `queue_capacity` requests — the service
// degrades by rejecting early instead of growing unbounded queues, so tail
// latency of *admitted* requests stays bounded past saturation while the
// shed rate reports the overload.
//
// Group commit: a shard serves up to `batch_ops` queued requests as one
// batch and acks all of them at the batch's completion time. Batching feeds
// CCL-BTree's buffer nodes bursts that amortize leaf flushes (paper §3.2);
// the cost is added queueing delay for the batch's early requests, which is
// exactly the tradeoff bench_service_tail measures.
//
// Determinism: the event loop interleaves arrivals and batch completions in
// global virtual-time order (ties broken by lowest shard id), so two runs of
// the same config produce bit-identical epoch series, shed counts and
// latency histograms.
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bench/index_factory.h"
#include "src/kvindex/kv_index.h"
#include "src/kvindex/runtime.h"
#include "src/metrics/pmmetrics.h"
#include "src/pmsim/device.h"
#include "src/service/workload.h"

namespace cclbt::service {

enum class Partition : uint8_t {
  kHash,   // scrambled-key modulo: uniform shard load for any key pattern
  kRange,  // contiguous key ranges: preserves cross-shard scan locality
};

struct ServiceConfig {
  int shards = 2;
  Partition partition = Partition::kHash;
  // Index type per shard (index_factory names). Only "cclbtree" supports
  // multi-shard recovery (per-shard app-root slots); other types work as
  // volatile shards.
  std::string index = "cclbtree";
  bench::IndexConfig index_config;  // per-shard; root_slot is overridden to the shard id
  // Admission watermark: arrivals finding this many requests queued at their
  // shard are shed.
  size_t queue_capacity = 64;
  // Group-commit batch size (requests acked together; a multiple of the
  // tree's nbatch keeps buffer-node slots full).
  size_t batch_ops = 8;
  size_t scan_len = 16;
  // Virtual-time epoch width of the metrics series.
  uint64_t metrics_epoch_ns = 1'000'000;
  bool collect_epochs = true;
  std::string label = "service";
  // Record the last acked value per key (crash tests verify no acked update
  // is lost across shard queues). Off by default: it is DRAM bookkeeping the
  // measured path does not need.
  bool track_acked = false;
};

struct ShardStats {
  int socket = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t batches = 0;
  uint64_t max_queue_depth = 0;
  uint64_t final_vtime_ns = 0;
};

struct ServiceResult {
  uint64_t offered = 0;    // requests the generator produced
  uint64_t admitted = 0;   // passed admission control
  uint64_t shed = 0;       // rejected at arrival
  uint64_t completed = 0;  // acked (== admitted once the queues drain)
  double shed_rate = 0;    // shed / offered
  double offered_mops = 0;
  double achieved_mops = 0;  // completed / elapsed
  double elapsed_virtual_ms = 0;
  pmsim::StatsSnapshot stats;  // measured-phase device delta
  double cli_amplification = 0;
  double xbi_amplification = 0;
  // Latency histograms (virtual + wall) and service counters; latency of an
  // admitted request spans arrival -> group-commit ack.
  metrics::MetricsSnapshot metrics_snapshot;
  metrics::EpochSeries epochs;  // deterministic per-epoch series
  std::vector<ShardStats> shards;
  std::string metrics_dump_path;  // "" unless CCL_METRICS was set
};

class ShardedKvService {
 public:
  // Creates the shard indexes and pinned contexts in `runtime`'s pool.
  // The runtime outlives the service.
  ShardedKvService(kvindex::Runtime& runtime, const ServiceConfig& config);
  ~ShardedKvService();

  ShardedKvService(const ShardedKvService&) = delete;
  ShardedKvService& operator=(const ShardedKvService&) = delete;

  // Closed-loop warm fill: upserts keys [0, warm_keys) of `workload`'s key
  // space directly into their shards (no queueing), then resets device cost
  // accounting so Run() measures only the open-loop phase.
  void Warm(const OpenLoopConfig& workload);

  // Drives the arrival stream through the service to completion.
  // workload.offered_mops <= 0 selects closed-loop mode: every request is
  // available the moment its shard is free (no queueing delay, no shedding),
  // which measures saturation capacity — benches probe capacity this way,
  // then place open-loop sweep points below/at/beyond it.
  ServiceResult Run(const OpenLoopConfig& workload);

  int ShardOf(uint64_t key) const;
  int shards() const { return config_.shards; }
  int shard_socket(int s) const;
  kvindex::KvIndex& shard_index(int s) { return *trees_[static_cast<size_t>(s)]; }
  // Last acked value per key (track_acked only); value 0 records an acked
  // delete. std::map so iteration order is deterministic.
  const std::map<uint64_t, uint64_t>& acked() const { return acked_; }

 private:
  struct Shard;

  // Serves one group-commit batch on shard `s`, starting at virtual time
  // `start_ns` (>= the shard clock; the gap is modeled idle waiting).
  void ServeBatch(int s, uint64_t start_ns, bool closed_loop);

  kvindex::Runtime& rt_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<kvindex::KvIndex>> trees_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<uint64_t, uint64_t> acked_;
  std::vector<kvindex::KeyValue> scan_out_;
};

}  // namespace cclbt::service

#endif  // SRC_SERVICE_SERVICE_H_
