#include "src/metrics/pmmetrics.h"

#include <cctype>
#include <cstdio>
#include <fstream>

namespace cclbt::metrics {

namespace {

// --- writer helpers ---------------------------------------------------------

void AppendString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendKey(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

void AppendU64Field(std::string& out, const char* key, uint64_t v) {
  AppendKey(out, key);
  AppendU64(out, v);
}

void AppendU64Array(std::string& out, const char* key, const std::vector<uint64_t>& vs) {
  AppendKey(out, key);
  out += '[';
  for (size_t i = 0; i < vs.size(); i++) {
    if (i != 0) {
      out += ',';
    }
    AppendU64(out, vs[i]);
  }
  out += ']';
}

void AppendStringArray(std::string& out, const char* key, const std::vector<std::string>& vs) {
  AppendKey(out, key);
  out += '[';
  for (size_t i = 0; i < vs.size(); i++) {
    if (i != 0) {
      out += ',';
    }
    AppendString(out, vs[i]);
  }
  out += ']';
}

void AppendOpSummaryArray(std::string& out, const char* key,
                          const std::vector<OpLatencySummary>& vs) {
  AppendKey(out, key);
  out += '[';
  for (size_t i = 0; i < vs.size(); i++) {
    if (i != 0) {
      out += ',';
    }
    out += '{';
    AppendU64Field(out, "count", vs[i].count);
    out += ',';
    AppendU64Field(out, "p50_ns", vs[i].p50_ns);
    out += ',';
    AppendU64Field(out, "p99_ns", vs[i].p99_ns);
    out += ',';
    AppendU64Field(out, "p999_ns", vs[i].p999_ns);
    out += ',';
    AppendU64Field(out, "max_ns", vs[i].max_ns);
    out += '}';
  }
  out += ']';
}

// --- minimal JSON reader ----------------------------------------------------
// Parses exactly the subset this file's writer emits: objects, arrays,
// strings with \" \\ \uXXXX escapes, booleans, null, and non-negative
// integers (everything numeric in .pmmetrics is a uint64).

struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool ParseLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      n++;
    }
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return false;
    }
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        return false;
      }
      char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Writer only emits \u00XX control escapes; anything wider is
          // replaced, not reconstructed.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    char c = s_[pos_];
    if (c == '{') {
      pos_++;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (!Eat(':')) {
          return false;
        }
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (Eat('}')) {
          return true;
        }
        if (!Eat(',')) {
          return false;
        }
      }
    }
    if (c == '[') {
      pos_++;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        out->array.push_back(std::move(v));
        SkipWs();
        if (Eat(']')) {
          return true;
        }
        if (!Eat(',')) {
          return false;
        }
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = c == 't';
      return ParseLiteral(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      out->kind = JsonValue::Kind::kNumber;
      out->number = 0;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        out->number = out->number * 10 + static_cast<uint64_t>(s_[pos_] - '0');
        pos_++;
      }
      return true;
    }
    return false;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

uint64_t GetU64(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number : 0;
}

std::string GetString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->str : std::string();
}

std::vector<uint64_t> GetU64Array(const JsonValue& obj, const char* key) {
  std::vector<uint64_t> out;
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    return out;
  }
  out.reserve(v->array.size());
  for (const JsonValue& e : v->array) {
    out.push_back(e.kind == JsonValue::Kind::kNumber ? e.number : 0);
  }
  return out;
}

std::vector<std::string> GetStringArray(const JsonValue& obj, const char* key) {
  std::vector<std::string> out;
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    return out;
  }
  out.reserve(v->array.size());
  for (const JsonValue& e : v->array) {
    out.push_back(e.str);
  }
  return out;
}

std::vector<OpLatencySummary> GetOpSummaryArray(const JsonValue& obj, const char* key) {
  std::vector<OpLatencySummary> out;
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    return out;
  }
  for (const JsonValue& e : v->array) {
    OpLatencySummary s;
    s.count = GetU64(e, "count");
    s.p50_ns = GetU64(e, "p50_ns");
    s.p99_ns = GetU64(e, "p99_ns");
    s.p999_ns = GetU64(e, "p999_ns");
    s.max_ns = GetU64(e, "max_ns");
    out.push_back(s);
  }
  return out;
}

}  // namespace

std::string SerializeHeader(const PmMetricsHeader& header) {
  std::string out = "{\"type\":\"header\",";
  AppendU64Field(out, "pmmetrics", kPmMetricsVersion);
  out += ',';
  AppendKey(out, "label");
  AppendString(out, header.label);
  out += ',';
  AppendKey(out, "backend");
  AppendString(out, header.backend);
  out += ',';
  AppendU64Field(out, "epoch_ns", header.epoch_ns);
  out += ',';
  AppendU64Field(out, "threads", header.threads);
  out += ',';
  AppendU64Field(out, "ops", header.ops);
  out += ',';
  AppendStringArray(out, "op_kinds", header.op_kinds);
  out += ',';
  AppendStringArray(out, "counters", header.counters);
  out += ',';
  AppendStringArray(out, "components", header.components);
  out += "}\n";
  return out;
}

std::string SerializeEpoch(const EpochRecord& epoch) {
  std::string out = "{\"type\":\"epoch\",";
  AppendU64Field(out, "i", epoch.index);
  out += ',';
  AppendU64Field(out, "t_ns", epoch.t_ns);
  out += ',';
  AppendU64Array(out, "ops", epoch.ops);
  out += ',';
  AppendU64Array(out, "p50_ns", epoch.p50_ns);
  out += ',';
  AppendU64Array(out, "p99_ns", epoch.p99_ns);
  out += ',';
  AppendU64Array(out, "p999_ns", epoch.p999_ns);
  out += ',';
  AppendU64Field(out, "user_bytes", epoch.user_bytes);
  out += ',';
  AppendU64Field(out, "xpbuffer_write_bytes", epoch.xpbuffer_write_bytes);
  out += ',';
  AppendU64Field(out, "media_write_bytes", epoch.media_write_bytes);
  out += ',';
  AppendU64Field(out, "media_read_bytes", epoch.media_read_bytes);
  out += ',';
  AppendU64Field(out, "line_flushes", epoch.line_flushes);
  out += ',';
  AppendU64Field(out, "fences", epoch.fences);
  out += ',';
  AppendU64Array(out, "comp_bytes", epoch.comp_bytes);
  out += ",\"xpbuf\":{";
  AppendU64Field(out, "resident", epoch.xpbuf_resident);
  out += ',';
  AppendU64Field(out, "insertions", epoch.xpbuf_insertions);
  out += ',';
  AppendU64Field(out, "evictions", epoch.xpbuf_evictions);
  out += "},";
  AppendU64Array(out, "counters", epoch.counters);
  out += ",\"gauges\":{";
  for (size_t i = 0; i < epoch.gauges.size(); i++) {
    if (i != 0) {
      out += ',';
    }
    AppendString(out, epoch.gauges[i].first);
    out += ':';
    AppendU64(out, epoch.gauges[i].second);
  }
  out += "}}\n";
  return out;
}

std::string SerializeEpochSeries(const EpochSeries& series) {
  std::string out;
  for (const EpochRecord& e : series) {
    out += SerializeEpoch(e);
  }
  return out;
}

std::string SerializeSummary(const PmMetricsSummary& summary) {
  std::string out = "{\"type\":\"summary\",";
  AppendU64Field(out, "elapsed_virtual_ns", summary.elapsed_virtual_ns);
  out += ',';
  AppendOpSummaryArray(out, "virt", summary.virt);
  out += ',';
  AppendOpSummaryArray(out, "wall", summary.wall);
  out += "}\n";
  return out;
}

OpLatencySummary SummarizeHistogram(const Histogram& h) {
  OpLatencySummary s;
  s.count = h.Count();
  s.p50_ns = h.Percentile(50);
  s.p99_ns = h.Percentile(99);
  s.p999_ns = h.Percentile(99.9);
  s.max_ns = h.Max();
  return s;
}

bool ReadPmMetricsFile(const std::string& path, PmMetricsFile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string line;
  size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    lineno++;
    if (line.empty()) {
      continue;
    }
    JsonValue v;
    if (!JsonParser(line).Parse(&v) || v.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": malformed JSON line";
      }
      return false;
    }
    std::string type = GetString(v, "type");
    if (type == "header") {
      if (GetU64(v, "pmmetrics") != kPmMetricsVersion) {
        if (error != nullptr) {
          *error = path + ": unsupported pmmetrics version";
        }
        return false;
      }
      out->header.label = GetString(v, "label");
      out->header.backend = GetString(v, "backend");
      out->header.epoch_ns = GetU64(v, "epoch_ns");
      out->header.threads = GetU64(v, "threads");
      out->header.ops = GetU64(v, "ops");
      out->header.op_kinds = GetStringArray(v, "op_kinds");
      out->header.counters = GetStringArray(v, "counters");
      out->header.components = GetStringArray(v, "components");
      saw_header = true;
    } else if (type == "epoch") {
      EpochRecord e;
      e.index = GetU64(v, "i");
      e.t_ns = GetU64(v, "t_ns");
      e.ops = GetU64Array(v, "ops");
      e.p50_ns = GetU64Array(v, "p50_ns");
      e.p99_ns = GetU64Array(v, "p99_ns");
      e.p999_ns = GetU64Array(v, "p999_ns");
      e.user_bytes = GetU64(v, "user_bytes");
      e.xpbuffer_write_bytes = GetU64(v, "xpbuffer_write_bytes");
      e.media_write_bytes = GetU64(v, "media_write_bytes");
      e.media_read_bytes = GetU64(v, "media_read_bytes");
      e.line_flushes = GetU64(v, "line_flushes");
      e.fences = GetU64(v, "fences");
      e.comp_bytes = GetU64Array(v, "comp_bytes");
      if (const JsonValue* x = v.Find("xpbuf"); x != nullptr) {
        e.xpbuf_resident = GetU64(*x, "resident");
        e.xpbuf_insertions = GetU64(*x, "insertions");
        e.xpbuf_evictions = GetU64(*x, "evictions");
      }
      e.counters = GetU64Array(v, "counters");
      if (const JsonValue* g = v.Find("gauges");
          g != nullptr && g->kind == JsonValue::Kind::kObject) {
        for (const auto& [name, value] : g->object) {
          e.gauges.emplace_back(
              name, value.kind == JsonValue::Kind::kNumber ? value.number : 0);
        }
      }
      out->epochs.push_back(std::move(e));
    } else if (type == "summary") {
      out->has_summary = true;
      out->summary.elapsed_virtual_ns = GetU64(v, "elapsed_virtual_ns");
      out->summary.virt = GetOpSummaryArray(v, "virt");
      out->summary.wall = GetOpSummaryArray(v, "wall");
    }
    // Unknown record types: skip (forward compatibility).
  }
  if (!saw_header) {
    if (error != nullptr) {
      *error = path + ": no header record";
    }
    return false;
  }
  return true;
}

}  // namespace cclbt::metrics
