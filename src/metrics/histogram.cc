#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>

namespace cclbt::metrics {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1ULL << kSubBucketBits)) {
    return static_cast<int>(value);  // Exact buckets for small values.
  }
  int log2 = 63 - std::countl_zero(value);
  int shift = log2 - kSubBucketBits;
  uint64_t sub = (value >> shift) - (1ULL << kSubBucketBits);
  int bucket = ((shift + 1) << kSubBucketBits) + static_cast<int>(sub);
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<uint64_t>(bucket);
  }
  int shift = (bucket >> kSubBucketBits) - 1;
  uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBucketBits) - 1));
  // 128-bit intermediate with saturation: the widest reachable bucket's bound
  // is exactly 2^64-1, and bounds of unreachable tail buckets clamp there
  // instead of wrapping (the open-ended-max-bucket bug this class fixes).
  unsigned __int128 bound =
      ((static_cast<unsigned __int128>((1ULL << kSubBucketBits) + sub + 1)) << shift) - 1;
  if (bound > static_cast<unsigned __int128>(~0ULL)) {
    return ~0ULL;
  }
  return static_cast<uint64_t>(bound);
}

uint64_t Histogram::MaxTrackable() { return BucketUpperBound(kNumBuckets - 1); }

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram Histogram::Delta(const Histogram& earlier) const {
  Histogram d;
  int lowest = -1;
  int highest = -1;
  for (int i = 0; i < kNumBuckets; i++) {
    uint64_t n = buckets_[static_cast<size_t>(i)] - earlier.buckets_[static_cast<size_t>(i)];
    d.buckets_[static_cast<size_t>(i)] = n;
    if (n != 0) {
      if (lowest < 0) {
        lowest = i;
      }
      highest = i;
    }
  }
  d.count_ = count_ - earlier.count_;
  d.sum_ = sum_ - earlier.sum_;
  if (highest >= 0) {
    // Window extremes are not recoverable from cumulative min/max; use the
    // quantized bucket bounds (deterministic, within one sub-bucket of truth).
    d.min_ = lowest == 0 ? 0 : BucketUpperBound(lowest - 1) + 1;
    d.max_ = BucketUpperBound(highest);
  }
  return d;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min_;
  }
  auto rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  rank = std::min(rank, count_ - 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > rank) {
      return std::min(std::max(BucketUpperBound(i), min_), max_);
    }
  }
  return max_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

}  // namespace cclbt::metrics
