// Lock-free, per-worker metrics registry: the always-compiled numeric
// telemetry layer (counters + per-op-type latency histograms), runtime-gated
// the same way as pmtrace (src/trace/trace.h):
//
//  * The disabled path is ONE relaxed load of a global flag per record site
//    — no TLS init-guard (the shard pointer is constinit), no shard is
//    allocated until the first enabled record on a thread, and no counter
//    memory is touched. Disabled cost sits inside the repo's ≤2% budget.
//  * The enabled path is single-writer: each OS thread owns a
//    cacheline-aligned MetricsShard (relaxed load+store increments, no RMW).
//    Shards are owned by a global registry and survive thread death, so a
//    snapshot at the end of a run sees every worker's counts even though the
//    driver's OS threads are gone (same lifecycle as pmtrace rings).
//  * CPU-side only, by construction: nothing here touches pmsim state, so
//    the flush schedule and every virtual-time metric are bit-identical with
//    the gate on or off. Gauges (XPBuffer occupancy, GC backlog) are pulled
//    from existing accessors at epoch boundaries by the bench driver, never
//    pushed from hot paths.
//
// Consistency contract (same as pmsim::Stats): Snapshot()/Reset() are exact
// only when no thread is concurrently recording (quiesced, as at phase
// boundaries). Concurrent counter reads are relaxed-atomic (well-defined,
// possibly missing in-flight increments); histograms are single-writer and
// must only be merged when their writer is quiesced.
//
// Layering: depends on nothing in the repo but src/metrics/histogram.h.
// Wall time enters only through the sanctioned shim (src/metrics/clock.h,
// lint R6) and only via RecordOp's wall argument.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/metrics/histogram.h"

namespace cclbt::metrics {

// The single source of truth for the counter set (same X-macro discipline as
// CCLBT_PMSIM_STATS_FIELDS): C(enumerator, "wire name").
#define CCLBT_METRICS_COUNTERS(C)                                              \
  C(kBufferAbsorbs, "buffer_absorbs")        /* upserts absorbed by a buffer   \
                                                node, no leaf flush (§3.2) */  \
  C(kBufferFlushes, "buffer_flushes")        /* buffer-node batch flushes */   \
  C(kBufferFlushEntries, "buffer_flush_entries") /* KVs per flush batch */     \
  C(kWalAppendBytes, "wal_append_bytes")     /* log growth */                  \
  C(kWalReleaseBytes, "wal_release_bytes")   /* log reclaimed by GC */         \
  C(kGcRounds, "gc_rounds")                  /* GC rounds completed */         \
  C(kServiceAdmits, "service_admits")        /* requests admitted into a      \
                                                shard queue (src/service) */  \
  C(kServiceSheds, "service_sheds")          /* requests rejected by          \
                                                admission control */          \
  C(kServiceBatches, "service_batches")      /* group-commit batches executed */

enum class Counter : uint8_t {
#define CCLBT_METRICS_ENUM(name, wire) name,
  CCLBT_METRICS_COUNTERS(CCLBT_METRICS_ENUM)
#undef CCLBT_METRICS_ENUM
      kCount,
};
inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

const char* CounterName(Counter c);

// Operation kinds for latency histograms. The driver maps OpType onto these:
// insert/update/delete are all upsert-class writes (the paper implements all
// three as upsert, §4.2); recover is recorded by the recovery harness.
enum class OpKind : uint8_t { kUpsert = 0, kLookup = 1, kScan = 2, kRecover = 3, kCount = 4 };
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kCount);

const char* OpKindName(OpKind k);

// One OS thread's private metric block. Exactly one thread writes it; other
// threads only read (Snapshot, relaxed loads for counters; histograms only
// when the writer is quiesced). alignas(64) keeps shards off each other's
// cachelines.
struct alignas(64) MetricsShard {
  std::atomic<uint64_t> counters[kNumCounters] = {};
  Histogram op_virtual[kNumOpKinds];  // per-op virtual-time latency (ns)
  Histogram op_wall[kNumOpKinds];     // per-op host wall latency (ns)
};

// Merged view of every shard since the last Reset().
struct MetricsSnapshot {
  uint64_t counters[kNumCounters] = {};
  Histogram op_virtual[kNumOpKinds];
  Histogram op_wall[kNumOpKinds];

  uint64_t counter(Counter c) const { return counters[static_cast<size_t>(c)]; }
  const Histogram& virt(OpKind k) const { return op_virtual[static_cast<size_t>(k)]; }
  const Histogram& wall(OpKind k) const { return op_wall[static_cast<size_t>(k)]; }
};

namespace detail {
extern std::atomic<bool> g_enabled;
// constinit: constant-initialized so record sites access the slot directly
// instead of through the TLS init-guard wrapper (same rationale as
// trace::detail::tl_binding — the guard check would sit on index hot paths).
extern constinit thread_local MetricsShard* tl_shard;
// Slow path: allocates/reuses a registry-owned shard for this thread and
// installs it in tl_shard. Never returns nullptr.
MetricsShard* AcquireShard();

inline void Bump(std::atomic<uint64_t>& c, uint64_t n) {
  // Single-writer increment: relaxed load+store lowers to a plain add.
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}
}  // namespace detail

inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);

inline MetricsShard* Shard() {
  MetricsShard* s = detail::tl_shard;
  return s != nullptr ? s : detail::AcquireShard();
}

// The hot-path counter bump: one relaxed load + predicted branch when the
// gate is off; a TLS pointer read and a plain add when on.
inline void Add(Counter c, uint64_t n = 1) {
  if (!Enabled()) {
    return;
  }
  detail::Bump(Shard()->counters[static_cast<size_t>(c)], n);
}

// Records one operation's latency in both clocks. Callers pass wall_ns
// deltas derived from metrics::WallNowNs() (the sanctioned shim) only.
inline void RecordOp(OpKind k, uint64_t virtual_ns, uint64_t wall_ns) {
  if (!Enabled()) {
    return;
  }
  MetricsShard* s = Shard();
  s->op_virtual[static_cast<size_t>(k)].Record(virtual_ns);
  s->op_wall[static_cast<size_t>(k)].Record(wall_ns);
}

// Merged totals of every shard (base semantics: shards of dead threads are
// retained until Reset). Exact when quiesced; see file header.
MetricsSnapshot Snapshot();

// Zeroes every shard (live and retired). Quiesce writers first for exact
// semantics. Shards are never freed — TLS pointers in live threads stay
// valid — so NumShards() is monotone within a process modulo reuse.
void Reset();

// Number of shards ever registered and not reused; 0 until the first
// enabled record. The disabled gate must never register a shard.
size_t NumShards();

}  // namespace cclbt::metrics

#endif  // SRC_METRICS_METRICS_H_
