// The repo's one log-bucketed latency histogram (values are ns, but the
// class is unit-agnostic). Used by the metrics registry for per-op-type
// latency in virtual and wall time, by the bench driver for RunResult
// percentiles, and by bench_fig12's latency-distribution rows.
//
// Bucketing: 32 sub-buckets per power of two (kSubBucketBits = 5), values
// < 32 get exact unit buckets. Relative quantization error is bounded by
// one sub-bucket width (~3.2%); recording is O(1).
//
// Boundedness: every bucket, including the last one, has a well-defined
// upper bound — BucketUpperBound() saturates at kMaxTrackable instead of
// letting the top bucket's bound wrap around uint64 (the shift for bucket
// 2047 is 2^68-1, which overflowed in the previous src/common
// implementation and made the max bucket effectively open-ended).
// Percentile() additionally clamps to the observed [Min, Max], so a rank
// landing in the top bucket reports the recorded maximum, never a wrapped
// or sentinel value.
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace cclbt::metrics {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  Histogram();

  void Record(uint64_t value);

  // Merge another histogram (e.g. per-shard histograms at snapshot time).
  void Merge(const Histogram& other);

  // Windowed view: this histogram minus an earlier snapshot of the same
  // recording stream (bucket-wise subtraction; `earlier` must be a prefix —
  // every bucket count <= this one's). The delta's Min()/Max() are the
  // quantized bucket bounds of its lowest/highest non-empty bucket, since
  // exact extremes of a window are not recoverable from cumulative state.
  Histogram Delta(const Histogram& earlier) const;

  // Value at percentile p in [0, 100]: the upper bound of the bucket holding
  // the requested rank, clamped into [Min(), Max()]. 0 for an empty
  // histogram.
  uint64_t Percentile(double p) const;

  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return count_ == 0 ? 0 : max_; }
  uint64_t Count() const { return count_; }
  uint64_t Sum() const { return sum_; }
  double Mean() const;

  void Reset();

  // Largest value with a non-saturated bucket bound; larger values land in
  // the top bucket and report through the [Min, Max] clamp.
  static uint64_t MaxTrackable();

  static int BucketFor(uint64_t value);
  // Inclusive upper bound of `bucket`; saturates at MaxTrackable() for the
  // top bucket instead of overflowing.
  static uint64_t BucketUpperBound(int bucket);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace cclbt::metrics

#endif  // SRC_METRICS_HISTOGRAM_H_
