// .pmmetrics — the JSON-lines time-series interchange format between a bench
// run and tools/pmctl (`top` / `series`). One file per measured run, three
// record types, one JSON object per line:
//
//   {"type":"header", ...}    run identity: label, epoch_ns, threads, ops,
//                             plus the op-kind / counter / component name
//                             tables that index the epoch arrays
//   {"type":"epoch", ...}     one per virtual-time epoch: windowed pmsim
//                             stats (user/xpbuffer/media bytes -> windowed
//                             XBI/CLI), windowed media bytes by component,
//                             windowed per-op-kind latency percentiles
//                             (virtual ns), cumulative XPBuffer occupancy /
//                             insertion / eviction gauges, windowed registry
//                             counters, and sampled index gauges
//   {"type":"summary", ...}   end-of-run totals incl. the WALL-time latency
//                             histograms
//
// Determinism contract: header and epoch records contain virtual-time /
// count data only and are bit-identical run-to-run for a deterministic
// RunConfig (the CI metrics-determinism gate diffs them). Everything derived
// from wall time lives exclusively in the summary record.
//
// Invariant (extends the PR 2 sum-to-total contract to every window): in
// every epoch record, sum(comp_bytes) == media_write_bytes. `pmctl series`
// exits nonzero when any epoch violates it.
#ifndef SRC_METRICS_PMMETRICS_H_
#define SRC_METRICS_PMMETRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/metrics.h"

namespace cclbt::metrics {

inline constexpr int kPmMetricsVersion = 1;

struct PmMetricsHeader {
  std::string label;
  // Persistence-domain backend slug of the run's device ("adr" / "eadr" /
  // "cxl"; empty in dumps from writers that predate backends).
  std::string backend;
  uint64_t epoch_ns = 0;
  uint64_t threads = 0;
  uint64_t ops = 0;
  // Name tables indexing the epoch-record arrays, in serialized order.
  std::vector<std::string> op_kinds;
  std::vector<std::string> counters;
  std::vector<std::string> components;
};

// One virtual-time window. All byte/count fields except the xpbuf_* gauges
// are windowed deltas over [previous epoch end, t_ns]; xpbuf_* are
// cumulative values sampled at t_ns (windowed eviction rate = delta of
// consecutive records).
struct EpochRecord {
  uint64_t index = 0;
  uint64_t t_ns = 0;  // window end, virtual time
  std::vector<uint64_t> ops;      // per op kind
  std::vector<uint64_t> p50_ns;   // windowed virtual-latency percentiles
  std::vector<uint64_t> p99_ns;   //   (0 where the window had no ops of
  std::vector<uint64_t> p999_ns;  //    that kind)
  uint64_t user_bytes = 0;
  uint64_t xpbuffer_write_bytes = 0;
  uint64_t media_write_bytes = 0;
  uint64_t media_read_bytes = 0;
  uint64_t line_flushes = 0;
  uint64_t fences = 0;
  std::vector<uint64_t> comp_bytes;  // windowed media bytes per component
  uint64_t xpbuf_resident = 0;       // cumulative gauges at t_ns
  uint64_t xpbuf_insertions = 0;
  uint64_t xpbuf_evictions = 0;
  std::vector<uint64_t> counters;  // windowed registry counters
  std::vector<std::pair<std::string, uint64_t>> gauges;  // sampled index gauges

  // Windowed amplification (paper §2.1, per epoch instead of endpoint).
  double WindowCli() const {
    return user_bytes == 0 ? 0.0
                           : static_cast<double>(xpbuffer_write_bytes) /
                                 static_cast<double>(user_bytes);
  }
  double WindowXbi() const {
    return user_bytes == 0
               ? 0.0
               : static_cast<double>(media_write_bytes) / static_cast<double>(user_bytes);
  }
  uint64_t TotalOps() const {
    uint64_t n = 0;
    for (uint64_t v : ops) {
      n += v;
    }
    return n;
  }
  uint64_t ComponentBytesTotal() const {
    uint64_t n = 0;
    for (uint64_t v : comp_bytes) {
      n += v;
    }
    return n;
  }
};

using EpochSeries = std::vector<EpochRecord>;

// Per-op-kind latency digest in the summary record.
struct OpLatencySummary {
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};

struct PmMetricsSummary {
  uint64_t elapsed_virtual_ns = 0;
  std::vector<OpLatencySummary> virt;  // per op kind, deterministic
  std::vector<OpLatencySummary> wall;  // per op kind, host wall time
};

// A parsed .pmmetrics file (tools/pmctl).
struct PmMetricsFile {
  PmMetricsHeader header;
  EpochSeries epochs;
  bool has_summary = false;
  PmMetricsSummary summary;
};

// --- serialization (one "...\n" JSON line each; key order is fixed so the
// deterministic records diff bit-identically) -------------------------------
std::string SerializeHeader(const PmMetricsHeader& header);
std::string SerializeEpoch(const EpochRecord& epoch);
// All epoch lines concatenated — the deterministic payload the CI gate and
// the snapshot-determinism tests compare.
std::string SerializeEpochSeries(const EpochSeries& series);
std::string SerializeSummary(const PmMetricsSummary& summary);

OpLatencySummary SummarizeHistogram(const Histogram& h);

// --- parsing ----------------------------------------------------------------
// Parses a .pmmetrics file. Returns false and fills *error on malformed
// input (unknown record types are skipped for forward compatibility).
bool ReadPmMetricsFile(const std::string& path, PmMetricsFile* out, std::string* error);

}  // namespace cclbt::metrics

#endif  // SRC_METRICS_PMMETRICS_H_
