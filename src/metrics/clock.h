// The sanctioned wall-clock shim for metric recording (lint rule R6).
//
// Everything measured in this repo runs on pmsim virtual time, and the
// determinism CI gate diffs virtual-metric tails bit-for-bit — so wall-clock
// reads are banned from src/ and bench/ (lint R2). The metrics layer is the
// one place that legitimately wants both: latency histograms are recorded in
// virtual AND wall time so modeled and host behaviour can be compared. All
// wall reads in metrics recording go through WallNowNs() here; lint R6
// forbids direct clock reads anywhere else in src/metrics/, and everything
// derived from wall time is quarantined into the .pmmetrics summary record,
// never the deterministic epoch series.
#ifndef SRC_METRICS_CLOCK_H_
#define SRC_METRICS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace cclbt::metrics {

// Monotonic host time in ns. Never feeds virtual-time accounting or the
// epoch series; summary-record wall histograms only.
inline uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace cclbt::metrics

#endif  // SRC_METRICS_CLOCK_H_
