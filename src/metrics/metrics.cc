#include "src/metrics/metrics.h"

#include <memory>
#include <vector>

#include "src/common/lock.h"

namespace cclbt::metrics {

namespace detail {

std::atomic<bool> g_enabled{false};
constinit thread_local MetricsShard* tl_shard = nullptr;

namespace {

// Registry of shards. Shards are heap-allocated once and never freed (stable
// addresses for live TLS pointers); a shard whose thread exited goes on the
// free list and is handed to the next new thread — its counts are retained,
// so totals are conserved across worker lifecycles.
struct Registry {
  sync::Mutex mu{"metrics.registry"};
  std::vector<std::unique_ptr<MetricsShard>> shards GUARDED_BY(mu);
  std::vector<MetricsShard*> free_list GUARDED_BY(mu);
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: shards outlive any TLS dtor
  return *r;
}

// Thread-exit hook: only constructed on the shard-acquire slow path, so its
// TLS guard never appears on record sites.
struct ShardReleaser {
  MetricsShard* shard = nullptr;
  ~ShardReleaser() {
    if (shard == nullptr) {
      return;
    }
    Registry& r = TheRegistry();
    sync::LockGuard<sync::Mutex> guard(r.mu);
    r.free_list.push_back(shard);
  }
};
thread_local ShardReleaser tl_releaser;

}  // namespace

MetricsShard* AcquireShard() {
  Registry& r = TheRegistry();
  MetricsShard* shard = nullptr;
  {
    sync::LockGuard<sync::Mutex> guard(r.mu);
    if (!r.free_list.empty()) {
      shard = r.free_list.back();
      r.free_list.pop_back();
    } else {
      r.shards.push_back(std::make_unique<MetricsShard>());
      shard = r.shards.back().get();
    }
  }
  tl_shard = shard;
  tl_releaser.shard = shard;
  return shard;
}

}  // namespace detail

const char* CounterName(Counter c) {
  switch (c) {
#define CCLBT_METRICS_NAME(name, wire) \
  case Counter::name:                  \
    return wire;
    CCLBT_METRICS_COUNTERS(CCLBT_METRICS_NAME)
#undef CCLBT_METRICS_NAME
    case Counter::kCount:
      break;
  }
  return "?";
}

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kUpsert:
      return "upsert";
    case OpKind::kLookup:
      return "lookup";
    case OpKind::kScan:
      return "scan";
    case OpKind::kRecover:
      return "recover";
    case OpKind::kCount:
      break;
  }
  return "?";
}

void SetEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

MetricsSnapshot Snapshot() {
  auto& r = detail::TheRegistry();
  MetricsSnapshot s;
  sync::LockGuard<sync::Mutex> guard(r.mu);
  for (const auto& shard : r.shards) {
    for (int c = 0; c < kNumCounters; c++) {
      s.counters[c] += shard->counters[c].load(std::memory_order_relaxed);
    }
    for (int k = 0; k < kNumOpKinds; k++) {
      s.op_virtual[k].Merge(shard->op_virtual[k]);
      s.op_wall[k].Merge(shard->op_wall[k]);
    }
  }
  return s;
}

void Reset() {
  auto& r = detail::TheRegistry();
  sync::LockGuard<sync::Mutex> guard(r.mu);
  for (const auto& shard : r.shards) {
    for (int c = 0; c < kNumCounters; c++) {
      shard->counters[c].store(0, std::memory_order_relaxed);
    }
    for (int k = 0; k < kNumOpKinds; k++) {
      shard->op_virtual[k].Reset();
      shard->op_wall[k].Reset();
    }
  }
}

size_t NumShards() {
  auto& r = detail::TheRegistry();
  sync::LockGuard<sync::Mutex> guard(r.mu);
  return r.shards.size();
}

}  // namespace cclbt::metrics
