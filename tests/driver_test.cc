// Tests for the benchmark driver: determinism of the virtual-time model,
// workload composition, value/key indirection paths, latency collection,
// and the expected qualitative relations the paper's claims rest on.
#include <string>

#include <gtest/gtest.h>

#include "src/bench/driver.h"

namespace cclbt::bench {
namespace {

RunConfig SmallConfig(OpType op = OpType::kInsert) {
  RunConfig config;
  config.threads = 8;
  config.warm_keys = 20'000;
  config.ops = 20'000;
  config.op = op;
  return config;
}

// Deterministic tree config: the background GC thread runs on wall-clock
// time and would make run-to-run counters nondeterministic.
IndexConfig QuietTree() {
  IndexConfig config;
  config.tree.background_gc = false;
  return config;
}

TEST(Driver, DeterministicAcrossRuns) {
  RunConfig config = SmallConfig();
  RunResult a = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  RunResult b = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_DOUBLE_EQ(a.mops, b.mops);
  EXPECT_EQ(a.stats.media_write_bytes, b.stats.media_write_bytes);
  EXPECT_EQ(a.stats.line_flushes, b.stats.line_flushes);
}

TEST(Driver, SeedChangesWorkloadButNotScaleOfResults) {
  RunConfig a_config = SmallConfig(OpType::kUpdate);
  RunConfig b_config = SmallConfig(OpType::kUpdate);
  b_config.seed = 12345;
  RunResult a = RunIndexWorkload("fptree", a_config, {}, 1ULL << 30);
  RunResult b = RunIndexWorkload("fptree", b_config, {}, 1ULL << 30);
  EXPECT_NE(a.stats.media_write_bytes, b.stats.media_write_bytes);
  EXPECT_NEAR(a.mops, b.mops, a.mops * 0.2);
}

TEST(Driver, MoreThreadsDoNotReduceTotalWorkAccounting) {
  RunConfig config = SmallConfig();
  config.threads = 1;
  RunResult one = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  config.threads = 32;
  RunResult many = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_EQ(one.stats.user_bytes, many.stats.user_bytes);
  // Throughput should not degrade catastrophically with threads.
  EXPECT_GT(many.mops, one.mops * 0.8);
}

TEST(Driver, LatencyCollectionCoversAllOps) {
  RunConfig config = SmallConfig();
  config.collect_latency = true;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_EQ(result.latency.Count(), config.ops);
  EXPECT_GT(result.latency.Percentile(50), 0u);
  EXPECT_LE(result.latency.Percentile(50), result.latency.Percentile(99.9));
}

TEST(Driver, ZipfianConcentratesWritesOnFewerXplines) {
  RunConfig uniform = SmallConfig();
  RunConfig zipf = SmallConfig();
  zipf.dist = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  RunResult u = RunIndexWorkload("fptree", uniform, {}, 1ULL << 30);
  RunResult z = RunIndexWorkload("fptree", zipf, {}, 1ULL << 30);
  // Hot keys combine in the XPBuffer: Zipfian XBI must be lower (Fig 3 vs 4).
  EXPECT_LT(z.xbi_amplification, u.xbi_amplification);
}

TEST(Driver, LargeValuesGoOutOfBand) {
  RunConfig config = SmallConfig();
  config.value_bytes = 128;
  config.warm_keys = 5'000;
  config.ops = 5'000;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  // Value blobs dominate user bytes; amplification must drop well below the
  // 8 B-value case (paper Fig. 15(c)'s rationale).
  EXPECT_EQ(result.stats.user_bytes, config.ops * (8 + 128));
  EXPECT_LT(result.xbi_amplification, 6.0);
}

TEST(Driver, VariableKeysChargeBlobReads) {
  RunConfig plain = SmallConfig();
  plain.warm_keys = 5'000;
  plain.ops = 5'000;
  RunConfig varkey = plain;
  varkey.key_bytes = 64;
  RunResult p = RunIndexWorkload("fptree", plain, {}, 1ULL << 30);
  RunResult v = RunIndexWorkload("fptree", varkey, {}, 1ULL << 30);
  EXPECT_LT(v.mops, p.mops);  // pointer chasing slows everyone (Fig 15(b))
}

TEST(Driver, ScanOpsProduceNoUserWriteBytes) {
  RunConfig config = SmallConfig(OpType::kScan);
  config.ops = 1'000;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_EQ(result.stats.user_bytes, 0u);
  EXPECT_GT(result.mops, 0.0);
}

TEST(Driver, YcsbMixRunsAllOpTypes) {
  RunConfig config = SmallConfig();
  config.mix = &kYcsbInsertIntensive;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  // ~75% of ops write 16 B of user data.
  double writes = static_cast<double>(result.stats.user_bytes) / 16.0;
  EXPECT_NEAR(writes / static_cast<double>(config.ops), 0.75, 0.05);
}

TEST(Driver, OsParallelModeProducesSaneResults) {
  RunConfig config = SmallConfig();
  config.threads = 4;
  config.os_parallel = true;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_GT(result.mops, 0.0);
  EXPECT_EQ(result.stats.user_bytes, config.ops * 16);
}

TEST(Driver, OsParallelWarnsOnDroppedSequentialFeatures) {
  // gc_epoch_ops and the metrics epoch series both require sequential
  // scheduling; requesting them under os_parallel used to be silently
  // ignored. The run must now surface one diagnostic per dropped feature.
  RunConfig config = SmallConfig();
  config.threads = 4;
  config.os_parallel = true;
  config.gc_epoch_ops = 1'000;
  config.metrics = true;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  ASSERT_EQ(result.warnings.size(), 2u);
  EXPECT_NE(result.warnings[0].find("gc_epoch_ops"), std::string::npos);
  EXPECT_NE(result.warnings[1].find("metrics epoch"), std::string::npos);
  EXPECT_TRUE(result.epochs.empty());

  // The same config sequentially is fully honored: no warnings, epochs
  // collected.
  config.os_parallel = false;
  RunResult sequential = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_TRUE(sequential.warnings.empty());
  EXPECT_FALSE(sequential.epochs.empty());
}

TEST(Driver, PresetKeysDriveWarmAndMeasure) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 1; i <= 40'000; i++) {
    keys.push_back(i * 3);
  }
  RunConfig config = SmallConfig();
  config.preset_keys = &keys;
  RunResult result = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  EXPECT_GT(result.mops, 0.0);
}

// The two headline claims of the paper as driver-level properties.
TEST(Driver, CclBeatsUnsortedLeafTreesOnXbi) {
  RunConfig config = SmallConfig();
  config.threads = 32;
  RunResult ccl = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  RunResult fp = RunIndexWorkload("fptree", config, {}, 512 << 20);
  EXPECT_LT(ccl.xbi_amplification, fp.xbi_amplification * 0.7);
}

TEST(Driver, FlatstoreScansFarSlowerThanCcl) {
  RunConfig config = SmallConfig(OpType::kScan);
  config.ops = 2'000;
  config.scan_len = 100;
  RunResult ccl = RunIndexWorkload("cclbtree", config, QuietTree(), 1ULL << 30);
  RunResult flat = RunIndexWorkload("flatstore", config, {}, 1ULL << 30);
  EXPECT_GT(ccl.mops, flat.mops * 3.0);
}

}  // namespace
}  // namespace cclbt::bench
