// Unit tests for the PM allocation layer (pool, slab allocator, log arena,
// value store), including recovery of allocator state.
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pmem/log_arena.h"
#include "src/pmem/pool.h"
#include "src/pmem/slab_allocator.h"
#include "src/pmem/value_store.h"

namespace cclbt::pmem {
namespace {

pmsim::DeviceConfig TestConfig(size_t pool = 64 << 20) {
  pmsim::DeviceConfig config;
  config.pool_bytes = pool;
  config.num_sockets = 2;
  config.dimms_per_socket = 2;
  return config;
}

TEST(PmPool, CreateFormatsSuperblock) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  EXPECT_EQ(pool->AllocatedBytes(), 0u);
  void* a = pool->AllocateRaw(1000, 0, pmsim::StreamTag::kOther);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool->AllocatedBytes(), 1024u);  // 256 B aligned
}

TEST(PmPool, AllocationsAreXplineAligned) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  for (int i = 0; i < 10; i++) {
    void* p = pool->AllocateRaw(100, 0, pmsim::StreamTag::kOther);
    EXPECT_EQ(pool->ToOffset(p) % 256, 0u);
  }
}

TEST(PmPool, SocketRegionsAreDisjoint) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  void* s0 = pool->AllocateRaw(256, 0, pmsim::StreamTag::kOther);
  void* s1 = pool->AllocateRaw(256, 1, pmsim::StreamTag::kOther);
  EXPECT_EQ(device.SocketOf(pool->ToOffset(s0)), 0);
  EXPECT_EQ(device.SocketOf(pool->ToOffset(s1)), 1);
}

TEST(PmPool, ExhaustionReturnsNull) {
  pmsim::PmDevice device(TestConfig(8 << 20));
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  // Socket 0 region is 4 MB; a 8 MB request cannot fit.
  EXPECT_EQ(pool->AllocateRaw(8 << 20, 0, pmsim::StreamTag::kOther), nullptr);
}

TEST(PmPool, AppRootsPersistAcrossReopen) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  uint64_t offset;
  {
    auto pool = PmPool::Create(device);
    void* p = pool->AllocateRaw(256, 0, pmsim::StreamTag::kOther);
    offset = pool->ToOffset(p);
    pool->SetAppRoot(3, offset);
  }
  auto reopened = PmPool::Open(device);
  EXPECT_EQ(reopened->GetAppRoot(3), offset);
  EXPECT_EQ(reopened->GetAppRoot(0), 0u);
}

TEST(PmPool, BumpPointerSurvivesCrash) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  void* a = pool->AllocateRaw(256, 0, pmsim::StreamTag::kOther);
  device.Crash();
  auto reopened = PmPool::Open(device);
  void* b = reopened->AllocateRaw(256, 0, pmsim::StreamTag::kOther);
  EXPECT_NE(a, b);  // never hand out the same region twice
}

// --- superblock validation (structured PoolOpenError diagnostics) -----------

// Mirrors pool.cc's HeaderChecksum so tests can re-seal a header after
// deliberately corrupting a checksummed field.
uint64_t SealHeader(const PoolRoot& root) {
  uint64_t h = Mix64(root.magic);
  h = Mix64(h ^ root.format_version);
  h = Mix64(h ^ root.pool_bytes);
  h = Mix64(h ^ root.num_sockets);
  return h;
}

TEST(PmPool, OpenRejectsUnformattedDevice) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kBadMagic);
  EXPECT_FALSE(error.message.empty());
}

TEST(PmPool, OpenRejectsCorruptMagic) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  reinterpret_cast<PoolRoot*>(device.base())->magic ^= 0x1;
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kBadMagic);
}

TEST(PmPool, OpenRejectsUnsupportedVersion) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  reinterpret_cast<PoolRoot*>(device.base())->format_version = kPoolFormatVersion + 1;
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kBadVersion);
}

TEST(PmPool, OpenRejectsCorruptChecksum) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  reinterpret_cast<PoolRoot*>(device.base())->header_checksum ^= 0xff;
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kBadChecksum);
}

TEST(PmPool, OpenRejectsGeometryMismatch) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  // A validly-sealed header from a differently-sized pool: the checksum
  // passes but the geometry no longer matches this device.
  auto* root = reinterpret_cast<PoolRoot*>(device.base());
  root->pool_bytes = 128 << 20;
  root->header_checksum = SealHeader(*root);
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kGeometryMismatch);
}

TEST(PmPool, OpenRejectsCorruptBumpPointer) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  auto* root = reinterpret_cast<PoolRoot*>(device.base());
  root->bump_offset[0] = TestConfig().pool_bytes * 2;  // beyond its region
  PoolOpenError error;
  EXPECT_EQ(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kCorruptBump);
  EXPECT_FALSE(error.message.empty());
}

TEST(PmPool, OpenSucceedsAfterCleanShutdownAndAfterCrash) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  PmPool::Create(device);
  PoolOpenError error;
  EXPECT_NE(PmPool::Open(device, &error), nullptr);
  EXPECT_EQ(error.code, PoolOpenError::Code::kNone);
  device.Crash();
  EXPECT_NE(PmPool::Open(device, &error), nullptr);
}

TEST(SlabAllocator, AllocateFreeReuse) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  SlabAllocator::Options options;
  options.slot_bytes = 256;
  options.slots_per_chunk = 16;
  auto slab = SlabAllocator::Create(*pool, options);
  void* a = slab->Allocate(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(slab->allocated_slots(), 1u);
  slab->Free(a);
  EXPECT_EQ(slab->allocated_slots(), 0u);
  void* b = slab->Allocate(0);
  EXPECT_EQ(a, b);  // LIFO reuse
}

TEST(SlabAllocator, GrowsByChunks) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  SlabAllocator::Options options;
  options.slot_bytes = 256;
  options.slots_per_chunk = 4;
  auto slab = SlabAllocator::Create(*pool, options);
  std::set<void*> slots;
  for (int i = 0; i < 10; i++) {
    slots.insert(slab->Allocate(0));
  }
  EXPECT_EQ(slots.size(), 10u);
  EXPECT_EQ(slab->total_chunk_bytes(), 3u * 4 * 256);
}

TEST(SlabAllocator, SocketLocalAllocation) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  SlabAllocator::Options options;
  auto slab = SlabAllocator::Create(*pool, options);
  void* s0 = slab->Allocate(0);
  void* s1 = slab->Allocate(1);
  EXPECT_EQ(device.SocketOf(pool->ToOffset(s0)), 0);
  EXPECT_EQ(device.SocketOf(pool->ToOffset(s1)), 1);
}

TEST(SlabAllocator, RecoverRebuildsFreeLists) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  SlabAllocator::Options options;
  options.slots_per_chunk = 8;
  uint64_t registry;
  void* live_slot = nullptr;
  {
    auto slab = SlabAllocator::Create(*pool, options);
    registry = slab->registry_offset();
    live_slot = slab->Allocate(0);
    // Mark liveness in the slot itself, persist so it survives the crash.
    *static_cast<uint64_t*>(live_slot) = 0xDEADBEEF;
    pmsim::Persist(live_slot, 8);
    slab->Allocate(0);  // allocated but never marked live -> leaked until recovery
  }
  device.Crash();
  auto slab = SlabAllocator::Open(*pool, registry, options);
  slab->Recover([](const void* slot) {
    return *static_cast<const uint64_t*>(slot) == 0xDEADBEEF;
  });
  EXPECT_EQ(slab->allocated_slots(), 1u);
  // 7 slots are free again; allocating all of them never returns live_slot.
  for (int i = 0; i < 7; i++) {
    void* p = slab->Allocate(0);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(p, live_slot);
  }
}

TEST(LogArena, ChunkRecycling) {
  pmsim::PmDevice device(TestConfig(128 << 20));
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  auto arena = LogArena::Create(*pool);
  void* a = arena->AllocChunk(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena->total_chunks(), 1u);
  arena->FreeChunk(a);
  EXPECT_EQ(arena->free_chunks(), 1u);
  void* b = arena->AllocChunk(1);  // free list wins over carving
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena->total_chunks(), 1u);
}

TEST(LogArena, RegistrySurvivesCrash) {
  pmsim::PmDevice device(TestConfig(128 << 20));
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  uint64_t registry;
  {
    auto arena = LogArena::Create(*pool);
    registry = arena->registry_offset();
    arena->AllocChunk(0);
    arena->AllocChunk(0);
  }
  device.Crash();
  auto arena = LogArena::Open(*pool, registry);
  int chunks = 0;
  arena->ForEachChunk([&chunks](void*) { chunks++; });
  EXPECT_EQ(chunks, 2);
}

TEST(ValueStore, RoundTrip) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  ValueStore store(*pool);
  std::string payload = "variable size value payload";
  auto handle = store.Append(std::as_bytes(std::span(payload.data(), payload.size())), 0);
  EXPECT_TRUE(IsIndirect(handle));
  auto read = store.Read(handle);
  ASSERT_EQ(read.size(), payload.size());
  EXPECT_EQ(std::memcmp(read.data(), payload.data(), payload.size()), 0);
}

TEST(ValueStore, HandlesSurviveCrash) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  ValueStore store(*pool);
  std::string payload(300, 'x');
  auto handle = store.Append(std::as_bytes(std::span(payload.data(), payload.size())), 0);
  device.Crash();
  auto read = store.Read(handle);
  ASSERT_EQ(read.size(), payload.size());
  EXPECT_EQ(std::memcmp(read.data(), payload.data(), payload.size()), 0);
}

TEST(ValueStore, DistinctHandles) {
  pmsim::PmDevice device(TestConfig());
  pmsim::ThreadContext ctx(device, 0);
  auto pool = PmPool::Create(device);
  ValueStore store(*pool);
  std::set<uint64_t> handles;
  std::string payload(64, 'y');
  for (int i = 0; i < 100; i++) {
    handles.insert(store.Append(std::as_bytes(std::span(payload.data(), payload.size())), i % 2));
  }
  EXPECT_EQ(handles.size(), 100u);
}

}  // namespace
}  // namespace cclbt::pmem
