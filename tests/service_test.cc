// Tests for the sharded KV service front-end (src/service, DESIGN.md §15):
// socket placement of shards, determinism of the open-loop run, admission
// control under overload, and crash consistency across shard queues (no
// acked-then-lost write). Also covers this PR's satellite fixes at the
// layers the service depends on: Runtime::SocketForWorker placement
// defaults and the Reopen value-store leak accounting.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ccl_btree.h"
#include "src/kvindex/runtime.h"
#include "src/metrics/pmmetrics.h"
#include "src/pmsim/crash_injector.h"
#include "src/service/service.h"

namespace cclbt::service {
namespace {

kvindex::RuntimeOptions SmallRuntime() {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = 256 << 20;
  options.device.num_sockets = 2;
  options.device.dimms_per_socket = 2;
  return options;
}

ServiceConfig SmallService(int shards) {
  ServiceConfig config;
  config.shards = shards;
  config.queue_capacity = 32;
  config.batch_ops = 4;
  return config;
}

OpenLoopConfig SmallWorkload(double offered_mops) {
  OpenLoopConfig w;
  w.ops = 6'000;
  w.warm_keys = 3'000;
  w.offered_mops = offered_mops;
  w.mix = &kYcsbInsertIntensive;
  w.seed = 99;
  return w;
}

// --- satellite: SocketForWorker placement defaults --------------------------

TEST(Runtime, SocketForWorkerRoundRobinsWhenCoreCountUnknown) {
  kvindex::Runtime rt(SmallRuntime());
  // 2 sockets, no cores_per_socket, no explicit threads_per_socket: a
  // 4-worker run must use both sockets, not pile onto socket 0 behind a
  // fill-first threshold it never crosses.
  EXPECT_EQ(rt.SocketForWorker(0), 0);
  EXPECT_EQ(rt.SocketForWorker(1), 1);
  EXPECT_EQ(rt.SocketForWorker(2), 0);
  EXPECT_EQ(rt.SocketForWorker(3), 1);
}

TEST(Runtime, SocketForWorkerFillsFirstWithExplicitCoreCount) {
  kvindex::Runtime rt(SmallRuntime());
  // Explicit threads_per_socket keeps the paper's fill-first pinning.
  EXPECT_EQ(rt.SocketForWorker(0, 48), 0);
  EXPECT_EQ(rt.SocketForWorker(47, 48), 0);
  EXPECT_EQ(rt.SocketForWorker(48, 48), 1);
  EXPECT_EQ(rt.SocketForWorker(95, 48), 1);
}

TEST(Runtime, SocketForWorkerUsesDeviceCoresPerSocket) {
  kvindex::RuntimeOptions options = SmallRuntime();
  options.device.cores_per_socket = 2;
  kvindex::Runtime rt(options);
  EXPECT_EQ(rt.SocketForWorker(0), 0);
  EXPECT_EQ(rt.SocketForWorker(1), 0);
  EXPECT_EQ(rt.SocketForWorker(2), 1);
  EXPECT_EQ(rt.SocketForWorker(3), 1);
}

// --- shard placement ---------------------------------------------------------

TEST(Service, ShardsPinRoundRobinAcrossSockets) {
  kvindex::Runtime rt(SmallRuntime());
  ShardedKvService svc(rt, SmallService(4));
  for (int s = 0; s < 4; s++) {
    EXPECT_EQ(svc.shard_socket(s), s % 2) << "shard " << s;
  }
}

TEST(Service, HashAndRangePartitionsCoverAllShards) {
  for (Partition partition : {Partition::kHash, Partition::kRange}) {
    kvindex::Runtime rt(SmallRuntime());
    ServiceConfig config = SmallService(4);
    config.partition = partition;
    ShardedKvService svc(rt, config);
    OpenLoopConfig w = SmallWorkload(2.0);
    svc.Warm(w);
    ServiceResult result = svc.Run(w);
    ASSERT_EQ(result.shards.size(), 4u);
    for (const ShardStats& sh : result.shards) {
      EXPECT_GT(sh.admitted, 0u) << "partition " << static_cast<int>(partition);
    }
  }
}

// --- determinism -------------------------------------------------------------

ServiceResult RunFresh(double offered_mops) {
  kvindex::Runtime rt(SmallRuntime());
  ShardedKvService svc(rt, SmallService(2));
  OpenLoopConfig w = SmallWorkload(offered_mops);
  svc.Warm(w);
  return svc.Run(w);
}

TEST(Service, EpochSeriesAndShedCountsAreBitIdenticalAcrossRuns) {
  ServiceResult a = RunFresh(4.0);
  ServiceResult b = RunFresh(4.0);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_FALSE(a.epochs.empty());
  // The serialized epoch series is the CI determinism payload: every field
  // (windowed stats, percentiles, counters, gauges) must match byte for byte.
  EXPECT_EQ(metrics::SerializeEpochSeries(a.epochs), metrics::SerializeEpochSeries(b.epochs));
  for (int k = 0; k < metrics::kNumOpKinds; k++) {
    EXPECT_EQ(a.metrics_snapshot.op_virtual[k].Count(), b.metrics_snapshot.op_virtual[k].Count());
    EXPECT_EQ(a.metrics_snapshot.op_virtual[k].Percentile(99),
              b.metrics_snapshot.op_virtual[k].Percentile(99));
  }
}

// --- admission control -------------------------------------------------------

TEST(Service, OverloadShedsInsteadOfGrowingQueues) {
  // Offered load far beyond anything the simulated device can serve.
  ServiceResult result = RunFresh(1000.0);
  EXPECT_GT(result.shed, 0u);
  EXPECT_GT(result.shed_rate, 0.5);
  EXPECT_EQ(result.completed, result.admitted);  // every admitted request acked
  for (const ShardStats& sh : result.shards) {
    EXPECT_LE(sh.max_queue_depth, 32u);  // bounded by queue_capacity
  }
  uint64_t admits =
      result.metrics_snapshot.counter(metrics::Counter::kServiceAdmits);
  uint64_t sheds = result.metrics_snapshot.counter(metrics::Counter::kServiceSheds);
  EXPECT_EQ(admits, result.admitted);
  EXPECT_EQ(sheds, result.shed);
  EXPECT_EQ(admits + sheds, result.offered);
}

TEST(Service, LightLoadShedsLittleAndKeepsLatencyNearService) {
  ServiceResult light = RunFresh(1.0);
  ServiceResult heavy = RunFresh(1000.0);
  EXPECT_LT(light.shed_rate, 0.01);
  // Queueing delay dominates under overload: admitted-request p99 latency
  // (arrival -> ack) must be clearly above the light-load p99.
  const metrics::Histogram& hl =
      light.metrics_snapshot.virt(metrics::OpKind::kUpsert);
  const metrics::Histogram& hh =
      heavy.metrics_snapshot.virt(metrics::OpKind::kUpsert);
  ASSERT_GT(hl.Count(), 0u);
  ASSERT_GT(hh.Count(), 0u);
  EXPECT_GT(hh.Percentile(99), hl.Percentile(99));
}

// --- crash consistency across shard queues -----------------------------------

// Looks `key` up in every recovered shard tree; at most one owns it.
bool LookupAnyShard(std::vector<std::unique_ptr<core::CclBTree>>& trees, uint64_t key,
                    uint64_t* value_out) {
  for (auto& tree : trees) {
    if (tree->Lookup(key, value_out)) {
      return true;
    }
  }
  return false;
}

TEST(Service, CrashDuringOpenLoopRunLosesNoAckedWrite) {
  constexpr int kShards = 2;
  ServiceConfig config = SmallService(kShards);
  config.track_acked = true;
  OpenLoopConfig w = SmallWorkload(4.0);
  w.mix = &kYcsbInsertOnly;  // every key written exactly once: acked => must survive
  w.ops = 4'000;
  w.warm_keys = 1'000;

  // Probe pass: count the fences the measured phase executes (the arrival
  // stream and service schedule are deterministic, so per-target replays see
  // the identical fence sequence).
  uint64_t total_fences = 0;
  {
    kvindex::Runtime rt(SmallRuntime());
    auto svc = std::make_unique<ShardedKvService>(rt, config);
    svc->Warm(w);
    pmsim::CrashInjector injector;
    rt.device().SetCrashInjector(&injector);
    injector.Arm(/*fence_target=*/0);  // count-only
    svc->Run(w);
    rt.device().SetCrashInjector(nullptr);
    total_fences = injector.fences_observed();
  }
  ASSERT_GT(total_fences, 100u);

  for (bool torn : {false, true}) {
    for (uint64_t target :
         {total_fences / 4, total_fences / 2, (3 * total_fences) / 4}) {
      SCOPED_TRACE("fence_target=" + std::to_string(target) + " torn=" + std::to_string(torn));
      kvindex::Runtime rt(SmallRuntime());
      auto svc = std::make_unique<ShardedKvService>(rt, config);
      svc->Warm(w);
      pmsim::CrashInjector injector;
      rt.device().SetCrashInjector(&injector);
      injector.Arm(target, torn ? pmsim::CrashInjector::Mode::kTorn
                                : pmsim::CrashInjector::Mode::kClean,
                   /*torn_seed=*/target);
      bool fired = false;
      try {
        svc->Run(w);
      } catch (const pmsim::CrashPointReached&) {
        fired = true;
      }
      rt.device().SetCrashInjector(nullptr);
      ASSERT_TRUE(fired);
      // Settle the media while the shard contexts are still alive (the torn
      // lottery draws from their pending unfenced lines), then tear the
      // service down and restart.
      if (torn) {
        rt.device().CrashTorn(target);
      } else {
        rt.device().Crash();
      }
      std::map<uint64_t, uint64_t> acked = svc->acked();
      svc.reset();
      std::string error;
      ASSERT_TRUE(rt.Reopen(&error)) << error;

      std::vector<std::unique_ptr<core::CclBTree>> trees;
      for (int s = 0; s < kShards; s++) {
        core::TreeOptions options = config.index_config.tree;
        options.root_slot = s;  // shard s persisted its root in app-root slot s
        auto tree =
            std::make_unique<core::CclBTree>(rt, options, kvindex::Lifecycle::kAttach);
        ASSERT_TRUE(tree->Recover(rt, /*recovery_threads=*/1)) << "shard " << s;
        trees.push_back(std::move(tree));
      }
      // Post-recovery reads charge PM latency: they need a live context
      // (recovery itself opens its own).
      pmsim::ThreadContext verify_ctx(rt.device(), /*socket=*/0, /*worker_id=*/0);
      for (int s = 0; s < kShards; s++) {
        EXPECT_TRUE(trees[static_cast<size_t>(s)]->CheckInvariants()) << "shard " << s;
      }

      // Warm keys were fully upserted before the injector armed: durable.
      for (uint64_t i = 0; i < w.warm_keys; i += 17) {
        uint64_t value = 0;
        ASSERT_TRUE(LookupAnyShard(trees, ServiceWarmKey(i), &value)) << "warm key " << i;
        EXPECT_EQ(value, ServiceValue(i));
      }
      // Group-commit contract: a write acked before the crash must never be
      // lost, whichever shard queue it crossed. (Unacked writes may or may
      // not survive — that is the crash matrix's lost-update distinction.)
      EXPECT_FALSE(acked.empty());
      for (const auto& [key, value] : acked) {
        uint64_t got = 0;
        ASSERT_TRUE(LookupAnyShard(trees, key, &got)) << "acked key lost";
        EXPECT_EQ(got, value);
      }
      // Satellite: the value-store gauges ride along on every recovered
      // tree's gauge sample (pmctl top/series visibility of the leak
      // counter).
      std::vector<std::pair<std::string, uint64_t>> gauges;
      trees[0]->SampleGauges(&gauges);
      bool has_leak_gauge = false;
      for (const auto& [name, unused] : gauges) {
        has_leak_gauge |= name == "valuestore_leaked_bytes";
      }
      EXPECT_TRUE(has_leak_gauge);
    }
  }
}

// --- satellite: Reopen value-store leak accounting ---------------------------

TEST(ReopenLeak, ValueStoreRestartLeakIsCountedAndBounded) {
  kvindex::Runtime rt(SmallRuntime());
  constexpr uint64_t kRegionBytes = 1 << 20;  // ValueStore's per-socket region
  const int sockets = rt.options().device.num_sockets;
  std::vector<std::byte> payload(256, std::byte{0x7C});
  uint64_t prev_leaked = 0;
  for (int restart = 1; restart <= 4; restart++) {
    {
      // Reserve a region on each socket so the pre-crash store always has an
      // unused remainder to orphan.
      pmsim::ThreadContext ctx(rt.device(), 0);
      for (int s = 0; s < sockets; s++) {
        rt.values().Append(payload, s);
      }
    }
    EXPECT_GT(rt.values().unused_reserved_bytes(), 0u);
    rt.device().Crash();
    std::string error;
    ASSERT_TRUE(rt.Reopen(&error)) << error;
    uint64_t leaked = rt.values().leaked_bytes();
    // Monotone growth across crash-recover cycles (the silent pre-fix
    // behavior reset this to zero every restart)...
    EXPECT_GT(leaked, prev_leaked) << "restart " << restart;
    // ...bounded by one region per socket per restart.
    EXPECT_LE(leaked, static_cast<uint64_t>(restart) *
                          static_cast<uint64_t>(sockets) * kRegionBytes);
    prev_leaked = leaked;
  }
}

}  // namespace
}  // namespace cclbt::service
