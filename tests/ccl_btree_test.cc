// Tests for CCL-BTree: functional correctness against a model, buffering
// semantics, splits/merges, scans, write amplification behaviour, GC modes,
// crash-consistency and recovery.
#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ccl_btree.h"
#include "tests/crash_util.h"

namespace cclbt::core {
namespace {

using kvindex::KeyValue;
using kvindex::Runtime;
using kvindex::RuntimeOptions;

std::unique_ptr<Runtime> MakeRuntime(size_t pool_bytes = 256 << 20) {
  RuntimeOptions options;
  options.device.pool_bytes = pool_bytes;
  options.device.num_sockets = 2;
  options.device.dimms_per_socket = 2;
  return std::make_unique<Runtime>(options);
}

TreeOptions QuietOptions() {
  TreeOptions options;
  options.background_gc = false;  // tests drive GC explicitly
  return options;
}

class CclBTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rt_ = MakeRuntime();
    tree_ = std::make_unique<CclBTree>(*rt_, QuietOptions());
    ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  }

  std::unique_ptr<Runtime> rt_;
  std::unique_ptr<CclBTree> tree_;
  std::unique_ptr<pmsim::ThreadContext> ctx_;
};

TEST_F(CclBTreeTest, InsertAndLookup) {
  tree_->Upsert(42, 4242);
  uint64_t value = 0;
  EXPECT_TRUE(tree_->Lookup(42, &value));
  EXPECT_EQ(value, 4242u);
  EXPECT_FALSE(tree_->Lookup(43, &value));
}

TEST_F(CclBTreeTest, UpdateOverwrites) {
  tree_->Upsert(7, 1);
  tree_->Upsert(7, 2);
  uint64_t value = 0;
  EXPECT_TRUE(tree_->Lookup(7, &value));
  EXPECT_EQ(value, 2u);
}

TEST_F(CclBTreeTest, BufferAbsorbsNbatchWritesBeforeFlushing) {
  // With N_batch = 2, the first two inserts stay buffered; the third is the
  // trigger write that flushes all three in one batch (§3.2).
  tree_->Upsert(1, 10);
  tree_->Upsert(2, 20);
  EXPECT_EQ(tree_->buffer_flushes(), 0u);
  tree_->Upsert(3, 30);
  EXPECT_EQ(tree_->buffer_flushes(), 1u);
  for (uint64_t k = 1; k <= 3; k++) {
    uint64_t value = 0;
    EXPECT_TRUE(tree_->Lookup(k, &value));
    EXPECT_EQ(value, k * 10);
  }
}

TEST_F(CclBTreeTest, BufferedReadsAreDramHits) {
  tree_->Upsert(5, 55);
  uint64_t value = 0;
  uint64_t hits_before = tree_->dram_hits();
  EXPECT_TRUE(tree_->Lookup(5, &value));
  EXPECT_EQ(tree_->dram_hits(), hits_before + 1);
}

TEST_F(CclBTreeTest, FlushedEntriesStillServeReadsFromBuffer) {
  // After a flush the slots keep mirroring leaf state as a read cache.
  tree_->Upsert(1, 10);
  tree_->Upsert(2, 20);
  tree_->Upsert(3, 30);  // trigger: all flushed; slot 0 now caches (3,30)
  uint64_t hits_before = tree_->dram_hits();
  uint64_t value = 0;
  EXPECT_TRUE(tree_->Lookup(3, &value));
  EXPECT_EQ(value, 30u);
  EXPECT_GT(tree_->dram_hits(), hits_before);
}

TEST_F(CclBTreeTest, DuplicateInBufferIsUpdatedInPlace) {
  tree_->Upsert(9, 1);
  tree_->Upsert(9, 2);  // same key while buffered: no extra slot
  tree_->Upsert(8, 3);
  EXPECT_EQ(tree_->buffer_flushes(), 0u);  // two distinct keys occupy 2 slots
  uint64_t value = 0;
  EXPECT_TRUE(tree_->Lookup(9, &value));
  EXPECT_EQ(value, 2u);
}

TEST_F(CclBTreeTest, RemoveHidesKey) {
  tree_->Upsert(11, 1);
  tree_->Remove(11);
  uint64_t value = 0;
  EXPECT_FALSE(tree_->Lookup(11, &value));
}

TEST_F(CclBTreeTest, RemoveBeforeFlushAndAfterFlush) {
  for (uint64_t k = 1; k <= 20; k++) {
    tree_->Upsert(k, k);
  }
  tree_->FlushAll();
  tree_->Remove(5);   // tombstone of a flushed key
  tree_->Upsert(100, 100);
  tree_->Remove(100);  // tombstone of a buffered key
  uint64_t value = 0;
  EXPECT_FALSE(tree_->Lookup(5, &value));
  EXPECT_FALSE(tree_->Lookup(100, &value));
  EXPECT_TRUE(tree_->Lookup(6, &value));
}

TEST_F(CclBTreeTest, SplitsPreserveAllKeys) {
  const uint64_t kN = 2000;
  for (uint64_t k = 1; k <= kN; k++) {
    tree_->Upsert(k, k + 1000000);
  }
  EXPECT_GT(tree_->splits(), 0u);
  for (uint64_t k = 1; k <= kN; k++) {
    uint64_t value = 0;
    ASSERT_TRUE(tree_->Lookup(k, &value)) << "key " << k;
    EXPECT_EQ(value, k + 1000000);
  }
  EXPECT_TRUE(tree_->CheckInvariants());
}

TEST_F(CclBTreeTest, RandomKeysMatchModel) {
  std::map<uint64_t, uint64_t> model;
  Rng rng(23);
  for (int i = 0; i < 30000; i++) {
    uint64_t key = rng.NextBounded(8000) + 1;
    if (rng.NextBounded(10) < 8) {
      uint64_t value = rng.Next() | 1;
      tree_->Upsert(key, value);
      model[key] = value;
    } else {
      tree_->Remove(key);
      model.erase(key);
    }
  }
  for (uint64_t key = 1; key <= 8000; key++) {
    uint64_t value = 0;
    bool found = tree_->Lookup(key, &value);
    auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << "key " << key;
    if (found) {
      EXPECT_EQ(value, it->second);
    }
  }
  EXPECT_TRUE(tree_->CheckInvariants());
}

TEST_F(CclBTreeTest, ScanReturnsSortedRange) {
  for (uint64_t k = 1; k <= 500; k++) {
    tree_->Upsert(k * 2, k);  // even keys only
  }
  KeyValue out[100];
  size_t n = tree_->Scan(101, 50, out);
  ASSERT_EQ(n, 50u);
  EXPECT_EQ(out[0].key, 102u);
  for (size_t i = 1; i < n; i++) {
    EXPECT_EQ(out[i].key, out[i - 1].key + 2);
  }
}

TEST_F(CclBTreeTest, ScanSeesBufferedUpdatesAndTombstones) {
  for (uint64_t k = 1; k <= 100; k++) {
    tree_->Upsert(k, k);
  }
  tree_->FlushAll();
  tree_->Upsert(50, 5000);  // buffered update
  tree_->Remove(51);        // buffered tombstone
  tree_->Upsert(1000, 1);   // buffered new key at the tail
  KeyValue out[200];
  size_t n = tree_->Scan(45, 200, out);
  std::map<uint64_t, uint64_t> result;
  for (size_t i = 0; i < n; i++) {
    result[out[i].key] = out[i].value;
  }
  EXPECT_EQ(result.at(50), 5000u);
  EXPECT_EQ(result.count(51), 0u);
  EXPECT_EQ(result.at(1000), 1u);
}

TEST_F(CclBTreeTest, ScanStopsAtCount) {
  for (uint64_t k = 1; k <= 1000; k++) {
    tree_->Upsert(k, k);
  }
  KeyValue out[10];
  EXPECT_EQ(tree_->Scan(1, 10, out), 10u);
  EXPECT_EQ(out[9].key, 10u);
}

TEST_F(CclBTreeTest, ScanBeyondEndReturnsShort) {
  for (uint64_t k = 1; k <= 10; k++) {
    tree_->Upsert(k, k);
  }
  KeyValue out[20];
  EXPECT_EQ(tree_->Scan(5, 20, out), 6u);
  EXPECT_EQ(tree_->Scan(1000, 20, out), 0u);
}

TEST_F(CclBTreeTest, DeleteHeavyWorkloadTriggersMerges) {
  const uint64_t kN = 3000;
  for (uint64_t k = 1; k <= kN; k++) {
    tree_->Upsert(k, k);
  }
  tree_->FlushAll();
  // Delete 90% of keys; underutilized leaves must merge left.
  for (uint64_t k = 1; k <= kN; k++) {
    if (k % 10 != 0) {
      tree_->Remove(k);
    }
  }
  tree_->FlushAll();
  EXPECT_GT(tree_->merges(), 0u);
  for (uint64_t k = 1; k <= kN; k++) {
    uint64_t value = 0;
    ASSERT_EQ(tree_->Lookup(k, &value), k % 10 == 0) << "key " << k;
  }
  EXPECT_TRUE(tree_->CheckInvariants());
}

TEST_F(CclBTreeTest, XbiLowerThanUnbufferedBase) {
  // The headline claim: leaf-node centric buffering reduces media writes per
  // user byte vs writing each KV straight to a random leaf (§3.5).
  auto measure = [](bool buffering) {
    auto rt = MakeRuntime();
    TreeOptions options;
    options.background_gc = false;
    options.buffering = buffering;
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(7);
    const int kOps = 60000;
    for (int i = 0; i < kOps; i++) {
      tree.Upsert(Mix64(rng.NextBounded(40000)) | 1, 1);
      rt->device().stats().AddUserBytes(16);
    }
    rt->device().DrainBuffers();
    return rt->device().stats().Snapshot().XbiAmplification();
  };
  double xbi_base = measure(false);
  double xbi_ccl = measure(true);
  EXPECT_LT(xbi_ccl, xbi_base * 0.75);
}

TEST_F(CclBTreeTest, WriteConservativeLoggingReducesLogBytes) {
  auto measure = [](bool conservative) {
    auto rt = MakeRuntime();
    TreeOptions options;
    options.background_gc = false;
    options.write_conservative_logging = conservative;
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 30000; k++) {
      tree.Upsert(Mix64(k) | 1, k);
    }
    return tree.log_live_bytes();
  };
  uint64_t naive_bytes = measure(false);
  uint64_t conservative_bytes = measure(true);
  // Skipping trigger writes removes 1/(N_batch+1) = 1/3 of log entries.
  EXPECT_NEAR(static_cast<double>(conservative_bytes) / static_cast<double>(naive_bytes),
              2.0 / 3.0, 0.05);
}

TEST_F(CclBTreeTest, FootprintTracksGrowth) {
  auto before = tree_->Footprint();
  for (uint64_t k = 1; k <= 50000; k++) {
    tree_->Upsert(Mix64(k) | 1, k);
  }
  auto after = tree_->Footprint();
  EXPECT_GT(after.dram_bytes, before.dram_bytes);
  EXPECT_GT(after.pm_bytes, before.pm_bytes);
  // Leaves alone occupy >= 50000/14 * 256 bytes of PM.
  EXPECT_GT(after.pm_bytes, 50000ull / 14 * 256);
}

// --- GC ------------------------------------------------------------------------

TEST_F(CclBTreeTest, LocalityAwareGcReclaimsLogs) {
  for (uint64_t k = 1; k <= 50000; k++) {
    tree_->Upsert(Mix64(k) | 1, k);
  }
  uint64_t before = tree_->log_live_bytes();
  ASSERT_GT(before, 0u);
  tree_->RunGcOnce();
  // Unflushed buffered KVs were copied to the I-log; everything else died
  // with the B-log.
  EXPECT_LT(tree_->log_live_bytes(), before / 2);
  EXPECT_EQ(tree_->gc_rounds(), 1u);
  // Data integrity after GC.
  for (uint64_t k = 1; k <= 50000; k += 97) {
    uint64_t value = 0;
    ASSERT_TRUE(tree_->Lookup(Mix64(k) | 1, &value));
    EXPECT_EQ(value, k);
  }
}

TEST_F(CclBTreeTest, GcTriggerFiresOnRatio) {
  EXPECT_FALSE(tree_->GcTriggerReached());
  for (uint64_t k = 1; k <= 20000; k++) {
    tree_->Upsert(Mix64(k) | 1, k);
  }
  // Log grows at ~16 B/op while leaves grow at ~256/14 B/key; with default
  // TH_log = 20% the trigger must eventually fire.
  EXPECT_TRUE(tree_->GcTriggerReached());
  tree_->RunGcOnce();
  EXPECT_FALSE(tree_->GcTriggerReached());
}

TEST_F(CclBTreeTest, NaiveGcAlsoPreservesData) {
  auto rt = MakeRuntime();
  TreeOptions options = QuietOptions();
  options.gc_mode = GcMode::kNaive;
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 20000; k++) {
    tree.Upsert(Mix64(k) | 1, k);
  }
  tree.RunGcOnce();
  EXPECT_EQ(tree.log_live_bytes(), 0u);  // naive GC flushes everything
  for (uint64_t k = 1; k <= 20000; k += 41) {
    uint64_t value = 0;
    ASSERT_TRUE(tree.Lookup(Mix64(k) | 1, &value));
  }
}

TEST_F(CclBTreeTest, GcSurvivesRepeatedRounds) {
  Rng rng(31);
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 10000; i++) {
      tree_->Upsert(Mix64(rng.NextBounded(30000)) | 1, static_cast<uint64_t>(round) + 1);
    }
    tree_->RunGcOnce();
  }
  EXPECT_EQ(tree_->gc_rounds(), 5u);
  EXPECT_TRUE(tree_->CheckInvariants());
}

// --- concurrency ------------------------------------------------------------------

TEST(CclBTreeConcurrency, ParallelDisjointInserts) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(*rt, options);
  const int kThreads = 4;
  const uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tree, &rt, t] {
      pmsim::ThreadContext ctx(rt->device(), t % 2, t);
      for (uint64_t i = 0; i < kPerThread; i++) {
        uint64_t key = static_cast<uint64_t>(t) * kPerThread + i + 1;
        tree.Upsert(Mix64(key) | 1, key);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 0; i < kPerThread; i += 101) {
      uint64_t key = static_cast<uint64_t>(t) * kPerThread + i + 1;
      uint64_t value = 0;
      ASSERT_TRUE(tree.Lookup(Mix64(key) | 1, &value));
      EXPECT_EQ(value, key);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(CclBTreeConcurrency, ReadersDuringWritesSeeConsistentValues) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(*rt, options);
  {
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 5000; k++) {
      tree.Upsert(k, k * 2);  // invariant: value == 2*key or 3*key
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    pmsim::ThreadContext ctx(rt->device(), 0, 1);
    for (uint64_t k = 1; k <= 5000; k++) {
      tree.Upsert(k, k * 3);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      pmsim::ThreadContext ctx(rt->device(), 1, 2 + t);
      Rng rng(static_cast<uint64_t>(t) + 99);
      while (!stop.load()) {
        uint64_t key = rng.NextBounded(5000) + 1;
        uint64_t value = 0;
        if (!tree.Lookup(key, &value) || (value != key * 2 && value != key * 3)) {
          violations++;
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(violations.load(), 0);
}

TEST(CclBTreeConcurrency, GcConcurrentWithForegroundInserts) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(*rt, options);
  std::atomic<bool> stop{false};
  std::thread gc([&] {
    pmsim::ThreadContext ctx(rt->device(), 0, 64);
    while (!stop.load()) {
      tree.RunGcOnce();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; t++) {
    writers.emplace_back([&, t] {
      pmsim::ThreadContext ctx(rt->device(), t % 2, t);
      for (uint64_t i = 1; i <= 30000; i++) {
        uint64_t key = (i * 4 + static_cast<uint64_t>(t)) | 1;
        tree.Upsert(Mix64(key) | 1, key);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true);
  gc.join();
  EXPECT_TRUE(tree.CheckInvariants());
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (int t = 0; t < 3; t++) {
    for (uint64_t i = 1; i <= 30000; i += 177) {
      uint64_t key = (i * 4 + static_cast<uint64_t>(t)) | 1;
      uint64_t value = 0;
      ASSERT_TRUE(tree.Lookup(Mix64(key) | 1, &value));
    }
  }
}

// --- crash consistency & recovery ----------------------------------------------------

class CclCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(CclCrashTest, AllCompletedUpsertsSurviveCrash) {
  // Every Upsert that returned before the power failure must be recoverable:
  // it was either WAL-logged + fenced, or flushed with the leaf batch.
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  const int kOps = 20000;
  std::map<uint64_t, uint64_t> model;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(static_cast<uint64_t>(GetParam()));
    for (int i = 0; i < kOps; i++) {
      uint64_t key = Mix64(rng.NextBounded(10000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      tree.Upsert(key, value);
      model[key] = value;
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(tree->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value) << "stale value for key " << key;
  }
  EXPECT_TRUE(tree->CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CclCrashTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(CclRecovery, DeletesSurviveCrash) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 1000; k++) {
      tree.Upsert(k, k);
    }
    tree.FlushAll();
    for (uint64_t k = 1; k <= 1000; k += 2) {
      tree.Remove(k);  // tombstones, many still buffered at crash time
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 1000; k++) {
    uint64_t value = 0;
    ASSERT_EQ(tree->Lookup(k, &value), k % 2 == 0) << "key " << k;
  }
}

TEST(CclRecovery, CrashAfterGcLosesNothing) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  std::map<uint64_t, uint64_t> model;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(77);
    for (int i = 0; i < 30000; i++) {
      uint64_t key = Mix64(rng.NextBounded(15000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      tree.Upsert(key, value);
      model[key] = value;
    }
    tree.RunGcOnce();
    for (int i = 0; i < 5000; i++) {
      uint64_t key = Mix64(rng.NextBounded(15000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      tree.Upsert(key, value);
      model[key] = value;
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(tree->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value);
  }
}

TEST(CclRecovery, ParallelRecoveryMatchesSerial) {
  auto build = [](int recovery_threads) {
    auto rt = MakeRuntime();
    TreeOptions options;
    options.background_gc = false;
    std::map<uint64_t, uint64_t> model;
    {
      CclBTree tree(*rt, options);
      pmsim::ThreadContext ctx(rt->device(), 0, 0);
      Rng rng(55);
      for (int i = 0; i < 20000; i++) {
        uint64_t key = Mix64(rng.NextBounded(8000) + 1) | 1;
        uint64_t value = rng.Next() | 1;
        tree.Upsert(key, value);
        model[key] = value;
      }
    }
    auto tree = testutil::CrashAndRecoverTree(*rt, options, recovery_threads);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    std::map<uint64_t, uint64_t> result;
    for (const auto& [key, value] : model) {
      uint64_t got = 0;
      if (tree->Lookup(key, &got)) {
        result[key] = got;
      }
    }
    EXPECT_EQ(result.size(), model.size());
    return result;
  };
  EXPECT_EQ(build(1), build(4));
}

TEST(CclRecovery, DoubleCrashDuringOperationIsSafe) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  std::map<uint64_t, uint64_t> model;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 5000; k++) {
      tree.Upsert(k, k);
      model[k] = k;
    }
  }
  {
    auto tree = testutil::CrashAndRecoverTree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 5001; k <= 6000; k++) {
      tree->Upsert(k, k);
      model[k] = k;
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(tree->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value);
  }
}

TEST(CclRecovery, RecoveredTreeAcceptsNewWritesAndScans) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 2000; k++) {
      tree.Upsert(k * 2, k);
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 2000; k++) {
    tree->Upsert(k * 2 + 1, k);  // interleave odd keys
  }
  KeyValue out[100];
  size_t n = tree->Scan(100, 100, out);
  ASSERT_EQ(n, 100u);
  for (size_t i = 1; i < n; i++) {
    EXPECT_EQ(out[i].key, out[i - 1].key + 1);
  }
  EXPECT_TRUE(tree->CheckInvariants());
}

TEST(CclRecovery, TornCrashIsRecoverable) {
  // CrashTorn persists a random subset of unfenced lines; the log-entry
  // checksum tags must reject any torn entries and recovery must still
  // restore every completed upsert.
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  std::map<uint64_t, uint64_t> model;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(66);
    for (int i = 0; i < 10000; i++) {
      uint64_t key = Mix64(rng.NextBounded(4000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      tree.Upsert(key, value);
      model[key] = value;
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options, /*recovery_threads=*/1,
                                            /*torn=*/true, /*torn_seed=*/1234);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(tree->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value);
  }
}

// --- ablation configurations ------------------------------------------------------

TEST(CclAblation, BaseModeIsDurablePerOperation) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  options.buffering = false;
  {
    CclBTree tree(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 3000; k++) {
      tree.Upsert(k, k + 7);
    }
  }
  auto tree = testutil::CrashAndRecoverTree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 3000; k++) {
    uint64_t value = 0;
    ASSERT_TRUE(tree->Lookup(k, &value)) << "key " << k;
    EXPECT_EQ(value, k + 7);
  }
}

class NbatchTest : public ::testing::TestWithParam<int> {};

TEST_P(NbatchTest, AllNbatchValuesCorrect) {
  auto rt = MakeRuntime();
  TreeOptions options;
  options.background_gc = false;
  options.nbatch = GetParam();
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 5000; k++) {
    tree.Upsert(Mix64(k) | 1, k);
  }
  for (uint64_t k = 1; k <= 5000; k++) {
    uint64_t value = 0;
    ASSERT_TRUE(tree.Lookup(Mix64(k) | 1, &value));
    EXPECT_EQ(value, k);
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Nbatch1To5, NbatchTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace cclbt::core
