// Randomized long-run fuzz of CCL-BTree against a std::map model: mixed
// upserts/deletes/lookups/scans with periodic GC, crash/recovery rounds and
// invariant checks. Each seed is an independent instantiation; scenarios
// that once triggered real bugs (stale buffer cache after split+merge,
// merge timestamps masking unflushed entries) are exercised statistically
// here.
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ccl_btree.h"
#include "tests/crash_util.h"

namespace cclbt::core {
namespace {

class CclFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CclFuzzTest, MixedOpsWithGcAndCrashesMatchModel) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 512 << 20;
  kvindex::Runtime runtime(runtime_options);
  TreeOptions options;
  options.background_gc = false;
  options.nbatch = 1 + GetParam() % 5;  // vary N_batch across seeds

  auto tree = std::make_unique<CclBTree>(runtime, options);
  auto ctx = std::make_unique<pmsim::ThreadContext>(runtime.device(), 0, 0);
  std::map<uint64_t, uint64_t> model;
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::vector<kvindex::KeyValue> scan_out(64);

  const int kOps = 60'000;
  const uint64_t kKeySpace = 12'000;
  for (int i = 0; i < kOps; i++) {
    uint64_t key = rng.NextBounded(kKeySpace) + 1;
    switch (rng.NextBounded(20)) {
      case 0:
      case 1:
      case 2: {  // delete
        tree->Remove(key);
        model.erase(key);
        break;
      }
      case 3: {  // point lookup spot-check
        uint64_t value = 0;
        bool found = tree->Lookup(key, &value);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << "seed " << GetParam() << " key " << key;
        if (found) {
          ASSERT_EQ(value, it->second);
        }
        break;
      }
      case 4: {  // scan spot-check
        size_t got = tree->Scan(key, 32, scan_out.data());
        auto it = model.lower_bound(key);
        for (size_t j = 0; j < got; j++, ++it) {
          ASSERT_NE(it, model.end()) << "seed " << GetParam();
          ASSERT_EQ(scan_out[j].key, it->first) << "seed " << GetParam() << " at " << j;
          ASSERT_EQ(scan_out[j].value, it->second);
        }
        break;
      }
      case 5: {  // GC round
        if (i % 4096 == 5) {
          tree->RunGcOnce();
        }
        break;
      }
      default: {  // upsert
        uint64_t value = rng.Next() | 1;
        tree->Upsert(key, value);
        model[key] = value;
        break;
      }
    }
    // Periodic crash + recovery (every ~20k ops).
    if (i > 0 && i % 20'000 == 0) {
      ctx.reset();
      tree.reset();
      tree = testutil::CrashAndRecoverTree(
          runtime, options, 1 + GetParam() % 3, /*torn=*/true,
          /*torn_seed=*/static_cast<uint64_t>(GetParam()) * 31 + static_cast<uint64_t>(i));
      ctx = std::make_unique<pmsim::ThreadContext>(runtime.device(), 0, 0);
      ASSERT_TRUE(tree->CheckInvariants()) << "seed " << GetParam() << " after crash at " << i;
    }
  }

  // Full final audit.
  ASSERT_TRUE(tree->CheckInvariants());
  for (uint64_t key = 1; key <= kKeySpace; key++) {
    uint64_t value = 0;
    bool found = tree->Lookup(key, &value);
    auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << "seed " << GetParam() << " key " << key;
    if (found) {
      ASSERT_EQ(value, it->second) << "seed " << GetParam() << " key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CclFuzzTest, ::testing::Range(0, 6));

TEST(CclEdgeCases, ExtremeKeysWork) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 128 << 20;
  kvindex::Runtime runtime(runtime_options);
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  tree.Upsert(1, 10);
  tree.Upsert(~0ULL, 20);          // max key
  tree.Upsert(~0ULL - 1, 30);
  uint64_t value = 0;
  EXPECT_TRUE(tree.Lookup(~0ULL, &value));
  EXPECT_EQ(value, 20u);
  kvindex::KeyValue out[4];
  EXPECT_EQ(tree.Scan(~0ULL - 1, 4, out), 2u);
}

TEST(CclEdgeCases, SequentialInsertsSplitRightwards) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 256 << 20;
  kvindex::Runtime runtime(runtime_options);
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (uint64_t k = 1; k <= 50'000; k++) {
    tree.Upsert(k, k);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  uint64_t value = 0;
  EXPECT_TRUE(tree.Lookup(1, &value));
  EXPECT_TRUE(tree.Lookup(50'000, &value));
}

TEST(CclEdgeCases, ReinsertAfterMassDeleteReusesLeaves) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 256 << 20;
  kvindex::Runtime runtime(runtime_options);
  TreeOptions options;
  options.background_gc = false;
  CclBTree tree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (int round = 0; round < 3; round++) {
    for (uint64_t k = 1; k <= 20'000; k++) {
      tree.Upsert(k, k + static_cast<uint64_t>(round));
    }
    tree.FlushAll();
    for (uint64_t k = 1; k <= 20'000; k++) {
      tree.Remove(k);
    }
    tree.FlushAll();
  }
  EXPECT_GT(tree.merges(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  uint64_t value = 0;
  EXPECT_FALSE(tree.Lookup(500, &value));
}

}  // namespace
}  // namespace cclbt::core
