// Tests for pmcheck, the persistency-ordering checker (DESIGN.md §11): one
// deliberately-buggy driver per diagnostic class asserting the exact
// diagnostic fires, suppression via PmCheckExpect, crash-injection
// interaction, and a clean-run check over a cclbtree fig10-micro workload.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "src/bench/driver.h"
#include "src/pmsim/device.h"
#include "src/pmsim/pmcheck.h"

namespace cclbt::pmsim {
namespace {

// The CI harness runs the whole suite with CCL_PMCHECK=1 and (in the
// backend-matrix step) with CCL_BACKEND set; these tests opt in explicitly
// per device and assert the per-backend rule tables themselves, so drop both
// overrides to keep the assertions valid in any environment.
[[maybe_unused]] const bool g_env_cleared = [] {
  unsetenv("CCL_PMCHECK");
  unsetenv("CCL_BACKEND");
  return true;
}();

DeviceConfig CheckedConfig() {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 2;
  config.dimms_per_socket = 2;
  config.pmcheck = true;
  return config;
}

// Writes one word into the working image (a plain PM store).
void Store(PmDevice& device, uintptr_t offset, uint64_t value) {
  std::memcpy(device.base() + offset, &value, sizeof(value));
}

PmCheckReport Report(PmDevice& device) { return device.pmcheck()->Snapshot(); }

uint64_t Count(const PmCheckReport& report, PmCheckClass cls) {
  return report.counts[static_cast<size_t>(cls)];
}

TEST(PmCheck, EnabledViaConfigDisabledByDefault) {
  PmDevice off{DeviceConfig{}};
  EXPECT_EQ(off.pmcheck(), nullptr);
  PmDevice on{CheckedConfig()};
  ASSERT_NE(on.pmcheck(), nullptr);
  // The checker needs the shadow image even if the caller disabled it.
  DeviceConfig no_shadow = CheckedConfig();
  no_shadow.crash_tracking = false;
  PmDevice forced{no_shadow};
  ASSERT_NE(forced.pmcheck(), nullptr);
  EXPECT_TRUE(forced.config().crash_tracking);
}

// The eADR backend keeps the checker ON but applies its rule table
// (DESIGN.md §14): flush/fence discipline classes are downgraded to
// informational (they are waste, not bugs, in a flush-free domain) while
// unflushed-at-close still reports — a store never flushed is not durable
// even under eADR's model.
TEST(PmCheck, EadrDowngradesFlushDisciplineToInfo) {
  DeviceConfig config = CheckedConfig();
  config.backend = MediaBackend::kEadr;
  PmDevice device{config};
  ASSERT_NE(device.pmcheck(), nullptr);
  ThreadContext ctx(device, 0, 0);
  Store(device, 64, 0xE1);
  device.FlushLine(ctx, device.base() + 64);  // dirty: durable now, no diag
  device.FlushLine(ctx, device.base() + 64);  // clean re-flush: info only
  device.Fence(ctx);                          // fence in flush-free domain: info
  PmCheckReport report = Report(device);
  EXPECT_EQ(report.total(), 0u) << "downgraded classes must not count as violations";
  EXPECT_EQ(report.info[static_cast<size_t>(PmCheckClass::kRedundantFlush)], 1u);
  EXPECT_EQ(report.info[static_cast<size_t>(PmCheckClass::kUselessFence)], 1u);
  // The materialized diagnostics carry the info flag for pmctl.
  bool saw_info_diag = false;
  for (const PmCheckDiagnostic& d : report.diagnostics) {
    saw_info_diag |= d.info;
  }
  EXPECT_TRUE(saw_info_diag);
}

// eADR rule table, off classes: a store that stays dirty across a fence is
// not a hazard when persistence does not hinge on flush ordering.
TEST(PmCheck, EadrDirtyAtFenceIsOff) {
  DeviceConfig config = CheckedConfig();
  config.backend = MediaBackend::kEadr;
  PmDevice device{config};
  ASSERT_NE(device.pmcheck(), nullptr);
  ThreadContext ctx(device, 0, 0);
  Store(device, 128, 0xE2);
  device.Fence(ctx);  // dirty line at fence: kOff on eADR
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kDirtyAtFence), 0u);
  EXPECT_EQ(report.info[static_cast<size_t>(PmCheckClass::kDirtyAtFence)], 0u);
}

// eADR rule table, still-real class: closing the device with a never-flushed
// store reports — even the flush-free domain only persists what reached it.
TEST(PmCheck, EadrUnflushedAtCloseStillReports) {
  DeviceConfig config = CheckedConfig();
  config.backend = MediaBackend::kEadr;
  PmDevice device{config};
  ASSERT_NE(device.pmcheck(), nullptr);
  ThreadContext ctx(device, 0, 0);
  Store(device, 192, 0xE3);  // never flushed
  device.DrainBuffers();
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kUnflushedAtClose), 1u);
}

// Class 1a: FlushLine on a line whose content already equals the durable
// image persists nothing.
TEST(PmCheck, RedundantFlushOfCleanLine) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 64, 0xA1);
  device.FlushLine(ctx, device.base() + 64);
  device.Fence(ctx);
  EXPECT_EQ(Report(device).total(), 0u) << "store+flush+fence is the clean pattern";
  // No store since the line went durable: this flush is pure waste.
  device.FlushLine(ctx, device.base() + 64);
  device.Fence(ctx);
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kRedundantFlush), 1u);
  EXPECT_EQ(report.total(), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, PmCheckClass::kRedundantFlush);
  EXPECT_STREQ(report.diagnostics[0].detail, "flush_of_clean_line");
  EXPECT_EQ(report.diagnostics[0].line, 64u);
}

// Class 1b: re-flush of an already-pending line with unchanged content.
TEST(PmCheck, RedundantFlushOfPendingLine) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 128, 0xB2);
  device.FlushLine(ctx, device.base() + 128);
  device.FlushLine(ctx, device.base() + 128);  // nothing changed in between
  device.Fence(ctx);
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kRedundantFlush), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_STREQ(report.diagnostics[0].detail, "reflush_of_pending_line_with_unchanged_content");
}

// Re-flush after a re-dirty is the *correct* fix for dirty-at-fence: neither
// class 1 nor class 3 may fire.
TEST(PmCheck, ReflushAfterRedirtyIsClean) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 192, 0xC3);
  device.FlushLine(ctx, device.base() + 192);
  Store(device, 192, 0xC4);                    // re-dirty
  device.FlushLine(ctx, device.base() + 192);  // re-flush covers it
  device.Fence(ctx);
  EXPECT_EQ(Report(device).total(), 0u);
}

// Class 2: a fence with zero pending lines orders nothing.
TEST(PmCheck, UselessFence) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  device.Fence(ctx);
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kUselessFence), 1u);
  EXPECT_EQ(report.total(), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, PmCheckClass::kUselessFence);
  EXPECT_STREQ(report.diagnostics[0].detail, "fence_with_no_pending_lines");
  EXPECT_EQ(report.fence_epochs, 1u);
}

// Class 3: line re-dirtied between its flush and the fence — on real
// hardware the clwb captured the old content (torn-write risk).
TEST(PmCheck, DirtyAtFence) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 256, 0xD4);
  device.FlushLine(ctx, device.base() + 256);
  Store(device, 256, 0xD5);  // re-dirty, no re-flush
  device.Fence(ctx);
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kDirtyAtFence), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, PmCheckClass::kDirtyAtFence);
  EXPECT_STREQ(report.diagnostics[0].detail, "line_redirtied_between_flush_and_fence");
  EXPECT_EQ(report.diagnostics[0].line, 256u);
}

// Class 4: lines still dirty when the pool closes, in both flavors.
TEST(PmCheck, UnflushedAtClose) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 64, 0xE5);   // stored, never flushed
  Store(device, 320, 0xE6);  // stored + flushed, never fenced
  device.FlushLine(ctx, device.base() + 320);
  device.DrainBuffers();
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kUnflushedAtClose), 2u);
  ASSERT_EQ(report.diagnostics.size(), 2u);
  // The close scan walks the pool in address order.
  EXPECT_EQ(report.diagnostics[0].line, 64u);
  EXPECT_STREQ(report.diagnostics[0].detail, "line_stored_but_never_flushed_at_close");
  EXPECT_EQ(report.diagnostics[1].line, 320u);
  EXPECT_STREQ(report.diagnostics[1].detail, "line_flushed_but_never_fenced_at_close");
  // A second close must not re-report the same lines.
  device.DrainBuffers();
  EXPECT_EQ(Count(Report(device), PmCheckClass::kUnflushedAtClose), 2u);
}

// Class 4, crash flavor: a crash nobody scheduled reports in-flight lines...
TEST(PmCheck, UnflushedAtUnplannedCrash) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  Store(device, 448, 0xF7);
  device.FlushLine(ctx, device.base() + 448);  // flushed, never fenced
  device.Crash();
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kUnflushedAtClose), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_STREQ(report.diagnostics[0].detail, "line_flushed_but_never_fenced_at_crash");
  // ...and the crash resets line state: the restored pool is all-clean.
  device.DrainBuffers();
  EXPECT_EQ(Report(device).total(), 1u);
}

// ...but an injector-scheduled crash is the harness doing its job: in-flight
// state at the injected fence is expected, not a bug.
TEST(PmCheck, InjectedCrashIsNotAViolation) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  CrashInjector injector;
  device.SetCrashInjector(&injector);
  injector.Arm(1);
  Store(device, 512, 0xA8);
  device.FlushLine(ctx, device.base() + 512);
  EXPECT_THROW(device.Fence(ctx), CrashPointReached);
  device.Crash();
  device.SetCrashInjector(nullptr);
  EXPECT_EQ(Report(device).total(), 0u);
}

// Class 5: reading a line another context flushed but has not fenced durable.
TEST(PmCheck, ReadBeforeDurableAcrossContexts) {
  PmDevice device{CheckedConfig()};
  ThreadContext writer(device, 0, 0);
  Store(device, 576, 0xB9);
  device.FlushLine(writer, device.base() + 576);
  // The owner may read its own pending line (it knows what it wrote).
  device.ReadPm(writer, device.base() + 576, 8);
  EXPECT_EQ(Report(device).total(), 0u);
  ThreadContext reader(device, 1, 1);
  device.ReadPm(reader, device.base() + 576, 8);
  PmCheckReport report = Report(device);
  EXPECT_EQ(Count(report, PmCheckClass::kReadBeforeDurable), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, PmCheckClass::kReadBeforeDurable);
  EXPECT_STREQ(report.diagnostics[0].detail, "read_of_line_flush_pending_in_other_context");
  EXPECT_EQ(report.diagnostics[0].line, 576u);
  EXPECT_EQ(report.diagnostics[0].worker, 1);  // the reader is attributed
  // Once the writer fences, the same read is clean.
  device.Fence(writer);
  device.ReadPm(reader, device.base() + 576, 8);
  EXPECT_EQ(Report(device).total(), 1u);
}

// PmCheckExpect turns an intentional violation into a suppressed count, in
// scope only.
TEST(PmCheck, ExpectSuppressesInScopeOnly) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  {
    PmCheckExpect expect(PmCheckClass::kUselessFence);
    device.Fence(ctx);
  }
  PmCheckReport report = Report(device);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(report.suppressed[static_cast<size_t>(PmCheckClass::kUselessFence)], 1u);
  // The suppression is class-scoped: a different class still reports.
  {
    PmCheckExpect expect(PmCheckClass::kRedundantFlush);
    device.Fence(ctx);
  }
  EXPECT_EQ(Count(Report(device), PmCheckClass::kUselessFence), 1u);
  // And it ends with the scope.
  device.Fence(ctx);
  EXPECT_EQ(Count(Report(device), PmCheckClass::kUselessFence), 2u);
}

// Diagnostics carry the recent-event ring and fence epochs for attribution.
TEST(PmCheck, DiagnosticsCarryRecentEvents) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, 0);
  for (int i = 0; i < 3; i++) {
    Store(device, 64 + static_cast<uintptr_t>(i) * 64, 0xC0 + static_cast<uint64_t>(i));
    device.FlushLine(ctx, device.base() + 64 + static_cast<uintptr_t>(i) * 64);
    device.Fence(ctx);
  }
  device.Fence(ctx);  // the violation
  PmCheckReport report = Report(device);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.fence_epochs, 4u);
  EXPECT_EQ(report.diagnostics[0].fence_epoch, 4u);
  const auto& recent = report.diagnostics[0].recent;
  ASSERT_GE(recent.size(), 2u);
  // The last recorded event is the useless fence itself (0 committed lines);
  // before it, the previous cycle's fence committed one line.
  EXPECT_EQ(recent.back().kind, PmCheckEvent::Kind::kFence);
  EXPECT_EQ(recent.back().detail, 0u);
  EXPECT_EQ(recent[recent.size() - 2].kind, PmCheckEvent::Kind::kFence);
  EXPECT_EQ(recent[recent.size() - 2].detail, 1u);
}

}  // namespace
}  // namespace cclbt::pmsim

namespace cclbt::bench {
namespace {

// The shipped CCL-BTree must be pmcheck-clean on a fig10-micro style
// workload: warm inserts + measured upserts, background GC on (the default).
TEST(PmCheck, CleanRunOnCclbtreeFig10Micro) {
  RunConfig config;
  config.threads = 4;
  config.warm_keys = 15'000;
  config.ops = 15'000;
  config.op = OpType::kUpdate;
  config.pmcheck = true;
  RunResult result = RunIndexWorkload("cclbtree", config, {}, 1ULL << 30);
  ASSERT_TRUE(result.pmcheck.enabled);
  EXPECT_EQ(result.pmcheck.total(), 0u) << "first diagnostic: "
      << (result.pmcheck.diagnostics.empty()
              ? "(none materialized)"
              : result.pmcheck.diagnostics[0].detail);
  EXPECT_GT(result.pmcheck.fence_epochs, 0u);
}

}  // namespace
}  // namespace cclbt::bench
