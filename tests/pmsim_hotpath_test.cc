// Concurrency and accounting tests for the pmsim hot-path structures: the
// flat XPBuffer (conservation of insertions/evictions under real-thread
// contention), the sharded Stats registry (fold-on-unregister, Reset), and
// the per-context pending-set dedup.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/pmsim/device.h"
#include "src/pmsim/stats.h"
#include "src/pmsim/xpbuffer.h"

namespace cclbt::pmsim {
namespace {

// N real threads hammer one XpBuffer with random flushes. Whatever the
// interleaving, every inserted XPLine must end up either evicted (observed
// by exactly one caller via result.evicted) or still resident:
//   insertions == evictions == sum of observed evictions + ... resident
TEST(XpBufferStressTest, EvictionConservationUnderContention) {
  constexpr size_t kEntries = 64;
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 200'000;
  constexpr uint64_t kKeySpace = 4096;  // far larger than capacity: evict-heavy
  XpBuffer buffer(kEntries);
  std::atomic<uint64_t> observed_evictions{0};
  std::atomic<uint64_t> observed_rmw{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&buffer, &observed_evictions, &observed_rmw, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      uint64_t local_evictions = 0;
      uint64_t local_rmw = 0;
      for (uint64_t i = 0; i < kOpsPerThread; i++) {
        uint64_t key = rng.Next() % kKeySpace;
        XpBufferResult result =
            buffer.OnLineFlush(key, static_cast<int>(rng.Next() & 3), StreamTag::kOther);
        if (result.evicted) {
          local_evictions++;
          if (result.rmw) {
            local_rmw++;
          }
        }
      }
      observed_evictions.fetch_add(local_evictions);
      observed_rmw.fetch_add(local_rmw);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Each miss inserts exactly one XPLine, each eviction removes exactly one,
  // so at quiesce the counters must balance and every eviction must have
  // been reported to exactly one caller.
  EXPECT_EQ(buffer.resident(), kEntries);
  EXPECT_EQ(buffer.insertions(), buffer.evictions() + buffer.resident());
  EXPECT_EQ(observed_evictions.load(), buffer.evictions());
  EXPECT_GT(observed_evictions.load(), 0u);
  // Single-line flushes over a large keyspace: partial lines dominate, so
  // RMW evictions must occur (sanity that the dirty-mask logic survived the
  // flat rewrite).
  EXPECT_GT(observed_rmw.load(), 0u);
}

// Same conservation when threads also drain concurrently-ish: a drain resets
// residency without counting evictions, so run it after joining workers.
TEST(XpBufferStressTest, DrainAfterStressReportsAllResidentLines) {
  XpBuffer buffer(32);
  Rng rng(7);
  for (int i = 0; i < 10'000; i++) {
    buffer.OnLineFlush(rng.Next() % 512, static_cast<int>(rng.Next() & 3), StreamTag::kLeaf);
  }
  uint64_t evictions_before = buffer.evictions();
  size_t resident_before = buffer.resident();
  size_t drained = 0;
  buffer.Drain([&drained](bool, StreamTag, trace::Component, uint64_t) { drained++; });
  EXPECT_EQ(drained, resident_before);
  EXPECT_EQ(buffer.resident(), 0u);
  // Drain never counts as eviction.
  EXPECT_EQ(buffer.evictions(), evictions_before);
  // After a drain the conservation baseline restarts from the drained state:
  // subsequent inserts balance again.
  for (int i = 0; i < 100; i++) {
    buffer.OnLineFlush(static_cast<uint64_t>(i), 0, StreamTag::kOther);
  }
  EXPECT_EQ(buffer.resident(), 32u);
}

// Shards registered with Stats are included in Snapshot() while live and
// folded into the base when unregistered; totals never change across the
// fold.
TEST(StatsShardTest, SnapshotSeesLiveShardsAndSurvivesFold) {
  Stats stats;
  auto shard = std::make_unique<StatsShard>();
  stats.RegisterShard(shard.get());
  shard->AddUserBytes(100);
  shard->AddLineFlush();
  shard->AddMediaWrite(StreamTag::kLog);
  stats.AddFence();  // base-shard fallback path

  StatsSnapshot live = stats.Snapshot();
  EXPECT_EQ(live.user_bytes, 100u);
  EXPECT_EQ(live.line_flushes, 1u);
  EXPECT_EQ(live.xpbuffer_write_bytes, kCachelineBytes);
  EXPECT_EQ(live.media_write_bytes, kXplineBytes);
  EXPECT_EQ(live.media_writes_by_tag[static_cast<int>(StreamTag::kLog)], 1u);
  EXPECT_EQ(live.fences, 1u);

  stats.UnregisterShard(shard.get());
  StatsSnapshot folded = stats.Snapshot();
  EXPECT_EQ(folded.user_bytes, live.user_bytes);
  EXPECT_EQ(folded.line_flushes, live.line_flushes);
  EXPECT_EQ(folded.media_write_bytes, live.media_write_bytes);
  EXPECT_EQ(folded.fences, live.fences);
  // The unregistered shard was zeroed, so re-registering it must not double
  // count.
  stats.RegisterShard(shard.get());
  StatsSnapshot reregistered = stats.Snapshot();
  EXPECT_EQ(reregistered.user_bytes, folded.user_bytes);
  stats.UnregisterShard(shard.get());
}

TEST(StatsShardTest, ResetZeroesBaseAndLiveShards) {
  Stats stats;
  StatsShard shard;
  stats.RegisterShard(&shard);
  shard.AddUserBytes(42);
  stats.AddUserBytes(8);
  stats.Reset();
  StatsSnapshot after = stats.Snapshot();
  EXPECT_EQ(after.user_bytes, 0u);
  EXPECT_EQ(shard.user_bytes.load(), 0u);
  stats.UnregisterShard(&shard);
}

// Per-device accounting path: a multithreaded flush storm through PmDevice
// must conserve media accounting — every media write recorded in stats
// corresponds to an XPLine eviction or an end-of-run drain of a resident
// line, and DrainBuffers() empties every buffer.
TEST(PmDeviceHotpathTest, MultithreadedFlushStormConservesMediaAccounting) {
  DeviceConfig config;
  config.pool_bytes = 64 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 4;
  config.crash_tracking = false;
  PmDevice device(config);
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&device, t] {
      ThreadContext ctx(device, 0, t);
      Rng rng(static_cast<uint64_t>(t) + 11);
      for (uint64_t i = 0; i < kOpsPerThread; i++) {
        uint64_t offset = (rng.Next() % (1 << 16)) * kXplineBytes;
        device.FlushLine(ctx, device.base() + offset);
        if ((i & 7) == 7) {
          device.Fence(ctx);
        }
      }
      device.Fence(ctx);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  StatsSnapshot before_drain = device.stats().Snapshot();
  device.DrainBuffers();
  StatsSnapshot after_drain = device.stats().Snapshot();
  // Committed lines: every flush was committed by a fence (dedup may have
  // merged same-line flushes within one fence group, so <=).
  EXPECT_LE(after_drain.media_write_bytes / kXplineBytes,
            before_drain.line_flushes);
  // The drain recorded the resident lines (4 DIMMs x 64-entry buffers were
  // saturated by the storm, so it must have added writes).
  EXPECT_GT(after_drain.media_write_bytes, before_drain.media_write_bytes);
  // Tag attribution totals always match the media write count.
  uint64_t tag_total = 0;
  for (uint64_t by_tag : after_drain.media_writes_by_tag) {
    tag_total += by_tag;
  }
  EXPECT_EQ(tag_total, after_drain.media_write_bytes / kXplineBytes);
}

// The pending-set dedup: flushing the same line repeatedly before one fence
// commits it once (one XPBuffer insertion), while distinct lines commit
// individually. Uses a fresh single-context device so XPBuffer insertions
// are directly observable via media accounting after a drain.
TEST(PmDeviceHotpathTest, PendingSetDedupCommitsEachLineOnce) {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  PmDevice device(config);
  ThreadContext ctx(device, 0, 0);
  // 100 flushes of the same line + 3 distinct lines, one fence.
  for (int i = 0; i < 100; i++) {
    device.FlushLine(ctx, device.base());
  }
  for (int i = 1; i <= 3; i++) {
    device.FlushLine(ctx, device.base() + static_cast<size_t>(i) * kXplineBytes);
  }
  device.Fence(ctx);
  StatsSnapshot s = device.stats().Snapshot();
  EXPECT_EQ(s.line_flushes, 103u);
  device.DrainBuffers();
  s = device.stats().Snapshot();
  // 4 distinct XPLines entered the buffer; none evicted (buffer holds 64),
  // so the drain wrote exactly 4 units.
  EXPECT_EQ(s.media_write_bytes, 4 * kXplineBytes);
}

// A fence clears the pending set: the same line flushed in two consecutive
// fence groups commits twice.
TEST(PmDeviceHotpathTest, PendingSetResetsAcrossFences) {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  PmDevice device(config);
  ThreadContext ctx(device, 0, 0);
  for (int round = 0; round < 5; round++) {
    device.FlushLine(ctx, device.base());
    device.Fence(ctx);
  }
  // Same XPLine recommitted each round: write-combining hits, 1 insertion.
  device.DrainBuffers();
  StatsSnapshot s = device.stats().Snapshot();
  EXPECT_EQ(s.line_flushes, 5u);
  EXPECT_EQ(s.fences, 5u);
  EXPECT_EQ(s.media_write_bytes, kXplineBytes);
}

}  // namespace
}  // namespace cclbt::pmsim
