// Tests for the pluggable persistence-domain backends (DESIGN.md §14):
// backend resolution (explicit config > legacy eadr flag > CCL_BACKEND env >
// ADR default), the per-backend crash-window semantics (eADR loses nothing
// acked; a volatile CXL buffer loses exactly its staged lines), the CXL
// non-volatile path's equivalence with the ADR commit loop, and the
// backend-appropriate pmcheck severities on CXL.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "src/kvindex/runtime.h"
#include "src/pmsim/device.h"
#include "src/pmsim/media_model.h"
#include "src/pmsim/pmcheck.h"

namespace cclbt::pmsim {
namespace {

// Resolution tests assert the no-environment defaults; the CI matrix step
// exports CCL_BACKEND for whole-suite runs, so drop it (and CCL_PMCHECK,
// which would force the checker on) for this binary.
[[maybe_unused]] const bool g_env_cleared = [] {
  unsetenv("CCL_BACKEND");
  unsetenv("CCL_CXL_PAGE");
  unsetenv("CCL_PMCHECK");
  return true;
}();

DeviceConfig SmallConfig() {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  return config;
}

// Writes one word into the working image (a plain PM store).
void Store(PmDevice& device, uintptr_t offset, uint64_t value) {
  std::memcpy(device.base() + offset, &value, sizeof(value));
}

uint64_t Load(PmDevice& device, uintptr_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, device.base() + offset, sizeof(value));
  return value;
}

void StoreFlushFence(PmDevice& device, ThreadContext& ctx, uintptr_t offset, uint64_t value) {
  Store(device, offset, value);
  device.FlushLine(ctx, device.base() + offset);
  device.Fence(ctx);
}

TEST(ResolveBackend, DefaultIsAdrOptane) {
  DeviceConfig config = SmallConfig();
  ResolveMediaBackend(config);
  EXPECT_EQ(config.backend, MediaBackend::kAdrOptane);
  EXPECT_FALSE(config.eadr);
  PmDevice device{SmallConfig()};
  EXPECT_EQ(device.config().backend, MediaBackend::kAdrOptane);
  EXPECT_STREQ(device.media().name(), "adr");
  EXPECT_TRUE(device.media().explicit_persist());
  EXPECT_TRUE(device.media().durable_at_commit());
}

TEST(ResolveBackend, LegacyEadrFlagMapsToEadrBackend) {
  DeviceConfig config = SmallConfig();
  config.eadr = true;
  ResolveMediaBackend(config);
  EXPECT_EQ(config.backend, MediaBackend::kEadr);
  EXPECT_TRUE(config.eadr);  // mirror stays consistent
}

TEST(ResolveBackend, EnvSelectorAppliesWhenAuto) {
  setenv("CCL_BACKEND", "eadr", 1);
  DeviceConfig config = SmallConfig();
  ResolveMediaBackend(config);
  EXPECT_EQ(config.backend, MediaBackend::kEadr);
  EXPECT_TRUE(config.eadr);

  setenv("CCL_BACKEND", "cxl", 1);
  DeviceConfig cxl = SmallConfig();
  ResolveMediaBackend(cxl);
  EXPECT_EQ(cxl.backend, MediaBackend::kCxlMem);
  EXPECT_EQ(cxl.xpline_bytes, 4096u);  // CCL_CXL_PAGE default
  EXPECT_GE(cxl.xpbuffer_bytes, 64u * 4096u);

  setenv("CCL_CXL_PAGE", "1024", 1);
  DeviceConfig page = SmallConfig();
  ResolveMediaBackend(page);
  EXPECT_EQ(page.xpline_bytes, 1024u);

  // An explicit backend in the config wins over the environment.
  DeviceConfig pinned = SmallConfig();
  pinned.backend = MediaBackend::kAdrOptane;
  ResolveMediaBackend(pinned);
  EXPECT_EQ(pinned.backend, MediaBackend::kAdrOptane);

  unsetenv("CCL_CXL_PAGE");
  unsetenv("CCL_BACKEND");
}

TEST(RuntimeBackend, AccessorReportsResolvedBackend) {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = 64 << 20;
  options.device.backend = MediaBackend::kEadr;
  kvindex::Runtime runtime(options);
  EXPECT_EQ(runtime.media_backend(), MediaBackend::kEadr);
}

// --- eADR ------------------------------------------------------------------

TEST(EadrBackend, ImplicitEvictionsReachMediaWhenCacheOverflows) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kEadr;
  config.eadr_cache_lines = 8;
  PmDevice device{config};
  ThreadContext ctx(device, 0, 0);
  for (uintptr_t i = 0; i < 32; i++) {
    Store(device, i * 64, 0x100 + i);
    device.FlushLine(ctx, device.base() + i * 64);
  }
  EXPECT_LE(device.media().ResidentLines(), 8u);
  // 24 implicit evictions flushed through the XPBuffer; with 32 distinct
  // lines in a 64-entry buffer some already reached media only if evicted —
  // at minimum the XPBuffer saw them.
  EXPECT_GT(device.stats().Snapshot().xpbuffer_write_bytes, 0u);
}

TEST(EadrBackend, CrashLosesNoAckedStores) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kEadr;
  PmDevice device{config};
  ThreadContext ctx(device, 0, 0);
  for (uintptr_t i = 0; i < 16; i++) {
    Store(device, i * 64, 0xAA00 + i);
    device.FlushLine(ctx, device.base() + i * 64);  // durable right here
  }
  device.Crash();
  // No pending window in a flush-free domain: nothing dropped, every
  // flushed store survives the power failure.
  EXPECT_EQ(device.stats().Snapshot().crash_lines_dropped, 0u);
  for (uintptr_t i = 0; i < 16; i++) {
    EXPECT_EQ(Load(device, i * 64), 0xAA00 + i) << "line " << i;
  }
  // The modeled CPU cache restarts cold.
  EXPECT_EQ(device.media().ResidentLines(), 0u);
}

// --- CXL-mem ---------------------------------------------------------------

// With a power-protected buffer (the default) the CXL backend is the ADR
// commit path at page geometry: identical virtual metrics for an identical
// op sequence at equal geometry.
TEST(CxlBackend, NonVolatileMatchesAdrAccounting) {
  auto run = [](MediaBackend backend) {
    DeviceConfig config = SmallConfig();
    config.backend = backend;
    PmDevice device{config};
    ThreadContext ctx(device, 0, 0);
    for (uintptr_t i = 0; i < 200; i++) {
      StoreFlushFence(device, ctx, (i % 64) * 4096 + (i % 4) * 64, i + 1);
    }
    device.DrainBuffers();
    return device.stats().Snapshot();
  };
  StatsSnapshot adr = run(MediaBackend::kAdrOptane);
  StatsSnapshot cxl = run(MediaBackend::kCxlMem);
  EXPECT_EQ(adr.media_write_bytes, cxl.media_write_bytes);
  EXPECT_EQ(adr.xpbuffer_write_bytes, cxl.xpbuffer_write_bytes);
  EXPECT_EQ(adr.line_flushes, cxl.line_flushes);
  EXPECT_EQ(adr.fences, cxl.fences);
}

// The volatile-buffer variant: fence commit stages, unit eviction persists,
// clean shutdown persists everything.
TEST(CxlBackend, VolatileBufferPersistsOnCleanShutdown) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kCxlMem;
  config.xpline_bytes = 1024;
  config.xpbuffer_bytes = 4 * 1024;  // 4 media units
  config.cxl_volatile_buffer = true;
  PmDevice device{config};
  ThreadContext ctx(device, 0, 0);
  for (uintptr_t unit = 0; unit < 3; unit++) {
    StoreFlushFence(device, ctx, unit * 1024, 0xCC00 + unit);
  }
  EXPECT_EQ(device.media().ResidentLines(), 3u);
  device.DrainBuffers();  // clean power-down reaches the persistence boundary
  EXPECT_EQ(device.media().ResidentLines(), 0u);
  device.Crash();
  for (uintptr_t unit = 0; unit < 3; unit++) {
    EXPECT_EQ(Load(device, unit * 1024), 0xCC00 + unit) << "unit " << unit;
  }
}

TEST(CxlBackend, VolatileBufferCrashWindowIsExactlyTheStagedLines) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kCxlMem;
  config.xpline_bytes = 1024;
  config.xpbuffer_bytes = 4 * 1024;  // 4 media units
  config.cxl_volatile_buffer = true;
  PmDevice device{config};
  ThreadContext ctx(device, 0, 0);
  // 5 distinct units into a 4-unit buffer: exactly one eviction, so exactly
  // one line is durable and 4 stay staged in the volatile buffer.
  for (uintptr_t unit = 0; unit < 5; unit++) {
    StoreFlushFence(device, ctx, unit * 1024, 0xDD00 + unit);
  }
  uint64_t staged = device.media().ResidentLines();
  EXPECT_EQ(staged, 4u);
  device.Crash();
  EXPECT_EQ(device.stats().Snapshot().crash_lines_dropped, staged);
  int survivors = 0;
  for (uintptr_t unit = 0; unit < 5; unit++) {
    if (Load(device, unit * 1024) == 0xDD00 + unit) {
      survivors++;
    }
  }
  EXPECT_EQ(survivors, 1) << "only the evicted unit's line was on media";
}

// CXL keeps the full ADR rule table: a redundant flush is a real violation
// on an explicit-persist backend regardless of unit geometry.
TEST(CxlBackend, PmCheckKeepsReportSeverity) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kCxlMem;
  config.pmcheck = true;
  PmDevice device{config};
  ASSERT_NE(device.pmcheck(), nullptr);
  ThreadContext ctx(device, 0, 0);
  StoreFlushFence(device, ctx, 64, 0xC1);
  device.FlushLine(ctx, device.base() + 64);  // flush of a clean line
  device.Fence(ctx);
  PmCheckReport report = device.pmcheck()->Snapshot();
  EXPECT_EQ(report.counts[static_cast<size_t>(PmCheckClass::kRedundantFlush)], 1u);
  EXPECT_EQ(report.total_info(), 0u);
}

// pmcheck under a volatile CXL buffer: an unscheduled crash skips the
// class-4 scan — committed-but-staged lines differ from the shadow by
// design, not because the program missed a flush.
TEST(CxlBackend, VolatileBufferCrashSkipsClass4Scan) {
  DeviceConfig config = SmallConfig();
  config.backend = MediaBackend::kCxlMem;
  config.xpline_bytes = 1024;
  config.xpbuffer_bytes = 4 * 1024;
  config.cxl_volatile_buffer = true;
  config.pmcheck = true;
  PmDevice device{config};
  ASSERT_NE(device.pmcheck(), nullptr);
  ThreadContext ctx(device, 0, 0);
  StoreFlushFence(device, ctx, 0, 0xC2);  // acked, staged, not yet on media
  device.Crash();
  PmCheckReport report = device.pmcheck()->Snapshot();
  EXPECT_EQ(report.counts[static_cast<size_t>(PmCheckClass::kUnflushedAtClose)], 0u);
}

}  // namespace
}  // namespace cclbt::pmsim
