// Property tests for the runtime-dispatched SIMD primitives (DESIGN.md §12).
//
// The contract under test: for identical inputs, every dispatch level
// (scalar / SSE2 / AVX2, up to what the host supports) returns identical
// results, so query results can never depend on the ISA the build ran on.
// Inputs deliberately cover the awkward cases: duplicate fingerprints,
// fence entries (valid slots with value 0), keys of 0 and ~0ULL, every
// occupancy level 0..14, odd slot counts, and unsorted key arrays.
#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/leaf_node.h"

namespace cclbt {
namespace {

using simd::Level;

// Pins a dispatch level for the duration of a scope and always restores
// auto-detection, even if an assertion fires.
class LevelGuard {
 public:
  explicit LevelGuard(Level level) { simd::ForceLevel(level); }
  ~LevelGuard() { simd::ClearForce(); }
};

std::vector<Level> TestableLevels() {
  std::vector<Level> levels;
  for (int l = 0; l <= static_cast<int>(simd::MaxSupportedLevel()); l++) {
    levels.push_back(static_cast<Level>(l));
  }
  return levels;
}

// A 14-bit validity mask with the requested popcount, set bits chosen
// pseudo-randomly.
uint32_t RandomMask(Rng& rng, int popcount) {
  uint32_t mask = 0;
  while (__builtin_popcount(mask) < popcount) {
    mask |= 1u << rng.NextBounded(14);
  }
  return mask;
}

TEST(SimdDispatch, ParseLevelOverride) {
  EXPECT_EQ(simd::ParseLevelOverride(nullptr), -1);
  EXPECT_EQ(simd::ParseLevelOverride("off"), 0);
  EXPECT_EQ(simd::ParseLevelOverride("scalar"), 0);
  EXPECT_EQ(simd::ParseLevelOverride("0"), 0);
  EXPECT_EQ(simd::ParseLevelOverride("sse2"), 1);
  EXPECT_EQ(simd::ParseLevelOverride("avx2"), 2);
  EXPECT_EQ(simd::ParseLevelOverride("banana"), -1);
  EXPECT_EQ(simd::ParseLevelOverride(""), -1);
}

TEST(SimdDispatch, ForceLevelClampsToHardware) {
  {
    LevelGuard guard(Level::kAvx2);  // clamped if the host lacks AVX2
    EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
              static_cast<int>(simd::MaxSupportedLevel()));
  }
  {
    LevelGuard guard(Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), Level::kScalar);
  }
}

TEST(SimdProperty, FpMatch16AllLevelsAgree) {
  Rng rng(101);
  for (int iter = 0; iter < 5000; iter++) {
    uint8_t fps[16];
    for (auto& b : fps) {
      // Narrow byte range so duplicate fingerprints are common.
      b = static_cast<uint8_t>(rng.NextBounded(8));
    }
    uint8_t probe = static_cast<uint8_t>(rng.NextBounded(10));  // sometimes absent
    uint32_t valid = RandomMask(rng, static_cast<int>(rng.NextBounded(15)));
    uint32_t want = simd::FpMatch16Scalar(fps, probe, valid);
    EXPECT_EQ(want & ~valid, 0u);
    for (Level level : TestableLevels()) {
      LevelGuard guard(level);
      EXPECT_EQ(simd::FpMatch16(fps, probe, valid), want)
          << "level=" << simd::LevelName(level) << " iter=" << iter;
    }
  }
}

TEST(SimdProperty, KeyMatchStride2AllLevelsAgree) {
  Rng rng(202);
  for (int iter = 0; iter < 3000; iter++) {
    // Exercise every slot count the callers use: PmLeaf (14) and BufferNode
    // nbatch values, odd counts included (the SIMD tails differ).
    for (int nslots = 1; nslots <= 14; nslots++) {
      uint64_t pairs[2 * 14];
      for (int i = 0; i < 2 * nslots; i++) {
        // Small key space forces duplicates; value words (odd indices) get
        // the same treatment and must never influence the match.
        pairs[i] = rng.NextBounded(6);
      }
      // Fence-entry shape: some keys present with value 0, and key 0 itself
      // (the BufferNode empty-slot sentinel) as a probe target.
      uint64_t probe = rng.NextBounded(6);
      uint32_t valid = static_cast<uint32_t>(rng.Next()) & ((1u << nslots) - 1);
      uint32_t want = simd::KeyMatchStride2Scalar(pairs, nslots, probe, valid);
      for (Level level : TestableLevels()) {
        LevelGuard guard(level);
        EXPECT_EQ(simd::KeyMatchStride2(pairs, nslots, probe, valid), want)
            << "level=" << simd::LevelName(level) << " nslots=" << nslots << " iter=" << iter;
      }
    }
  }
}

TEST(SimdProperty, KeyMatchStride2ExtremeKeys) {
  // 0 and ~0ULL keys plus probes near the sign boundary (the AVX2 path
  // compares via sign-biased signed compares).
  const uint64_t specials[] = {0,       1,       0x7FFFFFFFFFFFFFFFULL,
                               1ULL << 63, ~0ULL - 1, ~0ULL};
  for (int nslots : {1, 2, 3, 6, 7, 14}) {
    uint64_t pairs[2 * 14] = {};
    for (int i = 0; i < nslots; i++) {
      pairs[2 * i] = specials[i % 6];
      pairs[2 * i + 1] = specials[(i + 3) % 6];  // values must be ignored
    }
    uint32_t valid = (1u << nslots) - 1;
    for (uint64_t probe : specials) {
      uint32_t want = simd::KeyMatchStride2Scalar(pairs, nslots, probe, valid);
      for (Level level : TestableLevels()) {
        LevelGuard guard(level);
        EXPECT_EQ(simd::KeyMatchStride2(pairs, nslots, probe, valid), want)
            << "level=" << simd::LevelName(level) << " nslots=" << nslots << " probe=" << probe;
      }
    }
  }
}

TEST(SimdProperty, CountLessAndLessEqAllLevelsAgree) {
  Rng rng(303);
  for (int iter = 0; iter < 2000; iter++) {
    int n = static_cast<int>(rng.NextBounded(64));  // 0..63 covers inner fanout
    std::vector<uint64_t> keys(static_cast<size_t>(n));
    for (auto& k : keys) {
      k = rng.NextBounded(40);  // duplicates guaranteed
    }
    std::sort(keys.begin(), keys.end());
    // Probe exact elements, neighbors, and extremes.
    std::vector<uint64_t> probes = {0, 39, ~0ULL, rng.NextBounded(41)};
    if (n > 0) {
      uint64_t mid = keys[static_cast<size_t>(n) / 2];
      probes.push_back(mid);
      probes.push_back(mid + 1);
      probes.push_back(mid == 0 ? 0 : mid - 1);
    }
    for (uint64_t probe : probes) {
      int want_less = simd::CountLessScalar(keys.data(), n, probe);
      int want_lesseq = simd::CountLessEqScalar(keys.data(), n, probe);
      // Cross-check against the STL on the sorted array.
      EXPECT_EQ(want_less,
                static_cast<int>(std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin()));
      EXPECT_EQ(want_lesseq,
                static_cast<int>(std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin()));
      for (Level level : TestableLevels()) {
        LevelGuard guard(level);
        EXPECT_EQ(simd::CountLess(keys.data(), n, probe), want_less)
            << "level=" << simd::LevelName(level) << " n=" << n << " probe=" << probe;
        EXPECT_EQ(simd::CountLessEq(keys.data(), n, probe), want_lesseq)
            << "level=" << simd::LevelName(level) << " n=" << n << " probe=" << probe;
      }
    }
  }
}

TEST(SimdProperty, CountLessSignBoundary) {
  // Keys straddling 2^63: a naive signed compare would order them wrong.
  std::vector<uint64_t> keys = {0, 1, (1ULL << 63) - 1, 1ULL << 63, (1ULL << 63) + 1, ~0ULL};
  while (keys.size() < 9) {  // odd count exercises the AVX2 tail
    keys.push_back(~0ULL);
  }
  const uint64_t boundary_probes[] = {0, (1ULL << 63) - 1, 1ULL << 63, ~0ULL};
  for (uint64_t probe : boundary_probes) {
    int n = static_cast<int>(keys.size());
    int want_less = simd::CountLessScalar(keys.data(), n, probe);
    int want_lesseq = simd::CountLessEqScalar(keys.data(), n, probe);
    for (Level level : TestableLevels()) {
      LevelGuard guard(level);
      EXPECT_EQ(simd::CountLess(keys.data(), n, probe), want_less);
      EXPECT_EQ(simd::CountLessEq(keys.data(), n, probe), want_lesseq);
    }
  }
}

TEST(SimdProperty, MinKeyStride2AllLevelsAgree) {
  Rng rng(404);
  for (int iter = 0; iter < 5000; iter++) {
    uint64_t pairs[2 * 14];
    for (auto& word : pairs) {
      switch (rng.NextBounded(4)) {
        case 0:
          word = 0;  // fence-entry keys/values
          break;
        case 1:
          word = ~0ULL;
          break;
        default:
          word = rng.Next();
      }
    }
    for (int popcount = 0; popcount <= 14; popcount++) {
      uint32_t valid = RandomMask(rng, popcount);
      uint64_t want = simd::MinKeyStride2Scalar(pairs, valid);
      // Independent naive check of the scalar reference itself.
      uint64_t naive = ~0ULL;
      for (int slot = 0; slot < 14; slot++) {
        if ((valid >> slot) & 1) {
          naive = std::min(naive, pairs[2 * slot]);
        }
      }
      ASSERT_EQ(want, naive);
      for (Level level : TestableLevels()) {
        LevelGuard guard(level);
        EXPECT_EQ(simd::MinKeyStride2(pairs, 14, valid), want)
            << "level=" << simd::LevelName(level) << " valid=" << valid << " iter=" << iter;
      }
    }
  }
}

// End-to-end: a populated PmLeaf answers FindSlot/MinKey/LiveCount
// identically at every dispatch level, including under fingerprint
// collisions (all fingerprints forced equal → every valid slot is a
// candidate and only the key compare disambiguates).
TEST(SimdLeaf, PmLeafProbesAgreeAcrossLevels) {
  Rng rng(505);
  for (int iter = 0; iter < 300; iter++) {
    alignas(256) core::PmLeaf leaf = {};
    int occupancy = static_cast<int>(rng.NextBounded(15));
    uint32_t valid = RandomMask(rng, occupancy);
    std::vector<uint64_t> present;
    for (int slot = 0; slot < core::kLeafSlots; slot++) {
      if (!((valid >> slot) & 1)) {
        continue;
      }
      uint64_t key = rng.Next() | 1;  // nonzero
      if (iter % 2 == 0) {
        // Collision half: rejection-sample keys that all share one
        // fingerprint byte, so every valid slot is a candidate and only the
        // key compare disambiguates.
        while (Fingerprint8(key) != 0x5A) {
          key = rng.Next() | 1;
        }
      }
      leaf.kvs[slot].key = key;
      leaf.fingerprints[slot] = Fingerprint8(key);
      leaf.kvs[slot].value = rng.NextBounded(3) == 0 ? 0 : rng.Next() | 1;  // some fence entries
      present.push_back(key);
    }
    leaf.meta.store(core::MakeMeta(valid, 0), std::memory_order_relaxed);

    // Baseline answers at scalar level.
    std::vector<int> want_slots;
    uint64_t want_min;
    bool want_found;
    int want_live;
    {
      LevelGuard guard(Level::kScalar);
      for (uint64_t key : present) {
        want_slots.push_back(leaf.FindSlot(key));
      }
      want_min = leaf.MinKey(&want_found);
      want_live = leaf.LiveCount();
    }
    for (Level level : TestableLevels()) {
      LevelGuard guard(level);
      for (size_t i = 0; i < present.size(); i++) {
        int slot = leaf.FindSlot(present[i]);
        EXPECT_EQ(slot, want_slots[i]) << "level=" << simd::LevelName(level);
        ASSERT_GE(slot, 0);
        EXPECT_EQ(leaf.kvs[slot].key, present[i]);
      }
      EXPECT_EQ(leaf.FindSlot(rng.Next() | (1ULL << 62)), -1);  // absent key
      bool found = false;
      EXPECT_EQ(leaf.MinKey(&found), want_min) << "level=" << simd::LevelName(level);
      EXPECT_EQ(found, want_found);
      EXPECT_EQ(leaf.LiveCount(), want_live);
    }
  }
}

TEST(SimdLeaf, EmptyLeafMinKeyNotFound) {
  alignas(256) core::PmLeaf leaf = {};
  leaf.meta.store(core::MakeMeta(0, 0), std::memory_order_relaxed);
  for (Level level : TestableLevels()) {
    LevelGuard guard(level);
    bool found = true;
    EXPECT_EQ(leaf.MinKey(&found), ~0ULL);
    EXPECT_FALSE(found);
  }
}

}  // namespace
}  // namespace cclbt
