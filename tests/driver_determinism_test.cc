// Regression tests for the driver's determinism contract (see the RunConfig
// comment in src/bench/driver.h): the virtual-time metrics must be a pure
// function of the RunConfig, not of host timing. These tests pin that
// property so hot-path optimizations in pmsim (flat XPBuffer, sharded stats,
// pending-set dedup) cannot silently perturb simulated results.
#include <gtest/gtest.h>

#include <string>

#include "src/bench/driver.h"

namespace cclbt::bench {
namespace {

RunConfig SmallConfig() {
  RunConfig config;
  config.threads = 4;
  config.threads_per_socket = 2;
  config.warm_keys = 20'000;
  config.ops = 20'000;
  config.op = OpType::kInsert;
  config.seed = 1234;
  return config;
}

void ExpectIdenticalVirtualMetrics(const RunResult& a, const RunResult& b) {
  // Bit-identical, not approximately equal: every virtual counter and every
  // derived virtual time must match exactly.
  EXPECT_EQ(a.stats.user_bytes, b.stats.user_bytes);
  EXPECT_EQ(a.stats.line_flushes, b.stats.line_flushes);
  EXPECT_EQ(a.stats.fences, b.stats.fences);
  EXPECT_EQ(a.stats.xpbuffer_write_bytes, b.stats.xpbuffer_write_bytes);
  EXPECT_EQ(a.stats.media_write_bytes, b.stats.media_write_bytes);
  EXPECT_EQ(a.stats.media_read_bytes, b.stats.media_read_bytes);
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(a.stats.media_writes_by_tag[i], b.stats.media_writes_by_tag[i]) << "tag " << i;
  }
  EXPECT_EQ(a.stats.remote_accesses, b.stats.remote_accesses);
  EXPECT_EQ(a.stats.pm_reads, b.stats.pm_reads);
  EXPECT_EQ(a.stats.pm_read_hits, b.stats.pm_read_hits);
  EXPECT_EQ(a.elapsed_virtual_ms, b.elapsed_virtual_ms);
  EXPECT_EQ(a.max_worker_vtime_ms, b.max_worker_vtime_ms);
  EXPECT_EQ(a.max_dimm_busy_ms, b.max_dimm_busy_ms);
  EXPECT_EQ(a.mops, b.mops);
}

// Same RunConfig, run twice, sequential driver: every virtual metric must be
// bit-identical. cclbtree's background GC thread is the one source of
// nondeterminism in the stack, so it is disabled here; the GC path itself is
// covered by ccl_btree_test and bench_fig14.
TEST(DriverDeterminismTest, RepeatedRunsAreBitIdentical) {
  IndexConfig index_config;
  index_config.tree.background_gc = false;
  RunConfig config = SmallConfig();
  RunResult first = RunIndexWorkload("cclbtree", config, index_config);
  RunResult second = RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_GT(first.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(first, second);
}

// A single logical worker must produce the same virtual metrics whether it
// runs inline in the driver or on a real OS thread: with one worker there is
// no interleaving, so os_parallel may not affect simulated results.
TEST(DriverDeterminismTest, SingleWorkerOsParallelMatchesSequential) {
  IndexConfig index_config;
  index_config.tree.background_gc = false;
  RunConfig config = SmallConfig();
  config.threads = 1;
  config.threads_per_socket = 1;
  config.os_parallel = false;
  RunResult sequential = RunIndexWorkload("cclbtree", config, index_config);
  config.os_parallel = true;
  RunResult parallel = RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_GT(sequential.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(sequential, parallel);
}

// Determinism must hold for a baseline index too (different code path: no
// log, different flush pattern).
TEST(DriverDeterminismTest, FastFairRepeatedRunsAreBitIdentical) {
  RunConfig config = SmallConfig();
  RunResult first = RunIndexWorkload("fastfair", config);
  RunResult second = RunIndexWorkload("fastfair", config);
  ASSERT_GT(first.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(first, second);
}

}  // namespace
}  // namespace cclbt::bench
