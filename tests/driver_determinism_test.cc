// Regression tests for the driver's determinism contract (see the RunConfig
// comment in src/bench/driver.h): the virtual-time metrics must be a pure
// function of the RunConfig, not of host timing. These tests pin that
// property so hot-path optimizations in pmsim (flat XPBuffer, sharded stats,
// pending-set dedup) cannot silently perturb simulated results.
#include <gtest/gtest.h>

#include <string>

#include "src/bench/driver.h"

namespace cclbt::bench {
namespace {

RunConfig SmallConfig() {
  RunConfig config;
  config.threads = 4;
  config.threads_per_socket = 2;
  config.warm_keys = 20'000;
  config.ops = 20'000;
  config.op = OpType::kInsert;
  config.seed = 1234;
  return config;
}

void ExpectIdenticalVirtualMetrics(const RunResult& a, const RunResult& b) {
  // Bit-identical, not approximately equal: every virtual counter and every
  // derived virtual time must match exactly.
  EXPECT_EQ(a.stats.user_bytes, b.stats.user_bytes);
  EXPECT_EQ(a.stats.line_flushes, b.stats.line_flushes);
  EXPECT_EQ(a.stats.fences, b.stats.fences);
  EXPECT_EQ(a.stats.xpbuffer_write_bytes, b.stats.xpbuffer_write_bytes);
  EXPECT_EQ(a.stats.media_write_bytes, b.stats.media_write_bytes);
  EXPECT_EQ(a.stats.media_read_bytes, b.stats.media_read_bytes);
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(a.stats.media_writes_by_tag[i], b.stats.media_writes_by_tag[i]) << "tag " << i;
  }
  EXPECT_EQ(a.stats.remote_accesses, b.stats.remote_accesses);
  EXPECT_EQ(a.stats.pm_reads, b.stats.pm_reads);
  EXPECT_EQ(a.stats.pm_read_hits, b.stats.pm_read_hits);
  EXPECT_EQ(a.elapsed_virtual_ms, b.elapsed_virtual_ms);
  EXPECT_EQ(a.max_worker_vtime_ms, b.max_worker_vtime_ms);
  EXPECT_EQ(a.max_dimm_busy_ms, b.max_dimm_busy_ms);
  EXPECT_EQ(a.mops, b.mops);
}

// Same RunConfig, run twice, sequential driver: every virtual metric must be
// bit-identical. GC disabled: the no-GC baseline of the contract.
TEST(DriverDeterminismTest, RepeatedRunsAreBitIdentical) {
  IndexConfig index_config;
  index_config.tree.background_gc = false;
  RunConfig config = SmallConfig();
  RunResult first = RunIndexWorkload("cclbtree", config, index_config);
  RunResult second = RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_GT(first.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(first, second);
}

// A single logical worker must produce the same virtual metrics whether it
// runs inline in the driver or on a real OS thread: with one worker there is
// no interleaving, so os_parallel may not affect simulated results.
TEST(DriverDeterminismTest, SingleWorkerOsParallelMatchesSequential) {
  IndexConfig index_config;
  index_config.tree.background_gc = false;
  RunConfig config = SmallConfig();
  config.threads = 1;
  config.threads_per_socket = 1;
  config.os_parallel = false;
  RunResult sequential = RunIndexWorkload("cclbtree", config, index_config);
  config.os_parallel = true;
  RunResult parallel = RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_GT(sequential.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(sequential, parallel);
}

// The tentpole of DESIGN.md §10: with background GC *enabled* (the default
// deterministic scheduling), repeated runs must still be bit-identical —
// historically the one standing exception to the driver's contract, because
// GC ran on a free-running OS thread paced by wall-clock sleeps.
TEST(DriverDeterminismTest, BackgroundGcRunsAreBitIdentical) {
  IndexConfig index_config;
  index_config.tree.background_gc = true;
  // Low trigger threshold so several GC rounds fire inside this small run;
  // the assertions below prove GC actually ran.
  index_config.tree.th_log_pct = 10;
  RunConfig config = SmallConfig();
  RunResult first = RunIndexWorkload("cclbtree", config, index_config);
  RunResult second = RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_GT(first.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(first, second);
  // GC-attributed media bytes: present (GC ran) and bit-identical.
  uint64_t gc_bytes_first = first.stats.media_write_bytes_for(trace::Component::kGc);
  uint64_t gc_bytes_second = second.stats.media_write_bytes_for(trace::Component::kGc);
  EXPECT_GT(gc_bytes_first, 0u) << "GC never fired; the run has no GC to pin down";
  EXPECT_EQ(gc_bytes_first, gc_bytes_second);
  for (int c = 0; c < trace::kNumComponents; c++) {
    EXPECT_EQ(first.stats.media_write_bytes_by_component[c],
              second.stats.media_write_bytes_by_component[c])
        << "component " << trace::ComponentName(static_cast<trace::Component>(c));
  }
  // The `pmctl stats` conservation invariant, per run: attributed bytes sum
  // exactly to the total — GC's share is moved between runs, never lost.
  for (const RunResult* result : {&first, &second}) {
    uint64_t component_sum = 0;
    for (int c = 0; c < trace::kNumComponents; c++) {
      component_sum += result->stats.media_write_bytes_by_component[c];
    }
    EXPECT_EQ(component_sum, result->stats.media_write_bytes);
  }
}

// Driver-paced GC epochs (RunConfig::gc_epoch_ops) are part of the same
// contract: pinning rounds to driver epochs must be reproducible too.
TEST(DriverDeterminismTest, DriverGcEpochRunsAreBitIdentical) {
  IndexConfig index_config;
  index_config.tree.background_gc = false;  // GC paced by the driver instead
  index_config.tree.th_log_pct = 10;
  RunConfig config = SmallConfig();
  config.gc_epoch_ops = 512;
  RunResult first = RunIndexWorkload("cclbtree", config, index_config);
  RunResult second = RunIndexWorkload("cclbtree", config, index_config);
  ExpectIdenticalVirtualMetrics(first, second);
  uint64_t gc_bytes = first.stats.media_write_bytes_for(trace::Component::kGc);
  EXPECT_GT(gc_bytes, 0u) << "driver epochs never ticked a GC round";
  EXPECT_EQ(gc_bytes, second.stats.media_write_bytes_for(trace::Component::kGc));
}

// Determinism must hold for a baseline index too (different code path: no
// log, different flush pattern).
TEST(DriverDeterminismTest, FastFairRepeatedRunsAreBitIdentical) {
  RunConfig config = SmallConfig();
  RunResult first = RunIndexWorkload("fastfair", config);
  RunResult second = RunIndexWorkload("fastfair", config);
  ASSERT_GT(first.stats.media_write_bytes, 0u);
  ExpectIdenticalVirtualMetrics(first, second);
}

}  // namespace
}  // namespace cclbt::bench
