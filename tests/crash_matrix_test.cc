// Systematic crash-injection matrix (DESIGN.md §9): for every scheduled
// fence, power-fail the workload at exactly that fence, reopen the pool,
// recover the index and verify the durability oracle — every durably
// acknowledged KV present with its exact value, torn lines old-or-new but
// never garbage. The whole matrix is a pure function of its seed.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crashtest/crash_matrix.h"

namespace cclbt::crashtest {
namespace {

// Shared full-size config: all three schedule kinds over a mixed
// upsert/remove workload. Each recoverable index must clear >= 100 fired
// points so the two of them together cover the 200-point acceptance bar.
MatrixConfig FullConfig(const std::string& index) {
  MatrixConfig config;
  config.index = index;
  config.seed = 1;
  config.ops = 2000;
  config.key_space = 700;
  config.nth = 73;          // every-Nth sweep over the whole run
  config.random_points = 55;  // seeded-random draws
  config.window_len = 24;   // exhaustive window centred on the workload
  config.torn = true;       // honoured only if the index tolerates torn lines
  return config;
}

void ExpectMatrixClean(const MatrixResult& result, uint64_t min_points) {
  SCOPED_TRACE("crash_points=" + std::to_string(result.crash_points) +
               " gc_rounds_probe=" + std::to_string(result.gc_rounds_probe) +
               " gc_window_points=" + std::to_string(result.gc_window_points));
  for (const std::string& diag : result.diagnostics) {
    ADD_FAILURE() << diag;
  }
  EXPECT_TRUE(result.index_recoverable);
  EXPECT_EQ(result.reopen_failures, 0u);
  EXPECT_EQ(result.recover_failures, 0u);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.stale, 0u);
  EXPECT_EQ(result.garbage, 0u);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.crash_points, min_points);
  EXPECT_GT(result.keys_checked, 0u);
}

TEST(BuildSchedule, CoversAllThreeKindsDeterministically) {
  MatrixConfig config = FullConfig("cclbtree");
  const uint64_t total_fences = 3000;
  auto points = BuildSchedule(config, total_fences, /*torn_allowed=*/true);
  auto again = BuildSchedule(config, total_fences, /*torn_allowed=*/true);
  ASSERT_EQ(points.size(), again.size());
  for (size_t i = 0; i < points.size(); i++) {
    EXPECT_EQ(points[i].fence_target, again[i].fence_target);
    EXPECT_EQ(points[i].torn, again[i].torn);
    EXPECT_EQ(points[i].torn_seed, again[i].torn_seed);
  }
  // every-Nth points lead the schedule.
  const uint64_t nth_points = total_fences / config.nth;
  ASSERT_GE(points.size(), nth_points + config.random_points + config.window_len);
  for (uint64_t i = 0; i < nth_points; i++) {
    EXPECT_EQ(points[i].fence_target, (i + 1) * config.nth);
  }
  // gc-window schedule: every gc_stride-th fence of each window, clamped to
  // the observed fence range.
  std::vector<GcWindow> gc_windows = {{100, 110}, {2990, 3010}};
  auto with_gc = BuildSchedule(config, total_fences, /*torn_allowed=*/true, gc_windows);
  std::vector<uint64_t> expected;
  for (uint64_t target = 100; target <= 110; target += config.gc_stride) {
    expected.push_back(target);
  }
  for (uint64_t target = 2990; target <= 3000; target += config.gc_stride) {
    expected.push_back(target);  // 3002+ fall outside total_fences
  }
  ASSERT_EQ(with_gc.size(), points.size() + expected.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(with_gc[points.size() + i].fence_target, expected[i]);
  }
  // All targets stay inside the observed fence range.
  uint64_t torn_count = 0;
  for (const CrashPoint& point : points) {
    EXPECT_GE(point.fence_target, 1u);
    EXPECT_LE(point.fence_target, total_fences);
    torn_count += point.torn;
  }
  EXPECT_GT(torn_count, 0u);
  // Torn points disappear entirely when the index does not tolerate them.
  for (const CrashPoint& point : BuildSchedule(config, total_fences, /*torn_allowed=*/false)) {
    EXPECT_FALSE(point.torn);
  }
}

TEST(CrashMatrix, CclBtreeSurvivesFullMatrix) {
  MatrixResult result = RunCrashMatrix(FullConfig("cclbtree"));
  ExpectMatrixClean(result, /*min_points=*/100);
  // CCL-BTree declares torn tolerance: both crash flavours must have run.
  EXPECT_GT(result.clean_crashes, 0u);
  EXPECT_GT(result.torn_crashes, 0u);
  // Deterministic background GC ran in the probe, and the gc-window schedule
  // crashed inside GC's own flush/fence stream — the epoch flip, the
  // relocate-to-I-log appends and the B-log release all live in these
  // windows (acceptance bar: >= 20 points inside GC activity, zero oracle
  // violations, which ExpectMatrixClean already asserted).
  EXPECT_GT(result.gc_rounds_probe, 0u);
  EXPECT_GE(result.gc_window_points, 20u);
}

TEST(CrashMatrix, FastFairSurvivesFullMatrix) {
  MatrixResult result = RunCrashMatrix(FullConfig("fastfair"));
  ExpectMatrixClean(result, /*min_points=*/100);
  // FAST&FAIR declares torn crashes out of scope (count-based node header):
  // the matrix must downgrade every point to a clean crash, not fake it.
  EXPECT_EQ(result.torn_crashes, 0u);
}

TEST(CrashMatrix, ResultIsDeterministicFromSeed) {
  MatrixConfig config;
  config.index = "cclbtree";
  config.seed = 7;
  config.ops = 600;
  config.key_space = 200;
  config.random_points = 10;
  config.window_len = 16;
  config.torn = true;
  MatrixResult first = RunCrashMatrix(config);
  MatrixResult second = RunCrashMatrix(config);
  EXPECT_GT(first.crash_points, 0u);
  EXPECT_EQ(first.total_fences, second.total_fences);
  EXPECT_EQ(first.crash_points, second.crash_points);
  EXPECT_EQ(first.keys_checked, second.keys_checked);
  EXPECT_EQ(first.digest, second.digest);
  // A different seed reshuffles the workload and the schedule.
  config.seed = 8;
  MatrixResult other = RunCrashMatrix(config);
  EXPECT_NE(first.digest, other.digest);
}

// The eADR backend (DESIGN.md §14) has no unfenced-pending crash window:
// every acked update was made durable at its FlushLine, so the matrix must
// observe exactly zero lost acked updates across every crash point.
TEST(CrashMatrix, EadrBackendLosesNoAckedUpdates) {
  MatrixConfig config;
  config.index = "cclbtree";
  config.seed = 11;
  config.ops = 600;
  config.key_space = 200;
  config.nth = 41;
  config.random_points = 12;
  config.window_len = 16;
  config.backend = pmsim::MediaBackend::kEadr;
  MatrixResult result = RunCrashMatrix(config);
  ExpectMatrixClean(result, /*min_points=*/20);
  EXPECT_EQ(result.lost, 0u);
}

TEST(CrashMatrix, NotRecoverableIndexIsReportedHonestly) {
  MatrixConfig config;
  config.index = "lsmstore";
  config.ops = 200;
  config.key_space = 100;
  config.window_len = 8;
  MatrixResult result = RunCrashMatrix(config);
  EXPECT_FALSE(result.index_recoverable);
  EXPECT_EQ(result.crash_points, 0u);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_NE(result.diagnostics[0].find("not_recoverable"), std::string::npos);
}

}  // namespace
}  // namespace cclbt::crashtest
