// Unit tests for the write-ahead log layer: entry tagging/checksums, chunk
// recycling across generations, epoch accounting, and torn-entry rejection.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/wal.h"
#include "src/pmem/pool.h"

namespace cclbt::core {
namespace {

struct WalFixture : public ::testing::Test {
  void SetUp() override {
    pmsim::DeviceConfig config;
    config.pool_bytes = 256 << 20;
    device = std::make_unique<pmsim::PmDevice>(config);
    ctx = std::make_unique<pmsim::ThreadContext>(*device, 0, 0);
    pool = pmem::PmPool::Create(*device);
    arena = pmem::LogArena::Create(*pool);
  }

  std::unique_ptr<pmsim::PmDevice> device;
  std::unique_ptr<pmsim::ThreadContext> ctx;
  std::unique_ptr<pmem::PmPool> pool;
  std::unique_ptr<pmem::LogArena> arena;
};

TEST_F(WalFixture, ChecksumDetectsValueCorruption) {
  uint64_t word = MakeTsWord(/*generation=*/3, /*timestamp=*/777, /*key=*/1, /*value=*/2);
  LogEntry good{1, 2, word};
  EXPECT_TRUE(EntryValid(good, 3));
  LogEntry bad_value{1, 99, word};
  EXPECT_FALSE(EntryValid(bad_value, 3));
  LogEntry bad_key{7, 2, word};
  EXPECT_FALSE(EntryValid(bad_key, 3));
  EXPECT_FALSE(EntryValid(good, 4));  // wrong generation
}

TEST_F(WalFixture, ZeroTimestampIsInvalid) {
  uint64_t word = MakeTsWord(1, 0, 5, 6);
  EXPECT_FALSE(EntryValid(LogEntry{5, 6, word}, 1));
}

TEST_F(WalFixture, AppendedEntriesScanBackInOrder) {
  ThreadWal wal(*arena, 0);
  for (uint64_t i = 1; i <= 1000; i++) {
    ASSERT_TRUE(wal.Append(/*epoch=*/0, i, i * 2, /*timestamp=*/i));
  }
  std::vector<LogEntry> seen;
  WalSet::ScanAll(*arena, [&seen](const LogEntry& entry) { seen.push_back(entry); });
  ASSERT_EQ(seen.size(), 1000u);
  for (uint64_t i = 0; i < seen.size(); i++) {
    EXPECT_EQ(seen[i].key, i + 1);
    EXPECT_EQ(seen[i].value, (i + 1) * 2);
    EXPECT_EQ(seen[i].timestamp(), i + 1);
  }
}

TEST_F(WalFixture, ReleaseFreesChunksAndStopsScan) {
  ThreadWal wal(*arena, 0);
  for (uint64_t i = 1; i <= 100; i++) {
    wal.Append(0, i, i, i);
  }
  EXPECT_EQ(wal.ReleaseEpoch(0), 100 * sizeof(LogEntry));
  int entries = 0;
  WalSet::ScanAll(*arena, [&entries](const LogEntry&) { entries++; });
  EXPECT_EQ(entries, 0);  // freed chunks are not scanned
  EXPECT_EQ(arena->free_chunks(), 1u);
}

TEST_F(WalFixture, RecycledChunkRejectsStaleGenerationEntries) {
  ThreadWal wal(*arena, 0);
  // Fill generation 1 with many entries, release, then write FEWER entries
  // in generation 2 into the same (recycled, dirty) chunk.
  for (uint64_t i = 1; i <= 500; i++) {
    wal.Append(0, i, i, i);
  }
  wal.ReleaseEpoch(0);
  for (uint64_t i = 1; i <= 10; i++) {
    wal.Append(0, 1000 + i, i, 5000 + i);
  }
  std::vector<LogEntry> seen;
  WalSet::ScanAll(*arena, [&seen](const LogEntry& entry) { seen.push_back(entry); });
  // Only the 10 fresh entries are valid; the 490 stale ones behind them have
  // the old generation tag and terminate the prefix scan.
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen[0].key, 1001u);
}

TEST_F(WalFixture, EpochsAreIndependentChains) {
  ThreadWal wal(*arena, 0);
  for (uint64_t i = 1; i <= 50; i++) {
    wal.Append(0, i, i, i);
    wal.Append(1, 100 + i, i, 100 + i);
  }
  EXPECT_EQ(wal.appended_bytes(0), 50 * sizeof(LogEntry));
  EXPECT_EQ(wal.appended_bytes(1), 50 * sizeof(LogEntry));
  wal.ReleaseEpoch(0);
  int survivors = 0;
  WalSet::ScanAll(*arena, [&survivors](const LogEntry& entry) {
    EXPECT_GE(entry.key, 100u);
    survivors++;
  });
  EXPECT_EQ(survivors, 50);
}

TEST_F(WalFixture, WalSetTracksLiveAndPeakBytes) {
  WalSet wals(*arena, 8);
  for (int w = 0; w < 4; w++) {
    for (uint64_t i = 1; i <= 100; i++) {
      ASSERT_TRUE(wals.Append(w, 0, i, i, i * 4 + static_cast<uint64_t>(w) + 1));
    }
  }
  EXPECT_EQ(wals.live_bytes(), 400 * sizeof(LogEntry));
  EXPECT_EQ(wals.peak_bytes(), 400 * sizeof(LogEntry));
  wals.ReleaseEpoch(0);
  EXPECT_EQ(wals.live_bytes(), 0u);
  EXPECT_EQ(wals.peak_bytes(), 400 * sizeof(LogEntry));  // peak is sticky
}

TEST_F(WalFixture, EntriesCrossChunkBoundaries) {
  ThreadWal wal(*arena, 0);
  // 4 MB chunk holds ~174k entries; write past one chunk.
  const uint64_t kEntries = 200'000;
  for (uint64_t i = 1; i <= kEntries; i++) {
    ASSERT_TRUE(wal.Append(0, i, i, i));
  }
  EXPECT_GE(arena->total_chunks(), 2u);
  uint64_t count = 0;
  std::map<uint64_t, int> keys;
  WalSet::ScanAll(*arena, [&](const LogEntry& entry) {
    count++;
    keys[entry.key]++;
  });
  EXPECT_EQ(count, kEntries);
  EXPECT_EQ(keys.size(), kEntries);  // no duplicates, none lost
}

TEST_F(WalFixture, EntriesSurviveCrash) {
  ThreadWal wal(*arena, 0);
  for (uint64_t i = 1; i <= 300; i++) {
    wal.Append(0, i, i * 7, i);
  }
  device->Crash();
  int count = 0;
  WalSet::ScanAll(*arena, [&count](const LogEntry& entry) {
    EXPECT_EQ(entry.value, entry.key * 7);
    count++;
  });
  EXPECT_EQ(count, 300);
}

TEST_F(WalFixture, SequentialAppendsHaveLowXbi) {
  // ~10.7 24 B entries share an XPLine (§3.5): media bytes per entry should
  // be close to 24, far below 256.
  ThreadWal wal(*arena, 0);
  auto before = device->stats().Snapshot();
  const uint64_t kEntries = 50'000;
  for (uint64_t i = 1; i <= kEntries; i++) {
    wal.Append(0, i, i, i);
  }
  device->DrainBuffers();
  auto delta = device->stats().Snapshot().Delta(before);
  double media_per_entry =
      static_cast<double>(delta.media_write_bytes) / static_cast<double>(kEntries);
  EXPECT_LT(media_per_entry, 32.0);
  EXPECT_GT(media_per_entry, 20.0);
}

}  // namespace
}  // namespace cclbt::core
