// Unit tests for the persistent-memory simulator: XPBuffer write-combining,
// media accounting (CLI vs XBI), ADR crash semantics, NUMA mapping, and the
// virtual-time cost model.
#include <cstring>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pmsim/device.h"

namespace cclbt::pmsim {
namespace {

DeviceConfig SmallConfig() {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 2;
  config.dimms_per_socket = 2;
  return config;
}

TEST(XpBuffer, MergesLinesOfSameXpline) {
  XpBuffer buffer(4);
  // Four lines of one XPLine: one insert, three hits, no eviction.
  for (int line = 0; line < 4; line++) {
    auto result = buffer.OnLineFlush(/*xpline=*/7, line, StreamTag::kLeaf);
    EXPECT_FALSE(result.evicted);
  }
  EXPECT_EQ(buffer.resident(), 1u);
}

TEST(XpBuffer, EvictsLruOnOverflow) {
  XpBuffer buffer(2);
  EXPECT_FALSE(buffer.OnLineFlush(1, 0, StreamTag::kLeaf).evicted);
  EXPECT_FALSE(buffer.OnLineFlush(2, 0, StreamTag::kLog).evicted);
  auto result = buffer.OnLineFlush(3, 0, StreamTag::kOther);
  EXPECT_TRUE(result.evicted);
  EXPECT_EQ(result.evicted_tag, StreamTag::kLeaf);  // xpline 1 was LRU
}

TEST(XpBuffer, TouchRefreshesLru) {
  XpBuffer buffer(2);
  buffer.OnLineFlush(1, 0, StreamTag::kLeaf);
  buffer.OnLineFlush(2, 0, StreamTag::kLog);
  buffer.OnLineFlush(1, 1, StreamTag::kLeaf);  // touch 1
  auto result = buffer.OnLineFlush(3, 0, StreamTag::kOther);
  EXPECT_TRUE(result.evicted);
  EXPECT_EQ(result.evicted_tag, StreamTag::kLog);  // 2 is now LRU
}

TEST(XpBuffer, PartialEvictionIsRmw) {
  XpBuffer buffer(1);
  buffer.OnLineFlush(1, 0, StreamTag::kLeaf);  // only 1 of 4 lines dirty
  auto result = buffer.OnLineFlush(2, 0, StreamTag::kLeaf);
  EXPECT_TRUE(result.evicted);
  EXPECT_TRUE(result.rmw);
}

TEST(XpBuffer, FullLineEvictionIsNotRmw) {
  XpBuffer buffer(1);
  for (int line = 0; line < 4; line++) {
    buffer.OnLineFlush(1, line, StreamTag::kLeaf);
  }
  auto result = buffer.OnLineFlush(2, 0, StreamTag::kLeaf);
  EXPECT_TRUE(result.evicted);
  EXPECT_FALSE(result.rmw);
}

TEST(XpBuffer, ReadHitsResidentLines) {
  XpBuffer buffer(4);
  buffer.OnLineFlush(5, 0, StreamTag::kLeaf);
  EXPECT_TRUE(buffer.OnRead(5));
  EXPECT_FALSE(buffer.OnRead(6));
}

TEST(Device, SocketAndDimmMapping) {
  PmDevice device(SmallConfig());
  // Socket 0 region = first half.
  EXPECT_EQ(device.SocketOf(0), 0);
  EXPECT_EQ(device.SocketOf(device.size() / 2), 1);
  // Interleave across the socket's DIMMs at 4 KB.
  EXPECT_EQ(device.DimmOf(0), 0);
  EXPECT_EQ(device.DimmOf(4096), 1);
  EXPECT_EQ(device.DimmOf(8192), 0);
  EXPECT_EQ(device.DimmOf(device.size() / 2), 2);  // socket 1's first DIMM
}

TEST(Device, CliAccountingCountsLineFlushes) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  device.stats().AddUserBytes(16);
  std::byte* addr = device.base() + 4096;
  std::memset(addr, 1, 16);
  device.FlushLine(ctx, addr);
  device.Fence(ctx);
  auto snapshot = device.stats().Snapshot();
  EXPECT_EQ(snapshot.line_flushes, 1u);
  EXPECT_EQ(snapshot.xpbuffer_write_bytes, 64u);
  EXPECT_DOUBLE_EQ(snapshot.CliAmplification(), 4.0);  // 64 B / 16 B
}

TEST(Device, XbiRequiresEvictionOrDrain) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  std::byte* addr = device.base() + 4096;
  device.FlushLine(ctx, addr);
  device.Fence(ctx);
  EXPECT_EQ(device.stats().Snapshot().media_write_bytes, 0u);  // still buffered
  device.DrainBuffers();
  EXPECT_EQ(device.stats().Snapshot().media_write_bytes, 256u);
}

TEST(Device, SequentialWritesAmplifyLessThanRandom) {
  // The core phenomenon of the paper (§2): N random single-line flushes cost
  // N XPLines of media write, while N sequential line flushes cost N/4.
  auto run = [](bool sequential) {
    DeviceConfig config = SmallConfig();
    config.dimms_per_socket = 1;
    config.num_sockets = 1;
    PmDevice device(config);
    ThreadContext ctx(device, 0);
    Rng rng(5);
    const int kFlushes = 4096;
    for (int i = 0; i < kFlushes; i++) {
      size_t offset = sequential
                          ? 4096 + static_cast<size_t>(i) * 64
                          : 4096 + (rng.NextBounded(1 << 15)) * 256;
      device.FlushLine(ctx, device.base() + offset);
      device.Fence(ctx);
    }
    device.DrainBuffers();
    return device.stats().Snapshot().media_write_bytes;
  };
  uint64_t sequential_bytes = run(true);
  uint64_t random_bytes = run(false);
  EXPECT_LT(sequential_bytes * 3, random_bytes);
  EXPECT_EQ(sequential_bytes, 4096u * 64);  // perfect combining: 64 B per flush
}

TEST(Device, CrashDropsUnflushedStores) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 0xAAAA;
  device.PersistRange(ctx, word, 8);
  *word = 0xBBBB;  // stored but never flushed
  device.Crash();
  EXPECT_EQ(*word, 0xAAAAu);
}

TEST(Device, CrashDropsFlushedButUnfencedStores) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 0x1111;
  device.PersistRange(ctx, word, 8);
  *word = 0x2222;
  device.FlushLine(ctx, word);  // clwb without sfence
  device.Crash();
  EXPECT_EQ(*word, 0x1111u);
}

TEST(Device, FencedStoresSurviveCrash) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 0x3333;
  device.FlushLine(ctx, word);
  device.Fence(ctx);
  device.Crash();
  EXPECT_EQ(*word, 0x3333u);
}

TEST(Device, CrashTornAppliesSubsetOfPendingLines) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  // Prepare 64 pending lines, then crash torn: roughly half should persist.
  for (int i = 0; i < 64; i++) {
    auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192 + i * 64);
    *word = 7;
    device.FlushLine(ctx, word);
  }
  device.CrashTorn(/*seed=*/99);
  int persisted = 0;
  for (int i = 0; i < 64; i++) {
    persisted += *reinterpret_cast<uint64_t*>(device.base() + 8192 + i * 64) == 7;
  }
  EXPECT_GT(persisted, 8);
  EXPECT_LT(persisted, 56);
}

TEST(Device, VirtualClockAdvancesOnPmReads) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  uint64_t before = ctx.now_ns();
  device.ReadPm(ctx, device.base() + 4096, 256);
  EXPECT_GT(ctx.now_ns(), before);
}

TEST(Device, RemoteReadsCostMore) {
  PmDevice device(SmallConfig());
  uint64_t local_cost = 0;
  uint64_t remote_cost = 0;
  {
    ThreadContext ctx(device, 0);
    device.ReadPm(ctx, device.base() + 4096, 256);  // socket 0 address
    local_cost = ctx.now_ns();
  }
  {
    ThreadContext ctx(device, 1);
    device.ReadPm(ctx, device.base() + 4096, 256);
    remote_cost = ctx.now_ns();
  }
  EXPECT_GT(remote_cost, local_cost);
  EXPECT_EQ(device.stats().Snapshot().remote_accesses, 1u);
}

TEST(Device, WpqBackpressureStallsWriters) {
  // Flood one DIMM with random-XPLine flushes: the virtual clock must grow
  // roughly linearly with the number of media writes (the Figure 2(b)
  // regime) rather than with the flush CPU cost alone.
  DeviceConfig config = SmallConfig();
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  PmDevice device(config);
  ThreadContext ctx(device, 0);
  Rng rng(3);
  const int kWrites = 2000;
  for (int i = 0; i < kWrites; i++) {
    size_t offset = 4096 + rng.NextBounded(1 << 14) * 256;
    device.FlushLine(ctx, device.base() + offset);
    device.Fence(ctx);
  }
  // Each eviction costs >= xpline_write_service_ns of device time; with the
  // slack subtracted, the clock should be within 2x of the media-bound time.
  uint64_t media_lower_bound =
      static_cast<uint64_t>(kWrites - 200) * config.cost.xpline_write_service_ns;
  EXPECT_GT(ctx.now_ns() + config.cost.wpq_slack_ns, media_lower_bound / 2);
}

TEST(Device, TagAttributionFollowsRegisteredRanges) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  device.RegisterRange(device.base() + 4096, 4096, StreamTag::kLeaf);
  device.RegisterRange(device.base() + 8192, 4096, StreamTag::kLog);
  device.FlushLine(ctx, device.base() + 4096);
  device.FlushLine(ctx, device.base() + 8192);
  device.Fence(ctx);
  device.DrainBuffers();
  auto snapshot = device.stats().Snapshot();
  EXPECT_EQ(snapshot.media_writes_by_tag[static_cast<int>(StreamTag::kLeaf)], 1u);
  EXPECT_EQ(snapshot.media_writes_by_tag[static_cast<int>(StreamTag::kLog)], 1u);
}

TEST(Device, EadrModePersistsWithoutFence) {
  DeviceConfig config = SmallConfig();
  config.eadr = true;
  PmDevice device(config);
  ThreadContext ctx(device, 0);
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 0x77;
  device.FlushLine(ctx, word);  // no fence needed in eADR
  device.Crash();
  EXPECT_EQ(*word, 0x77u);
}

TEST(Device, EadrRandomizedEvictionRaisesXbiOfSequentialStream) {
  // In eADR mode implicit cache evictions randomize the order in which lines
  // reach the XPBuffer, breaking write combining for sequential streams
  // (paper §5.5). XBI(eADR) should exceed XBI(ADR) for the same stream.
  auto run = [](bool eadr) {
    DeviceConfig config;
    config.pool_bytes = 64 << 20;
    config.num_sockets = 1;
    config.dimms_per_socket = 1;
    config.eadr = eadr;
    config.eadr_cache_lines = 1024;
    PmDevice device(config);
    ThreadContext ctx(device, 0);
    for (int i = 0; i < 200000; i++) {
      device.FlushLine(ctx, device.base() + 4096 + static_cast<size_t>(i) * 64);
      device.Fence(ctx);
    }
    device.DrainBuffers();
    return device.stats().Snapshot().media_write_bytes;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(CrashInjector, CountOnlyProbeCountsFencesWithoutFiring) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  CrashInjector injector;
  device.SetCrashInjector(&injector);
  injector.Arm(/*fence_target=*/0);  // count-only
  for (int i = 0; i < 5; i++) {
    auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192 + i * 64);
    *word = 1;
    device.FlushLine(ctx, word);
    device.Fence(ctx);
  }
  device.SetCrashInjector(nullptr);
  EXPECT_EQ(injector.fences_observed(), 5u);
  EXPECT_FALSE(injector.fired());
}

TEST(CrashInjector, DetachedInjectorIsInert) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  CrashInjector injector;
  injector.Arm(/*fence_target=*/1);
  // Armed but never attached to the device: fences must not fire it.
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 1;
  device.FlushLine(ctx, word);
  device.Fence(ctx);
  EXPECT_EQ(injector.fences_observed(), 0u);
  EXPECT_FALSE(injector.fired());
}

TEST(CrashInjector, FiresAtTargetBeforeCommittingPendingLines) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192);
  *word = 0x1111;
  device.FlushLine(ctx, word);
  device.Fence(ctx);  // durable baseline

  CrashInjector injector;
  device.SetCrashInjector(&injector);
  injector.Arm(/*fence_target=*/1);
  *word = 0x2222;
  device.FlushLine(ctx, word);
  uint64_t caught_index = 0;
  try {
    device.Fence(ctx);  // power lost at the sfence
  } catch (const CrashPointReached& crash) {
    caught_index = crash.fence_index;
  }
  device.SetCrashInjector(nullptr);
  EXPECT_EQ(caught_index, 1u);
  EXPECT_TRUE(injector.fired());
  // The interrupted fence never committed: the crash drops the pending line.
  device.Crash();
  EXPECT_EQ(*word, 0x1111u);
}

TEST(CrashInjector, FiresAtMostOnce) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  CrashInjector injector;
  device.SetCrashInjector(&injector);
  injector.Arm(/*fence_target=*/2);
  int fired = 0;
  for (int i = 0; i < 6; i++) {
    try {
      device.Fence(ctx);
    } catch (const CrashPointReached&) {
      fired++;
    }
  }
  device.SetCrashInjector(nullptr);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(injector.fences_observed(), 6u);
}

TEST(CrashInjector, CrashCountersAccountDroppedAndTornLines) {
  PmDevice device(SmallConfig());
  ThreadContext ctx(device, 0);
  for (int i = 0; i < 16; i++) {
    auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192 + i * 64);
    *word = 9;
    device.FlushLine(ctx, word);
  }
  device.Crash();  // all 16 pending lines dropped
  auto after_clean = device.stats().Snapshot();
  EXPECT_EQ(after_clean.crashes_injected, 1u);
  EXPECT_EQ(after_clean.crash_lines_dropped, 16u);
  EXPECT_EQ(after_clean.crash_torn_lines_applied, 0u);

  for (int i = 0; i < 16; i++) {
    auto* word = reinterpret_cast<uint64_t*>(device.base() + 8192 + i * 64);
    *word = 11;
    device.FlushLine(ctx, word);
  }
  device.CrashTorn(/*seed=*/5);  // each pending line torn-persists with p=1/2
  auto after_torn = device.stats().Snapshot();
  EXPECT_EQ(after_torn.crashes_injected, 2u);
  EXPECT_EQ(after_torn.crash_lines_dropped + after_torn.crash_torn_lines_applied, 32u);
  EXPECT_GT(after_torn.crash_torn_lines_applied, 0u);
}

TEST(ThreadContext, NestingRestoresPrevious) {
  PmDevice device(SmallConfig());
  ThreadContext outer(device, 0);
  EXPECT_EQ(ThreadContext::Current(), &outer);
  {
    ThreadContext inner(device, 1);
    EXPECT_EQ(ThreadContext::Current(), &inner);
  }
  EXPECT_EQ(ThreadContext::Current(), &outer);
}

}  // namespace
}  // namespace cclbt::pmsim
