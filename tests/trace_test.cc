// pmtrace layer tests: ring-buffer wraparound semantics, the disabled-gate
// contract (zero events, zero rings), component attribution conservation
// (per-component media-write bytes sum exactly to media_write_bytes on a
// deterministic single-thread workload), scope nesting/timing, and the
// Chrome-trace exporter's structural invariants.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/pmsim/device.h"
#include "src/pmsim/stats.h"
#include "src/trace/exporters.h"
#include "src/trace/trace.h"

namespace cclbt {
namespace {

// Restores the global trace gates around each test so test order never
// matters (the gates are process-wide).
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::SetEnabled(false);
    trace::SetScopeTiming(false);
    trace::ClearRings();
  }
};

TEST_F(TraceTest, RingWraparoundKeepsNewestEvents) {
  trace::TraceRing ring(16);
  EXPECT_EQ(ring.capacity(), 16u);
  for (uint64_t i = 0; i < 100; i++) {
    trace::TraceEvent ev;
    ev.t_ns = i;
    ev.type = static_cast<uint8_t>(trace::EventType::kFlush);
    ring.Emit(ev);
  }
  EXPECT_EQ(ring.emitted(), 100u);
  std::vector<trace::TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first, and only the newest 16 survive.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].t_ns, 84 + i);
  }
  ring.Clear();
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST_F(TraceTest, NonPowerOfTwoCapacityRoundsUp) {
  trace::TraceRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
}

TEST_F(TraceTest, DisabledGateEmitsNoEventsAndAllocatesNoRings) {
  ASSERT_FALSE(trace::Enabled());
  pmsim::DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  pmsim::PmDevice device(config);
  {
    pmsim::ThreadContext ctx(device, 0, 0);
    trace::TraceScope scope(trace::Component::kWal);
    for (int i = 0; i < 1000; i++) {
      device.FlushLine(ctx, device.base() + static_cast<size_t>(i) * pmsim::kXplineBytes);
      device.Fence(ctx);
    }
    trace::Emit(trace::EventType::kWalAppend, 1);
  }
  // No ring was ever created: the disabled gate short-circuits before the
  // lazy ring factory runs.
  EXPECT_TRUE(trace::CollectRings().empty());
}

TEST_F(TraceTest, EnabledPathEmitsToLazilyCreatedRing) {
  pmsim::DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  pmsim::PmDevice device(config);
  {
    // Context created while tracing is off: its ring must still materialize
    // on the first emit after enabling (the bench driver enables tracing
    // after warm-up, under already-live contexts).
    pmsim::ThreadContext ctx(device, 0, 7);
    trace::SetEnabled(true);
    device.FlushLine(ctx, device.base());
    device.Fence(ctx);
  }
  trace::SetEnabled(false);
  std::vector<trace::NamedRing> rings = trace::CollectRings();
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].worker_id, 7);
  ASSERT_GE(rings[0].events.size(), 2u);  // >= flush + fence
  bool saw_flush = false, saw_fence = false;
  for (const trace::TraceEvent& ev : rings[0].events) {
    saw_flush |= ev.type == static_cast<uint8_t>(trace::EventType::kFlush);
    saw_fence |= ev.type == static_cast<uint8_t>(trace::EventType::kFence);
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_fence);
}

TEST_F(TraceTest, ScopeNestingRestoresComponent) {
  EXPECT_EQ(trace::CurrentComponent(), trace::Component::kOther);
  {
    trace::TraceScope outer(trace::Component::kLeaf);
    EXPECT_EQ(trace::CurrentComponent(), trace::Component::kLeaf);
    {
      trace::TraceScope inner(trace::Component::kGc);
      EXPECT_EQ(trace::CurrentComponent(), trace::Component::kGc);
    }
    EXPECT_EQ(trace::CurrentComponent(), trace::Component::kLeaf);
  }
  EXPECT_EQ(trace::CurrentComponent(), trace::Component::kOther);
}

// The acceptance-criteria invariant: on a quiesced single-thread workload,
// per-component media-write bytes sum exactly to media_write_bytes — every
// media write is attributed to exactly one component, through both the
// eviction path and the end-of-run drain.
TEST_F(TraceTest, ComponentAttributionSumsToMediaWriteBytes) {
  pmsim::DeviceConfig config;
  config.pool_bytes = 64 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 2;
  config.crash_tracking = false;
  pmsim::PmDevice device(config);
  {
    pmsim::ThreadContext ctx(device, 0, 0);
    // Deterministic mix: WAL-scoped flush bursts over a wide range (forces
    // XPBuffer evictions), leaf-scoped writes over a narrow range (mostly
    // write-combined, drained at the end), and unscoped traffic.
    for (int i = 0; i < 4000; i++) {
      trace::TraceScope scope(trace::Component::kWal);
      device.FlushLine(ctx,
                       device.base() + static_cast<size_t>(i * 7 % 3000) * pmsim::kXplineBytes);
      if ((i & 3) == 3) {
        device.Fence(ctx);
      }
    }
    {
      trace::TraceScope scope(trace::Component::kWal);
      device.Fence(ctx);
    }
    for (int i = 0; i < 500; i++) {
      trace::TraceScope scope(trace::Component::kLeaf);
      device.FlushLine(ctx, device.base() + static_cast<size_t>(i % 40) * pmsim::kXplineBytes);
      device.Fence(ctx);
    }
    for (int i = 0; i < 100; i++) {
      device.FlushLine(ctx,
                       device.base() + (10'000 + static_cast<size_t>(i)) * pmsim::kXplineBytes);
      device.Fence(ctx);
    }
  }
  device.DrainBuffers();
  pmsim::StatsSnapshot s = device.stats().Snapshot();
  ASSERT_GT(s.media_write_bytes, 0u);
  uint64_t by_component = 0;
  for (uint64_t bytes : s.media_write_bytes_by_component) {
    by_component += bytes;
  }
  EXPECT_EQ(by_component, s.media_write_bytes);
  // The workload touched wal, leaf and unscoped code; each must have traffic.
  EXPECT_GT(s.media_write_bytes_for(trace::Component::kWal), 0u);
  EXPECT_GT(s.media_write_bytes_for(trace::Component::kLeaf), 0u);
  EXPECT_GT(s.media_write_bytes_for(trace::Component::kOther), 0u);
  // Same conservation for the commit-side counter: every fenced line was
  // committed on behalf of exactly one component.
  uint64_t committed = 0;
  for (uint64_t lines : s.committed_lines_by_component) {
    committed += lines;
  }
  EXPECT_GT(committed, 0u);
  EXPECT_LE(committed * pmsim::kCachelineBytes, s.xpbuffer_write_bytes);
}

TEST_F(TraceTest, ScopeTimingChargesExclusiveVirtualTime) {
  pmsim::DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  pmsim::PmDevice device(config);
  pmsim::ThreadContext ctx(device, 0, 0);
  trace::SetScopeTiming(true);
  trace::FlushScopeTime();  // sync last_mark to this context's clock
  const uint64_t* table = trace::ThreadComponentNs();
  uint64_t wal_before = table[static_cast<int>(trace::Component::kWal)];
  uint64_t gc_before = table[static_cast<int>(trace::Component::kGc)];
  {
    trace::TraceScope wal(trace::Component::kWal);
    device.FlushLine(ctx, device.base());
    device.Fence(ctx);
    {
      trace::TraceScope gc(trace::Component::kGc);
      device.FlushLine(ctx, device.base() + pmsim::kXplineBytes);
      device.Fence(ctx);
    }
  }
  uint64_t wal_ns = table[static_cast<int>(trace::Component::kWal)] - wal_before;
  uint64_t gc_ns = table[static_cast<int>(trace::Component::kGc)] - gc_before;
  // Both scopes did one flush+fence of virtual work; exclusive accounting
  // means the inner GC time is not double-charged to WAL.
  EXPECT_GT(wal_ns, 0u);
  EXPECT_GT(gc_ns, 0u);
}

TEST_F(TraceTest, ChromeTraceJsonIsStructurallyBalanced) {
  pmsim::DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  config.crash_tracking = false;
  pmsim::PmDevice device(config);
  trace::SetEnabled(true);
  {
    pmsim::ThreadContext ctx(device, 0, 0);
    for (int i = 0; i < 50; i++) {
      trace::TraceScope scope(trace::Component::kLeaf);
      device.FlushLine(ctx, device.base() + static_cast<size_t>(i) * pmsim::kXplineBytes);
      device.Fence(ctx);
    }
    // Dangling scope begin: ring retains a B whose E may be cut off — the
    // exporter must still balance the track.
    trace::TraceScope dangling(trace::Component::kGc);
    trace::Emit(trace::EventType::kGcBegin, 0);
  }
  trace::SetEnabled(false);
  std::vector<trace::NamedRing> rings = trace::CollectRings();
  ASSERT_FALSE(rings.empty());
  std::ostringstream out;
  trace::ExportChromeTraceJson(out, rings, "trace_test");
  std::string json = out.str();
  // Structural checks: balanced braces/brackets and balanced B/E rows.
  long depth = 0;
  long brackets = 0;
  for (char c : json) {
    depth += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    ASSERT_GE(depth, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(brackets, 0);
  auto count = [&json](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      n++;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_GT(count("\"ph\":\"i\""), 0u);
}

}  // namespace
}  // namespace cclbt
