// Tests for CCL-Hash (the paper's §6 hash-table extension): functional
// model-check, overflow chaining, tombstones, crash recovery, GC, and the
// XBI-reduction property vs an unbuffered persistent hash.
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ccl_hash.h"
#include "tests/crash_util.h"

namespace cclbt::core {
namespace {

std::unique_ptr<kvindex::Runtime> MakeRuntime(size_t pool = 512 << 20) {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = pool;
  return std::make_unique<kvindex::Runtime>(options);
}

CclHashTable::Options SmallTable(size_t buckets = 1 << 12) {
  CclHashTable::Options options;
  options.num_buckets = buckets;
  return options;
}

TEST(CclHash, InsertLookupRemove) {
  auto rt = MakeRuntime();
  CclHashTable table(*rt, SmallTable());
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  table.Upsert(42, 4200);
  uint64_t value = 0;
  EXPECT_TRUE(table.Lookup(42, &value));
  EXPECT_EQ(value, 4200u);
  EXPECT_FALSE(table.Lookup(43, &value));
  table.Remove(42);
  EXPECT_FALSE(table.Lookup(42, &value));
  table.Upsert(42, 77);
  EXPECT_TRUE(table.Lookup(42, &value));
  EXPECT_EQ(value, 77u);
}

TEST(CclHash, RandomModelCheck) {
  auto rt = MakeRuntime();
  CclHashTable table(*rt, SmallTable());
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  std::map<uint64_t, uint64_t> model;
  Rng rng(71);
  for (int i = 0; i < 40000; i++) {
    uint64_t key = rng.NextBounded(8000) + 1;
    if (rng.NextBounded(10) < 8) {
      uint64_t value = rng.Next() | 1;
      table.Upsert(key, value);
      model[key] = value;
    } else {
      table.Remove(key);
      model.erase(key);
    }
  }
  for (uint64_t key = 1; key <= 8000; key++) {
    uint64_t value = 0;
    bool found = table.Lookup(key, &value);
    auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << "key " << key;
    if (found) {
      EXPECT_EQ(value, it->second);
    }
  }
}

TEST(CclHash, OverflowChainsGrow) {
  auto rt = MakeRuntime();
  // Tiny directory: collisions guaranteed, chains must absorb them.
  CclHashTable table(*rt, SmallTable(16));
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 2000; k++) {
    table.Upsert(k, k * 3);
  }
  EXPECT_GT(table.overflow_buckets(), 0u);
  for (uint64_t k = 1; k <= 2000; k += 7) {
    uint64_t value = 0;
    ASSERT_TRUE(table.Lookup(k, &value)) << "key " << k;
    EXPECT_EQ(value, k * 3);
  }
}

TEST(CclHash, CompletedUpsertsSurviveCrash) {
  auto rt = MakeRuntime();
  CclHashTable::Options options = SmallTable();
  std::map<uint64_t, uint64_t> model;
  {
    CclHashTable table(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(73);
    for (int i = 0; i < 30000; i++) {
      uint64_t key = Mix64(rng.NextBounded(6000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      table.Upsert(key, value);
      model[key] = value;
    }
  }
  auto table = testutil::CrashAndRecoverHash(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(table->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value);
  }
}

TEST(CclHash, DeletesSurviveCrash) {
  auto rt = MakeRuntime();
  CclHashTable::Options options = SmallTable();
  {
    CclHashTable table(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    for (uint64_t k = 1; k <= 2000; k++) {
      table.Upsert(k, k);
    }
    for (uint64_t k = 1; k <= 2000; k += 2) {
      table.Remove(k);
    }
  }
  auto table = testutil::CrashAndRecoverHash(*rt, options, /*torn=*/true, /*torn_seed=*/99);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 2000; k++) {
    uint64_t value = 0;
    ASSERT_EQ(table->Lookup(k, &value), k % 2 == 0) << "key " << k;
  }
}

TEST(CclHash, GcReclaimsLogsAndPreservesData) {
  auto rt = MakeRuntime();
  CclHashTable table(*rt, SmallTable());
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (uint64_t k = 1; k <= 30000; k++) {
    table.Upsert(Mix64(k) | 1, k);
  }
  uint64_t before = table.log_live_bytes();
  ASSERT_GT(before, 0u);
  table.RunGcOnce();
  EXPECT_LT(table.log_live_bytes(), before / 2);
  for (uint64_t k = 1; k <= 30000; k += 113) {
    uint64_t value = 0;
    ASSERT_TRUE(table.Lookup(Mix64(k) | 1, &value));
    EXPECT_EQ(value, k);
  }
}

TEST(CclHash, CrashAfterGcLosesNothing) {
  auto rt = MakeRuntime();
  CclHashTable::Options options = SmallTable();
  std::map<uint64_t, uint64_t> model;
  {
    CclHashTable table(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    Rng rng(75);
    for (int i = 0; i < 20000; i++) {
      uint64_t key = Mix64(rng.NextBounded(5000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      table.Upsert(key, value);
      model[key] = value;
    }
    table.RunGcOnce();
    for (int i = 0; i < 3000; i++) {
      uint64_t key = Mix64(rng.NextBounded(5000) + 1) | 1;
      uint64_t value = rng.Next() | 1;
      table.Upsert(key, value);
      model[key] = value;
    }
  }
  auto table = testutil::CrashAndRecoverHash(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(table->Lookup(key, &got)) << "lost key " << key;
    EXPECT_EQ(got, value);
  }
}

TEST(CclHash, BufferingReducesMediaWrites) {
  // The §6 claim itself: buffered buckets write fewer XPLines than direct
  // bucket writes for the same workload.
  auto measure = [](bool buffering) {
    auto rt = MakeRuntime();
    CclHashTable::Options options = SmallTable(1 << 12);
    options.buffering = buffering;
    CclHashTable table(*rt, options);
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    auto before = rt->device().stats().Snapshot();
    Rng rng(77);
    for (int i = 0; i < 50000; i++) {
      table.Upsert(Mix64(rng.NextBounded(30000)) | 1, 1);
    }
    rt->device().DrainBuffers();
    return rt->device().stats().Snapshot().Delta(before).media_write_bytes;
  };
  uint64_t unbuffered = measure(false);
  uint64_t buffered = measure(true);
  EXPECT_LT(buffered, unbuffered * 85 / 100);
}

}  // namespace
}  // namespace cclbt::core
