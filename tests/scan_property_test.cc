// Property tests for range scans across all indexes: every scan result must
// be sorted, duplicate-free, complete w.r.t. a model, and stable under
// concurrent writers (sortedness + no phantom keys).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/bench/index_factory.h"
#include "src/common/rng.h"

namespace cclbt::bench {
namespace {

std::unique_ptr<kvindex::Runtime> MakeRuntime() {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = 512 << 20;
  return std::make_unique<kvindex::Runtime>(options);
}

class ScanPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    rt_ = MakeRuntime();
    IndexConfig config;
    config.tree.background_gc = false;
    index_ = MakeIndex(GetParam(), *rt_, config);
    ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  }

  std::unique_ptr<kvindex::Runtime> rt_;
  std::unique_ptr<kvindex::KvIndex> index_;
  std::unique_ptr<pmsim::ThreadContext> ctx_;
};

TEST_P(ScanPropertyTest, RandomScansMatchModel) {
  std::map<uint64_t, uint64_t> model;
  Rng rng(41);
  for (int i = 0; i < 15000; i++) {
    uint64_t key = rng.NextBounded(40000) + 1;
    if (rng.NextBounded(8) < 7) {
      uint64_t value = rng.Next() | 1;
      index_->Upsert(key, value);
      model[key] = value;
    } else {
      index_->Remove(key);
      model.erase(key);
    }
  }
  std::vector<kvindex::KeyValue> out(256);
  for (int probe = 0; probe < 200; probe++) {
    uint64_t start = rng.NextBounded(42000);
    size_t want = 1 + rng.NextBounded(200);
    size_t got = index_->Scan(start, want, out.data());
    auto it = model.lower_bound(start);
    size_t expect = 0;
    for (; it != model.end() && expect < want; ++it, ++expect) {
      ASSERT_LT(expect, got) << GetParam() << " scan(" << start << "," << want
                             << ") too short at " << expect;
      EXPECT_EQ(out[expect].key, it->first) << GetParam();
      EXPECT_EQ(out[expect].value, it->second) << GetParam();
    }
    EXPECT_EQ(got, expect) << GetParam() << " scan returned extra entries";
  }
}

TEST_P(ScanPropertyTest, ScansAreSortedAndDuplicateFree) {
  Rng rng(43);
  for (int i = 0; i < 20000; i++) {
    index_->Upsert(Mix64(rng.NextBounded(30000) + 1) | 1, i + 1);
  }
  std::vector<kvindex::KeyValue> out(512);
  for (int probe = 0; probe < 50; probe++) {
    uint64_t start = rng.Next() | 1;
    size_t got = index_->Scan(start, 512, out.data());
    std::set<uint64_t> seen;
    for (size_t i = 0; i < got; i++) {
      EXPECT_GE(out[i].key, start) << GetParam();
      if (i > 0) {
        EXPECT_GT(out[i].key, out[i - 1].key) << GetParam() << " unsorted or dup at " << i;
      }
      EXPECT_TRUE(seen.insert(out[i].key).second) << GetParam();
    }
  }
}

TEST_P(ScanPropertyTest, ScansUnderConcurrentInsertsStaySane) {
  // Writers insert only EVEN keys from a disjoint upper range; a concurrent
  // scanner must always observe sorted, phantom-free results (keys either
  // pre-loaded or from the writer set).
  for (uint64_t k = 2; k <= 20000; k += 2) {
    index_->Upsert(k, k);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    pmsim::ThreadContext ctx(rt_->device(), 0, 1);
    for (uint64_t k = 20002; k <= 60000 && !stop.load(); k += 2) {
      index_->Upsert(k, k);
    }
    stop.store(true);
  });
  std::vector<kvindex::KeyValue> out(128);
  Rng rng(45);
  int violations = 0;
  while (!stop.load()) {
    uint64_t start = rng.NextBounded(50000) + 1;
    size_t got = index_->Scan(start, 128, out.data());
    for (size_t i = 0; i < got; i++) {
      if (out[i].key % 2 != 0 || out[i].key < start ||
          (i > 0 && out[i].key <= out[i - 1].key)) {
        violations++;
      }
    }
  }
  writer.join();
  EXPECT_EQ(violations, 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, ScanPropertyTest,
                         ::testing::Values("cclbtree", "fptree", "lbtree", "pactree", "fastfair",
                                           "utree", "dptree", "flatstore", "lsmstore"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace cclbt::bench
