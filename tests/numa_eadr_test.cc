// Integration tests for the NUMA and eADR aspects of the simulator + tree:
// remote-access accounting, per-socket leaf/log placement, eADR persistence
// and the randomized-eviction locality penalty, multi-threaded GC.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/bench/driver.h"
#include "src/core/ccl_btree.h"
#include "tests/crash_util.h"

namespace cclbt::bench {
namespace {

TEST(Numa, RemoteAccessesAppearWhenThreadsSpanSockets) {
  // With 8 workers at threads_per_socket=4, workers 4-7 run on socket 1 but
  // FPTree allocates every leaf on socket 0 -> remote accesses accumulate.
  RunConfig config;
  config.threads = 8;
  config.threads_per_socket = 4;
  config.warm_keys = 20'000;
  config.ops = 20'000;
  RunResult result = RunIndexWorkload("fptree", config, {}, 512 << 20);
  EXPECT_GT(result.stats.remote_accesses, config.ops / 4);
}

TEST(Numa, SingleSocketRunHasNoRemoteAccesses) {
  RunConfig config;
  config.threads = 8;
  config.threads_per_socket = 48;  // everyone on socket 0
  config.warm_keys = 20'000;
  config.ops = 20'000;
  RunResult result = RunIndexWorkload("fptree", config, {}, 512 << 20);
  EXPECT_EQ(result.stats.remote_accesses, 0u);
}

TEST(Numa, CclRemoteFractionLowerThanSocketObliviousBaseline) {
  // CCL-BTree allocates leaves and logs NUMA-locally (§4.4 Opt. 1): its
  // remote-access rate across sockets must undercut FPTree's.
  RunConfig config;
  config.threads = 8;
  config.threads_per_socket = 4;
  config.warm_keys = 30'000;
  config.ops = 30'000;
  IndexConfig quiet;
  quiet.tree.background_gc = false;
  RunResult ccl = RunIndexWorkload("cclbtree", config, quiet, 512 << 20);
  RunResult fp = RunIndexWorkload("fptree", config, {}, 512 << 20);
  EXPECT_LT(ccl.stats.remote_accesses, fp.stats.remote_accesses);
}

TEST(Eadr, TreeWorksWithoutFences) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 256 << 20;
  runtime_options.device.eadr = true;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  options.background_gc = false;
  core::CclBTree tree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (uint64_t k = 1; k <= 20'000; k++) {
    tree.Upsert(k, k * 2);
  }
  for (uint64_t k = 1; k <= 20'000; k += 37) {
    uint64_t value = 0;
    ASSERT_TRUE(tree.Lookup(k, &value));
    EXPECT_EQ(value, k * 2);
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(Eadr, EadrStoresPersistAcrossCrashWithoutFences) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 256 << 20;
  runtime_options.device.eadr = true;
  runtime_options.device.crash_tracking = true;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  options.background_gc = false;
  {
    core::CclBTree tree(runtime, options);
    pmsim::ThreadContext ctx(runtime.device(), 0, 0);
    for (uint64_t k = 1; k <= 5'000; k++) {
      tree.Upsert(k, k + 9);
    }
  }
  auto tree = testutil::CrashAndRecoverTree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (uint64_t k = 1; k <= 5'000; k += 13) {
    uint64_t value = 0;
    ASSERT_TRUE(tree->Lookup(k, &value)) << "key " << k;
    EXPECT_EQ(value, k + 9);
  }
}

TEST(Eadr, ExplicitFlushBeatsEadrOnXbiForCcl) {
  // The paper's §5.5 observation: removing explicit flushes (eADR) makes
  // XBI worse for a locality-aware design because implicit evictions
  // scramble the batched leaf writes.
  auto run = [](bool eadr) {
    RunConfig config;
    config.threads = 16;
    config.warm_keys = 30'000;
    config.ops = 30'000;
    kvindex::RuntimeOptions runtime_options;
    runtime_options.device.pool_bytes = 512 << 20;
    runtime_options.device.eadr = eadr;
    runtime_options.device.crash_tracking = false;
    runtime_options.device.eadr_cache_lines = 4096;
    kvindex::Runtime runtime(runtime_options);
    IndexConfig quiet;
    quiet.tree.background_gc = false;
    auto index = MakeIndex("cclbtree", runtime, quiet);
    return RunWorkload(runtime, *index, config).xbi_amplification;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Gc, MultiThreadedGcRoundPreservesData) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 512 << 20;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  options.background_gc = false;
  options.gc_threads = 4;
  core::CclBTree tree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (uint64_t k = 1; k <= 80'000; k++) {
    tree.Upsert(Mix64(k) | 1, k);
  }
  uint64_t live_before = tree.log_live_bytes();
  tree.RunGcOnce();
  EXPECT_LT(tree.log_live_bytes(), live_before);
  for (uint64_t k = 1; k <= 80'000; k += 371) {
    uint64_t value = 0;
    ASSERT_TRUE(tree.Lookup(Mix64(k) | 1, &value));
    EXPECT_EQ(value, k);
  }
  // Crash after a parallel GC: everything must still recover.
  runtime.device().Crash();
}

TEST(Gc, MultiThreadedGcThenCrashRecovers) {
  kvindex::RuntimeOptions runtime_options;
  runtime_options.device.pool_bytes = 512 << 20;
  kvindex::Runtime runtime(runtime_options);
  core::TreeOptions options;
  options.background_gc = false;
  options.gc_threads = 3;
  {
    core::CclBTree tree(runtime, options);
    pmsim::ThreadContext ctx(runtime.device(), 0, 0);
    for (uint64_t k = 1; k <= 50'000; k++) {
      tree.Upsert(Mix64(k) | 1, k);
    }
    tree.RunGcOnce();
    for (uint64_t k = 50'001; k <= 60'000; k++) {
      tree.Upsert(Mix64(k) | 1, k);
    }
  }
  auto tree = testutil::CrashAndRecoverTree(runtime, options);
  pmsim::ThreadContext ctx(runtime.device(), 0, 0);
  for (uint64_t k = 1; k <= 60'000; k += 293) {
    uint64_t value = 0;
    ASSERT_TRUE(tree->Lookup(Mix64(k) | 1, &value)) << "key " << k;
    EXPECT_EQ(value, k);
  }
}

}  // namespace
}  // namespace cclbt::bench
