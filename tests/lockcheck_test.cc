// Tests for lockcheck, the lockset / lock-order sanitizer (DESIGN.md §16):
// one deliberately-buggy driver per diagnostic class asserting the exact
// diagnostic fires, suppression via LockCheckExpect, ownership-transfer
// resets, the disabled gate (no checker, no events), and clean-run checks
// over a cclbtree fig10-micro workload and a 4-shard service run.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "src/bench/driver.h"
#include "src/common/lock.h"
#include "src/common/simd.h"
#include "src/kvindex/runtime.h"
#include "src/pmsim/device.h"
#include "src/pmsim/lockcheck.h"
#include "src/service/service.h"

namespace cclbt::pmsim {
namespace {

// The CI harness runs the whole suite with CCL_LOCKCHECK=1; these tests opt
// in explicitly per device (and the disabled-gate test asserts the opt-out
// default), so drop the override to keep the assertions valid anywhere.
[[maybe_unused]] const bool g_env_cleared = [] {
  unsetenv("CCL_LOCKCHECK");
  return true;
}();

DeviceConfig CheckedConfig() {
  DeviceConfig config;
  config.pool_bytes = 16 << 20;
  config.num_sockets = 2;
  config.dimms_per_socket = 2;
  config.lockcheck = true;
  return config;
}

// A plain PM store; the checker sees the write at FlushLine (the commitment
// that the line was stored).
void StoreAndFlush(PmDevice& device, ThreadContext& ctx, uintptr_t offset, uint64_t value) {
  std::memcpy(device.base() + offset, &value, sizeof(value));
  device.FlushLine(ctx, device.base() + offset);
}

LockCheckReport Report(PmDevice& device) { return device.lockcheck()->Snapshot(); }

uint64_t Count(const LockCheckReport& report, LockCheckClass cls) {
  return report.counts[static_cast<size_t>(cls)];
}

// --- disabled gate -----------------------------------------------------------

TEST(LockCheck, DisabledByDefaultNoCheckerNoEvents) {
  PmDevice device{DeviceConfig{}};
  EXPECT_EQ(device.lockcheck(), nullptr);
  // With no checker there is no installed observer: wrapper locks and device
  // hooks must run (and count nothing) without one.
  ThreadContext ctx(device, 0, /*worker_id=*/0);
  sync::Mutex mu{"test.gate"};
  mu.lock();
  StoreAndFlush(device, ctx, 64, 0x61);
  mu.unlock();
  device.Fence(ctx);
  EXPECT_EQ(device.lockcheck(), nullptr);
}

TEST(LockCheck, EnabledCheckerStartsAllZero) {
  PmDevice device{CheckedConfig()};
  ASSERT_NE(device.lockcheck(), nullptr);
  LockCheckReport report = Report(device);
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(report.total_info(), 0u);
  EXPECT_EQ(report.total_suppressed(), 0u);
  EXPECT_EQ(report.locks_tracked, 0u);
  EXPECT_EQ(report.diagnostics_truncated, 0u);
  EXPECT_TRUE(report.diagnostics.empty());
}

// --- class 1: unlocked write -------------------------------------------------

TEST(LockCheck, UnlockedWriteBySecondWorker) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);  // two live contexts
  // First access: worker 0 owns the line, no locks needed (single-writer
  // data like per-worker WALs never leaves this state).
  StoreAndFlush(device, w0, 64, 0xA0);
  EXPECT_EQ(Report(device).total(), 0u);
  // A second worker writes the same line holding nothing: no lock protocol
  // can explain the sharing.
  StoreAndFlush(device, w1, 64, 0xA1);
  LockCheckReport report = Report(device);
  EXPECT_EQ(Count(report, LockCheckClass::kUnlockedWrite), 1u);
  EXPECT_EQ(report.total(), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, LockCheckClass::kUnlockedWrite);
  EXPECT_EQ(report.diagnostics[0].line, 64u);
  EXPECT_EQ(report.diagnostics[0].worker, 1);
  EXPECT_STREQ(report.diagnostics[0].detail, "multi-worker-write-holds-no-exclusive-lock");
  // One diagnostic per line: repeating the bad write must not re-report.
  StoreAndFlush(device, w0, 64, 0xA2);
  EXPECT_EQ(Report(device).total(), 1u);
}

// --- class 2: lockset empty after intersection -------------------------------

TEST(LockCheck, LocksetEmptyWhenWritersAgreeOnNoCommonLock) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  sync::Mutex l1{"test.l1"};
  sync::Mutex l2{"test.l2"};
  StoreAndFlush(device, w0, 128, 0xB0);  // first access: exclusive
  // Second party holds both locks: candidate lockset C = {l1, l2}.
  l1.lock();
  l2.lock();
  StoreAndFlush(device, w1, 128, 0xB1);
  l2.unlock();
  l1.unlock();
  // Next write holds only l1: C narrows to {l1} — still consistent.
  l1.lock();
  StoreAndFlush(device, w0, 128, 0xB2);
  l1.unlock();
  EXPECT_EQ(Report(device).total(), 0u);
  // Next write holds only l2: C ∩ {l2} = ∅ — no single lock protected every
  // write. The diagnostic names the lock the writers used to agree on.
  l2.lock();
  StoreAndFlush(device, w1, 128, 0xB3);
  l2.unlock();
  LockCheckReport report = Report(device);
  EXPECT_EQ(Count(report, LockCheckClass::kLocksetEmpty), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, LockCheckClass::kLocksetEmpty);
  EXPECT_EQ(report.diagnostics[0].line, 128u);
  EXPECT_STREQ(report.diagnostics[0].lock, "test.l1");
  EXPECT_STREQ(report.diagnostics[0].detail, "no-common-lock-across-writers");
}

// Consistent lock discipline across many writers never reports.
TEST(LockCheck, ConsistentLockingIsClean) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  sync::Mutex mu{"test.shared"};
  for (int round = 0; round < 4; ++round) {
    ThreadContext& ctx = (round % 2 == 0) ? w0 : w1;
    mu.lock();
    StoreAndFlush(device, ctx, 192, 0xC0 + static_cast<uint64_t>(round));
    mu.unlock();
  }
  EXPECT_EQ(Report(device).total(), 0u);
}

// --- class 3: seqlock write without version bump -----------------------------

TEST(LockCheck, SeqlockWriteWithoutVersionBump) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  sync::SeqLock seq{"test.seq"};
  sync::Mutex other{"test.other"};
  // Both writers hold the seqlock write-side: C = {seq}.
  seq.Lock();
  StoreAndFlush(device, w0, 256, 0xD0);
  seq.Unlock();
  seq.Lock();
  StoreAndFlush(device, w1, 256, 0xD1);
  seq.Unlock();
  EXPECT_EQ(Report(device).total(), 0u);
  // A write that holds *a* lock, but not the seqlock: optimistic readers
  // validating against the version counter cannot detect this mutation.
  other.lock();
  StoreAndFlush(device, w0, 256, 0xD2);
  other.unlock();
  LockCheckReport report = Report(device);
  EXPECT_EQ(Count(report, LockCheckClass::kSeqWriteNoBump), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, LockCheckClass::kSeqWriteNoBump);
  EXPECT_EQ(report.diagnostics[0].line, 256u);
  EXPECT_STREQ(report.diagnostics[0].lock, "test.seq");
  EXPECT_STREQ(report.diagnostics[0].detail, "write-without-version-bump");
}

// --- class 4: lock-order cycle -----------------------------------------------

TEST(LockCheck, AbBaCycleReportsOnClosingEdge) {
  if (simd::kTsanBuild) {
    // The seeded AB-BA inversion below is exactly what TSan's own deadlock
    // detector reports; lockcheck's cycle detection is covered by the
    // non-instrumented runs.
    GTEST_SKIP() << "seeded lock-order inversion trips TSan's deadlock detector";
  }
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, /*worker_id=*/0);
  sync::Mutex a{"test.a"};
  sync::Mutex b{"test.b"};
  // a → b: fine the first time.
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(Report(device).total(), 0u);
  // b → a closes the cycle; the diagnostic names the closing edge.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();
  LockCheckReport report = Report(device);
  EXPECT_EQ(Count(report, LockCheckClass::kLockCycle), 1u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].cls, LockCheckClass::kLockCycle);
  EXPECT_STREQ(report.diagnostics[0].lock, "test.b");
  EXPECT_STREQ(report.diagnostics[0].lock2, "test.a");
  EXPECT_STREQ(report.diagnostics[0].detail, "cycle-closing-edge");
  EXPECT_GE(report.order_edges, 2u);
  // The known-edge path must not re-report the same cycle.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();
  EXPECT_EQ(Count(Report(device), LockCheckClass::kLockCycle), 1u);
}

// Try-acquires cannot block, so they add no ordering edges: the trylock
// convention (bn latch backoff, GC tick gate) is cycle-exempt by design.
TEST(LockCheck, TryAcquireAddsNoOrderEdge) {
  PmDevice device{CheckedConfig()};
  ThreadContext ctx(device, 0, /*worker_id=*/0);
  sync::Mutex a{"test.try_a"};
  sync::Mutex b{"test.try_b"};
  a.lock();
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  a.unlock();
  b.lock();
  ASSERT_TRUE(a.try_lock());
  a.unlock();
  b.unlock();
  EXPECT_EQ(Count(Report(device), LockCheckClass::kLockCycle), 0u);
}

// --- suppression and ownership transfer --------------------------------------

TEST(LockCheck, ExpectSuppressesInScopeOnly) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  StoreAndFlush(device, w0, 320, 0xE0);
  {
    LockCheckExpect expect(LockCheckClass::kUnlockedWrite);
    StoreAndFlush(device, w1, 320, 0xE1);  // intentional protocol exception
  }
  LockCheckReport report = Report(device);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(report.suppressed[static_cast<size_t>(LockCheckClass::kUnlockedWrite)], 1u);
  // The suppression ends with the scope: a fresh line reports normally.
  StoreAndFlush(device, w0, 384, 0xE2);
  StoreAndFlush(device, w1, 384, 0xE3);
  EXPECT_EQ(Count(Report(device), LockCheckClass::kUnlockedWrite), 1u);
}

TEST(LockCheck, ResetRangeTransfersOwnership) {
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  StoreAndFlush(device, w0, 448, 0xF0);
  // Allocator hands the range to a new logical owner (slab slot reuse, WAL
  // chunk recycling): the stale history must not count worker 1's next
  // write as second-party sharing.
  LockCheckResetRange(device.base() + 448, 64);
  StoreAndFlush(device, w1, 448, 0xF1);
  EXPECT_EQ(Report(device).total(), 0u);
}

// A crash resets line history (the working image is rebuilt from the durable
// one) but keeps run-wide counters.
TEST(LockCheck, CrashClearsLineHistory)
{
  PmDevice device{CheckedConfig()};
  ThreadContext w0(device, 0, /*worker_id=*/0);
  ThreadContext w1(device, 1, /*worker_id=*/1);
  StoreAndFlush(device, w0, 512, 0x11);
  device.Crash();
  // Post-crash, the same line is first-access again for either worker.
  StoreAndFlush(device, w1, 512, 0x12);
  LockCheckReport report = Report(device);
  EXPECT_EQ(report.total(), 0u);
}

}  // namespace
}  // namespace cclbt::pmsim

namespace cclbt::bench {
namespace {

// The shipped CCL-BTree must be lockcheck-clean on a fig10-micro style
// workload: warm inserts + measured upserts, background GC on (the default),
// several logical workers.
TEST(LockCheck, CleanRunOnCclbtreeFig10Micro) {
  RunConfig config;
  config.threads = 4;
  config.warm_keys = 15'000;
  config.ops = 15'000;
  config.op = OpType::kUpdate;
  config.lockcheck = true;
  RunResult result = RunIndexWorkload("cclbtree", config, {}, 1ULL << 30);
  ASSERT_TRUE(result.lockcheck.enabled);
  EXPECT_EQ(result.lockcheck.total(), 0u)
      << "first diagnostic: "
      << (result.lockcheck.diagnostics.empty() ? "(none materialized)"
                                               : result.lockcheck.diagnostics[0].detail);
  EXPECT_EQ(result.lockcheck.total_info(), 0u);
  EXPECT_EQ(result.lockcheck.diagnostics_truncated, 0u);
  EXPECT_GT(result.lockcheck.locks_tracked, 0u);
  EXPECT_GT(result.lockcheck.lines_tracked, 0u);
}

}  // namespace
}  // namespace cclbt::bench

namespace cclbt::service {
namespace {

// The 4-shard service front-end — real shard queues, batching, admission
// control — must be lockcheck-clean over a warm + open-loop run.
TEST(LockCheck, CleanRunOnFourShardService) {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = 256 << 20;
  options.device.num_sockets = 2;
  options.device.dimms_per_socket = 2;
  options.device.lockcheck = true;
  kvindex::Runtime rt(options);
  ASSERT_NE(rt.device().lockcheck(), nullptr);
  ServiceConfig config;
  config.shards = 4;
  config.queue_capacity = 32;
  config.batch_ops = 4;
  ShardedKvService svc(rt, config);
  OpenLoopConfig w;
  w.ops = 6'000;
  w.warm_keys = 3'000;
  w.offered_mops = 4.0;
  w.mix = &kYcsbInsertIntensive;
  w.seed = 99;
  svc.Warm(w);
  ServiceResult result = svc.Run(w);
  EXPECT_GT(result.completed, 0u);
  pmsim::LockCheckReport report = rt.device().lockcheck()->Snapshot();
  EXPECT_EQ(report.total(), 0u)
      << "first diagnostic: "
      << (report.diagnostics.empty() ? "(none materialized)" : report.diagnostics[0].detail);
  EXPECT_EQ(report.total_info(), 0u);
  EXPECT_GT(report.locks_tracked, 0u);
}

}  // namespace
}  // namespace cclbt::service
